(* The compile service: wire framing, protocol round trips, the scheduler
   and admission policy in isolation, and a real server on a Unix socket —
   replies must match direct library calls bit-for-bit on deterministic
   fields, overload must reject with structure (never hang), and deadlines
   and shutdown must cancel with structure. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module C = Qopt_catalog
module Srv = Qopt_server
module J = Qopt_util.Json

let t name f = Alcotest.test_case name `Quick f

let schema = W.Warehouse.schema ~partitioned:false

let model = Cote.Time_model.make ~c_nljn:2e-6 ~c_mgjn:5e-6 ~c_hsjn:4e-6 ()

let small_sql = "SELECT s.s_store_name FROM store s WHERE s.s_market_id = 5"

let big_sql =
  String.concat " "
    [
      "SELECT d.d_year, i.i_category_id, SUM(ss.ss_quantity)";
      "FROM store_sales ss, date_dim d, time_dim t, item i, customer c,";
      "household_demographics hd, store s, promotion p";
      "WHERE ss.ss_sold_date_sk = d.d_date_sk";
      "AND ss.ss_sold_time_sk = t.t_time_sk";
      "AND ss.ss_item_sk = i.i_item_sk";
      "AND ss.ss_customer_sk = c.c_customer_sk";
      "AND ss.ss_hdemo_sk = hd.hd_demo_sk";
      "AND ss.ss_store_sk = s.s_store_sk";
      "AND ss.ss_promo_sk = p.p_promo_sk";
      "AND d.d_year = 2000";
      "GROUP BY d.d_year, i.i_category_id";
    ]

(* ------------------------------------------------------------------ *)
(* Wire framing                                                        *)
(* ------------------------------------------------------------------ *)

let pipe_io () =
  let r, w = Unix.pipe () in
  (Unix.in_channel_of_descr r, Unix.out_channel_of_descr w)

let wire_tests =
  [
    t "write/read round trip" (fun () ->
        let ic, oc = pipe_io () in
        Srv.Wire.write oc "hello";
        Srv.Wire.write oc "";
        Srv.Wire.write oc "two\nlines";
        Alcotest.(check (option string)) "first" (Some "hello") (Srv.Wire.read ic);
        Alcotest.(check (option string)) "empty" (Some "") (Srv.Wire.read ic);
        Alcotest.(check (option string)) "embedded newline" (Some "two\nlines")
          (Srv.Wire.read ic);
        close_out oc;
        Alcotest.(check (option string)) "clean EOF" None (Srv.Wire.read ic));
    t "garbage length is a framing error" (fun () ->
        let ic, oc = pipe_io () in
        output_string oc "notanumber\npayload\n";
        flush oc;
        (try
           ignore (Srv.Wire.read ic);
           Alcotest.fail "expected Framing_error"
         with Srv.Wire.Framing_error _ -> ());
        close_out oc);
    t "oversized frame refused" (fun () ->
        let ic, oc = pipe_io () in
        output_string oc (string_of_int (Srv.Wire.max_frame + 1) ^ "\n");
        flush oc;
        (try
           ignore (Srv.Wire.read ic);
           Alcotest.fail "expected Framing_error"
         with Srv.Wire.Framing_error _ -> ());
        close_out oc);
    t "partial writes across frame boundaries reassemble" (fun () ->
        (* A slow peer dribbles two frames in arbitrary chunks — the
           length prefix, payload, and trailing newline all split across
           writes; the reader must still see exactly two intact frames. *)
        let ic, oc = pipe_io () in
        let writer =
          Thread.create
            (fun () ->
              List.iter
                (fun chunk ->
                  output_string oc chunk;
                  flush oc;
                  Thread.delay 0.002)
                [ "1"; "1\nhel"; "lo"; " world\n"; "0"; "\n"; "\n" ])
            ()
        in
        Alcotest.(check (option string))
          "first frame" (Some "hello world") (Srv.Wire.read ic);
        Alcotest.(check (option string)) "second frame" (Some "")
          (Srv.Wire.read ic);
        Thread.join writer;
        close_out oc);
    t "frame exactly at the cap is accepted" (fun () ->
        let ic, oc = pipe_io () in
        let payload = String.make Srv.Wire.max_frame 'x' in
        let writer = Thread.create (fun () -> Srv.Wire.write oc payload) () in
        (match Srv.Wire.read ic with
        | Some got ->
          Alcotest.(check int) "length" Srv.Wire.max_frame (String.length got);
          Alcotest.(check bool) "content" true (String.equal got payload)
        | None -> Alcotest.fail "at-cap frame refused");
        Thread.join writer;
        close_out oc);
    t "explicit zero-length frame" (fun () ->
        let ic, oc = pipe_io () in
        output_string oc "0\n\n";
        flush oc;
        Alcotest.(check (option string)) "empty payload" (Some "")
          (Srv.Wire.read ic);
        close_out oc);
    t "torn length prefix on close is a framing error" (fun () ->
        (* The peer died after writing only part of the length line: the
           digits parse as a length, but the stream ends before the
           payload — that must be a framing error, not a clean EOF. *)
        let ic, oc = pipe_io () in
        output_string oc "12";
        flush oc;
        close_out oc;
        try
          ignore (Srv.Wire.read ic);
          Alcotest.fail "expected Framing_error"
        with Srv.Wire.Framing_error _ -> ());
    t "EOF inside the payload is a framing error" (fun () ->
        let ic, oc = pipe_io () in
        output_string oc "10\nonly4";
        flush oc;
        close_out oc;
        try
          ignore (Srv.Wire.read ic);
          Alcotest.fail "expected Framing_error"
        with Srv.Wire.Framing_error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Protocol round trips                                                *)
(* ------------------------------------------------------------------ *)

let proto_tests =
  let req_rt req =
    match Srv.Proto.request_of_json (Srv.Proto.request_to_json req) with
    | Ok req' -> Alcotest.(check bool) "request round trip" true (req = req')
    | Error e -> Alcotest.failf "request_of_json: %s" e
  in
  let reply_rt reply =
    match Srv.Proto.reply_of_json (Srv.Proto.reply_to_json reply) with
    | Ok reply' -> Alcotest.(check bool) "reply round trip" true (reply = reply')
    | Error e -> Alcotest.failf "reply_of_json: %s" e
  in
  [
    t "requests round trip through JSON" (fun () ->
        List.iter req_rt
          [
            Srv.Proto.Estimate { id = 1; sql = small_sql; schema = None };
            Srv.Proto.Estimate { id = 2; sql = big_sql; schema = Some "warehouse" };
            Srv.Proto.Compile
              {
                id = 3;
                sql = small_sql;
                schema = None;
                deadline_ms = Some 250.0;
                estimate_hint_s = None;
              };
            Srv.Proto.Compile
              {
                id = 4;
                sql = small_sql;
                schema = Some "tpch";
                deadline_ms = Some 1.5;
                estimate_hint_s = Some 0.0125;
              };
            Srv.Proto.Stats { id = 5 };
            Srv.Proto.Shutdown { id = 6 };
          ]);
    t "replies round trip through JSON" (fun () ->
        List.iter reply_rt
          [
            Srv.Proto.R_rejected
              {
                id = 7;
                reason = "aggregate_budget";
                estimate_us = 1234.5;
                retry_after_us = None;
              };
            Srv.Proto.R_rejected
              {
                id = 12;
                reason = "queue_full";
                estimate_us = 99.0;
                retry_after_us = Some 2500.0;
              };
            Srv.Proto.R_cancelled
              { id = 8; reason = "deadline"; estimate_us = 10.0; queue_s = 0.25 };
            Srv.Proto.R_error { id = 9; message = "no such table" };
            Srv.Proto.R_ok 10;
            Srv.Proto.R_stats (11, J.Obj [ ("requests", J.int 3) ]);
          ]);
    t "malformed request is an Error, not an exception" (fun () ->
        List.iter
          (fun doc ->
            match Srv.Proto.request_of_json doc with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "expected Error")
          [
            J.Null;
            J.Obj [];
            J.Obj [ ("op", J.Str "nope"); ("id", J.int 1) ];
            J.Obj [ ("op", J.Str "estimate"); ("id", J.int 1) ] (* no sql *);
            J.Obj [ ("op", J.Str "compile"); ("id", J.int 2) ] (* no sql *);
          ]);
    t "a missing id defaults to 0 rather than failing" (fun () ->
        match
          Srv.Proto.request_of_json
            (J.Obj [ ("op", J.Str "compile"); ("sql", J.Str "SELECT") ])
        with
        | Ok req -> Alcotest.(check int) "id" 0 (Srv.Proto.request_id req)
        | Error e -> Alcotest.failf "expected Ok, got %s" e);
  ]

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let sched_tests =
  [
    t "SJF pops cheapest first, FIFO within ties" (fun () ->
        let q = Srv.Sched.create Srv.Sched.Sjf in
        List.iter
          (fun (p, x) -> assert (Srv.Sched.push q ~priority:p x))
          [ (3.0, "c"); (1.0, "a1"); (2.0, "b"); (1.0, "a2") ];
        let order = List.init 4 (fun _ -> Option.get (Srv.Sched.pop q)) in
        Alcotest.(check (list string)) "order" [ "a1"; "a2"; "b"; "c" ] order);
    t "FIFO ignores priority" (fun () ->
        let q = Srv.Sched.create Srv.Sched.Fifo in
        List.iter
          (fun (p, x) -> assert (Srv.Sched.push q ~priority:p x))
          [ (3.0, "x"); (1.0, "y"); (2.0, "z") ];
        let order = List.init 3 (fun _ -> Option.get (Srv.Sched.pop q)) in
        Alcotest.(check (list string)) "order" [ "x"; "y"; "z" ] order);
    t "close rejects pushes and wakes poppers" (fun () ->
        let q = Srv.Sched.create Srv.Sched.Sjf in
        assert (Srv.Sched.push q ~priority:1.0 "first");
        Srv.Sched.close q;
        Alcotest.(check bool) "push after close" false
          (Srv.Sched.push q ~priority:0.0 "late");
        Alcotest.(check (option string)) "drains existing" (Some "first")
          (Srv.Sched.pop q);
        Alcotest.(check (option string)) "then None" None (Srv.Sched.pop q));
    t "drain empties in priority order" (fun () ->
        let q = Srv.Sched.create Srv.Sched.Sjf in
        List.iter
          (fun (p, x) -> assert (Srv.Sched.push q ~priority:p x))
          [ (2.0, "b"); (1.0, "a") ];
        Alcotest.(check (list string)) "drained" [ "a"; "b" ] (Srv.Sched.drain q);
        Alcotest.(check int) "empty" 0 (Srv.Sched.length q));
    t "blocked pop wakes on push from another thread" (fun () ->
        let q = Srv.Sched.create Srv.Sched.Sjf in
        let got = ref None in
        let th = Thread.create (fun () -> got := Srv.Sched.pop q) () in
        Thread.delay 0.02;
        assert (Srv.Sched.push q ~priority:1.0 "woken");
        Thread.join th;
        Alcotest.(check (option string)) "woken" (Some "woken") !got);
  ]

(* ------------------------------------------------------------------ *)
(* Admission policy                                                    *)
(* ------------------------------------------------------------------ *)

let admission_tests =
  let p =
    { Srv.Admission.per_request_s = 1.0; aggregate_s = 2.0; max_queue = 3 }
  in
  let decide ?(in_flight_s = 0.0) ?(queued = 0) estimate_s =
    Srv.Admission.decide p ~in_flight_s ~queued ~estimate_s
  in
  [
    t "admits within budgets" (fun () ->
        Alcotest.(check bool) "ok" true (decide 0.5 = Ok ()));
    t "per-request ceiling" (fun () ->
        Alcotest.(check bool) "rejected" true
          (decide 1.5 = Error Srv.Admission.Per_request));
    t "aggregate ceiling with work in flight" (fun () ->
        Alcotest.(check bool) "rejected" true
          (decide ~in_flight_s:1.8 0.5 = Error Srv.Admission.Aggregate));
    t "aggregate never wedges an idle server" (fun () ->
        (* estimate alone exceeds aggregate_s, but nothing is in flight and
           the queue is empty: per-request-legal work must be admitted. *)
        let p =
          { Srv.Admission.per_request_s = 10.0; aggregate_s = 2.0; max_queue = 3 }
        in
        Alcotest.(check bool) "admitted" true
          (Srv.Admission.decide p ~in_flight_s:0.0 ~queued:0 ~estimate_s:5.0
          = Ok ()));
    t "queue ceiling" (fun () ->
        Alcotest.(check bool) "rejected" true
          (decide ~queued:3 0.1 = Error Srv.Admission.Queue_full));
    t "reason strings are stable" (fun () ->
        Alcotest.(check (list string)) "identifiers"
          [ "per_request_budget"; "aggregate_budget"; "queue_full"; "shutting_down" ]
          (List.map Srv.Admission.reason_string
             [
               Srv.Admission.Per_request;
               Srv.Admission.Aggregate;
               Srv.Admission.Queue_full;
               Srv.Admission.Shutting_down;
             ]));
  ]

(* ------------------------------------------------------------------ *)
(* Level selection                                                     *)
(* ------------------------------------------------------------------ *)

let level_tests =
  let level name = { Cote.Multi_level.level_name = name; level_knobs = O.Knobs.default } in
  let predictions = [ ("full", 5.0); ("greedy", 1.5); ("minimal", 0.1) ] in
  let predict_for chosen_name = List.assoc chosen_name predictions in
  (* select identifies levels by walking the chain; drive it with a predict
     that keys off a mutable cursor naming the level under evaluation. *)
  let run_select ~downgrade_s =
    let chain = List.map (fun (n, _) -> level n) predictions in
    let cursor = ref [] in
    let predict _knobs =
      let name =
        match !cursor with
        | [] -> cursor := List.map fst predictions; List.hd !cursor
        | _ -> List.hd !cursor
      in
      cursor := List.tl !cursor;
      {
        Cote.Predict.seconds = predict_for name;
        estimate =
          {
            Cote.Estimator.joins = 0; nljn = 0; mgjn = 0; hsjn = 0; scan_plans = 0;
            entries = 0; elapsed = 0.0; est_memo_plans = 0.0; mv_tests = 0;
          };
      }
    in
    cursor := List.map fst predictions;
    Srv.Level.select ~levels:chain ~downgrade_s ~predict
  in
  [
    t "no budget takes the first level" (fun () ->
        let c = run_select ~downgrade_s:None in
        Alcotest.(check string) "level" "full" c.Srv.Level.level.Cote.Multi_level.level_name;
        Alcotest.(check int) "downgrades" 0 c.Srv.Level.downgrades);
    t "budget walks down to the first level that fits" (fun () ->
        let c = run_select ~downgrade_s:(Some 2.0) in
        Alcotest.(check string) "level" "greedy" c.Srv.Level.level.Cote.Multi_level.level_name;
        Alcotest.(check int) "downgrades" 1 c.Srv.Level.downgrades);
    t "nothing fits: cheapest level wins" (fun () ->
        let c = run_select ~downgrade_s:(Some 0.01) in
        Alcotest.(check string) "level" "minimal" c.Srv.Level.level.Cote.Multi_level.level_name;
        Alcotest.(check int) "downgrades" 2 c.Srv.Level.downgrades);
    t "empty chain raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Qopt_server.Level.select: empty level chain")
          (fun () ->
            ignore
              (Srv.Level.select ~levels:[] ~downgrade_s:None ~predict:(fun _ ->
                   Alcotest.fail "predict called on empty chain"))));
  ]

(* ------------------------------------------------------------------ *)
(* The real server on a Unix socket                                    *)
(* ------------------------------------------------------------------ *)

let with_server ?(configure = fun c -> c) f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "qopt-test-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    configure
      (Srv.Server.default_config ~listen:(`Unix path) ~model
         ~schemas:[ ("warehouse", schema) ]
         ())
  in
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref false in
  let server =
    Thread.create
      (fun () ->
        Srv.Server.run
          ~on_ready:(fun () ->
            Mutex.protect lock (fun () ->
                ready := true;
                Condition.signal cond))
          cfg)
      ()
  in
  Mutex.lock lock;
  while not !ready do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Srv.Client.connect (`Unix path) in
         ignore (Srv.Client.request c (Srv.Proto.Shutdown { id = 999_999 }));
         Srv.Client.close c
       with Unix.Unix_error _ | Sys_error _ -> ());
      Thread.join server;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (`Unix path))

let request_exn c req =
  match Srv.Client.request c req with
  | Some reply -> reply
  | None -> Alcotest.fail "connection closed without a reply"

(* Polls the stats endpoint until [pred] holds on the stats document —
   used to wait for a compile to actually occupy the worker before
   queueing work behind it, without sleeping for guessed durations. *)
let wait_for_stats c pred =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    match request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c }) with
    | Srv.Proto.R_stats (_, doc) ->
      if pred doc then ()
      else if Unix.gettimeofday () > deadline then
        Alcotest.fail "stats condition not reached within 5s"
      else begin
        Thread.delay 0.002;
        go ()
      end
    | _ -> Alcotest.fail "expected stats reply"
  in
  go ()

let stat doc name = Option.bind (J.member name doc) J.get_int |> Option.get

let statf doc name = Option.bind (J.member name doc) J.get_float |> Option.get

(* The big compile is on the worker (not queued) and nothing else is. *)
let big_is_running doc = stat doc "queue_depth" = 0 && statf doc "in_flight_s" > 0.0

let server_tests =
  [
    t "estimate over the socket equals the direct library call" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                List.iter
                  (fun sql ->
                    let block = Qopt_sql.Binder.parse_and_bind schema sql in
                    let direct =
                      Cote.Predict.compile_time ~knobs:O.Knobs.default ~model
                        O.Env.serial block
                    in
                    let id = Srv.Client.fresh_id c in
                    match
                      request_exn c (Srv.Proto.Estimate { id; sql; schema = None })
                    with
                    | Srv.Proto.R_estimate (rid, e) ->
                      let de = direct.Cote.Predict.estimate in
                      Alcotest.(check int) "id echoed" id rid;
                      Alcotest.(check (float 0.0)) "predicted_s bit-for-bit"
                        direct.Cote.Predict.seconds e.Srv.Proto.e_predicted_s;
                      Alcotest.(check int) "joins" de.Cote.Estimator.joins
                        e.Srv.Proto.e_joins;
                      Alcotest.(check int) "nljn" de.Cote.Estimator.nljn
                        e.Srv.Proto.e_nljn;
                      Alcotest.(check int) "mgjn" de.Cote.Estimator.mgjn
                        e.Srv.Proto.e_mgjn;
                      Alcotest.(check int) "hsjn" de.Cote.Estimator.hsjn
                        e.Srv.Proto.e_hsjn;
                      Alcotest.(check int) "entries" de.Cote.Estimator.entries
                        e.Srv.Proto.e_entries;
                      Alcotest.(check string) "level" "dp_default"
                        e.Srv.Proto.e_level
                    | r ->
                      Alcotest.failf "expected estimate reply, got %s"
                        (J.to_string (Srv.Proto.reply_to_json r)))
                  [ small_sql; big_sql ])));
    t "compile over the socket equals the direct optimizer" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let block = Qopt_sql.Binder.parse_and_bind schema small_sql in
                let direct = O.Optimizer.optimize O.Env.serial block in
                let id = Srv.Client.fresh_id c in
                match
                  request_exn c
                    (Srv.Proto.Compile
                       { id; sql = small_sql; schema = None; deadline_ms = None; estimate_hint_s = None })
                with
                | Srv.Proto.R_compile (rid, b) ->
                  Alcotest.(check int) "id echoed" id rid;
                  Alcotest.(check (option string)) "plan"
                    (Option.map
                       (Format.asprintf "%a" O.Plan.pp_compact)
                       direct.O.Optimizer.best)
                    b.Srv.Proto.c_plan;
                  (match direct.O.Optimizer.best with
                  | Some p ->
                    Alcotest.(check (float 0.0)) "cost bit-for-bit"
                      p.O.Plan.cost b.Srv.Proto.c_cost;
                    Alcotest.(check (float 0.0)) "card bit-for-bit"
                      p.O.Plan.card b.Srv.Proto.c_card
                  | None -> ());
                  Alcotest.(check int) "joins" direct.O.Optimizer.joins
                    b.Srv.Proto.c_joins;
                  Alcotest.(check int) "kept" direct.O.Optimizer.kept
                    b.Srv.Proto.c_kept;
                  Alcotest.(check int) "entries" direct.O.Optimizer.entries
                    b.Srv.Proto.c_entries;
                  Alcotest.(check bool) "elapsed positive" true
                    (b.Srv.Proto.c_elapsed_s >= 0.0)
                | r ->
                  Alcotest.failf "expected compile reply, got %s"
                    (J.to_string (Srv.Proto.reply_to_json r)))));
    t "second structurally identical compile hits the statement cache" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let compile sql =
                  let id = Srv.Client.fresh_id c in
                  request_exn c
                    (Srv.Proto.Compile { id; sql; schema = None; deadline_ms = None; estimate_hint_s = None })
                in
                (match compile small_sql with
                | Srv.Proto.R_compile (_, b) ->
                  Alcotest.(check bool) "first is a miss" false
                    b.Srv.Proto.c_cache_hit
                | _ -> Alcotest.fail "expected compile reply");
                (* same structure, different literal: the signature matches *)
                match
                  compile
                    "SELECT s.s_store_name FROM store s WHERE s.s_market_id = 7"
                with
                | Srv.Proto.R_compile (_, b) ->
                  Alcotest.(check bool) "second is a hit" true
                    b.Srv.Proto.c_cache_hit
                | _ -> Alcotest.fail "expected compile reply")));
    t "overload rejects with structure, never hangs" (fun () ->
        with_server
          ~configure:(fun cfg ->
            {
              cfg with
              Srv.Server.admission =
                {
                  Srv.Admission.per_request_s = 1e-12;
                  aggregate_s = infinity;
                  max_queue = max_int;
                };
            })
          (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                for _ = 1 to 5 do
                  let id = Srv.Client.fresh_id c in
                  match
                    request_exn c
                      (Srv.Proto.Compile
                         { id; sql = big_sql; schema = None; deadline_ms = None; estimate_hint_s = None })
                  with
                  | Srv.Proto.R_rejected { id = rid; reason; estimate_us; _ } ->
                    Alcotest.(check int) "id echoed" id rid;
                    Alcotest.(check string) "reason" "per_request_budget" reason;
                    Alcotest.(check bool) "estimate attached" true
                      (estimate_us > 0.0)
                  | r ->
                    Alcotest.failf "expected rejection, got %s"
                      (J.to_string (Srv.Proto.reply_to_json r))
                done;
                (* estimates are not admission-controlled *)
                match
                  request_exn c
                    (Srv.Proto.Estimate
                       { id = Srv.Client.fresh_id c; sql = big_sql; schema = None })
                with
                | Srv.Proto.R_estimate _ -> ()
                | _ -> Alcotest.fail "estimate should bypass admission")));
    t "past-deadline request is cancelled and reported" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            let probe = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () ->
                Srv.Client.close probe;
                Srv.Client.close c)
              (fun () ->
                (* One worker: the big compile occupies it for tens of ms
                   while the small request's 1 ms deadline expires on the
                   queue; the worker must cancel it at dequeue. *)
                let big_id = Srv.Client.fresh_id c in
                Srv.Client.send c
                  (Srv.Proto.Compile
                     { id = big_id; sql = big_sql; schema = None; deadline_ms = None; estimate_hint_s = None });
                wait_for_stats probe big_is_running;
                let small_id = Srv.Client.fresh_id c in
                Srv.Client.send c
                  (Srv.Proto.Compile
                     {
                       id = small_id;
                       sql = small_sql;
                       schema = None;
                       deadline_ms = Some 1.0;
                       estimate_hint_s = None;
                     });
                let got_big = ref false and got_small = ref false in
                for _ = 1 to 2 do
                  match Srv.Client.recv c with
                  | Some (Srv.Proto.R_compile (rid, _)) when rid = big_id ->
                    got_big := true
                  | Some (Srv.Proto.R_cancelled { id; reason; queue_s; _ })
                    when id = small_id ->
                    got_small := true;
                    Alcotest.(check string) "reason" "deadline" reason;
                    Alcotest.(check bool) "queue time reported" true (queue_s > 0.0)
                  | Some r ->
                    Alcotest.failf "unexpected reply %s"
                      (J.to_string (Srv.Proto.reply_to_json r))
                  | None -> Alcotest.fail "connection closed early"
                done;
                Alcotest.(check bool) "big compiled" true !got_big;
                Alcotest.(check bool) "small cancelled" true !got_small)));
    t "shutdown cancels queued work and exits cleanly" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            let work = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () ->
                Srv.Client.close work;
                Srv.Client.close c)
              (fun () ->
                (* Occupy the single worker, then queue smalls behind it. *)
                let big_id = Srv.Client.fresh_id work in
                Srv.Client.send work
                  (Srv.Proto.Compile
                     { id = big_id; sql = big_sql; schema = None; deadline_ms = None; estimate_hint_s = None });
                (* Wait for the worker to actually start the big job before
                   queueing, so the smalls cannot sneak ahead of it. *)
                wait_for_stats c big_is_running;
                let small_ids =
                  List.init 3 (fun _ ->
                      let id = Srv.Client.fresh_id work in
                      Srv.Client.send work
                        (Srv.Proto.Compile
                           { id; sql = small_sql; schema = None; deadline_ms = None; estimate_hint_s = None });
                      id)
                in
                (* All three smalls admitted and queued before the shutdown
                   races them; the big holds the worker far longer. *)
                wait_for_stats c (fun doc -> stat doc "queue_depth" = 3);
                (match request_exn c (Srv.Proto.Shutdown { id = 1 }) with
                | Srv.Proto.R_ok 1 -> ()
                | _ -> Alcotest.fail "expected ok for shutdown");
                (* The running big compile finishes; the queued smalls come
                   back cancelled with reason "shutdown". *)
                let cancelled = ref [] in
                let compiled = ref [] in
                let rec collect n =
                  if n > 0 then
                    match Srv.Client.recv work with
                    | Some (Srv.Proto.R_compile (rid, _)) ->
                      compiled := rid :: !compiled;
                      collect (n - 1)
                    | Some (Srv.Proto.R_cancelled { id; reason; _ }) ->
                      Alcotest.(check string) "reason" "shutdown" reason;
                      cancelled := id :: !cancelled;
                      collect (n - 1)
                    | Some r ->
                      Alcotest.failf "unexpected reply %s"
                        (J.to_string (Srv.Proto.reply_to_json r))
                    | None -> ()
                  else ()
                in
                collect 4;
                Alcotest.(check (list int)) "big compiled" [ big_id ] !compiled;
                Alcotest.(check (list int)) "smalls cancelled"
                  (List.sort compare small_ids)
                  (List.sort compare !cancelled))));
    t "stats reflects the traffic" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                ignore
                  (request_exn c
                     (Srv.Proto.Estimate
                        { id = Srv.Client.fresh_id c; sql = small_sql; schema = None }));
                ignore
                  (request_exn c
                     (Srv.Proto.Compile
                        {
                          id = Srv.Client.fresh_id c;
                          sql = small_sql;
                          schema = None;
                          deadline_ms = None;
                            estimate_hint_s = None;
                        }));
                match request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c }) with
                | Srv.Proto.R_stats (_, doc) ->
                  let field name =
                    Option.bind (J.member name doc) J.get_int |> Option.get
                  in
                  Alcotest.(check int) "estimates" 1 (field "estimates");
                  Alcotest.(check int) "compiles" 1 (field "compiles");
                  Alcotest.(check int) "rejected" 0 (field "rejected")
                | _ -> Alcotest.fail "expected stats reply")));
    t "stats reconcile exactly after a mixed burst" (fun () ->
        (* The counters live in per-event atomics (not one mutex-guarded
           block), so the reconciliation must still be exact: every request
           lands in exactly one outcome bucket, and admitted splits into
           cold compiles + plan hits with nothing lost or double-counted. *)
        with_server
          ~configure:(fun cfg ->
            { cfg with Srv.Server.plan_cache = Some Cote.Plan_cache.default_config })
          (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let estimate sql =
                  ignore
                    (request_exn c
                       (Srv.Proto.Estimate
                          { id = Srv.Client.fresh_id c; sql; schema = None }))
                in
                let compile sql =
                  ignore
                    (request_exn c
                       (Srv.Proto.Compile
                          {
                            id = Srv.Client.fresh_id c;
                            sql;
                            schema = None;
                            deadline_ms = None;
                            estimate_hint_s = None;
                          }))
                in
                for _ = 1 to 3 do
                  estimate small_sql
                done;
                estimate "SELECT x.a FROM no_such_table x";
                estimate "SELECT ' FROM store s";
                compile small_sql;
                (* Structurally identical: served from the plan cache. *)
                compile small_sql;
                compile big_sql;
                match request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c }) with
                | Srv.Proto.R_stats (_, doc) ->
                  let f = stat doc in
                  Alcotest.(check int) "estimates" 3 (f "estimates");
                  Alcotest.(check int) "errors" 2 (f "errors");
                  Alcotest.(check int) "compiles" 2 (f "compiles");
                  Alcotest.(check int) "plan hits" 1 (f "plan_hits");
                  Alcotest.(check int) "admitted = compiles + plan hits"
                    (f "compiles" + f "plan_hits")
                    (f "admitted");
                  Alcotest.(check int) "rejected" 0 (f "rejected");
                  Alcotest.(check int) "cancelled" 0 (f "cancelled");
                  (* Every request accounted for exactly once, including
                     this stats poll itself. *)
                  Alcotest.(check int) "requests reconcile"
                    (f "estimates" + f "errors" + f "compiles" + f "plan_hits"
                    + f "rejected" + f "cancelled" + 1)
                    (f "requests")
                | _ -> Alcotest.fail "expected stats reply")));
    t "bad SQL over the socket is a structured error reply" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                List.iter
                  (fun sql ->
                    let id = Srv.Client.fresh_id c in
                    match
                      request_exn c (Srv.Proto.Estimate { id; sql; schema = None })
                    with
                    | Srv.Proto.R_error { id = rid; message } ->
                      Alcotest.(check int) "id echoed" id rid;
                      Alcotest.(check bool) "message non-empty" true
                        (String.length message > 0)
                    | r ->
                      Alcotest.failf "expected error reply, got %s"
                        (J.to_string (Srv.Proto.reply_to_json r)))
                  [
                    "SELECT x.a FROM no_such_table x";
                    "SELECT ' FROM store s";
                    "";
                  ])));
  ]

(* ------------------------------------------------------------------ *)
(* The plan cache behind the socket                                    *)
(* ------------------------------------------------------------------ *)

let plan_cache_tests =
  [
    t "plan-cache hits bypass the optimizer and clear a cold-reject ceiling"
      (fun () ->
        (* The per-request ceiling is set so only a 0-second estimate can
           clear it: the canned model has no intercept, so the first cold
           single-table compile predicts exactly 0.0 s and is admitted —
           but once its actual elapsed time is recorded, any later COLD
           compile of the same template would be rejected.  The only way
           parameter-varying repeats can come back compiled is the plan
           cache's inline hit path (estimate 0).  Join queries predict
           microseconds cold and are rejected outright. *)
        with_server
          ~configure:(fun cfg ->
            {
              cfg with
              Srv.Server.plan_cache = Some Cote.Plan_cache.default_config;
              admission =
                {
                  Srv.Admission.per_request_s = 1e-7;
                  aggregate_s = infinity;
                  max_queue = max_int;
                };
            })
          (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let compile sql =
                  let id = Srv.Client.fresh_id c in
                  request_exn c
                    (Srv.Proto.Compile { id; sql; schema = None; deadline_ms = None; estimate_hint_s = None })
                in
                (* Cold miss: compiled by the optimizer, not from the cache. *)
                let b0 =
                  match compile small_sql with
                  | Srv.Proto.R_compile (_, b) ->
                    Alcotest.(check bool) "cold: not plan-cached" false
                      b.Srv.Proto.c_plan_cached;
                    Alcotest.(check bool) "cold: stmt-cache miss" false
                      b.Srv.Proto.c_cache_hit;
                    b
                  | r ->
                    Alcotest.failf "expected compile reply, got %s"
                      (J.to_string (Srv.Proto.reply_to_json r))
                in
                (* A cold join cannot clear the ceiling. *)
                (match
                   compile
                     "SELECT s.s_store_name FROM store s, store_sales ss \
                      WHERE ss.ss_store_sk = s.s_store_sk"
                 with
                | Srv.Proto.R_rejected { reason; _ } ->
                  Alcotest.(check string) "cold join rejected"
                    "per_request_budget" reason
                | r ->
                  Alcotest.failf "expected rejection, got %s"
                    (J.to_string (Srv.Proto.reply_to_json r)));
                (* Parameter-varying repeats of the warmed template: every
                   one must be served (from the cache — a cold compile
                   could no longer clear the ceiling). *)
                let mix =
                  List.init 12 (fun i ->
                      Printf.sprintf
                        "SELECT s.s_store_name FROM store s WHERE s.s_market_id = %d"
                        (1 + (i mod 9)))
                in
                let s = Srv.Loadgen.run_burst ~addr ~sql:mix () in
                Alcotest.(check int) "burst: all compiled" 12 s.Srv.Loadgen.compiled;
                Alcotest.(check int) "burst: none rejected" 0 s.Srv.Loadgen.rejected;
                (* A hit's reply is bit-for-bit the cold reply's plan. *)
                (match
                   compile
                     "SELECT s.s_store_name FROM store s WHERE s.s_market_id = 8"
                 with
                | Srv.Proto.R_compile (_, b) ->
                  Alcotest.(check bool) "hit: plan-cached" true
                    b.Srv.Proto.c_plan_cached;
                  (* The stmt cache is bypassed on a plan hit, so the
                     stmt-cache flag must not claim otherwise. *)
                  Alcotest.(check bool) "hit: stmt cache not consulted" false
                    b.Srv.Proto.c_cache_hit;
                  Alcotest.(check (option string)) "hit: same plan"
                    b0.Srv.Proto.c_plan b.Srv.Proto.c_plan;
                  Alcotest.(check (float 0.0)) "hit: cost bit-for-bit"
                    b0.Srv.Proto.c_cost b.Srv.Proto.c_cost;
                  Alcotest.(check (float 0.0)) "hit: card bit-for-bit"
                    b0.Srv.Proto.c_card b.Srv.Proto.c_card;
                  Alcotest.(check int) "hit: joins" b0.Srv.Proto.c_joins
                    b.Srv.Proto.c_joins;
                  Alcotest.(check (float 0.0)) "hit: no optimizer elapsed" 0.0
                    b.Srv.Proto.c_elapsed_s;
                  Alcotest.(check (float 0.0)) "hit: zero estimate" 0.0
                    b.Srv.Proto.c_predicted_s
                | r ->
                  Alcotest.failf "expected compile reply, got %s"
                    (J.to_string (Srv.Proto.reply_to_json r)));
                (* Optimizer pass counters stay flat: one compile total. *)
                match request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c }) with
                | Srv.Proto.R_stats (_, doc) ->
                  Alcotest.(check int) "one optimizer pass" 1 (stat doc "compiles");
                  Alcotest.(check int) "plan hits" 13 (stat doc "plan_hits");
                  Alcotest.(check int) "rejects" 1 (stat doc "rejected")
                | _ -> Alcotest.fail "expected stats reply")));
    t "same-named schemas never share a plan-cache entry" (fun () ->
        (* Two schemas with identical table and column names but swapped
           row counts: identical SQL produces the same template text and
           near-identical predicate selectivities, so neither the envelope
           nor the generation check can tell them apart — only the
           schema-qualified key keeps a request against one schema from
           being served the other's plan. *)
        let mirror t1_rows t2_rows =
          let table name rows =
            C.Table.make ~rows ~name ~primary_key:[ "k" ]
              [
                C.Column.make ~rows ~distinct:rows "k";
                C.Column.make ~rows ~distinct:100.0 "f";
                C.Column.make ~rows ~distinct:50.0 "v";
              ]
          in
          C.Schema.of_tables [ table "t1" t1_rows; table "t2" t2_rows ]
        in
        let sql n =
          Printf.sprintf "SELECT a.v FROM t1 a, t2 b WHERE a.k = b.k AND a.f = %d"
            n
        in
        with_server
          ~configure:(fun cfg ->
            {
              cfg with
              Srv.Server.plan_cache = Some Cote.Plan_cache.default_config;
              schemas =
                [
                  ("alpha", mirror 40_000.0 200.0);
                  ("beta", mirror 200.0 40_000.0);
                ];
            })
          (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let compile schema n =
                  match
                    request_exn c
                      (Srv.Proto.Compile
                         {
                           id = Srv.Client.fresh_id c;
                           sql = sql n;
                           schema = Some schema;
                           deadline_ms = None;
                            estimate_hint_s = None;
                         })
                  with
                  | Srv.Proto.R_compile (_, b) -> b
                  | r ->
                    Alcotest.failf "expected compile reply, got %s"
                      (J.to_string (Srv.Proto.reply_to_json r))
                in
                let a0 = compile "alpha" 5 in
                Alcotest.(check bool) "alpha cold" false
                  a0.Srv.Proto.c_plan_cached;
                let a1 = compile "alpha" 7 in
                Alcotest.(check bool) "alpha repeat hits" true
                  a1.Srv.Proto.c_plan_cached;
                (* Same SQL against beta must not be served alpha's entry. *)
                let b0 = compile "beta" 7 in
                Alcotest.(check bool) "beta is a miss, not alpha's hit" false
                  b0.Srv.Proto.c_plan_cached;
                Alcotest.(check bool) "beta compiled its own plan" true
                  (b0.Srv.Proto.c_cost <> a0.Srv.Proto.c_cost
                  || b0.Srv.Proto.c_plan <> a0.Srv.Proto.c_plan);
                let b1 = compile "beta" 9 in
                Alcotest.(check bool) "beta repeat hits its own entry" true
                  b1.Srv.Proto.c_plan_cached;
                Alcotest.(check (option string)) "beta hit serves beta's plan"
                  b0.Srv.Proto.c_plan b1.Srv.Proto.c_plan)));
    t "a disabled plan cache leaves replies un-cached-flagged" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let compile () =
                  request_exn c
                    (Srv.Proto.Compile
                       {
                         id = Srv.Client.fresh_id c;
                         sql = small_sql;
                         schema = None;
                         deadline_ms = None;
                            estimate_hint_s = None;
                       })
                in
                ignore (compile ());
                match compile () with
                | Srv.Proto.R_compile (_, b) ->
                  Alcotest.(check bool) "never plan-cached" false
                    b.Srv.Proto.c_plan_cached
                | _ -> Alcotest.fail "expected compile reply")));
  ]

(* ------------------------------------------------------------------ *)
(* Online recalibration behind the socket                              *)
(* ------------------------------------------------------------------ *)

(* Structurally distinct join templates: every compile is a stmt-cache
   miss, so each reply's c_predicted_s is the pure model prediction and
   the before/after error comparison measures the model, not the cache. *)
let recalib_warm_sql =
  [
    "SELECT ss.ss_quantity FROM store_sales ss, date_dim d WHERE \
     ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 1999";
    "SELECT ss.ss_quantity FROM store_sales ss, item i WHERE ss.ss_item_sk \
     = i.i_item_sk AND i.i_category_id = 4";
    "SELECT ss.ss_quantity FROM store_sales ss, store s WHERE \
     ss.ss_store_sk = s.s_store_sk AND s.s_market_id = 2";
    "SELECT ss.ss_quantity FROM store_sales ss, customer c WHERE \
     ss.ss_customer_sk = c.c_customer_sk AND c.c_birth_year = 1970";
    "SELECT ss.ss_quantity FROM store_sales ss, date_dim d, item i WHERE \
     ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk";
    "SELECT ss.ss_quantity FROM store_sales ss, store s, promotion p WHERE \
     ss.ss_store_sk = s.s_store_sk AND ss.ss_promo_sk = p.p_promo_sk";
    "SELECT ss.ss_quantity FROM store_sales ss, customer c, \
     household_demographics hd WHERE ss.ss_customer_sk = c.c_customer_sk \
     AND ss.ss_hdemo_sk = hd.hd_demo_sk";
    "SELECT ss.ss_quantity FROM store_sales ss, date_dim d, time_dim t \
     WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_sold_time_sk = \
     t.t_time_sk";
  ]

let recalib_probe_sql =
  [
    "SELECT ss.ss_quantity FROM store_sales ss, date_dim d, item i, store \
     s WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = \
     i.i_item_sk AND ss.ss_store_sk = s.s_store_sk";
    "SELECT ss.ss_quantity FROM store_sales ss, customer c, promotion p \
     WHERE ss.ss_customer_sk = c.c_customer_sk AND ss.ss_promo_sk = \
     p.p_promo_sk";
    "SELECT ss.ss_quantity FROM store_sales ss, item i, \
     household_demographics hd WHERE ss.ss_item_sk = i.i_item_sk AND \
     ss.ss_hdemo_sk = hd.hd_demo_sk";
    "SELECT ss.ss_quantity FROM store_sales ss, date_dim d, customer c, \
     promotion p WHERE ss.ss_sold_date_sk = d.d_date_sk AND \
     ss.ss_customer_sk = c.c_customer_sk AND ss.ss_promo_sk = p.p_promo_sk";
  ]

let recalibrate_tests =
  [
    t "--recalibrate repairs a skewed model's R_compile prediction error"
      (fun () ->
        (* The serving model starts 20x the canned coefficients — a gross
           overestimate of this machine.  The drift detector (never a
           manual refit call) must fire inside the first burst and swap
           the coefficients, after which fresh-template predictions land
           far closer to the measured elapsed. *)
        let skewed =
          Cote.Time_model.make ~c_nljn:4e-5 ~c_mgjn:1e-4 ~c_hsjn:8e-5 ()
        in
        with_server
          ~configure:(fun cfg ->
            {
              cfg with
              Srv.Server.model = skewed;
              recalibrate =
                Some
                  {
                    Cote.Recalibrate.default_config with
                    Cote.Recalibrate.min_observations = 6;
                    drift_window = 12;
                    (* One refit in the run: the second attempt would
                       need more observations than the test sends. *)
                    min_refit_interval = 64;
                    ridge = 1e-6;
                  };
            })
          (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let compile_err sql =
                  match
                    request_exn c
                      (Srv.Proto.Compile
                         {
                           id = Srv.Client.fresh_id c;
                           sql;
                           schema = None;
                           deadline_ms = None;
                            estimate_hint_s = None;
                         })
                  with
                  | Srv.Proto.R_compile (_, b) ->
                    Alcotest.(check bool) "fresh template: no stmt-cache hit"
                      false b.Srv.Proto.c_cache_hit;
                    Float.abs (b.Srv.Proto.c_predicted_s -. b.Srv.Proto.c_elapsed_s)
                    /. b.Srv.Proto.c_elapsed_s *. 100.0
                  | r ->
                    Alcotest.failf "expected compile reply, got %s"
                      (J.to_string (Srv.Proto.reply_to_json r))
                in
                let mean errs =
                  List.fold_left ( +. ) 0.0 errs
                  /. float_of_int (List.length errs)
                in
                (* The first min_observations compiles are all judged by
                   the skewed model (the refit can only land after the
                   6th reply's observation). *)
                let warm = List.map compile_err recalib_warm_sql in
                let err_before =
                  mean
                    (List.filteri (fun i _ -> i < 6) warm)
                in
                (* Fresh templates against whatever is serving now. *)
                let err_after = mean (List.map compile_err recalib_probe_sql) in
                (match
                   request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c })
                 with
                | Srv.Proto.R_stats (_, doc) ->
                  Alcotest.(check bool) "drift-triggered refit happened" true
                    (stat doc "refits" >= 1)
                | _ -> Alcotest.fail "expected stats reply");
                if not (err_after < err_before /. 2.0) then
                  Alcotest.failf
                    "recalibration did not help: %.1f%% before vs %.1f%% after"
                    err_before err_after)));
    t "without --recalibrate the configured model serves unchanged" (fun () ->
        with_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                List.iter
                  (fun sql -> ignore (request_exn c
                       (Srv.Proto.Compile
                          {
                            id = Srv.Client.fresh_id c;
                            sql;
                            schema = None;
                            deadline_ms = None;
                            estimate_hint_s = None;
                          })))
                  recalib_warm_sql;
                match
                  request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c })
                with
                | Srv.Proto.R_stats (_, doc) ->
                  Alcotest.(check int) "no refits ever" 0 (stat doc "refits")
                | _ -> Alcotest.fail "expected stats reply")));
  ]

(* ------------------------------------------------------------------ *)
(* Client resilience: reconnect with backoff, per-request timeouts,     *)
(* and sockets dying mid-reply — against a scripted fake server.        *)
(* ------------------------------------------------------------------ *)

let fake_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "qopt-fake-%d-%d.sock" (Unix.getpid ()) (Random.int 100000))

(* Binds [path] (after [delay_s], to exercise dial retries) and hands
   the listening socket to [script] on a thread. *)
let with_fake_server ?(delay_s = 0.0) ~script path f =
  let bind_listen () =
    let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind lfd (Unix.ADDR_UNIX path);
    Unix.listen lfd 8;
    lfd
  in
  (* Without an intentional delay, bind before [f] runs: a client dialing
     with attempts:1 must never race the server thread to the socket —
     losing that race raises in [f] and leaves the script wedged in
     accept, which the joining finally below then waits on forever. *)
  let pre_bound = if delay_s > 0.0 then None else Some (bind_listen ()) in
  let th =
    Thread.create
      (fun () ->
        let lfd =
          match pre_bound with
          | Some lfd -> lfd
          | None ->
            Thread.delay delay_s;
            bind_listen ()
        in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close lfd with Unix.Unix_error _ -> ())
          (fun () -> script lfd))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
    f

let accept_io lfd =
  let fd, _ = Unix.accept lfd in
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let echo_ok ic oc =
  match Srv.Wire.read ic with
  | Some payload -> (
    match Result.bind (J.parse payload) Srv.Proto.request_of_json with
    | Ok req ->
      Srv.Wire.write oc
        (J.to_string
           (Srv.Proto.reply_to_json
              (Srv.Proto.R_ok (Srv.Proto.request_id req))))
    | Error _ -> Alcotest.fail "fake server got unparseable request")
  | None -> Alcotest.fail "fake server got EOF instead of a request"

let drain_until_eof ic = while Srv.Wire.read ic <> None do () done

let client_tests =
  [
    t "connect retries with backoff until the server binds" (fun () ->
        let path = fake_path () in
        with_fake_server ~delay_s:0.15 path
          ~script:(fun lfd ->
            let fd, ic, oc = accept_io lfd in
            echo_ok ic oc;
            drain_until_eof ic;
            Unix.close fd)
          (fun () ->
            (* One attempt would get ENOENT; the backoff schedule covers
               the 150ms bind delay with room to spare. *)
            let c = Srv.Client.connect ~attempts:50 (`Unix path) in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let id = Srv.Client.fresh_id c in
                match Srv.Client.request c (Srv.Proto.Stats { id }) with
                | Some (Srv.Proto.R_ok rid) ->
                  Alcotest.(check int) "id echoed" id rid
                | _ -> Alcotest.fail "expected R_ok from fake server")));
    t "request_timeout returns Timeout when the server stalls" (fun () ->
        let path = fake_path () in
        with_fake_server path
          ~script:(fun lfd ->
            let fd, ic, _ = accept_io lfd in
            (* Swallow the request and stall; the client dropping its end
               unblocks the drain. *)
            drain_until_eof ic;
            Unix.close fd)
          (fun () ->
            let c = Srv.Client.connect (`Unix path) in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let t0 = Unix.gettimeofday () in
                match
                  Srv.Client.request_timeout ~timeout_s:0.2 c
                    (Srv.Proto.Stats { id = Srv.Client.fresh_id c })
                with
                | Srv.Client.Timeout ->
                  Alcotest.(check bool) "timed out near the deadline" true
                    (Unix.gettimeofday () -. t0 < 2.0)
                | Srv.Client.Reply _ -> Alcotest.fail "stalled server replied?"
                | Srv.Client.Closed -> Alcotest.fail "expected Timeout, got Closed")));
    t "socket closing mid-reply yields Closed, not a hang" (fun () ->
        let path = fake_path () in
        with_fake_server path
          ~script:(fun lfd ->
            let fd, ic, oc = accept_io lfd in
            (match Srv.Wire.read ic with
            | Some _ ->
              (* A length prefix and half a payload, then death. *)
              output_string oc "100\n{\"op\":\"ok\"";
              flush oc
            | None -> ());
            Unix.close fd)
          (fun () ->
            let c = Srv.Client.connect (`Unix path) in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                match
                  Srv.Client.request_timeout ~timeout_s:5.0 c
                    (Srv.Proto.Stats { id = Srv.Client.fresh_id c })
                with
                | Srv.Client.Closed -> ()
                | Srv.Client.Timeout ->
                  Alcotest.fail "torn reply misread as a timeout"
                | Srv.Client.Reply _ ->
                  Alcotest.fail "torn reply misread as a reply")));
    t "lazy redial: a request after the server drops reconnects" (fun () ->
        let path = fake_path () in
        with_fake_server path
          ~script:(fun lfd ->
            (* First connection is dropped unserved; the second is served
               normally — the client must land on it transparently. *)
            let fd1, _, _ = accept_io lfd in
            Unix.close fd1;
            let fd2, ic, oc = accept_io lfd in
            echo_ok ic oc;
            drain_until_eof ic;
            Unix.close fd2)
          (fun () ->
            let c = Srv.Client.connect ~attempts:20 (`Unix path) in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                (* Observe the first connection dying... *)
                Alcotest.(check bool) "first connection died" true
                  (Srv.Client.recv c = None);
                (* ...and the very next request redials and succeeds. *)
                let id = Srv.Client.fresh_id c in
                match Srv.Client.request c (Srv.Proto.Stats { id }) with
                | Some (Srv.Proto.R_ok rid) ->
                  Alcotest.(check int) "served on the redial" id rid
                | _ -> Alcotest.fail "expected R_ok on the second connection")));
  ]

(* ------------------------------------------------------------------ *)
(* Giant join graphs: budget guardrail and regime selection            *)
(* ------------------------------------------------------------------ *)

let giant_schema = W.Giant.schema ()

(* Ad-hoc SQL against the server's "giant" schema: a chain of [n] tables
   joined on j1, or the all-pairs clique. *)
let giant_chain_sql n =
  let tables = List.init n (fun i -> Printf.sprintf "g%d" i) in
  let joins =
    List.init (n - 1) (fun i -> Printf.sprintf "g%d.j1 = g%d.j1" i (i + 1))
  in
  "SELECT g0.v1 FROM " ^ String.concat ", " tables ^ " WHERE "
  ^ String.concat " AND " joins

let giant_clique_sql n =
  let tables = List.init n (fun i -> Printf.sprintf "g%d" i) in
  let joins = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      joins := Printf.sprintf "g%d.j1 = g%d.j1" i j :: !joins
    done
  done;
  "SELECT g0.v1 FROM " ^ String.concat ", " tables ^ " WHERE "
  ^ String.concat " AND " !joins

let with_budgeted_server ?(trust_hints = false) f =
  with_server
    ~configure:(fun c ->
      {
        c with
        Srv.Server.schemas =
          c.Srv.Server.schemas @ [ ("giant", giant_schema) ];
        budget = O.Budget.make ~max_memo_entries:500 ();
        trust_hints;
      })
    f

let compile_regime c ?hint sql =
  let id = Srv.Client.fresh_id c in
  match
    request_exn c
      (Srv.Proto.Compile
         {
           id;
           sql;
           schema = Some "giant";
           deadline_ms = None;
           estimate_hint_s = hint;
         })
  with
  | Srv.Proto.R_compile (_, b) -> b
  | r ->
    Alcotest.failf "expected compile reply, got %s"
      (J.to_string (Srv.Proto.reply_to_json r))

let giant_regime_tests =
  [
    t "compile replies parse as DP when the regime field is absent" (fun () ->
        (* Replies from pre-regime servers carry no "regime" key; the
           fleet router must still parse them. *)
        let body =
          {
            Srv.Proto.c_plan = Some "NLJN(Q0,Q1)";
            c_cost = 10.0;
            c_card = 5.0;
            c_joins = 2;
            c_kept = 3;
            c_entries = 3;
            c_elapsed_s = 0.001;
            c_predicted_s = 0.002;
            c_level = "full";
            c_queue_s = 0.0;
            c_cache_hit = false;
            c_plan_cached = false;
            c_regime = "dp";
          }
        in
        let stripped =
          match Srv.Proto.reply_to_json (Srv.Proto.R_compile (5, body)) with
          | J.Obj fields ->
            J.Obj (List.filter (fun (k, _) -> k <> "regime") fields)
          | _ -> Alcotest.fail "compile reply should be an object"
        in
        match Srv.Proto.reply_of_json stripped with
        | Ok (Srv.Proto.R_compile (_, b)) ->
          Alcotest.(check string) "defaults to dp" "dp" b.Srv.Proto.c_regime
        | Ok _ | Error _ -> Alcotest.fail "expected a compile reply");
    t "a 40-table chain over budget is served by the greedy regime" (fun () ->
        with_budgeted_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let b = compile_regime c (giant_chain_sql 40) in
                Alcotest.(check string) "regime" "greedy" b.Srv.Proto.c_regime;
                Alcotest.(check bool) "a plan came back" true
                  (b.Srv.Proto.c_plan <> None);
                Alcotest.(check int) "no MEMO was built" 0
                  b.Srv.Proto.c_entries;
                (* A query DP handles within budget still runs DP. *)
                let id = Srv.Client.fresh_id c in
                (match
                   request_exn c
                     (Srv.Proto.Compile
                        {
                          id;
                          sql = small_sql;
                          schema = None;
                          deadline_ms = None;
                          estimate_hint_s = None;
                        })
                 with
                | Srv.Proto.R_compile (_, b) ->
                  Alcotest.(check string) "small query stays dp" "dp"
                    b.Srv.Proto.c_regime
                | _ -> Alcotest.fail "expected compile reply");
                match
                  request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c })
                with
                | Srv.Proto.R_stats (_, doc) ->
                  Alcotest.(check int) "regime_greedy counted" 1
                    (stat doc "regime_greedy");
                  Alcotest.(check int) "regime_dp counted" 1
                    (stat doc "regime_dp");
                  Alcotest.(check int) "no mid-compile fallbacks" 0
                    (stat doc "regime_fallbacks")
                | _ -> Alcotest.fail "expected stats reply")));
    t "guardrail: a 30-table clique cannot run DP unbounded" (fun () ->
        (* The regression this budget exists for: without caps, the MEMO
           of a 30-table clique grows ~2^30 entries and the server OOMs
           long before any deadline check.  With the cap, the budgeted
           estimate aborts in milliseconds and the compile is served by
           the spanning-tree regime. *)
        with_budgeted_server (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let b = compile_regime c (giant_clique_sql 30) in
                Alcotest.(check string) "regime" "greedy" b.Srv.Proto.c_regime;
                Alcotest.(check bool) "a plan came back" true
                  (b.Srv.Proto.c_plan <> None);
                Alcotest.(check bool) "cost is finite" true
                  (Float.is_finite b.Srv.Proto.c_cost))));
    t "a trusted hint that blows the budget mid-compile is rescued" (fun () ->
        (* --trust-hints skips the local budgeted estimate, so the job
           enters as DP and hits the cap inside the worker: the reply must
           come from the fallback, labelled dp_budget_fallback. *)
        with_budgeted_server ~trust_hints:true (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let b =
                  compile_regime c ~hint:1e-4 (giant_chain_sql 40)
                in
                Alcotest.(check string) "regime" "dp_budget_fallback"
                  b.Srv.Proto.c_regime;
                Alcotest.(check bool) "a plan came back" true
                  (b.Srv.Proto.c_plan <> None);
                match
                  request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c })
                with
                | Srv.Proto.R_stats (_, doc) ->
                  Alcotest.(check int) "rescue counted" 1
                    (stat doc "regime_fallbacks")
                | _ -> Alcotest.fail "expected stats reply")));
  ]

let suite =
  wire_tests @ proto_tests @ sched_tests @ admission_tests @ level_tests
  @ server_tests @ plan_cache_tests @ recalibrate_tests @ client_tests
  @ giant_regime_tests
