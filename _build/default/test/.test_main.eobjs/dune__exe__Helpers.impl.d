test/helpers.ml: List Printf Qopt_catalog Qopt_optimizer Qopt_util String
