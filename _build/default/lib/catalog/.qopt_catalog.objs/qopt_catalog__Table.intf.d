lib/catalog/table.mli: Column Format Index Partition_spec
