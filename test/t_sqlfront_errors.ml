(* Adversarial inputs to the SQL front end: every malformed or
   out-of-schema query must surface as a structured error — Lexer.Error,
   Parser.Error or Binder.Error with a message — never an Assert_failure,
   Match_failure or other internal crash.  This is the server's first
   line of defense: anything a client can put in a "sql" field lands
   here. *)

module Sql = Qopt_sql
module W = Qopt_workloads

let t name f = Alcotest.test_case name `Quick f

let schema = W.Warehouse.schema ~partitioned:false

(* Runs the full front end and classifies the outcome. *)
let front sql =
  match Sql.Binder.parse_and_bind schema sql with
  | _ -> `Bound
  | exception Sql.Lexer.Error (msg, _) -> `Structured ("lexer", msg)
  | exception Sql.Parser.Error msg -> `Structured ("parser", msg)
  | exception Sql.Binder.Error msg -> `Structured ("binder", msg)
  | exception e -> `Crash (Printexc.to_string e)

let check_structured name sql =
  t name (fun () ->
      match front sql with
      | `Structured (_, msg) ->
        Alcotest.(check bool) "non-empty message" true (String.length msg > 0)
      | `Bound -> Alcotest.failf "expected an error for %S, but it bound" sql
      | `Crash e -> Alcotest.failf "internal crash on %S: %s" sql e)

let suite =
  [
    check_structured "empty input" "";
    check_structured "whitespace only" "   \t\n  ";
    check_structured "unterminated string literal"
      "SELECT s.s_store_name FROM store s WHERE s.s_store_name = 'oops";
    check_structured "illegal character" "SELECT # FROM store";
    check_structured "stray token after statement"
      "SELECT s.s_market_id FROM store s extra garbage ; ;";
    check_structured "missing FROM clause" "SELECT s.s_market_id WHERE 1 = 1";
    check_structured "dangling comma in FROM"
      "SELECT s.s_market_id FROM store s,";
    check_structured "incomplete predicate"
      "SELECT s.s_market_id FROM store s WHERE s.s_market_id =";
    check_structured "unbalanced parenthesis"
      "SELECT s.s_market_id FROM store s WHERE (s.s_market_id = 1";
    check_structured "unknown table" "SELECT x.a FROM no_such_table x";
    check_structured "unknown column"
      "SELECT s.no_such_column FROM store s";
    check_structured "unknown alias in predicate"
      "SELECT s.s_market_id FROM store s WHERE zz.s_market_id = 1";
    check_structured "ambiguous unqualified column"
      "SELECT ss_sold_date_sk FROM store_sales ss, store_returns sr WHERE \
       sr_returned_date_sk = ss_sold_date_sk AND d_date_sk = 1";
    check_structured "number where column expected"
      "SELECT 42 FROM store s";
    t "deep parenthesis nesting errors, not a stack crash" (fun () ->
        let sql =
          "SELECT s.s_market_id FROM store s WHERE "
          ^ String.concat "" (List.init 5000 (fun _ -> "("))
          ^ "s.s_market_id = 1"
        in
        match front sql with
        | `Structured _ -> ()
        | `Bound -> Alcotest.fail "expected an error"
        | `Crash e ->
          (* Stack_overflow from a recursive-descent parser is tolerable
             only if it is raised as such, not an assert; but the front
             end should reject long before that. *)
          Alcotest.failf "internal crash: %s" e);
  ]
