lib/experiments/topn_exp.ml: Common Cote Format List Qopt_optimizer Qopt_util Qopt_workloads
