lib/util/stats.mli:
