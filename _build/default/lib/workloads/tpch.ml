module C = Qopt_catalog
module Sql = Qopt_sql

(* Dates are encoded as day numbers in [0, 2557) (1992-01-01 .. 1998-12-31),
   so date-range predicates stay inside the histogram domains. *)
let date_lo = 0.0

let date_hi = 2557.0

let col ~rows ?distinct ?skewed ?lo ?hi name =
  C.Column.make ~rows ?distinct ?skewed ?lo ?hi name

let date_col ~rows name = col ~rows ~distinct:2400.0 ~lo:date_lo ~hi:date_hi name

let schema ~partitioned =
  let part keys = if partitioned then Some (C.Partition_spec.hash keys) else None in
  let region =
    let rows = 5.0 in
    C.Table.make ~rows ~name:"region" ~primary_key:[ "r_regionkey" ]
      ?partition:(part [ "r_name" ])
      [ col ~rows "r_regionkey"; col ~rows ~distinct:5.0 "r_name" ]
  in
  let nation =
    let rows = 25.0 in
    C.Table.make ~rows ~name:"nation" ~primary_key:[ "n_nationkey" ]
      ?partition:(part [ "n_name" ])
      [
        col ~rows "n_nationkey";
        col ~rows ~distinct:25.0 "n_name";
        col ~rows ~distinct:5.0 "n_regionkey";
      ]
  in
  let supplier =
    let rows = 10_000.0 in
    C.Table.make ~rows ~name:"supplier" ~primary_key:[ "s_suppkey" ]
      ?partition:(part [ "s_suppkey" ])
      ~indexes:[ C.Index.make ~unique:true ~name:"s_pk" [ "s_suppkey" ] ]
      [
        col ~rows "s_suppkey";
        col ~rows ~distinct:25.0 "s_nationkey";
        col ~rows ~distinct:9_000.0 "s_acctbal";
        col ~rows ~distinct:10_000.0 "s_name";
      ]
  in
  let customer =
    let rows = 150_000.0 in
    C.Table.make ~rows ~name:"customer" ~primary_key:[ "c_custkey" ]
      ?partition:(part [ "c_custkey" ])
      ~indexes:[ C.Index.make ~unique:true ~name:"c_pk" [ "c_custkey" ] ]
      [
        col ~rows "c_custkey";
        col ~rows ~distinct:25.0 "c_nationkey";
        col ~rows ~distinct:5.0 "c_mktsegment";
        col ~rows ~distinct:140_000.0 "c_acctbal";
        col ~rows ~distinct:90_000.0 "c_phone";
      ]
  in
  let part_t =
    let rows = 200_000.0 in
    C.Table.make ~rows ~name:"part" ~primary_key:[ "p_partkey" ]
      ?partition:(part [ "p_partkey" ])
      ~indexes:[ C.Index.make ~unique:true ~name:"p_pk" [ "p_partkey" ] ]
      [
        col ~rows "p_partkey";
        col ~rows ~distinct:25.0 "p_brand";
        col ~rows ~distinct:150.0 "p_type";
        col ~rows ~distinct:50.0 ~lo:1.0 ~hi:51.0 "p_size";
        col ~rows ~distinct:40.0 "p_container";
        col ~rows ~distinct:5.0 "p_mfgr";
        col ~rows ~distinct:20_000.0 "p_retailprice";
      ]
  in
  let partsupp =
    let rows = 800_000.0 in
    C.Table.make ~rows ~name:"partsupp" ~primary_key:[ "ps_id" ]
      ?partition:(part [ "ps_partkey" ])
      ~indexes:[ C.Index.make ~name:"ps_part" [ "ps_partkey" ] ]
      [
        col ~rows ~distinct:rows "ps_id";
        col ~rows ~distinct:200_000.0 "ps_partkey";
        col ~rows ~distinct:10_000.0 "ps_suppkey";
        col ~rows ~distinct:100_000.0 "ps_supplycost";
        col ~rows ~distinct:9_999.0 "ps_availqty";
      ]
  in
  let orders =
    let rows = 1_500_000.0 in
    C.Table.make ~rows ~name:"orders" ~primary_key:[ "o_orderkey" ]
      ?partition:(part [ "o_orderkey" ])
      ~indexes:
        [
          C.Index.make ~unique:true ~name:"o_pk" [ "o_orderkey" ];
          C.Index.make ~name:"o_cust" [ "o_custkey" ];
        ]
      [
        col ~rows "o_orderkey";
        col ~rows ~distinct:100_000.0 "o_custkey";
        date_col ~rows "o_orderdate";
        col ~rows ~distinct:3.0 "o_orderstatus";
        col ~rows ~distinct:5.0 "o_orderpriority";
        col ~rows ~distinct:1_500_000.0 "o_totalprice";
        col ~rows ~distinct:1.0 "o_shippriority";
        col ~rows ~distinct:1_000.0 "o_comment";
      ]
  in
  let lineitem =
    let rows = 6_001_215.0 in
    C.Table.make ~rows ~name:"lineitem" ~primary_key:[ "l_id" ]
      ?partition:(part [ "l_orderkey" ])
      ~indexes:
        [
          C.Index.make ~name:"l_order" [ "l_orderkey" ];
          C.Index.make ~name:"l_part_supp" [ "l_partkey"; "l_suppkey" ];
          C.Index.make ~name:"l_ship" [ "l_shipdate"; "l_orderkey" ];
        ]
      [
        col ~rows ~distinct:rows "l_id";
        col ~rows ~distinct:1_500_000.0 "l_orderkey";
        col ~rows ~distinct:200_000.0 "l_partkey";
        col ~rows ~distinct:10_000.0 "l_suppkey";
        date_col ~rows "l_shipdate";
        date_col ~rows "l_commitdate";
        date_col ~rows "l_receiptdate";
        col ~rows ~distinct:50.0 ~lo:1.0 ~hi:51.0 "l_quantity";
        col ~rows ~distinct:11.0 ~lo:0.0 ~hi:0.11 "l_discount";
        col ~rows ~distinct:3.0 "l_returnflag";
        col ~rows ~distinct:2.0 "l_linestatus";
        col ~rows ~distinct:7.0 "l_shipmode";
        col ~rows ~distinct:4.0 "l_shipinstruct";
        col ~rows ~distinct:933_900.0 ~skewed:true "l_extendedprice";
      ]
  in
  let fk from from_col to_ to_col =
    C.Fkey.make ~from_table:from ~from_cols:[ from_col ] ~to_table:to_
      ~to_cols:[ to_col ]
  in
  C.Schema.of_tables
    ~fkeys:
      [
        fk "nation" "n_regionkey" "region" "r_regionkey";
        fk "supplier" "s_nationkey" "nation" "n_nationkey";
        fk "customer" "c_nationkey" "nation" "n_nationkey";
        fk "partsupp" "ps_partkey" "part" "p_partkey";
        fk "partsupp" "ps_suppkey" "supplier" "s_suppkey";
        fk "orders" "o_custkey" "customer" "c_custkey";
        fk "lineitem" "l_orderkey" "orders" "o_orderkey";
        fk "lineitem" "l_partkey" "part" "p_partkey";
        fk "lineitem" "l_suppkey" "supplier" "s_suppkey";
      ]
    [ region; nation; supplier; customer; part_t; partsupp; orders; lineitem ]

let q schema name sql =
  let block = Sql.Binder.parse_and_bind ~name schema sql in
  Workload.query ~sql name block

let queries schema =
  [
    q schema "tpch_q1"
      "SELECT l.l_returnflag, l.l_linestatus, SUM(l.l_quantity), COUNT(*) \
       FROM lineitem l WHERE l.l_shipdate <= 2200 GROUP BY l.l_returnflag, \
       l.l_linestatus ORDER BY l.l_returnflag, l.l_linestatus";
    q schema "tpch_q2"
      "SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey FROM part p, \
       supplier s, partsupp ps, nation n, region r WHERE p.p_partkey = \
       ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey AND p.p_size = 15 AND \
       p.p_type = 100 AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = \
       r.r_regionkey AND r.r_name = 'EUROPE' AND ps.ps_supplycost IN (SELECT \
       MIN(ps2.ps_supplycost) FROM partsupp ps2, supplier s2, nation n2, \
       region r2 WHERE p.p_partkey = ps2.ps_partkey AND s2.s_suppkey = \
       ps2.ps_suppkey AND s2.s_nationkey = n2.n_nationkey AND n2.n_regionkey \
       = r2.r_regionkey AND r2.r_name = 'EUROPE') ORDER BY s.s_acctbal, \
       n.n_name, s.s_name, p.p_partkey";
    q schema "tpch_q3"
      "SELECT l.l_orderkey, SUM(l.l_extendedprice), o.o_orderdate, \
       o.o_shippriority FROM customer c, orders o, lineitem l WHERE \
       c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey AND \
       l.l_orderkey = o.o_orderkey AND o.o_orderdate < 1165 AND l.l_shipdate \
       > 1165 GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority ORDER \
       BY o.o_orderdate";
    q schema "tpch_q4"
      "SELECT o.o_orderpriority, COUNT(*) FROM orders o WHERE o.o_orderdate \
       >= 450 AND o.o_orderdate < 540 AND EXISTS (SELECT l.l_id FROM \
       lineitem l WHERE l.l_orderkey = o.o_orderkey AND l.l_commitdate < \
       l.l_receiptdate) GROUP BY o.o_orderpriority ORDER BY \
       o.o_orderpriority";
    q schema "tpch_q5"
      "SELECT n.n_name, SUM(l.l_extendedprice) FROM customer c, orders o, \
       lineitem l, supplier s, nation n, region r WHERE c.c_custkey = \
       o.o_custkey AND l.l_orderkey = o.o_orderkey AND l.l_suppkey = \
       s.s_suppkey AND c.c_nationkey = s.s_nationkey AND s.s_nationkey = \
       n.n_nationkey AND n.n_regionkey = r.r_regionkey AND r.r_name = 'ASIA' \
       AND o.o_orderdate >= 730 AND o.o_orderdate < 1095 GROUP BY n.n_name \
       ORDER BY n.n_name";
    q schema "tpch_q6"
      "SELECT SUM(l.l_extendedprice) FROM lineitem l WHERE l.l_shipdate >= \
       730 AND l.l_shipdate < 1095 AND l.l_discount >= 0.05 AND l.l_discount \
       <= 0.07 AND l.l_quantity < 24";
    q schema "tpch_q7"
      "SELECT n1.n_name, n2.n_name, SUM(l.l_extendedprice) FROM supplier s, \
       lineitem l, orders o, customer c, nation n1, nation n2 WHERE \
       s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey AND \
       c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey AND \
       c.c_nationkey = n2.n_nationkey AND n1.n_name = 'FRANCE' AND n2.n_name \
       = 'GERMANY' AND l.l_shipdate >= 1095 AND l.l_shipdate <= 1825 GROUP \
       BY n1.n_name, n2.n_name ORDER BY n1.n_name, n2.n_name";
    q schema "tpch_q8"
      "SELECT o.o_orderdate, SUM(l.l_extendedprice) FROM part p, supplier s, \
       lineitem l, orders o, customer c, nation n1, nation n2, region r \
       WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey AND \
       l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND \
       c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey AND \
       r.r_name = 'AMERICA' AND s.s_nationkey = n2.n_nationkey AND \
       o.o_orderdate >= 1095 AND o.o_orderdate <= 1825 AND p.p_type = 120 \
       GROUP BY o.o_orderdate ORDER BY o.o_orderdate";
    q schema "tpch_q9"
      "SELECT n.n_name, o.o_orderdate, SUM(l.l_extendedprice) FROM part p, \
       supplier s, lineitem l, partsupp ps, orders o, nation n WHERE \
       s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey AND \
       ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey AND \
       o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey AND \
       p.p_type = 77 GROUP BY n.n_name, o.o_orderdate ORDER BY n.n_name, \
       o.o_orderdate";
    q schema "tpch_q10"
      "SELECT c.c_custkey, n.n_name, SUM(l.l_extendedprice) FROM customer c, \
       orders o, lineitem l, nation n WHERE c.c_custkey = o.o_custkey AND \
       l.l_orderkey = o.o_orderkey AND o.o_orderdate >= 800 AND \
       o.o_orderdate < 890 AND l.l_returnflag = 2 AND c.c_nationkey = \
       n.n_nationkey GROUP BY c.c_custkey, n.n_name ORDER BY c.c_custkey";
    q schema "tpch_q11"
      "SELECT ps.ps_partkey, SUM(ps.ps_supplycost) FROM partsupp ps, \
       supplier s, nation n WHERE ps.ps_suppkey = s.s_suppkey AND \
       s.s_nationkey = n.n_nationkey AND n.n_name = 'GERMANY' AND \
       ps.ps_availqty IN (SELECT SUM(ps2.ps_availqty) FROM partsupp ps2, \
       supplier s2, nation n2 WHERE ps2.ps_suppkey = s2.s_suppkey AND \
       s2.s_nationkey = n2.n_nationkey AND n2.n_name = 'GERMANY') GROUP BY \
       ps.ps_partkey ORDER BY ps.ps_partkey";
    q schema "tpch_q12"
      "SELECT l.l_shipmode, COUNT(*) FROM orders o, lineitem l WHERE \
       o.o_orderkey = l.l_orderkey AND l.l_shipmode IN (3, 5) AND \
       l.l_commitdate < l.l_receiptdate AND l.l_receiptdate >= 730 AND \
       l.l_receiptdate < 1095 GROUP BY l.l_shipmode ORDER BY l.l_shipmode";
    q schema "tpch_q13"
      "SELECT c.c_custkey, COUNT(*) FROM customer c LEFT JOIN orders o ON \
       c.c_custkey = o.o_custkey AND o.o_comment = 55 GROUP BY c.c_custkey \
       ORDER BY c.c_custkey";
    q schema "tpch_q14"
      "SELECT SUM(l.l_extendedprice) FROM lineitem l, part p WHERE \
       l.l_partkey = p.p_partkey AND l.l_shipdate >= 1340 AND l.l_shipdate < \
       1370";
    q schema "tpch_q15"
      "SELECT s.s_suppkey, s.s_name FROM supplier s WHERE s.s_acctbal IN \
       (SELECT SUM(l.l_extendedprice) FROM lineitem l WHERE l.l_suppkey = \
       s.s_suppkey AND l.l_shipdate >= 1400 AND l.l_shipdate < 1490) ORDER \
       BY s.s_suppkey";
    q schema "tpch_q16"
      "SELECT p.p_brand, p.p_type, p.p_size, COUNT(ps.ps_suppkey) FROM \
       partsupp ps, part p WHERE p.p_partkey = ps.ps_partkey AND p.p_brand \
       >= 10 AND p.p_size IN (1, 9, 14, 19, 23, 36, 45, 49) AND \
       ps.ps_suppkey IN (SELECT s.s_suppkey FROM supplier s WHERE \
       s.s_acctbal < 500) GROUP BY p.p_brand, p.p_type, p.p_size ORDER BY \
       p.p_brand, p.p_type, p.p_size";
    q schema "tpch_q17"
      "SELECT SUM(l.l_extendedprice) FROM lineitem l, part p WHERE \
       p.p_partkey = l.l_partkey AND p.p_brand = 23 AND p.p_container = 17 \
       AND l.l_quantity IN (SELECT AVG(l2.l_quantity) FROM lineitem l2 WHERE \
       l2.l_partkey = p.p_partkey)";
    q schema "tpch_q18"
      "SELECT c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice, \
       SUM(l.l_quantity) FROM customer c, orders o, lineitem l WHERE \
       o.o_orderkey IN (SELECT l2.l_orderkey FROM lineitem l2 WHERE \
       l2.l_quantity >= 45 GROUP BY l2.l_orderkey) AND c.c_custkey = \
       o.o_custkey AND o.o_orderkey = l.l_orderkey GROUP BY c.c_custkey, \
       o.o_orderkey, o.o_orderdate, o.o_totalprice ORDER BY o.o_totalprice, \
       o.o_orderdate";
    q schema "tpch_q19"
      "SELECT SUM(l.l_extendedprice) FROM lineitem l, part p WHERE \
       p.p_partkey = l.l_partkey AND p.p_brand = 12 AND l.l_quantity >= 1 \
       AND l.l_quantity <= 11 AND p.p_size >= 1 AND p.p_size <= 5 AND \
       l.l_shipmode IN (1, 2) AND l.l_shipinstruct = 1";
    q schema "tpch_q20"
      "SELECT s.s_name FROM supplier s, nation n WHERE s.s_suppkey IN \
       (SELECT ps.ps_suppkey FROM partsupp ps WHERE ps.ps_partkey IN (SELECT \
       p.p_partkey FROM part p WHERE p.p_brand = 7) AND ps.ps_availqty >= \
       100) AND s.s_nationkey = n.n_nationkey AND n.n_name = 'CANADA' ORDER \
       BY s.s_name";
    q schema "tpch_q21"
      "SELECT s.s_name, COUNT(*) FROM supplier s, lineitem l1, orders o, \
       nation n WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = \
       l1.l_orderkey AND o.o_orderstatus = 1 AND l1.l_receiptdate > 1100 \
       AND EXISTS (SELECT l2.l_id FROM lineitem l2 WHERE l2.l_orderkey = \
       l1.l_orderkey) AND s.s_nationkey = n.n_nationkey AND n.n_name = \
       'SAUDI ARABIA' GROUP BY s.s_name ORDER BY s.s_name";
    q schema "tpch_q22"
      "SELECT c.c_nationkey, COUNT(*), SUM(c.c_acctbal) FROM customer c \
       WHERE c.c_acctbal > 7000 AND EXISTS (SELECT o.o_orderkey FROM orders \
       o WHERE o.o_custkey = c.c_custkey) GROUP BY c.c_nationkey ORDER BY \
       c.c_nationkey";
  ]

let all ~partitioned =
  let schema = schema ~partitioned in
  Workload.make ~name:"tpch" ~schema (queries schema)

let longest ?(n = 7) ~env ~partitioned () =
  let wl = all ~partitioned in
  let timed =
    List.map
      (fun (qr : Workload.query) ->
        let r = Qopt_optimizer.Optimizer.optimize env qr.Workload.block in
        (r.Qopt_optimizer.Optimizer.elapsed, qr))
      wl.Workload.queries
  in
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare b a) timed in
  let chosen = List.filteri (fun i _ -> i < n) sorted in
  (* Keep the original query order for presentation. *)
  let names = List.map (fun (_, (qr : Workload.query)) -> qr.Workload.q_name) chosen in
  Workload.make ~name:"tpch7" ~schema:wl.Workload.schema
    (List.filter
       (fun (qr : Workload.query) -> List.mem qr.Workload.q_name names)
       wl.Workload.queries)
