(** Base tables with statistics, indexes and partitioning. *)

type t = {
  name : string;
  columns : Column.t array;
  row_count : float;
  page_count : float;
  primary_key : string list;
  indexes : Index.t list;
  partition : Partition_spec.t option;
}

val make :
  ?page_size:int ->
  ?primary_key:string list ->
  ?indexes:Index.t list ->
  ?partition:Partition_spec.t ->
  rows:float ->
  name:string ->
  Column.t list ->
  t
(** Builds a table; [page_count] is derived from row width and a 4 KiB default
    page size.  Raises [Invalid_argument] if [primary_key] or an index
    references an unknown column. *)

val find_column : t -> string -> Column.t
(** Raises [Not_found]. *)

val mem_column : t -> string -> bool

val column_names : t -> string list

val row_width : t -> int
(** Sum of column byte widths. *)

val index_providing : t -> string list -> Index.t option
(** First index whose key has the given columns as a prefix, if any. *)

val pp : Format.formatter -> t -> unit
