(* Workloads: structure, determinism, and compilability of the smaller
   queries. *)

module O = Qopt_optimizer
module W = Qopt_workloads

let t name f = Alcotest.test_case name `Quick f

let names (wl : W.Workload.t) =
  List.map (fun (q : W.Workload.query) -> q.W.Workload.q_name) wl.W.Workload.queries

let structure_tests =
  [
    t "linear has 3 batches of 5" (fun () ->
        Alcotest.(check int) "15 queries" 15 (W.Workload.size (W.Synthetic.linear ~partitioned:false)));
    t "star has 3 batches of 5" (fun () ->
        Alcotest.(check int) "15 queries" 15 (W.Workload.size (W.Synthetic.star ~partitioned:false)));
    t "cycle workload size" (fun () ->
        Alcotest.(check int) "6 queries" 6 (W.Workload.size (W.Synthetic.cycle ~partitioned:false)));
    t "calibration workload size" (fun () ->
        Alcotest.(check int) "18 queries" 18
          (W.Workload.size (W.Synthetic.calibration ~partitioned:false)));
    t "real1 has 8, real2 has 17 (the paper's sizes)" (fun () ->
        Alcotest.(check int) "real1" 8 (W.Workload.size (W.Warehouse.real1_w ~partitioned:false));
        Alcotest.(check int) "real2" 17 (W.Workload.size (W.Warehouse.real2_w ~partitioned:false)));
    t "query names unique" (fun () ->
        List.iter
          (fun wl ->
            let ns = names wl in
            Alcotest.(check int) wl.W.Workload.w_name (List.length ns)
              (List.length (List.sort_uniq compare ns)))
          [
            W.Synthetic.linear ~partitioned:false;
            W.Warehouse.real2_w ~partitioned:false;
            W.Tpch.all ~partitioned:false;
          ]);
    t "all workload blocks are connected" (fun () ->
        List.iter
          (fun wl ->
            List.iter
              (fun (q : W.Workload.query) ->
                O.Query_block.iter_blocks
                  (fun b ->
                    Alcotest.(check bool)
                      (q.W.Workload.q_name ^ "/" ^ b.O.Query_block.name)
                      true (O.Query_block.is_connected b))
                  q.W.Workload.block)
              wl.W.Workload.queries)
          [
            W.Synthetic.linear ~partitioned:false;
            W.Synthetic.star ~partitioned:false;
            W.Synthetic.cycle ~partitioned:false;
            W.Warehouse.real1_w ~partitioned:false;
            W.Tpch.all ~partitioned:false;
          ]);
    t "r1_q8 matches the paper's showcase complexity" (fun () ->
        let q = W.Workload.find (W.Warehouse.real1_w ~partitioned:false) "r1_q8" in
        let b = q.W.Workload.block in
        Alcotest.(check int) "14 tables" 14 (O.Query_block.n_quantifiers b);
        Alcotest.(check int) "9 group-by columns" 9 (List.length b.O.Query_block.group_by);
        let locals = List.length (O.Query_block.local_preds b) in
        Alcotest.(check bool)
          (Printf.sprintf "%d local predicates (>= 21)" locals)
          true (locals >= 21));
    t "within a star batch the join count is constant" (fun () ->
        let wl = W.Synthetic.star ~partitioned:false in
        let joins name =
          (O.Optimizer.optimize O.Env.serial (W.Workload.find wl name).W.Workload.block)
            .O.Optimizer.joins
        in
        let base = joins "star_6_p1" in
        List.iter
          (fun p -> Alcotest.(check int) ("p" ^ string_of_int p) base (joins (Printf.sprintf "star_6_p%d" p)))
          [ 2; 3; 4; 5 ]);
    t "parallel variants carry partitions" (fun () ->
        let wl = W.Synthetic.star ~partitioned:true in
        let q = W.Workload.find wl "star_6_p1" in
        let table = (O.Query_block.quantifier q.W.Workload.block 0).O.Quantifier.table in
        Alcotest.(check bool) "partitioned" true (table.Qopt_catalog.Table.partition <> None));
  ]

let tpch_tests =
  [
    t "tpch has 22 queries" (fun () ->
        Alcotest.(check int) "22" 22 (W.Workload.size (W.Tpch.all ~partitioned:false)));
    t "tpch schema has the SF-1 row counts" (fun () ->
        let s = W.Tpch.schema ~partitioned:false in
        let rows name = (Qopt_catalog.Schema.find_table s name).Qopt_catalog.Table.row_count in
        Alcotest.(check (float 0.0)) "region" 5.0 (rows "region");
        Alcotest.(check (float 0.0)) "nation" 25.0 (rows "nation");
        Alcotest.(check (float 0.0)) "lineitem" 6_001_215.0 (rows "lineitem");
        Alcotest.(check (float 0.0)) "orders" 1_500_000.0 (rows "orders"));
    t "q2 carries its correlated subquery as a child" (fun () ->
        let q = W.Workload.find (W.Tpch.all ~partitioned:false) "tpch_q2" in
        Alcotest.(check int) "1 child" 1 (List.length q.W.Workload.block.O.Query_block.children));
    t "q20 nests two levels of subqueries" (fun () ->
        let q = W.Workload.find (W.Tpch.all ~partitioned:false) "tpch_q20" in
        let depth = ref 0 in
        O.Query_block.iter_blocks (fun _ -> incr depth) q.W.Workload.block;
        Alcotest.(check int) "3 blocks" 3 !depth);
    t "longest returns the requested count" (fun () ->
        let wl = W.Tpch.longest ~n:7 ~env:O.Env.serial ~partitioned:false () in
        Alcotest.(check int) "7 queries" 7 (W.Workload.size wl));
    t "every tpch query compiles" (fun () ->
        List.iter
          (fun (q : W.Workload.query) ->
            let r = O.Optimizer.optimize O.Env.serial q.W.Workload.block in
            Alcotest.(check bool) (q.W.Workload.q_name ^ " planned") true
              (r.O.Optimizer.best <> None))
          (W.Tpch.all ~partitioned:false).W.Workload.queries);
  ]

let random_tests =
  [
    t "random generation is deterministic per seed" (fun () ->
        let schema = W.Warehouse.schema ~partitioned:false in
        let a = W.Random_gen.generate ~seed:11 ~count:5 ~schema () in
        let b = W.Random_gen.generate ~seed:11 ~count:5 ~schema () in
        List.iter2
          (fun (qa : W.Workload.query) (qb : W.Workload.query) ->
            Alcotest.(check int) "same size"
              (O.Query_block.total_quantifiers qa.W.Workload.block)
              (O.Query_block.total_quantifiers qb.W.Workload.block);
            Alcotest.(check int) "same preds"
              (List.length qa.W.Workload.block.O.Query_block.preds)
              (List.length qb.W.Workload.block.O.Query_block.preds))
          a.W.Workload.queries b.W.Workload.queries);
    t "seeds differ" (fun () ->
        let schema = W.Warehouse.schema ~partitioned:false in
        let a = W.Random_gen.generate ~seed:1 ~count:6 ~schema () in
        let b = W.Random_gen.generate ~seed:2 ~count:6 ~schema () in
        let sig_of wl =
          List.map
            (fun (q : W.Workload.query) ->
              ( O.Query_block.total_quantifiers q.W.Workload.block,
                List.length q.W.Workload.block.O.Query_block.preds ))
            wl.W.Workload.queries
        in
        Alcotest.(check bool) "different" true (sig_of a <> sig_of b));
    t "complexity grows with index" (fun () ->
        let schema = W.Warehouse.schema ~partitioned:false in
        let wl = W.Random_gen.generate ~seed:42 ~count:8 ~complexity:10 ~schema () in
        let sizes =
          List.map
            (fun (q : W.Workload.query) -> O.Query_block.total_quantifiers q.W.Workload.block)
            wl.W.Workload.queries
        in
        Alcotest.(check bool) "last >= first" true
          (List.nth sizes 7 >= List.nth sizes 0));
    t "generated queries compile and estimate" (fun () ->
        let schema = W.Warehouse.schema ~partitioned:false in
        let wl = W.Random_gen.generate ~seed:7 ~count:4 ~complexity:6 ~schema () in
        List.iter
          (fun (q : W.Workload.query) ->
            let r = O.Optimizer.optimize O.Env.serial q.W.Workload.block in
            let e = Cote.Estimator.estimate O.Env.serial q.W.Workload.block in
            Alcotest.(check bool) "planned" true (r.O.Optimizer.best <> None);
            Alcotest.(check bool) "estimated" true (Cote.Estimator.total e >= 0))
          wl.W.Workload.queries);
  ]

let workload_api_tests =
  [
    t "find" (fun () ->
        let wl = W.Synthetic.linear ~partitioned:false in
        Alcotest.(check string) "found" "lin_6_p1" (W.Workload.find wl "lin_6_p1").W.Workload.q_name;
        Alcotest.check_raises "missing" Not_found (fun () -> ignore (W.Workload.find wl "nope")));
  ]

let suite = structure_tests @ tpch_tests @ random_tests @ workload_api_tests
