module O = Qopt_optimizer
module Obs = Qopt_obs

(* Process-wide metrics shared by every cache instance, like Stmt_cache's
   (no-ops unless Qopt_obs collection is on). *)
let m_hits = Obs.Registry.counter Obs.Registry.default "plan_cache.hits"

let m_misses = Obs.Registry.counter Obs.Registry.default "plan_cache.misses"

let m_invalidations =
  Obs.Registry.counter Obs.Registry.default "plan_cache.invalidations"

let m_evictions = Obs.Registry.counter Obs.Registry.default "plan_cache.evictions"

let m_size = Obs.Registry.gauge Obs.Registry.default "plan_cache.size"

let m_hit_rate = Obs.Registry.gauge Obs.Registry.default "plan_cache.hit_rate_pct"

(* Flush-driven invalidations ({!bump_stats}) are counted into
   [plan_cache.invalidations] like lookup-driven ones, but they are not
   probes: a bulk stats flush of N entries must not deflate the hit-rate
   gauge, whose denominator counts lookups only.  This counter is
   internal bookkeeping for that subtraction, not a registered metric. *)
let m_flush_invalidations = Obs.Counter.make "plan_cache.flush_invalidations"

let update_hit_rate () =
  if !Obs.Control.on then begin
    let h = Obs.Counter.value m_hits in
    let probes =
      h + Obs.Counter.value m_misses + Obs.Counter.value m_invalidations
      - Obs.Counter.value m_flush_invalidations
    in
    if probes > 0 then
      Obs.Gauge.set m_hit_rate (float_of_int h /. float_of_int probes *. 100.0)
  end

type config = {
  slack : float;
  capacity : int;
}

let default_config = { slack = 0.5; capacity = 512 }

type invalidation =
  | Envelope
  | Stats_generation

let invalidation_string = function
  | Envelope -> "envelope"
  | Stats_generation -> "stats_generation"

type 'a outcome =
  | Hit of { plan : O.Plan.t; payload : 'a }
  | Miss
  | Invalidated of invalidation

type 'a entry = {
  e_plan : O.Plan.t;
  e_payload : 'a;
  e_envelope : (string * float * float) array;
      (* (pred signature, lo, hi), sorted — the validity region *)
  e_deps : (string * int) array;  (* dependent table, generation at store *)
  mutable e_tick : int;  (* LRU clock value of the last touch *)
}

type 'a t = {
  cfg : config;
  tbl : (string, 'a entry) Hashtbl.t;
  gens : (string, int) Hashtbl.t;  (* per-table statistics generation *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
  lock : Mutex.t option;
}

let create ?(shared = false) ?(config = default_config) () =
  {
    cfg = config;
    tbl = Hashtbl.create 64;
    gens = Hashtbl.create 16;
    tick = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
    lock = (if shared then Some (Mutex.create ()) else None);
  }

let with_lock t f =
  match t.lock with
  | None -> f ()
  | Some m -> Mutex.protect m f

(* Estimated selectivity of every local predicate across all blocks,
   labelled by predicate signature and sorted: duplicate signatures (the
   same column compared twice) pair up positionally, smallest selectivity
   first, on both the store and the lookup side. *)
let selectivities block =
  let acc = ref [] in
  O.Query_block.iter_blocks
    (fun b ->
      List.iter
        (fun p ->
          if not (O.Pred.is_join p) then
            acc :=
              ( Stmt_cache.pred_signature b p,
                O.Cardinality.local_selectivity O.Cardinality.Full b p )
              :: !acc)
        b.O.Query_block.preds)
    block;
  Array.of_list (List.sort compare !acc)

let dep_tables block =
  let acc = ref [] in
  O.Query_block.iter_blocks
    (fun b ->
      for q = 0 to O.Query_block.n_quantifiers b - 1 do
        acc :=
          (O.Query_block.quantifier b q).O.Quantifier.table
            .Qopt_catalog.Table.name
          :: !acc
      done)
    block;
  List.sort_uniq String.compare !acc

let generation_unlocked t name =
  Option.value ~default:0 (Hashtbl.find_opt t.gens name)

let touch t e =
  t.tick <- t.tick + 1;
  e.e_tick <- t.tick

let set_size t = Obs.Gauge.set m_size (float_of_int (Hashtbl.length t.tbl))

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, tick) when tick <= e.e_tick -> ()
      | _ -> victim := Some (k, e.e_tick))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1;
    Obs.Counter.incr m_evictions

let store t ?key block ~plan payload =
  let key = match key with Some k -> k | None -> Stmt_cache.signature block in
  (* Selectivity estimation is pure over the block and the (immutable)
     histograms it references: compute outside the lock. *)
  let envelope =
    Array.map
      (fun (sg, s) -> (sg, s *. (1.0 -. t.cfg.slack), s *. (1.0 +. t.cfg.slack)))
      (selectivities block)
  in
  let deps = dep_tables block in
  with_lock t (fun () ->
      if (not (Hashtbl.mem t.tbl key)) && Hashtbl.length t.tbl >= t.cfg.capacity
      then evict_lru t;
      let e =
        {
          e_plan = plan;
          e_payload = payload;
          e_envelope = envelope;
          e_deps =
            Array.of_list
              (List.map (fun n -> (n, generation_unlocked t n)) deps);
          e_tick = 0;
        }
      in
      touch t e;
      Hashtbl.replace t.tbl key e;
      set_size t)

let within_envelope sels env =
  Array.length sels = Array.length env
  &&
  let ok = ref true in
  Array.iteri
    (fun i (sg, s) ->
      let sg', lo, hi = env.(i) in
      if not (String.equal sg sg' && lo <= s && s <= hi) then ok := false)
    sels;
  !ok

let revalidate e sels gen_of =
  if Array.exists (fun (n, g) -> gen_of n <> g) e.e_deps then
    Some Stats_generation
  else if not (within_envelope sels e.e_envelope) then Some Envelope
  else None

let lookup t ?key block =
  let key = match key with Some k -> k | None -> Stmt_cache.signature block in
  let sels = selectivities block in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None ->
        t.misses <- t.misses + 1;
        Obs.Counter.incr m_misses;
        update_hit_rate ();
        Miss
      | Some e -> (
        match revalidate e sels (generation_unlocked t) with
        | Some why ->
          Hashtbl.remove t.tbl key;
          t.invalidations <- t.invalidations + 1;
          Obs.Counter.incr m_invalidations;
          update_hit_rate ();
          set_size t;
          Invalidated why
        | None ->
          touch t e;
          t.hits <- t.hits + 1;
          Obs.Counter.incr m_hits;
          update_hit_rate ();
          Hit { plan = e.e_plan; payload = e.e_payload }))

let bump_stats t table =
  with_lock t (fun () ->
      Hashtbl.replace t.gens table (generation_unlocked t table + 1);
      let victims =
        Hashtbl.fold
          (fun k e acc ->
            if Array.exists (fun (n, _) -> String.equal n table) e.e_deps then
              k :: acc
            else acc)
          t.tbl []
      in
      List.iter (Hashtbl.remove t.tbl) victims;
      let n = List.length victims in
      if n > 0 then begin
        t.invalidations <- t.invalidations + n;
        Obs.Counter.add m_invalidations n;
        (* No lookups occurred: record the flushes so the hit-rate
           denominator can exclude them, and leave the gauge as is. *)
        Obs.Counter.add m_flush_invalidations n;
        set_size t
      end;
      n)

let generation t name = with_lock t (fun () -> generation_unlocked t name)

let envelope t key =
  with_lock t (fun () ->
      Option.map
        (fun e -> Array.to_list e.e_envelope)
        (Hashtbl.find_opt t.tbl key))

let size t = with_lock t (fun () -> Hashtbl.length t.tbl)

let hits t = with_lock t (fun () -> t.hits)

let misses t = with_lock t (fun () -> t.misses)

let invalidations t = with_lock t (fun () -> t.invalidations)

let evictions t = with_lock t (fun () -> t.evictions)
