lib/experiments/registry.mli:
