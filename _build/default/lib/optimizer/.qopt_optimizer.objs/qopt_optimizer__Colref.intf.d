lib/optimizer/colref.mli: Format
