lib/core/time_model.ml: Estimator Float Format List Qopt_optimizer
