(** Equi-depth histograms over a numeric column domain.

    The execution-cost model recomputes selectivities from histograms for
    every generated join plan; this is one of the reasons (faithful to real
    systems, cf. Section 3.1 of the paper) that plan generation, not join
    enumeration, dominates compilation time. *)

type t

val uniform :
  ?buckets:int -> lo:float -> hi:float -> rows:float -> distinct:float -> unit -> t
(** An equi-depth histogram of a uniformly distributed column.  [buckets]
    defaults to 20. *)

val zipfian :
  ?buckets:int ->
  ?skew:float ->
  lo:float ->
  hi:float ->
  rows:float ->
  distinct:float ->
  unit ->
  t
(** A histogram whose bucket populations decay geometrically, approximating a
    Zipf-distributed column.  [skew] (default 1.3) > 1 increases skew. *)

val rows : t -> float

val distinct : t -> float

val bucket_count : t -> int

val sel_eq : t -> float -> float
(** Selectivity of [col = v]: fraction of rows expected to match. *)

val sel_lt : t -> float -> float
(** Selectivity of [col < v]. *)

val sel_le : t -> float -> float

val sel_gt : t -> float -> float

val sel_ge : t -> float -> float

val sel_between : t -> float -> float -> float
(** Selectivity of [lo <= col <= hi]. *)

val sel_join : t -> t -> float
(** Selectivity of an equijoin between two columns, computed by aligning the
    two histograms bucket by bucket (the per-plan cost model uses this; the
    simple cardinality model of plan-estimate mode uses [1 / max distinct]
    instead — see {!Qopt_optimizer.Cardinality}). *)

val pp : Format.formatter -> t -> unit
