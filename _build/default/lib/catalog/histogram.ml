type bucket = {
  lo : float;
  hi : float; (* exclusive upper bound except for the last bucket *)
  b_rows : float;
  b_distinct : float;
}

type t = {
  buckets : bucket array;
  rows : float;
  distinct : float;
}

let rows t = t.rows

let distinct t = t.distinct

let bucket_count t = Array.length t.buckets

let make_buckets ~buckets ~lo ~hi ~rows ~distinct ~weight =
  (* Never more buckets than distinct values, or empty half-buckets would
     distort equality selectivities. *)
  let buckets = max 1 (min buckets (int_of_float distinct)) in
  let total_weight = ref 0.0 in
  let weights = Array.init buckets (fun i -> weight i) in
  Array.iter (fun w -> total_weight := !total_weight +. w) weights;
  let span = (hi -. lo) /. float_of_int buckets in
  Array.init buckets (fun i ->
      let frac = weights.(i) /. !total_weight in
      {
        lo = lo +. (span *. float_of_int i);
        hi = lo +. (span *. float_of_int (i + 1));
        b_rows = rows *. frac;
        b_distinct = Float.max 1.0 (distinct *. frac);
      })

let uniform ?(buckets = 20) ~lo ~hi ~rows ~distinct () =
  if hi < lo then invalid_arg "Histogram.uniform: hi < lo";
  {
    buckets = make_buckets ~buckets ~lo ~hi ~rows ~distinct ~weight:(fun _ -> 1.0);
    rows;
    distinct = Float.max 1.0 distinct;
  }

let zipfian ?(buckets = 20) ?(skew = 1.3) ~lo ~hi ~rows ~distinct () =
  if hi < lo then invalid_arg "Histogram.zipfian: hi < lo";
  let weight i = 1.0 /. ((float_of_int (i + 1)) ** skew) in
  {
    buckets = make_buckets ~buckets ~lo ~hi ~rows ~distinct ~weight;
    rows;
    distinct = Float.max 1.0 distinct;
  }

let frac_of t rows_matched =
  if t.rows <= 0.0 then 0.0 else Float.min 1.0 (rows_matched /. t.rows)

let domain t =
  let n = Array.length t.buckets in
  (t.buckets.(0).lo, t.buckets.(n - 1).hi)

let sel_eq t v =
  let lo, hi = domain t in
  if v < lo || v > hi then
    (* Value absent from the histogram: fall back to the uniform default, as
       commercial estimators do rather than predicting an empty result. *)
    1.0 /. t.distinct
  else begin
    let last = Array.length t.buckets - 1 in
    let matched = ref 0.0 in
    Array.iteri
      (fun i b ->
        (* Half-open buckets; only the last bucket includes its upper
           bound, so boundary values match exactly one bucket. *)
        if v >= b.lo && (v < b.hi || (i = last && v = b.hi)) then
          matched := !matched +. (b.b_rows /. b.b_distinct))
      t.buckets;
    (* Clamp: an equality predicate never matches more than one value's
       share. *)
    Float.min (frac_of t !matched) 1.0
  end

let sel_lt t v =
  let lo, hi = domain t in
  if v <= lo then 0.02
  else if v > hi then 0.98
  else begin
    let matched = ref 0.0 in
    Array.iter
      (fun b ->
        if v >= b.hi then matched := !matched +. b.b_rows
        else if v > b.lo then
          (* Linear interpolation inside the bucket. *)
          matched := !matched +. (b.b_rows *. ((v -. b.lo) /. (b.hi -. b.lo))))
      t.buckets;
    (* Hedge against the empty/full extremes, like the out-of-range cases. *)
    Float.max 0.02 (Float.min 0.98 (frac_of t !matched))
  end

let sel_le t v = Float.min 1.0 (sel_lt t v +. sel_eq t v)

let sel_ge t v = Float.max 0.0 (1.0 -. sel_lt t v)

let sel_gt t v = Float.max 0.0 (1.0 -. sel_le t v)

let sel_between t lo hi =
  if hi < lo then 0.0 else Float.max 0.0 (sel_le t hi -. sel_lt t lo)

let sel_join a b =
  (* Align buckets over the intersection of the two domains: for each pair of
     overlapping buckets, matched pairs ~= rows_a * rows_b / max distinct,
     scaled by the overlap fraction of each bucket. *)
  let total = ref 0.0 in
  Array.iter
    (fun ba ->
      Array.iter
        (fun bb ->
          let lo = Float.max ba.lo bb.lo and hi = Float.min ba.hi bb.hi in
          if hi > lo then begin
            let fa = (hi -. lo) /. (ba.hi -. ba.lo) in
            let fb = (hi -. lo) /. (bb.hi -. bb.lo) in
            let ra = ba.b_rows *. fa and rb = bb.b_rows *. fb in
            let da = Float.max 1.0 (ba.b_distinct *. fa) in
            let db = Float.max 1.0 (bb.b_distinct *. fb) in
            total := !total +. (ra *. rb /. Float.max da db)
          end)
        b.buckets)
    a.buckets;
  let cross = a.rows *. b.rows in
  if cross <= 0.0 then 0.0 else Float.min 1.0 (!total /. cross)

let pp ppf t =
  Format.fprintf ppf "hist(rows=%.0f distinct=%.0f buckets=%d)" t.rows t.distinct
    (Array.length t.buckets)
