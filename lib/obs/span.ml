module Timer = Qopt_util.Timer

type shard = {
  mutable s_total : float;
  mutable s_child : float;
  mutable s_count : int;
}

type t = {
  name : string;
  always : bool;
  shards : shard option array;  (* lazily allocated, one per slot in use *)
}

(* The dynamic nesting stack, per domain: nesting never crosses domains, so
   each domain attributes child time within its own stack. *)
let stack_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let make ?(always = false) name =
  { name; always; shards = Array.make Shard.max_slots None }

let name t = t.name

let shard_of t s =
  match t.shards.(s) with
  | Some sh -> sh
  | None ->
    let sh = { s_total = 0.0; s_child = 0.0; s_count = 0 } in
    t.shards.(s) <- Some sh;
    sh

let record t dt =
  let slot = Shard.slot () in
  let sh = shard_of t slot in
  sh.s_total <- sh.s_total +. dt;
  sh.s_count <- sh.s_count + 1;
  match !(Domain.DLS.get stack_key) with
  | parent :: _ when parent != t ->
    let psh = shard_of parent slot in
    psh.s_child <- psh.s_child +. dt
  | _ -> ()

let time t f =
  if not (t.always || !Control.on) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let saved = !stack in
    stack := t :: saved;
    let t0 = Timer.monotonic_now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Timer.monotonic_now () -. t0 in
        stack := saved;
        record t dt)
      f
  end

let add t dt = if t.always || !Control.on then record t dt

let fold f init t =
  Array.fold_left
    (fun acc sh -> match sh with None -> acc | Some sh -> f acc sh)
    init t.shards

let total t = fold (fun acc sh -> acc +. sh.s_total) 0.0 t

let self t =
  Float.max 0.0 (fold (fun acc sh -> acc +. (sh.s_total -. sh.s_child)) 0.0 t)

let count t = fold (fun acc sh -> acc + sh.s_count) 0 t

let reset t = Array.fill t.shards 0 Shard.max_slots None
