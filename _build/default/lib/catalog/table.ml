type t = {
  name : string;
  columns : Column.t array;
  row_count : float;
  page_count : float;
  primary_key : string list;
  indexes : Index.t list;
  partition : Partition_spec.t option;
}

let row_width_of columns =
  Array.fold_left (fun acc c -> acc + Column.byte_width c) 0 columns

let make ?(page_size = 4096) ?(primary_key = []) ?(indexes = []) ?partition
    ~rows ~name columns =
  let columns = Array.of_list columns in
  let known col =
    Array.exists (fun (c : Column.t) -> String.equal c.name col) columns
  in
  List.iter
    (fun col ->
      if not (known col) then
        invalid_arg
          (Printf.sprintf "Table.make(%s): unknown primary key column %s" name
             col))
    primary_key;
  List.iter
    (fun (idx : Index.t) ->
      List.iter
        (fun col ->
          if not (known col) then
            invalid_arg
              (Printf.sprintf "Table.make(%s): index %s uses unknown column %s"
                 name idx.name col))
        idx.columns)
    indexes;
  (match partition with
  | None -> ()
  | Some (p : Partition_spec.t) ->
    List.iter
      (fun col ->
        if not (known col) then
          invalid_arg
            (Printf.sprintf "Table.make(%s): partition key %s unknown" name col))
      p.keys);
  let width = max 1 (row_width_of columns) in
  let rows_per_page = Float.max 1.0 (float_of_int (page_size / width)) in
  {
    name;
    columns;
    row_count = rows;
    page_count = Float.max 1.0 (rows /. rows_per_page);
    primary_key;
    indexes;
    partition;
  }

let find_column t name =
  let found = ref None in
  Array.iter
    (fun (c : Column.t) -> if String.equal c.name name then found := Some c)
    t.columns;
  match !found with Some c -> c | None -> raise Not_found

let mem_column t name =
  Array.exists (fun (c : Column.t) -> String.equal c.name name) t.columns

let column_names t =
  Array.to_list (Array.map (fun (c : Column.t) -> c.name) t.columns)

let row_width t = row_width_of t.columns

let index_providing t cols =
  List.find_opt (fun idx -> Index.provides_prefix idx cols) t.indexes

let pp ppf t =
  Format.fprintf ppf "%s (%.0f rows, %d cols, %d idx%s)" t.name t.row_count
    (Array.length t.columns)
    (List.length t.indexes)
    (match t.partition with
    | None -> ""
    | Some p -> Format.asprintf ", part %a" Partition_spec.pp p)
