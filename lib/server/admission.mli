(** COTE-driven admission control.

    The paper's motivation for estimating compilation time {e before}
    optimizing is that a DBMS can act on the estimate; this policy is the
    acting.  Every compile request arrives with a predicted compilation
    time, and the server rejects — with a structured reply, never a hang —
    any request whose estimate exceeds the per-request ceiling, would push
    the aggregate estimated in-flight work past the budget, or finds the
    queue full.

    The decision function is pure: the server supplies the current
    aggregates under its own lock. *)

type policy = {
  per_request_s : float;
      (** reject any single request predicted to take longer than this *)
  aggregate_s : float;
      (** ceiling on the summed predicted seconds of admitted work
          (queued + running) *)
  max_queue : int;  (** ceiling on the number of queued requests *)
}

type reason =
  | Per_request  (** the request alone exceeds [per_request_s] *)
  | Aggregate  (** admitting it would exceed [aggregate_s] *)
  | Queue_full
  | Shutting_down

val unlimited : policy
(** No ceilings (infinite budgets, [max_int] queue) — estimation-only
    deployments and tests. *)

val reason_string : reason -> string
(** Stable wire-protocol identifiers: ["per_request_budget"],
    ["aggregate_budget"], ["queue_full"], ["shutting_down"]. *)

val retry_after_s : reason -> in_flight_s:float -> float option
(** Back-off advice for a rejected request, derived from the same
    admission state the decision saw: [Aggregate] and [Queue_full] clear
    as the estimated in-flight seconds drain (floored at 1ms so an
    instantaneously empty server still rates a nonzero wait), while
    [Per_request] and [Shutting_down] rejections are not cured by
    retrying here, so they carry no hint. *)

val decide :
  policy ->
  in_flight_s:float ->
  queued:int ->
  estimate_s:float ->
  (unit, reason) result
(** [decide p ~in_flight_s ~queued ~estimate_s] admits or names the first
    violated ceiling, checked in the order per-request, aggregate, queue.
    A request is always admitted when nothing is in flight and the queue
    is empty unless its own estimate breaks [per_request_s] — the aggregate
    budget can never wedge the server into rejecting everything. *)
