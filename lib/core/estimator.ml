module O = Qopt_optimizer
module Timer = Qopt_util.Timer
module Obs = Qopt_obs

(* Process-wide estimation metrics (no-ops unless Qopt_obs is enabled). *)
let m_runs = Obs.Registry.counter Obs.Registry.default "estimator.runs"

let m_est_nljn = Obs.Registry.counter Obs.Registry.default "estimator.est_plans.nljn"

let m_est_mgjn = Obs.Registry.counter Obs.Registry.default "estimator.est_plans.mgjn"

let m_est_hsjn = Obs.Registry.counter Obs.Registry.default "estimator.est_plans.hsjn"

let m_elapsed_s = Obs.Registry.histogram Obs.Registry.default "estimator.elapsed_s"

let m_overhead = Obs.Registry.gauge Obs.Registry.default "estimator.overhead_pct"

(* The headline COTE claim: estimation must be a tiny fraction of full
   compilation.  Estimation seconds over compile seconds, cumulated across
   the process — meaningful once both have run at least once. *)
let update_overhead () =
  if !Obs.Control.on then begin
    let compile_s =
      Obs.Histo.sum
        (Obs.Registry.histogram Obs.Registry.default "optimizer.compile_s")
    in
    if compile_s > 0.0 then
      Obs.Gauge.set m_overhead (Obs.Histo.sum m_elapsed_s /. compile_s *. 100.0)
  end

type estimate = {
  joins : int;
  nljn : int;
  mgjn : int;
  hsjn : int;
  scan_plans : int;
  entries : int;
  elapsed : float;
  est_memo_plans : float;
  mv_tests : int;
}

let total e = e.nljn + e.mgjn + e.hsjn

let get e = function
  | O.Join_method.NLJN -> e.nljn
  | O.Join_method.MGJN -> e.mgjn
  | O.Join_method.HSJN -> e.hsjn

let zero =
  {
    joins = 0;
    nljn = 0;
    mgjn = 0;
    hsjn = 0;
    scan_plans = 0;
    entries = 0;
    elapsed = 0.0;
    est_memo_plans = 0.0;
    mv_tests = 0;
  }

let add a b =
  {
    joins = a.joins + b.joins;
    nljn = a.nljn + b.nljn;
    mgjn = a.mgjn + b.mgjn;
    hsjn = a.hsjn + b.hsjn;
    scan_plans = a.scan_plans + b.scan_plans;
    entries = a.entries + b.entries;
    elapsed = a.elapsed +. b.elapsed;
    est_memo_plans = a.est_memo_plans +. b.est_memo_plans;
    mv_tests = a.mv_tests + b.mv_tests;
  }

let run_block ?options ?budget ~knobs env block =
  let memo = O.Memo.create block in
  let acc = Accumulate.create ?options env memo in
  let consumer = Accumulate.consumer acc in
  let consumer =
    (* The estimate pass enumerates the same joins the optimizer would, so
       on a giant graph it explodes just like the real compile; cap it the
       same way.  The estimate-mode analogue of kept plans is the memory
       model's plan count. *)
    match budget with
    | Some b when not (O.Budget.is_unlimited b) ->
      let check () =
        O.Budget.check b ~entries:(O.Memo.n_entries memo)
          ~kept:(int_of_float (Accumulate.est_memo_plans acc))
      in
      {
        O.Enumerator.on_entry =
          (fun e ->
            consumer.O.Enumerator.on_entry e;
            check ());
        on_join =
          (fun ev ->
            consumer.O.Enumerator.on_join ev;
            check ());
      }
    | Some _ | None -> consumer
  in
  O.Enumerator.run ~knobs ~card_of:(Accumulate.card_of acc) memo consumer;
  (memo, acc)

let of_pass ~n_views (memo, acc) =
  let counts = Accumulate.counts acc in
  let stats = O.Memo.stats memo in
  {
    joins = stats.O.Memo.joins_enumerated;
    nljn = counts.O.Memo.nljn;
    mgjn = counts.O.Memo.mgjn;
    hsjn = counts.O.Memo.hsjn;
    scan_plans = Accumulate.scan_plans acc;
    entries = O.Memo.n_entries memo;
    elapsed = 0.0;
    est_memo_plans = Accumulate.est_memo_plans acc;
    mv_tests = O.Memo.n_entries memo * n_views;
  }

let estimate_block ?options ?budget ~knobs ~n_views env block =
  let passes, elapsed =
    Timer.time (fun () ->
        let first = run_block ?options ?budget ~knobs env block in
        (* Mirror the optimizer's permissive fallback when the knobs leave
           the top table set unreachable. *)
        let memo, _ = first in
        if
          O.Memo.find_opt memo (O.Query_block.all_tables block) = None
          && O.Query_block.n_quantifiers block > 1
        then
          [
            first;
            run_block ?options ?budget ~knobs:(O.Knobs.permissive knobs) env
              block;
          ]
        else [ first ])
  in
  (* Work counters fold across both passes — the optimizer does both passes'
     work and its fixed accounting reports it.  The memory estimate is a
     snapshot of the surviving MEMO, so it comes from the final pass. *)
  let r =
    match passes with
    | [ only ] -> of_pass ~n_views only
    | [ first; retry ] ->
      let a = of_pass ~n_views first and b = of_pass ~n_views retry in
      { (add a b) with est_memo_plans = b.est_memo_plans }
    | _ -> assert false
  in
  { r with elapsed }

let estimate ?options ?budget ?(knobs = O.Knobs.default) ?(views = []) env
    block =
  let n_views = List.length views in
  let result = ref zero in
  O.Query_block.iter_blocks
    (fun b ->
      result := add !result (estimate_block ?options ?budget ~knobs ~n_views env b))
    block;
  let r = !result in
  Obs.Counter.incr m_runs;
  Obs.Counter.add m_est_nljn r.nljn;
  Obs.Counter.add m_est_mgjn r.mgjn;
  Obs.Counter.add m_est_hsjn r.hsjn;
  Obs.Histo.observe m_elapsed_s r.elapsed;
  update_overhead ();
  r
