lib/optimizer/interesting.ml: Colref Equiv List Option Order_prop Partition_prop Pred Qopt_catalog Qopt_util Quantifier Query_block String
