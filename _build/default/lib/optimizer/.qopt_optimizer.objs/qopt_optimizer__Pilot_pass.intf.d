lib/optimizer/pilot_pass.mli: Env Knobs Query_block
