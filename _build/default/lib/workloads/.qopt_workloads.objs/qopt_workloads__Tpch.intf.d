lib/workloads/tpch.mli: Qopt_catalog Qopt_optimizer Workload
