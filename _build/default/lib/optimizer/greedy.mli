(** A polynomial-time greedy join optimizer — the "low" optimization level.

    Commercial systems pair the expensive dynamic-programming level with a
    cheap greedy/randomized level (Section 1.1); the meta-optimizer compiles
    at this level first to obtain an execution-cost estimate E before asking
    the COTE for the high level's compilation cost C.

    The algorithm is greedy operator ordering: repeatedly merge the pair of
    connected components whose join yields the smallest intermediate result,
    picking the cheapest join method for each merge. *)

val optimize : Env.t -> Query_block.t -> Plan.t option
(** Best-effort greedy plan for the block (children blocks are ignored —
    drive them through {!Optimizer}).  [None] only for empty blocks. *)
