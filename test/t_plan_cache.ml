(* The parameterized plan cache (PR 6).

   The correctness story is carried by three batteries, like PR 2/PR 5's
   differential suites:

   - a differential suite over the seeded 126-query corpus: a cache hit's
     served plan must be bit-for-bit identical (operator tree, orders,
     partitions, cost/card bits — T_hotpath's fingerprints) to a fresh
     optimization of the same query, serially, under the parallel
     environment, and across a 4-domain batch sharing one cache; and a
     post-invalidation recompile must match an uncached compile exactly;
   - QCheck properties over the template normalizer: literal values never
     split a template, structure always does, normalization is idempotent
     and agrees with Stmt_cache.signature;
   - envelope unit tests: selectivity drift outside the slack invalidates,
     drift inside serves the cached plan, statistics-generation bumps
     flush exactly the dependent entries. *)

module O = Qopt_optimizer
module C = Qopt_catalog
module W = Qopt_workloads
module A = Qopt_sql.Ast
module Template = Qopt_sql.Template
module SC = Cote.Stmt_cache
module PC = Cote.Plan_cache
module Obs = Qopt_obs

let t name f = Alcotest.test_case name `Quick f

let prop name ?(count = 40) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let fp_opt = T_hotpath.fp_opt

let fp = T_hotpath.fp

(* ------------------------------------------------------------------ *)
(* Differential: cache hits vs fresh optimization over the corpus      *)
(* ------------------------------------------------------------------ *)

(* joins/kept/entries ride along as the payload the server would echo —
   a hit must reproduce them exactly too. *)
let counters (r : O.Optimizer.result) =
  (r.O.Optimizer.joins, r.O.Optimizer.kept, r.O.Optimizer.entries)

let dep_table (b : O.Query_block.t) =
  (O.Query_block.quantifier b 0).O.Quantifier.table.C.Table.name

let differential_test ~partitioned env env_name =
  t
    (Printf.sprintf
       "cache hits are bit-for-bit fresh optimizations (126 queries, %s)"
       env_name)
    (fun () ->
      let queries = T_hotpath.pool ~partitioned in
      Alcotest.(check bool) "pool has > 100 queries" true
        (List.length queries > 100);
      let pc = PC.create () in
      let stored = ref 0 in
      List.iteri
        (fun i (q : W.Workload.query) ->
          let name = Printf.sprintf "%s#%d" q.W.Workload.q_name i in
          let optimize () =
            O.Optimizer.optimize env ~knobs:Helpers.stable_knobs
              q.W.Workload.block
          in
          let r1 = optimize () in
          match r1.O.Optimizer.best with
          | None -> ()
          | Some plan ->
            incr stored;
            PC.store pc q.W.Workload.block ~plan (counters r1);
            (* The reference point is a second, fully independent compile:
               the hit must equal what the optimizer would choose NOW, not
               merely echo what was stored. *)
            let r2 = optimize () in
            (match PC.lookup pc q.W.Workload.block with
            | PC.Hit { plan; payload } ->
              Alcotest.(check string)
                (name ^ ": hit plan is the fresh plan")
                (fp_opt r2.O.Optimizer.best) (fp plan);
              if payload <> counters r2 then
                Alcotest.failf "%s: hit counters differ from fresh compile"
                  name
            | PC.Miss -> Alcotest.failf "%s: expected a hit, got a miss" name
            | PC.Invalidated _ ->
              Alcotest.failf "%s: expected a hit, got an invalidation" name);
            (* Every 10th query: a statistics bump must stop the cache from
               serving, and the recompile must match an uncached compile
               exactly. *)
            if i mod 10 = 0 then begin
              let flushed = PC.bump_stats pc (dep_table q.W.Workload.block) in
              Alcotest.(check bool)
                (name ^ ": bump flushed the entry")
                true (flushed >= 1);
              (match PC.lookup pc q.W.Workload.block with
              | PC.Hit _ ->
                Alcotest.failf "%s: served from cache after a stats bump" name
              | PC.Miss | PC.Invalidated _ -> ());
              let r3 = optimize () in
              Alcotest.(check string)
                (name ^ ": post-invalidation recompile = uncached compile")
                (fp_opt r2.O.Optimizer.best)
                (fp_opt r3.O.Optimizer.best);
              match r3.O.Optimizer.best with
              | Some plan -> PC.store pc q.W.Workload.block ~plan (counters r3)
              | None -> ()
            end)
        queries;
      Alcotest.(check bool) "stored > 100 plans" true (!stored > 100))

let batch_differential_test =
  t "a shared cache filled by a 4-domain batch serves 1-domain plans" (fun () ->
      let queries = T_hotpath.pool ~partitioned:false in
      let tasks =
        List.map
          (fun (q : W.Workload.query) ->
            Qopt_par.Batch.Compile q.W.Workload.block)
          queries
      in
      let d1 =
        Qopt_par.Batch.run_batch ~domains:1 ~knobs:Helpers.stable_knobs
          O.Env.serial tasks
      in
      let d4 =
        Qopt_par.Batch.run_batch ~domains:4 ~knobs:Helpers.stable_knobs
          O.Env.serial tasks
      in
      (* Distinct random queries can share a structural signature (literals
         are abstracted), so key per corpus position — the point here is
         domain-count independence, not key design. *)
      let key i = Printf.sprintf "corpus#%d" i in
      let pc = PC.create ~shared:true () in
      List.iteri
        (fun i (q : W.Workload.query) ->
          match List.nth d4 i with
          | Qopt_par.Batch.Compiled r -> (
            match r.O.Optimizer.best with
            | Some plan ->
              PC.store pc ~key:(key i) q.W.Workload.block ~plan (counters r)
            | None -> ())
          | Qopt_par.Batch.Estimated _ -> ())
        queries;
      List.iteri
        (fun i (q : W.Workload.query) ->
          match List.nth d1 i with
          | Qopt_par.Batch.Compiled r when r.O.Optimizer.best <> None -> (
            match PC.lookup pc ~key:(key i) q.W.Workload.block with
            | PC.Hit { plan; _ } ->
              Alcotest.(check string)
                (Printf.sprintf "%s#%d: d4-cached plan = d1 plan"
                   q.W.Workload.q_name i)
                (fp_opt r.O.Optimizer.best) (fp plan)
            | PC.Miss | PC.Invalidated _ ->
              Alcotest.failf "%s#%d: expected a hit" q.W.Workload.q_name i)
          | _ -> ())
        queries)

(* ------------------------------------------------------------------ *)
(* QCheck: template normalization                                      *)
(* ------------------------------------------------------------------ *)

let schema = W.Warehouse.schema ~partitioned:false

(* (table, alias, a filterable column) — all with real warehouse stats so
   the generated queries also bind. *)
let tbl_pool =
  [|
    ("store", "s", "s_market_id");
    ("item", "i", "i_category_id");
    ("customer", "c", "c_birth_year");
    ("date_dim", "d", "d_year");
  |]

let ops = [| A.Eq; A.Lt; A.Le; A.Gt; A.Ge |]

type cond_spec = {
  cs_table : int;  (* position in the chosen table list *)
  cs_op : int;
  cs_in_arity : int;  (* 0 = comparison, n > 0 = IN with n items *)
  cs_str : bool;  (* string literal instead of numeric *)
}

type spec = {
  sp_first : int;  (* rotation start into tbl_pool *)
  sp_n : int;  (* number of tables, 1-3 *)
  sp_conds : cond_spec list;
  sp_group : bool;
  sp_order : bool;
  sp_limit : int option;
}

let gen_spec =
  let open QCheck2.Gen in
  let* sp_first = int_range 0 (Array.length tbl_pool - 1) in
  let* sp_n = int_range 1 3 in
  let* n_conds = int_range 0 4 in
  let* sp_conds =
    list_repeat n_conds
      (let* cs_table = int_range 0 (sp_n - 1) in
       let* cs_op = int_range 0 (Array.length ops - 1) in
       let* cs_in_arity = int_range 0 3 in
       let* cs_str = bool in
       return { cs_table; cs_op; cs_in_arity; cs_str })
  in
  let* sp_group = bool in
  let* sp_order = bool in
  let* sp_limit = option (int_range 1 20) in
  return { sp_first; sp_n; sp_conds; sp_group; sp_order; sp_limit }

let tables_of spec =
  List.init spec.sp_n (fun i ->
      tbl_pool.((spec.sp_first + i) mod Array.length tbl_pool))

(* Instantiate a spec with a literal assignment: [lit k] supplies the k-th
   literal of the statement.  Two calls with different [lit] produce
   same-template, different-parameter statements. *)
let instantiate spec lit =
  let tables = tables_of spec in
  let counter = ref 0 in
  let next_lit str =
    let k = !counter in
    incr counter;
    if str then A.Str (Printf.sprintf "v%d" (lit k)) else A.Num (float_of_int (lit k))
  in
  let cond cs =
    (* mutations may shrink the table list under a pred spec — clamp *)
    let _, alias, col_name =
      List.nth tables (cs.cs_table mod List.length tables)
    in
    let col = A.col ~table:alias col_name in
    if cs.cs_in_arity > 0 then
      A.In_list
        (col, List.init cs.cs_in_arity (fun _ -> next_lit cs.cs_str))
    else A.Cmp_lit (col, ops.(cs.cs_op), next_lit cs.cs_str)
  in
  let first_col =
    let _, alias, col_name = List.hd tables in
    A.col ~table:alias col_name
  in
  {
    A.sel_items = [ A.Col_item first_col ];
    sel_from =
      List.map
        (fun (name, alias, _) -> { A.t_name = name; t_alias = Some alias })
        tables;
    sel_joins = [];
    sel_where = List.map cond spec.sp_conds;
    sel_group_by = (if spec.sp_group then [ first_col ] else []);
    sel_order_by = (if spec.sp_order then [ first_col ] else []);
    sel_limit = spec.sp_limit;
  }

let key spec lit = Template.key_of (instantiate spec lit)

let template_props =
  [
    prop "same structure, different literals: same template key" gen_spec
      (fun spec -> key spec (fun k -> 1 + (k mod 9)) = key spec (fun k -> 90 + k));
    prop "normalization is idempotent" gen_spec (fun spec ->
        let t1 = Template.normalize (instantiate spec (fun k -> k + 3)) in
        let t2 = Template.normalize t1.Template.shape in
        t1.Template.key = t2.Template.key
        && t1.Template.shape = t2.Template.shape
        && List.length t1.Template.params = List.length t2.Template.params);
    prop "params retain the observed literals in order" gen_spec (fun spec ->
        let sel = instantiate spec (fun k -> 10 + k) in
        let tpl = Template.normalize sel in
        List.for_all
          (fun (p : Template.param) ->
            match (p.Template.p_type, p.Template.p_value) with
            | Template.P_num, A.Num v ->
              v = float_of_int (10 + p.Template.p_index)
            | Template.P_str, A.Str s ->
              s = Printf.sprintf "v%d" (10 + p.Template.p_index)
            | _ -> false)
          tpl.Template.params);
    prop "structural differences never collide" ~count:60
      QCheck2.Gen.(pair gen_spec (int_range 0 4))
      (fun (spec, which) ->
        let mutated =
          match which with
          | 0 ->
            (* table-set change: grow if possible, else shrink *)
            if spec.sp_n < 3 then { spec with sp_n = spec.sp_n + 1 }
            else { spec with sp_n = spec.sp_n - 1 }
          | 1 ->
            (* predicate shape: one more comparison *)
            {
              spec with
              sp_conds =
                { cs_table = 0; cs_op = 0; cs_in_arity = 0; cs_str = false }
                :: spec.sp_conds;
            }
          | 2 ->
            { spec with sp_limit = (if spec.sp_limit = None then Some 5 else None) }
          | 3 -> { spec with sp_group = not spec.sp_group }
          | _ -> { spec with sp_order = not spec.sp_order }
        in
        key spec (fun k -> k + 1) <> key mutated (fun k -> k + 1));
    prop "IN-list arity is structural" gen_spec (fun spec ->
        let spec_in =
          {
            spec with
            sp_conds =
              { cs_table = 0; cs_op = 0; cs_in_arity = 2; cs_str = false }
              :: spec.sp_conds;
          }
        in
        let spec_in3 =
          {
            spec_in with
            sp_conds =
              (match spec_in.sp_conds with
              | c :: rest -> { c with cs_in_arity = 3 } :: rest
              | [] -> assert false);
          }
        in
        key spec_in (fun k -> k + 1) <> key spec_in3 (fun k -> k + 1));
    prop "literal type is part of the template" gen_spec (fun spec ->
        let with_first_cmp str =
          {
            spec with
            sp_conds =
              { cs_table = 0; cs_op = 0; cs_in_arity = 0; cs_str = str }
              :: spec.sp_conds;
          }
        in
        key (with_first_cmp false) (fun k -> k + 1)
        <> key (with_first_cmp true) (fun k -> k + 1));
    prop "template signature agrees with Stmt_cache.signature" gen_spec
      (fun spec ->
        let sel = instantiate spec (fun k -> 1 + (k mod 9)) in
        let tpl = Template.normalize sel in
        SC.signature (Qopt_sql.Binder.bind schema sel)
        = SC.signature (Qopt_sql.Binder.bind schema tpl.Template.shape));
  ]

(* ------------------------------------------------------------------ *)
(* Envelope invalidation                                               *)
(* ------------------------------------------------------------------ *)

(* One quantifier over a table whose "v" histogram spans [0, hi]: the
   selectivity of v <= 10 is ~10/hi, so widening hi drifts it down — a
   statistics change the envelope must catch once it is large enough. *)
let drift_block ?(name = "drift") ~hi () =
  let rows = 1000.0 in
  let tbl =
    C.Table.make ~rows ~name ~primary_key:[ "pk" ]
      [
        C.Column.make ~rows ~distinct:rows "pk";
        C.Column.make ~rows ~distinct:50.0 ~lo:0.0 ~hi "v";
      ]
  in
  O.Query_block.make ~name:(name ^ "_q")
    ~quantifiers:[ O.Quantifier.make 0 tbl ]
    ~preds:[ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Le, 10.0) ]
    ()

let scan_plan () =
  {
    O.Plan.op = O.Plan.Seq_scan 0;
    tables = Helpers.set [ 0 ];
    order = [];
    partition = None;
    card = 100.0;
    cost = 10.0;
  }

let envelope_tests =
  [
    t "drift outside the envelope invalidates and recompiles" (fun () ->
        let pc = PC.create () in
        let b0 = drift_block ~hi:100.0 () in
        PC.store pc b0 ~plan:(scan_plan ()) 0;
        (* 10x selectivity drift: 0.1 -> 0.01, far outside slack 0.5. *)
        let drifted = drift_block ~hi:1000.0 () in
        (match PC.lookup pc drifted with
        | PC.Invalidated PC.Envelope -> ()
        | PC.Invalidated PC.Stats_generation ->
          Alcotest.fail "wrong invalidation reason"
        | PC.Hit _ -> Alcotest.fail "stale plan served"
        | PC.Miss -> Alcotest.fail "expected an invalidation, not a miss");
        Alcotest.(check int) "invalidations" 1 (PC.invalidations pc);
        Alcotest.(check int) "entry removed" 0 (PC.size pc);
        (* The caller recompiles and stores; the drifted stats are now the
           envelope's center, so the same lookup hits. *)
        PC.store pc drifted ~plan:(scan_plan ()) 1;
        match PC.lookup pc drifted with
        | PC.Hit { payload; _ } -> Alcotest.(check int) "new payload" 1 payload
        | _ -> Alcotest.fail "recompiled entry should hit");
    t "drift inside the envelope serves the cached plan" (fun () ->
        let pc = PC.create () in
        let b0 = drift_block ~hi:100.0 () in
        PC.store pc b0 ~plan:(scan_plan ()) 7;
        (* 0.1 -> ~0.091: comfortably within the 0.5 slack. *)
        let nudged = drift_block ~hi:110.0 () in
        (match PC.lookup pc nudged with
        | PC.Hit { payload; _ } -> Alcotest.(check int) "payload" 7 payload
        | _ -> Alcotest.fail "expected a hit");
        Alcotest.(check int) "no invalidations" 0 (PC.invalidations pc));
    t "zero slack still hits on the identical query" (fun () ->
        let pc = PC.create ~config:{ PC.slack = 0.0; capacity = 4 } () in
        let b = drift_block ~hi:100.0 () in
        PC.store pc b ~plan:(scan_plan ()) 0;
        match PC.lookup pc b with
        | PC.Hit _ -> ()
        | _ -> Alcotest.fail "identical lookup must hit at slack 0");
    t "statistics bump flushes dependent entries only" (fun () ->
        let pc = PC.create () in
        let a = drift_block ~name:"ta" ~hi:100.0 () in
        let b = drift_block ~name:"tb" ~hi:100.0 () in
        PC.store pc a ~plan:(scan_plan ()) 0;
        PC.store pc b ~plan:(scan_plan ()) 1;
        Alcotest.(check int) "flushed" 1 (PC.bump_stats pc "ta");
        Alcotest.(check int) "size" 1 (PC.size pc);
        Alcotest.(check int) "generation" 1 (PC.generation pc "ta");
        Alcotest.(check int) "untouched generation" 0 (PC.generation pc "tb");
        (match PC.lookup pc a with
        | PC.Miss -> ()
        | _ -> Alcotest.fail "flushed entry must miss");
        (match PC.lookup pc b with
        | PC.Hit _ -> ()
        | _ -> Alcotest.fail "independent entry must survive the bump"));
    t "an entry stored after a bump lives in the new generation" (fun () ->
        let pc = PC.create () in
        let a = drift_block ~name:"ta" ~hi:100.0 () in
        Alcotest.(check int) "nothing to flush" 0 (PC.bump_stats pc "ta");
        PC.store pc a ~plan:(scan_plan ()) 0;
        match PC.lookup pc a with
        | PC.Hit _ -> ()
        | _ -> Alcotest.fail "entry stored under the bumped generation must hit");
    t "capacity evicts the least recently used entry" (fun () ->
        let pc = PC.create ~config:{ PC.slack = 0.5; capacity = 2 } () in
        let c2 = Helpers.chain 2 and c3 = Helpers.chain 3 in
        let s3 = Helpers.star_block 3 in
        PC.store pc c2 ~plan:(scan_plan ()) 0;
        PC.store pc c3 ~plan:(scan_plan ()) 1;
        (* Touch c2 so c3 is the LRU victim. *)
        (match PC.lookup pc c2 with
        | PC.Hit _ -> ()
        | _ -> Alcotest.fail "warm entry must hit");
        PC.store pc s3 ~plan:(scan_plan ()) 2;
        Alcotest.(check int) "evictions" 1 (PC.evictions pc);
        Alcotest.(check int) "size" 2 (PC.size pc);
        (match PC.lookup pc c3 with
        | PC.Miss -> ()
        | _ -> Alcotest.fail "LRU entry must have been evicted");
        match (PC.lookup pc c2, PC.lookup pc s3) with
        | PC.Hit _, PC.Hit _ -> ()
        | _ -> Alcotest.fail "recently used entries must survive");
    t "envelope rows are exposed for introspection" (fun () ->
        let pc = PC.create () in
        let b = drift_block ~hi:100.0 () in
        let key = SC.signature b in
        PC.store pc b ~plan:(scan_plan ()) 0;
        match PC.envelope pc key with
        | Some [ (sg, lo, hi) ] ->
          Alcotest.(check bool) "labelled by pred signature" true
            (sg = SC.pred_signature b (List.hd b.O.Query_block.preds));
          Alcotest.(check bool) "lo < hi" true (lo < hi);
          Alcotest.(check bool) "centered on the estimate" true
            (lo > 0.0 && hi < 1.0)
        | Some _ -> Alcotest.fail "expected exactly one envelope row"
        | None -> Alcotest.fail "entry must exist");
    t "obs counters track hits, misses, invalidations" (fun () ->
        Obs.Control.with_enabled true (fun () ->
            let reg = Obs.Registry.default in
            let v name = Obs.Registry.counter_value reg name in
            let h0 = v "plan_cache.hits"
            and m0 = v "plan_cache.misses"
            and i0 = v "plan_cache.invalidations" in
            let pc = PC.create () in
            let b = drift_block ~hi:100.0 () in
            ignore (PC.lookup pc b);
            PC.store pc b ~plan:(scan_plan ()) 0;
            ignore (PC.lookup pc b);
            ignore (PC.lookup pc (drift_block ~hi:1000.0 ()));
            Alcotest.(check int) "hits delta" 1 (v "plan_cache.hits" - h0);
            Alcotest.(check int) "misses delta" 1 (v "plan_cache.misses" - m0);
            Alcotest.(check int) "invalidations delta" 1
              (v "plan_cache.invalidations" - i0)));
    t "stats flushes do not deflate the hit-rate gauge" (fun () ->
        Obs.Control.with_enabled true (fun () ->
            let reg = Obs.Registry.default in
            let pc = PC.create () in
            let a = drift_block ~name:"hra" ~hi:100.0 () in
            let b = drift_block ~name:"hrb" ~hi:100.0 () in
            PC.store pc a ~plan:(scan_plan ()) 0;
            (* A hit establishes a gauge value from lookups alone... *)
            (match PC.lookup pc a with
            | PC.Hit _ -> ()
            | _ -> Alcotest.fail "expected a hit");
            let rate0 = Obs.Registry.gauge_value reg "plan_cache.hit_rate_pct" in
            (* ...then a bulk flush, which is maintenance, not probing:
               the invalidations counter moves, the gauge must not. *)
            PC.store pc b ~plan:(scan_plan ()) 1;
            let i0 = Obs.Registry.counter_value reg "plan_cache.invalidations" in
            Alcotest.(check int) "flushed" 1 (PC.bump_stats pc "hra");
            Alcotest.(check int) "flushed" 1 (PC.bump_stats pc "hrb");
            Alcotest.(check int) "flushes count as invalidations" 2
              (Obs.Registry.counter_value reg "plan_cache.invalidations" - i0);
            Alcotest.(check (float 0.0)) "gauge unchanged by flushes" rate0
              (Obs.Registry.gauge_value reg "plan_cache.hit_rate_pct")));
    t "invalidation reasons have stable names" (fun () ->
        Alcotest.(check (list string)) "identifiers"
          [ "envelope"; "stats_generation" ]
          (List.map PC.invalidation_string [ PC.Envelope; PC.Stats_generation ]));
  ]

let suite =
  envelope_tests @ template_props
  @ [
      differential_test ~partitioned:false O.Env.serial "serial";
      differential_test ~partitioned:true (O.Env.parallel ~nodes:4) "parallel x4";
      batch_differential_test;
    ]
