lib/catalog/table.ml: Array Column Float Format Index List Partition_spec Printf String
