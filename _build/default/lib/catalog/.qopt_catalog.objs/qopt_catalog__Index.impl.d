lib/catalog/index.ml: Format String
