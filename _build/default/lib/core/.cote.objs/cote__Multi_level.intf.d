lib/core/multi_level.mli: Accumulate Qopt_optimizer
