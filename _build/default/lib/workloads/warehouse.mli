(** Stand-ins for the paper's proprietary customer workloads.

    A retail data-warehouse schema (three fact tables, a dozen dimensions —
    TPC-DS-flavoured, but our own statistics) and two workloads of "complex
    data warehouse queries with inner joins, outerjoins, aggregations and
    subqueries" (Section 5):

    - [real1_w]: 8 queries (the paper's real1);
    - [real2_w]: 17 queries (the paper's real2), whose largest query joins
      14 tables, carries 21 local predicates and 9 GROUP BY columns that
      overlap the join columns — matching the complexity the paper quotes.

    All queries are authored as SQL text and compiled through
    {!Qopt_sql.Binder}, so the workloads also exercise the SQL front end.
    With [~partitioned:true] the facts are hash-partitioned on join keys and
    two dimensions deliberately on non-join columns (exercising the
    repartitioning heuristic and non-interesting partition survival). *)

val schema : partitioned:bool -> Qopt_catalog.Schema.t

val real1_w : partitioned:bool -> Workload.t

val real2_w : partitioned:bool -> Workload.t
