module C = Qopt_catalog
module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

exception Error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type scope = {
  schema : C.Schema.t;
  quants : (string * C.Table.t) array;  (** alias, table — indexed by q id *)
  parent : scope option;
}

type resolved =
  | Here of O.Colref.t
  | Outer of int  (** levels up, for correlation detection *)

let table_of scope q = snd scope.quants.(q)

let rec resolve ?(depth = 0) scope (c : Ast.col) =
  let here =
    match c.Ast.c_table with
    | Some qualifier ->
      let found = ref None in
      Array.iteri
        (fun i (alias, (table : C.Table.t)) ->
          if String.equal alias qualifier || String.equal table.C.Table.name qualifier
          then
            match !found with
            | None -> found := Some i
            | Some _ -> errorf "ambiguous table qualifier %s" qualifier)
        scope.quants;
      Option.map
        (fun q ->
          if C.Table.mem_column (table_of scope q) c.Ast.c_name then
            O.Colref.make q c.Ast.c_name
          else
            errorf "column %s.%s does not exist" qualifier c.Ast.c_name)
        !found
    | None ->
      let found = ref None in
      Array.iteri
        (fun i (_, table) ->
          if C.Table.mem_column table c.Ast.c_name then
            match !found with
            | None -> found := Some i
            | Some _ -> errorf "ambiguous column %s" c.Ast.c_name)
        scope.quants;
      Option.map (fun q -> O.Colref.make q c.Ast.c_name) !found
  in
  match here with
  | Some colref -> if depth = 0 then Here colref else Outer depth
  | None -> begin
    match scope.parent with
    | Some parent -> resolve ~depth:(depth + 1) parent c
    | None ->
      errorf "unresolved column %s%s"
        (match c.Ast.c_table with Some t -> t ^ "." | None -> "")
        c.Ast.c_name
  end

let resolve_here scope c =
  match resolve scope c with
  | Here colref -> colref
  | Outer _ -> errorf "correlated reference %s not allowed here" c.Ast.c_name

(* Map a literal into the column's default [0, distinct) domain so that
   histogram selectivities stay meaningful. *)
let literal_value scope (colref : O.Colref.t) = function
  | Ast.Num f -> f
  | Ast.Str s ->
    let table = table_of scope colref.O.Colref.q in
    let col = C.Table.find_column table colref.O.Colref.col in
    let domain = Float.max 1.0 col.C.Column.distinct in
    float_of_int (Hashtbl.hash s mod int_of_float domain)

let cmp_op = function
  | Ast.Eq -> O.Pred.Eq
  | Ast.Lt -> O.Pred.Lt
  | Ast.Le -> O.Pred.Le
  | Ast.Gt -> O.Pred.Gt
  | Ast.Ge -> O.Pred.Ge

let rec bind_select ~name scope_parent schema (s : Ast.select) =
  let table_refs =
    s.Ast.sel_from @ List.map (fun j -> j.Ast.j_table) s.Ast.sel_joins
  in
  if table_refs = [] then errorf "empty FROM clause";
  let quants =
    Array.of_list
      (List.map
         (fun (tref : Ast.table_ref) ->
           match C.Schema.find_table_opt schema tref.Ast.t_name with
           | None -> errorf "unknown table %s" tref.Ast.t_name
           | Some table ->
             ( Option.value ~default:tref.Ast.t_name tref.Ast.t_alias,
               table ))
         table_refs)
  in
  let scope = { schema; quants; parent = scope_parent } in
  let preds = ref [] in
  let children = ref [] in
  let blocked_outer = ref Bitset.empty in
  let subquery_count = ref 0 in
  let handle_condition cond =
    match cond with
    | Ast.Cmp_cols (a, op, b) -> begin
      match (resolve scope a, resolve scope b) with
      | Here ca, Here cb ->
        if op = Ast.Eq then preds := O.Pred.Eq_join (ca, cb) :: !preds
        else begin
          (* Non-equality column comparison: a filter with a default
             selectivity; it never contributes a join-graph edge. *)
          let tables =
            Bitset.add cb.O.Colref.q (Bitset.singleton ca.O.Colref.q)
          in
          preds := O.Pred.Expensive (tables, 1.0 /. 3.0, 0.01) :: !preds
        end
      | Here c, Outer _ | Outer _, Here c ->
        (* A correlated predicate: the local column is constrained by a
           value from the enclosing query, restricting this quantifier's
           ability to serve as an outer. *)
        blocked_outer := Bitset.add c.O.Colref.q !blocked_outer
      | Outer _, Outer _ -> ()
    end
    | Ast.Cmp_lit (c, op, l) -> begin
      match resolve scope c with
      | Here colref ->
        preds :=
          O.Pred.Local_cmp (colref, cmp_op op, literal_value scope colref l)
          :: !preds
      | Outer _ -> ()
    end
    | Ast.In_list (c, ls) -> begin
      match resolve scope c with
      | Here colref -> preds := O.Pred.Local_in (colref, List.length ls) :: !preds
      | Outer _ -> ()
    end
    | Ast.Exists sub ->
      incr subquery_count;
      let child =
        bind_select
          ~name:(Printf.sprintf "%s$sub%d" name !subquery_count)
          (Some scope) schema sub
      in
      children := child :: !children
    | Ast.In_subquery (c, sub) -> begin
      incr subquery_count;
      let child =
        bind_select
          ~name:(Printf.sprintf "%s$sub%d" name !subquery_count)
          (Some scope) schema sub
      in
      children := child :: !children;
      match resolve scope c with
      | Here colref -> blocked_outer := Bitset.add colref.O.Colref.q !blocked_outer
      | Outer _ -> ()
    end
  in
  List.iter handle_condition s.Ast.sel_where;
  (* JOIN clauses: predicates plus outer-join constraints.  The preserved
     side of a LEFT JOIN is everything introduced before the clause. *)
  let n_from = List.length s.Ast.sel_from in
  let outer_joins = ref [] in
  List.iteri
    (fun i (j : Ast.join_clause) ->
      let qj = n_from + i in
      List.iter handle_condition j.Ast.j_on;
      match j.Ast.j_kind with
      | Ast.Inner -> ()
      | Ast.Left_outer ->
        let preserved = ref Bitset.empty in
        for k = 0 to qj - 1 do
          preserved := Bitset.add k !preserved
        done;
        outer_joins :=
          {
            O.Query_block.oj_preserved = !preserved;
            oj_null = Bitset.singleton qj;
          }
          :: !outer_joins)
    s.Ast.sel_joins;
  (* Validate select-list column references. *)
  List.iter
    (fun item ->
      match item with
      | Ast.Star -> ()
      | Ast.Col_item c -> ignore (resolve_here scope c)
      | Ast.Agg (_, c) -> if c.Ast.c_name <> "*" then ignore (resolve_here scope c))
    s.Ast.sel_items;
  let group_by = List.map (resolve_here scope) s.Ast.sel_group_by in
  let order_by = List.map (resolve_here scope) s.Ast.sel_order_by in
  let quantifiers =
    Array.to_list
      (Array.mapi
         (fun i (alias, table) ->
           O.Quantifier.make
             ~outer_allowed:(not (Bitset.mem i !blocked_outer))
             ~alias i table)
         quants)
  in
  O.Query_block.make ~name ~group_by ~order_by ~outer_joins:(List.rev !outer_joins)
    ~children:(List.rev !children) ?first_n:s.Ast.sel_limit ~quantifiers
    ~preds:(List.rev !preds) ()

let bind ?(name = "q") schema select = bind_select ~name None schema select

let parse_and_bind ?name schema sql = bind ?name schema (Parser.parse sql)
