lib/experiments/mv_exp.ml: Common Cote Float Format List Printf Qopt_catalog Qopt_optimizer Qopt_sql Qopt_util Qopt_workloads String
