(* The giant-join-graph regime: shape generators, the spanning-tree
   fallback, hard DP resource budgets, the greedy time model and regime
   selection.  Everything here is deterministic — seeds are fixed and the
   budget/regime checks are structural, not timing-based. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module C = Qopt_catalog
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let env = O.Env.serial

let prop name ?(count = 60) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* Structural identity of a generated block: which catalog tables were
   drawn, in what order, and the exact predicate list (join columns and
   the seeded filter constant). *)
let fingerprint (b : O.Query_block.t) =
  ( b.O.Query_block.name,
    Array.to_list b.O.Query_block.quantifiers
    |> List.map (fun q -> q.O.Quantifier.table.C.Table.name),
    b.O.Query_block.preds )

let shapes =
  [
    (W.Giant.Chain, 20);
    (W.Giant.Chain, 50);
    (W.Giant.Cycle, 20);
    (W.Giant.Star, 30);
    (W.Giant.Snowflake 4, 24);
    (W.Giant.Clique, 20);
    (W.Giant.Clique, 50);
  ]

let raises_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let generator_tests =
  [
    t "same seed, same block — different seed, different block" (fun () ->
        List.iter
          (fun (shape, n) ->
            let a = W.Giant.block ~seed:7 shape n in
            let b = W.Giant.block ~seed:7 shape n in
            Alcotest.(check bool)
              (W.Giant.shape_name shape ^ " deterministic")
              true
              (fingerprint a = fingerprint b))
          shapes;
        let a = W.Giant.block ~seed:0 W.Giant.Clique 20 in
        let b = W.Giant.block ~seed:1 W.Giant.Clique 20 in
        Alcotest.(check bool) "seed reaches the output" false
          (fingerprint a = fingerprint b));
    t "every shape is connected at every size" (fun () ->
        List.iter
          (fun (shape, n) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%d" (W.Giant.shape_name shape) n)
              true
              (O.Query_block.is_connected (W.Giant.block shape n)))
          shapes);
    t "edge counts match the closed forms" (fun () ->
        List.iter
          (fun (shape, n, expect) ->
            let b = W.Giant.block shape n in
            Alcotest.(check int)
              (Printf.sprintf "%s/%d closed form" (W.Giant.shape_name shape) n)
              expect
              (W.Giant.edge_count shape n);
            Alcotest.(check int)
              (Printf.sprintf "%s/%d graph" (W.Giant.shape_name shape) n)
              expect
              (O.Spanning_tree.edge_count b))
          [
            (W.Giant.Chain, 40, 39);
            (W.Giant.Clique, 30, 435);
            (W.Giant.Clique, 50, 1225);
            (W.Giant.Cycle, 25, 25);
            (W.Giant.Star, 30, 29);
            (W.Giant.Snowflake 4, 36, 35);
          ]);
    t "snowflake center degree is min(branches, n-1)" (fun () ->
        let degree b n =
          Bitset.cardinal
            (O.Query_block.neighbors (W.Giant.block (W.Giant.Snowflake b) n) 0)
        in
        Alcotest.(check int) "4 branches, 24 tables" 4 (degree 4 24);
        Alcotest.(check int) "6 branches, 5 tables" 4 (degree 6 5);
        Alcotest.(check int) "1 branch is a chain" 1 (degree 1 20));
    t "invalid sizes raise" (fun () ->
        raises_invalid "n < 2" (fun () -> W.Giant.block W.Giant.Chain 1);
        raises_invalid "cycle needs 3" (fun () -> W.Giant.block W.Giant.Cycle 2);
        raises_invalid "snowflake arity 0" (fun () ->
            W.Giant.block (W.Giant.Snowflake 0) 10);
        raises_invalid "past the bitset width" (fun () ->
            W.Giant.block W.Giant.Chain (W.Giant.max_tables + 1)));
    t "the giant workload: 14 uniquely named connected queries" (fun () ->
        let wl = W.Giant.workload () in
        let names =
          List.map (fun (q : W.Workload.query) -> q.W.Workload.q_name)
            wl.W.Workload.queries
        in
        Alcotest.(check int) "size" 14 (List.length names);
        Alcotest.(check int) "unique names" 14
          (List.length (List.sort_uniq compare names));
        Alcotest.(check bool) "giant_chain_20 present" true
          (List.mem "giant_chain_20" names);
        Alcotest.(check bool) "giant_clique_50 present" true
          (List.mem "giant_clique_50" names);
        List.iter
          (fun (q : W.Workload.query) ->
            Alcotest.(check bool) q.W.Workload.q_name true
              (O.Query_block.is_connected q.W.Workload.block))
          wl.W.Workload.queries);
    (let gen =
       QCheck2.Gen.(
         triple
           (oneof
              [
                return W.Giant.Chain;
                return W.Giant.Clique;
                return W.Giant.Cycle;
                return W.Giant.Star;
                map (fun b -> W.Giant.Snowflake b) (int_range 1 6);
              ])
           (int_range 3 40) (int_range 0 1000))
     in
     prop "any (shape, n, seed): n tables, connected, closed-form edges" gen
       (fun (shape, n, seed) ->
         let b = W.Giant.block ~seed shape n in
         O.Query_block.n_quantifiers b = n
         && O.Query_block.is_connected b
         && O.Spanning_tree.edge_count b = W.Giant.edge_count shape n
         && fingerprint b = fingerprint (W.Giant.block ~seed shape n)));
  ]

(* ------------------------------------------------------------------ *)
(* Spanning-tree fallback                                              *)
(* ------------------------------------------------------------------ *)

let plan_of (fb : O.Optimizer.fallback) =
  match fb.O.Optimizer.fb_best with
  | Some p -> p
  | None -> Alcotest.fail "fallback produced no plan"

let fallback_tests =
  [
    t "fallback plans cover every quantifier with n-1 joins" (fun () ->
        List.iter
          (fun (shape, n) ->
            let b = W.Giant.block shape n in
            let p = plan_of (O.Optimizer.optimize_fallback env b) in
            Alcotest.(check bool)
              (W.Giant.shape_name shape ^ " covers all tables")
              true
              (Bitset.equal p.O.Plan.tables (O.Query_block.all_tables b));
            Alcotest.(check int)
              (W.Giant.shape_name shape ^ " spanning joins")
              (n - 1) (O.Plan.join_count p);
            Alcotest.(check bool) "positive cost" true (p.O.Plan.cost > 0.0);
            Alcotest.(check bool) "positive card" true (p.O.Plan.card > 0.0))
          shapes);
    t "fallback is seed-deterministic, restarts included" (fun () ->
        let b = W.Giant.block W.Giant.Clique 30 in
        let one () =
          plan_of (O.Optimizer.optimize_fallback env ~seed:3 ~restarts:4 b)
        in
        let p1 = one () and p2 = one () in
        Alcotest.(check string) "same plan"
          (Format.asprintf "%a" O.Plan.pp_compact p1)
          (Format.asprintf "%a" O.Plan.pp_compact p2);
        Alcotest.(check (float 0.0)) "same cost" p1.O.Plan.cost p2.O.Plan.cost);
    t "restarts never worsen the plan" (fun () ->
        List.iter
          (fun (shape, n) ->
            let b = W.Giant.block shape n in
            let base = plan_of (O.Optimizer.optimize_fallback env b) in
            let jittered =
              plan_of (O.Optimizer.optimize_fallback env ~restarts:8 b)
            in
            Alcotest.(check bool)
              (W.Giant.shape_name shape ^ " restarts only improve")
              true
              (jittered.O.Plan.cost <= base.O.Plan.cost))
          [ (W.Giant.Clique, 20); (W.Giant.Cycle, 20); (W.Giant.Snowflake 4, 24) ]);
    t "fallback never beats DP where DP is feasible" (fun () ->
        let b = W.Giant.block W.Giant.Chain 20 in
        let dp = O.Optimizer.optimize env b in
        let fb = plan_of (O.Optimizer.optimize_fallback env b) in
        match dp.O.Optimizer.best with
        | None -> Alcotest.fail "DP produced no plan"
        | Some best ->
          Alcotest.(check bool) "DP optimal" true
            (fb.O.Plan.cost >= best.O.Plan.cost *. (1.0 -. 1e-9)));
    t "fallback features are what the greedy model predicts from" (fun () ->
        let b = W.Giant.block W.Giant.Clique 30 in
        let fb = O.Optimizer.optimize_fallback env ~restarts:2 b in
        Alcotest.(check int) "quantifiers" 30 fb.O.Optimizer.fb_quantifiers;
        Alcotest.(check int) "edges" 435 fb.O.Optimizer.fb_edges;
        Alcotest.(check int) "restarts" 2 fb.O.Optimizer.fb_restarts;
        Alcotest.(check bool) "joins counted" true (fb.O.Optimizer.fb_joins > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

let budget_tests =
  [
    t "a tight MEMO-entry cap aborts a clique compile, structurally" (fun () ->
        let b = W.Giant.block W.Giant.Clique 20 in
        let budget = O.Budget.make ~max_memo_entries:200 () in
        match O.Optimizer.optimize env ~budget b with
        | exception O.Budget.Exceeded blown ->
          Alcotest.(check string) "what" "memo_entries" blown.O.Budget.b_what;
          Alcotest.(check int) "limit" 200 blown.O.Budget.b_limit;
          Alcotest.(check bool) "reached past the limit" true
            (blown.O.Budget.b_reached > 200)
        | _ -> Alcotest.fail "expected Budget.Exceeded");
    t "a tight kept-plan cap aborts too" (fun () ->
        let b = W.Giant.block W.Giant.Clique 20 in
        let budget = O.Budget.make ~max_kept_plans:300 () in
        match O.Optimizer.optimize env ~budget b with
        | exception O.Budget.Exceeded blown ->
          Alcotest.(check string) "what" "kept_plans" blown.O.Budget.b_what
        | _ -> Alcotest.fail "expected Budget.Exceeded");
    t "a roomy budget changes nothing" (fun () ->
        let b = W.Giant.block W.Giant.Chain 20 in
        let budget =
          O.Budget.make ~max_memo_entries:10_000_000
            ~max_kept_plans:10_000_000 ()
        in
        let plain = O.Optimizer.optimize env b in
        let budgeted = O.Optimizer.optimize env ~budget b in
        Alcotest.(check int) "entries" plain.O.Optimizer.entries
          budgeted.O.Optimizer.entries;
        Alcotest.(check int) "kept" plain.O.Optimizer.kept
          budgeted.O.Optimizer.kept;
        Alcotest.(check int) "joins" plain.O.Optimizer.joins
          budgeted.O.Optimizer.joins;
        match (plain.O.Optimizer.best, budgeted.O.Optimizer.best) with
        | Some a, Some b ->
          Alcotest.(check (float 0.0)) "cost bit-for-bit" a.O.Plan.cost
            b.O.Plan.cost
        | _ -> Alcotest.fail "both should produce plans");
    t "the estimate pass honors the same budget" (fun () ->
        let big = W.Giant.block W.Giant.Clique 30 in
        let tight = O.Budget.make ~max_memo_entries:1_000 () in
        (match Cote.Estimator.estimate env ~budget:tight big with
        | exception O.Budget.Exceeded _ -> ()
        | _ -> Alcotest.fail "expected Budget.Exceeded from the estimator");
        let small = W.Giant.block W.Giant.Chain 20 in
        let roomy = O.Budget.make ~max_memo_entries:10_000_000 () in
        let plain = Cote.Estimator.estimate env small in
        let budgeted = Cote.Estimator.estimate env ~budget:roomy small in
        Alcotest.(check int) "entries" plain.Cote.Estimator.entries
          budgeted.Cote.Estimator.entries;
        Alcotest.(check int) "joins" plain.Cote.Estimator.joins
          budgeted.Cote.Estimator.joins);
    t "unlimited budgets are recognized and free" (fun () ->
        Alcotest.(check bool) "unlimited" true
          (O.Budget.is_unlimited O.Budget.unlimited);
        Alcotest.(check bool) "make () is unlimited" true
          (O.Budget.is_unlimited (O.Budget.make ()));
        Alcotest.(check bool) "predicted-s alone doesn't bound a pass" true
          (O.Budget.is_unlimited (O.Budget.make ~max_predicted_s:0.5 ()));
        Alcotest.(check bool) "an entry cap does" false
          (O.Budget.is_unlimited (O.Budget.make ~max_memo_entries:1 ()));
        (* far under any cap: check is a no-op *)
        O.Budget.check
          (O.Budget.make ~max_memo_entries:10 ~max_kept_plans:10 ())
          ~entries:5 ~kept:5);
  ]

(* ------------------------------------------------------------------ *)
(* Greedy time model and regime selection                              *)
(* ------------------------------------------------------------------ *)

let regime_tests =
  [
    t "fit recovers exact coefficients from noiseless observations" (fun () ->
        let truth =
          Cote.Greedy_model.make ~g_quant:1e-4 ~g_edge:2e-5 ~g_restart:5e-3 ()
        in
        let obs =
          List.concat_map
            (fun (q, e) ->
              List.map
                (fun r ->
                  {
                    Cote.Greedy_model.gob_quant = float_of_int q;
                    gob_edges = float_of_int e;
                    gob_restarts = float_of_int r;
                    gob_seconds =
                      Cote.Greedy_model.predict truth ~quantifiers:q ~edges:e
                        ~restarts:r;
                  })
                [ 0; 2; 4 ])
            [ (20, 19); (30, 435); (50, 1225); (24, 23) ]
        in
        let fitted = Cote.Greedy_model.fit obs in
        let close name a b =
          Alcotest.(check bool) name true (Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a))
        in
        close "g_quant" truth.Cote.Greedy_model.g_quant
          fitted.Cote.Greedy_model.g_quant;
        close "g_edge" truth.Cote.Greedy_model.g_edge
          fitted.Cote.Greedy_model.g_edge;
        close "g_restart" truth.Cote.Greedy_model.g_restart
          fitted.Cote.Greedy_model.g_restart);
    t "predict_fallback reads the recorded features" (fun () ->
        let b = W.Giant.block W.Giant.Star 20 in
        let fb = O.Optimizer.optimize_fallback env ~restarts:3 b in
        let m = Cote.Greedy_model.default in
        Alcotest.(check (float 0.0)) "same prediction"
          (Cote.Greedy_model.predict m ~quantifiers:20 ~edges:19 ~restarts:3)
          (Cote.Greedy_model.predict_fallback m fb));
    t "decide: DP whenever its prediction fits the deadline" (fun () ->
        let d =
          Cote.Regime.decide ~deadline_s:1.0 ~dp_s:(Some 0.5) ~greedy_s:0.01 ()
        in
        Alcotest.(check string) "regime" "dp"
          (Cote.Regime.to_string d.Cote.Regime.d_regime);
        Alcotest.(check (float 1e-12)) "margin = deadline slack" 0.5
          d.Cote.Regime.d_margin_s;
        Alcotest.(check (float 0.0)) "predicted_s is DP's" 0.5
          (Cote.Regime.predicted_s d));
    t "decide: greedy when DP misses the deadline" (fun () ->
        let d =
          Cote.Regime.decide ~deadline_s:1.0 ~dp_s:(Some 2.0) ~greedy_s:0.01 ()
        in
        Alcotest.(check string) "regime" "greedy"
          (Cote.Regime.to_string d.Cote.Regime.d_regime);
        Alcotest.(check (float 1e-12)) "margin = greedy slack" 0.99
          d.Cote.Regime.d_margin_s;
        Alcotest.(check (float 0.0)) "predicted_s is greedy's" 0.01
          (Cote.Regime.predicted_s d));
    t "decide: greedy when the budgeted estimate itself blew up" (fun () ->
        let d = Cote.Regime.decide ~deadline_s:1.0 ~dp_s:None ~greedy_s:0.02 () in
        Alcotest.(check string) "regime" "greedy"
          (Cote.Regime.to_string d.Cote.Regime.d_regime);
        let d' = Cote.Regime.decide ~dp_s:None ~greedy_s:0.02 () in
        Alcotest.(check string) "no deadline: still greedy" "greedy"
          (Cote.Regime.to_string d'.Cote.Regime.d_regime));
    t "decide: no deadline prefers DP quality when feasible" (fun () ->
        let d = Cote.Regime.decide ~dp_s:(Some 0.5) ~greedy_s:0.01 () in
        Alcotest.(check string) "regime" "dp"
          (Cote.Regime.to_string d.Cote.Regime.d_regime);
        Alcotest.(check (float 1e-12)) "margin = DP's slowdown over greedy" 0.49
          d.Cote.Regime.d_margin_s);
    t "regime strings round trip" (fun () ->
        List.iter
          (fun r ->
            Alcotest.(check bool) (Cote.Regime.to_string r) true
              (Cote.Regime.of_string (Cote.Regime.to_string r) = Some r))
          [ Cote.Regime.Dp; Cote.Regime.Greedy; Cote.Regime.Dp_budget_fallback ];
        Alcotest.(check bool) "unknown regime rejected" true
          (Cote.Regime.of_string "bogus" = None));
  ]

let suite =
  generator_tests @ fallback_tests @ budget_tests @ regime_tests
