lib/optimizer/mat_view.ml: Cardinality Colref Cost_model Float Format List Pred Qopt_catalog Qopt_util Quantifier Query_block String
