test/t_bitset.ml: Alcotest Format List QCheck2 QCheck_alcotest Qopt_util
