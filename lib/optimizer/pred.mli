(** Predicates of a query block.

    Join predicates define the join graph; local predicates feed selectivity
    estimation; expensive predicates model user-defined functions whose
    evaluation may be deferred past joins (Table 1 of the paper lists them as
    a physical property — we cost them but keep order/partition as the two
    estimated property types, like the DB2 prototype). *)

module Bitset = Qopt_util.Bitset

type cmp_op =
  | Eq
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Eq_join of Colref.t * Colref.t
      (** equality join predicate between two quantifiers *)
  | Local_cmp of Colref.t * cmp_op * float
      (** comparison of a column against a literal *)
  | Local_in of Colref.t * int  (** [col IN (v1..vn)]; the int is n *)
  | Expensive of Bitset.t * float * float
      (** expensive predicate: quantifiers referenced, selectivity, cost per
          tuple *)

val tables : t -> Bitset.t
(** Quantifiers referenced by the predicate. *)

val is_join : t -> bool
(** [true] only for [Eq_join] between distinct quantifiers. *)

val crosses : t -> Bitset.t -> Bitset.t -> bool
(** [crosses p s l] is [true] when [p] is a join predicate with one side in
    [s] and the other in [l]. *)

val applicable_within : t -> Bitset.t -> bool
(** All referenced quantifiers are inside the given set. *)

val join_cols : t -> (Colref.t * Colref.t) option
(** The two sides of an [Eq_join]. *)

val qpair : t -> (int * int) option
(** The unordered quantifier pair of a genuine join predicate, as
    [(min, max)] — the join-graph edge the predicate contributes.  [None]
    for everything {!is_join} rejects. *)

val pp : Format.formatter -> t -> unit
