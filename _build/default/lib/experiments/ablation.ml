(** Ablations of the COTE's design choices.

    [abl-sep] — independent order/partition lists (Section 3.4) vs compound
    property vectors: compound is the accuracy baseline, separate lists must
    be faster (and tend to undercount slightly, as the paper notes).

    [abl-first] — first-join-only property propagation (Section 4 point 4):
    propagating on every join is the precision baseline; the shortcut must
    cut estimator time at a small precision cost. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

let estimate_with options env block = Cote.Estimator.estimate ~options env block

let compare_options ~title ~label_a ~label_b options_a options_b env wl_name =
  let wl = Common.workload env wl_name in
  let measured = Common.measure_workload env wl in
  let t =
    Tablefmt.create ~title
      [
        ("query", Tablefmt.Left);
        ("actual", Tablefmt.Right);
        (label_a, Tablefmt.Right);
        (label_b, Tablefmt.Right);
        (label_a ^ " err", Tablefmt.Right);
        (label_b ^ " err", Tablefmt.Right);
      ]
  in
  let time_a = ref 0.0 and time_b = ref 0.0 in
  let errs_a = ref [] and errs_b = ref [] in
  List.iter
    (fun m ->
      let block = m.Common.m_query.W.Workload.block in
      let actual = float_of_int (O.Memo.counts_total m.Common.m_real.O.Optimizer.generated) in
      let ea = estimate_with options_a env block in
      let eb = estimate_with options_b env block in
      time_a := !time_a +. ea.Cote.Estimator.elapsed;
      time_b := !time_b +. eb.Cote.Estimator.elapsed;
      let va = float_of_int (Cote.Estimator.total ea) in
      let vb = float_of_int (Cote.Estimator.total eb) in
      errs_a := (actual, va) :: !errs_a;
      errs_b := (actual, vb) :: !errs_b;
      Tablefmt.add_row t
        [
          m.Common.m_query.W.Workload.q_name;
          Tablefmt.fcount actual;
          Tablefmt.fcount va;
          Tablefmt.fcount vb;
          Tablefmt.fpct (Stats.pct_error ~actual ~estimate:va);
          Tablefmt.fpct (Stats.pct_error ~actual ~estimate:vb);
        ])
    measured;
  Tablefmt.print t;
  Format.printf "%s: %s, total estimator time %.4fs@." label_a
    (Common.err_summary !errs_a) !time_a;
  Format.printf "%s: %s, total estimator time %.4fs@.@." label_b
    (Common.err_summary !errs_b) !time_b

let run_separate () =
  compare_options
    ~title:
      "abl-sep: separate order/partition lists vs compound vectors (real1_p)"
    ~label_a:"separate" ~label_b:"compound"
    { Cote.Accumulate.first_join_only = true; separate_lists = true }
    { Cote.Accumulate.first_join_only = true; separate_lists = false }
    Common.parallel "real1"

let run_first_join () =
  compare_options
    ~title:
      "abl-first: first-join-only propagation vs propagate-on-every-join \
       (linear_s)"
    ~label_a:"first-only" ~label_b:"every-join"
    { Cote.Accumulate.first_join_only = true; separate_lists = true }
    { Cote.Accumulate.first_join_only = false; separate_lists = true }
    Common.serial "linear"
