(** Foreign-key relationships.

    The random query generator (Section 5 of the paper) joins tables
    preferentially along foreign-key to primary-key relationships, so the
    schema records them explicitly. *)

type t = {
  from_table : string;
  from_cols : string list;
  to_table : string;
  to_cols : string list;
}

val make :
  from_table:string ->
  from_cols:string list ->
  to_table:string ->
  to_cols:string list ->
  t
(** Raises [Invalid_argument] if the column lists differ in length or are
    empty. *)

val pp : Format.formatter -> t -> unit
