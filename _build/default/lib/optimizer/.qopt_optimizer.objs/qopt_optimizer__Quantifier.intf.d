lib/optimizer/quantifier.mli: Format Qopt_catalog Qopt_util
