lib/core/estimator.mli: Accumulate Qopt_optimizer
