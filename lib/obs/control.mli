(** The global collection switch.

    Metrics are disabled by default; every recording operation checks [on]
    first, so a disabled run costs one load and branch per call site —
    including under multi-domain batch runs, where the sharded recording
    path ({!Shard}) is only reached once the branch passes.
    Span timers created with [~always:true] (the Figure-2 instrumentation)
    ignore the switch — their cost is part of what they measure.

    The switch is a plain (non-atomic) ref shared by all domains: set it
    from the main domain before spawning workers (spawning publishes the
    value); flipping it while workers run gives them the new value only
    eventually. *)

val on : bool ref
(** Exposed as a ref so hot paths can inline the check. *)

val enabled : unit -> bool

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch forced to the given value, restoring the
    previous value afterwards (also on exceptions). *)
