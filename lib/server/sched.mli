(** The request scheduler: a thread-safe priority queue ordering admitted
    work shortest-estimated-compilation-first.

    SJF over {e predicted} compile time is the paper's scheduling payoff:
    the estimate is available before optimization starts, so cheap queries
    overtake expensive ones and tail latency of the (dominant) cheap
    traffic drops.  [Fifo] mode keeps arrival order — the comparison
    baseline, selectable per server.

    Within equal keys the tiebreak is arrival order, so [Fifo] is literally
    SJF with a constant key.  [pop] blocks on a condition variable;
    producers and consumers may live on any mix of threads and domains.

    The heap lock is a contention-audited {!Qopt_obs.Lock} (family
    [lock.sched.*]); {!length} reads an atomic mirror of the size instead
    of taking it, so admission checks and queue-depth gauges never
    contend with pushers and poppers. *)

type mode = Sjf | Fifo

val mode_string : mode -> string

type 'a t

val create : mode -> 'a t

val mode : 'a t -> mode

val push : 'a t -> priority:float -> 'a -> bool
(** Enqueue with the given priority (predicted seconds; ignored under
    [Fifo]).  Returns [false] — and drops the item — if the scheduler is
    already closed. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available or the queue is closed; [None] only
    after [close] with an empty queue.  Items left at close time are still
    delivered (drain them with {!drain} first for cancel-on-shutdown
    semantics). *)

val drain : 'a t -> 'a list
(** Atomically removes and returns everything queued, in pop order. *)

val close : 'a t -> unit
(** Wakes all blocked [pop]s; subsequent pushes are refused. *)

val length : 'a t -> int
(** Lock-free: reads an atomic mirror maintained inside push/pop.  A read
    overlapping a concurrent mutation sees the size just before or just
    after it. *)
