lib/optimizer/plan.mli: Format Join_method Order_prop Partition_prop Pred Qopt_catalog Qopt_util
