module Span = Qopt_obs.Span

(* Each bucket is an always-on span: Figure-2 accounting is a consumer of
   the Qopt_obs span primitive, so buckets nest correctly with any
   registry-level spans around the compile. *)
type t = {
  b_nljn : Span.t;
  b_mgjn : Span.t;
  b_hsjn : Span.t;
  b_save : Span.t;
  b_card : Span.t;
  b_scan : Span.t;
  b_mv : Span.t;
  mutable total : float;
}

let bucket name = Span.make ~always:true ("instrument." ^ name)

let create () =
  {
    b_nljn = bucket "nljn";
    b_mgjn = bucket "mgjn";
    b_hsjn = bucket "hsjn";
    b_save = bucket "save";
    b_card = bucket "card";
    b_scan = bucket "scan";
    b_mv = bucket "mv";
    total = 0.0;
  }

let nljn t f = Span.time t.b_nljn f

let mgjn t f = Span.time t.b_mgjn f

let hsjn t f = Span.time t.b_hsjn f

let save t f = Span.time t.b_save f

let card t f = Span.time t.b_card f

let scan t f = Span.time t.b_scan f

let mv t f = Span.time t.b_mv f

let set_total t total = t.total <- total

type snapshot = {
  s_nljn : float;
  s_mgjn : float;
  s_hsjn : float;
  s_save : float;
  s_card : float;
  s_scan : float;
  s_mv : float;
  s_other : float;
  s_total : float;
}

let snapshot t =
  let n = Span.total t.b_nljn
  and m = Span.total t.b_mgjn
  and h = Span.total t.b_hsjn
  and s = Span.total t.b_save
  and c = Span.total t.b_card
  and sc = Span.total t.b_scan
  and mv = Span.total t.b_mv in
  {
    s_nljn = n;
    s_mgjn = m;
    s_hsjn = h;
    s_save = s;
    s_card = c;
    s_scan = sc;
    s_mv = mv;
    s_other = Float.max 0.0 (t.total -. (n +. m +. h +. s +. c +. sc +. mv));
    s_total = t.total;
  }

let zero =
  {
    s_nljn = 0.0;
    s_mgjn = 0.0;
    s_hsjn = 0.0;
    s_save = 0.0;
    s_card = 0.0;
    s_scan = 0.0;
    s_mv = 0.0;
    s_other = 0.0;
    s_total = 0.0;
  }

let merge a b =
  {
    s_nljn = a.s_nljn +. b.s_nljn;
    s_mgjn = a.s_mgjn +. b.s_mgjn;
    s_hsjn = a.s_hsjn +. b.s_hsjn;
    s_save = a.s_save +. b.s_save;
    s_card = a.s_card +. b.s_card;
    s_scan = a.s_scan +. b.s_scan;
    s_mv = a.s_mv +. b.s_mv;
    s_other = a.s_other +. b.s_other;
    s_total = a.s_total +. b.s_total;
  }

let pp_breakdown ppf s =
  let pct x = if s.s_total <= 0.0 then 0.0 else x /. s.s_total *. 100.0 in
  Format.fprintf ppf
    "MGJN %.1f%%  NLJN %.1f%%  HSJN %.1f%%  plan-saving %.1f%%  other %.1f%% \
     (card %.1f%%, scan %.1f%%, enum/rest %.1f%%)"
    (pct s.s_mgjn) (pct s.s_nljn) (pct s.s_hsjn) (pct s.s_save)
    (pct (s.s_card +. s.s_scan +. s.s_mv +. s.s_other))
    (pct s.s_card) (pct s.s_scan) (pct s.s_other)
