module Obs = Qopt_obs

type t =
  | Dp
  | Greedy
  | Dp_budget_fallback

let to_string = function
  | Dp -> "dp"
  | Greedy -> "greedy"
  | Dp_budget_fallback -> "dp_budget_fallback"

let of_string = function
  | "dp" -> Some Dp
  | "greedy" -> Some Greedy
  | "dp_budget_fallback" -> Some Dp_budget_fallback
  | _ -> None

type decision = {
  d_regime : t;
  d_dp_s : float option;  (** None: DP estimate itself blew the budget *)
  d_greedy_s : float;
  d_margin_s : float;
}

(* Quality first: DP whenever its prediction fits the deadline (or there is
   no deadline and DP is feasible at all).  The greedy regime is for the
   cases DP cannot serve — its estimate pass blew the resource budget, or
   its predicted time misses the deadline.  The margin is the headroom that
   drove the choice: chosen-regime slack against the deadline when one is
   set, otherwise DP's predicted slowdown over greedy. *)
let decide ?deadline_s ~dp_s ~greedy_s () =
  let d_regime, d_margin_s =
    match (dp_s, deadline_s) with
    | None, Some d -> (Greedy, d -. greedy_s)
    | None, None -> (Greedy, 0.0)
    | Some dp, Some d -> if dp <= d then (Dp, d -. dp) else (Greedy, d -. greedy_s)
    | Some dp, None -> (Dp, dp -. greedy_s)
  in
  { d_regime; d_dp_s = dp_s; d_greedy_s = greedy_s; d_margin_s }

let predicted_s d =
  match d.d_regime with
  | Dp -> ( match d.d_dp_s with Some s -> s | None -> d.d_greedy_s)
  | Greedy | Dp_budget_fallback -> d.d_greedy_s

(* Process-wide regime metrics (no-ops unless Qopt_obs is enabled). *)
let m_dp = Obs.Registry.counter Obs.Registry.default "regime.dp"

let m_greedy = Obs.Registry.counter Obs.Registry.default "regime.greedy"

let m_fallbacks = Obs.Registry.counter Obs.Registry.default "regime.fallbacks"

let m_margin = Obs.Registry.gauge Obs.Registry.default "regime.decision_margin_s"

let record d =
  (match d.d_regime with
  | Dp -> Obs.Counter.incr m_dp
  | Greedy -> Obs.Counter.incr m_greedy
  | Dp_budget_fallback ->
    (* A fallback is a DP admission that got rescued mid-compile: it was
       already counted as DP at decision time, so only the rescue counts. *)
    Obs.Counter.incr m_fallbacks);
  Obs.Gauge.set m_margin d.d_margin_s

let record_fallback () = Obs.Counter.incr m_fallbacks

let pp ppf r = Format.pp_print_string ppf (to_string r)
