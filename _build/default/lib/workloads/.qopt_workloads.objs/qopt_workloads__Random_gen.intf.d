lib/workloads/random_gen.mli: Qopt_catalog Workload
