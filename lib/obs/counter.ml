type t = {
  name : string;
  mutable value : int;
}

let make name = { name; value = 0 }

let name t = t.name

let incr t = if !Control.on then t.value <- t.value + 1

let add t n = if !Control.on then t.value <- t.value + n

let value t = t.value

let reset t = t.value <- 0
