(** The optimization driver.

    Runs full dynamic-programming optimization of a query (all blocks,
    bottom-up), returning the best plan together with everything the
    experiments need: wall-clock time, the Figure 2 breakdown, enumeration
    and plan-generation counters, and MEMO size. *)

type result = {
  best : Plan.t option;  (** best plan of the top block *)
  elapsed : float;  (** wall-clock seconds, all blocks *)
  joins : int;  (** joins enumerated *)
  generated : Memo.counts;  (** join plans generated, before pruning *)
  scan_plans : int;
  kept : int;  (** plans held in the MEMO after pruning *)
  entries : int;
  pruned : int;
  breakdown : Instrument.snapshot;
  memo_bytes : float;
  mv_tests : int;  (** materialized-view matching tests (§6.2) *)
  mv_matches : int;
}

val optimize_block :
  ?views:Mat_view.t list -> Env.t -> Knobs.t -> Query_block.t -> result
(** Optimizes a single block, ignoring children.  If the knobs leave the top
    table set unreachable (e.g. a disconnected join graph without Cartesian
    products), the block is retried with Cartesian products enabled, as a
    real system would. *)

val optimize :
  Env.t -> ?knobs:Knobs.t -> ?views:Mat_view.t list -> Query_block.t -> result
(** Optimizes the block and all child blocks bottom-up; counters and times
    are summed, [best] is the top block's plan (with final SORT / GROUP BY
    operators applied).  [knobs] defaults to {!Knobs.default}. *)
