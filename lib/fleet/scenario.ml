module Timer = Qopt_util.Timer
module Srv = Qopt_server

type config = {
  tenants : int;
  bursts : int;
  smalls : int;
  bigs : int;
  pause_s : float;
  slow_start_s : float;
  seed : int;
}

let default_config =
  {
    tenants = 4;
    bursts = 3;
    smalls = 24;
    bigs = 2;
    pause_s = 0.02;
    slow_start_s = 0.0;
    seed = 42;
  }

(* Deterministic per-tenant randomness (no global RNG: scenarios must
   replay bit-identically under a fixed seed, and Random's global state
   is shared across threads). *)
let lcg state =
  let s = ((state * 25214903917) + 11) land 0xFFFFFFFFFFFF in
  (s, (s lsr 16) land 0x3FFFFFFF)

(* A tenant's burst: the shared warehouse mix, with the small/big split
   jittered per (tenant, burst) so tenants are mixed rather than in
   lockstep — some bursts lean small (latency tier), some lean big
   (throughput tier). *)
let burst_mix cfg ~rng =
  let rng, r1 = lcg rng in
  let rng, r2 = lcg rng in
  let jitter base r =
    if base <= 1 then base else base - (base / 4) + (r mod (max 1 (base / 2)))
  in
  (rng, Srv.Loadgen.warehouse_mix ~smalls:(jitter cfg.smalls r1) ~bigs:(jitter cfg.bigs r2))

type tally = {
  mutable sent : int;
  mutable outcomes : Srv.Loadgen.outcome list;
  mutable latencies : float list;
}

let run_tenant cfg ~addr ~tenant tally =
  if cfg.slow_start_s > 0.0 then
    Thread.delay (float_of_int tenant *. cfg.slow_start_s);
  (* Generous dial attempts: with slow-start the fleet may still be
     bringing backends up when the first tenants arrive. *)
  let c = Srv.Client.connect ~attempts:50 addr in
  Fun.protect
    ~finally:(fun () -> Srv.Client.close c)
    (fun () ->
      let rng = ref (cfg.seed + (tenant * 7919) + 1) in
      for _burst = 1 to cfg.bursts do
        let rng', sql = burst_mix cfg ~rng:!rng in
        rng := rng';
        let send_times = Hashtbl.create 64 in
        List.iter
          (fun q ->
            let id = Srv.Client.fresh_id c in
            Hashtbl.replace send_times id (Timer.monotonic_now ());
            Srv.Client.send c
              (Srv.Proto.Compile
                 {
                   id;
                   sql = q;
                   schema = None;
                   deadline_ms = None;
                   estimate_hint_s = None;
                 }))
          sql;
        let n = List.length sql in
        tally.sent <- tally.sent + n;
        for _k = 1 to n do
          match Srv.Client.recv c with
          | None -> tally.outcomes <- Srv.Loadgen.Errored :: tally.outcomes
          | Some reply ->
            let outcome = Srv.Loadgen.classify reply in
            (match
               ( outcome,
                 Hashtbl.find_opt send_times (Srv.Proto.reply_id reply) )
             with
            | Srv.Loadgen.Compiled, Some t0 ->
              tally.latencies <-
                (Timer.monotonic_now () -. t0) :: tally.latencies
            | _ -> ());
            tally.outcomes <- outcome :: tally.outcomes
        done;
        if cfg.pause_s > 0.0 then Thread.delay cfg.pause_s
      done)

let run cfg ~addr =
  let started = Timer.monotonic_now () in
  let tallies =
    Array.init cfg.tenants (fun _ ->
        { sent = 0; outcomes = []; latencies = [] })
  in
  let threads =
    Array.mapi
      (fun tenant tally ->
        Thread.create (fun () -> run_tenant cfg ~addr ~tenant tally) ())
      tallies
  in
  Array.iter Thread.join threads;
  let wall_s = Timer.monotonic_now () -. started in
  let outcomes =
    Array.fold_left (fun acc t -> t.outcomes @ acc) [] tallies
  in
  let latencies =
    Array.fold_left (fun acc t -> t.latencies @ acc) [] tallies
  in
  let sent = Array.fold_left (fun acc t -> acc + t.sent) 0 tallies in
  Srv.Loadgen.summarize ~sent ~wall_s outcomes latencies
