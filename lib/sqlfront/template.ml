type ptype =
  | P_num
  | P_str

type param = {
  p_index : int;
  p_type : ptype;
  p_value : Ast.literal;
}

type t = {
  shape : Ast.select;
  params : param list;
  key : string;
}

(* One ordinal counter shared across nested subqueries: the placeholder
   sequence is a property of the whole statement, so two statements with
   the same structure always assign the same ordinals. *)
let normalize select =
  let params = ref [] in
  let next = ref 0 in
  let abstract lit =
    let idx = !next in
    incr next;
    let p_type = match lit with Ast.Num _ -> P_num | Ast.Str _ -> P_str in
    params := { p_index = idx; p_type; p_value = lit } :: !params;
    match p_type with
    | P_num -> Ast.Num (float_of_int idx)
    | P_str -> Ast.Str (Printf.sprintf "?%d" idx)
  in
  let rec condition = function
    | Ast.Cmp_cols _ as c -> c
    | Ast.Cmp_lit (c, op, l) -> Ast.Cmp_lit (c, op, abstract l)
    | Ast.In_list (c, ls) -> Ast.In_list (c, List.map abstract ls)
    | Ast.Exists s -> Ast.Exists (sel s)
    | Ast.In_subquery (c, s) -> Ast.In_subquery (c, sel s)
  and sel s =
    (* Traversal order matches the clause order of the statement: JOIN ON
       conditions first (FROM order), then WHERE.  Nothing else holds
       literals. *)
    let joins =
      List.map
        (fun j -> { j with Ast.j_on = List.map condition j.Ast.j_on })
        s.Ast.sel_joins
    in
    let where = List.map condition s.Ast.sel_where in
    { s with Ast.sel_joins = joins; sel_where = where }
  in
  let shape = sel select in
  { shape; params = List.rev !params; key = Ast.to_string shape }

let key_of select = (normalize select).key
