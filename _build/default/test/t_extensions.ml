(* Section 6.2 / 1.2 extensions: materialized views and the statement
   cache. *)

module O = Qopt_optimizer
module C = Qopt_catalog
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

(* A 3-table chain and a view over its first two tables. *)
let block = Helpers.chain 3

let view_block_01 =
  O.Query_block.make ~name:"v01"
    ~quantifiers:
      [
        O.Quantifier.make 0 (Helpers.table ~rows:1000.0 "t0");
        O.Quantifier.make 1 (Helpers.table ~rows:2000.0 "t1");
      ]
    ~preds:[ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ]
    ()

let view01 = O.Mat_view.define ~name:"v01" view_block_01

let mat_view_tests =
  [
    t "define rejects views with local predicates" (fun () ->
        let bad =
          O.Query_block.make ~name:"bad"
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:10.0 "t0") ]
            ~preds:[ O.Pred.Local_cmp (cr 0 "v", O.Pred.Eq, 1.0) ]
            ()
        in
        try
          ignore (O.Mat_view.define ~name:"bad" bad);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "define rejects grouped views" (fun () ->
        let bad =
          O.Query_block.make ~name:"bad" ~group_by:[ cr 0 "v" ]
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:10.0 "t0") ]
            ~preds:[] ()
        in
        try
          ignore (O.Mat_view.define ~name:"bad" bad);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "matches the exact entry" (fun () ->
        Alcotest.(check bool) "match {0,1}" true
          (O.Mat_view.matches view01 block (Helpers.set [ 0; 1 ])));
    t "does not match other entries" (fun () ->
        Alcotest.(check bool) "not {1,2}" false
          (O.Mat_view.matches view01 block (Helpers.set [ 1; 2 ]));
        Alcotest.(check bool) "not {0}" false
          (O.Mat_view.matches view01 block (Helpers.set [ 0 ]));
        Alcotest.(check bool) "not all" false
          (O.Mat_view.matches view01 block (Helpers.set [ 0; 1; 2 ])));
    t "predicate mismatch rejects the match" (fun () ->
        (* Same tables, but the view joins on j2 while the query joins j1. *)
        let view_j2 =
          O.Mat_view.define ~name:"vj2"
            (O.Query_block.make ~name:"vj2"
               ~quantifiers:
                 [
                   O.Quantifier.make 0 (Helpers.table ~rows:1000.0 "t0");
                   O.Quantifier.make 1 (Helpers.table ~rows:2000.0 "t1");
                 ]
               ~preds:[ O.Pred.Eq_join (cr 0 "j2", cr 1 "j2") ]
               ())
        in
        Alcotest.(check bool) "no match" false
          (O.Mat_view.matches view_j2 block (Helpers.set [ 0; 1 ])));
    t "optimizer counts tests and matches, inserts a substitute" (fun () ->
        let r =
          O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs
            ~views:[ view01 ] block
        in
        Alcotest.(check int) "tests = entries" r.O.Optimizer.entries r.O.Optimizer.mv_tests;
        Alcotest.(check int) "one match" 1 r.O.Optimizer.mv_matches;
        Alcotest.(check bool) "mv bucket timed" true
          (r.O.Optimizer.breakdown.O.Instrument.s_mv >= 0.0));
    t "a cheap view wins the plan" (fun () ->
        (* Make the materialized result tiny so its scan beats any join. *)
        let cheap = { view01 with O.Mat_view.mv_rows = 1.0; mv_width = 8.0 } in
        let r =
          O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs
            ~views:[ cheap ] block
        in
        match r.O.Optimizer.best with
        | Some p ->
          let uses_mv =
            Helpers.contains (Format.asprintf "%a" O.Plan.pp_compact p) "MV[v01]"
          in
          Alcotest.(check bool) "plan uses the view" true uses_mv
        | None -> Alcotest.fail "expected plan");
    t "estimator predicts the test count" (fun () ->
        let r =
          O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs
            ~views:[ view01 ] block
        in
        let e =
          Cote.Estimator.estimate ~knobs:Helpers.stable_knobs ~views:[ view01 ]
            O.Env.serial block
        in
        Alcotest.(check int) "tests" r.O.Optimizer.mv_tests e.Cote.Estimator.mv_tests);
    t "substitute cost scales with materialized size" (fun () ->
        let params = O.Cost_model.params O.Env.serial in
        let big = { view01 with O.Mat_view.mv_rows = 1e6 } in
        Alcotest.(check bool) "bigger costs more" true
          (O.Mat_view.substitute_cost params big
          > O.Mat_view.substitute_cost params view01));
  ]

let cache_tests =
  [
    t "miss then hit" (fun () ->
        let cache = Cote.Stmt_cache.create () in
        Alcotest.(check bool) "miss" true (Cote.Stmt_cache.lookup cache block = None);
        Cote.Stmt_cache.record cache block 0.42;
        Alcotest.(check bool) "hit" true
          (Cote.Stmt_cache.lookup cache block = Some 0.42);
        Alcotest.(check int) "hits" 1 (Cote.Stmt_cache.hits cache);
        Alcotest.(check int) "misses" 1 (Cote.Stmt_cache.misses cache));
    t "signatures abstract literal values" (fun () ->
        let q v =
          O.Query_block.make ~name:"s"
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:10.0 "t0") ]
            ~preds:[ O.Pred.Local_cmp (cr 0 "v", O.Pred.Eq, v) ]
            ()
        in
        Alcotest.(check string) "same signature"
          (Cote.Stmt_cache.signature (q 1.0))
          (Cote.Stmt_cache.signature (q 99.0)));
    t "signatures distinguish structure" (fun () ->
        Alcotest.(check bool) "chain3 <> chain4" true
          (Cote.Stmt_cache.signature (Helpers.chain 3)
          <> Cote.Stmt_cache.signature (Helpers.chain 4));
        Alcotest.(check bool) "extra pred differs" true
          (Cote.Stmt_cache.signature (Helpers.chain 3)
          <> Cote.Stmt_cache.signature (Helpers.chain ~extra:1 3));
        Alcotest.(check bool) "LIMIT differs" true
          (Cote.Stmt_cache.signature (Helpers.chain 3)
          <> Cote.Stmt_cache.signature
               { (Helpers.chain 3) with O.Query_block.first_n = Some 5 }));
    t "signatures include children" (fun () ->
        let child = Helpers.chain 2 in
        let parent c =
          O.Query_block.make ~name:"p" ~children:c
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:10.0 "t0") ]
            ~preds:[] ()
        in
        Alcotest.(check bool) "child changes signature" true
          (Cote.Stmt_cache.signature (parent [])
          <> Cote.Stmt_cache.signature (parent [ child ])));
    t "size counts distinct statements" (fun () ->
        let cache = Cote.Stmt_cache.create () in
        Cote.Stmt_cache.record cache (Helpers.chain 3) 0.1;
        Cote.Stmt_cache.record cache (Helpers.chain 3) 0.2;
        Cote.Stmt_cache.record cache (Helpers.chain 4) 0.3;
        Alcotest.(check int) "two" 2 (Cote.Stmt_cache.size cache));
  ]

let suite = mat_view_tests @ cache_tests
