(** Figure 2: compilation-time breakdown for a customer workload.

    The paper reports MGJN 37%, NLJN 34%, HSJN 5%, plan saving 16%, other
    8% on DB2 — i.e. >90% of compilation spent generating and saving join
    plans.  We reproduce the breakdown on the real2 stand-in workload. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Tablefmt = Qopt_util.Tablefmt

let run () =
  let env = Common.serial in
  let measured = Common.measure_workload env (Common.workload env "real2") in
  let total =
    List.fold_left
      (fun acc m -> O.Instrument.merge acc m.Common.m_real.O.Optimizer.breakdown)
      O.Instrument.zero measured
  in
  let pct x =
    if total.O.Instrument.s_total <= 0.0 then 0.0
    else x /. total.O.Instrument.s_total *. 100.0
  in
  let t =
    Tablefmt.create
      ~title:
        "fig2: compilation time breakdown, real2_s (paper: MGJN 37%, NLJN 34%, \
         HSJN 5%, plan saving 16%, other 8%)"
      [ ("category", Tablefmt.Left); ("share", Tablefmt.Right) ]
  in
  let join_gen_and_save =
    pct
      (total.O.Instrument.s_mgjn +. total.O.Instrument.s_nljn
     +. total.O.Instrument.s_hsjn +. total.O.Instrument.s_save)
  in
  Tablefmt.add_row t [ "MGJN plan generation"; Tablefmt.fpct (pct total.O.Instrument.s_mgjn) ];
  Tablefmt.add_row t [ "NLJN plan generation"; Tablefmt.fpct (pct total.O.Instrument.s_nljn) ];
  Tablefmt.add_row t [ "HSJN plan generation"; Tablefmt.fpct (pct total.O.Instrument.s_hsjn) ];
  Tablefmt.add_row t [ "plan saving (MEMO)"; Tablefmt.fpct (pct total.O.Instrument.s_save) ];
  Tablefmt.add_row t
    [
      "other (enum, card, scans, rest)";
      Tablefmt.fpct
        (pct
           (total.O.Instrument.s_card +. total.O.Instrument.s_scan
          +. total.O.Instrument.s_other));
    ];
  Tablefmt.add_sep t;
  Tablefmt.add_row t
    [ "join plan generation + saving"; Tablefmt.fpct join_gen_and_save ];
  Tablefmt.print t;
  Format.printf
    "paper shape check: join plan generation+saving should dominate (>80%%): \
     measured %.1f%%@.@."
    join_gen_and_save
