module O = Qopt_optimizer
module J = Qopt_util.Json
module Timer = Qopt_util.Timer
module Obs = Qopt_obs

type addr = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : addr;
  env : O.Env.t;
  model : Cote.Time_model.t;
  workers : int;
  mode : Sched.mode;
  admission : Admission.policy;
  levels : Cote.Multi_level.level list;
  downgrade_s : float option;
  default_deadline_s : float option;
  schemas : (string * Qopt_catalog.Schema.t) list;
  plan_cache : Cote.Plan_cache.config option;
  recalibrate : Cote.Recalibrate.config option;
  trust_hints : bool;
      (* admit on a request's [estimate_hint_s] instead of running a
         local COTE pass — for fleet backends behind a router that
         estimates once.  Only honored when no downgrade decision needs
         a local per-level prediction. *)
  budget : O.Budget.t;
      (* resource caps on every DP pass, estimate and compile alike: a
         giant join graph aborts with [Budget.Exceeded] instead of
         OOMing, and the compile is served by the greedy regime. *)
  greedy_model : Cote.Greedy_model.t;
      (* fitted time model for the spanning-tree fallback: its prediction
         competes with the DP prediction in regime selection. *)
  greedy_restarts : int;  (* randomized restarts per fallback compile *)
}

let default_config ~listen ~model ~schemas () =
  {
    listen;
    env = O.Env.serial;
    model;
    workers = 1;
    mode = Sched.Sjf;
    admission = Admission.unlimited;
    levels = Level.default_levels;
    downgrade_s = None;
    default_deadline_s = None;
    schemas;
    plan_cache = None;
    recalibrate = None;
    trust_hints = false;
    budget = O.Budget.unlimited;
    greedy_model = Cote.Greedy_model.default;
    greedy_restarts = 0;
  }

type stats = {
  st_requests : int;
  st_admitted : int;
  st_rejected : int;
  st_cancelled : int;
  st_compiles : int;
  st_estimates : int;
  st_errors : int;
  st_downgrades : int;
  st_plan_hits : int;
  st_refits : int;
  st_regime_dp : int;
  st_regime_greedy : int;
  st_regime_fallbacks : int;
  st_queue_depth : int;
  st_in_flight_s : float;
}

(* ------------------------------------------------------------------ *)
(* server.* metrics (no-ops unless Qopt_obs collection is on; run       *)
(* forces it on for the server's lifetime)                              *)
(* ------------------------------------------------------------------ *)

let m_requests = Obs.Registry.counter Obs.Registry.default "server.requests"

let m_admitted = Obs.Registry.counter Obs.Registry.default "server.admitted"

let m_rejected = Obs.Registry.counter Obs.Registry.default "server.rejected"

let m_cancelled = Obs.Registry.counter Obs.Registry.default "server.cancelled"

let m_compiles = Obs.Registry.counter Obs.Registry.default "server.compiles"

let m_estimates = Obs.Registry.counter Obs.Registry.default "server.estimates"

let m_errors = Obs.Registry.counter Obs.Registry.default "server.errors"

let m_downgrades = Obs.Registry.counter Obs.Registry.default "server.downgrades"

let m_queue_depth = Obs.Registry.gauge Obs.Registry.default "server.queue_depth"

let m_queue_wait = Obs.Registry.histogram Obs.Registry.default "server.queue_wait_s"

let m_latency = Obs.Registry.histogram Obs.Registry.default "server.latency_s"

let m_est_err =
  Obs.Registry.histogram Obs.Registry.default "server.estimate_err_pct"

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type job = {
  j_id : int;
  j_block : O.Query_block.t;
  j_knobs : O.Knobs.t;
  j_level : string;
  j_predicted_s : float;  (* cache-refined; drives admission + SJF *)
  j_model_s : float;  (* the pure model prediction; drives drift *)
  j_cache_hit : bool;
  j_regime : Cote.Regime.t;  (* which compile path the decision picked *)
  j_pc_key : string option;  (* plan-cache key to store the result under *)
  j_deadline : float option;  (* absolute, monotonic clock *)
  j_enqueued : float;  (* monotonic *)
  j_send : Proto.reply -> unit;
}

(* The reply fields a plan-cache hit must echo without recompiling. *)
type cached_meta = {
  pm_joins : int;
  pm_kept : int;
  pm_entries : int;
  pm_level : string;
  pm_regime : string;
}

type conn = {
  c_fd : Unix.file_descr;
  c_oc : out_channel;
  c_wlock : Mutex.t;
}

(* Pure event tallies live in lock-free atomics: a stat bump from a
   connection thread or a worker domain never touches [t.lock], which now
   guards only the coupled admission state (in_flight_s + the shutdown
   flag, which must be read-modified together under admission) and the
   connection list.  The lock is a contention-audited {!Qopt_obs.Lock}
   ([lock.server_state.*]) so its residual traffic stays measured. *)
type t = {
  cfg : config;
  sched : job Sched.t;
  cache : Cote.Stmt_cache.t;
  pcache : cached_meta Cote.Plan_cache.t option;
  recal : Cote.Recalibrate.t option;
  lock : Obs.Lock.t;
  mutable shutting : bool;
  mutable in_flight_s : float;
  mutable conns : (conn * Thread.t) list;
  n_requests : int Atomic.t;
  n_admitted : int Atomic.t;
  n_rejected : int Atomic.t;
  n_cancelled : int Atomic.t;
  n_compiles : int Atomic.t;
  n_estimates : int Atomic.t;
  n_errors : int Atomic.t;
  n_downgrades : int Atomic.t;
  n_plan_hits : int Atomic.t;
  n_regime_dp : int Atomic.t;
  n_regime_greedy : int Atomic.t;
  n_regime_fallbacks : int Atomic.t;
}

let snapshot t =
  let in_flight_s = Obs.Lock.with_lock t.lock (fun () -> t.in_flight_s) in
  {
    st_requests = Atomic.get t.n_requests;
    st_admitted = Atomic.get t.n_admitted;
    st_rejected = Atomic.get t.n_rejected;
    st_cancelled = Atomic.get t.n_cancelled;
    st_compiles = Atomic.get t.n_compiles;
    st_estimates = Atomic.get t.n_estimates;
    st_errors = Atomic.get t.n_errors;
    st_downgrades = Atomic.get t.n_downgrades;
    st_plan_hits = Atomic.get t.n_plan_hits;
    st_regime_dp = Atomic.get t.n_regime_dp;
    st_regime_greedy = Atomic.get t.n_regime_greedy;
    st_regime_fallbacks = Atomic.get t.n_regime_fallbacks;
    st_refits =
      (match t.recal with
      | None -> 0
      | Some r -> (Cote.Recalibrate.snapshot r).Cote.Recalibrate.sn_refits);
    st_queue_depth = Sched.length t.sched;
    st_in_flight_s = in_flight_s;
  }

let stats_json t =
  let s = snapshot t in
  J.Obj
    [
      ("requests", J.int s.st_requests);
      ("admitted", J.int s.st_admitted);
      ("rejected", J.int s.st_rejected);
      ("cancelled", J.int s.st_cancelled);
      ("compiles", J.int s.st_compiles);
      ("estimates", J.int s.st_estimates);
      ("errors", J.int s.st_errors);
      ("downgrades", J.int s.st_downgrades);
      ("plan_hits", J.int s.st_plan_hits);
      ("refits", J.int s.st_refits);
      ("regime_dp", J.int s.st_regime_dp);
      ("regime_greedy", J.int s.st_regime_greedy);
      ("regime_fallbacks", J.int s.st_regime_fallbacks);
      ("queue_depth", J.int s.st_queue_depth);
      ("in_flight_s", J.Num s.st_in_flight_s);
      ("mode", J.Str (Sched.mode_string (Sched.mode t.sched)));
      ("metrics", Obs.Registry.json_value Obs.Registry.default);
    ]

(* Sending a reply must survive a client that hung up: the job result is
   dropped but the worker, accounting and every other connection live on. *)
let send_reply conn reply =
  try
    Mutex.protect conn.c_wlock (fun () ->
        Wire.write conn.c_oc (J.to_string (Proto.reply_to_json reply)))
  with Sys_error _ | Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Request evaluation (connection threads)                             *)
(* ------------------------------------------------------------------ *)

(* Resolve a request's schema selection to the (name, schema) pair it
   denotes: the configured name is part of the plan-cache key, so an
   omitted selection must resolve to the default schema's real name, not
   a sentinel that could collide with an explicit one. *)
let resolve_schema t name =
  match name with
  | None -> (
    match t.cfg.schemas with
    | (n, s) :: _ -> (n, s)
    | [] -> failwith "server has no schemas configured")
  | Some n -> (
    match List.assoc_opt n t.cfg.schemas with
    | Some s -> (n, s)
    | None ->
      failwith
        (Printf.sprintf "unknown schema %S (known: %s)" n
           (String.concat ", " (List.map fst t.cfg.schemas))))

let schema_for t name = snd (resolve_schema t name)

type evaluation = {
  ev_block : O.Query_block.t;
  ev_choice : Level.chosen;
  ev_predicted_s : float;  (* cache-refined when a hit *)
  ev_model_s : float;  (* the model's own prediction, never cache-refined *)
  ev_cache_hit : bool;
}

(* The model serving predictions right now: the recalibrator's atomically
   swapped coefficients when enabled, the configured model otherwise. *)
let current_model t =
  match t.recal with
  | None -> t.cfg.model
  | Some r -> Cote.Recalibrate.model r

(* Pick a level and predict for an already-bound block.  The statement
   cache refines the predicted seconds (a recorded actual beats the model)
   while the COTE pass still supplies the plan-count fields of the reply.
   Cache refinement is keyed by the chosen level: an actual recorded for a
   downgraded compile says nothing about the full-level cost. *)
let evaluate_block t block =
  let model = current_model t in
  let choice =
    Level.select ~levels:t.cfg.levels ~downgrade_s:t.cfg.downgrade_s
      ~predict:(fun knobs ->
        Cote.Predict.compile_time ~budget:t.cfg.budget ~knobs ~model t.cfg.env
          block)
  in
  if choice.Level.downgrades > 0 then begin
    Obs.Counter.incr m_downgrades;
    ignore (Atomic.fetch_and_add t.n_downgrades choice.Level.downgrades)
  end;
  let cached =
    Cote.Stmt_cache.lookup t.cache
      ~tag:choice.Level.level.Cote.Multi_level.level_name block
  in
  {
    ev_block = block;
    ev_choice = choice;
    ev_predicted_s = Option.value ~default:choice.Level.predicted_s cached;
    ev_model_s = choice.Level.predicted_s;
    ev_cache_hit = cached <> None;
  }

let evaluate t ~id ~sql ~schema =
  let schema = schema_for t schema in
  let block =
    Qopt_sql.Binder.parse_and_bind ~name:(Printf.sprintf "q%d" id) schema sql
  in
  evaluate_block t block

let estimate_reply id ev =
  let e = ev.ev_choice.Level.prediction.Cote.Predict.estimate in
  Proto.R_estimate
    ( id,
      {
        Proto.e_predicted_s = ev.ev_predicted_s;
        e_level = ev.ev_choice.Level.level.Cote.Multi_level.level_name;
        e_cache_hit = ev.ev_cache_hit;
        e_joins = e.Cote.Estimator.joins;
        e_nljn = e.Cote.Estimator.nljn;
        e_mgjn = e.Cote.Estimator.mgjn;
        e_hsjn = e.Cote.Estimator.hsjn;
        e_entries = e.Cote.Estimator.entries;
        e_estimation_s = e.Cote.Estimator.elapsed;
      } )

(* ------------------------------------------------------------------ *)
(* Workers (spawned domains)                                           *)
(* ------------------------------------------------------------------ *)

let release t job =
  Obs.Lock.with_lock t.lock (fun () ->
      t.in_flight_s <- t.in_flight_s -. job.j_predicted_s)

let cancel_job t job reason =
  release t job;
  Obs.Counter.incr m_cancelled;
  Atomic.incr t.n_cancelled;
  job.j_send
    (Proto.R_cancelled
       {
         id = job.j_id;
         reason;
         estimate_us = job.j_predicted_s *. 1e6;
         queue_s = Timer.monotonic_now () -. job.j_enqueued;
       })

(* A compile served by the spanning-tree regime — chosen up front (Greedy)
   or as the mid-compile rescue of a DP pass that blew its budget
   (Dp_budget_fallback).  Actuals are recorded under the "greedy" statement
   -cache tag (whatever the admission level was, the measured work is
   greedy work) and never feed the recalibrator: its features are DP
   generated-plan counts, which a fallback compile does not have. *)
let run_fallback t job ~now ~interrupt regime =
  let fb =
    O.Optimizer.optimize_fallback t.cfg.env ~interrupt
      ~restarts:t.cfg.greedy_restarts job.j_block
  in
  release t job;
  Cote.Stmt_cache.record t.cache ~tag:"greedy" job.j_block
    fb.O.Optimizer.fb_elapsed;
  (match (t.pcache, job.j_pc_key, fb.O.Optimizer.fb_best) with
  | Some pc, Some key, Some plan ->
    Cote.Plan_cache.store pc ~key job.j_block ~plan
      {
        pm_joins = fb.O.Optimizer.fb_joins;
        pm_kept = 0;
        pm_entries = 0;
        pm_level = job.j_level;
        pm_regime = Cote.Regime.to_string regime;
      }
  | _ -> ());
  Obs.Counter.incr m_compiles;
  Obs.Histo.observe m_latency (Timer.monotonic_now () -. job.j_enqueued);
  if fb.O.Optimizer.fb_elapsed > 0.0 then
    Obs.Histo.observe m_est_err
      (Float.abs (job.j_model_s -. fb.O.Optimizer.fb_elapsed)
      /. fb.O.Optimizer.fb_elapsed *. 100.0);
  Atomic.incr t.n_compiles;
  job.j_send
    (Proto.R_compile
       ( job.j_id,
         {
           Proto.c_plan =
             Option.map
               (Format.asprintf "%a" O.Plan.pp_compact)
               fb.O.Optimizer.fb_best;
           c_cost =
             (match fb.O.Optimizer.fb_best with
             | Some p -> p.O.Plan.cost
             | None -> 0.0);
           c_card =
             (match fb.O.Optimizer.fb_best with
             | Some p -> p.O.Plan.card
             | None -> 0.0);
           c_joins = fb.O.Optimizer.fb_joins;
           c_kept = 0;
           c_entries = 0;
           c_elapsed_s = fb.O.Optimizer.fb_elapsed;
           c_predicted_s = job.j_predicted_s;
           c_level = job.j_level;
           c_queue_s = now -. job.j_enqueued;
           c_cache_hit = job.j_cache_hit;
           c_plan_cached = false;
           c_regime = Cote.Regime.to_string regime;
         } ))

let job_error t job e =
  release t job;
  Obs.Counter.incr m_errors;
  Atomic.incr t.n_errors;
  job.j_send (Proto.R_error { id = job.j_id; message = Printexc.to_string e })

let rec run_job t job =
  let now = Timer.monotonic_now () in
  Obs.Histo.observe m_queue_wait (now -. job.j_enqueued);
  Obs.Gauge.set m_queue_depth (float_of_int (Sched.length t.sched));
  match job.j_deadline with
  | Some d when now > d -> cancel_job t job "deadline"
  | deadline -> (
    let interrupt =
      match deadline with
      | None -> fun () -> false
      | Some d -> fun () -> Timer.monotonic_now () > d
    in
    match job.j_regime with
    | Cote.Regime.Greedy | Cote.Regime.Dp_budget_fallback -> (
      match run_fallback t job ~now ~interrupt job.j_regime with
      | () -> ()
      | exception O.Optimizer.Interrupted -> cancel_job t job "deadline"
      | exception e -> job_error t job e)
    | Cote.Regime.Dp -> run_dp t job ~now ~interrupt)

and run_dp t job ~now ~interrupt =
  match
    O.Optimizer.optimize t.cfg.env ~interrupt ~budget:t.cfg.budget
      ~knobs:job.j_knobs job.j_block
  with
    | r ->
      release t job;
      Cote.Stmt_cache.record t.cache ~tag:job.j_level job.j_block
        r.O.Optimizer.elapsed;
      (match t.recal with
      | None -> ()
      | Some recal ->
        (* Features are the *generated* plan counts (the quantities the
           coefficients price), the target is the measured wall clock, and
           the drift signal compares against the pure model prediction —
           a stmt-cache-refined estimate would hide exactly the drift the
           detector exists to catch. *)
        ignore
          (Cote.Recalibrate.observe recal ~level:job.j_level
             ~nljn:(float_of_int r.O.Optimizer.generated.O.Memo.nljn)
             ~mgjn:(float_of_int r.O.Optimizer.generated.O.Memo.mgjn)
             ~hsjn:(float_of_int r.O.Optimizer.generated.O.Memo.hsjn)
             ~joins:(float_of_int r.O.Optimizer.joins)
             ~predicted_s:job.j_model_s ~elapsed_s:r.O.Optimizer.elapsed ()));
      (match (t.pcache, job.j_pc_key, r.O.Optimizer.best) with
      | Some pc, Some key, Some plan ->
        Cote.Plan_cache.store pc ~key job.j_block ~plan
          {
            pm_joins = r.O.Optimizer.joins;
            pm_kept = r.O.Optimizer.kept;
            pm_entries = r.O.Optimizer.entries;
            pm_level = job.j_level;
            pm_regime = Cote.Regime.to_string Cote.Regime.Dp;
          }
      | _ -> ());
      Obs.Counter.incr m_compiles;
      Obs.Histo.observe m_latency (Timer.monotonic_now () -. job.j_enqueued);
      (* Model-vs-actual, not refined-vs-actual: the histogram is the
         drift evidence, so a stmt-cache hit must not flatter it. *)
      if r.O.Optimizer.elapsed > 0.0 then
        Obs.Histo.observe m_est_err
          (Float.abs (job.j_model_s -. r.O.Optimizer.elapsed)
          /. r.O.Optimizer.elapsed *. 100.0);
      Atomic.incr t.n_compiles;
      job.j_send
        (Proto.R_compile
           ( job.j_id,
             {
               Proto.c_plan =
                 Option.map
                   (Format.asprintf "%a" O.Plan.pp_compact)
                   r.O.Optimizer.best;
               c_cost =
                 (match r.O.Optimizer.best with
                 | Some p -> p.O.Plan.cost
                 | None -> 0.0);
               c_card =
                 (match r.O.Optimizer.best with
                 | Some p -> p.O.Plan.card
                 | None -> 0.0);
               c_joins = r.O.Optimizer.joins;
               c_kept = r.O.Optimizer.kept;
               c_entries = r.O.Optimizer.entries;
               c_elapsed_s = r.O.Optimizer.elapsed;
               c_predicted_s = job.j_predicted_s;
               c_level = job.j_level;
               c_queue_s = now -. job.j_enqueued;
               c_cache_hit = job.j_cache_hit;
               c_plan_cached = false;
               c_regime = Cote.Regime.to_string Cote.Regime.Dp;
             } ))
  | exception O.Optimizer.Interrupted -> cancel_job t job "deadline"
  | exception O.Budget.Exceeded _ -> (
    (* The estimate said DP fits, the MEMO said otherwise: rescue the
       compile with the polynomial regime instead of failing it. *)
    Cote.Regime.record_fallback ();
    Atomic.incr t.n_regime_fallbacks;
    match run_fallback t job ~now ~interrupt Cote.Regime.Dp_budget_fallback with
    | () -> ()
    | exception O.Optimizer.Interrupted -> cancel_job t job "deadline"
    | exception e -> job_error t job e)
  | exception e -> job_error t job e

let worker_main t slot () =
  (* Claim a distinct obs shard slot (the Qopt_par.Pool contract) so
     compile metrics recorded here never race the connection threads on
     slot 0 or the other workers. *)
  Obs.Shard.set_slot slot;
  let rec loop () =
    match Sched.pop t.sched with
    | None -> ()
    | Some job ->
      run_job t job;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection handling (threads on the main domain)                    *)
(* ------------------------------------------------------------------ *)

(* [in_flight_s] is the estimated in-flight seconds snapshotted inside
   the same critical section that made the rejection decision — the
   retry-after hint must describe the state the client was rejected
   against, not a later reading. *)
let reject t conn req_id ~estimate_s ~in_flight_s reason =
  Obs.Counter.incr m_rejected;
  Atomic.incr t.n_rejected;
  send_reply conn
    (Proto.R_rejected
       {
         id = req_id;
         reason = Admission.reason_string reason;
         estimate_us = estimate_s *. 1e6;
         retry_after_us =
           Option.map
             (fun s -> s *. 1e6)
             (Admission.retry_after_s reason ~in_flight_s);
       })

(* A plan-cache hit bypasses optimization entirely: no COTE pass, no
   worker, no statement-cache traffic.  Admission still runs — with a ~0
   estimate, so hits pass ceilings that reject cold compiles — and the
   reply echoes the stored plan and counters verbatim. *)
let serve_plan_hit t conn req_id ~arrival plan (meta : cached_meta) =
  let decision =
    (* Sched.length is lock-free, so this critical section is just the
       shutdown flag, the in-flight float and the ceiling arithmetic.  A
       rejection carries the in-flight snapshot out for the retry hint. *)
    Obs.Lock.with_lock t.lock (fun () ->
        if t.shutting then Error (Admission.Shutting_down, t.in_flight_s)
        else
          match
            Admission.decide t.cfg.admission ~in_flight_s:t.in_flight_s
              ~queued:(Sched.length t.sched) ~estimate_s:0.0
          with
          | Error r -> Error (r, t.in_flight_s)
          | Ok () -> Ok ())
  in
  (match decision with
  | Ok () ->
    Atomic.incr t.n_admitted;
    Atomic.incr t.n_plan_hits
  | Error _ -> ());
  match decision with
  | Error (reason, in_flight_s) ->
    reject t conn req_id ~estimate_s:0.0 ~in_flight_s reason
  | Ok () ->
    Obs.Counter.incr m_admitted;
    Obs.Histo.observe m_latency (Timer.monotonic_now () -. arrival);
    send_reply conn
      (Proto.R_compile
         ( req_id,
           {
             Proto.c_plan = Some (Format.asprintf "%a" O.Plan.pp_compact plan);
             c_cost = plan.O.Plan.cost;
             c_card = plan.O.Plan.card;
             c_joins = meta.pm_joins;
             c_kept = meta.pm_kept;
             c_entries = meta.pm_entries;
             c_elapsed_s = 0.0;
             c_predicted_s = 0.0;
             c_level = meta.pm_level;
             c_queue_s = 0.0;
             (* [c_cache_hit] everywhere else means "Stmt_cache refined
                the predicted seconds"; the statement cache is never
                consulted on this path, so report false — [c_plan_cached]
                is the hit signal. *)
             c_cache_hit = false;
             c_plan_cached = true;
             c_regime = meta.pm_regime;
           } ))

(* The greedy regime's prediction needs nothing but the join graph: both
   features are summed over all blocks, matching what
   [Optimizer.optimize_fallback] will report. *)
let greedy_predicted t block =
  let quantifiers = ref 0 and edges = ref 0 in
  O.Query_block.iter_blocks
    (fun b ->
      quantifiers := !quantifiers + O.Query_block.n_quantifiers b;
      edges := !edges + O.Spanning_tree.edge_count b)
    block;
  Cote.Greedy_model.predict t.cfg.greedy_model ~quantifiers:!quantifiers
    ~edges:!edges ~restarts:t.cfg.greedy_restarts

let compile_cold t conn req_id ~arrival ~pc_key ~estimate_hint_s block
    deadline_ms =
  let deadline_s =
    match deadline_ms with
    | Some ms -> Some (ms /. 1000.0)
    | None -> t.cfg.default_deadline_s
  in
  (* The DP side of the regime decision.  The estimate pass runs under the
     same budget as the compile, so on a giant graph it aborts (cheaply)
     instead of exploding — [None] here means DP is infeasible outright. *)
  let dp_choice =
    match estimate_hint_s with
    | Some hint when t.cfg.trust_hints && t.cfg.downgrade_s = None ->
      (* The router already ran the COTE pass — once, refined against its
         own statement cache — and with no downgrade decision to make
         there is nothing a local per-level prediction would add, so
         admit on the hint and skip the estimation cost entirely.  The
         hint stands in for the model prediction too: router and backend
         serve the same model family. *)
      let level = List.hd t.cfg.levels in
      Some
        ( level.Cote.Multi_level.level_knobs,
          level.Cote.Multi_level.level_name,
          hint,
          hint,
          false )
    | Some _ | None -> (
      match evaluate_block t block with
      | ev ->
        Some
          ( ev.ev_choice.Level.level.Cote.Multi_level.level_knobs,
            ev.ev_choice.Level.level.Cote.Multi_level.level_name,
            ev.ev_predicted_s,
            ev.ev_model_s,
            ev.ev_cache_hit )
      | exception O.Budget.Exceeded _ -> None)
  in
  let greedy_s = greedy_predicted t block in
  let decision =
    Cote.Regime.decide ?deadline_s
      ~dp_s:(Option.map (fun (_, _, p, _, _) -> p) dp_choice)
      ~greedy_s ()
  in
  Cote.Regime.record decision;
  let knobs, level_name, predicted_s, model_s, cache_hit, regime =
    match (decision.Cote.Regime.d_regime, dp_choice) with
    | Cote.Regime.Dp, Some (k, n, p, m, c) ->
      Atomic.incr t.n_regime_dp;
      (k, n, p, m, c, Cote.Regime.Dp)
    | _ ->
      (* Greedy admission gets the same statement-cache refinement as DP,
         keyed under its own tag: a recorded greedy actual beats the
         greedy model. *)
      Atomic.incr t.n_regime_greedy;
      let cached = Cote.Stmt_cache.lookup t.cache ~tag:"greedy" block in
      ( O.Knobs.default,
        "greedy",
        Option.value ~default:greedy_s cached,
        greedy_s,
        cached <> None,
        Cote.Regime.Greedy )
  in
  let decision =
    Obs.Lock.with_lock t.lock (fun () ->
        if t.shutting then Error (Admission.Shutting_down, t.in_flight_s)
        else
          match
            Admission.decide t.cfg.admission ~in_flight_s:t.in_flight_s
              ~queued:(Sched.length t.sched) ~estimate_s:predicted_s
          with
          | Error r -> Error (r, t.in_flight_s)
          | Ok () ->
            (* The reservation must land inside the same critical section
               as the decision; the pure admitted tally need not. *)
            t.in_flight_s <- t.in_flight_s +. predicted_s;
            Ok ())
  in
  (match decision with
  | Ok () -> Atomic.incr t.n_admitted
  | Error _ -> ());
  match decision with
  | Error (reason, in_flight_s) ->
    reject t conn req_id ~estimate_s:predicted_s ~in_flight_s reason
  | Ok () ->
    Obs.Counter.incr m_admitted;
    let job =
      {
        j_id = req_id;
        j_block = block;
        j_knobs = knobs;
        j_level = level_name;
        j_predicted_s = predicted_s;
        j_model_s = model_s;
        j_cache_hit = cache_hit;
        j_regime = regime;
        j_pc_key = pc_key;
        j_deadline = Option.map (fun d -> arrival +. d) deadline_s;
        j_enqueued = Timer.monotonic_now ();
        j_send = send_reply conn;
      }
    in
    if Sched.push t.sched ~priority:job.j_predicted_s job then
      Obs.Gauge.set m_queue_depth (float_of_int (Sched.length t.sched))
    else
      (* The scheduler closed between the admission decision and the push:
         shutdown won the race, so account and answer like a rejection. *)
      cancel_job t job "shutdown"

let handle_compile t conn req_id sql schema deadline_ms estimate_hint_s =
  let arrival = Timer.monotonic_now () in
  let schema_name, schema = resolve_schema t schema in
  let ast = Qopt_sql.Parser.parse sql in
  let bind () =
    Qopt_sql.Binder.bind ~name:(Printf.sprintf "q%d" req_id) schema ast
  in
  match t.pcache with
  | None ->
    compile_cold t conn req_id ~arrival ~pc_key:None ~estimate_hint_s (bind ())
      deadline_ms
  | Some pc -> (
    (* Key on the resolved schema name plus the parameter-abstracted
       template text, not the block signature: the template separates
       string- from numeric-literal statements and costs one AST walk, no
       optimizer structures, and the schema prefix keeps identical SQL
       against same-named tables in different schemas from sharing an
       entry — envelope/generation revalidation cannot tell such twins
       apart.  (Dependent table names inside the cache stay unqualified:
       a stats bump for one schema's table then flushes its same-named
       twins too, which is conservative, never stale.) *)
    let key = schema_name ^ "|" ^ Qopt_sql.Template.key_of ast in
    let block = bind () in
    match Cote.Plan_cache.lookup pc ~key block with
    | Cote.Plan_cache.Hit { plan; payload } ->
      serve_plan_hit t conn req_id ~arrival plan payload
    | Cote.Plan_cache.Miss | Cote.Plan_cache.Invalidated _ ->
      compile_cold t conn req_id ~arrival ~pc_key:(Some key) ~estimate_hint_s
        block deadline_ms)

let initiate_shutdown t =
  let first =
    Obs.Lock.with_lock t.lock (fun () ->
        if t.shutting then false
        else begin
          t.shutting <- true;
          true
        end)
  in
  if first then begin
    (* Cancel everything still queued, then close: workers finish their
       running compile, see the closed empty queue, and exit. *)
    let leftovers = Sched.drain t.sched in
    Sched.close t.sched;
    List.iter (fun job -> cancel_job t job "shutdown") leftovers
  end

let handle_request t conn req =
  Atomic.incr t.n_requests;
  Obs.Counter.incr m_requests;
  match req with
  | Proto.Estimate { id; sql; schema } -> (
    match evaluate t ~id ~sql ~schema with
    | ev ->
      Obs.Counter.incr m_estimates;
      Atomic.incr t.n_estimates;
      send_reply conn (estimate_reply id ev)
    | exception O.Budget.Exceeded b ->
      Atomic.incr t.n_errors;
      Obs.Counter.incr m_errors;
      send_reply conn
        (Proto.R_error
           { id; message = Format.asprintf "%a" O.Budget.pp_blown b })
    | exception
        ( Failure msg
        | Qopt_sql.Parser.Error msg
        | Qopt_sql.Binder.Error msg
        | Invalid_argument msg ) ->
      Atomic.incr t.n_errors;
      Obs.Counter.incr m_errors;
      send_reply conn (Proto.R_error { id; message = msg })
    | exception Qopt_sql.Lexer.Error (msg, at) ->
      Atomic.incr t.n_errors;
      Obs.Counter.incr m_errors;
      send_reply conn
        (Proto.R_error { id; message = Printf.sprintf "%s (at byte %d)" msg at }))
  | Proto.Compile { id; sql; schema; deadline_ms; estimate_hint_s } -> (
    match handle_compile t conn id sql schema deadline_ms estimate_hint_s with
    | () -> ()
    | exception
        ( Failure msg
        | Qopt_sql.Parser.Error msg
        | Qopt_sql.Binder.Error msg
        | Invalid_argument msg ) ->
      Atomic.incr t.n_errors;
      Obs.Counter.incr m_errors;
      send_reply conn (Proto.R_error { id; message = msg })
    | exception Qopt_sql.Lexer.Error (msg, at) ->
      Atomic.incr t.n_errors;
      Obs.Counter.incr m_errors;
      send_reply conn
        (Proto.R_error { id; message = Printf.sprintf "%s (at byte %d)" msg at }))
  | Proto.Stats { id } -> send_reply conn (Proto.R_stats (id, stats_json t))
  | Proto.Shutdown { id } ->
    send_reply conn (Proto.R_ok id);
    initiate_shutdown t

let conn_main t conn ic () =
  let rec loop () =
    match Wire.read ic with
    | None -> ()
    | Some payload ->
      (match J.parse payload with
      | Error msg -> send_reply conn (Proto.R_error { id = 0; message = msg })
      | Ok doc -> (
        match Proto.request_of_json doc with
        | Error msg -> send_reply conn (Proto.R_error { id = 0; message = msg })
        | Ok req -> handle_request t conn req));
      loop ()
  in
  (try loop () with
  | Wire.Framing_error msg ->
    send_reply conn (Proto.R_error { id = 0; message = msg })
  | Sys_error _ | Unix.Unix_error _ | End_of_file -> ());
  (* Closing the out_channel closes the underlying fd (kept single-owner:
     the in_channel shares the fd, so only the fd must not double-close). *)
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)
(* ------------------------------------------------------------------ *)

let bind_listen addr =
  match addr with
  | `Unix path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let run ?(on_ready = fun () -> ()) cfg =
  (* A client hanging up mid-reply must be an EPIPE error, not a fatal
     signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let workers = max 1 (min cfg.workers (Obs.Shard.max_slots - 1)) in
  let t =
    {
      cfg;
      sched = Sched.create cfg.mode;
      cache = Cote.Stmt_cache.create ~shared:true ();
      pcache =
        Option.map
          (fun config -> Cote.Plan_cache.create ~shared:true ~config ())
          cfg.plan_cache;
      recal =
        Option.map
          (fun config -> Cote.Recalibrate.create ~config ~model:cfg.model ())
          cfg.recalibrate;
      lock = Obs.Lock.create "server_state";
      shutting = false;
      in_flight_s = 0.0;
      conns = [];
      n_requests = Atomic.make 0;
      n_admitted = Atomic.make 0;
      n_rejected = Atomic.make 0;
      n_cancelled = Atomic.make 0;
      n_compiles = Atomic.make 0;
      n_estimates = Atomic.make 0;
      n_errors = Atomic.make 0;
      n_downgrades = Atomic.make 0;
      n_plan_hits = Atomic.make 0;
      n_regime_dp = Atomic.make 0;
      n_regime_greedy = Atomic.make 0;
      n_regime_fallbacks = Atomic.make 0;
    }
  in
  let obs_was = !Obs.Control.on in
  Obs.Control.set_enabled true;
  let listen_fd = bind_listen cfg.listen in
  let domains =
    Array.init workers (fun i -> Domain.spawn (worker_main t (i + 1)))
  in
  on_ready ();
  (* Accept with a poll timeout so a shutdown request (handled on a
     connection thread) stops the loop within one tick — closing a
     listening fd does not reliably wake a blocked accept. *)
  let rec accept_loop () =
    if Obs.Lock.with_lock t.lock (fun () -> t.shutting) then ()
    else begin
      (match Unix.select [ listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | fd, _ ->
          let conn =
            {
              c_fd = fd;
              c_oc = Unix.out_channel_of_descr fd;
              c_wlock = Mutex.create ();
            }
          in
          let ic = Unix.in_channel_of_descr fd in
          let thread = Thread.create (conn_main t conn ic) () in
          Obs.Lock.with_lock t.lock (fun () ->
              t.conns <- (conn, thread) :: t.conns)
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match cfg.listen with
      | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | `Tcp _ -> ());
      (* The queue is already drained and closed (shutdown) — or must be
         closed now if run is unwinding on an exception. *)
      initiate_shutdown t;
      Array.iter Domain.join domains;
      (* Wake connection threads blocked mid-read, then join them. *)
      let conns = Obs.Lock.with_lock t.lock (fun () -> t.conns) in
      List.iter
        (fun (conn, _) ->
          try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        conns;
      List.iter (fun (_, thread) -> Thread.join thread) conns;
      Obs.Control.set_enabled obs_was)
    accept_loop
