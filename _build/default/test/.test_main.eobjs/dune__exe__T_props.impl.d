test/t_props.ml: Alcotest Helpers List Qopt_catalog Qopt_optimizer Qopt_util
