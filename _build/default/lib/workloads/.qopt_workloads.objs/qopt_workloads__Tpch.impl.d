lib/workloads/tpch.ml: Float List Qopt_catalog Qopt_optimizer Qopt_sql Workload
