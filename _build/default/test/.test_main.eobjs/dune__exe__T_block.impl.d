test/t_block.ml: Alcotest Format Helpers List Qopt_catalog Qopt_optimizer Qopt_util
