(* Cardinality estimation (full & simple) and the cost model. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

let near msg expected tolerance actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.4f ~ %.4f" msg actual expected)
    true
    (Float.abs (actual -. expected) <= tolerance)

let chain3 = Helpers.chain 3

let card_tests =
  [
    t "singleton base cardinality" (fun () ->
        near "t0 rows" 1000.0 1.0
          (O.Cardinality.of_set O.Cardinality.Full chain3 (Helpers.set [ 0 ])));
    t "local equality reduces cardinality" (fun () ->
        let b =
          O.Query_block.make ~name:"loc"
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:1000.0 "x") ]
            ~preds:[ O.Pred.Local_cmp (cr 0 "j2", O.Pred.Eq, 50.0) ]
            ()
        in
        (* j2 has 100 distinct values. *)
        near "full" 10.0 1.0 (O.Cardinality.of_set O.Cardinality.Full b (Helpers.set [ 0 ]));
        near "simple" 10.0 1.0 (O.Cardinality.of_set O.Cardinality.Simple b (Helpers.set [ 0 ])));
    t "fk-pk style join keeps cardinality near the fact side" (fun () ->
        (* t0 (1000 rows) joins t1 (2000 rows) on j1 (key-like). *)
        let card = O.Cardinality.of_set O.Cardinality.Full chain3 (Helpers.set [ 0; 1 ]) in
        Alcotest.(check bool) "bounded" true (card >= 500.0 && card <= 2100.0));
    t "join predicate only applies when both sides present" (fun () ->
        let pair = O.Cardinality.of_set O.Cardinality.Full chain3 (Helpers.set [ 0; 2 ]) in
        near "cross product" (1000.0 *. 3000.0) 1.0 pair);
    t "range selectivity differs across modes" (fun () ->
        let b =
          O.Query_block.make ~name:"rng"
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:1000.0 "x") ]
            ~preds:[ O.Pred.Local_cmp (cr 0 "j2", O.Pred.Le, 90.0) ]
            ()
        in
        let full = O.Cardinality.of_set O.Cardinality.Full b (Helpers.set [ 0 ]) in
        let simple = O.Cardinality.of_set O.Cardinality.Simple b (Helpers.set [ 0 ]) in
        near "full interpolates" 900.0 50.0 full;
        near "simple default" 450.0 1.0 simple);
    t "correlation back-off: second predicate contributes sqrt" (fun () ->
        let one = Helpers.chain ~extra:0 2 and two = Helpers.chain ~extra:1 2 in
        let c1 = O.Cardinality.of_set O.Cardinality.Full one (Helpers.set [ 0; 1 ]) in
        let c2 = O.Cardinality.of_set O.Cardinality.Full two (Helpers.set [ 0; 1 ]) in
        (* Second pred on j2 (100 distinct) must shrink the result by ~10x
           (sqrt back-off), not 100x (independence). *)
        Alcotest.(check bool) "shrinks" true (c2 < c1);
        Alcotest.(check bool) "not independent" true (c2 > c1 /. 50.0));
    t "expensive predicate selectivity applied" (fun () ->
        let b =
          O.Query_block.make ~name:"exp"
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:1000.0 "x") ]
            ~preds:[ O.Pred.Expensive (Helpers.set [ 0 ], 0.25, 0.1) ]
            ()
        in
        near "quarter" 250.0 1.0 (O.Cardinality.of_set O.Cardinality.Full b (Helpers.set [ 0 ])));
    t "cardinality always positive" (fun () ->
        Alcotest.(check bool) "positive" true
          (O.Cardinality.of_set O.Cardinality.Simple chain3 (O.Query_block.all_tables chain3) > 0.0));
  ]

let params = O.Cost_model.params O.Env.serial

let pparams = O.Cost_model.params (O.Env.parallel ~nodes:4)

let scan_plan ?(cost = 100.0) ?(card = 1000.0) q =
  {
    O.Plan.op = O.Plan.Seq_scan q;
    tables = Bitset.singleton q;
    order = [];
    partition = None;
    card;
    cost;
  }

let ctx_of preds ~inner_card = O.Cost_model.join_context params chain3 ~preds ~inner_card

let cost_tests =
  [
    t "seq scan grows with rows" (fun () ->
        let small = O.Cost_model.seq_scan params (Helpers.table ~rows:1000.0 "s") in
        let big = O.Cost_model.seq_scan params (Helpers.table ~rows:100000.0 "b") in
        Alcotest.(check bool) "monotone" true (big > small));
    t "parallel divides scan cost" (fun () ->
        let table = Helpers.table ~rows:100000.0 "p" in
        Alcotest.(check bool) "cheaper per node" true
          (O.Cost_model.seq_scan pparams table < O.Cost_model.seq_scan params table));
    t "index scan cheap when selective" (fun () ->
        let table = Helpers.table ~rows:100000.0 "i" in
        Alcotest.(check bool) "selective probe wins" true
          (O.Cost_model.index_scan params table ~sel:0.0001
          < O.Cost_model.seq_scan params table));
    t "sort grows superlinearly" (fun () ->
        let s1 = O.Cost_model.sort params ~rows:10_000.0 ~width:64.0 in
        let s2 = O.Cost_model.sort params ~rows:100_000.0 ~width:64.0 in
        Alcotest.(check bool) "10x rows > 10x cost" true (s2 > s1 *. 10.0));
    t "join costs exceed input costs" (fun () ->
        let outer = scan_plan 0 and inner = scan_plan 1 in
        let preds = [ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ] in
        let ctx = ctx_of preds ~inner_card:1000.0 in
        List.iter
          (fun cost ->
            Alcotest.(check bool) "cost > inputs" true (cost > outer.O.Plan.cost +. inner.O.Plan.cost))
          [
            O.Cost_model.nljn params chain3 ~ctx ~probe:None ~outer ~inner ~out_card:1000.0 ();
            O.Cost_model.mgjn params chain3 ~ctx ~outer ~inner ~out_card:1000.0
              ~sort_outer:true ~sort_inner:true ();
            O.Cost_model.hsjn params chain3 ~ctx ~outer ~inner ~out_card:1000.0 ();
          ]);
    t "mgjn sort enforcement costs more" (fun () ->
        let outer = scan_plan ~card:50_000.0 0 and inner = scan_plan ~card:50_000.0 1 in
        let preds = [ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ] in
        let ctx = ctx_of preds ~inner_card:50_000.0 in
        let sorted =
          O.Cost_model.mgjn params chain3 ~ctx ~outer ~inner ~out_card:1000.0
            ~sort_outer:false ~sort_inner:false ()
        in
        let enforced =
          O.Cost_model.mgjn params chain3 ~ctx ~outer ~inner ~out_card:1000.0
            ~sort_outer:true ~sort_inner:true ()
        in
        Alcotest.(check bool) "enforced > natural" true (enforced > sorted));
    t "index probe beats rescan for big outers" (fun () ->
        let outer = scan_plan ~card:1_000_000.0 ~cost:10_000.0 0 in
        let inner = scan_plan ~card:500_000.0 ~cost:50_000.0 1 in
        let preds = [ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ] in
        let ctx = ctx_of preds ~inner_card:500_000.0 in
        let without =
          O.Cost_model.nljn params chain3 ~ctx ~probe:None ~outer ~inner ~out_card:1000.0 ()
        in
        let with_probe =
          O.Cost_model.nljn params chain3 ~ctx ~probe:(Some 0.01) ~outer ~inner
            ~out_card:1000.0 ()
        in
        Alcotest.(check bool) "probe path cheaper or equal" true (with_probe <= without));
    t "inner_probe_cost requires single inner with matching index" (fun () ->
        let table =
          Helpers.table ~rows:1000.0
            ~indexes:[ Qopt_catalog.Index.make ~name:"ij" [ "j1" ] ]
            "probe"
        in
        let b =
          O.Query_block.make ~name:"probe"
            ~quantifiers:
              [ O.Quantifier.make 0 (Helpers.table ~rows:1000.0 "o"); O.Quantifier.make 1 table ]
            ~preds:[ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ]
            ()
        in
        let preds = b.O.Query_block.preds in
        Alcotest.(check bool) "available" true
          (O.Cost_model.inner_probe_cost params b ~preds ~inner_tables:(Helpers.set [ 1 ]) <> None);
        Alcotest.(check bool) "composite inner: none" true
          (O.Cost_model.inner_probe_cost params b ~preds ~inner_tables:(Helpers.set [ 0; 1 ]) = None);
        (* Quantifier 0's table has no index on j1. *)
        Alcotest.(check bool) "no index: none" true
          (O.Cost_model.inner_probe_cost params b ~preds ~inner_tables:(Helpers.set [ 0 ]) = None));
    t "repartition cheaper than broadcast" (fun () ->
        Alcotest.(check bool) "broadcast multiplies" true
          (O.Cost_model.repartition pparams ~rows:10_000.0 ~width:64.0
          < O.Cost_model.broadcast pparams ~rows:10_000.0 ~width:64.0));
    t "skew factor 1 in serial" (fun () ->
        let preds = [ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ] in
        let ctx = ctx_of preds ~inner_card:1000.0 in
        Alcotest.(check (float 0.0)) "serial skew" 1.0 ctx.O.Cost_model.skew);
    t "row_width sums tables" (fun () ->
        let w1 = O.Cost_model.row_width chain3 (Helpers.set [ 0 ]) in
        let w2 = O.Cost_model.row_width chain3 (Helpers.set [ 0; 1 ]) in
        Alcotest.(check bool) "wider" true (w2 > w1));
  ]

let plan_tests =
  [
    t "plan tree accessors" (fun () ->
        let s0 = scan_plan 0 and s1 = scan_plan 1 and s2 = scan_plan 2 in
        let j1 =
          {
            O.Plan.op = O.Plan.Join (O.Join_method.HSJN, s0, s1, []);
            tables = Helpers.set [ 0; 1 ];
            order = [];
            partition = None;
            card = 10.0;
            cost = 1.0;
          }
        in
        let top =
          {
            O.Plan.op = O.Plan.Join (O.Join_method.MGJN, j1, s2, []);
            tables = Helpers.set [ 0; 1; 2 ];
            order = [];
            partition = None;
            card = 10.0;
            cost = 2.0;
          }
        in
        Alcotest.(check int) "nodes" 5 (O.Plan.n_nodes top);
        Alcotest.(check int) "depth" 3 (O.Plan.depth top);
        Alcotest.(check int) "joins" 2 (O.Plan.join_count top);
        Alcotest.(check (list int)) "leaves" [ 0; 1; 2 ] (O.Plan.leaves top);
        Alcotest.(check int) "method counts" 2 (List.length (O.Plan.method_counts top));
        Alcotest.(check string) "compact" "MGJN(HSJN(Q0,Q1),Q2)"
          (Format.asprintf "%a" O.Plan.pp_compact top));
  ]

let suite = card_tests @ cost_tests @ plan_tests
