lib/core/memory_model.mli: Qopt_optimizer
