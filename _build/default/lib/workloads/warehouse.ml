module C = Qopt_catalog
module Sql = Qopt_sql

let col ~rows ?distinct ?skewed ?lo ?hi name =
  C.Column.make ~rows ?distinct ?skewed ?lo ?hi name

let table ~rows ~name ?partition ?(indexes = []) ~pk cols =
  C.Table.make ~rows ~name ~primary_key:[ pk ]
    ~indexes:
      (C.Index.make ~unique:true ~clustered:true ~name:(name ^ "_pk") [ pk ]
      :: indexes)
    ?partition cols

let schema ~partitioned =
  let part keys = if partitioned then Some (C.Partition_spec.hash keys) else None in
  let date_dim =
    let rows = 73_049.0 in
    table ~rows ~name:"date_dim" ~pk:"d_date_sk" ?partition:(part [ "d_date_sk" ])
      [
        col ~rows "d_date_sk";
        col ~rows ~distinct:200.0 ~lo:1900.0 ~hi:2100.0 "d_year";
        col ~rows ~distinct:12.0 ~lo:1.0 ~hi:13.0 "d_moy";
        col ~rows ~distinct:31.0 ~lo:1.0 ~hi:32.0 "d_dom";
        col ~rows ~distinct:4.0 ~lo:1.0 ~hi:5.0 "d_qoy";
        col ~rows ~distinct:2400.0 "d_month_seq";
      ]
  in
  let time_dim =
    let rows = 86_400.0 in
    table ~rows ~name:"time_dim" ~pk:"t_time_sk" ?partition:(part [ "t_time_sk" ])
      [
        col ~rows "t_time_sk";
        col ~rows ~distinct:24.0 "t_hour";
        col ~rows ~distinct:60.0 "t_minute";
      ]
  in
  let store =
    let rows = 1_002.0 in
    (* Deliberately partitioned on a non-join column: its partition value is
       never interesting, one of the paper's underestimation sources. *)
    table ~rows ~name:"store" ~pk:"s_store_sk" ?partition:(part [ "s_state" ])
      [
        col ~rows "s_store_sk";
        col ~rows ~distinct:1002.0 "s_store_name";
        col ~rows ~distinct:300.0 "s_city";
        col ~rows ~distinct:50.0 "s_state";
        col ~rows ~distinct:10.0 "s_market_id";
      ]
  in
  let item =
    let rows = 204_000.0 in
    table ~rows ~name:"item" ~pk:"i_item_sk" ?partition:(part [ "i_item_sk" ])
      ~indexes:[ C.Index.make ~name:"item_cat" [ "i_category_id"; "i_item_sk" ] ]
      [
        col ~rows "i_item_sk";
        col ~rows ~distinct:1000.0 "i_brand_id";
        col ~rows ~distinct:100.0 "i_class_id";
        col ~rows ~distinct:20.0 "i_category_id";
        col ~rows ~distinct:2000.0 "i_manufact_id";
        col ~rows ~distinct:5000.0 ~skewed:true ~lo:1.0 ~hi:301.0 "i_current_price";
      ]
  in
  let customer =
    let rows = 1_900_000.0 in
    table ~rows ~name:"customer" ~pk:"c_customer_sk"
      ?partition:(part [ "c_customer_sk" ])
      [
        col ~rows "c_customer_sk";
        col ~rows ~distinct:950_000.0 "c_current_addr_sk";
        col ~rows ~distinct:1_920_800.0 "c_current_cdemo_sk";
        col ~rows ~distinct:7_200.0 "c_current_hdemo_sk";
        col ~rows ~distinct:100.0 ~lo:1900.0 ~hi:2000.0 "c_birth_year";
      ]
  in
  let customer_address =
    let rows = 950_000.0 in
    table ~rows ~name:"customer_address" ~pk:"ca_address_sk"
      ?partition:(part [ "ca_address_sk" ])
      [
        col ~rows "ca_address_sk";
        col ~rows ~distinct:8000.0 "ca_city";
        col ~rows ~distinct:55.0 "ca_state";
        col ~rows ~distinct:10_000.0 "ca_zip";
      ]
  in
  let customer_demographics =
    let rows = 1_920_800.0 in
    table ~rows ~name:"customer_demographics" ~pk:"cd_demo_sk"
      ?partition:(part [ "cd_demo_sk" ])
      [
        col ~rows "cd_demo_sk";
        col ~rows ~distinct:2.0 "cd_gender";
        col ~rows ~distinct:7.0 "cd_education";
        col ~rows ~distinct:5.0 "cd_marital_status";
      ]
  in
  let household_demographics =
    let rows = 7_200.0 in
    table ~rows ~name:"household_demographics" ~pk:"hd_demo_sk"
      ?partition:(part [ "hd_demo_sk" ])
      [
        col ~rows "hd_demo_sk";
        col ~rows ~distinct:20.0 "hd_income_band_sk";
        col ~rows ~distinct:6.0 "hd_buy_potential";
        col ~rows ~distinct:10.0 "hd_dep_count";
      ]
  in
  let income_band =
    let rows = 20.0 in
    table ~rows ~name:"income_band" ~pk:"ib_income_band_sk"
      ?partition:(part [ "ib_income_band_sk" ])
      [ col ~rows "ib_income_band_sk"; col ~rows ~distinct:20.0 "ib_lower_bound" ]
  in
  let promotion =
    let rows = 2_000.0 in
    (* Second non-join-column partition. *)
    table ~rows ~name:"promotion" ~pk:"p_promo_sk" ?partition:(part [ "p_category" ])
      [
        col ~rows "p_promo_sk";
        col ~rows ~distinct:2.0 "p_channel_email";
        col ~rows ~distinct:20.0 "p_category";
      ]
  in
  let warehouse =
    let rows = 22.0 in
    table ~rows ~name:"warehouse" ~pk:"w_warehouse_sk"
      ?partition:(part [ "w_warehouse_sk" ])
      [ col ~rows "w_warehouse_sk"; col ~rows ~distinct:22.0 "w_state" ]
  in
  let ship_mode =
    let rows = 20.0 in
    table ~rows ~name:"ship_mode" ~pk:"sm_ship_mode_sk"
      ?partition:(part [ "sm_ship_mode_sk" ])
      [ col ~rows "sm_ship_mode_sk"; col ~rows ~distinct:6.0 "sm_type" ]
  in
  let reason =
    let rows = 72.0 in
    table ~rows ~name:"reason" ~pk:"r_reason_sk" ?partition:(part [ "r_reason_sk" ])
      [ col ~rows "r_reason_sk"; col ~rows ~distinct:72.0 "r_reason_desc" ]
  in
  let store_sales =
    let rows = 2_880_000.0 in
    table ~rows ~name:"store_sales" ~pk:"ss_ticket_number"
      ?partition:(part [ "ss_item_sk" ])
      ~indexes:
        [
          C.Index.make ~name:"ss_item" [ "ss_item_sk" ];
          C.Index.make ~name:"ss_date_item" [ "ss_sold_date_sk"; "ss_item_sk" ];
        ]
      [
        col ~rows ~distinct:rows "ss_ticket_number";
        col ~rows ~distinct:73_049.0 "ss_sold_date_sk";
        col ~rows ~distinct:86_400.0 "ss_sold_time_sk";
        col ~rows ~distinct:204_000.0 "ss_item_sk";
        col ~rows ~distinct:1_900_000.0 "ss_customer_sk";
        col ~rows ~distinct:1_920_800.0 "ss_cdemo_sk";
        col ~rows ~distinct:7_200.0 "ss_hdemo_sk";
        col ~rows ~distinct:950_000.0 "ss_addr_sk";
        col ~rows ~distinct:1_002.0 "ss_store_sk";
        col ~rows ~distinct:2_000.0 "ss_promo_sk";
        col ~rows ~distinct:100.0 "ss_quantity";
        col ~rows ~distinct:20_000.0 ~skewed:true "ss_sales_price";
        col ~rows ~distinct:10_000.0 ~skewed:true "ss_net_profit";
      ]
  in
  let store_returns =
    let rows = 288_000.0 in
    table ~rows ~name:"store_returns" ~pk:"sr_return_id"
      ?partition:(part [ "sr_item_sk" ])
      [
        col ~rows ~distinct:rows "sr_return_id";
        col ~rows ~distinct:73_049.0 "sr_returned_date_sk";
        col ~rows ~distinct:204_000.0 "sr_item_sk";
        col ~rows ~distinct:1_900_000.0 "sr_customer_sk";
        col ~rows ~distinct:2_880_000.0 "sr_ticket_number";
        col ~rows ~distinct:72.0 "sr_reason_sk";
        col ~rows ~distinct:5_000.0 "sr_return_amt";
      ]
  in
  let catalog_sales =
    let rows = 1_440_000.0 in
    table ~rows ~name:"catalog_sales" ~pk:"cs_order_number"
      ?partition:(part [ "cs_item_sk" ])
      [
        col ~rows ~distinct:rows "cs_order_number";
        col ~rows ~distinct:73_049.0 "cs_sold_date_sk";
        col ~rows ~distinct:204_000.0 "cs_item_sk";
        col ~rows ~distinct:1_900_000.0 "cs_bill_customer_sk";
        col ~rows ~distinct:22.0 "cs_warehouse_sk";
        col ~rows ~distinct:20.0 "cs_ship_mode_sk";
        col ~rows ~distinct:2_000.0 "cs_promo_sk";
        col ~rows ~distinct:100.0 "cs_quantity";
        col ~rows ~distinct:20_000.0 "cs_sales_price";
      ]
  in
  let web_sales =
    let rows = 720_000.0 in
    table ~rows ~name:"web_sales" ~pk:"ws_order_number"
      ?partition:(part [ "ws_sold_date_sk" ])
      [
        col ~rows ~distinct:rows "ws_order_number";
        col ~rows ~distinct:73_049.0 "ws_sold_date_sk";
        col ~rows ~distinct:204_000.0 "ws_item_sk";
        col ~rows ~distinct:1_900_000.0 "ws_bill_customer_sk";
        col ~rows ~distinct:2_000.0 "ws_promo_sk";
        col ~rows ~distinct:20.0 "ws_ship_mode_sk";
        col ~rows ~distinct:20_000.0 "ws_sales_price";
      ]
  in
  let inventory =
    let rows = 783_000.0 in
    table ~rows ~name:"inventory" ~pk:"inv_id" ?partition:(part [ "inv_item_sk" ])
      [
        col ~rows ~distinct:rows "inv_id";
        col ~rows ~distinct:73_049.0 "inv_date_sk";
        col ~rows ~distinct:204_000.0 "inv_item_sk";
        col ~rows ~distinct:22.0 "inv_warehouse_sk";
        col ~rows ~distinct:1_000.0 "inv_quantity_on_hand";
      ]
  in
  let fk from from_col to_ to_col =
    C.Fkey.make ~from_table:from ~from_cols:[ from_col ] ~to_table:to_
      ~to_cols:[ to_col ]
  in
  C.Schema.of_tables
    ~fkeys:
      [
        fk "store_sales" "ss_sold_date_sk" "date_dim" "d_date_sk";
        fk "store_sales" "ss_sold_time_sk" "time_dim" "t_time_sk";
        fk "store_sales" "ss_item_sk" "item" "i_item_sk";
        fk "store_sales" "ss_customer_sk" "customer" "c_customer_sk";
        fk "store_sales" "ss_cdemo_sk" "customer_demographics" "cd_demo_sk";
        fk "store_sales" "ss_hdemo_sk" "household_demographics" "hd_demo_sk";
        fk "store_sales" "ss_addr_sk" "customer_address" "ca_address_sk";
        fk "store_sales" "ss_store_sk" "store" "s_store_sk";
        fk "store_sales" "ss_promo_sk" "promotion" "p_promo_sk";
        fk "store_returns" "sr_returned_date_sk" "date_dim" "d_date_sk";
        fk "store_returns" "sr_item_sk" "item" "i_item_sk";
        fk "store_returns" "sr_customer_sk" "customer" "c_customer_sk";
        fk "store_returns" "sr_reason_sk" "reason" "r_reason_sk";
        fk "catalog_sales" "cs_sold_date_sk" "date_dim" "d_date_sk";
        fk "catalog_sales" "cs_item_sk" "item" "i_item_sk";
        fk "catalog_sales" "cs_bill_customer_sk" "customer" "c_customer_sk";
        fk "catalog_sales" "cs_warehouse_sk" "warehouse" "w_warehouse_sk";
        fk "catalog_sales" "cs_ship_mode_sk" "ship_mode" "sm_ship_mode_sk";
        fk "catalog_sales" "cs_promo_sk" "promotion" "p_promo_sk";
        fk "web_sales" "ws_sold_date_sk" "date_dim" "d_date_sk";
        fk "web_sales" "ws_item_sk" "item" "i_item_sk";
        fk "web_sales" "ws_bill_customer_sk" "customer" "c_customer_sk";
        fk "web_sales" "ws_promo_sk" "promotion" "p_promo_sk";
        fk "web_sales" "ws_ship_mode_sk" "ship_mode" "sm_ship_mode_sk";
        fk "inventory" "inv_date_sk" "date_dim" "d_date_sk";
        fk "inventory" "inv_item_sk" "item" "i_item_sk";
        fk "inventory" "inv_warehouse_sk" "warehouse" "w_warehouse_sk";
        fk "customer" "c_current_addr_sk" "customer_address" "ca_address_sk";
        fk "customer" "c_current_cdemo_sk" "customer_demographics" "cd_demo_sk";
        fk "customer" "c_current_hdemo_sk" "household_demographics" "hd_demo_sk";
        fk "household_demographics" "hd_income_band_sk" "income_band"
          "ib_income_band_sk";
      ]
    [
      date_dim; time_dim; store; item; customer; customer_address;
      customer_demographics; household_demographics; income_band; promotion;
      warehouse; ship_mode; reason; store_sales; store_returns; catalog_sales;
      web_sales; inventory;
    ]

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let q schema name sql =
  let block = Sql.Binder.parse_and_bind ~name schema sql in
  Workload.query ~sql name block

let real1_queries schema =
  [
    q schema "r1_q1"
      "SELECT i.i_category_id, s.s_state, SUM(ss.ss_sales_price) FROM \
       store_sales ss, date_dim d, store s, item i WHERE ss.ss_sold_date_sk = \
       d.d_date_sk AND ss.ss_store_sk = s.s_store_sk AND ss.ss_item_sk = \
       i.i_item_sk AND d.d_year = 2000 AND d.d_moy = 11 AND i.i_category_id = \
       4 GROUP BY i.i_category_id, s.s_state ORDER BY i.i_category_id, \
       s.s_state";
    q schema "r1_q2"
      "SELECT c.c_birth_year, ca.ca_state, COUNT(*) FROM store_sales ss, \
       date_dim d, item i, customer c, customer_address ca LEFT JOIN \
       promotion p ON ss.ss_promo_sk = p.p_promo_sk WHERE ss.ss_sold_date_sk \
       = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk AND ss.ss_customer_sk = \
       c.c_customer_sk AND c.c_current_addr_sk = ca.ca_address_sk AND \
       d.d_year = 1999 AND i.i_class_id = 7 AND ca.ca_state = 'CA' GROUP BY \
       c.c_birth_year, ca.ca_state ORDER BY c.c_birth_year";
    (* r1_q3: sales with matching returns, two date-dimension roles. *)
    q schema "r1_q3"
      "SELECT i.i_brand_id, r.r_reason_desc, SUM(sr.sr_return_amt) FROM \
       store_sales ss, store_returns sr, date_dim d1, date_dim d2, item i, \
       store s, reason r WHERE ss.ss_ticket_number = sr.sr_ticket_number AND \
       ss.ss_item_sk = sr.sr_item_sk AND ss.ss_sold_date_sk = d1.d_date_sk \
       AND sr.sr_returned_date_sk = d2.d_date_sk AND ss.ss_item_sk = \
       i.i_item_sk AND ss.ss_store_sk = s.s_store_sk AND sr.sr_reason_sk = \
       r.r_reason_sk AND d1.d_year = 2001 AND d2.d_year = 2001 AND \
       d2.d_moy >= 6 AND s.s_market_id = 5 GROUP BY i.i_brand_id, \
       r.r_reason_desc ORDER BY i.i_brand_id";
    q schema "r1_q4"
      "SELECT w.w_state, i.i_category_id, AVG(inv.inv_quantity_on_hand) FROM \
       inventory inv, item i, warehouse w, date_dim d WHERE inv.inv_item_sk = \
       i.i_item_sk AND inv.inv_warehouse_sk = w.w_warehouse_sk AND \
       inv.inv_date_sk = d.d_date_sk AND d.d_month_seq >= 1200 AND \
       d.d_month_seq <= 1211 AND i.i_current_price >= 100 GROUP BY w.w_state, \
       i.i_category_id ORDER BY w.w_state, i.i_category_id";
    q schema "r1_q5"
      "SELECT i.i_brand_id, COUNT(*) FROM catalog_sales cs, web_sales ws, \
       item i, customer c, date_dim d1, date_dim d2, promotion p WHERE \
       cs.cs_item_sk = i.i_item_sk AND ws.ws_item_sk = i.i_item_sk AND \
       cs.cs_bill_customer_sk = c.c_customer_sk AND ws.ws_bill_customer_sk = \
       c.c_customer_sk AND cs.cs_sold_date_sk = d1.d_date_sk AND \
       ws.ws_sold_date_sk = d2.d_date_sk AND cs.cs_promo_sk = p.p_promo_sk \
       AND d1.d_year = 2002 AND d2.d_year = 2002 AND p.p_channel_email = 1 \
       GROUP BY i.i_brand_id ORDER BY i.i_brand_id";
    q schema "r1_q6"
      "SELECT c.c_birth_year, COUNT(*) FROM customer c, customer_address ca \
       WHERE c.c_current_addr_sk = ca.ca_address_sk AND ca.ca_state = 'TX' \
       AND EXISTS (SELECT ss.ss_ticket_number FROM store_sales ss, date_dim \
       d WHERE ss.ss_customer_sk = c.c_customer_sk AND ss.ss_sold_date_sk = \
       d.d_date_sk AND d.d_year = 2001) GROUP BY c.c_birth_year ORDER BY \
       c.c_birth_year";
    q schema "r1_q7"
      "SELECT ib.ib_lower_bound, i.i_category_id, s.s_state, COUNT(*) FROM \
       store_sales ss, item i, date_dim d, store s, customer c, \
       customer_address ca, household_demographics hd, income_band ib, \
       promotion p, customer_demographics cd WHERE ss.ss_item_sk = \
       i.i_item_sk AND ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = \
       s.s_store_sk AND ss.ss_customer_sk = c.c_customer_sk AND \
       c.c_current_addr_sk = ca.ca_address_sk AND c.c_current_hdemo_sk = \
       hd.hd_demo_sk AND hd.hd_income_band_sk = ib.ib_income_band_sk AND \
       ss.ss_promo_sk = p.p_promo_sk AND c.c_current_cdemo_sk = \
       cd.cd_demo_sk AND d.d_year = 2000 AND i.i_category_id = 2 AND \
       cd.cd_gender = 1 AND hd.hd_dep_count >= 2 GROUP BY ib.ib_lower_bound, \
       i.i_category_id, s.s_state ORDER BY ib.ib_lower_bound";
    q schema "r1_q8"
      "SELECT i.i_item_sk, i.i_brand_id, s.s_store_sk, s.s_state, \
       c.c_customer_sk, d1.d_year, hd.hd_income_band_sk, ca.ca_state, \
       p.p_category, COUNT(*) FROM store_sales ss, store_returns sr, \
       catalog_sales cs, date_dim d1, date_dim d2, date_dim d3, item i, \
       store s, customer c, customer_demographics cd, household_demographics \
       hd, customer_address ca, promotion p, warehouse w WHERE \
       ss.ss_ticket_number = sr.sr_ticket_number AND ss.ss_item_sk = \
       sr.sr_item_sk AND sr.sr_customer_sk = cs.cs_bill_customer_sk AND \
       cs.cs_item_sk = i.i_item_sk AND ss.ss_item_sk = i.i_item_sk AND \
       ss.ss_sold_date_sk = d1.d_date_sk AND sr.sr_returned_date_sk = \
       d2.d_date_sk AND cs.cs_sold_date_sk = d3.d_date_sk AND ss.ss_store_sk \
       = s.s_store_sk AND ss.ss_customer_sk = c.c_customer_sk AND \
       c.c_current_cdemo_sk = cd.cd_demo_sk AND c.c_current_hdemo_sk = \
       hd.hd_demo_sk AND c.c_current_addr_sk = ca.ca_address_sk AND \
       ss.ss_promo_sk = p.p_promo_sk AND cs.cs_warehouse_sk = \
       w.w_warehouse_sk AND d1.d_year = 2000 AND d1.d_moy = 12 AND d2.d_year \
       = 2001 AND d2.d_moy <= 3 AND d3.d_year = 2001 AND i.i_class_id = 5 \
       AND i.i_current_price >= 50 AND i.i_current_price <= 200 AND \
       s.s_state = 'CA' AND s.s_market_id = 7 AND cd.cd_gender = 1 AND \
       cd.cd_education = 3 AND cd.cd_marital_status = 2 AND hd.hd_dep_count \
       >= 1 AND hd.hd_buy_potential = 4 AND ca.ca_state = 'CA' AND \
       p.p_channel_email = 1 AND w.w_state = 'CA' AND ss.ss_quantity >= 10 \
       AND sr.sr_return_amt >= 100 AND cs.cs_quantity >= 5 GROUP BY \
       i.i_item_sk, i.i_brand_id, s.s_store_sk, s.s_state, c.c_customer_sk, \
       d1.d_year, hd.hd_income_band_sk, ca.ca_state, p.p_category ORDER BY \
       i.i_item_sk, s.s_store_sk";
  ]

let real1_w ~partitioned =
  let schema = schema ~partitioned in
  Workload.make ~name:"real1" ~schema (real1_queries schema)

let real2_queries schema =
  real1_queries schema
  |> List.map (fun (qr : Workload.query) ->
         { qr with Workload.q_name = "r2_" ^ qr.Workload.q_name })
  |> fun base ->
  base
  @ [
      q schema "r2_q9"
        "SELECT d.d_year, i.i_category_id, SUM(ws.ws_sales_price) FROM \
         web_sales ws, date_dim d, item i, promotion p, ship_mode sm WHERE \
         ws.ws_sold_date_sk = d.d_date_sk AND ws.ws_item_sk = i.i_item_sk \
         AND ws.ws_promo_sk = p.p_promo_sk AND ws.ws_ship_mode_sk = \
         sm.sm_ship_mode_sk AND d.d_year >= 1999 AND sm.sm_type = 2 GROUP \
         BY d.d_year, i.i_category_id ORDER BY d.d_year";
      q schema "r2_q10"
        "SELECT s.s_city, hd.hd_buy_potential, COUNT(*) FROM store_sales ss, \
         date_dim d, store s, household_demographics hd, customer c WHERE \
         ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk \
         AND ss.ss_hdemo_sk = hd.hd_demo_sk AND ss.ss_customer_sk = \
         c.c_customer_sk AND d.d_dom >= 1 AND d.d_dom <= 2 AND \
         hd.hd_dep_count = 3 AND s.s_city = 'Midway' GROUP BY s.s_city, \
         hd.hd_buy_potential ORDER BY s.s_city";
      q schema "r2_q11"
        "SELECT i.i_manufact_id, SUM(cs.cs_sales_price) FROM catalog_sales \
         cs, item i, date_dim d, warehouse w, ship_mode sm, promotion p \
         WHERE cs.cs_item_sk = i.i_item_sk AND cs.cs_sold_date_sk = \
         d.d_date_sk AND cs.cs_warehouse_sk = w.w_warehouse_sk AND \
         cs.cs_ship_mode_sk = sm.sm_ship_mode_sk AND cs.cs_promo_sk = \
         p.p_promo_sk AND d.d_qoy = 2 AND d.d_year = 2001 AND w.w_state = \
         'TX' GROUP BY i.i_manufact_id ORDER BY i.i_manufact_id";
      q schema "r2_q12"
        "SELECT ca.ca_zip, SUM(ws.ws_sales_price) FROM web_sales ws, \
         customer c, customer_address ca, date_dim d, item i WHERE \
         ws.ws_bill_customer_sk = c.c_customer_sk AND c.c_current_addr_sk = \
         ca.ca_address_sk AND ws.ws_sold_date_sk = d.d_date_sk AND \
         ws.ws_item_sk = i.i_item_sk AND d.d_qoy = 1 AND d.d_year = 2000 \
         GROUP BY ca.ca_zip ORDER BY ca.ca_zip";
      q schema "r2_q13"
        "SELECT c.c_customer_sk, COUNT(*) FROM customer c, \
         customer_demographics cd, household_demographics hd, income_band \
         ib, customer_address ca WHERE c.c_current_cdemo_sk = cd.cd_demo_sk \
         AND c.c_current_hdemo_sk = hd.hd_demo_sk AND hd.hd_income_band_sk \
         = ib.ib_income_band_sk AND c.c_current_addr_sk = ca.ca_address_sk \
         AND ib.ib_lower_bound >= 10 AND cd.cd_education >= 4 AND \
         ca.ca_state = 'WA' AND c.c_customer_sk IN (SELECT \
         ss.ss_customer_sk FROM store_sales ss, date_dim d WHERE \
         ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2002) GROUP BY \
         c.c_customer_sk ORDER BY c.c_customer_sk";
      q schema "r2_q14"
        "SELECT i.i_class_id, t.t_hour, COUNT(*) FROM store_sales ss, item \
         i, time_dim t, date_dim d, store s, promotion p WHERE \
         ss.ss_item_sk = i.i_item_sk AND ss.ss_sold_time_sk = t.t_time_sk \
         AND ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = \
         s.s_store_sk AND ss.ss_promo_sk = p.p_promo_sk AND t.t_hour >= 8 \
         AND t.t_hour <= 12 AND d.d_year = 2001 AND p.p_category = 3 GROUP \
         BY i.i_class_id, t.t_hour ORDER BY i.i_class_id, t.t_hour";
      q schema "r2_q15"
        "SELECT i.i_category_id, w.w_state, d.d_moy, \
         SUM(inv.inv_quantity_on_hand) FROM inventory inv, item i, \
         warehouse w, date_dim d, catalog_sales cs, ship_mode sm WHERE \
         inv.inv_item_sk = i.i_item_sk AND inv.inv_warehouse_sk = \
         w.w_warehouse_sk AND inv.inv_date_sk = d.d_date_sk AND \
         cs.cs_item_sk = i.i_item_sk AND cs.cs_warehouse_sk = \
         w.w_warehouse_sk AND cs.cs_ship_mode_sk = sm.sm_ship_mode_sk AND \
         d.d_year = 2000 AND i.i_brand_id >= 500 GROUP BY i.i_category_id, \
         w.w_state, d.d_moy ORDER BY i.i_category_id, w.w_state, d.d_moy";
      q schema "r2_q16"
        "SELECT c.c_birth_year, COUNT(*) FROM customer c LEFT JOIN \
         customer_address ca ON c.c_current_addr_sk = ca.ca_address_sk LEFT \
         JOIN household_demographics hd ON c.c_current_hdemo_sk = \
         hd.hd_demo_sk WHERE c.c_birth_year >= 1950 AND c.c_birth_year <= \
         1960 GROUP BY c.c_birth_year ORDER BY c.c_birth_year";
      q schema "r2_q17"
        "SELECT i.i_brand_id, d1.d_year, SUM(ss.ss_net_profit) FROM \
         store_sales ss, store_returns sr, item i, date_dim d1, date_dim \
         d2, customer c, customer_address ca, store s, reason r WHERE \
         ss.ss_ticket_number = sr.sr_ticket_number AND ss.ss_item_sk = \
         sr.sr_item_sk AND ss.ss_item_sk = i.i_item_sk AND \
         ss.ss_sold_date_sk = d1.d_date_sk AND sr.sr_returned_date_sk = \
         d2.d_date_sk AND ss.ss_customer_sk = c.c_customer_sk AND \
         c.c_current_addr_sk = ca.ca_address_sk AND ss.ss_store_sk = \
         s.s_store_sk AND sr.sr_reason_sk = r.r_reason_sk AND d1.d_year = \
         1999 AND d2.d_year >= 1999 AND ca.ca_state = 'NY' AND \
         ss.ss_quantity >= 5 GROUP BY i.i_brand_id, d1.d_year ORDER BY \
         i.i_brand_id, d1.d_year";
    ]

let real2_w ~partitioned =
  let schema = schema ~partitioned in
  Workload.make ~name:"real2" ~schema (real2_queries schema)
