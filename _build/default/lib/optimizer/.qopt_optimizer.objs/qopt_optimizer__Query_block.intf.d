lib/optimizer/query_block.mli: Colref Format Pred Qopt_catalog Qopt_util Quantifier
