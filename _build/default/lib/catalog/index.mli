(** Secondary and clustering indexes.

    Indexes matter to the estimator in two ways: an index scan is a *natural*
    source of an order property, and (with DB2's eager order policy, Section 4
    of the paper) order properties that are not natural are forced with SORTs,
    which is why the paper observes that the number of indexes does not
    significantly change the number of generated plans. *)

type t = {
  name : string;
  columns : string list;  (** key columns, major to minor *)
  unique : bool;
  clustered : bool;
}

val make : ?unique:bool -> ?clustered:bool -> name:string -> string list -> t

val provides_prefix : t -> string list -> bool
(** [provides_prefix idx cols] is [true] when scanning [idx] delivers tuples
    ordered on [cols] (i.e. [cols] is a prefix of the index key). *)

val pp : Format.formatter -> t -> unit
