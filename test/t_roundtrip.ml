(* SQL round-trips: a generated corpus of query texts is lexed, parsed and
   bound against a catalog, and each result is matched against the
   corresponding hand-built [Helpers] query block.  Structural equality is
   checked through [Cote.Stmt_cache.signature] (tables, predicate shapes,
   grouping/ordering arity, LIMIT) plus direct field comparisons. *)

module Sql = Qopt_sql
module O = Qopt_optimizer
module C = Qopt_catalog
module SC = Cote.Stmt_cache

let t name f = Alcotest.test_case name `Quick f

(* The same tables [Helpers.chain] / [Helpers.star_block] build their blocks
   from, exposed as a catalog the binder can resolve against. *)
let schema =
  lazy
    (let mk prefix i =
       Helpers.table ~rows:(1000.0 *. float_of_int (i + 1))
         (Printf.sprintf "%s%d" prefix i)
     in
     C.Schema.of_tables
       (List.init 6 (mk "t") @ List.init 6 (mk "s")))

let bind sql = Sql.Binder.parse_and_bind (Lazy.force schema) sql

let check_matches msg ~sql ~expected =
  let bound = bind sql in
  Alcotest.(check string)
    (msg ^ ": signature")
    (SC.signature expected) (SC.signature bound);
  Alcotest.(check int)
    (msg ^ ": quantifiers")
    (O.Query_block.n_quantifiers expected)
    (O.Query_block.n_quantifiers bound);
  Alcotest.(check int)
    (msg ^ ": predicates")
    (List.length expected.O.Query_block.preds)
    (List.length bound.O.Query_block.preds);
  Alcotest.(check int)
    (msg ^ ": group-by arity")
    (List.length expected.O.Query_block.group_by)
    (List.length bound.O.Query_block.group_by);
  Alcotest.(check int)
    (msg ^ ": order-by arity")
    (List.length expected.O.Query_block.order_by)
    (List.length bound.O.Query_block.order_by);
  bound

(* SQL text generators mirroring the Helpers builders. *)
let chain_sql ?(extra = 0) ?(order_by = false) ?(group_by = false) n =
  let from =
    String.concat ", " (List.init n (fun i -> Printf.sprintf "t%d" i))
  in
  let preds =
    List.concat
      (List.init (n - 1) (fun i ->
           Printf.sprintf "t%d.j1 = t%d.j1" i (i + 1)
           :: List.init extra (fun _ ->
                  Printf.sprintf "t%d.j2 = t%d.j2" i (i + 1))))
  in
  Printf.sprintf "SELECT * FROM %s WHERE %s%s%s" from
    (String.concat " AND " preds)
    (if group_by then " GROUP BY t0.j2" else "")
    (if order_by then " ORDER BY t0.v" else "")

let star_sql n =
  let from =
    String.concat ", " (List.init n (fun i -> Printf.sprintf "s%d" i))
  in
  let preds =
    List.init (n - 1) (fun i -> Printf.sprintf "s0.j1 = s%d.j1" (i + 1))
  in
  Printf.sprintf "SELECT * FROM %s WHERE %s" from (String.concat " AND " preds)

let corpus_tests =
  [
    t "chains of 2..6 tables round-trip" (fun () ->
        for n = 2 to 6 do
          ignore
            (check_matches
               (Printf.sprintf "chain%d" n)
               ~sql:(chain_sql n) ~expected:(Helpers.chain n))
        done);
    t "chains with doubled join edges round-trip" (fun () ->
        for n = 2 to 5 do
          ignore
            (check_matches
               (Printf.sprintf "chain%d+extra" n)
               ~sql:(chain_sql ~extra:1 n)
               ~expected:(Helpers.chain ~extra:1 n))
        done);
    t "stars of 3..6 tables round-trip" (fun () ->
        for n = 3 to 6 do
          ignore
            (check_matches
               (Printf.sprintf "star%d" n)
               ~sql:(star_sql n) ~expected:(Helpers.star_block n))
        done);
    t "GROUP BY and ORDER BY variants round-trip" (fun () ->
        ignore
          (check_matches "chain4 grouped" ~sql:(chain_sql ~group_by:true 4)
             ~expected:(Helpers.chain ~group_by:true 4));
        ignore
          (check_matches "chain4 ordered" ~sql:(chain_sql ~order_by:true 4)
             ~expected:(Helpers.chain ~order_by:true 4));
        ignore
          (check_matches "chain4 both"
             ~sql:(chain_sql ~group_by:true ~order_by:true 4)
             ~expected:(Helpers.chain ~group_by:true ~order_by:true 4)));
  ]

let surface_tests =
  [
    t "comma joins and JOIN..ON spell the same block" (fun () ->
        let comma = bind (chain_sql 3) in
        let ansi =
          bind "SELECT * FROM t0 JOIN t1 ON t0.j1 = t1.j1 JOIN t2 ON t1.j1 = t2.j1"
        in
        Alcotest.(check string) "signature" (SC.signature comma) (SC.signature ansi));
    t "LIMIT becomes first_n" (fun () ->
        let b = bind (chain_sql 3 ^ " LIMIT 10") in
        Alcotest.(check (option int)) "first_n" (Some 10) b.O.Query_block.first_n;
        (* And it is part of the structural signature. *)
        let plain = bind (chain_sql 3) in
        Alcotest.(check bool) "limit changes the signature" false
          (String.equal (SC.signature b) (SC.signature plain)));
    t "local predicates bind with literals abstracted" (fun () ->
        let sql = chain_sql 3 ^ " AND t0.v <= 10" in
        let expected =
          let b = Helpers.chain 3 in
          O.Query_block.make ~name:"chain3+local"
            ~quantifiers:
              (List.init 3 (fun i -> O.Query_block.quantifier b i))
            ~preds:
              (b.O.Query_block.preds
              @ [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Le, 10.0) ])
            ()
        in
        ignore (check_matches "chain3+local" ~sql ~expected));
    t "EXISTS subquery becomes a child block" (fun () ->
        let b =
          bind
            "SELECT * FROM t0, t1 WHERE t0.j1 = t1.j1 AND EXISTS (SELECT s0.pk FROM s0 WHERE s0.j1 = t0.j1)"
        in
        Alcotest.(check int) "children" 1
          (List.length b.O.Query_block.children));
  ]

(* The strongest equivalence check: the optimizer must not be able to tell
   the SQL-derived block from the hand-built one. *)
let optimize_equivalence_tests =
  [
    t "bound and hand-built blocks optimize identically" (fun () ->
        List.iter
          (fun (sql, expected) ->
            let bound = bind sql in
            let opt b =
              O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs b
            in
            let rb = opt bound and re = opt expected in
            Alcotest.(check int) "joins" re.O.Optimizer.joins rb.O.Optimizer.joins;
            Alcotest.(check int) "entries" re.O.Optimizer.entries
              rb.O.Optimizer.entries;
            Alcotest.(check int) "kept" re.O.Optimizer.kept rb.O.Optimizer.kept;
            let ce p =
              match p.O.Optimizer.best with
              | Some plan -> plan.O.Plan.cost
              | None -> Alcotest.fail "no plan"
            in
            Alcotest.(check (float 1e-6)) "best cost" (ce re) (ce rb))
          [
            (chain_sql 4, Helpers.chain 4);
            (chain_sql ~extra:1 ~group_by:true 4, Helpers.chain ~extra:1 ~group_by:true 4);
            (star_sql 5, Helpers.star_block 5);
          ]);
  ]

let suite = corpus_tests @ surface_tests @ optimize_equivalence_tests
