exception Error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st
  else
    raise
      (Error
         (Format.asprintf "expected %s but found %a" what Lexer.pp_token (peek st)))

let expect_kw st kw = expect st (Lexer.Kw kw) kw

let ident st =
  match peek st with
  | Lexer.Ident s ->
    advance st;
    s
  | t -> raise (Error (Format.asprintf "expected identifier, found %a" Lexer.pp_token t))

let parse_col st =
  let first = ident st in
  match peek st with
  | Lexer.Dot ->
    advance st;
    let second = ident st in
    { Ast.c_table = Some first; c_name = second }
  | _ -> { Ast.c_table = None; c_name = first }

let parse_literal st =
  match peek st with
  | Lexer.Number f ->
    advance st;
    Ast.Num f
  | Lexer.String s ->
    advance st;
    Ast.Str s
  | t -> raise (Error (Format.asprintf "expected literal, found %a" Lexer.pp_token t))

let cmp_of_op = function
  | "=" -> Ast.Eq
  | "<" -> Ast.Lt
  | "<=" -> Ast.Le
  | ">" -> Ast.Gt
  | ">=" -> Ast.Ge
  | op -> raise (Error (Printf.sprintf "unsupported operator %s" op))

let rec parse_condition st =
  match peek st with
  | Lexer.Kw "EXISTS" ->
    advance st;
    expect st Lexer.Lparen "(";
    let sub = parse_select st in
    expect st Lexer.Rparen ")";
    Ast.Exists sub
  | _ -> begin
    let c = parse_col st in
    match peek st with
    | Lexer.Kw "IN" -> begin
      advance st;
      expect st Lexer.Lparen "(";
      match peek st with
      | Lexer.Kw "SELECT" ->
        let sub = parse_select st in
        expect st Lexer.Rparen ")";
        Ast.In_subquery (c, sub)
      | _ ->
        let rec items acc =
          let l = parse_literal st in
          match peek st with
          | Lexer.Comma ->
            advance st;
            items (l :: acc)
          | _ -> List.rev (l :: acc)
        in
        let ls = items [] in
        expect st Lexer.Rparen ")";
        Ast.In_list (c, ls)
    end
    | Lexer.Op op -> begin
      advance st;
      match peek st with
      | Lexer.Ident _ ->
        let c2 = parse_col st in
        Ast.Cmp_cols (c, cmp_of_op op, c2)
      | _ ->
        let l = parse_literal st in
        Ast.Cmp_lit (c, cmp_of_op op, l)
    end
    | t ->
      raise
        (Error (Format.asprintf "expected condition operator, found %a" Lexer.pp_token t))
  end

and parse_conjuncts st =
  let first = parse_condition st in
  let rec loop acc =
    match peek st with
    | Lexer.Kw "AND" ->
      advance st;
      loop (parse_condition st :: acc)
    | _ -> List.rev acc
  in
  loop [ first ]

and parse_table_ref st =
  let name = ident st in
  match peek st with
  | Lexer.Kw "AS" ->
    advance st;
    { Ast.t_name = name; t_alias = Some (ident st) }
  | Lexer.Ident _ -> { Ast.t_name = name; t_alias = Some (ident st) }
  | _ -> { Ast.t_name = name; t_alias = None }

and parse_sel_item st =
  match peek st with
  | Lexer.Star_tok ->
    advance st;
    Ast.Star
  | Lexer.Kw (("COUNT" | "SUM" | "MIN" | "MAX" | "AVG") as f) ->
    advance st;
    expect st Lexer.Lparen "(";
    let c =
      match peek st with
      | Lexer.Star_tok ->
        advance st;
        Ast.col "*"
      | _ -> parse_col st
    in
    expect st Lexer.Rparen ")";
    Ast.Agg (f, c)
  | _ -> Ast.Col_item (parse_col st)

and parse_select st =
  expect_kw st "SELECT";
  let items =
    let first = parse_sel_item st in
    let rec loop acc =
      match peek st with
      | Lexer.Comma ->
        advance st;
        loop (parse_sel_item st :: acc)
      | _ -> List.rev acc
    in
    loop [ first ]
  in
  expect_kw st "FROM";
  let from =
    let first = parse_table_ref st in
    let rec loop acc =
      match peek st with
      | Lexer.Comma ->
        advance st;
        loop (parse_table_ref st :: acc)
      | _ -> List.rev acc
    in
    loop [ first ]
  in
  let joins =
    let rec loop acc =
      match peek st with
      | Lexer.Kw "JOIN" | Lexer.Kw "INNER" ->
        if peek st = Lexer.Kw "INNER" then advance st;
        expect_kw st "JOIN";
        let tref = parse_table_ref st in
        expect_kw st "ON";
        let on = parse_conjuncts st in
        loop ({ Ast.j_kind = Ast.Inner; j_table = tref; j_on = on } :: acc)
      | Lexer.Kw "LEFT" ->
        advance st;
        if peek st = Lexer.Kw "OUTER" then advance st;
        expect_kw st "JOIN";
        let tref = parse_table_ref st in
        expect_kw st "ON";
        let on = parse_conjuncts st in
        loop ({ Ast.j_kind = Ast.Left_outer; j_table = tref; j_on = on } :: acc)
      | _ -> List.rev acc
    in
    loop []
  in
  let where =
    match peek st with
    | Lexer.Kw "WHERE" ->
      advance st;
      parse_conjuncts st
    | _ -> []
  in
  let parse_col_list () =
    let first = parse_col st in
    let rec loop acc =
      match peek st with
      | Lexer.Comma ->
        advance st;
        loop (parse_col st :: acc)
      | _ -> List.rev acc
    in
    loop [ first ]
  in
  let group_by =
    match peek st with
    | Lexer.Kw "GROUP" ->
      advance st;
      expect_kw st "BY";
      parse_col_list ()
    | _ -> []
  in
  let order_by =
    match peek st with
    | Lexer.Kw "ORDER" ->
      advance st;
      expect_kw st "BY";
      parse_col_list ()
    | _ -> []
  in
  let limit =
    match peek st with
    | Lexer.Kw "LIMIT" -> begin
      advance st;
      match peek st with
      | Lexer.Number f when Float.is_integer f && f > 0.0 ->
        advance st;
        Some (int_of_float f)
      | t -> raise (Error (Format.asprintf "expected a positive LIMIT count, found %a" Lexer.pp_token t))
    end
    | _ -> None
  in
  {
    Ast.sel_items = items;
    sel_from = from;
    sel_joins = joins;
    sel_where = where;
    sel_group_by = group_by;
    sel_order_by = order_by;
    sel_limit = limit;
  }

let parse input =
  let st = { toks = Lexer.tokenize input } in
  let s = parse_select st in
  match peek st with
  | Lexer.Eof -> s
  | t ->
    raise (Error (Format.asprintf "trailing input at %a" Lexer.pp_token t))
