lib/sqlfront/binder.ml: Array Ast Float Format Hashtbl List Option Parser Printf Qopt_catalog Qopt_optimizer Qopt_util String
