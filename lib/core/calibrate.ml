module O = Qopt_optimizer
module Regression = Qopt_util.Regression
module Timer = Qopt_util.Timer

type observation = {
  obs_nljn : float;
  obs_mgjn : float;
  obs_hsjn : float;
  obs_joins : float;
  obs_seconds : float;
  obs_t_nljn : float;
  obs_t_mgjn : float;
  obs_t_hsjn : float;
}

let measure ?knobs ?(repeats = 3) env block =
  let result, seconds =
    Timer.time_median ~repeats (fun () -> O.Optimizer.optimize env ?knobs block)
  in
  {
    obs_nljn = float_of_int result.O.Optimizer.generated.O.Memo.nljn;
    obs_mgjn = float_of_int result.O.Optimizer.generated.O.Memo.mgjn;
    obs_hsjn = float_of_int result.O.Optimizer.generated.O.Memo.hsjn;
    obs_joins = float_of_int result.O.Optimizer.joins;
    obs_seconds = seconds;
    obs_t_nljn = result.O.Optimizer.breakdown.O.Instrument.s_nljn;
    obs_t_mgjn = result.O.Optimizer.breakdown.O.Instrument.s_mgjn;
    obs_t_hsjn = result.O.Optimizer.breakdown.O.Instrument.s_hsjn;
  }

let fit ?(with_join_term = false) observations =
  if observations = [] then invalid_arg "Calibrate.fit: no observations";
  let features o =
    if with_join_term then [| o.obs_nljn; o.obs_mgjn; o.obs_hsjn; o.obs_joins |]
    else [| o.obs_nljn; o.obs_mgjn; o.obs_hsjn |]
  in
  let xs = Array.of_list (List.map features observations) in
  let ys = Array.of_list (List.map (fun o -> o.obs_seconds) observations) in
  let c = Regression.fit_nonneg xs ys in
  Time_model.make ~c_nljn:c.(0) ~c_mgjn:c.(1) ~c_hsjn:c.(2)
    ?c_join:(if with_join_term then Some c.(3) else None)
    ()

let refit ?ridge ?(with_join_term = false) ~previous observations =
  (* Online recalibration must never kill the serving path: a degenerate
     training batch (empty, or rank-deficient — e.g. every query produced
     proportional plan counts) keeps the previous coefficients instead of
     raising. *)
  match observations with
  | [] -> previous
  | _ -> (
    let features o =
      if with_join_term then [| o.obs_nljn; o.obs_mgjn; o.obs_hsjn; o.obs_joins |]
      else [| o.obs_nljn; o.obs_mgjn; o.obs_hsjn |]
    in
    let xs = Array.of_list (List.map features observations) in
    let ys = Array.of_list (List.map (fun o -> o.obs_seconds) observations) in
    (* Solvable (full-rank) normal equations are the health check; the
       coefficients themselves come from the usual non-negative fit.  An
       optional ridge dampens the check for callers that would rather
       accept a near-singular window than keep a drifted model. *)
    match Regression.fit_result ?ridge xs ys with
    | Error _ -> previous
    | Ok _ -> (
      match fit ~with_join_term observations with
      | m -> m
      | exception (Failure _ | Invalid_argument _) -> previous))

let fit_joins_only observations =
  if observations = [] then invalid_arg "Calibrate.fit_joins_only: no observations";
  let xs = Array.of_list (List.map (fun o -> [| o.obs_joins |]) observations) in
  let ys = Array.of_list (List.map (fun o -> o.obs_seconds) observations) in
  let c = Regression.fit_nonneg xs ys in
  Time_model.joins_only c.(0)

let fit_instrumented observations =
  if observations = [] then invalid_arg "Calibrate.fit_instrumented: no observations";
  let sum f = List.fold_left (fun acc o -> acc +. f o) 0.0 observations in
  let per_plan time count =
    let c = sum count in
    if c <= 0.0 then 0.0 else sum time /. c
  in
  let cn = per_plan (fun o -> o.obs_t_nljn) (fun o -> o.obs_nljn) in
  let cm = per_plan (fun o -> o.obs_t_mgjn) (fun o -> o.obs_mgjn) in
  let ch = per_plan (fun o -> o.obs_t_hsjn) (fun o -> o.obs_hsjn) in
  (* Inflate proportionally so the model accounts for total compilation time
     (plan saving, enumeration, scans ride along with plan generation). *)
  let modeled =
    sum (fun o -> (cn *. o.obs_nljn) +. (cm *. o.obs_mgjn) +. (ch *. o.obs_hsjn))
  in
  let inflate = if modeled <= 0.0 then 1.0 else sum (fun o -> o.obs_seconds) /. modeled in
  Time_model.make ~c_nljn:(cn *. inflate) ~c_mgjn:(cm *. inflate)
    ~c_hsjn:(ch *. inflate) ()

let calibrate ?knobs ?repeats ?with_join_term env blocks =
  fit ?with_join_term (List.map (measure ?knobs ?repeats env) blocks)
