(** The batch-scoped domain pool.

    [map_indexed ~domains n f] evaluates [f i] for every [i] in [0..n-1]
    across [domains] domains (the caller participates, so [domains - 1]
    domains are spawned) and returns the results indexed by [i] — input
    order is always preserved, whatever the steal order was.

    Scheduling: task indices are seeded round-robin into one work-stealing
    deque per worker; a worker drains its own deque LIFO and steals FIFO
    from the others when empty.  Since results are keyed by index and [f]
    must not depend on execution order, scheduling affects only load
    balance, never output.

    Each spawned worker claims a distinct {!Qopt_obs.Shard} slot, so
    metrics recorded inside tasks shard cleanly; [domains] is clamped to
    {!max_domains}.  If a task calls back into the pool, the nested call
    runs sequentially on its worker (no oversubscription, no slot
    collisions).

    If one or more tasks raise, every task still runs, then the exception
    of the lowest-indexed failing task is re-raised (with its original
    backtrace) — deterministic regardless of domain count. *)

val max_domains : int
(** Equal to {!Qopt_obs.Shard.max_slots}. *)

val map_indexed : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [domains] defaults to 1 (run everything in the caller). *)
