type t = {
  name : string;
  values : int array;  (* one cell per shard slot; merged value is the sum *)
}

let make name = { name; values = Array.make Shard.max_slots 0 }

let name t = t.name

let incr t =
  if !Control.on then begin
    let s = Shard.slot () in
    t.values.(s) <- t.values.(s) + 1
  end

let add t n =
  if !Control.on then begin
    let s = Shard.slot () in
    t.values.(s) <- t.values.(s) + n
  end

let value t = Array.fold_left ( + ) 0 t.values

let reset t = Array.fill t.values 0 Shard.max_slots 0
