type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: state advances by the golden-ratio increment; the output mix
   is the finalizer from the reference implementation. *)
let int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k l =
  let arr = Array.of_list l in
  shuffle t arr;
  let n = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 n)
