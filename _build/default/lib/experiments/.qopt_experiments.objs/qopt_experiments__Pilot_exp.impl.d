lib/experiments/pilot_exp.ml: Common Format List Qopt_optimizer Qopt_util Qopt_workloads
