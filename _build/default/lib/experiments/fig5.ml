(** Figure 5: accuracy of the estimated number of generated join plans, per
    join method — (a-c) star_s, (d-f) random_p, (g-i) real1_p.

    Paper shape: on the serial star workload HSJN estimates are exact
    (no order propagation — plans track joins exactly), MGJN is
    overestimated (<~15%, plan sharing) and NLJN is close (<~30%); in the
    parallel workloads HSJN is no longer exact (simple-vs-full cardinality
    shifts the enumerated joins, -2%..24%), with occasional NLJN outliers
    where errors accumulate. *)

module O = Qopt_optimizer
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

let run_one env wl_name =
  let wl = Common.workload env wl_name in
  let measured = Common.measure_workload env wl in
  List.iter
    (fun method_ ->
      let t =
        Tablefmt.create
          ~title:
            (Printf.sprintf "fig5: %s plans, %s" (O.Join_method.to_string method_)
               (Common.suffixed env wl_name))
          [
            ("query", Tablefmt.Left);
            ("actual", Tablefmt.Right);
            ("estimated", Tablefmt.Right);
            ("err", Tablefmt.Right);
          ]
      in
      let pairs =
        List.map
          (fun m ->
            let actual =
              float_of_int
                (O.Memo.counts_get m.Common.m_real.O.Optimizer.generated method_)
            in
            let est = float_of_int (Cote.Estimator.get m.Common.m_est method_) in
            Tablefmt.add_row t
              [
                m.Common.m_query.Qopt_workloads.Workload.q_name;
                Tablefmt.fcount actual;
                Tablefmt.fcount est;
                Tablefmt.fpct (Stats.pct_error ~actual ~estimate:est);
              ];
            (actual, est))
          measured
      in
      Tablefmt.print t;
      Format.printf "%s: %s@.@."
        (O.Join_method.to_string method_)
        (Common.err_summary pairs))
    O.Join_method.all

let run_star () = run_one Common.serial "star"

let run_random () = run_one Common.parallel "random"

let run_real1 () = run_one Common.parallel "real1"
