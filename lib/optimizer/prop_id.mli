(** Hash-consing of canonical column lists into dense integer ids.

    The plan-generation hot path compares physical properties — normalized
    plan orders, canonical partition keys, canonical interesting-order
    columns — far more often than it creates them.  A [Prop_id.t] interns
    each distinct canonical [Colref.t list] once, so equality of properties
    becomes equality of small integers and the per-plan signature in the
    MEMO stores ids instead of lists.  Ids are dense (0, 1, 2, …), which
    also makes them usable as compact cache keys; composite ids for kinded
    properties are built by the callers as [k * cols_id + kind_tag].

    A table is owned by one [Memo.t] (one optimizer pass, one domain), so
    it is deliberately unsynchronized. *)

type t

val none : int
(** [-1]: the id standing for an absent property (e.g. no partition). *)

val create : unit -> t
(** The empty list (unordered / DC) is pre-interned as id [0]. *)

val id_of_cols : t -> Colref.t list -> int
(** Interns the list (which must already be canonical — the table does not
    normalize) and returns its dense id.  O(length) on a hit, one insert on
    a miss. *)

val cols_of_id : t -> int -> Colref.t list
(** The list behind an id previously returned by {!id_of_cols}. O(1). *)

val size : t -> int
(** Number of distinct lists interned. *)
