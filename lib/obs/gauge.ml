type t = {
  name : string;
  mutable value : float;
  mutable is_set : bool;
}

let make name = { name; value = 0.0; is_set = false }

let name t = t.name

let set t v =
  if !Control.on then begin
    t.value <- v;
    t.is_set <- true
  end

let value t = t.value

let is_set t = t.is_set

let reset t =
  t.value <- 0.0;
  t.is_set <- false
