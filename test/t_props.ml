(* Equivalence classes, order and partition properties, interestingness. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

let equiv_tests =
  [
    t "reflexive repr" (fun () ->
        Alcotest.(check bool) "self" true
          (O.Colref.equal (O.Equiv.repr O.Equiv.empty (cr 0 "a")) (cr 0 "a")));
    t "add_eq links classes" (fun () ->
        let e = O.Equiv.add_eq O.Equiv.empty (cr 0 "a") (cr 1 "b") in
        Alcotest.(check bool) "same" true (O.Equiv.same e (cr 0 "a") (cr 1 "b"));
        Alcotest.(check bool) "other" false (O.Equiv.same e (cr 0 "a") (cr 2 "c")));
    t "transitivity" (fun () ->
        let e =
          O.Equiv.add_eq
            (O.Equiv.add_eq O.Equiv.empty (cr 0 "a") (cr 1 "b"))
            (cr 1 "b") (cr 2 "c")
        in
        Alcotest.(check bool) "transitive" true (O.Equiv.same e (cr 0 "a") (cr 2 "c")));
    t "merge unions relations" (fun () ->
        let e1 = O.Equiv.add_eq O.Equiv.empty (cr 0 "a") (cr 1 "b") in
        let e2 = O.Equiv.add_eq O.Equiv.empty (cr 1 "b") (cr 2 "c") in
        let m = O.Equiv.merge e1 e2 in
        Alcotest.(check bool) "merged" true (O.Equiv.same m (cr 0 "a") (cr 2 "c")));
    t "of_preds picks up equality joins only" (fun () ->
        let e =
          O.Equiv.of_preds
            [
              O.Pred.Eq_join (cr 0 "a", cr 1 "b");
              O.Pred.Local_cmp (cr 2 "c", O.Pred.Eq, 5.0);
            ]
        in
        Alcotest.(check bool) "joined" true (O.Equiv.same e (cr 0 "a") (cr 1 "b")));
    t "normalize_cols drops equivalent duplicates" (fun () ->
        let e = O.Equiv.add_eq O.Equiv.empty (cr 0 "a") (cr 1 "b") in
        Alcotest.(check int) "deduped" 1
          (List.length (O.Equiv.normalize_cols e [ cr 0 "a"; cr 1 "b" ])));
  ]

let mk kind cols = O.Order_prop.make kind cols

let order_tests =
  [
    t "empty order rejected" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Order_prop.make: empty column list")
          (fun () -> ignore (mk O.Order_prop.Ordering [])));
    t "grouping canonicalizes as a sorted set" (fun () ->
        let a = mk O.Order_prop.Grouping [ cr 1 "b"; cr 0 "a" ] in
        let b = mk O.Order_prop.Grouping [ cr 0 "a"; cr 1 "b" ] in
        Alcotest.(check bool) "equal" true (O.Order_prop.equal_under O.Equiv.empty a b));
    t "ordering is sequence-sensitive" (fun () ->
        let a = mk O.Order_prop.Ordering [ cr 1 "b"; cr 0 "a" ] in
        let b = mk O.Order_prop.Ordering [ cr 0 "a"; cr 1 "b" ] in
        Alcotest.(check bool) "not equal" false (O.Order_prop.equal_under O.Equiv.empty a b));
    t "equality modulo equivalence" (fun () ->
        let e = O.Equiv.add_eq O.Equiv.empty (cr 0 "a") (cr 1 "b") in
        let a = mk O.Order_prop.Join_key [ cr 0 "a" ] in
        let b = mk O.Order_prop.Join_key [ cr 1 "b" ] in
        Alcotest.(check bool) "equal under equiv" true (O.Order_prop.equal_under e a b);
        Alcotest.(check bool) "not without" false (O.Order_prop.equal_under O.Equiv.empty a b));
    t "satisfied_by prefix" (fun () ->
        let want = mk O.Order_prop.Ordering [ cr 0 "a" ] in
        Alcotest.(check bool) "prefix" true
          (O.Order_prop.satisfied_by O.Equiv.empty want [ cr 0 "a"; cr 0 "b" ]);
        Alcotest.(check bool) "not prefix" false
          (O.Order_prop.satisfied_by O.Equiv.empty want [ cr 0 "b"; cr 0 "a" ]);
        Alcotest.(check bool) "unordered plan" false
          (O.Order_prop.satisfied_by O.Equiv.empty want []));
    t "grouping satisfied by any permutation prefix" (fun () ->
        let want = mk O.Order_prop.Grouping [ cr 0 "a"; cr 0 "b" ] in
        Alcotest.(check bool) "ab" true
          (O.Order_prop.satisfied_by O.Equiv.empty want [ cr 0 "a"; cr 0 "b"; cr 0 "c" ]);
        Alcotest.(check bool) "ba" true
          (O.Order_prop.satisfied_by O.Equiv.empty want [ cr 0 "b"; cr 0 "a" ]);
        Alcotest.(check bool) "a-c" false
          (O.Order_prop.satisfied_by O.Equiv.empty want [ cr 0 "a"; cr 0 "c" ]));
    t "covers: prefix subsumption for ordering" (fun () ->
        let base = mk O.Order_prop.Join_key [ cr 0 "a" ] in
        let candidate = mk O.Order_prop.Ordering [ cr 0 "a"; cr 0 "b" ] in
        Alcotest.(check bool) "covers" true
          (O.Order_prop.covers O.Equiv.empty ~base ~candidate);
        let not_cand = mk O.Order_prop.Ordering [ cr 0 "b"; cr 0 "a" ] in
        Alcotest.(check bool) "no" false (O.Order_prop.covers O.Equiv.empty ~base ~candidate:not_cand));
    t "covers: set subsumption for grouping" (fun () ->
        let base = mk O.Order_prop.Join_key [ cr 0 "b" ] in
        let candidate = mk O.Order_prop.Grouping [ cr 0 "a"; cr 0 "b" ] in
        (* b is not a *prefix* of the grouping but is a member of its set. *)
        Alcotest.(check bool) "set covers" true
          (O.Order_prop.covers O.Equiv.empty ~base ~candidate));
    t "insert_dedup merges kinds" (fun () ->
        let jk = mk O.Order_prop.Join_key [ cr 0 "a" ] in
        let ob = mk O.Order_prop.Ordering [ cr 0 "a" ] in
        let l = O.Order_prop.insert_dedup O.Equiv.empty jk [ ob ] in
        Alcotest.(check int) "one entry" 1 (List.length l);
        Alcotest.(check bool) "keeps Ordering kind" true
          ((List.hd l).O.Order_prop.kind = O.Order_prop.Ordering));
    t "insert_dedup appends new" (fun () ->
        let a = mk O.Order_prop.Join_key [ cr 0 "a" ] in
        let b = mk O.Order_prop.Join_key [ cr 0 "b" ] in
        Alcotest.(check int) "two" 2 (List.length (O.Order_prop.insert_dedup O.Equiv.empty b [ a ])));
    t "applicable" (fun () ->
        let o = mk O.Order_prop.Join_key [ cr 2 "a" ] in
        Alcotest.(check bool) "in" true (O.Order_prop.applicable ~tables:(Helpers.set [ 1; 2 ]) o);
        Alcotest.(check bool) "out" false (O.Order_prop.applicable ~tables:(Helpers.set [ 0; 1 ]) o));
  ]

let partition_tests =
  [
    t "hash equal as set" (fun () ->
        let a = O.Partition_prop.hash [ cr 0 "a"; cr 0 "b" ] in
        let b = O.Partition_prop.hash [ cr 0 "b"; cr 0 "a" ] in
        Alcotest.(check bool) "equal" true (O.Partition_prop.equal_under O.Equiv.empty a b));
    t "range sequence-sensitive" (fun () ->
        let a = O.Partition_prop.range [ cr 0 "a"; cr 0 "b" ] in
        let b = O.Partition_prop.range [ cr 0 "b"; cr 0 "a" ] in
        Alcotest.(check bool) "not equal" false (O.Partition_prop.equal_under O.Equiv.empty a b));
    t "keyed_on modulo equivalence" (fun () ->
        let e = O.Equiv.add_eq O.Equiv.empty (cr 0 "a") (cr 1 "b") in
        let p = O.Partition_prop.hash [ cr 0 "a" ] in
        Alcotest.(check bool) "keyed" true (O.Partition_prop.keyed_on e p (cr 1 "b"));
        Alcotest.(check bool) "not keyed" false
          (O.Partition_prop.keyed_on O.Equiv.empty p (cr 1 "b")));
    t "of_spec lifts to quantifier" (fun () ->
        let p = O.Partition_prop.of_spec ~q:3 (Qopt_catalog.Partition_spec.hash [ "x" ]) in
        Alcotest.(check bool) "colref" true
          (O.Colref.equal (List.hd p.O.Partition_prop.keys) (cr 3 "x")));
  ]

(* Interesting-property derivation on a 3-table chain with ORDER BY and
   GROUP BY. *)
let block = Helpers.chain ~order_by:true ~group_by:true 3

let interesting_tests =
  [
    t "orders_for_table: join keys + groupby + orderby" (fun () ->
        let orders = O.Interesting.orders_for_table block 0 in
        (* t0: Join_key j1, Grouping j2, Ordering v. *)
        Alcotest.(check int) "three" 3 (List.length orders));
    t "orders_for_table: middle table has two join-key uses, one value" (fun () ->
        let orders = O.Interesting.orders_for_table block 1 in
        (* t1.j1 appears in two predicates but is one interesting order. *)
        Alcotest.(check int) "one" 1 (List.length orders));
    t "join key retires once its predicates are internal" (fun () ->
        let equiv = O.Equiv.of_preds block.O.Query_block.preds in
        let jk = mk O.Order_prop.Join_key [ cr 1 "j1" ] in
        Alcotest.(check bool) "live in {0,1}" false
          (O.Interesting.order_retired block equiv ~tables:(Helpers.set [ 0; 1 ]) jk);
        Alcotest.(check bool) "retired in {0,1,2}" true
          (O.Interesting.order_retired block equiv ~tables:(Helpers.set [ 0; 1; 2 ]) jk));
    t "groupby/orderby never retire" (fun () ->
        let equiv = O.Equiv.of_preds block.O.Query_block.preds in
        let g = mk O.Order_prop.Grouping [ cr 0 "j2" ] in
        let o = mk O.Order_prop.Ordering [ cr 0 "v" ] in
        Alcotest.(check bool) "grouping" false
          (O.Interesting.order_retired block equiv ~tables:(O.Query_block.all_tables block) g);
        Alcotest.(check bool) "ordering" false
          (O.Interesting.order_retired block equiv ~tables:(O.Query_block.all_tables block) o));
    t "retirement respects equivalence" (fun () ->
        (* After t0.j1 = t1.j1 is applied in {0,1}, an order on t0.j1 is still
           useful for the future join with t2 through t1.j1's class. *)
        let equiv = O.Equiv.of_preds block.O.Query_block.preds in
        let jk = mk O.Order_prop.Join_key [ cr 0 "j1" ] in
        Alcotest.(check bool) "alive" false
          (O.Interesting.order_retired block equiv ~tables:(Helpers.set [ 0; 1 ]) jk));
    t "partition interesting on future join col" (fun () ->
        let equiv = O.Equiv.of_preds block.O.Query_block.preds in
        let p = O.Partition_prop.hash [ cr 1 "j1" ] in
        Alcotest.(check bool) "interesting in {0,1}" true
          (O.Interesting.partition_interesting block equiv ~tables:(Helpers.set [ 0; 1 ]) p));
    t "partition on grouping columns stays interesting" (fun () ->
        let equiv = O.Equiv.of_preds block.O.Query_block.preds in
        let p = O.Partition_prop.hash [ cr 0 "j2" ] in
        Alcotest.(check bool) "interesting at top" true
          (O.Interesting.partition_interesting block equiv
             ~tables:(O.Query_block.all_tables block) p));
    t "partition on unused column not interesting" (fun () ->
        let equiv = O.Equiv.of_preds block.O.Query_block.preds in
        let p = O.Partition_prop.hash [ cr 1 "pk" ] in
        Alcotest.(check bool) "boring" false
          (O.Interesting.partition_interesting block equiv
             ~tables:(O.Query_block.all_tables block) p));
    t "range partition interesting for orderby prefix" (fun () ->
        let equiv = O.Equiv.of_preds block.O.Query_block.preds in
        let p = O.Partition_prop.range [ cr 0 "v" ] in
        Alcotest.(check bool) "orderby" true
          (O.Interesting.partition_interesting block equiv
             ~tables:(O.Query_block.all_tables block) p));
    t "merge_order over multiple predicates" (fun () ->
        let preds =
          [ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1"); O.Pred.Eq_join (cr 0 "j2", cr 1 "j2") ]
        in
        let equiv = O.Equiv.of_preds preds in
        match O.Interesting.merge_order equiv preds with
        | Some mo -> Alcotest.(check int) "two cols" 2 (List.length mo.O.Order_prop.cols)
        | None -> Alcotest.fail "expected merge order");
    t "merge_order empty for cartesian" (fun () ->
        Alcotest.(check bool) "none" true (O.Interesting.merge_order O.Equiv.empty [] = None));
    t "filter_indexes needs leading-column equality" (fun () ->
        let table =
          Helpers.table ~rows:100.0
            ~indexes:[ Qopt_catalog.Index.make ~name:"iv" [ "v"; "j1" ] ]
            "fi"
        in
        let mk_block preds =
          O.Query_block.make ~name:"fi" ~quantifiers:[ O.Quantifier.make 0 table ] ~preds ()
        in
        Alcotest.(check int) "eq on leading" 1
          (List.length
             (O.Interesting.filter_indexes
                (mk_block [ O.Pred.Local_cmp (cr 0 "v", O.Pred.Eq, 1.0) ])
                0));
        Alcotest.(check int) "range not enough" 0
          (List.length
             (O.Interesting.filter_indexes
                (mk_block [ O.Pred.Local_cmp (cr 0 "v", O.Pred.Le, 1.0) ])
                0));
        Alcotest.(check int) "eq on non-leading" 0
          (List.length
             (O.Interesting.filter_indexes
                (mk_block [ O.Pred.Local_cmp (cr 0 "j1", O.Pred.Eq, 1.0) ])
                0)));
  ]

(* Interesting.orders_for_table now finds join keys through the block's
   adjacency index rather than a scan of every predicate; the inlined
   full-scan reference must produce structurally identical order lists on a
   corpus of block shapes. *)
let orders_for_table_reference block q =
  let join_keys =
    List.filter_map
      (fun p ->
        match O.Pred.join_cols p with
        | Some (l, r) ->
          if l.O.Colref.q = q then Some (O.Order_prop.make Join_key [ l ])
          else if r.O.Colref.q = q then Some (O.Order_prop.make Join_key [ r ])
          else None
        | None -> None)
      block.O.Query_block.preds
  in
  let grouping =
    match
      List.filter
        (fun (c : O.Colref.t) -> c.O.Colref.q = q)
        block.O.Query_block.group_by
    with
    | [] -> []
    | cols -> [ O.Order_prop.make Grouping cols ]
  in
  let ordering =
    let rec prefix = function
      | (c : O.Colref.t) :: rest when c.O.Colref.q = q -> c :: prefix rest
      | _ :: _ | [] -> []
    in
    match prefix block.O.Query_block.order_by with
    | [] -> []
    | cols -> [ O.Order_prop.make Ordering cols ]
  in
  List.fold_left
    (fun acc o -> O.Order_prop.insert_dedup O.Equiv.empty o acc)
    []
    (join_keys @ grouping @ ordering)

let orders_for_table_diff =
  t "orders_for_table matches the full-predicate-scan reference" (fun () ->
      let module W = Qopt_workloads in
      let corpus =
        [
          Helpers.chain 2; Helpers.chain ~extra:2 5;
          Helpers.chain ~order_by:true ~group_by:true 6; Helpers.star_block 6;
        ]
        @ List.map
            (fun (q : W.Workload.query) -> q.W.Workload.block)
            (W.Synthetic.cycle ~partitioned:false).W.Workload.queries
      in
      List.iter
        (fun (block : O.Query_block.t) ->
          for q = 0 to O.Query_block.n_quantifiers block - 1 do
            let expected = orders_for_table_reference block q in
            let actual = O.Interesting.orders_for_table block q in
            if expected <> actual then
              Alcotest.failf "%s q%d: order lists diverge"
                block.O.Query_block.name q
          done)
        corpus)

let suite =
  equiv_tests @ order_tests @ partition_tests @ interesting_tests
  @ [ orders_for_table_diff ]
