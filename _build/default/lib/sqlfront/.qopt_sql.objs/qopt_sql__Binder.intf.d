lib/sqlfront/binder.mli: Ast Qopt_catalog Qopt_optimizer
