(** Expository artifacts reproduced as executable checks:

    [tab2] — the property-propagation classification (Table 2), printed
    from the live {!O.Join_method} definitions.

    [fig3] — the Figure 3 example: a 3-way join has 4 joins whichever way
    you count, yet adding an ORDER BY changes the number of generated
    plans (the paper's MEMO illustration shows 12 vs 15) — the core
    argument for counting plans instead of joins. *)

module O = Qopt_optimizer
module C = Qopt_catalog
module Tablefmt = Qopt_util.Tablefmt

let run_tab2 () =
  let t =
    Tablefmt.create ~title:"tab2: property propagation classification"
      [
        ("join method", Tablefmt.Left);
        ("order", Tablefmt.Left);
        ("partition", Tablefmt.Left);
      ]
  in
  let prop_name = function
    | O.Join_method.Full -> "full"
    | O.Join_method.Partial -> "partial"
    | O.Join_method.None_ -> "none"
  in
  List.iter
    (fun m ->
      Tablefmt.add_row t
        [
          O.Join_method.to_string m;
          prop_name (O.Join_method.order_propagation m);
          prop_name (O.Join_method.partition_propagation m);
        ])
    O.Join_method.all;
  Tablefmt.print t

let fig3_block ~orderby =
  let table name =
    C.Table.make ~rows:10_000.0 ~name
      [
        C.Column.make ~rows:10_000.0 ~distinct:5_000.0 "c1";
        C.Column.make ~rows:10_000.0 ~distinct:500.0 "c2";
      ]
  in
  let quantifiers =
    List.mapi (fun i t -> O.Quantifier.make i t) [ table "a"; table "b"; table "c" ]
  in
  let preds =
    [
      O.Pred.Eq_join (O.Colref.make 0 "c1", O.Colref.make 1 "c1");
      O.Pred.Eq_join (O.Colref.make 1 "c2", O.Colref.make 2 "c2");
    ]
  in
  O.Query_block.make ~name:"fig3"
    ~order_by:(if orderby then [ O.Colref.make 0 "c2" ] else [])
    ~quantifiers ~preds ()

let run_fig3 () =
  let env = Common.serial in
  let t =
    Tablefmt.create
      ~title:
        "fig3: same 4 joins, different plan counts once ORDER BY A.2 is added \
         (paper's MEMO example: 12 vs 15)"
      [
        ("query", Tablefmt.Left);
        ("joins", Tablefmt.Right);
        ("generated plans", Tablefmt.Right);
        ("estimated plans", Tablefmt.Right);
        ("plans kept", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (label, orderby) ->
      let block = fig3_block ~orderby in
      let r = O.Optimizer.optimize env block in
      let e = Cote.Estimator.estimate env block in
      Tablefmt.add_row t
        [
          label;
          string_of_int r.O.Optimizer.joins;
          string_of_int (O.Memo.counts_total r.O.Optimizer.generated);
          string_of_int (Cote.Estimator.total e);
          string_of_int r.O.Optimizer.kept;
        ])
    [ ("Figure 3(a): no ORDER BY", false); ("Figure 3(b): ORDER BY A.2", true) ];
  Tablefmt.print t
