lib/util/timer.ml: Stats Unix
