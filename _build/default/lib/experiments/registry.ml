type t = {
  id : string;
  title : string;
  run : unit -> unit;
}

let all =
  [
    { id = "tab2"; title = "Table 2: property propagation classes"; run = Tables_exp.run_tab2 };
    { id = "fig3"; title = "Figure 3: joins vs plans example"; run = Tables_exp.run_fig3 };
    { id = "fig2"; title = "Figure 2: compilation time breakdown (real2_s)"; run = Fig2.run };
    { id = "fig4a"; title = "Figure 4(a): estimation overhead, linear_s"; run = Fig4.run_a };
    { id = "fig4b"; title = "Figure 4(b): estimation overhead, real2_s"; run = Fig4.run_b };
    { id = "fig4c"; title = "Figure 4(c): estimation overhead, real1_p"; run = Fig4.run_c };
    { id = "fig5ac"; title = "Figure 5(a-c): plan-count accuracy, star_s"; run = Fig5.run_star };
    { id = "fig5df"; title = "Figure 5(d-f): plan-count accuracy, random_p"; run = Fig5.run_random };
    { id = "fig5gi"; title = "Figure 5(g-i): plan-count accuracy, real1_p"; run = Fig5.run_real1 };
    { id = "fig6a"; title = "Figure 6(a): time estimation, star_s (+ joins-only baseline)"; run = Fig6.run_a };
    { id = "fig6b"; title = "Figure 6(b): time estimation, real1_s"; run = Fig6.run_b };
    { id = "fig6c"; title = "Figure 6(c): time estimation, real2_s"; run = Fig6.run_c };
    { id = "fig6d"; title = "Figure 6(d): time estimation, tpch_p (7 longest)"; run = Fig6.run_d };
    { id = "fig6e"; title = "Figure 6(e): time estimation, random_p"; run = Fig6.run_e };
    { id = "fig6f"; title = "Figure 6(f): time estimation, real1_p"; run = Fig6.run_f };
    { id = "ct"; title = "Section 4: regression coefficients, serial & parallel"; run = Coeffs.run };
    { id = "mem"; title = "Section 6.2: memory-consumption estimation"; run = Memory_exp.run };
    { id = "multilevel"; title = "Section 6.2: multi-level piggyback estimation"; run = Multilevel_exp.run };
    { id = "mop"; title = "Figure 1: meta-optimizer"; run = Mop_exp.run };
    { id = "pilot"; title = "Section 6.1: pilot-pass pruning analysis"; run = Pilot_exp.run };
    { id = "topn"; title = "Extension: the pipelinable property under LIMIT (Table 1)"; run = Topn_exp.run };
    { id = "mv"; title = "Section 6.2: optimization with materialized views"; run = Mv_exp.run };
    { id = "cache"; title = "Section 1.2: statement-cache baseline vs the COTE"; run = Cache_exp.run };
    { id = "abl-sep"; title = "Ablation: separate vs compound property lists"; run = Ablation.run_separate };
    { id = "abl-first"; title = "Ablation: first-join-only propagation"; run = Ablation.run_first_join };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let ids = List.map (fun e -> e.id) all
