lib/experiments/common.mli: Cote Qopt_optimizer Qopt_workloads
