lib/core/accumulate.mli: Qopt_optimizer
