(** Last-value float gauge, sharded per domain slot ({!Shard}).  Each set
    stamps a process-wide write sequence; [value] returns the most recently
    set shard's value, preserving last-write-wins across domains. *)

type t

val make : string -> t

val name : t -> string

val set : t -> float -> unit
(** No-op while {!Control.on} is false. *)

val value : t -> float
(** 0.0 until first set. *)

val is_set : t -> bool

val reset : t -> unit
