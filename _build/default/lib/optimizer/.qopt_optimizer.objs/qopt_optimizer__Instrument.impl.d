lib/optimizer/instrument.ml: Float Format Qopt_util
