lib/catalog/schema.ml: Fkey Format List Map Printf String Table
