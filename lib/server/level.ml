module O = Qopt_optimizer

type chosen = {
  level : Cote.Multi_level.level;
  predicted_s : float;
  prediction : Cote.Predict.prediction;
  downgrades : int;
}

let default_levels =
  [
    { Cote.Multi_level.level_name = "dp_default"; level_knobs = O.Knobs.default };
    {
      Cote.Multi_level.level_name = "dp_left_deep";
      level_knobs = O.Knobs.left_deep;
    };
  ]

let select ~levels ~downgrade_s ~predict =
  match levels with
  | [] -> invalid_arg "Qopt_server.Level.select: empty level chain"
  | first :: rest -> (
    let chosen_at downgrades level =
      let prediction = predict level.Cote.Multi_level.level_knobs in
      { level; predicted_s = prediction.Cote.Predict.seconds; prediction; downgrades }
    in
    let first_choice = chosen_at 0 first in
    match downgrade_s with
    | None -> first_choice
    | Some budget ->
      let rec walk current next i =
        if current.predicted_s <= budget then current
        else
          match next with
          | [] -> current (* cheapest level: degrade, don't refuse *)
          | level :: rest -> walk (chosen_at i level) rest (i + 1)
      in
      walk first_choice rest 1)
