lib/sqlfront/lexer.ml: Format List Printf String
