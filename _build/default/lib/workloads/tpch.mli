(** The TPC-H benchmark workload (Section 5: "we chose from the TPC-H
    benchmark 7 queries that have the longest compilation time").

    The full scale-factor-1 schema (8 tables with the official row counts)
    and the join/grouping/ordering structure of all 22 queries, expressed in
    our SQL subset: multi-block queries appear as main blocks with
    subquery children; aggregate-only details that do not affect join
    enumeration (CASE expressions, arithmetic) are elided. *)

val schema : partitioned:bool -> Qopt_catalog.Schema.t
(** With [~partitioned:true]: lineitem/orders hash-partitioned on orderkey,
    part/partsupp on partkey, customer/supplier on their keys, nation/region
    on a non-join attribute. *)

val all : partitioned:bool -> Workload.t
(** All 22 queries, [tpch_q1] .. [tpch_q22]. *)

val longest :
  ?n:int -> env:Qopt_optimizer.Env.t -> partitioned:bool -> unit -> Workload.t
(** The [n] (default 7) queries with the longest measured compilation time
    in the given environment — the paper's selection criterion. *)
