(** The public one-call API: estimate a query's compilation time.

    Combines the plan-count estimator with a fitted time model — the
    complete COTE of the paper's Figure 1. *)

module O = Qopt_optimizer

type prediction = {
  seconds : float;  (** predicted compilation time *)
  estimate : Estimator.estimate;  (** the underlying plan-count estimate *)
}

val compile_time :
  ?options:Accumulate.options ->
  ?budget:O.Budget.t ->
  ?knobs:O.Knobs.t ->
  model:Time_model.t ->
  O.Env.t ->
  O.Query_block.t ->
  prediction
(** Predicted time to optimize the query at the given level (knobs) in the
    given environment, using a model fitted by {!Calibrate} for that same
    environment.  [budget] caps the underlying estimate pass
    ({!Estimator.estimate}); crossing a cap raises {!O.Budget.Exceeded},
    meaning the DP regime itself is infeasible under that budget. *)
