type t = {
  q : int;
  col : string;
}

let make q col = { q; col }

let equal a b = a.q = b.q && String.equal a.col b.col

let compare a b =
  let c = Int.compare a.q b.q in
  if c <> 0 then c else String.compare a.col b.col

let hash t = Hashtbl.hash (t.q, t.col)

let pp ppf t = Format.fprintf ppf "Q%d.%s" t.q t.col

let list_equal a b = List.length a = List.length b && List.for_all2 equal a b

let list_hash l = List.fold_left (fun acc c -> (acc * 31) + hash c) 17 l

let list_mem x l = List.exists (equal x) l
