(* Workload-analysis progress forecasting (Section 1.1): index/materialized-
   view advisors compile — but never execute — every query of a workload,
   often for hours.  A COTE sweep over the workload costs a few percent of
   that and yields an upfront forecast plus a live progress bar.

     dune exec examples/workload_advisor.exe *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Timer = Qopt_util.Timer

let () =
  let env = O.Env.serial in
  let model =
    Cote.Calibrate.calibrate env
      (List.map
         (fun (q : W.Workload.query) -> q.W.Workload.block)
         (W.Synthetic.calibration ~partitioned:false).W.Workload.queries)
  in
  (* The "tuning workload" the advisor must compile: everything we have. *)
  let workload =
    (W.Warehouse.real2_w ~partitioned:false).W.Workload.queries
    @ (W.Tpch.all ~partitioned:false).W.Workload.queries
    @ (W.Synthetic.star ~partitioned:false).W.Workload.queries
  in
  (* Phase 1: the forecast — estimate every query. *)
  let forecasts, forecast_time =
    Timer.time (fun () ->
        List.map
          (fun (q : W.Workload.query) ->
            (q, Cote.Predict.compile_time ~model env q.W.Workload.block))
          workload)
  in
  let total_forecast =
    List.fold_left (fun acc (_, p) -> acc +. p.Cote.Predict.seconds) 0.0 forecasts
  in
  Format.printf
    "advisor will compile %d queries; forecast: %.2fs of compilation \
     (forecast itself took %.3fs)@.@."
    (List.length workload) total_forecast forecast_time;
  (* Phase 2: the actual compilation pass, with a forecast-driven progress
     indicator. *)
  let done_forecast = ref 0.0 and done_actual = ref 0.0 in
  List.iter
    (fun ((q : W.Workload.query), (p : Cote.Predict.prediction)) ->
      let r = O.Optimizer.optimize env q.W.Workload.block in
      done_forecast := !done_forecast +. p.Cote.Predict.seconds;
      done_actual := !done_actual +. r.O.Optimizer.elapsed;
      let progress = !done_forecast /. total_forecast *. 100.0 in
      if progress > 99.0 || int_of_float progress mod 20 < 3 then
        Format.printf "  [%5.1f%% forecast] %-12s compiled in %.3fs@." progress
          q.W.Workload.q_name r.O.Optimizer.elapsed)
    forecasts;
  Format.printf
    "@.forecast %.2fs vs actual %.2fs (%.1f%% error) — and the forecast was \
     available before compiling anything@."
    total_forecast !done_actual
    (Float.abs (total_forecast -. !done_actual) /. !done_actual *. 100.0)
