lib/optimizer/memo.ml: Array Cardinality Colref Equiv Hashtbl Interesting Join_method List Order_prop Partition_prop Plan Pred Qopt_util Query_block
