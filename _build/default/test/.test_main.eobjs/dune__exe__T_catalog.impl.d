test/t_catalog.ml: Alcotest Float Helpers List Printf Qopt_catalog
