lib/catalog/schema.mli: Fkey Format Table
