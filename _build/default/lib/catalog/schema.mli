(** A database schema: tables plus foreign-key relationships. *)

type t

val empty : t

val add_table : t -> Table.t -> t
(** Raises [Invalid_argument] on duplicate table names. *)

val add_fkey : t -> Fkey.t -> t
(** Raises [Invalid_argument] if either endpoint table or column is
    missing. *)

val of_tables : ?fkeys:Fkey.t list -> Table.t list -> t

val find_table : t -> string -> Table.t
(** Raises [Not_found]. *)

val find_table_opt : t -> string -> Table.t option

val mem_table : t -> string -> bool

val tables : t -> Table.t list
(** In insertion order. *)

val table_names : t -> string list

val fkeys : t -> Fkey.t list

val fkeys_between : t -> string -> string -> Fkey.t list
(** Foreign keys linking the two named tables, in either direction. *)

val pp : Format.formatter -> t -> unit
