lib/workloads/workload.ml: List Qopt_catalog Qopt_optimizer String
