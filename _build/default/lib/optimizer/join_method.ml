type t =
  | NLJN
  | MGJN
  | HSJN

type propagation =
  | Full
  | Partial
  | None_

let all = [ NLJN; MGJN; HSJN ]

let order_propagation = function NLJN -> Full | MGJN -> Partial | HSJN -> None_

let partition_propagation = function NLJN | MGJN | HSJN -> Full

let to_string = function NLJN -> "NLJN" | MGJN -> "MGJN" | HSJN -> "HSJN"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b = a = b
