module O = Qopt_optimizer

type t =
  | L0_greedy
  | L1_left_deep
  | L2_default
  | L3_full_bushy

let all = [ L0_greedy; L1_left_deep; L2_default; L3_full_bushy ]

let name = function
  | L0_greedy -> "L0-greedy"
  | L1_left_deep -> "L1-left-deep"
  | L2_default -> "L2-default"
  | L3_full_bushy -> "L3-full-bushy"

let knobs = function
  | L0_greedy -> invalid_arg "Levels.knobs: greedy level has no DP knobs"
  | L1_left_deep -> O.Knobs.left_deep
  | L2_default -> O.Knobs.default
  | L3_full_bushy -> O.Knobs.full_bushy

let rank = function
  | L0_greedy -> 0
  | L1_left_deep -> 1
  | L2_default -> 2
  | L3_full_bushy -> 3

let subsumed_by a b = rank a <= rank b

let pp ppf t = Format.pp_print_string ppf (name t)
