(** The statement-cache baseline (Section 1.2).

    "One straightforward approach to estimating the compilation time is to
    cache the compilation time for each compiled query in a statement cache
    and use it as an estimate for subsequent similar queries.  However, this
    approach may not work well for a variety of complex ad-hoc queries."

    Queries are keyed by a structural signature (tables, predicate shape,
    grouping/ordering arity, knob-relevant flags); a hit returns the
    recorded compile time, a miss returns nothing — the cache cannot say
    anything about a query it has not compiled. *)

module O = Qopt_optimizer

type t

val create : ?shared:bool -> ?stripes:int -> unit -> t
(** [~shared:true] makes the cache safe to consult and update from
    multiple domains (e.g. under {!Qopt_par.Batch.run_batch} or the
    compile server's worker domains).  A shared cache is {e striped}: the
    key hash picks one of [stripes] (default 8, clamped to [1, 64])
    independently locked tables, so concurrent domains only serialize when
    they hash to the same stripe — [~stripes:1] recovers the old
    single-shared-mutex design, which the contention bench uses as its
    before measurement.  Stripe locks are contention-audited
    {!Qopt_obs.Lock}s under the [lock.stmt_cache.*] family.  Defaults to
    [false]: the unshared cache is one stripe with zero locking
    overhead. *)

val stripes : t -> int
(** Number of stripes (1 for an unshared cache). *)

val signature : O.Query_block.t -> string
(** Structural signature covering the block and its children: sorted base
    table names, join/local predicate column sets, grouping and ordering
    arities, LIMIT presence. *)

val pred_signature : O.Query_block.t -> O.Pred.t -> string
(** Signature of one predicate within its block (literal values
    abstracted — but comparison operators, IN arity and expensive-
    predicate parameters are identity), the per-predicate building block
    of {!signature} — also the envelope labels of {!Plan_cache}. *)

val lookup : t -> ?tag:string -> O.Query_block.t -> float option
(** Recorded compile time for a structurally identical query, if any.
    [?tag] partitions the key space (the server tags with the chosen
    optimization level, so an actual measured at a downgraded level never
    serves a full-level request). *)

val record : t -> ?tag:string -> O.Query_block.t -> float -> unit
(** Store a measured compile time under the same optional [?tag]
    partition as {!lookup}. *)

val refine : t -> ?tag:string -> O.Query_block.t -> model_s:float -> float
(** [refine t block ~model_s]: the recorded actual for a structurally
    identical query when one exists, [model_s] otherwise — the
    estimate-refinement rule shared by the compile server's admission
    path and the fleet router's routing estimate.  Counts as a lookup
    for hit/miss accounting. *)

val size : t -> int

val hits : t -> int
(** Number of successful lookups so far. *)

val misses : t -> int
