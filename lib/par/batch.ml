module O = Qopt_optimizer
module Rng = Qopt_util.Rng

type task =
  | Compile of O.Query_block.t
  | Estimate of O.Query_block.t

type outcome =
  | Compiled of O.Optimizer.result
  | Estimated of Cote.Estimator.estimate

let default_domains () =
  match Sys.getenv_opt "QOPT_DOMAINS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n Pool.max_domains
    | Some _ | None -> 1)

let auto_domains () =
  max 1 (min (Domain.recommended_domain_count ()) Pool.max_domains)

let m_domains = Qopt_obs.Registry.gauge Qopt_obs.Registry.default "batch.domains"

(* splitmix64 finalizer over (seed, index): every task's RNG is a pure
   function of the batch seed and the task's position, so a batch is
   reproducible whatever the domain count or steal order. *)
let task_seed seed i =
  let open Int64 in
  let z = add (of_int seed) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 2)

let map ?domains ?(seed = 0) f items =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  Qopt_obs.Gauge.set m_domains (float_of_int domains);
  let arr = Array.of_list items in
  let out =
    Pool.map_indexed ~domains (Array.length arr) (fun i ->
        f ~rng:(Rng.create (task_seed seed i)) arr.(i))
  in
  Array.to_list out

let run_batch ?domains ?(knobs = O.Knobs.default) env tasks =
  map ?domains
    (fun ~rng:_ task ->
      match task with
      | Compile block -> Compiled (O.Optimizer.optimize env ~knobs block)
      | Estimate block -> Estimated (Cote.Estimator.estimate ~knobs env block))
    tasks

(* ------------------------------------------------------------------ *)
(* Determinism fingerprint                                             *)
(* ------------------------------------------------------------------ *)

(* Every deterministic field of an outcome — everything except wall-clock
   readings (elapsed, breakdown).  Two runs of the same batch must render
   identical fingerprints regardless of domain count. *)
let fingerprint outcomes =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i outcome ->
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf '|';
      (match outcome with
      | Compiled r ->
        Buffer.add_string buf
          (Format.asprintf "C|%s|cost=%.9g|card=%.9g|j=%d|n=%d|m=%d|h=%d|sc=%d|k=%d|e=%d|p=%d|b=%.9g"
             (match r.O.Optimizer.best with
             | None -> "-"
             | Some p -> Format.asprintf "%a" O.Plan.pp_compact p)
             (match r.O.Optimizer.best with
             | None -> 0.0
             | Some p -> p.O.Plan.cost)
             (match r.O.Optimizer.best with
             | None -> 0.0
             | Some p -> p.O.Plan.card)
             r.O.Optimizer.joins r.O.Optimizer.generated.O.Memo.nljn
             r.O.Optimizer.generated.O.Memo.mgjn
             r.O.Optimizer.generated.O.Memo.hsjn r.O.Optimizer.scan_plans
             r.O.Optimizer.kept r.O.Optimizer.entries r.O.Optimizer.pruned
             r.O.Optimizer.memo_bytes)
      | Estimated e ->
        Buffer.add_string buf
          (Printf.sprintf "E|j=%d|n=%d|m=%d|h=%d|sc=%d|e=%d|mp=%.9g|mv=%d"
             e.Cote.Estimator.joins e.Cote.Estimator.nljn
             e.Cote.Estimator.mgjn e.Cote.Estimator.hsjn
             e.Cote.Estimator.scan_plans e.Cote.Estimator.entries
             e.Cote.Estimator.est_memo_plans e.Cote.Estimator.mv_tests));
      Buffer.add_char buf '\n')
    outcomes;
  Buffer.contents buf
