test/t_memo.ml: Alcotest Helpers List Qopt_optimizer Qopt_util
