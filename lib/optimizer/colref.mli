(** References to a column of a specific quantifier (table reference).

    A query joining the same table twice has two quantifiers, so columns are
    identified by quantifier index, not table name. *)

type t = {
  q : int;  (** quantifier index within the query block *)
  col : string;  (** column name in the quantifier's base table *)
}

val make : int -> string -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [Q3.price]. *)

val list_equal : t list -> t list -> bool

val list_hash : t list -> int
(** Order-sensitive hash of a column list, consistent with {!list_equal} —
    the hash function of the property intern table. *)

val list_mem : t -> t list -> bool
