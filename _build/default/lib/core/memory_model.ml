module O = Qopt_optimizer

type report = {
  est_plans : float;
  est_bytes : float;
  actual_plans : int;
  actual_bytes : float;
  estimate_seconds : float;
  optimize_seconds : float;
}

let analyze ?knobs env block =
  let est = Estimator.estimate ?knobs env block in
  let real = O.Optimizer.optimize env ?knobs block in
  {
    est_plans = est.Estimator.est_memo_plans;
    est_bytes = est.Estimator.est_memo_plans *. O.Plan.approx_bytes;
    actual_plans = real.O.Optimizer.kept;
    actual_bytes = real.O.Optimizer.memo_bytes;
    estimate_seconds = est.Estimator.elapsed;
    optimize_seconds = real.O.Optimizer.elapsed;
  }

let would_exceed report ~budget_bytes = report.est_bytes > budget_bytes
