module Bitset = Qopt_util.Bitset
module Obs = Qopt_obs

(* Process-wide enumeration metrics (no-ops unless Qopt_obs is enabled). *)
let m_subsets = Obs.Registry.counter Obs.Registry.default "enumerator.subsets"

let m_pairs = Obs.Registry.counter Obs.Registry.default "enumerator.pairs_considered"

let m_pruned = Obs.Registry.counter Obs.Registry.default "enumerator.pairs_pruned"

let m_joins = Obs.Registry.counter Obs.Registry.default "enumerator.joins_feasible"

type join_event = {
  left : Memo.entry;
  right : Memo.entry;
  result : Memo.entry;
  preds : Pred.t list;
  cartesian : bool;
  left_outer_ok : bool;
  right_outer_ok : bool;
}

type consumer = {
  on_entry : Memo.entry -> unit;
  on_join : join_event -> unit;
}

let direction_feasible ~knobs ~block ~outer ~inner =
  let quant q = Query_block.quantifier block q in
  (* Composite-inner limit / left-deep shape. *)
  let inner_size = Bitset.cardinal inner in
  (if knobs.Knobs.left_deep_only then inner_size = 1
   else
     match knobs.Knobs.max_inner with
     | None -> true
     | Some k -> inner_size <= k)
  (* Every quantifier of the outer must allow the role. *)
  && Bitset.for_all (fun q -> (quant q).Quantifier.outer_allowed) outer
  (* The outer cannot need correlation values produced by the inner. *)
  && Bitset.for_all
       (fun q -> Bitset.disjoint (quant q).Quantifier.deps inner)
       outer
  (* A null-producing side cannot be the outer against its preserved side. *)
  && List.for_all
       (fun oj ->
         not
           ((not (Bitset.disjoint outer oj.Query_block.oj_null))
           && not (Bitset.disjoint inner oj.Query_block.oj_preserved)))
       block.Query_block.outer_joins

(* A composite is valid once every correlated quantifier inside it has all
   its providers inside as well (singletons are always valid leaves). *)
let union_valid block union =
  Bitset.for_all
    (fun q ->
      Bitset.subset (Query_block.quantifier block q).Quantifier.deps union)
    union

let run ~knobs ~card_of memo consumer =
  let block = Memo.block memo in
  let stats = Memo.stats memo in
  let n = Query_block.n_quantifiers block in
  (* Leaf entries. *)
  for q = 0 to n - 1 do
    let entry, created = Memo.find_or_create memo (Bitset.singleton q) in
    if created then begin
      Obs.Counter.incr m_subsets;
      consumer.on_entry entry
    end
  done;
  let full_scan = knobs.Knobs.allow_cartesian in
  let card1 = knobs.Knobs.card1_cartesian in
  let card1_max = knobs.Knobs.card1_max_size in
  let card1_thresh = knobs.Knobs.card1_threshold in
  for size = 2 to n do
    for lsize = 1 to size / 2 do
      let rsize = size - lsize in
      Memo.iter_entries_of_size memo lsize (fun (s : Memo.entry) ->
          (* The adjacency gate: a pair is skipped before any per-pair work
             (or metrics) when it is structurally unable to join — the
             symmetric duplicate of an equal-size split, an overlapping
             right-hand side, or a right-hand side disjoint from the left's
             join-graph neighborhood that no cartesian knob admits.  The
             card-1 escape uses the same cached [card_of] the old check
             consulted, so the gate is exact: every pair it admits runs the
             full check below unchanged, and every pair it skips is one the
             naive loop would have rejected — the enumerated join set is
             bit-for-bit the naive loop's. *)
          let neigh = Memo.neighborhood memo s in
          let s_card1 =
            lazy
              (card1
              && Bitset.cardinal s.Memo.tables <= card1_max
              && card_of s <= card1_thresh)
          in
          Memo.iter_entries_of_size memo rsize (fun (l : Memo.entry) ->
              if
                (lsize <> rsize
                || Bitset.compare s.Memo.tables l.Memo.tables < 0)
                && Bitset.disjoint s.Memo.tables l.Memo.tables
                && ((not (Bitset.disjoint l.Memo.tables neigh))
                   || full_scan || Lazy.force s_card1
                   || (card1
                      && Bitset.cardinal l.Memo.tables <= card1_max
                      && card_of l <= card1_thresh))
              then begin
                Obs.Counter.incr m_pairs;
                let feasible = ref false in
                let union = Bitset.union s.Memo.tables l.Memo.tables in
                if union_valid block union then begin
                  let preds =
                    Query_block.crossing_preds block s.Memo.tables l.Memo.tables
                  in
                  let cartesian = preds = [] in
                  let cartesian_ok =
                    (not cartesian)
                    || knobs.Knobs.allow_cartesian
                    || (knobs.Knobs.card1_cartesian
                       && ((Bitset.cardinal s.Memo.tables
                            <= knobs.Knobs.card1_max_size
                           && card_of s <= knobs.Knobs.card1_threshold)
                          || (Bitset.cardinal l.Memo.tables
                              <= knobs.Knobs.card1_max_size
                             && card_of l <= knobs.Knobs.card1_threshold)))
                  in
                  if cartesian_ok then begin
                    let left_outer_ok =
                      direction_feasible ~knobs ~block ~outer:s.Memo.tables
                        ~inner:l.Memo.tables
                    in
                    let right_outer_ok =
                      direction_feasible ~knobs ~block ~outer:l.Memo.tables
                        ~inner:s.Memo.tables
                    in
                    if left_outer_ok || right_outer_ok then begin
                      feasible := true;
                      Obs.Counter.incr m_joins;
                      let result, created = Memo.find_or_create memo union in
                      if created then begin
                        Obs.Counter.incr m_subsets;
                        consumer.on_entry result
                      end;
                      stats.Memo.joins_enumerated <-
                        stats.Memo.joins_enumerated + 1;
                      consumer.on_join
                        {
                          left = s;
                          right = l;
                          result;
                          preds;
                          cartesian;
                          left_outer_ok;
                          right_outer_ok;
                        }
                    end
                  end
                end;
                if not !feasible then Obs.Counter.incr m_pruned
              end))
    done
  done
