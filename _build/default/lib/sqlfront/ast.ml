type literal =
  | Num of float
  | Str of string

type col = {
  c_table : string option;
  c_name : string;
}

type cmp =
  | Eq
  | Lt
  | Le
  | Gt
  | Ge

type condition =
  | Cmp_cols of col * cmp * col
  | Cmp_lit of col * cmp * literal
  | In_list of col * literal list
  | Exists of select
  | In_subquery of col * select

and table_ref = {
  t_name : string;
  t_alias : string option;
}

and join_kind =
  | Inner
  | Left_outer

and join_clause = {
  j_kind : join_kind;
  j_table : table_ref;
  j_on : condition list;
}

and select = {
  sel_items : sel_item list;
  sel_from : table_ref list;
  sel_joins : join_clause list;
  sel_where : condition list;
  sel_group_by : col list;
  sel_order_by : col list;
  sel_limit : int option;
}

and sel_item =
  | Star
  | Col_item of col
  | Agg of string * col

let col ?table name = { c_table = table; c_name = name }

let pp_col ppf c =
  match c.c_table with
  | None -> Format.pp_print_string ppf c.c_name
  | Some t -> Format.fprintf ppf "%s.%s" t c.c_name

let pp_literal ppf = function
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Format.fprintf ppf "%.0f" f
    else Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "'%s'" s

let cmp_string = function Eq -> "=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let pp_table_ref ppf t =
  match t.t_alias with
  | None -> Format.pp_print_string ppf t.t_name
  | Some a -> Format.fprintf ppf "%s %s" t.t_name a

let rec pp_condition ppf = function
  | Cmp_cols (a, op, b) ->
    Format.fprintf ppf "%a %s %a" pp_col a (cmp_string op) pp_col b
  | Cmp_lit (c, op, l) ->
    Format.fprintf ppf "%a %s %a" pp_col c (cmp_string op) pp_literal l
  | In_list (c, ls) ->
    Format.fprintf ppf "%a IN (%a)" pp_col c
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_literal)
      ls
  | Exists s -> Format.fprintf ppf "EXISTS (%a)" pp_select s
  | In_subquery (c, s) -> Format.fprintf ppf "%a IN (%a)" pp_col c pp_select s

and pp_sel_item ppf = function
  | Star -> Format.pp_print_string ppf "*"
  | Col_item c -> pp_col ppf c
  | Agg (f, c) -> Format.fprintf ppf "%s(%a)" f pp_col c

and pp_select ppf s =
  let sep_comma ppf () = Format.pp_print_string ppf ", " in
  Format.fprintf ppf "SELECT %a FROM %a"
    (Format.pp_print_list ~pp_sep:sep_comma pp_sel_item)
    s.sel_items
    (Format.pp_print_list ~pp_sep:sep_comma pp_table_ref)
    s.sel_from;
  List.iter
    (fun j ->
      Format.fprintf ppf " %s %a ON %a"
        (match j.j_kind with Inner -> "JOIN" | Left_outer -> "LEFT JOIN")
        pp_table_ref j.j_table
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " AND ")
           pp_condition)
        j.j_on)
    s.sel_joins;
  (match s.sel_where with
  | [] -> ()
  | conds ->
    Format.fprintf ppf " WHERE %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " AND ")
         pp_condition)
      conds);
  (match s.sel_group_by with
  | [] -> ()
  | cols ->
    Format.fprintf ppf " GROUP BY %a"
      (Format.pp_print_list ~pp_sep:sep_comma pp_col)
      cols);
  (match s.sel_order_by with
  | [] -> ()
  | cols ->
    Format.fprintf ppf " ORDER BY %a"
      (Format.pp_print_list ~pp_sep:sep_comma pp_col)
      cols);
  match s.sel_limit with
  | None -> ()
  | Some n -> Format.fprintf ppf " LIMIT %d" n

let to_string s = Format.asprintf "%a" pp_select s
