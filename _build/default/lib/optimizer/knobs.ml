type t = {
  allow_cartesian : bool;
  card1_cartesian : bool;
  card1_threshold : float;
  card1_max_size : int;
  max_inner : int option;
  left_deep_only : bool;
}

let default =
  {
    allow_cartesian = false;
    card1_cartesian = true;
    card1_threshold = 1.5;
    card1_max_size = 2;
    max_inner = Some 3;
    left_deep_only = false;
  }

let full_bushy = { default with max_inner = None }

let left_deep =
  { default with left_deep_only = true; max_inner = Some 1; card1_cartesian = true }

let permissive t = { t with allow_cartesian = true; max_inner = None }

let pp ppf t =
  Format.fprintf ppf "knobs(cart=%b card1=%b inner=%s ld=%b)" t.allow_cartesian
    t.card1_cartesian
    (match t.max_inner with None -> "-" | Some k -> string_of_int k)
    t.left_deep_only
