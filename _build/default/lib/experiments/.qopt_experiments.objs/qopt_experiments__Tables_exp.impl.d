lib/experiments/tables_exp.ml: Common Cote List Qopt_catalog Qopt_optimizer Qopt_util
