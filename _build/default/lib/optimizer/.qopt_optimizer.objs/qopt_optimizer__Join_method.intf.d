lib/optimizer/join_method.mli: Format
