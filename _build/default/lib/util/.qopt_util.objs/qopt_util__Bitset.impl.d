lib/util/bitset.ml: Format Hashtbl List Printf Stdlib String
