module Bitset = Qopt_util.Bitset
module Obs = Qopt_obs

(* Process-wide MEMO metrics (no-ops unless Qopt_obs is enabled). *)
let m_entries = Obs.Registry.counter Obs.Registry.default "memo.entries"

let m_inserted = Obs.Registry.counter Obs.Registry.default "memo.plans_inserted"

let m_pruned = Obs.Registry.counter Obs.Registry.default "memo.plans_pruned"

let m_list_len = Obs.Registry.histogram Obs.Registry.default "memo.plan_list_len"

let m_order_len = Obs.Registry.histogram Obs.Registry.default "memo.order_list_len"

type counts = {
  mutable nljn : int;
  mutable mgjn : int;
  mutable hsjn : int;
}

let counts_zero () = { nljn = 0; mgjn = 0; hsjn = 0 }

let counts_total c = c.nljn + c.mgjn + c.hsjn

let counts_get c = function
  | Join_method.NLJN -> c.nljn
  | Join_method.MGJN -> c.mgjn
  | Join_method.HSJN -> c.hsjn

let counts_add c m n =
  match m with
  | Join_method.NLJN -> c.nljn <- c.nljn + n
  | Join_method.MGJN -> c.mgjn <- c.mgjn + n
  | Join_method.HSJN -> c.hsjn <- c.hsjn + n

type saved_plan = {
  sp_plan : Plan.t;
  sp_osig : int;
  sp_pkey : Colref.t list option;
  sp_pint : bool;
  sp_pipe : bool;
}

type entry = {
  tables : Bitset.t;
  mutable saved : saved_plan list;
  mutable card_cache : float option;
  mutable equiv_cache : Equiv.t option;
  mutable app_orders_cache : Order_prop.t list option;
  mutable app_canon_cache : (Order_prop.kind * Colref.t list) list option;
  mutable neigh_cache : Bitset.t option;
  mutable i_orders : Order_prop.t list;
  mutable i_parts : Partition_prop.t list;
  mutable i_pipe : bool;
  mutable propagated_once : bool;
}

type stats = {
  mutable entries_created : int;
  mutable joins_enumerated : int;
  generated : counts;
  mutable scan_plans : int;
  mutable pruned : int;
}

(* Per-size entry storage: a growable array in creation order, so the
   enumerator's inner loops walk a flat array instead of re-materializing a
   [List.rev] of a prepend list on every (size, split) visit. *)
type bucket = {
  mutable items : entry array;
  mutable len : int;
}

let bucket_push b e =
  if b.len = Array.length b.items then begin
    let grown = Array.make (max 8 (2 * Array.length b.items)) e in
    Array.blit b.items 0 grown 0 b.len;
    b.items <- grown
  end;
  b.items.(b.len) <- e;
  b.len <- b.len + 1

type t = {
  blk : Query_block.t;
  tbl : (int, entry) Hashtbl.t;
  by_size : bucket array; (* creation order per size *)
  sts : stats;
}

let create blk =
  let n = Query_block.n_quantifiers blk in
  {
    blk;
    tbl = Hashtbl.create 256;
    by_size = Array.init (n + 1) (fun _ -> { items = [||]; len = 0 });
    sts =
      {
        entries_created = 0;
        joins_enumerated = 0;
        generated = counts_zero ();
        scan_plans = 0;
        pruned = 0;
      };
  }

let block t = t.blk

let stats t = t.sts

let find_opt t set = Hashtbl.find_opt t.tbl (Bitset.to_int set)

let find_or_create t set =
  match find_opt t set with
  | Some e -> (e, false)
  | None ->
    let e =
      {
        tables = set;
        saved = [];
        card_cache = None;
        equiv_cache = None;
        app_orders_cache = None;
        app_canon_cache = None;
        neigh_cache = None;
        i_orders = [];
        i_parts = [];
        i_pipe = false;
        propagated_once = false;
      }
    in
    Hashtbl.add t.tbl (Bitset.to_int set) e;
    bucket_push t.by_size.(Bitset.cardinal set) e;
    t.sts.entries_created <- t.sts.entries_created + 1;
    Obs.Counter.incr m_entries;
    (e, true)

let entries_of_size t k =
  if k < 0 || k >= Array.length t.by_size then []
  else begin
    let b = t.by_size.(k) in
    List.init b.len (fun i -> b.items.(i))
  end

let iter_entries_of_size t k f =
  if k >= 0 && k < Array.length t.by_size then begin
    let b = t.by_size.(k) in
    (* Snapshot the length: entries created by the caller while iterating
       always have a strictly larger size, but freezing [len] keeps the
       traversal independent of that invariant. *)
    let len = b.len in
    for i = 0 to len - 1 do
      f b.items.(i)
    done
  end

let neighborhood t (e : entry) =
  match e.neigh_cache with
  | Some nb -> nb
  | None ->
    let nb =
      Bitset.diff
        (Bitset.fold
           (fun q acc -> Bitset.union acc (Query_block.neighbors t.blk q))
           e.tables Bitset.empty)
        e.tables
    in
    e.neigh_cache <- Some nb;
    nb

let iter_entries f t = Hashtbl.iter (fun _ e -> f e) t.tbl

let n_entries t = Hashtbl.length t.tbl

let equiv_of t e =
  match e.equiv_cache with
  | Some eq -> eq
  | None ->
    let preds =
      List.filter
        (fun p -> Pred.is_join p && Pred.applicable_within p e.tables)
        t.blk.Query_block.preds
    in
    let eq = Equiv.of_preds preds in
    e.equiv_cache <- Some eq;
    eq

let card_of t mode e =
  match e.card_cache with
  | Some c -> c
  | None ->
    let c = Cardinality.of_set mode t.blk e.tables in
    e.card_cache <- Some c;
    c

let applicable_orders t e =
  match e.app_orders_cache with
  | Some l -> l
  | None ->
    let equiv = equiv_of t e in
    let l =
      Bitset.fold
        (fun q acc ->
          List.fold_left
            (fun acc o ->
              if Interesting.order_retired t.blk equiv ~tables:e.tables o then acc
              else Order_prop.insert_dedup equiv o acc)
            acc
            (Interesting.orders_for_table t.blk q))
        e.tables []
    in
    e.app_orders_cache <- Some l;
    l

(* Canonical (equivalence-normalized, groupings sorted) column lists of the
   applicable interesting orders — precomputed so per-plan signatures avoid
   equivalence lookups. *)
let applicable_canon t e =
  match e.app_canon_cache with
  | Some l -> l
  | None ->
    let equiv = equiv_of t e in
    let l =
      List.map
        (fun (o : Order_prop.t) ->
          (o.Order_prop.kind, Order_prop.canonical equiv o))
        (applicable_orders t e)
    in
    e.app_canon_cache <- Some l;
    l

let rec is_prefix want have =
  match (want, have) with
  | [], _ -> true
  | _ :: _, [] -> false
  | w :: want', h :: have' -> Colref.equal w h && is_prefix want' have'

let canon_satisfied kind cols normalized_plan_order =
  match kind with
  | Order_prop.Join_key | Order_prop.Ordering -> is_prefix cols normalized_plan_order
  | Order_prop.Grouping ->
    let k = List.length cols in
    if List.length normalized_plan_order < k then false
    else
      let prefix = List.filteri (fun i _ -> i < k) normalized_plan_order in
      Colref.list_equal (List.sort Colref.compare prefix) cols

let plans e = List.map (fun sp -> sp.sp_plan) e.saved

let best_plan e =
  match e.saved with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best sp ->
           if sp.sp_plan.Plan.cost < best.Plan.cost then sp.sp_plan else best)
         first.sp_plan rest)

let best_pipelinable_plan e =
  List.fold_left
    (fun best sp ->
      if not (Plan.pipelinable sp.sp_plan) then best
      else
        match best with
        | Some (b : Plan.t) when b.Plan.cost <= sp.sp_plan.Plan.cost -> best
        | Some _ | None -> Some sp.sp_plan)
    None e.saved

let best_plan_satisfying t e order =
  let equiv = equiv_of t e in
  let best = ref None in
  List.iter
    (fun sp ->
      if Order_prop.satisfied_by equiv order sp.sp_plan.Plan.order then
        match !best with
        | Some (b : Plan.t) when b.Plan.cost <= sp.sp_plan.Plan.cost -> ()
        | Some _ | None -> best := Some sp.sp_plan)
    e.saved;
  !best

(* The per-plan property signature, computed once at insertion: the set of
   applicable interesting orders the plan satisfies (as a bitmask) and the
   canonical partition key with its interestingness. *)
let signature t e (plan : Plan.t) =
  let equiv = equiv_of t e in
  let normalized = Equiv.normalize_cols equiv plan.Plan.order in
  let osig = ref 0 in
  List.iteri
    (fun i (kind, cols) ->
      if canon_satisfied kind cols normalized then osig := !osig lor (1 lsl i))
    (applicable_canon t e);
  let sp_pkey, sp_pint =
    match plan.Plan.partition with
    | None -> (None, false)
    | Some p ->
      ( Some (Partition_prop.canonical equiv p),
        Interesting.partition_interesting t.blk equiv ~tables:e.tables p )
  in
  let sp_pipe =
    t.blk.Query_block.first_n <> None && Plan.pipelinable plan
  in
  { sp_plan = plan; sp_osig = !osig; sp_pkey; sp_pint; sp_pipe }

(* Dominance on signatures: [a] dominates [b] when it is no more expensive,
   satisfies a superset of the interesting orders [b] satisfies, and carries
   a compatible partition (equal keys when either partition is
   interesting). *)
let dominates a b =
  a.sp_plan.Plan.cost <= b.sp_plan.Plan.cost
  && a.sp_osig land b.sp_osig = b.sp_osig
  && (a.sp_pipe || not b.sp_pipe)
  &&
  match (a.sp_pkey, b.sp_pkey) with
  | None, None -> true
  | Some ka, Some kb ->
    if a.sp_pint || b.sp_pint then Colref.list_equal ka kb else true
  | Some _, None | None, Some _ -> false

let insert_plan t e plan =
  let sp = signature t e plan in
  Obs.Counter.incr m_inserted;
  (if List.exists (fun kept -> dominates kept sp) e.saved then begin
     t.sts.pruned <- t.sts.pruned + 1;
     Obs.Counter.incr m_pruned
   end
   else begin
     let survivors, dropped =
       List.partition (fun kept -> not (dominates sp kept)) e.saved
     in
     t.sts.pruned <- t.sts.pruned + List.length dropped;
     Obs.Counter.add m_pruned (List.length dropped);
     e.saved <- sp :: survivors
   end);
  if !Obs.Control.on then begin
    (* Property-list growth: kept-plan list and interesting-order list
       lengths after this insertion. *)
    Obs.Histo.observe m_list_len (float_of_int (List.length e.saved));
    Obs.Histo.observe m_order_len
      (float_of_int (List.length (applicable_orders t e)))
  end

let kept_plans t =
  let n = ref 0 in
  iter_entries (fun e -> n := !n + List.length e.saved) t;
  !n

let memo_bytes t = float_of_int (kept_plans t) *. Plan.approx_bytes
