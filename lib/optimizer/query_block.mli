(** Query blocks: the unit of join enumeration.

    A query block is a select-project-join expression with optional grouping
    and ordering.  Subqueries appear as child blocks (compiled independently,
    bottom-up, exactly as the paper's Section 3.3 extension to "multiple
    query blocks"); correlation between a child and its parent is modelled by
    quantifier dependency sets inside the parent. *)

module Bitset = Qopt_util.Bitset

type outer_join = {
  oj_preserved : Bitset.t;  (** quantifiers on the row-preserving side *)
  oj_null : Bitset.t;  (** quantifiers on the null-producing side *)
}

type adjacency
(** The precomputed join-graph index: per-quantifier neighbor bitsets plus a
    (quantifier pair -> predicate list) map.  Built by {!make} from the
    quantifiers and predicates; consulted through {!neighbors} and
    {!crossing_preds}.  Functional record updates are safe as long as they
    leave [quantifiers] and [preds] untouched — rebuild through {!make}
    otherwise. *)

type t = {
  name : string;
  quantifiers : Quantifier.t array;
  preds : Pred.t list;
  group_by : Colref.t list;
  order_by : Colref.t list;
  outer_joins : outer_join list;
  children : t list;  (** subquery blocks, compiled separately *)
  first_n : int option;
      (** top-N queries ("LIMIT n"): makes the *pipelinable* property
          interesting (Table 1 of the paper) — plans that can deliver rows
          without a blocking SORT, hash build or TEMP are kept alongside
          cheaper blocking plans *)
  adj : adjacency;  (** join-graph index derived from quantifiers + preds *)
}

val make :
  ?name:string ->
  ?group_by:Colref.t list ->
  ?order_by:Colref.t list ->
  ?outer_joins:outer_join list ->
  ?children:t list ->
  ?first_n:int ->
  quantifiers:Quantifier.t list ->
  preds:Pred.t list ->
  unit ->
  t
(** Validates that predicates and properties reference existing quantifiers
    and columns; raises [Invalid_argument] otherwise. *)

val n_quantifiers : t -> int

val quantifier : t -> int -> Quantifier.t

val all_tables : t -> Bitset.t
(** The set of all quantifier ids. *)

val neighbors : t -> int -> Bitset.t
(** Quantifiers sharing a join predicate with the given quantifier — the
    quantifier's join-graph neighborhood, precomputed at block
    construction. *)

val crossing_preds : t -> Bitset.t -> Bitset.t -> Pred.t list
(** [crossing_preds t s l] is every join predicate with one side in [s] and
    the other in [l], in predicate-list order — equal to filtering [preds]
    with {!Pred.crosses} but via the adjacency index, so the cost scales
    with the edges between [s] and [l] rather than the block's total
    predicate count. *)

val join_preds : t -> Pred.t list

val local_preds : t -> Pred.t list

val column : t -> Colref.t -> Qopt_catalog.Column.t
(** Resolves a column reference to its catalog statistics.  Raises
    [Not_found]. *)

val is_connected : t -> bool
(** Whether the join graph (join predicates as edges) connects all
    quantifiers. *)

val iter_blocks : (t -> unit) -> t -> unit
(** Applies the function to this block and, recursively, all children
    (children first — blocks are compiled bottom-up). *)

val total_quantifiers : t -> int
(** Number of quantifiers summed over this block and all children. *)

val pp : Format.formatter -> t -> unit
