lib/core/stmt_cache.mli: Qopt_optimizer
