(** One managed compile backend: an exec'd [qopt serve] process (or an
    externally started server) behind a single multiplexed connection.

    The router shares one connection per backend across all its client
    requests: {!rpc} remaps each request onto a fresh channel id, a
    dedicated reader thread matches replies back to waiters, and waiters
    sleep on the channel condvar — woken by the reader when their reply
    lands, or by the router watchdog's {!tick} so deadline waits can
    re-check the clock (OCaml's [Condition] has no timed wait).

    Health: a backend is either in rotation (connected) or down.  A
    channel failure never blocks dispatch — {!rpc} reports [Unreachable]
    and the router routes around the backend.  Readmission goes through
    {!try_probe}: at most one prober at a time, only after a cool-down,
    and the backend must answer a stats round trip before re-entering
    rotation; a dead spawned process is reaped and (optionally)
    respawned by the probe. *)

module Srv = Qopt_server

type launch =
  | Spawn of { exe : string; argv : string array }
      (** exec a fresh server process ([Unix.create_process] — safe in
          multi-domain programs, unlike [Unix.fork]) *)
  | External  (** already running; never spawned, reaped, or respawned *)

type spec = { sp_addr : Srv.Server.addr; sp_launch : launch }

type outcome =
  | Reply of Srv.Proto.reply
  | Timeout
      (** deadline passed; the channel stays usable (the late reply is
          dropped by id when it arrives) *)
  | Unreachable
      (** no channel, or it died mid-request — the request was not, or
          may not have been, processed; callers fail over *)

type t

val create : int -> spec -> t
(** Not yet started: out of rotation until {!start} or a probe. *)

val index : t -> int

val addr : t -> Srv.Server.addr

val pid : t -> int option
(** The spawned process id, if this backend was spawned and has not
    been reaped. *)

val is_up : t -> bool

val inflight : t -> int
(** Requests currently awaiting replies here (load-balance signal). *)

val routed : t -> int
(** Compile dispatches ever routed here (affinity observation). *)

val note_routed : t -> unit

val start : ?attempts:int -> t -> bool
(** Spawn (when [Spawn]) and connect, retrying the dial up to
    [attempts] times (default 100, exponential backoff from 20ms capped
    at 250ms — covers a cold server start).  [false] if the backend
    never became reachable. *)

val rpc :
  t -> timeout_s:float -> (int -> Srv.Proto.request) -> outcome
(** [rpc t ~timeout_s mk] allocates a channel id, sends [mk id], and
    waits for the matching reply.  [mk] must put the given id into the
    request — the router's client-facing ids are remapped through it. *)

val tick : t -> unit
(** Watchdog hook: wake the channel's waiters to re-check deadlines. *)

val mark_down : t -> unit
(** Take the backend out of rotation and close its channel; pending
    {!rpc}s observe [Unreachable].  Also reaps an exited spawned
    process.  Idempotent. *)

val try_probe : t -> probe_after_s:float -> respawn:bool -> bool
(** Attempt readmission if the backend has been down at least
    [probe_after_s] and no other probe is running: reap/respawn (when
    [Spawn] and [respawn]), reconnect, and require a stats round trip.
    [true] iff the backend is back in rotation. *)

val shutdown : ?timeout_s:float -> t -> unit
(** Best-effort [Shutdown] request, close the channel, and wait for a
    spawned process to exit — escalating to SIGKILL at [timeout_s]
    (default 5s). *)
