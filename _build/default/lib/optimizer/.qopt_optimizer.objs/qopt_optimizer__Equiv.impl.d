lib/optimizer/equiv.ml: Colref List Map Pred
