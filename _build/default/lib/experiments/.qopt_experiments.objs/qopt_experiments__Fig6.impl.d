lib/experiments/fig6.ml: Common Cote Format List Printf Qopt_optimizer Qopt_util Qopt_workloads
