(** The synthetic workloads of Section 5: [linear] and [star] join graphs.

    Each workload is three batches of five queries; a batch joins the same
    tables (6, 8 or 10) while the number of join predicates per graph edge
    varies from 1 to 5.  Within a batch the set of enumerated joins is
    constant, but the extra predicate columns create additional interesting
    orders — reproducing the paper's point that queries with identical join
    counts generate very different plan counts (Figures 5 and 6(a)).

    Tables use foreign-key-like join columns (selectivity ~1/rows) so that
    intermediate cardinalities stay above the card-1 Cartesian threshold,
    plus low-cardinality secondary join columns for predicates 2..5.
    In the parallel environment every table is hash-partitioned (the first
    table of each batch on its primary join column, the rest alternating
    between join and non-join columns, which exercises both collocated
    joins and the repartitioning heuristic). *)

val max_preds : int
(** 5: join predicates per edge range over 1..[max_preds]. *)

val batch_sizes : int list
(** [[6; 8; 10]]. *)

val linear : partitioned:bool -> Workload.t
(** 15 queries [lin_<n>_p<k>]: tables chained first-to-last.  Each query
    carries an ORDER BY on the head table and a GROUP BY on two columns. *)

val star : partitioned:bool -> Workload.t
(** 15 queries [star_<n>_p<k>]: all satellites join the center table. *)

val cycle : partitioned:bool -> Workload.t
(** 6 queries [cyc_<n>] (n in [batch_sizes], 2 predicate counts): a chain
    closed into a ring — the class whose join count is #P-hard to derive in
    closed form (Section 2.2), handled for free by enumerator reuse. *)

val calibration : partitioned:bool -> Workload.t
(** A mixed training workload (linear, star and cycle shapes at sizes
    disjoint from the evaluation batches: 5, 7 and 9 tables) used to fit the
    time model's coefficients. *)
