(** Experiment [cache]: the statement-cache baseline (Section 1.2).

    The paper dismisses statement caching because it "may not work well for
    a variety of complex ad-hoc queries".  We quantify: on a repetitive
    workload (the same queries re-submitted with different constants) the
    cache is perfect after warm-up; on the ad-hoc random workload every
    signature is new, the cache answers nothing, and only the COTE produces
    estimates. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

let run_workload env (wl : W.Workload.t) ~passes =
  let cache = Cote.Stmt_cache.create () in
  let model = Common.model_for env in
  let cache_pairs = ref [] and cote_pairs = ref [] and answered = ref 0 in
  let total = ref 0 in
  for _ = 1 to passes do
    List.iter
      (fun (q : W.Workload.query) ->
        incr total;
        let actual = (O.Optimizer.optimize env q.W.Workload.block).O.Optimizer.elapsed in
        (match Cote.Stmt_cache.lookup cache q.W.Workload.block with
        | Some cached ->
          incr answered;
          cache_pairs := (actual, cached) :: !cache_pairs
        | None -> ());
        let p = Cote.Predict.compile_time ~model env q.W.Workload.block in
        cote_pairs := (actual, p.Cote.Predict.seconds) :: !cote_pairs;
        Cote.Stmt_cache.record cache q.W.Workload.block actual)
      wl.W.Workload.queries
  done;
  ( !answered,
    !total,
    (match !cache_pairs with [] -> None | pairs -> Some (Stats.mean_abs_pct_error pairs)),
    Stats.mean_abs_pct_error !cote_pairs )

let run () =
  let env = Common.serial in
  let t =
    Tablefmt.create
      ~title:
        "cache: statement-cache baseline vs COTE (paper 1.2: caching fails \
         on ad-hoc queries)"
      [
        ("workload", Tablefmt.Left);
        ("queries", Tablefmt.Right);
        ("cache answered", Tablefmt.Right);
        ("cache err (hits)", Tablefmt.Right);
        ("COTE err (all)", Tablefmt.Right);
      ]
  in
  (* Repetitive: the star workload submitted twice (second pass = same
     statements with different constants — same signatures). *)
  let a, tot, cache_err, cote_err =
    run_workload env (Common.workload env "star") ~passes:2
  in
  Tablefmt.add_row t
    [
      "star x2 (repetitive)";
      string_of_int tot;
      Printf.sprintf "%d (%.0f%%)" a (100.0 *. float_of_int a /. float_of_int tot);
      (match cache_err with None -> "-" | Some e -> Tablefmt.fpct e);
      Tablefmt.fpct cote_err;
    ];
  (* Ad hoc: every random query has a fresh signature. *)
  let a2, tot2, cache_err2, cote_err2 =
    run_workload env (Common.workload env "random") ~passes:1
  in
  Tablefmt.add_row t
    [
      "random (ad hoc)";
      string_of_int tot2;
      Printf.sprintf "%d (%.0f%%)" a2 (100.0 *. float_of_int a2 /. float_of_int tot2);
      (match cache_err2 with None -> "-" | Some e -> Tablefmt.fpct e);
      Tablefmt.fpct cote_err2;
    ];
  Tablefmt.print t;
  Format.printf
    "the cache answers every repeated statement almost perfectly and no \
     ad-hoc statement at all; the COTE answers everything@.@."
