(** Fleet-aware load scenario: mixed tenants, bursty arrivals, optional
    slow start.

    [tenants] concurrent connections each pipeline [bursts] bursts of
    the warehouse mix, with the small/big split jittered per
    (tenant, burst) under a fixed [seed] — so at any moment the fleet
    sees a blend of latency-tier and throughput-tier work from several
    independent queues, rather than one synchronized wave.  With
    [slow_start_s > 0], tenant [i] holds off [i * slow_start_s] seconds
    before connecting (and dials with retries), modelling clients that
    arrive while backends are still warming up.

    Deterministic under a fixed config: the per-tenant RNG is a local
    LCG, never the global [Random] state. *)

module Srv = Qopt_server

type config = {
  tenants : int;  (** concurrent client connections *)
  bursts : int;  (** pipelined bursts per tenant *)
  smalls : int;  (** base small-query count per burst (jittered) *)
  bigs : int;  (** base big-join count per burst (jittered) *)
  pause_s : float;  (** idle gap between a tenant's bursts *)
  slow_start_s : float;  (** per-tenant connect stagger *)
  seed : int;
}

val default_config : config
(** 4 tenants x 3 bursts of ~24 smalls + ~2 bigs, 20ms pauses, no slow
    start, seed 42. *)

val run : config -> addr:Srv.Server.addr -> Srv.Loadgen.summary
(** Run every tenant to completion against [addr] (a fleet router or a
    single server — the wire protocol is identical) and aggregate all
    bursts into one {!Srv.Loadgen.summary}. *)
