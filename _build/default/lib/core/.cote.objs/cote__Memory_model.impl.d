lib/core/memory_model.ml: Estimator Qopt_optimizer
