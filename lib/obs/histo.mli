(** Log-scale histogram with approximate quantiles.

    Values are bucketed at four buckets per octave (relative resolution
    ~19%) over [2^-32, 2^32]; non-positive values land in a dedicated
    underflow bucket.  Exact [count], [sum], [min] and [max] are kept on
    the side, so means are exact and only quantiles are approximate.

    Observations are sharded per domain slot ({!Shard}); the accessors
    merge the shards (bucket-wise sums, min of mins, …), so a merged batch
    reading equals a serial run's reading over the same observations. *)

type t

val make : string -> t

val name : t -> string

val observe : t -> float -> unit
(** No-op while {!Control.on} is false. *)

val count : t -> int

val sum : t -> float

val min_value : t -> float
(** [nan] when empty. *)

val max_value : t -> float
(** [nan] when empty. *)

val mean : t -> float
(** [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: the representative value of the bucket
    holding the rank-[q] observation; [nan] when empty.  Accurate to the
    bucket resolution. *)

val reset : t -> unit
