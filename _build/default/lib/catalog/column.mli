(** Column metadata and statistics. *)

type t = {
  name : string;
  ctype : Col_type.t;
  distinct : float;  (** number of distinct values *)
  null_frac : float;  (** fraction of NULLs, in [0,1] *)
  histogram : Histogram.t;
}

val make :
  ?ctype:Col_type.t ->
  ?distinct:float ->
  ?null_frac:float ->
  ?lo:float ->
  ?hi:float ->
  ?skewed:bool ->
  rows:float ->
  string ->
  t
(** [make ~rows name] builds a column with a synthetic histogram.  [distinct]
    defaults to [rows] (a key-like column); the histogram domain defaults to
    [[0, distinct)]. [skewed] selects a zipfian histogram. *)

val byte_width : t -> int

val pp : Format.formatter -> t -> unit
