module O = Qopt_optimizer

type prediction = {
  seconds : float;
  estimate : Estimator.estimate;
}

let compile_time ?options ?budget ?knobs ~model env block =
  let estimate = Estimator.estimate ?options ?budget ?knobs env block in
  { seconds = Time_model.predict model estimate; estimate }
