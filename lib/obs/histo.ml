let n_buckets = 256

(* Bucket 0 holds non-positive values; buckets 1..255 are log-scale with
   four buckets per octave, centered so bucket of 1.0 sits mid-range. *)
let mid = 128

let sub_per_octave = 4.0

let index_of v =
  if v <= 0.0 then 0
  else
    let i = mid + int_of_float (Float.floor (Float.log2 v *. sub_per_octave)) in
    if i < 1 then 1 else if i > n_buckets - 1 then n_buckets - 1 else i

(* Geometric midpoint of bucket [i]. *)
let representative i =
  if i = 0 then 0.0
  else Float.pow 2.0 ((float_of_int (i - mid) +. 0.5) /. sub_per_octave)

type t = {
  name : string;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let make name =
  {
    name;
    buckets = Array.make n_buckets 0;
    count = 0;
    sum = 0.0;
    min = infinity;
    max = neg_infinity;
  }

let name t = t.name

let observe t v =
  if !Control.on then begin
    let i = index_of v in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v
  end

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then Float.nan else t.min

let max_value t = if t.count = 0 then Float.nan else t.max

let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count

let quantile t q =
  if t.count = 0 then Float.nan
  else begin
    let target =
      let r = int_of_float (Float.ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec walk i cum =
      let cum = cum + t.buckets.(i) in
      if cum >= target || i = n_buckets - 1 then i else walk (i + 1) cum
    in
    let i = walk 0 0 in
    (* Clamp the bucket midpoint to the observed range so single-observation
       and extreme quantiles stay honest. *)
    Float.min t.max (Float.max t.min (representative i))
  end

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity
