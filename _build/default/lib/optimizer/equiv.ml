module Cmap = Map.Make (struct
  type t = Colref.t

  let compare = Colref.compare
end)

type t = Colref.t Cmap.t
(* Parent pointers; absence means the column is its own class. Classes are
   tiny (a handful of join columns), so we skip path compression and keep the
   structure persistent. *)

let empty = Cmap.empty

let rec repr t c =
  match Cmap.find_opt c t with
  | None -> c
  | Some parent -> repr t parent

let add_eq t a b =
  let ra = repr t a and rb = repr t b in
  if Colref.equal ra rb then t
  else if Colref.compare ra rb < 0 then Cmap.add rb ra t
  else Cmap.add ra rb t

let same t a b = Colref.equal (repr t a) (repr t b)

let merge a b =
  (* Replay b's parent edges as equalities into a. *)
  Cmap.fold (fun child parent acc -> add_eq acc child parent) b a

let of_preds preds =
  List.fold_left
    (fun acc p ->
      match Pred.join_cols p with
      | Some (l, r) -> add_eq acc l r
      | None -> acc)
    empty preds

let normalize_cols t cols =
  let rec loop seen acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let r = repr t c in
      if List.exists (Colref.equal r) seen then loop seen acc rest
      else loop (r :: seen) (r :: acc) rest
  in
  loop [] [] cols
