module Bitset = Qopt_util.Bitset
module Table = Qopt_catalog.Table

type t = {
  mv_name : string;
  mv_block : Query_block.t;
  mv_rows : float;
  mv_width : float;
}

let table_name block q =
  (Query_block.quantifier block q).Quantifier.table.Table.name

let define ~name block =
  if Query_block.local_preds block <> [] then
    invalid_arg "Mat_view.define: views must be join-only (no local predicates)";
  if block.Query_block.children <> [] || block.Query_block.group_by <> []
     || block.Query_block.order_by <> []
  then invalid_arg "Mat_view.define: views must be plain join blocks";
  let names =
    List.init (Query_block.n_quantifiers block) (fun q -> table_name block q)
  in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Mat_view.define: duplicate table names (self-joins unsupported)";
  {
    mv_name = name;
    mv_block = block;
    mv_rows = Cardinality.of_set Cardinality.Full block (Query_block.all_tables block);
    mv_width = Cost_model.row_width block (Query_block.all_tables block);
  }

(* A (table name, column) rendering of a join predicate, canonically
   ordered, so predicates compare across blocks with different quantifier
   numbering. *)
let pred_keys block preds =
  List.filter_map
    (fun p ->
      match Pred.join_cols p with
      | None -> None
      | Some (l, r) ->
        let kl = (table_name block l.Colref.q, l.Colref.col) in
        let kr = (table_name block r.Colref.q, r.Colref.col) in
        Some (if kl <= kr then (kl, kr) else (kr, kl)))
    preds

let matches view block tables =
  (* Same base-table multiset (view names are unique, so set equality on
     sorted lists suffices). *)
  let entry_names =
    List.sort String.compare
      (List.map (fun q -> table_name block q) (Bitset.elements tables))
  in
  let view_names =
    List.sort String.compare
      (List.init
         (Query_block.n_quantifiers view.mv_block)
         (fun q -> table_name view.mv_block q))
  in
  entry_names = view_names
  &&
  (* Every view join predicate appears among the entry's internal
     predicates. *)
  let entry_preds =
    pred_keys block
      (List.filter
         (fun p -> Pred.is_join p && Pred.applicable_within p tables)
         block.Query_block.preds)
  in
  List.for_all
    (fun key -> List.mem key entry_preds)
    (pred_keys view.mv_block view.mv_block.Query_block.preds)

let substitute_cost params view =
  let pages = Float.max 1.0 (view.mv_rows *. view.mv_width /. 4096.0) in
  (pages *. params.Cost_model.io_page /. float_of_int params.Cost_model.nodes)
  +. (view.mv_rows *. params.Cost_model.cpu_tuple /. float_of_int params.Cost_model.nodes)

let pp ppf t =
  Format.fprintf ppf "%s over %d tables (%.0f rows)" t.mv_name
    (Query_block.n_quantifiers t.mv_block)
    t.mv_rows
