test/t_cardinality_cost.ml: Alcotest Float Format Helpers List Printf Qopt_catalog Qopt_optimizer Qopt_util
