module J = Qopt_util.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable pending : Proto.reply list;  (* buffered out-of-order, oldest first *)
  mutable next_id : int;
}

let connect addr =
  let fd =
    match addr with
    | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    | `Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd
  in
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    pending = [];
    next_id = 1;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let send t req = Wire.write t.oc (J.to_string (Proto.request_to_json req))

let read_one t =
  match Wire.read t.ic with
  | None -> None
  | Some payload -> (
    match J.parse payload with
    | Error msg -> raise (Wire.Framing_error ("bad reply JSON: " ^ msg))
    | Ok doc -> (
      match Proto.reply_of_json doc with
      | Error msg -> raise (Wire.Framing_error ("bad reply: " ^ msg))
      | Ok reply -> Some reply))

let recv t =
  match t.pending with
  | reply :: rest ->
    t.pending <- rest;
    Some reply
  | [] -> read_one t

let request t req =
  send t req;
  let want = Proto.request_id req in
  let matches r = Proto.reply_id r = want in
  match List.partition matches t.pending with
  | hit :: _, rest ->
    t.pending <- rest;
    Some hit
  | [], _ ->
    let rec wait () =
      match read_one t with
      | None -> None
      | Some r when matches r -> Some r
      | Some r ->
        t.pending <- t.pending @ [ r ];
        wait ()
    in
    wait ()

let close t =
  try Unix.close t.fd with Unix.Unix_error _ -> ()
