lib/mop/levels.ml: Format Qopt_optimizer
