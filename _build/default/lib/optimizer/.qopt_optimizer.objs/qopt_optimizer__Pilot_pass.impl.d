lib/optimizer/pilot_pass.ml: Enumerator Greedy Instrument Knobs List Memo Plan Plan_gen
