lib/optimizer/optimizer.ml: Cost_model Enumerator Equiv Float Instrument Knobs List Memo Option Order_prop Plan Plan_gen Qopt_util Query_block
