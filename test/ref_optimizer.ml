(* Reference optimization driver over [Ref_memo] / [Ref_plan_gen]: the
   naive DPsize loop (the PR 2 oracle, proven join-for-join identical to
   [Enumerator.run]) feeding the reference plan generator, plus verbatim
   copies of [Optimizer.finish] / [topn_adjusted_cost] / [best_for_block]
   and the permissive-retry policy of [Optimizer.optimize_block].  Together
   with the two reference modules this reconstructs the complete pre-
   flattening per-block pipeline, so differential tests can compare whole
   MEMO states — kept-plan multisets, per-method generated counts, chosen
   plans — against the interned hot path. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let crossing_preds (block : O.Query_block.t) s l =
  List.filter (fun p -> O.Pred.crosses p s l) block.O.Query_block.preds

(* The naive DPsize enumeration, retargeted at [Ref_memo]. *)
let run ~(knobs : O.Knobs.t) ~card_of memo (consumer : Ref_plan_gen.consumer) =
  let block = Ref_memo.block memo in
  let stats = Ref_memo.stats memo in
  let n = O.Query_block.n_quantifiers block in
  for q = 0 to n - 1 do
    let entry, created = Ref_memo.find_or_create memo (Bitset.singleton q) in
    if created then consumer.Ref_plan_gen.on_entry entry
  done;
  for size = 2 to n do
    for lsize = 1 to size / 2 do
      let rsize = size - lsize in
      let lefts = Ref_memo.entries_of_size memo lsize in
      let rights = Ref_memo.entries_of_size memo rsize in
      List.iter
        (fun (s : Ref_memo.entry) ->
          List.iter
            (fun (l : Ref_memo.entry) ->
              let dedup_ok =
                lsize <> rsize
                || Bitset.compare s.Ref_memo.tables l.Ref_memo.tables < 0
              in
              if dedup_ok && Bitset.disjoint s.Ref_memo.tables l.Ref_memo.tables
              then begin
                let union = Bitset.union s.Ref_memo.tables l.Ref_memo.tables in
                let union_valid =
                  Bitset.for_all
                    (fun q ->
                      Bitset.subset
                        (O.Query_block.quantifier block q).O.Quantifier.deps
                        union)
                    union
                in
                if union_valid then begin
                  let preds =
                    crossing_preds block s.Ref_memo.tables l.Ref_memo.tables
                  in
                  let cartesian = preds = [] in
                  let cartesian_ok =
                    (not cartesian)
                    || knobs.O.Knobs.allow_cartesian
                    || (knobs.O.Knobs.card1_cartesian
                       && ((Bitset.cardinal s.Ref_memo.tables
                            <= knobs.O.Knobs.card1_max_size
                           && card_of s <= knobs.O.Knobs.card1_threshold)
                          || (Bitset.cardinal l.Ref_memo.tables
                              <= knobs.O.Knobs.card1_max_size
                             && card_of l <= knobs.O.Knobs.card1_threshold)))
                  in
                  if cartesian_ok then begin
                    let left_outer_ok =
                      O.Enumerator.direction_feasible ~knobs ~block
                        ~outer:s.Ref_memo.tables ~inner:l.Ref_memo.tables
                    in
                    let right_outer_ok =
                      O.Enumerator.direction_feasible ~knobs ~block
                        ~outer:l.Ref_memo.tables ~inner:s.Ref_memo.tables
                    in
                    if left_outer_ok || right_outer_ok then begin
                      let result, created = Ref_memo.find_or_create memo union in
                      if created then consumer.Ref_plan_gen.on_entry result;
                      stats.Ref_memo.joins_enumerated <-
                        stats.Ref_memo.joins_enumerated + 1;
                      consumer.Ref_plan_gen.on_join
                        {
                          Ref_plan_gen.left = s;
                          right = l;
                          result;
                          preds;
                          cartesian;
                          left_outer_ok;
                          right_outer_ok;
                        }
                    end
                  end
                end
              end)
            rights)
        lefts
    done
  done

(* --- verbatim copies of the driver's plan-finishing logic --------------- *)

let finish env block (plan : O.Plan.t) =
  let params = O.Cost_model.params env in
  let equiv = O.Equiv.of_preds (O.Query_block.join_preds block) in
  let width = O.Cost_model.row_width block plan.O.Plan.tables in
  let plan =
    match block.O.Query_block.group_by with
    | [] -> plan
    | cols ->
      let grouping = O.Order_prop.make Grouping cols in
      let pre_sorted =
        O.Order_prop.satisfied_by equiv grouping plan.O.Plan.order
      in
      let sort_based =
        if pre_sorted then plan.O.Plan.cost +. (plan.O.Plan.card *. 0.002)
        else
          plan.O.Plan.cost
          +. O.Cost_model.sort params ~rows:plan.O.Plan.card ~width
          +. (plan.O.Plan.card *. 0.002)
      in
      let hash_based = plan.O.Plan.cost +. (plan.O.Plan.card *. 0.004) in
      if sort_based <= hash_based then
        if pre_sorted then { plan with O.Plan.cost = sort_based }
        else
          {
            plan with
            O.Plan.op = O.Plan.Sort plan;
            order = O.Order_prop.canonical equiv grouping;
            cost = sort_based;
          }
      else { plan with O.Plan.op = plan.O.Plan.op; cost = hash_based; order = [] }
  in
  match block.O.Query_block.order_by with
  | [] -> plan
  | cols ->
    let ordering = O.Order_prop.make Ordering cols in
    if O.Order_prop.satisfied_by equiv ordering plan.O.Plan.order then plan
    else
      {
        plan with
        O.Plan.op = O.Plan.Sort plan;
        order = O.Order_prop.canonical equiv ordering;
        cost = plan.O.Plan.cost +. O.Cost_model.sort params ~rows:plan.O.Plan.card ~width;
      }

let topn_adjusted_cost block (p : O.Plan.t) =
  match block.O.Query_block.first_n with
  | None -> p.O.Plan.cost
  | Some n ->
    if O.Plan.pipelinable p then
      let frac = Float.min 1.0 (float_of_int n /. Float.max 1.0 p.O.Plan.card) in
      p.O.Plan.cost *. Float.max 0.05 frac
    else p.O.Plan.cost

let best_for_block env block entry =
  let best = ref None in
  List.iter
    (fun (p : O.Plan.t) ->
      let finished = finish env block p in
      let adjusted = topn_adjusted_cost block finished in
      match !best with
      | Some (_, c) when c <= adjusted -> ()
      | Some _ | None -> best := Some (finished, adjusted))
    (Ref_memo.plans entry);
  Option.map fst !best

(* --- per-block driver with the permissive-retry policy ------------------ *)

type result = {
  memo : Ref_memo.t;
  best : O.Plan.t option;
  joins : int;
  generated : O.Memo.counts;
  scan_plans : int;
  entries : int;
  pruned : int;
}

let run_block ?views env knobs block =
  let memo = Ref_memo.create block in
  let instr = O.Instrument.create () in
  let gen = Ref_plan_gen.create ?views env memo instr in
  run ~knobs ~card_of:(Ref_plan_gen.card_of gen) memo (Ref_plan_gen.consumer gen);
  let stats = Ref_memo.stats memo in
  let top = Ref_memo.find_opt memo (O.Query_block.all_tables block) in
  let best =
    match top with
    | Some entry -> best_for_block env block entry
    | None -> None
  in
  let result =
    {
      memo;
      best;
      joins = stats.Ref_memo.joins_enumerated;
      generated = stats.Ref_memo.generated;
      scan_plans = stats.Ref_memo.scan_plans;
      entries = Ref_memo.n_entries memo;
      pruned = stats.Ref_memo.pruned;
    }
  in
  (result, top <> None)

let add_counts (a : O.Memo.counts) (b : O.Memo.counts) =
  {
    O.Memo.nljn = a.O.Memo.nljn + b.O.Memo.nljn;
    O.Memo.mgjn = a.O.Memo.mgjn + b.O.Memo.mgjn;
    O.Memo.hsjn = a.O.Memo.hsjn + b.O.Memo.hsjn;
  }

let optimize_block ?views env knobs block =
  let result, reached_top = run_block ?views env knobs block in
  if reached_top || O.Query_block.n_quantifiers block <= 1 then result
  else begin
    let retry, _ = run_block ?views env (O.Knobs.permissive knobs) block in
    {
      retry with
      joins = result.joins + retry.joins;
      generated = add_counts result.generated retry.generated;
      scan_plans = result.scan_plans + retry.scan_plans;
      entries = result.entries + retry.entries;
      pruned = result.pruned + retry.pruned;
    }
  end
