lib/util/regression.ml: Array Float
