module O = Qopt_optimizer

type prediction = {
  seconds : float;
  estimate : Estimator.estimate;
}

let compile_time ?options ?knobs ~model env block =
  let estimate = Estimator.estimate ?options ?knobs env block in
  { seconds = Time_model.predict model estimate; estimate }
