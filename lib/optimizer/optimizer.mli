(** The optimization driver.

    Runs full dynamic-programming optimization of a query (all blocks,
    bottom-up), returning the best plan together with everything the
    experiments need: wall-clock time, the Figure 2 breakdown, enumeration
    and plan-generation counters, and MEMO size. *)

type result = {
  best : Plan.t option;  (** best plan of the top block *)
  elapsed : float;  (** wall-clock seconds, all blocks *)
  joins : int;  (** joins enumerated *)
  generated : Memo.counts;  (** join plans generated, before pruning *)
  scan_plans : int;
  kept : int;  (** plans held in the MEMO after pruning *)
  entries : int;
  pruned : int;
  breakdown : Instrument.snapshot;
  memo_bytes : float;
  mv_tests : int;  (** materialized-view matching tests (§6.2) *)
  mv_matches : int;
}

exception Interrupted
(** Raised by {!optimize} / {!optimize_block} when the [interrupt] callback
    returns [true]: the caller (e.g. a compile-service deadline) asked for
    cancellation.  The MEMO built so far is discarded. *)

val optimize_block :
  ?interrupt:(unit -> bool) ->
  ?views:Mat_view.t list ->
  Env.t ->
  Knobs.t ->
  Query_block.t ->
  result
(** Optimizes a single block, ignoring children.  If the knobs leave the top
    table set unreachable (e.g. a disconnected join graph without Cartesian
    products), the block is retried with Cartesian products enabled, as a
    real system would.  [interrupt] is polled between optimizer passes
    (before the first pass and before the permissive retry); when it
    returns [true], {!Interrupted} is raised. *)

val optimize :
  Env.t ->
  ?interrupt:(unit -> bool) ->
  ?knobs:Knobs.t ->
  ?views:Mat_view.t list ->
  Query_block.t ->
  result
(** Optimizes the block and all child blocks bottom-up; counters and times
    are summed, [best] is the top block's plan (with final SORT / GROUP BY
    operators applied).  [knobs] defaults to {!Knobs.default}.  [interrupt]
    (default: never) is polled between optimizer passes — before each
    block's enumeration and before any permissive retry — and raises
    {!Interrupted} when it returns [true]; a request past its deadline is
    cancelled at the next pass boundary rather than hanging to completion. *)
