(* Contention stress for the striped shared caches.  Every invariant here
   is one a torn or lost update would break: exact accounting (hits +
   misses = lookups), no lost updates across domains, the LRU capacity
   bound under concurrent stores, bit-for-bit equality between plans
   served from cache under 4-domain stress and the serial compile, and
   the lock-audit counters reconciling with the traffic that produced
   them. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module P = Qopt_par
module Obs = Qopt_obs

let t name f = Alcotest.test_case name `Quick f

let env = O.Env.serial

(* A hot set small enough that four domains collide on stripes constantly,
   with each block's serially chosen plan as the reference answer. *)
let material =
  lazy
    (let blocks =
       Array.of_list
         (List.concat_map
            (fun wl ->
              List.map
                (fun (q : W.Workload.query) -> q.W.Workload.block)
                (Qopt_experiments.Common.workload env wl).W.Workload.queries)
            [ "linear"; "star" ])
     in
     let plans =
       Array.map
         (fun b ->
           match (O.Optimizer.optimize env b).O.Optimizer.best with
           | Some p -> p
           | None -> Alcotest.fail "corpus block has no plan")
         blocks
     in
     let keys = Array.map Cote.Stmt_cache.signature blocks in
     (blocks, plans, keys))

(* Bit-for-bit plan identity: the compact rendering plus the raw cost
   bits (compare exact, not within epsilon). *)
let plan_bits p =
  Printf.sprintf "%s#%Lx"
    (Format.asprintf "%a" O.Plan.pp_compact p)
    (Int64.bits_of_float p.O.Plan.cost)

type stress = {
  stmt_hit : int;
  stmt_miss : int;
  plan_hit : int;
  plan_miss : int;
  plan_inv : int;
  bad_plan : int;  (* cache hits whose plan or payload differed from serial *)
}

(* The serving-shaped op: one stmt-cache probe-or-record plus one
   plan-cache probe-or-store, against caches shared by all domains.  The
   plan-cache payload is the block index, so a hit can verify it was
   served the entry stored under its own key. *)
let stress ~domains ~stripes ~total () =
  let blocks, plans, keys = Lazy.force material in
  let nb = Array.length blocks in
  let cache = Cote.Stmt_cache.create ~shared:true ~stripes () in
  let pcache = Cote.Plan_cache.create ~shared:true ~stripes () in
  let outcomes =
    P.Pool.map_indexed ~domains total (fun i ->
        let j = i mod nb in
        let s =
          match Cote.Stmt_cache.lookup cache blocks.(j) with
          | Some _ -> `Hit
          | None ->
            Cote.Stmt_cache.record cache blocks.(j) 1e-3;
            `Miss
        in
        let p =
          match Cote.Plan_cache.lookup pcache ~key:keys.(j) blocks.(j) with
          | Cote.Plan_cache.Hit { plan; payload } ->
            if payload = j && String.equal (plan_bits plan) (plan_bits plans.(j))
            then `Hit
            else `Bad
          | Cote.Plan_cache.Miss ->
            Cote.Plan_cache.store pcache ~key:keys.(j) blocks.(j)
              ~plan:plans.(j) j;
            `Miss
          | Cote.Plan_cache.Invalidated _ -> `Inv
        in
        (s, p))
  in
  let tally =
    Array.fold_left
      (fun acc (s, p) ->
        {
          stmt_hit = (acc.stmt_hit + match s with `Hit -> 1 | `Miss -> 0);
          stmt_miss = (acc.stmt_miss + match s with `Hit -> 0 | `Miss -> 1);
          plan_hit = (acc.plan_hit + match p with `Hit -> 1 | _ -> 0);
          plan_miss = (acc.plan_miss + match p with `Miss -> 1 | _ -> 0);
          plan_inv = (acc.plan_inv + match p with `Inv -> 1 | _ -> 0);
          bad_plan = (acc.bad_plan + match p with `Bad -> 1 | _ -> 0);
        })
      {
        stmt_hit = 0;
        stmt_miss = 0;
        plan_hit = 0;
        plan_miss = 0;
        plan_inv = 0;
        bad_plan = 0;
      }
      outcomes
  in
  (cache, pcache, tally)

let check_accounting ~domains ~stripes () =
  let total = 2_000 in
  let blocks, plans, keys = Lazy.force material in
  let nb = Array.length blocks in
  let cache, pcache, y = stress ~domains ~stripes ~total () in
  (* Exact accounting: every lookup landed in exactly one bucket, both as
     seen by the callers and as tallied inside the cache. *)
  Alcotest.(check int) "stmt hits+misses = lookups" total (y.stmt_hit + y.stmt_miss);
  Alcotest.(check int) "stmt cache tallies agree" total
    (Cote.Stmt_cache.hits cache + Cote.Stmt_cache.misses cache);
  Alcotest.(check int)
    "plan hits+misses+invalidations = lookups" total
    (y.plan_hit + y.plan_miss + y.plan_inv + y.bad_plan);
  Alcotest.(check int) "plan cache tallies agree" total
    (Cote.Plan_cache.hits pcache + Cote.Plan_cache.misses pcache
    + Cote.Plan_cache.invalidations pcache);
  (* Stable environment, no stats bumps: nothing may invalidate. *)
  Alcotest.(check int) "no invalidations" 0 y.plan_inv;
  (* Every served hit was the serial plan with the right payload. *)
  Alcotest.(check int) "every hit bit-identical to serial" 0 y.bad_plan;
  (* No lost updates: after the dust settles every key is present, and a
     final probe serves exactly the serially chosen plan. *)
  Array.iteri
    (fun j b ->
      (match Cote.Stmt_cache.lookup cache b with
      | Some v -> Alcotest.(check (float 0.0)) "recorded time survives" 1e-3 v
      | None -> Alcotest.failf "stmt entry %d lost" j);
      match Cote.Plan_cache.lookup pcache ~key:keys.(j) b with
      | Cote.Plan_cache.Hit { plan; payload } ->
        Alcotest.(check int) "payload survives" j payload;
        Alcotest.(check string)
          "plan bit-for-bit" (plan_bits plans.(j)) (plan_bits plan)
      | Cote.Plan_cache.Miss | Cote.Plan_cache.Invalidated _ ->
        Alcotest.failf "plan entry %d lost" j)
    blocks;
  Alcotest.(check int) "stmt cache holds every signature" nb
    (Cote.Stmt_cache.size cache);
  Alcotest.(check int) "plan cache holds every key" nb
    (Cote.Plan_cache.size pcache)

let suite =
  [
    t "4-domain striped stress: accounting, lost updates, plan identity"
      (check_accounting ~domains:4 ~stripes:8);
    t "4-domain single-stripe stress: same invariants on the old design"
      (check_accounting ~domains:4 ~stripes:1);
    t "serial run through the striped cache is deterministic" (fun () ->
        (* At one domain the hit/miss split is exact: first touch of each
           key misses, every revisit hits — stripe count must not matter. *)
        let total = 500 in
        let blocks, _, _ = Lazy.force material in
        let nb = Array.length blocks in
        List.iter
          (fun stripes ->
            let _, _, y = stress ~domains:1 ~stripes ~total () in
            Alcotest.(check int)
              (Printf.sprintf "misses (stripes=%d)" stripes)
              nb y.stmt_miss;
            Alcotest.(check int)
              (Printf.sprintf "hits (stripes=%d)" stripes)
              (total - nb) y.stmt_hit;
            Alcotest.(check int)
              (Printf.sprintf "plan misses (stripes=%d)" stripes)
              nb y.plan_miss)
          [ 1; 8 ]);
    t "concurrent stores never break the LRU capacity bound" (fun () ->
        let blocks, plans, _ = Lazy.force material in
        let capacity = 8 in
        let total = 600 in
        let pcache =
          Cote.Plan_cache.create ~shared:true
            ~config:{ Cote.Plan_cache.slack = 0.5; capacity }
            ()
        in
        (* Distinct key per op: every lookup misses and every store lands
           in a full stripe once warm, so eviction runs constantly under
           four domains. *)
        let (_ : unit array) =
          P.Pool.map_indexed ~domains:4 total (fun i ->
              let key = Printf.sprintf "k%d" i in
              match Cote.Plan_cache.lookup pcache ~key blocks.(0) with
              | Cote.Plan_cache.Hit _ -> ()
              | Cote.Plan_cache.Miss | Cote.Plan_cache.Invalidated _ ->
                Cote.Plan_cache.store pcache ~key blocks.(0) ~plan:plans.(0) ())
        in
        let size = Cote.Plan_cache.size pcache in
        Alcotest.(check bool)
          (Printf.sprintf "size %d <= capacity %d" size capacity)
          true (size <= capacity);
        (* Each stripe evicts exactly on overflow: stores - resident =
           evictions, with no slack for double-frees or lost evictions. *)
        Alcotest.(check int) "evictions reconcile exactly" (total - size)
          (Cote.Plan_cache.evictions pcache);
        Alcotest.(check int) "misses = distinct keys" total
          (Cote.Plan_cache.misses pcache));
    t "lock audit reconciles with the traffic that produced it" (fun () ->
        let reg = Obs.Registry.default in
        let acq () = Obs.Registry.counter_value reg "lock.stmt_cache.acquisitions" in
        let contended () = Obs.Registry.counter_value reg "lock.stmt_cache.contended" in
        let wait = Obs.Registry.histogram reg "lock.stmt_cache.wait_s" in
        let total = 1_000 in
        let a0 = acq () and c0 = contended () and n0 = Obs.Histo.count wait in
        let s0 = Obs.Histo.sum wait in
        Obs.Control.with_enabled true (fun () ->
            let _, _, y = stress ~domains:4 ~stripes:8 ~total () in
            ignore y);
        let da = acq () - a0 and dc = contended () - c0 in
        (* Every op acquires a stmt-cache stripe at least once (the
           lookup), misses acquire again to record. *)
        Alcotest.(check bool)
          (Printf.sprintf "acquisitions %d >= ops %d" da total)
          true (da >= total);
        Alcotest.(check bool) "contended subset of acquisitions" true
          (dc >= 0 && dc <= da);
        (* The wait histogram records one observation per instrumented
           acquire — zero for the uncontended ones — so count tracks
           acquisitions and sum stays finite and non-negative. *)
        Alcotest.(check int) "one wait observation per acquisition" da
          (Obs.Histo.count wait - n0);
        let dw = Obs.Histo.sum wait -. s0 in
        Alcotest.(check bool) "wait sum sane" true (dw >= 0.0 && Float.is_finite dw));
    t "disabled obs leaves the audit untouched" (fun () ->
        let reg = Obs.Registry.default in
        let acq () = Obs.Registry.counter_value reg "lock.stmt_cache.acquisitions" in
        let before = acq () in
        Obs.Control.with_enabled false (fun () ->
            let _, _, y = stress ~domains:2 ~stripes:8 ~total:200 () in
            Alcotest.(check int) "stress still correct" 200
              (y.stmt_hit + y.stmt_miss));
        Alcotest.(check int) "no acquisitions recorded" before (acq ()));
  ]
