module Obs = Qopt_obs

(* ------------------------------------------------------------------ *)
(* Process-wide recalibration metrics (no-ops unless Qopt_obs is on)    *)
(* ------------------------------------------------------------------ *)

let m_observations =
  Obs.Registry.counter Obs.Registry.default "recalib.observations"

let m_refits = Obs.Registry.counter Obs.Registry.default "recalib.refits"

let m_refits_kept =
  Obs.Registry.counter Obs.Registry.default "recalib.refits_kept"

let m_model_error =
  Obs.Registry.gauge Obs.Registry.default "recalib.model_error_pct"

let m_drift_score = Obs.Registry.gauge Obs.Registry.default "recalib.drift_score"

let m_window_size = Obs.Registry.gauge Obs.Registry.default "recalib.window_size"

let m_error_before =
  Obs.Registry.gauge Obs.Registry.default "recalib.error_before_pct"

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  window : int;
  drift_window : int;
  drift_threshold_pct : float;
  min_observations : int;
  min_refit_interval : int;
  decay : float;
  with_join_term : bool;
  ridge : float;
}

let default_config =
  {
    window = 256;
    drift_window = 32;
    drift_threshold_pct = 50.0;
    min_observations = 8;
    min_refit_interval = 8;
    decay = 1.0;
    with_join_term = false;
    ridge = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type sample = {
  s_level : string;
  s_nljn : float;
  s_mgjn : float;
  s_hsjn : float;
  s_joins : float;
  s_elapsed_s : float;
}

let dummy_sample =
  {
    s_level = "";
    s_nljn = 0.0;
    s_mgjn = 0.0;
    s_hsjn = 0.0;
    s_joins = 0.0;
    s_elapsed_s = 0.0;
  }

type t = {
  cfg : config;
  (* The serving model.  Readers (admission, level selection, SJF
     priorities) load it lock-free; a successful refit swaps it whole. *)
  model : Time_model.t Atomic.t;
  lock : Mutex.t;
  samples : sample array;  (* ring of capacity cfg.window *)
  mutable n_samples : int;  (* accepted samples ever; ring head derives *)
  errs : float array;  (* recent relative errors, ring of cfg.drift_window *)
  mutable n_errs : int;  (* errors recorded since the last model swap *)
  mutable since_attempt : int;  (* samples since the last refit attempt *)
  mutable refits : int;  (* attempts that swapped the model *)
  mutable kept : int;  (* attempts that kept the previous model *)
  mutable error_before_pct : float;  (* drift-window mean at the last swap *)
}

type snapshot = {
  sn_model : Time_model.t;
  sn_observations : int;
  sn_window_fill : int;
  sn_refits : int;
  sn_kept : int;
  sn_model_error_pct : float;
  sn_drift_score : float;
  sn_error_before_pct : float;
}

let create ?(config = default_config) ~model () =
  if config.window < 1 then invalid_arg "Recalibrate.create: window < 1";
  if config.drift_window < 1 then
    invalid_arg "Recalibrate.create: drift_window < 1";
  if config.drift_threshold_pct <= 0.0 then
    invalid_arg "Recalibrate.create: drift_threshold_pct <= 0";
  if not (config.decay > 0.0 && config.decay <= 1.0) then
    invalid_arg "Recalibrate.create: decay outside (0, 1]";
  {
    cfg = config;
    model = Atomic.make model;
    lock = Mutex.create ();
    samples = Array.make config.window dummy_sample;
    n_samples = 0;
    errs = Array.make config.drift_window 0.0;
    n_errs = 0;
    (* Allow the very first refit as soon as min_observations is met. *)
    since_attempt = max_int / 2;
    refits = 0;
    kept = 0;
    error_before_pct = 0.0;
  }

let model t = Atomic.get t.model

let config t = t.cfg

(* Drift-window mean of the recent relative errors (percent). *)
let mean_error_locked t =
  let n = min t.n_errs (Array.length t.errs) in
  if n = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      sum := !sum +. t.errs.(i)
    done;
    !sum /. float_of_int n
  end

(* Oldest-first fold over the filled part of the sample ring. *)
let fold_samples_locked t f acc =
  let cap = Array.length t.samples in
  let fill = min t.n_samples cap in
  let first = t.n_samples - fill in
  let acc = ref acc in
  for k = 0 to fill - 1 do
    acc := f t.samples.((first + k) mod cap) ~age:(fill - 1 - k) !acc
  done;
  !acc

(* Weighted least squares via row scaling: multiplying a feature row and
   its target by sqrt(w) makes plain least squares minimize the
   w-weighted residual — so exponential decay is just decay^(age/2) on
   each row before handing the batch to Calibrate.refit. *)
let training_set_locked t =
  let obs =
    fold_samples_locked t
      (fun s ~age acc ->
        let w = if t.cfg.decay >= 1.0 then 1.0 else t.cfg.decay ** float_of_int age in
        let sw = sqrt w in
        {
          Calibrate.obs_nljn = s.s_nljn *. sw;
          obs_mgjn = s.s_mgjn *. sw;
          obs_hsjn = s.s_hsjn *. sw;
          obs_joins = s.s_joins *. sw;
          obs_seconds = s.s_elapsed_s *. sw;
          obs_t_nljn = 0.0;
          obs_t_mgjn = 0.0;
          obs_t_hsjn = 0.0;
        }
        :: acc)
      []
  in
  List.rev obs

let refit_locked t =
  t.since_attempt <- 0;
  let previous = Atomic.get t.model in
  let next =
    Calibrate.refit
      ?ridge:(if t.cfg.ridge > 0.0 then Some t.cfg.ridge else None)
      ~with_join_term:t.cfg.with_join_term ~previous (training_set_locked t)
  in
  if next == previous then begin
    (* Degenerate batch (rank-deficient or empty): the previous model
       keeps serving; the drift window keeps accumulating so a later,
       healthier window can retry. *)
    t.kept <- t.kept + 1;
    Obs.Counter.incr m_refits_kept;
    false
  end
  else begin
    t.error_before_pct <- mean_error_locked t;
    Obs.Gauge.set m_error_before t.error_before_pct;
    Atomic.set t.model next;
    (* The error window measured the old coefficients; clear it so the
       drift statistic restarts against the refitted model. *)
    t.n_errs <- 0;
    t.refits <- t.refits + 1;
    Obs.Counter.incr m_refits;
    Obs.Gauge.set m_model_error 0.0;
    Obs.Gauge.set m_drift_score 0.0;
    true
  end

let observe t ?(level = "") ~nljn ~mgjn ~hsjn ~joins ~predicted_s ~elapsed_s () =
  (* Queries with no join plans at all predict exactly 0 regardless of the
     coefficients — they carry no signal about C_t and would pin the
     relative error at 100%.  Non-positive elapsed has no usable target. *)
  if elapsed_s <= 0.0 || nljn +. mgjn +. hsjn <= 0.0 then false
  else
    Mutex.protect t.lock (fun () ->
        let cap = Array.length t.samples in
        t.samples.(t.n_samples mod cap) <-
          {
            s_level = level;
            s_nljn = nljn;
            s_mgjn = mgjn;
            s_hsjn = hsjn;
            s_joins = joins;
            s_elapsed_s = elapsed_s;
          };
        t.n_samples <- t.n_samples + 1;
        t.since_attempt <- t.since_attempt + 1;
        Obs.Counter.incr m_observations;
        Obs.Gauge.set m_window_size (float_of_int (min t.n_samples cap));
        let err = Float.abs (predicted_s -. elapsed_s) /. elapsed_s *. 100.0 in
        t.errs.(t.n_errs mod Array.length t.errs) <- err;
        t.n_errs <- t.n_errs + 1;
        let mean = mean_error_locked t in
        let score = mean /. t.cfg.drift_threshold_pct in
        Obs.Gauge.set m_model_error mean;
        Obs.Gauge.set m_drift_score score;
        if
          t.n_errs >= t.cfg.min_observations
          && score >= 1.0
          && t.since_attempt >= t.cfg.min_refit_interval
        then refit_locked t
        else false)

let refit_now t = Mutex.protect t.lock (fun () -> refit_locked t)

let snapshot t =
  Mutex.protect t.lock (fun () ->
      {
        sn_model = Atomic.get t.model;
        sn_observations = t.n_samples;
        sn_window_fill = min t.n_samples (Array.length t.samples);
        sn_refits = t.refits;
        sn_kept = t.kept;
        sn_model_error_pct = mean_error_locked t;
        sn_drift_score = mean_error_locked t /. t.cfg.drift_threshold_pct;
        sn_error_before_pct = t.error_before_pct;
      })
