(* The compile fleet: rendezvous-hash routing properties, a router on a
   Unix socket in front of in-process backends (compile replies must
   match a direct single server bit-for-bit on deterministic fields, and
   repeat templates must concentrate on one backend), backend rejections
   surfacing through the router with the original request id, and a
   spawned fleet surviving SIGKILL of its hottest backend mid-stream
   with zero lost requests. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Srv = Qopt_server
module F = Qopt_fleet
module J = Qopt_util.Json
module Obs = Qopt_obs

let t name f = Alcotest.test_case name `Quick f

let schema = W.Warehouse.schema ~partitioned:false

let model = Cote.Time_model.make ~c_nljn:2e-6 ~c_mgjn:5e-6 ~c_hsjn:4e-6 ()

let small_sql n =
  Printf.sprintf "SELECT s.s_store_name FROM store s WHERE s.s_market_id = %d" n

let big_sql =
  String.concat " "
    [
      "SELECT d.d_year, i.i_category_id, SUM(ss.ss_quantity)";
      "FROM store_sales ss, date_dim d, time_dim t, item i, customer c,";
      "household_demographics hd, store s, promotion p";
      "WHERE ss.ss_sold_date_sk = d.d_date_sk";
      "AND ss.ss_sold_time_sk = t.t_time_sk";
      "AND ss.ss_item_sk = i.i_item_sk";
      "AND ss.ss_customer_sk = c.c_customer_sk";
      "AND ss.ss_hdemo_sk = hd.hd_demo_sk";
      "AND ss.ss_store_sk = s.s_store_sk";
      "AND ss.ss_promo_sk = p.p_promo_sk";
      "AND d.d_year = 2000";
      "GROUP BY d.d_year, i.i_category_id";
    ]

(* ------------------------------------------------------------------ *)
(* Rendezvous hashing                                                  *)
(* ------------------------------------------------------------------ *)

let rendezvous_tests =
  [
    t "ranked is deterministic and a permutation" (fun () ->
        List.iter
          (fun key ->
            let r1 = F.Rendezvous.ranked ~nodes:7 key in
            let r2 = F.Rendezvous.ranked ~nodes:7 key in
            Alcotest.(check (list int)) "deterministic" r1 r2;
            Alcotest.(check (list int))
              "permutation of 0..6"
              [ 0; 1; 2; 3; 4; 5; 6 ]
              (List.sort compare r1))
          [ "a"; "warehouse|sel-1"; ""; "x|y|z" ]);
    t "every node owns some keys" (fun () ->
        let owned = Array.make 4 0 in
        for i = 0 to 199 do
          let n = F.Rendezvous.choose ~nodes:4 (Printf.sprintf "key-%d" i) in
          owned.(n) <- owned.(n) + 1
        done;
        Array.iteri
          (fun i c ->
            Alcotest.(check bool)
              (Printf.sprintf "node %d owns a share" i)
              true (c > 0))
          owned);
    t "removing the last node remaps only its keys" (fun () ->
        (* Scores are independent of the node count, so dropping node 4
           must leave every other key's owner unchanged — the
           minimal-disruption property modulo placement lacks. *)
        for i = 0 to 99 do
          let key = Printf.sprintf "stmt-%d" i in
          let before = F.Rendezvous.choose ~nodes:5 key in
          if before <> 4 then
            Alcotest.(check int)
              "owner survives the shrink" before
              (F.Rendezvous.choose ~nodes:4 key)
        done);
    t "choose refuses an empty node set" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Qopt_fleet.Rendezvous.choose: no nodes")
          (fun () -> ignore (F.Rendezvous.choose ~nodes:0 "k")));
  ]

(* ------------------------------------------------------------------ *)
(* Harness: in-process backends behind an in-process router            *)
(* ------------------------------------------------------------------ *)

let next_sock =
  let n = ref 0 in
  fun tag ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "qopt-fleet-%s-%d-%d.sock" tag (Unix.getpid ()) !n)

let start_thread_ready start =
  let lock = Mutex.create () and cond = Condition.create () in
  let ready = ref false in
  let th =
    Thread.create
      (fun () ->
        start (fun () ->
            Mutex.protect lock (fun () ->
                ready := true;
                Condition.signal cond)))
      ()
  in
  Mutex.lock lock;
  while not !ready do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  th

let start_inproc_server ?(configure = fun c -> c) path =
  let cfg =
    configure
      (Srv.Server.default_config ~listen:(`Unix path) ~model
         ~schemas:[ ("warehouse", schema) ]
         ())
  in
  start_thread_ready (fun on_ready -> Srv.Server.run ~on_ready cfg)

(* [n] in-process servers as External backends behind an in-process
   router.  Shutting the router down drains the backends too (its
   Backend.shutdown sends each one a Shutdown request), so all threads
   join. *)
let with_fleet ?(backend_cfg = fun c -> c) ?(configure = fun c -> c) ~n f =
  let bpaths = List.init n (fun i -> next_sock (Printf.sprintf "b%d" i)) in
  let bthreads = List.map (start_inproc_server ~configure:backend_cfg) bpaths in
  let rpath = next_sock "router" in
  let specs =
    List.map
      (fun p -> { F.Backend.sp_addr = `Unix p; sp_launch = F.Backend.External })
      bpaths
  in
  let cfg =
    configure
      (F.Router.default_config ~listen:(`Unix rpath) ~backends:specs ~model
         ~schemas:[ ("warehouse", schema) ]
         ())
  in
  let router = start_thread_ready (fun on_ready -> F.Router.run ~on_ready cfg) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Srv.Client.connect (`Unix rpath) in
         ignore (Srv.Client.request c (Srv.Proto.Shutdown { id = 999_999 }));
         Srv.Client.close c
       with Unix.Unix_error _ | Sys_error _ -> ());
      Thread.join router;
      List.iter Thread.join bthreads;
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (rpath :: bpaths))
    (fun () -> f (`Unix rpath))

let request_exn c req =
  match Srv.Client.request c req with
  | Some reply -> reply
  | None -> Alcotest.fail "connection closed without a reply"

let compile_req id sql =
  Srv.Proto.Compile
    { id; sql; schema = None; deadline_ms = None; estimate_hint_s = None }

let compile_exn c sql =
  let id = Srv.Client.fresh_id c in
  match request_exn c (compile_req id sql) with
  | Srv.Proto.R_compile (rid, body) ->
    Alcotest.(check int) "id echoed" id rid;
    body
  | r ->
    Alcotest.failf "expected compile reply, got %s"
      (J.to_string (Srv.Proto.reply_to_json r))

let counter name = Obs.Registry.counter_value Obs.Registry.default name

(* Per-backend compile counts out of the router's aggregated stats doc
   (each backend entry nests the live server stats). *)
let backend_compiles doc =
  match J.member "backends" doc with
  | Some (J.Arr bs) ->
    List.map
      (fun b ->
        match J.member "stats" b with
        | Some (J.Obj _ as s) ->
          Option.value ~default:0 (Option.bind (J.member "compiles" s) J.get_int)
        | _ -> 0)
      bs
  | _ -> Alcotest.fail "stats doc has no backends array"

(* ------------------------------------------------------------------ *)
(* Router behaviour over the socket                                    *)
(* ------------------------------------------------------------------ *)

let router_tests =
  [
    t "fleet compile equals a direct single server bit-for-bit" (fun () ->
        (* Deterministic reply fields must be unchanged by the extra hop:
           same plan, same costs, same predicted seconds (backends here
           do not trust hints, so they run the same COTE the single
           server runs). *)
        let direct = ref [] in
        let spath = next_sock "direct" in
        let sthread = start_inproc_server spath in
        (try
           let c = Srv.Client.connect (`Unix spath) in
           direct :=
             List.map (fun sql -> compile_exn c sql) [ small_sql 5; big_sql ];
           ignore (Srv.Client.request c (Srv.Proto.Shutdown { id = 999_998 }));
           Srv.Client.close c
         with e ->
           Thread.join sthread;
           raise e);
        Thread.join sthread;
        with_fleet ~n:3 (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                List.iter2
                  (fun sql d ->
                    let f = compile_exn c sql in
                    Alcotest.(check (option string))
                      "plan" d.Srv.Proto.c_plan f.Srv.Proto.c_plan;
                    Alcotest.(check (float 0.0)) "cost" d.Srv.Proto.c_cost
                      f.Srv.Proto.c_cost;
                    Alcotest.(check (float 0.0)) "card" d.Srv.Proto.c_card
                      f.Srv.Proto.c_card;
                    Alcotest.(check int) "joins" d.Srv.Proto.c_joins
                      f.Srv.Proto.c_joins;
                    Alcotest.(check int) "kept" d.Srv.Proto.c_kept
                      f.Srv.Proto.c_kept;
                    Alcotest.(check int) "entries" d.Srv.Proto.c_entries
                      f.Srv.Proto.c_entries;
                    Alcotest.(check (float 0.0))
                      "predicted_s" d.Srv.Proto.c_predicted_s
                      f.Srv.Proto.c_predicted_s;
                    Alcotest.(check string) "level" d.Srv.Proto.c_level
                      f.Srv.Proto.c_level;
                    Alcotest.(check bool) "plan_cached"
                      d.Srv.Proto.c_plan_cached f.Srv.Proto.c_plan_cached)
                  [ small_sql 5; big_sql ]
                  !direct)));
    t "router estimate equals the direct library call" (fun () ->
        with_fleet ~n:2 (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let sql = big_sql in
                let block = Qopt_sql.Binder.parse_and_bind schema sql in
                let d =
                  Cote.Predict.compile_time ~knobs:O.Knobs.default ~model
                    O.Env.serial block
                in
                let id = Srv.Client.fresh_id c in
                match
                  request_exn c (Srv.Proto.Estimate { id; sql; schema = None })
                with
                | Srv.Proto.R_estimate (rid, e) ->
                  Alcotest.(check int) "id echoed" id rid;
                  Alcotest.(check (float 0.0)) "predicted_s"
                    d.Cote.Predict.seconds e.Srv.Proto.e_predicted_s;
                  Alcotest.(check int) "joins"
                    d.Cote.Predict.estimate.Cote.Estimator.joins
                    e.Srv.Proto.e_joins;
                  Alcotest.(check string) "level" "dp_default"
                    e.Srv.Proto.e_level
                | r ->
                  Alcotest.failf "expected estimate reply, got %s"
                    (J.to_string (Srv.Proto.reply_to_json r)))));
    t "template affinity concentrates repeats on one backend" (fun () ->
        with_fleet ~n:3 (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let hits0 = counter "fleet.affinity_hits" in
                let total0 = counter "fleet.affinity_total" in
                (* Same template, varying literal: the statement-cache
                   key is structural, so all 20 share one affinity key. *)
                for i = 1 to 20 do
                  ignore (compile_exn c (small_sql i))
                done;
                (match
                   request_exn c
                     (Srv.Proto.Stats { id = Srv.Client.fresh_id c })
                 with
                | Srv.Proto.R_stats (_, doc) ->
                  let per_backend = backend_compiles doc in
                  Alcotest.(check int) "three backends" 3
                    (List.length per_backend);
                  Alcotest.(check (list int))
                    "all 20 compiles on a single backend" [ 0; 0; 20 ]
                    (List.sort compare per_backend)
                | _ -> Alcotest.fail "expected stats reply");
                Alcotest.(check int)
                  "every routed compile hit its first choice" 20
                  (counter "fleet.affinity_hits" - hits0);
                Alcotest.(check int) "affinity accounted" 20
                  (counter "fleet.affinity_total" - total0))));
    t "backend rejections surface with the original id and retry advice"
      (fun () ->
        with_fleet ~n:2
          ~backend_cfg:(fun cfg ->
            {
              cfg with
              Srv.Server.admission =
                {
                  Srv.Admission.per_request_s = 1e-12;
                  aggregate_s = infinity;
                  max_queue = max_int;
                };
            })
          (fun addr ->
            let c = Srv.Client.connect addr in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let id = Srv.Client.fresh_id c in
                match request_exn c (compile_req id big_sql) with
                | Srv.Proto.R_rejected { id = rid; reason; retry_after_us; _ }
                  ->
                  Alcotest.(check int) "original id" id rid;
                  Alcotest.(check string) "reason" "per_request_budget" reason;
                  Alcotest.(check bool)
                    "per-request rejections carry no retry advice" true
                    (retry_after_us = None)
                | r ->
                  Alcotest.failf "expected rejection, got %s"
                    (J.to_string (Srv.Proto.reply_to_json r)))));
    t "scenario aggregates across tenants against a fleet" (fun () ->
        with_fleet ~n:2 (fun addr ->
            let s =
              F.Scenario.run
                {
                  F.Scenario.tenants = 2;
                  bursts = 2;
                  smalls = 6;
                  bigs = 1;
                  pause_s = 0.0;
                  slow_start_s = 0.0;
                  seed = 7;
                }
                ~addr
            in
            Alcotest.(check bool) "sent something" true (s.Srv.Loadgen.sent > 0);
            Alcotest.(check int)
              "every request compiled" s.Srv.Loadgen.sent
              s.Srv.Loadgen.compiled;
            Alcotest.(check int)
              "latency per compile" s.Srv.Loadgen.compiled
              (Array.length s.Srv.Loadgen.latencies_s)));
  ]

(* ------------------------------------------------------------------ *)
(* SIGKILL failover on a spawned fleet                                 *)
(* ------------------------------------------------------------------ *)

let qopt_exe =
  (* _build/default/test/test_main.exe -> _build/default/bin/qopt.exe *)
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/qopt.exe"

let stats_doc c =
  match request_exn c (Srv.Proto.Stats { id = Srv.Client.fresh_id c }) with
  | Srv.Proto.R_stats (_, doc) -> doc
  | _ -> Alcotest.fail "expected stats reply"

let backend_fields doc =
  match J.member "backends" doc with
  | Some (J.Arr bs) ->
    List.map
      (fun b ->
        ( Option.value ~default:false
            (Option.bind (J.member "up" b) J.get_bool),
          Option.bind (J.member "pid" b) J.get_int,
          Option.value ~default:0 (Option.bind (J.member "routed" b) J.get_int)
        ))
      bs
  | _ -> Alcotest.fail "stats doc has no backends array"

let failover_tests =
  [
    t "SIGKILLed backend fails over with zero lost requests, then respawns"
      (fun () ->
        let bpaths = List.init 3 (fun i -> next_sock (Printf.sprintf "kb%d" i)) in
        let rpath = next_sock "krouter" in
        let specs =
          List.map
            (fun p ->
              {
                F.Backend.sp_addr = `Unix p;
                sp_launch =
                  F.Backend.Spawn
                    {
                      exe = qopt_exe;
                      argv =
                        [|
                          "qopt"; "serve"; "-s"; p; "--workers"; "1";
                          "--trust-hints";
                        |];
                    };
              })
            bpaths
        in
        let cfg =
          {
            (F.Router.default_config ~listen:(`Unix rpath) ~backends:specs
               ~model
               ~schemas:[ ("warehouse", schema) ]
               ())
            with
            F.Router.probe_after_s = 0.05;
          }
        in
        let router =
          start_thread_ready (fun on_ready -> F.Router.run ~on_ready cfg)
        in
        Fun.protect
          ~finally:(fun () ->
            (try
               let c = Srv.Client.connect (`Unix rpath) in
               ignore
                 (Srv.Client.request c (Srv.Proto.Shutdown { id = 999_997 }));
               Srv.Client.close c
             with Unix.Unix_error _ | Sys_error _ -> ());
            Thread.join router;
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              (rpath :: bpaths))
          (fun () ->
            let c = Srv.Client.connect (`Unix rpath) in
            Fun.protect
              ~finally:(fun () -> Srv.Client.close c)
              (fun () ->
                let failovers0 = counter "fleet.failovers" in
                (* Route one compile to find the template's owner. *)
                ignore (compile_exn c (small_sql 1));
                let owner_pid =
                  match
                    List.find_opt
                      (fun (_, _, routed) -> routed > 0)
                      (backend_fields (stats_doc c))
                  with
                  | Some (_, Some pid, _) -> pid
                  | Some (_, None, _) ->
                    Alcotest.fail "owner backend has no pid"
                  | None -> Alcotest.fail "no backend routed the probe compile"
                in
                Unix.kill owner_pid Sys.sigkill;
                (* Pipeline a burst at the now-dead owner: every request
                   must come back compiled via failover — one retry each,
                   never a wedge, never a lost reply. *)
                let ids =
                  List.init 40 (fun _ ->
                      let id = Srv.Client.fresh_id c in
                      Srv.Client.send c (compile_req id (small_sql (id mod 9)));
                      id)
                in
                let got = Hashtbl.create 64 in
                List.iter
                  (fun _ ->
                    match Srv.Client.recv c with
                    | Some (Srv.Proto.R_compile (rid, _)) ->
                      Hashtbl.replace got rid ()
                    | Some r ->
                      Alcotest.failf "expected compile reply, got %s"
                        (J.to_string (Srv.Proto.reply_to_json r))
                    | None -> Alcotest.fail "router closed mid-burst")
                  ids;
                List.iter
                  (fun id ->
                    Alcotest.(check bool)
                      (Printf.sprintf "reply for id %d" id)
                      true (Hashtbl.mem got id))
                  ids;
                Alcotest.(check bool) "at least one failover" true
                  (counter "fleet.failovers" - failovers0 >= 1);
                (* The probe respawns the killed process: all three
                   backends must be back in rotation, the dead one under
                   a fresh pid. *)
                let deadline = Unix.gettimeofday () +. 10.0 in
                let rec wait_respawn () =
                  let fields = backend_fields (stats_doc c) in
                  let all_up = List.for_all (fun (up, _, _) -> up) fields in
                  let pids = List.filter_map (fun (_, pid, _) -> pid) fields in
                  if all_up && List.length pids = 3 then
                    Alcotest.(check bool) "killed pid replaced" false
                      (List.mem owner_pid pids)
                  else if Unix.gettimeofday () > deadline then
                    Alcotest.fail "fleet did not heal within 10s"
                  else begin
                    Thread.delay 0.05;
                    wait_respawn ()
                  end
                in
                wait_respawn ())))
  ]

let suite = rendezvous_tests @ router_tests @ failover_tests
