(** The execution-cost model.

    Cost estimation is deliberately detailed — an iterative buffer-pool
    model, multi-pass external-sort simulation, hash-partition spill
    modelling, and (in parallel mode) skew analysis and communication costs
    — because in real systems "a large amount of time in generating a plan
    is spent on estimating the execution cost" (Section 3.1).  This is
    precisely what makes plan generation dominate compilation time and what
    the COTE bypasses.

    Predicate-dependent quantities (join selectivity from histograms, skew)
    are *logical* per-join properties: they are computed once per enumerated
    join into a {!join_ctx} and shared by every plan of that join, mirroring
    the property caching of Section 3.2.  The per-plan work — the cost
    formulas themselves — is roughly constant per plan and differs by join
    method, which is exactly the premise of the paper's
    [T = T_inst * sum(C_t * P_t)] time model.

    Costs are abstract units roughly proportional to milliseconds of
    execution; only their relative magnitudes matter to plan choice. *)

module Table = Qopt_catalog.Table

type params = {
  io_page : float;
  cpu_tuple : float;
  cpu_cmp : float;
  cpu_hash : float;
  cpu_probe : float;
  buffer_pages : float;
  sort_mem_pages : float;
  net_tuple : float;
  nodes : int;
}

val params : Env.t -> params
(** Default parameters for the environment (nodes from the environment). *)

type join_ctx = {
  matches_per_outer : float;
      (** expected inner matches per outer row, from the join-column
          histograms *)
  skew : float;  (** most-loaded-node factor in parallel mode; 1 in serial *)
}

val join_context :
  params -> Query_block.t -> preds:Pred.t list -> inner_card:float -> join_ctx
(** The per-join logical cost context — computed once per enumerated join
    and direction, not per plan. *)

val seq_scan : params -> Table.t -> float

val index_scan : params -> Table.t -> sel:float -> float
(** Cost of an index scan returning the given fraction of the table. *)

val sort : params -> rows:float -> width:float -> float
(** External-merge sort cost; simulates the merge passes. *)

val row_width : Query_block.t -> Qopt_util.Bitset.t -> float
(** Approximate byte width of a composite row over the table set. *)

val inner_probe_cost :
  params -> Query_block.t -> preds:Pred.t list -> inner_tables:Qopt_util.Bitset.t -> float option
(** Per-probe cost of index nested loops: available when the inner side is a
    single table with an index led by the inner join column. *)

val nljn :
  params ->
  Query_block.t ->
  ctx:join_ctx ->
  probe:float option ->
  ?width_outer:float ->
  ?width_inner:float ->
  ?width_out:float ->
  outer:Plan.t ->
  inner:Plan.t ->
  out_card:float ->
  unit ->
  float

val mgjn :
  params ->
  Query_block.t ->
  ctx:join_ctx ->
  ?width_outer:float ->
  ?width_inner:float ->
  ?width_out:float ->
  outer:Plan.t ->
  inner:Plan.t ->
  out_card:float ->
  sort_outer:bool ->
  sort_inner:bool ->
  unit ->
  float

val hsjn :
  params ->
  Query_block.t ->
  ctx:join_ctx ->
  ?width_inner:float ->
  ?width_out:float ->
  outer:Plan.t ->
  inner:Plan.t ->
  out_card:float ->
  unit ->
  float
(** The three join cost models.  The [?width_*] arguments let the caller
    pass memoized {!row_width} values for the outer / inner / output table
    sets (see [Memo.width_of]); omitted widths are derived from the plans'
    table sets — the same value, recomputed. *)

val repartition : params -> rows:float -> width:float -> float
(** Cost of redistributing rows across the nodes. *)

val broadcast : params -> rows:float -> width:float -> float
(** Cost of replicating rows to every node. *)
