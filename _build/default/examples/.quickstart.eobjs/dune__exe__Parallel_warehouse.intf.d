examples/parallel_warehouse.mli:
