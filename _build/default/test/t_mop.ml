(* The meta-optimizer and optimization levels. *)

module O = Qopt_optimizer
module M = Qopt_mop

let t name f = Alcotest.test_case name `Quick f

let level_tests =
  [
    t "levels ordered by subsumption" (fun () ->
        Alcotest.(check bool) "ld <= default" true
          (M.Levels.subsumed_by M.Levels.L1_left_deep M.Levels.L2_default);
        Alcotest.(check bool) "default <= bushy" true
          (M.Levels.subsumed_by M.Levels.L2_default M.Levels.L3_full_bushy);
        Alcotest.(check bool) "bushy not <= ld" false
          (M.Levels.subsumed_by M.Levels.L3_full_bushy M.Levels.L1_left_deep));
    t "greedy level has no knobs" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Levels.knobs: greedy level has no DP knobs")
          (fun () -> ignore (M.Levels.knobs M.Levels.L0_greedy)));
    t "knobs shapes" (fun () ->
        Alcotest.(check bool) "ld" true (M.Levels.knobs M.Levels.L1_left_deep).O.Knobs.left_deep_only;
        Alcotest.(check bool) "bushy unbounded" true
          ((M.Levels.knobs M.Levels.L3_full_bushy).O.Knobs.max_inner = None));
  ]

(* A cheap model that predicts a fixed cost per plan lets us steer the MOP
   decision deterministically. *)
let model_costing seconds_per_plan =
  Cote.Time_model.make ~c_nljn:seconds_per_plan ~c_mgjn:seconds_per_plan
    ~c_hsjn:seconds_per_plan ()

let mop_tests =
  [
    t "huge compile estimate keeps the low plan" (fun () ->
        (* 1000 seconds per plan: C is astronomically larger than E. *)
        let cfg = M.Mop.config (model_costing 1000.0) in
        let outcome = M.Mop.run cfg O.Env.serial (Helpers.chain 4) in
        Alcotest.(check bool) "keeps low" true (outcome.M.Mop.decision = M.Mop.Keep_low);
        Alcotest.(check bool) "no high compile" true (outcome.M.Mop.compile_actual_high = None);
        Alcotest.(check (float 0.0)) "final = low estimate" outcome.M.Mop.exec_estimate_low
          outcome.M.Mop.exec_estimate_final);
    t "negligible compile estimate reoptimizes" (fun () ->
        let cfg = M.Mop.config (model_costing 1e-12) in
        let outcome = M.Mop.run cfg O.Env.serial (Helpers.chain 4) in
        Alcotest.(check bool) "reoptimizes" true (outcome.M.Mop.decision = M.Mop.Reoptimize);
        Alcotest.(check bool) "high compile measured" true
          (outcome.M.Mop.compile_actual_high <> None);
        (* Dynamic programming must not find a worse plan than greedy's. *)
        Alcotest.(check bool) "final <= low" true
          (outcome.M.Mop.exec_estimate_final <= outcome.M.Mop.exec_estimate_low *. 1.01));
    t "margin shifts the threshold" (fun () ->
        (* Pick a per-plan cost that lands C just above E, then relax with a
           large margin. *)
        let block = Helpers.chain 4 in
        let e =
          match O.Greedy.optimize O.Env.serial block with
          | Some p -> p.O.Plan.cost *. M.Mop.cost_to_seconds
          | None -> Alcotest.fail "greedy failed"
        in
        let est = Cote.Estimator.estimate O.Env.serial block in
        let per_plan = e *. 2.0 /. float_of_int (Cote.Estimator.total est) in
        let strict = M.Mop.run (M.Mop.config (model_costing per_plan)) O.Env.serial block in
        Alcotest.(check bool) "strict keeps low" true (strict.M.Mop.decision = M.Mop.Keep_low);
        let relaxed =
          M.Mop.run (M.Mop.config ~margin:10.0 (model_costing per_plan)) O.Env.serial block
        in
        Alcotest.(check bool) "relaxed reoptimizes" true
          (relaxed.M.Mop.decision = M.Mop.Reoptimize));
    t "always_high returns compile time and exec estimate" (fun () ->
        let compile, exec = M.Mop.always_high O.Env.serial (Helpers.chain 4) in
        Alcotest.(check bool) "positive" true (compile > 0.0 && exec > 0.0));
  ]

let suite = level_tests @ mop_tests
