(** Load generator for the compile service.

    Drives a running server with a mixed compile workload and reports
    latency percentiles, throughput, and structured-outcome counts —
    the numbers behind the SJF-vs-FIFO tail-latency claim and the
    admission-control reject rate.

    Two submission shapes:
    - {b closed-loop}: [clients] connections, each submitting its share
      of the mix back-to-back (a new request the moment the previous
      reply lands);
    - {b burst}: one pipelined connection sends the whole mix up front,
      then collects replies — this is the shape where scheduling policy
      shows up in the percentiles, because the queue is actually deep. *)

type outcome = Compiled | Rejected | Cancelled | Errored

type summary = {
  sent : int;
  compiled : int;
  rejected : int;
  cancelled : int;
  errored : int;
  wall_s : float;  (** first send to last reply *)
  latencies_s : float array;
      (** per-compiled-request send-to-reply seconds, unsorted *)
  qps : float;  (** compiled replies per wall-clock second *)
}

val percentile : float array -> float -> float
(** [percentile lats 0.95]: nearest-rank percentile of a copy of the
    array (input left unsorted).  0.0 on an empty array. *)

val classify : Proto.reply -> outcome
(** Structured-outcome bucket of a reply (anything that is neither a
    compile, a rejection, nor a cancellation counts as [Errored]). *)

val summarize :
  sent:int -> wall_s:float -> outcome list -> float list -> summary
(** Fold a run's outcomes and per-compile latencies into a {!summary} —
    exposed so external drivers (the fleet scenario) aggregate with the
    same arithmetic as {!run_burst}/{!run_closed}. *)

val warehouse_mix : smalls:int -> bigs:int -> string list
(** A workload over {!Qopt_workloads}' warehouse schema: [smalls]
    single-table point queries (sub-millisecond compiles) interleaved
    with [bigs] 8-table star joins (tens of milliseconds).  Bigs are
    placed at the {e front} of the list, so a FIFO server makes every
    small wait behind them while SJF jumps the smalls ahead — the
    experiment in the README's Serving section. *)

val run_burst :
  ?deadline_ms:float -> addr:Server.addr -> sql:string list -> unit -> summary
(** Pipeline all of [sql] on one connection, then collect one reply per
    request (out-of-order safe: replies are matched by id). *)

val run_closed :
  ?deadline_ms:float ->
  ?clients:int ->
  addr:Server.addr ->
  sql:string list ->
  unit ->
  summary
(** [clients] (default 4) threads, each submitting a round-robin share
    of [sql] one-at-a-time. *)
