examples/meta_optimizer.ml: Cote Format List Printf Qopt_mop Qopt_optimizer Qopt_workloads
