(** Fitting the time model's coefficients (Section 3.5 / Section 4).

    "We can collect the real counts of generated join plans together with
    the actual compilation time for a set of training queries, and then
    calculate C_t by running regression on our model."  One coefficient set
    per environment (the paper fits serial and parallel separately, since
    generating a plan is more expensive in the parallel version). *)

module O = Qopt_optimizer

type observation = {
  obs_nljn : float;  (** real generated NLJN plans *)
  obs_mgjn : float;
  obs_hsjn : float;
  obs_joins : float;  (** joins enumerated *)
  obs_seconds : float;  (** measured compilation wall-clock time *)
  obs_t_nljn : float;  (** instrumented per-method generation seconds *)
  obs_t_mgjn : float;
  obs_t_hsjn : float;
}

val measure :
  ?knobs:O.Knobs.t ->
  ?repeats:int ->
  O.Env.t ->
  O.Query_block.t ->
  observation
(** Compile the query for real ([repeats] times, default 3, median timing)
    and package the observation. *)

val fit : ?with_join_term:bool -> observation list -> Time_model.t
(** Non-negative least squares on the observations.  With
    [~with_join_term:true] a per-join coefficient absorbs enumeration
    overhead (an extension the paper leaves to the fixed three-term model).
    Raises [Invalid_argument] on an empty list. *)

val refit :
  ?ridge:float ->
  ?with_join_term:bool ->
  previous:Time_model.t ->
  observation list ->
  Time_model.t
(** {!fit} that degrades gracefully: an empty or rank-deficient training
    set (singular normal equations — e.g. all observations have
    proportional plan counts) returns [previous] unchanged instead of
    raising, so online recalibration can never lose a serving system its
    time model.  [?ridge] adds Tikhonov damping to the solvability health
    check (the fitted coefficients still come from the non-negative
    least-squares pass), letting a caller trade the strict rank test for
    robustness on nearly collinear windows. *)

val fit_joins_only : observation list -> Time_model.t
(** The baseline: regress time on the join count alone. *)

val fit_instrumented : observation list -> Time_model.t
(** Calibration from the per-method instrumented generation times: each
    C_t is (total seconds spent generating plans of type t) / (plans of
    type t), inflated proportionally so the model reproduces total
    compilation time.  Plan counts across queries are highly collinear —
    they all grow with the search space — so the least-squares fit can
    lump all time onto one method; the instrumented calibration breaks the
    tie with directly measured per-method times while fitting the same
    model family.  Raises [Invalid_argument] on an empty list. *)

val calibrate :
  ?knobs:O.Knobs.t ->
  ?repeats:int ->
  ?with_join_term:bool ->
  O.Env.t ->
  O.Query_block.t list ->
  Time_model.t
(** [measure] every training query, then [fit]. *)
