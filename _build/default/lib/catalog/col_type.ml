type t =
  | Int
  | Float
  | Decimal of int * int
  | Varchar of int
  | Char of int
  | Date

let byte_width = function
  | Int -> 4
  | Float -> 8
  | Decimal (p, _) -> (p / 2) + 1
  | Varchar n -> (n / 2) + 2 (* average fill plus length word *)
  | Char n -> n
  | Date -> 4

let to_string = function
  | Int -> "INT"
  | Float -> "FLOAT"
  | Decimal (p, s) -> Printf.sprintf "DECIMAL(%d,%d)" p s
  | Varchar n -> Printf.sprintf "VARCHAR(%d)" n
  | Char n -> Printf.sprintf "CHAR(%d)" n
  | Date -> "DATE"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b = a = b
