(** Aligned plain-text tables for the experiment harness.

    Every table and figure of the paper is re-emitted as rows of text; this
    module keeps them readable without depending on anything outside the
    standard formatter. *)

type align =
  | Left
  | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table whose header is the given column names. *)

val add_row : t -> string list -> unit
(** Appends a row.  Raises [Invalid_argument] on arity mismatch. *)

val add_sep : t -> unit
(** Appends a horizontal separator row. *)

val output : Format.formatter -> t -> unit
(** Renders the table with padded, aligned columns. *)

val print : t -> unit
(** [output] to stdout followed by a newline flush. *)

val fseconds : float -> string
(** Formats seconds with 4 significant decimals, e.g. ["0.0132"]. *)

val fpct : float -> string
(** Formats a percentage with one decimal and a [%] sign. *)

val fcount : float -> string
(** Formats a (possibly fractional) count, rounded to an integer. *)
