lib/catalog/fkey.mli: Format
