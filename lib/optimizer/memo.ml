module Bitset = Qopt_util.Bitset
module Obs = Qopt_obs

(* Process-wide MEMO metrics (no-ops unless Qopt_obs is enabled). *)
let m_entries = Obs.Registry.counter Obs.Registry.default "memo.entries"

let m_inserted = Obs.Registry.counter Obs.Registry.default "memo.plans_inserted"

let m_pruned = Obs.Registry.counter Obs.Registry.default "memo.plans_pruned"

let m_dom_checks =
  Obs.Registry.counter Obs.Registry.default "memo.dominance_checks"

let m_list_len = Obs.Registry.histogram Obs.Registry.default "memo.plan_list_len"

let m_order_len = Obs.Registry.histogram Obs.Registry.default "memo.order_list_len"

type counts = {
  mutable nljn : int;
  mutable mgjn : int;
  mutable hsjn : int;
}

let counts_zero () = { nljn = 0; mgjn = 0; hsjn = 0 }

let counts_total c = c.nljn + c.mgjn + c.hsjn

let counts_get c = function
  | Join_method.NLJN -> c.nljn
  | Join_method.MGJN -> c.mgjn
  | Join_method.HSJN -> c.hsjn

let counts_add c m n =
  match m with
  | Join_method.NLJN -> c.nljn <- c.nljn + n
  | Join_method.MGJN -> c.mgjn <- c.mgjn + n
  | Join_method.HSJN -> c.hsjn <- c.hsjn + n

(* The per-plan property signature is fully interned: the normalized order
   and the canonical partition key live in the owning MEMO's [Prop_id]
   table, so dominance tests are integer comparisons and never walk a
   column list. *)
type saved_plan = {
  sp_plan : Plan.t;
  sp_norm : int;
  sp_osig : int;
  sp_pkey : int;
  sp_pint : bool;
  sp_pipe : bool;
}

(* Cached answer of one [best_plan_satisfying] query: the canonical columns
   of the queried order (for re-testing newly inserted plans) and the
   current cheapest satisfying plan.  Maintained incrementally on insert;
   the binding is evicted when its plan is dominance-dropped. *)
type sat_slot = {
  ss_kind : Order_prop.kind;
  ss_cols : Colref.t list;
  mutable ss_best : saved_plan option;
}

type entry = {
  tables : Bitset.t;
  mutable saved : saved_plan array;
  mutable n_saved : int;
  mutable best : saved_plan option;
  mutable best_pipe : saved_plan option;
  sat_cache : (int, sat_slot) Hashtbl.t;
  osig_cache : (int, int) Hashtbl.t;
  pprop_cache : (int, int * bool) Hashtbl.t;
  mutable width_cache : float;
  mutable card_cache : float option;
  mutable equiv_cache : Equiv.t option;
  mutable app_orders_cache : Order_prop.t list option;
  mutable app_canon_cache : (Order_prop.kind * Colref.t list) list option;
  mutable neigh_cache : Bitset.t option;
  mutable i_orders : Order_prop.t list;
  mutable i_parts : Partition_prop.t list;
  mutable i_pipe : bool;
  mutable propagated_once : bool;
}

type stats = {
  mutable entries_created : int;
  mutable joins_enumerated : int;
  generated : counts;
  mutable scan_plans : int;
  mutable pruned : int;
}

(* Per-size entry storage: a growable array in creation order, so the
   enumerator's inner loops walk a flat array instead of re-materializing a
   [List.rev] of a prepend list on every (size, split) visit. *)
type bucket = {
  mutable items : entry array;
  mutable len : int;
}

let bucket_push b e =
  if b.len = Array.length b.items then begin
    let grown = Array.make (max 8 (2 * Array.length b.items)) e in
    Array.blit b.items 0 grown 0 b.len;
    b.items <- grown
  end;
  b.items.(b.len) <- e;
  b.len <- b.len + 1

type t = {
  blk : Query_block.t;
  tbl : (int, entry) Hashtbl.t;
  by_size : bucket array; (* creation order per size *)
  intern : Prop_id.t;
  mutable kept : int; (* running kept-plan count across all entries *)
  sts : stats;
}

let create blk =
  let n = Query_block.n_quantifiers blk in
  {
    blk;
    tbl = Hashtbl.create 256;
    by_size = Array.init (n + 1) (fun _ -> { items = [||]; len = 0 });
    intern = Prop_id.create ();
    kept = 0;
    sts =
      {
        entries_created = 0;
        joins_enumerated = 0;
        generated = counts_zero ();
        scan_plans = 0;
        pruned = 0;
      };
  }

let block t = t.blk

let stats t = t.sts

let intern_cols t cols = Prop_id.id_of_cols t.intern cols

let find_opt t set = Hashtbl.find_opt t.tbl (Bitset.to_int set)

let find_or_create t set =
  match find_opt t set with
  | Some e -> (e, false)
  | None ->
    let e =
      {
        tables = set;
        saved = [||];
        n_saved = 0;
        best = None;
        best_pipe = None;
        sat_cache = Hashtbl.create 4;
        osig_cache = Hashtbl.create 8;
        pprop_cache = Hashtbl.create 4;
        width_cache = -1.0;
        card_cache = None;
        equiv_cache = None;
        app_orders_cache = None;
        app_canon_cache = None;
        neigh_cache = None;
        i_orders = [];
        i_parts = [];
        i_pipe = false;
        propagated_once = false;
      }
    in
    Hashtbl.add t.tbl (Bitset.to_int set) e;
    bucket_push t.by_size.(Bitset.cardinal set) e;
    t.sts.entries_created <- t.sts.entries_created + 1;
    Obs.Counter.incr m_entries;
    (e, true)

let iter_entries_of_size t k f =
  if k >= 0 && k < Array.length t.by_size then begin
    let b = t.by_size.(k) in
    (* Snapshot the length: entries created by the caller while iterating
       always have a strictly larger size, but freezing [len] keeps the
       traversal independent of that invariant. *)
    let len = b.len in
    for i = 0 to len - 1 do
      f b.items.(i)
    done
  end

let neighborhood t (e : entry) =
  match e.neigh_cache with
  | Some nb -> nb
  | None ->
    let nb =
      Bitset.diff
        (Bitset.fold
           (fun q acc -> Bitset.union acc (Query_block.neighbors t.blk q))
           e.tables Bitset.empty)
        e.tables
    in
    e.neigh_cache <- Some nb;
    nb

let iter_entries f t = Hashtbl.iter (fun _ e -> f e) t.tbl

let n_entries t = Hashtbl.length t.tbl

let equiv_of t e =
  match e.equiv_cache with
  | Some eq -> eq
  | None ->
    let preds =
      List.filter
        (fun p -> Pred.is_join p && Pred.applicable_within p e.tables)
        t.blk.Query_block.preds
    in
    let eq = Equiv.of_preds preds in
    e.equiv_cache <- Some eq;
    eq

let card_of t mode e =
  match e.card_cache with
  | Some c -> c
  | None ->
    let c = Cardinality.of_set mode t.blk e.tables in
    e.card_cache <- Some c;
    c

let width_of t e =
  if e.width_cache >= 0.0 then e.width_cache
  else begin
    let w = Cost_model.row_width t.blk e.tables in
    e.width_cache <- w;
    w
  end

let applicable_orders t e =
  match e.app_orders_cache with
  | Some l -> l
  | None ->
    let equiv = equiv_of t e in
    let l =
      Bitset.fold
        (fun q acc ->
          List.fold_left
            (fun acc o ->
              if Interesting.order_retired t.blk equiv ~tables:e.tables o then acc
              else Order_prop.insert_dedup equiv o acc)
            acc
            (Interesting.orders_for_table t.blk q))
        e.tables []
    in
    e.app_orders_cache <- Some l;
    l

(* Canonical (equivalence-normalized, groupings sorted) column lists of the
   applicable interesting orders — precomputed so per-plan signatures avoid
   equivalence lookups. *)
let applicable_canon t e =
  match e.app_canon_cache with
  | Some l -> l
  | None ->
    let equiv = equiv_of t e in
    let l =
      List.map
        (fun (o : Order_prop.t) ->
          (o.Order_prop.kind, Order_prop.canonical equiv o))
        (applicable_orders t e)
    in
    e.app_canon_cache <- Some l;
    l

let rec is_prefix want have =
  match (want, have) with
  | [], _ -> true
  | _ :: _, [] -> false
  | w :: want', h :: have' -> Colref.equal w h && is_prefix want' have'

let canon_satisfied kind cols normalized_plan_order =
  match kind with
  | Order_prop.Join_key | Order_prop.Ordering -> is_prefix cols normalized_plan_order
  | Order_prop.Grouping ->
    let k = List.length cols in
    if List.length normalized_plan_order < k then false
    else
      let prefix = List.filteri (fun i _ -> i < k) normalized_plan_order in
      Colref.list_equal (List.sort Colref.compare prefix) cols

(* Kept plans are stored oldest-first and compacted in place on pruning, so
   [plans] rebuilds the legacy newest-first list: scan-order consumers (the
   driver's tie-breaks, the COTE's property walks) see the exact sequence
   the list-based MEMO produced. *)
let plans e =
  let n = e.n_saved in
  List.init n (fun i -> e.saved.(n - 1 - i).sp_plan)

let best_plan e =
  match e.best with
  | Some sp -> Some sp.sp_plan
  | None -> None

let best_pipelinable_plan t e =
  if t.blk.Query_block.first_n <> None then
    match e.best_pipe with
    | Some sp -> Some sp.sp_plan
    | None -> None
  else begin
    (* Without a top-N clause [sp_pipe] is uniformly false (pipelinability
       is not pruning-protected), so the cache holds nothing: scan. *)
    let best = ref None in
    for i = 0 to e.n_saved - 1 do
      let sp = e.saved.(i) in
      if Plan.pipelinable sp.sp_plan then
        match !best with
        | Some (b : Plan.t) when b.Plan.cost < sp.sp_plan.Plan.cost -> ()
        | Some _ | None -> best := Some sp.sp_plan
    done;
    !best
  end

let kind_tag = function
  | Order_prop.Join_key -> 0
  | Order_prop.Grouping -> 1
  | Order_prop.Ordering -> 2

let best_plan_satisfying t e (order : Order_prop.t) =
  let equiv = equiv_of t e in
  let ccols = Order_prop.canonical equiv order in
  let oid =
    (3 * Prop_id.id_of_cols t.intern ccols) + kind_tag order.Order_prop.kind
  in
  let slot =
    match Hashtbl.find_opt e.sat_cache oid with
    | Some slot -> slot
    | None ->
      (* First query of this order at this entry: one scan, then the slot
         stays current incrementally.  Oldest-first with <= replacement
         reproduces the list scan's newest-among-cheapest tie-break. *)
      let best = ref None in
      for i = 0 to e.n_saved - 1 do
        let sp = e.saved.(i) in
        if
          canon_satisfied order.Order_prop.kind ccols
            (Prop_id.cols_of_id t.intern sp.sp_norm)
        then
          match !best with
          | Some b when b.sp_plan.Plan.cost < sp.sp_plan.Plan.cost -> ()
          | Some _ | None -> best := Some sp
      done;
      let slot =
        { ss_kind = order.Order_prop.kind; ss_cols = ccols; ss_best = !best }
      in
      Hashtbl.add e.sat_cache oid slot;
      slot
  in
  match slot.ss_best with
  | Some sp -> Some sp.sp_plan
  | None -> None

(* Interned order-satisfaction bitmask of a normalized plan order, cached
   per (entry, order id): every distinct physical order pays the
   list-walking test once per entry instead of once per insertion. *)
let osig_of t e norm_id =
  match Hashtbl.find_opt e.osig_cache norm_id with
  | Some s -> s
  | None ->
    let normalized = Prop_id.cols_of_id t.intern norm_id in
    let s = ref 0 in
    List.iteri
      (fun i (kind, cols) ->
        if canon_satisfied kind cols normalized then s := !s lor (1 lsl i))
      (applicable_canon t e);
    Hashtbl.add e.osig_cache norm_id !s;
    !s

let ptag = function
  | Partition_prop.Hash -> 0
  | Partition_prop.Range -> 1

(* Canonical partition id + interestingness, cached per raw (keys, kind).
   The cache key is the *raw* key list: interestingness of a Range
   partition depends on the un-normalized key sequence (its ORDER BY prefix
   test), so raw-equal partitions are the exact reuse class. *)
let pkey_of t e (p : Partition_prop.t) =
  let raw =
    (2 * Prop_id.id_of_cols t.intern p.Partition_prop.keys)
    + ptag p.Partition_prop.kind
  in
  match Hashtbl.find_opt e.pprop_cache raw with
  | Some v -> v
  | None ->
    let equiv = equiv_of t e in
    let pid =
      (2 * Prop_id.id_of_cols t.intern (Partition_prop.canonical equiv p))
      + ptag p.Partition_prop.kind
    in
    let pint = Interesting.partition_interesting t.blk equiv ~tables:e.tables p in
    let v = (pid, pint) in
    Hashtbl.add e.pprop_cache raw v;
    v

(* The per-plan property signature, computed once at insertion.  [norm] is
   the pre-interned id of the plan's normalized order when the generator
   already computed it (Plan_gen interns each join plan's order once at
   construction); otherwise it is derived here. *)
let signature ?norm t e (plan : Plan.t) =
  let norm_id =
    match norm with
    | Some id -> id
    | None ->
      Prop_id.id_of_cols t.intern
        (Equiv.normalize_cols (equiv_of t e) plan.Plan.order)
  in
  let osig = osig_of t e norm_id in
  let sp_pkey, sp_pint =
    match plan.Plan.partition with
    | None -> (Prop_id.none, false)
    | Some p -> pkey_of t e p
  in
  let sp_pipe = t.blk.Query_block.first_n <> None && Plan.pipelinable plan in
  { sp_plan = plan; sp_norm = norm_id; sp_osig = osig; sp_pkey; sp_pint; sp_pipe }

(* Dominance on signatures: [a] dominates [b] when it is no more expensive,
   satisfies a superset of the interesting orders [b] satisfies, and carries
   a compatible partition (equal keys when either partition is
   interesting).  All property comparisons are integer equality on interned
   ids. *)
let dominates a b =
  a.sp_plan.Plan.cost <= b.sp_plan.Plan.cost
  && a.sp_osig land b.sp_osig = b.sp_osig
  && (a.sp_pipe || not b.sp_pipe)
  && (if a.sp_pkey = Prop_id.none then b.sp_pkey = Prop_id.none
      else
        b.sp_pkey <> Prop_id.none
        && ((not (a.sp_pint || b.sp_pint)) || a.sp_pkey = b.sp_pkey))

let push_saved e sp =
  let n = e.n_saved in
  if n = Array.length e.saved then begin
    let grown = Array.make (max 4 (2 * Array.length e.saved)) sp in
    Array.blit e.saved 0 grown 0 n;
    e.saved <- grown
  end;
  e.saved.(n) <- sp;
  e.n_saved <- n + 1

(* Incremental cache maintenance for a surviving insertion.  The [<=]
   replacement rule mirrors the legacy newest-first scans; a cached best
   that was just dominance-dropped is always replaced by the same rule,
   because its dominator is [sp] and dominance implies [sp] costs no
   more. *)
let update_bests t e sp dropped =
  (match e.best with
  | Some b when sp.sp_plan.Plan.cost > b.sp_plan.Plan.cost -> ()
  | Some _ | None -> e.best <- Some sp);
  (if sp.sp_pipe then
     match e.best_pipe with
     | Some b when sp.sp_plan.Plan.cost > b.sp_plan.Plan.cost -> ()
     | Some _ | None -> e.best_pipe <- Some sp);
  if Hashtbl.length e.sat_cache > 0 then begin
    (match dropped with
    | [] -> ()
    | ds ->
      (* A slot whose plan was dropped is evicted, not patched: the
         dominator need not satisfy the slot's order (the order may lie
         outside the osig bitmask), so the next query rescans. *)
      Hashtbl.filter_map_inplace
        (fun _ slot ->
          match slot.ss_best with
          | Some b when List.memq b ds -> None
          | Some _ | None -> Some slot)
        e.sat_cache);
    let norm_cols = Prop_id.cols_of_id t.intern sp.sp_norm in
    Hashtbl.iter
      (fun _ slot ->
        if canon_satisfied slot.ss_kind slot.ss_cols norm_cols then
          match slot.ss_best with
          | Some b when sp.sp_plan.Plan.cost > b.sp_plan.Plan.cost -> ()
          | Some _ | None -> slot.ss_best <- Some sp)
      e.sat_cache
  end

let insert_plan ?norm t e plan =
  let sp = signature ?norm t e plan in
  Obs.Counter.incr m_inserted;
  let checks = ref 0 in
  let n = e.n_saved in
  let dominated = ref false in
  let i = ref 0 in
  while (not !dominated) && !i < n do
    incr checks;
    if dominates e.saved.(!i) sp then dominated := true;
    incr i
  done;
  (if !dominated then begin
     t.sts.pruned <- t.sts.pruned + 1;
     Obs.Counter.incr m_pruned
   end
   else begin
     (* Compact the survivors in place, collecting the dropped plans for
        cache eviction. *)
     let dropped = ref [] in
     let j = ref 0 in
     for k = 0 to n - 1 do
       let kept = e.saved.(k) in
       incr checks;
       if dominates sp kept then dropped := kept :: !dropped
       else begin
         if !j <> k then e.saved.(!j) <- kept;
         incr j
       end
     done;
     e.n_saved <- !j;
     push_saved e sp;
     let ndrop = n - !j in
     if ndrop > 0 then begin
       t.sts.pruned <- t.sts.pruned + ndrop;
       Obs.Counter.add m_pruned ndrop
     end;
     t.kept <- t.kept + 1 - ndrop;
     update_bests t e sp !dropped
   end);
  Obs.Counter.add m_dom_checks !checks;
  if !Obs.Control.on then begin
    (* Property-list growth: kept-plan count and interesting-order list
       lengths after this insertion. *)
    Obs.Histo.observe m_list_len (float_of_int e.n_saved);
    Obs.Histo.observe m_order_len
      (float_of_int (List.length (applicable_orders t e)))
  end

let kept_plans t = t.kept

let memo_bytes t = float_of_int (kept_plans t) *. Plan.approx_bytes
