(* Cross-cutting property-based tests on the paper's core invariants. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let cr = Helpers.cr

let prop name ?(count = 40) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* Generator for small random connected query blocks: a spanning chain plus
   random extra predicates and optional ORDER BY / GROUP BY. *)
let gen_block =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* extra = int_range 0 2 in
    let* order_by = bool in
    let* group_by = bool in
    return (Helpers.chain ~extra ~order_by ~group_by n))

let run_real block =
  O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs block

let run_est block =
  Cote.Estimator.estimate ~knobs:Helpers.stable_knobs O.Env.serial block

let suite =
  [
    prop "estimator joins == optimizer joins (same cardinality-free knobs)"
      gen_block (fun block ->
        (run_real block).O.Optimizer.joins = (run_est block).Cote.Estimator.joins);
    prop "serial HSJN estimate is exact" gen_block (fun block ->
        (run_real block).O.Optimizer.generated.O.Memo.hsjn
        = (run_est block).Cote.Estimator.hsjn);
    prop "plan-count estimate within 35% on random chains" gen_block (fun block ->
        let actual =
          float_of_int (O.Memo.counts_total (run_real block).O.Optimizer.generated)
        in
        let est = float_of_int (Cote.Estimator.total (run_est block)) in
        actual = 0.0 || Float.abs (est -. actual) /. actual <= 0.35);
    prop "optimizer always finds a plan on connected blocks" gen_block (fun block ->
        (run_real block).O.Optimizer.best <> None);
    prop "best plan covers every quantifier" gen_block (fun block ->
        match (run_real block).O.Optimizer.best with
        | None -> false
        | Some p -> Bitset.equal p.O.Plan.tables (O.Query_block.all_tables block));
    prop "best plan has n-1 joins (no cartesians on chains)" gen_block (fun block ->
        match (run_real block).O.Optimizer.best with
        | None -> false
        | Some p -> O.Plan.join_count p = O.Query_block.n_quantifiers block - 1);
    prop "memory estimate tracks kept plans within 2x" gen_block (fun block ->
        let r = run_real block in
        let e = run_est block in
        let est = e.Cote.Estimator.est_memo_plans in
        let kept = float_of_int r.O.Optimizer.kept in
        est >= kept /. 2.0 && est <= kept *. 2.0);
    prop "covers is reflexive" (QCheck2.Gen.int_range 1 3) (fun k ->
        let o = O.Order_prop.make O.Order_prop.Ordering (List.init k (fun i -> cr 0 (Printf.sprintf "c%d" i))) in
        O.Order_prop.covers O.Equiv.empty ~base:o ~candidate:o);
    prop "covers is transitive on prefixes" (QCheck2.Gen.int_range 1 4) (fun k ->
        let cols = List.init (k + 2) (fun i -> cr 0 (Printf.sprintf "c%d" i)) in
        let take n = List.filteri (fun i _ -> i < n) cols in
        let a = O.Order_prop.make O.Order_prop.Ordering (take k) in
        let b = O.Order_prop.make O.Order_prop.Ordering (take (k + 1)) in
        let c = O.Order_prop.make O.Order_prop.Ordering (take (k + 2)) in
        O.Order_prop.covers O.Equiv.empty ~base:a ~candidate:b
        && O.Order_prop.covers O.Equiv.empty ~base:b ~candidate:c
        && O.Order_prop.covers O.Equiv.empty ~base:a ~candidate:c);
    prop "satisfied_by agrees with covers through a physical order"
      (QCheck2.Gen.int_range 1 3) (fun k ->
        (* If base ≺ candidate then any physical order satisfying the
           candidate satisfies the base. *)
        let cols = List.init (k + 1) (fun i -> cr 0 (Printf.sprintf "c%d" i)) in
        let base = O.Order_prop.make O.Order_prop.Ordering (List.filteri (fun i _ -> i < k) cols) in
        let candidate = O.Order_prop.make O.Order_prop.Ordering cols in
        (not (O.Order_prop.covers O.Equiv.empty ~base ~candidate))
        || ((not (O.Order_prop.satisfied_by O.Equiv.empty candidate cols))
           || O.Order_prop.satisfied_by O.Equiv.empty base cols));
    prop "estimation cheaper than optimization on non-trivial blocks" gen_block
      (fun block ->
        let r = run_real block in
        let e = run_est block in
        (* Tiny queries can be noisy; only enforce on measurable ones. *)
        r.O.Optimizer.elapsed < 0.002
        || e.Cote.Estimator.elapsed < r.O.Optimizer.elapsed);
  ]
