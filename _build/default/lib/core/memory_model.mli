(** Optimizer memory-consumption estimation (Section 6.2).

    "The total amount of memory needed in a MEMO structure can be estimated
    by summing the length of the interesting property lists of all MEMO
    entries and multiplying that by the space required per plan.  Note that
    this is a lower bound of the memory required by an optimizer." *)

module O = Qopt_optimizer

type report = {
  est_plans : float;  (** estimated kept plans from the property lists *)
  est_bytes : float;
  actual_plans : int;  (** plans actually kept by real optimization *)
  actual_bytes : float;
  estimate_seconds : float;
  optimize_seconds : float;
}

val analyze :
  ?knobs:O.Knobs.t -> O.Env.t -> O.Query_block.t -> report
(** Runs the estimator and the real optimizer on the query and compares
    memory estimates against the real MEMO population. *)

val would_exceed : report -> budget_bytes:float -> bool
(** The meta-optimizer's memory gate: when even the lower bound exceeds the
    budget "there is no point in starting optimization at that level". *)
