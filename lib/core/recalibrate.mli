(** Online recalibration of the time model (ROADMAP item 3).

    The paper fits the per-join-method coefficients C_t once, offline,
    per release (Section 3.5) — but a serving system measures the actual
    compilation time of every request it executes, so the loop can be
    closed: each completed compile contributes an observation (generated
    plan counts per join method as features, measured elapsed seconds as
    the target, tagged with the knob level it ran at) into a bounded
    sliding window, and a drift detector — the windowed mean of the
    recent relative prediction errors — triggers a refit through
    {!Calibrate.refit} and atomically swaps the coefficients.  Every
    consumer of {!model} (admission, SJF priorities, level selection)
    sees the corrected model on its next prediction, lock-free.

    Refits inherit {!Calibrate.refit}'s safety: a rank-deficient window
    (e.g. every recent query produced proportional plan counts) keeps
    the previous model and counts as a kept attempt; the drift window is
    preserved so a later, healthier window retries. *)

type config = {
  window : int;  (** max observations retained for refitting (default 256) *)
  drift_window : int;
      (** how many recent prediction errors the drift statistic averages
          over (default 32) *)
  drift_threshold_pct : float;
      (** refit when the windowed mean relative error reaches this many
          percent (default 50) *)
  min_observations : int;
      (** no refit before this many errors have been observed against the
          current model (default 8) *)
  min_refit_interval : int;
      (** observations that must separate consecutive refit attempts
          (default 8) *)
  decay : float;
      (** per-observation-age exponential weight in (0, 1]; 1.0 (default)
          is a plain sliding window, smaller values favour recent
          observations in the least-squares fit *)
  with_join_term : bool;  (** fit the optional per-join coefficient too *)
  ridge : float;
      (** Tikhonov damping for the refit health check; 0.0 (default)
          keeps {!Calibrate.refit}'s strict rank test *)
}

val default_config : config

type t

val create : ?config:config -> model:Time_model.t -> unit -> t
(** A recalibrator initially serving [model].  Raises [Invalid_argument]
    on a non-positive window, drift window or threshold, or a decay
    outside (0, 1]. *)

val model : t -> Time_model.t
(** The currently serving coefficients — a lock-free atomic load, safe to
    call from any domain on every prediction. *)

val config : t -> config

val observe :
  t ->
  ?level:string ->
  nljn:float ->
  mgjn:float ->
  hsjn:float ->
  joins:float ->
  predicted_s:float ->
  elapsed_s:float ->
  unit ->
  bool
(** Feed one completed compile: the {e generated} plan counts per join
    method, the model's predicted seconds at decision time, and the
    measured elapsed seconds.  Returns [true] when the observation
    tripped the drift detector {e and} the resulting refit swapped the
    model.  Observations with no join plans at all or a non-positive
    elapsed carry no coefficient signal and are skipped.  Thread-safe. *)

val refit_now : t -> bool
(** Force a refit attempt from the current window, bypassing the drift
    detector (an operator hook; the server never calls it).  Returns
    [true] if the model was swapped. *)

type snapshot = {
  sn_model : Time_model.t;
  sn_observations : int;  (** accepted observations ever *)
  sn_window_fill : int;  (** observations currently retained *)
  sn_refits : int;  (** refit attempts that swapped the model *)
  sn_kept : int;  (** attempts that kept the previous model *)
  sn_model_error_pct : float;
      (** windowed mean relative error of the serving model *)
  sn_drift_score : float;  (** mean error / threshold; >= 1.0 trips *)
  sn_error_before_pct : float;
      (** the drift statistic at the moment of the last swap *)
}

val snapshot : t -> snapshot

(** Exposed metrics (process-wide, via {!Qopt_obs.Registry.default}):
    [recalib.observations], [recalib.refits], [recalib.refits_kept]
    counters; [recalib.model_error_pct], [recalib.drift_score],
    [recalib.window_size], [recalib.error_before_pct] gauges. *)
