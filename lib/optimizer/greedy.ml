module Bitset = Qopt_util.Bitset
module Table = Qopt_catalog.Table

let scan_plan env params block q =
  let table = (Query_block.quantifier block q).Quantifier.table in
  let tables = Bitset.singleton q in
  let card = Cardinality.of_set Cardinality.Full block tables in
  let sel = card /. Float.max 1.0 table.Table.row_count in
  let partition =
    if Env.is_parallel env then
      match Interesting.physical_partition block q with
      | Some p -> Some p
      | None ->
        Some (Partition_prop.hash [ Colref.make q (List.hd (Table.column_names table)) ])
    else None
  in
  (* Cheapest access path: sequential scan or a filtered index probe. *)
  let seq_cost = Cost_model.seq_scan params table in
  match Interesting.filter_indexes block q with
  | idx :: _ when Cost_model.index_scan params table ~sel < seq_cost ->
    {
      Plan.op = Plan.Index_scan (q, idx);
      tables;
      order = List.map (fun col -> Colref.make q col) idx.Qopt_catalog.Index.columns;
      partition;
      card;
      cost = Cost_model.index_scan params table ~sel;
    }
  | _ :: _ | [] ->
    {
      Plan.op = Plan.Seq_scan q;
      tables;
      order = [];
      partition;
      card;
      cost = seq_cost;
    }

let cheapest_join params block ~outer ~inner ~preds ~out_card =
  let ctx =
    Cost_model.join_context params block ~preds ~inner_card:inner.Plan.card
  in
  let probe =
    Cost_model.inner_probe_cost params block ~preds
      ~inner_tables:inner.Plan.tables
  in
  let candidates =
    [
      ( Join_method.NLJN,
        Cost_model.nljn params block ~ctx ~probe ~outer ~inner ~out_card (),
        outer.Plan.order );
      ( Join_method.MGJN,
        Cost_model.mgjn params block ~ctx ~outer ~inner ~out_card
          ~sort_outer:true ~sort_inner:true (),
        [] );
      ( Join_method.HSJN,
        Cost_model.hsjn params block ~ctx ~outer ~inner ~out_card (),
        [] );
    ]
  in
  let method_, cost, order =
    List.fold_left
      (fun ((_, bc, _) as best) ((_, c, _) as cand) -> if c < bc then cand else best)
      (List.hd candidates) (List.tl candidates)
  in
  {
    Plan.op = Plan.Join (method_, outer, inner, preds);
    tables = Bitset.union outer.Plan.tables inner.Plan.tables;
    order;
    partition = outer.Plan.partition;
    card = out_card;
    cost;
  }

let optimize env block =
  let params = Cost_model.params env in
  let n = Query_block.n_quantifiers block in
  if n = 0 then None
  else begin
    let components = ref [] in
    for q = n - 1 downto 0 do
      components := scan_plan env params block q :: !components
    done;
    let crossing a b =
      List.filter
        (fun p -> Pred.crosses p a.Plan.tables b.Plan.tables)
        block.Query_block.preds
    in
    let rec loop comps =
      match comps with
      | [] -> None
      | [ only ] -> Some only
      | _ :: _ :: _ ->
        (* Choose the pair with the smallest join result, preferring
           connected pairs over Cartesian products. *)
        let best = ref None in
        List.iteri
          (fun i a ->
            List.iteri
              (fun k b ->
                if k > i then begin
                  let preds = crossing a b in
                  let union = Bitset.union a.Plan.tables b.Plan.tables in
                  let card = Cardinality.of_set Cardinality.Full block union in
                  let connected = preds <> [] in
                  let better =
                    match !best with
                    | None -> true
                    | Some (bconn, bcard, _, _, _) ->
                      if connected && not bconn then true
                      else if connected = bconn then card < bcard
                      else false
                  in
                  if better then best := Some (connected, card, a, b, preds)
                end)
              comps)
          comps;
        (match !best with
        | None -> None
        | Some (_, card, a, b, preds) ->
          (* Cost both directions and keep the cheaper join. *)
          let j1 = cheapest_join params block ~outer:a ~inner:b ~preds ~out_card:card in
          let j2 = cheapest_join params block ~outer:b ~inner:a ~preds ~out_card:card in
          let joined = if j1.Plan.cost <= j2.Plan.cost then j1 else j2 in
          let rest =
            List.filter (fun c -> c != a && c != b) comps
          in
          loop (joined :: rest))
    in
    loop !components
  end
