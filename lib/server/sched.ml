module Obs = Qopt_obs

type mode = Sjf | Fifo

let mode_string = function Sjf -> "sjf" | Fifo -> "fifo"

type 'a entry = { key : float; seq : int; item : 'a }

type 'a t = {
  q_mode : mode;
  mutable heap : 'a entry array;  (* binary min-heap in [0, size) *)
  mutable size : int;
  size_a : int Atomic.t;  (* mirrors [size]; read without the lock *)
  mutable seq : int;
  mutable closed : bool;
  lock : Obs.Lock.t;
  nonempty : Condition.t;
}

let create q_mode =
  {
    q_mode;
    heap = [||];
    size = 0;
    size_a = Atomic.make 0;
    seq = 0;
    closed = false;
    lock = Obs.Lock.create "sched";
    nonempty = Condition.create ();
  }

let mode t = t.q_mode

(* Strict weak order: smaller key first, FIFO within equal keys. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push_locked t entry =
  if t.size = Array.length t.heap then
    t.heap <-
      (let grown = Array.make (max 16 (2 * t.size)) entry in
       Array.blit t.heap 0 grown 0 t.size;
       grown);
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  Atomic.set t.size_a t.size;
  sift_up t (t.size - 1)

let pop_locked t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  Atomic.set t.size_a t.size;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  top.item

let push t ~priority item =
  (* Key selection is pure — only the heap mutation runs under the lock. *)
  let key = match t.q_mode with Sjf -> priority | Fifo -> 0.0 in
  Obs.Lock.with_lock t.lock (fun () ->
      if t.closed then false
      else begin
        push_locked t { key; seq = t.seq; item };
        t.seq <- t.seq + 1;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  (* The initial acquire is contention-audited; the re-acquires inside
     Condition.wait are idle blocking (waiting for work, not for the
     lock) and are deliberately not counted as lock wait. *)
  Obs.Lock.lock t.lock;
  let m = Obs.Lock.mutex t.lock in
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m)
    (fun () ->
      while t.size = 0 && not t.closed do
        Condition.wait t.nonempty m
      done;
      if t.size = 0 then None else Some (pop_locked t))

let drain t =
  Obs.Lock.with_lock t.lock (fun () ->
      let rec go acc = if t.size = 0 then List.rev acc else go (pop_locked t :: acc) in
      go [])

let close t =
  Obs.Lock.with_lock t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = Atomic.get t.size_a
