(* The benchmark harness: one Bechamel test per table/figure of the paper,
   measuring the operation that the table/figure times — full compilation,
   COTE estimation, calibration, greedy compilation — followed by the full
   experiment tables (the same rows/series `bin/experiments.exe` prints).

     dune exec bench/main.exe            # micro-benchmarks + all experiments
     dune exec bench/main.exe -- quick   # micro-benchmarks only

   Pass --metrics (or --metrics=json) to collect Qopt_obs metrics during
   the run and dump the registry at the end.  The obs/* benchmark pair
   measures the same compile with collection off and on — the "off" row
   must match the plain fig benchmarks (the disabled switch is a load and
   branch per call site). *)

module O = Qopt_optimizer
module W = Qopt_workloads
module E = Qopt_experiments
module Obs = Qopt_obs
open Bechamel
open Toolkit

let block_of env wl name =
  (W.Workload.find (E.Common.workload env wl) name).W.Workload.block

(* Representative single queries per figure: Bechamel needs stable,
   repeatable units of work. *)
let serial = E.Common.serial

let parallel = E.Common.parallel

let bench_optimize name env block =
  Test.make ~name (Staged.stage (fun () -> ignore (O.Optimizer.optimize env block)))

let bench_estimate name env block =
  Test.make ~name (Staged.stage (fun () -> ignore (Cote.Estimator.estimate env block)))

(* The MEMO insertion hot path in isolation: one run = a fresh MEMO entry
   receiving a stream of plans with mixed orders and costs, exercising
   signature computation, interned dominance tests and in-place
   compaction. *)
let bench_insert_plan block =
  let c n = O.Colref.make 0 n in
  let orders =
    [ []; [ c "a" ]; [ c "b" ]; [ c "a"; c "b" ]; [ c "b"; c "a" ]; [ c "c" ] ]
  in
  Test.make ~name:"hotpath/insert-plan"
    (Staged.stage (fun () ->
         let memo = O.Memo.create block in
         let e, _ =
           O.Memo.find_or_create memo (Qopt_util.Bitset.singleton 0)
         in
         let i = ref 0 in
         List.iter
           (fun order ->
             for k = 0 to 9 do
               incr i;
               O.Memo.insert_plan memo e
                 {
                   O.Plan.op = O.Plan.Seq_scan 0;
                   tables = Qopt_util.Bitset.singleton 0;
                   order;
                   partition = None;
                   card = 1000.0;
                   cost = float_of_int (((17 * !i) mod 29) + k);
                 }
             done)
           orders))

let tests () =
  let lin = block_of serial "linear" "lin_8_p3" in
  let star = block_of serial "star" "star_8_p3" in
  let star_p = block_of parallel "star" "star_8_p3" in
  let real1 = block_of serial "real1" "r1_q7" in
  let real1_p = block_of parallel "real1" "r1_q7" in
  let real2 = block_of serial "real2" "r2_q17" in
  let tpch = block_of serial "tpch" "tpch_q8" in
  let tpch_p = block_of parallel "tpch" "tpch_q8" in
  let rand_p = block_of parallel "random" "rand_q9" in
  let fig3a = E.Tables_exp.fig3_block ~orderby:false in
  Test.make_grouped ~name:"qopt"
    [
      (* fig2: the timed full compilation whose breakdown the figure shows *)
      bench_optimize "fig2/compile-real2_s" serial real2;
      (* fig3: the joins-vs-plans example query *)
      bench_optimize "fig3/compile-example" serial fig3a;
      (* hotpath: the flattened plan-generation path — the representative
         parallel compile plus the isolated MEMO insertion loop *)
      bench_optimize "hotpath/compile-real1_p" parallel real1_p;
      bench_insert_plan lin;
      (* fig4: actual compilation vs estimation, per sub-figure *)
      bench_optimize "fig4a/compile-linear_s" serial lin;
      bench_estimate "fig4a/estimate-linear_s" serial lin;
      bench_optimize "fig4b/compile-real2_s" serial real2;
      bench_estimate "fig4b/estimate-real2_s" serial real2;
      bench_optimize "fig4c/compile-real1_p" parallel real1_p;
      bench_estimate "fig4c/estimate-real1_p" parallel real1_p;
      (* fig5: the plan-count estimation runs *)
      bench_estimate "fig5ac/estimate-star_s" serial star;
      bench_estimate "fig5df/estimate-random_p" parallel rand_p;
      bench_estimate "fig5gi/estimate-real1_p" parallel real1_p;
      (* fig6: compile + estimate on each workload's representative *)
      bench_optimize "fig6a/compile-star_s" serial star;
      bench_estimate "fig6a/estimate-star_s" serial star;
      bench_optimize "fig6b/compile-real1_s" serial real1;
      bench_optimize "fig6d/compile-tpch_p" parallel tpch_p;
      bench_optimize "fig6d/compile-tpch_s" serial tpch;
      bench_optimize "fig6e/compile-random_p" parallel rand_p;
      bench_estimate "fig6f/estimate-real1_p" parallel real1_p;
      (* tab2/tab3: the counting machinery itself *)
      bench_estimate "tab3/accumulate-star_p" parallel star_p;
      (* ct: one calibration observation (compile + counters) *)
      Test.make ~name:"ct/measure-observation"
        (Staged.stage (fun () ->
             ignore (Cote.Calibrate.measure ~repeats:1 serial lin)));
      (* mop: the low-level greedy compile the meta-optimizer starts with *)
      Test.make ~name:"mop/greedy-real1_s"
        (Staged.stage (fun () -> ignore (O.Greedy.optimize serial real1)));
      (* pilot: bound-tracking analysis *)
      Test.make ~name:"pilot/analyze-real1_s"
        (Staged.stage (fun () -> ignore (O.Pilot_pass.analyze serial real1)));
      (* mem: the memory estimate ride-along *)
      bench_estimate "mem/estimate-star_s" serial star;
      (* multilevel: piggyback pass *)
      Test.make ~name:"multilevel/piggyback-star_s"
        (Staged.stage (fun () ->
             ignore
               (Cote.Multi_level.piggyback ~base:O.Knobs.full_bushy
                  ~levels:E.Multilevel_exp.levels serial star)));
      (* topn: compile a LIMIT variant *)
      bench_optimize "topn/compile-limit-star_s" serial
        (E.Topn_exp.with_limit 10 star);
      (* mv: optimization with the view candidate set *)
      Test.make ~name:"mv/compile-views-real1_s"
        (Staged.stage
           (let views =
              E.Mv_exp.views (E.Common.workload serial "real1").W.Workload.schema
            in
            fun () -> ignore (O.Optimizer.optimize serial ~views real1)));
      (* cache: signature computation *)
      Test.make ~name:"cache/signature-real1_q8"
        (Staged.stage
           (let big = block_of serial "real1" "r1_q8" in
            fun () -> ignore (Cote.Stmt_cache.signature big)));
      (* ablations *)
      Test.make ~name:"abl-sep/compound-real1_p"
        (Staged.stage (fun () ->
             ignore
               (Cote.Estimator.estimate
                  ~options:
                    { Cote.Accumulate.first_join_only = true; separate_lists = false }
                  parallel real1_p)));
      Test.make ~name:"abl-first/every-join-star_s"
        (Staged.stage (fun () ->
             ignore
               (Cote.Estimator.estimate
                  ~options:
                    { Cote.Accumulate.first_join_only = false; separate_lists = true }
                  serial star)));
      (* obs: the metrics-collection overhead pair.  Each run forces the
         switch so the pair is comparable regardless of --metrics. *)
      Test.make ~name:"obs/compile-metrics-off"
        (Staged.stage (fun () ->
             Obs.Control.with_enabled false (fun () ->
                 ignore (O.Optimizer.optimize serial real1))));
      Test.make ~name:"obs/compile-metrics-on"
        (Staged.stage (fun () ->
             Obs.Control.with_enabled true (fun () ->
                 ignore (O.Optimizer.optimize serial real1))));
    ]

let run_benchmarks () =
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  Benchmark.all cfg instances (tests ())

(* Each row reports ns/run and minor-heap words allocated per run: the
   allocation column is what the interned hot path is supposed to shrink,
   and regressions there show up before they cost wall-clock time. *)
let report raw =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  let est_of tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> (
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Some est
      | Some _ | None -> None)
    | None -> None
  in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Format.printf "%-36s %16s %14s@." "benchmark" "ns/run" "minor-w/run";
  List.iter
    (fun (name, result) ->
      let alloc =
        match est_of allocs name with
        | Some w -> Printf.sprintf "%14.0f" w
        | None -> Printf.sprintf "%14s" "-"
      in
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-36s %16.0f %s@." name est alloc
      | Some _ | None -> Format.printf "%-36s %16s %s@." name "-" alloc)
    rows;
  List.filter_map
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Some (name, est)
      | Some _ | None -> None)
    rows

(* Direct GC accounting for the representative parallel compile: bytes
   allocated and minor collections per [Optimizer.optimize], measured with
   [Gc.allocated_bytes] deltas outside Bechamel (which reports words per
   sampled run batch, not bytes per compile). *)
let hotpath_alloc_rows () =
  let real1_p = block_of parallel "real1" "r1_q7" in
  ignore (O.Optimizer.optimize parallel real1_p);
  let reps = 5 in
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let s0 = Gc.quick_stat () in
  for _ = 1 to reps do
    ignore (O.Optimizer.optimize parallel real1_p)
  done;
  let a1 = Gc.allocated_bytes () in
  let s1 = Gc.quick_stat () in
  let rows =
    [
      ("hotpath/alloc-bytes-real1_p", (a1 -. a0) /. float_of_int reps);
      ( "hotpath/minor-collections-real1_p",
        float_of_int (s1.Gc.minor_collections - s0.Gc.minor_collections)
        /. float_of_int reps );
    ]
  in
  Format.printf "=== Hot-path allocation accounting (%d compiles) ===@." reps;
  List.iter (fun (name, v) -> Format.printf "%-36s %16.1f@." name v) rows;
  rows

(* Batch throughput: the whole serial synthetic corpus compiled through the
   Qopt_par pool at increasing domain counts.  Rows land next to the
   Bechamel ones in BENCH.json:

     batch/qps-dN          — compile tasks per second at N domains
     batch/speedup-d4      — qps-d4 / qps-d1
     batch/identical-d1-d4 — 1.0 when the 1- and 4-domain batches produced
                             byte-identical fingerprints (the determinism
                             guarantee), else 0.0

   Wall-clock speedup tracks the cores actually available: on a single-core
   host all domain counts time-slice one CPU, so qps stays flat there while
   the identity row still must hold. *)
let batch_corpus () =
  List.concat_map
    (fun wl ->
      List.map
        (fun (q : W.Workload.query) -> Qopt_par.Batch.Compile q.W.Workload.block)
        (E.Common.workload serial wl).W.Workload.queries)
    [ "linear"; "star"; "cycle" ]

let batch_rows () =
  let corpus = batch_corpus () in
  let n = List.length corpus in
  let time_at domains =
    (* One warm run per domain count: the corpus is ~seconds of work, big
       enough that a single wall-clock reading is stable. *)
    Qopt_util.Timer.time (fun () ->
        Qopt_par.Batch.run_batch ~domains serial corpus)
  in
  let out1, t1 = time_at 1 in
  let out2, t2 = time_at 2 in
  let out4, t4 = time_at 4 in
  ignore out2;
  let qps t = float_of_int n /. t in
  let identical =
    if
      String.equal
        (Qopt_par.Batch.fingerprint out1)
        (Qopt_par.Batch.fingerprint out4)
    then 1.0
    else 0.0
  in
  let rows =
    [
      ("batch/qps-d1", qps t1);
      ("batch/qps-d2", qps t2);
      ("batch/qps-d4", qps t4);
      ("batch/speedup-d4", qps t4 /. qps t1);
      ("batch/identical-d1-d4", identical);
    ]
  in
  Format.printf "=== Batch throughput (%d compile tasks) ===@." n;
  List.iter (fun (name, v) -> Format.printf "%-36s %16.2f@." name v) rows;
  rows

(* Measured multicore scaling + lock-contention audit (`bench scale`, also
   folded into `bench quick`):

     scale/qps-dN        — compile tasks/second, whole serial corpus
                           through the pool at N domains, obs off
     scale/speedup-dN    — qps-dN / qps-d1 (exactly 1.0 at d1)
     lock/wait-share-dN  — fraction of the hammer run's core-seconds spent
                           blocked on the striped stmt+plan cache locks at
                           N domains: total lock.{stmt,plan}_cache wait_s
                           delta / (elapsed * N)
     lock/wait-share-{shared-mutex,striped}-dN
                         — the before/after row pair at the top domain
                           count: the same hammer against ~stripes:1 (the
                           old single-shared-mutex design) vs the default
                           stripe count

   Domain counts double from 1 up to [Domain.recommended_domain_count];
   a single-core host still measures {1, 2} so the time-sliced speedup
   (expected ~1.0) and the contention rows stay observable in CI.  The
   cache hammer is the serving-shaped load: every op is a stmt-cache
   probe-or-record plus a plan-cache probe-or-store against shared caches,
   hit-heavy after warmup, with a small hot key set so stripes actually
   collide.  Wait share measured on one core overstates contention (a
   descheduled lock holder charges its whole timeslice to the waiter) —
   the shared-mutex-vs-striped *ratio* is the portable signal. *)
let scale_domain_counts () =
  let cores =
    min (Domain.recommended_domain_count ()) Qopt_par.Pool.max_domains
  in
  if cores <= 1 then [ 1; 2 ]
  else begin
    let rec doubling d acc =
      if d >= cores then List.rev (cores :: acc)
      else doubling (2 * d) (d :: acc)
    in
    doubling 1 []
  end

let scale_rows () =
  let ds = scale_domain_counts () in
  let dmax = List.fold_left max 1 ds in
  let corpus = batch_corpus () in
  let n = List.length corpus in
  let qps_at d =
    Obs.Control.with_enabled false (fun () ->
        let _out, t =
          Qopt_util.Timer.time (fun () ->
              Qopt_par.Batch.run_batch ~domains:d serial corpus)
        in
        float_of_int n /. t)
  in
  let qps = List.map (fun d -> (d, qps_at d)) ds in
  let q1 = List.assoc 1 qps in
  (* Hammer material, prepared serially: a hot set of blocks with their
     chosen plans, so the measured region is cache traffic, not compiles. *)
  let blocks =
    Array.of_list
      (List.map
         (fun (q : W.Workload.query) -> q.W.Workload.block)
         (E.Common.workload serial "linear").W.Workload.queries)
  in
  let plans =
    Array.map
      (fun b ->
        match (O.Optimizer.optimize serial b).O.Optimizer.best with
        | Some p -> p
        | None -> failwith "scale_rows: corpus block has no plan")
      blocks
  in
  let keys = Array.map Cote.Stmt_cache.signature blocks in
  let nb = Array.length blocks in
  let ops_per_domain = 20_000 in
  let wait_share_at ?stripes d =
    Obs.Control.with_enabled true (fun () ->
        let cache = Cote.Stmt_cache.create ~shared:true ?stripes () in
        let pcache : unit Cote.Plan_cache.t =
          Cote.Plan_cache.create ~shared:true ?stripes ()
        in
        let wait () =
          Obs.Lock.wait_s "stmt_cache" +. Obs.Lock.wait_s "plan_cache"
        in
        let w0 = wait () in
        let total = ops_per_domain * d in
        let (_ : unit array), t =
          Qopt_util.Timer.time (fun () ->
              Qopt_par.Pool.map_indexed ~domains:d total (fun i ->
                  let j = i mod nb in
                  let b = blocks.(j) in
                  (match Cote.Stmt_cache.lookup cache b with
                  | Some _ -> ()
                  | None -> Cote.Stmt_cache.record cache b 1e-3);
                  match Cote.Plan_cache.lookup pcache ~key:keys.(j) b with
                  | Cote.Plan_cache.Hit _ -> ()
                  | Cote.Plan_cache.Miss | Cote.Plan_cache.Invalidated _ ->
                    Cote.Plan_cache.store pcache ~key:keys.(j) b
                      ~plan:plans.(j) ()))
        in
        (wait () -. w0) /. (t *. float_of_int d))
  in
  let shares = List.map (fun d -> (d, wait_share_at d)) ds in
  (* The before/after pair needs enough waiters to pile up on one mutex:
     with only two domains a blocked waiter is a blocked waiter whatever
     the stripe count, so run the pair at >= 4 domains even on small
     hosts. *)
  let dc = min (max dmax 4) Qopt_par.Pool.max_domains in
  let before = wait_share_at ~stripes:1 dc in
  let after =
    if dc = dmax then List.assoc dmax shares else wait_share_at dc
  in
  let rows =
    List.concat_map
      (fun (d, q) ->
        [
          (Printf.sprintf "scale/qps-d%d" d, q);
          (Printf.sprintf "scale/speedup-d%d" d, q /. q1);
        ])
      qps
    @ List.map
        (fun (d, s) -> (Printf.sprintf "lock/wait-share-d%d" d, s))
        shares
    @ [
        (Printf.sprintf "lock/wait-share-shared-mutex-d%d" dc, before);
        (Printf.sprintf "lock/wait-share-striped-d%d" dc, after);
      ]
  in
  Format.printf
    "=== Multicore scaling (%d compile tasks; hammer %d ops/domain) ===@." n
    ops_per_domain;
  List.iter (fun (name, v) -> Format.printf "%-36s %16.4f@." name v) rows;
  rows

(* Compile-service latency under load: an in-process server on a Unix
   socket, driven by the burst load generator (whole mix pipelined up
   front so the queue is actually deep).  The mix is 2 big star joins
   sent first plus 48 sub-millisecond smalls — FIFO makes every small
   wait behind the bigs, SJF jumps them ahead, so the small-dominated
   p95 is the scheduling-policy row:

     server/qps         — compiled replies per second (SJF run)
     server/p95-sjf     — p95 send-to-reply milliseconds under SJF
     server/p95-fifo    — same mix under FIFO (expect p95-sjf <= p95-fifo)
     server/reject-rate — fraction rejected under a tight aggregate
                          admission budget (structured rejections) *)
let bench_schemas = [ ("warehouse", W.Warehouse.schema ~partitioned:false) ]

let bench_model = Cote.Time_model.make ~c_nljn:2e-6 ~c_mgjn:5e-6 ~c_hsjn:4e-6 ()

let with_server configure f =
  let module Srv = Qopt_server in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qopt-bench-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    configure
      (Srv.Server.default_config ~listen:(`Unix path) ~model:bench_model
         ~schemas:bench_schemas ())
  in
  let lock = Mutex.create () and cond = Condition.create () in
  let ready = ref false in
  let th =
    Thread.create
      (fun () ->
        Srv.Server.run
          ~on_ready:(fun () ->
            Mutex.protect lock (fun () ->
                ready := true;
                Condition.signal cond))
          cfg)
      ()
  in
  Mutex.lock lock;
  while not !ready do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Srv.Client.connect (`Unix path) in
         ignore (Srv.Client.request c (Srv.Proto.Shutdown { id = 0 }));
         Srv.Client.close c
       with Unix.Unix_error _ | Sys_error _ -> ());
      Thread.join th)
    (fun () -> f (`Unix path))

let server_rows () =
  let module Srv = Qopt_server in
  let mix = Srv.Loadgen.warehouse_mix ~smalls:48 ~bigs:2 in
  let run_mode mode =
    with_server
      (fun cfg -> { cfg with Srv.Server.mode })
      (fun addr -> Srv.Loadgen.run_burst ~addr ~sql:mix ())
  in
  let sjf = run_mode Srv.Sched.Sjf in
  let fifo = run_mode Srv.Sched.Fifo in
  let rejecting =
    with_server
      (fun cfg ->
        {
          cfg with
          Srv.Server.admission =
            {
              Srv.Admission.per_request_s = infinity;
              aggregate_s = 0.005;
              max_queue = max_int;
            };
        })
      (fun addr -> Srv.Loadgen.run_burst ~addr ~sql:mix ())
  in
  let p95 s = 1e3 *. Srv.Loadgen.percentile s.Srv.Loadgen.latencies_s 0.95 in
  let rows =
    [
      ("server/qps", sjf.Srv.Loadgen.qps);
      ("server/p95-sjf", p95 sjf);
      ("server/p95-fifo", p95 fifo);
      ( "server/reject-rate",
        float_of_int rejecting.Srv.Loadgen.rejected
        /. float_of_int (max 1 rejecting.Srv.Loadgen.sent) );
    ]
  in
  Format.printf "=== Compile service (%d-request burst, 1 worker) ===@."
    (List.length mix);
  List.iter (fun (name, v) -> Format.printf "%-36s %16.2f@." name v) rows;
  rows

(* The plan cache on the same warehouse template mix: one warming burst
   compiles each template once (parameter-varying repeats mostly arrive
   while the first compile of their template is still on the worker), then
   a measured burst should be served from cache almost entirely:

     server/qps-cached    — compiled+cached replies per second on the
                            second (warm) burst; the headline against
                            server/qps
     plan_cache/hit-rate  — percent of warm-burst probes served from
                            cache (plan_cache.* counter deltas) *)
let plan_cache_rows () =
  let module Srv = Qopt_server in
  let mix = Srv.Loadgen.warehouse_mix ~smalls:48 ~bigs:2 in
  let counter name = Obs.Registry.counter_value Obs.Registry.default name in
  let probes () =
    counter "plan_cache.hits" + counter "plan_cache.misses"
    + counter "plan_cache.invalidations"
  in
  let warm, (hot, hits, rate) =
    with_server
      (fun cfg ->
        { cfg with Srv.Server.plan_cache = Some Cote.Plan_cache.default_config })
      (fun addr ->
        let warm = Srv.Loadgen.run_burst ~addr ~sql:mix () in
        let h0 = counter "plan_cache.hits" and p0 = probes () in
        let hot = Srv.Loadgen.run_burst ~addr ~sql:mix () in
        let dh = counter "plan_cache.hits" - h0 and dp = probes () - p0 in
        ( warm,
          (hot, dh, if dp = 0 then 0.0 else 100.0 *. float_of_int dh /. float_of_int dp)
        ))
  in
  ignore warm;
  let rows =
    [
      ("server/qps-cached", hot.Srv.Loadgen.qps);
      ("plan_cache/hit-rate", rate);
    ]
  in
  Format.printf
    "=== Plan cache (%d-request warm burst + measured burst, %d cache hits) ===@."
    (List.length mix) hits;
  List.iter (fun (name, v) -> Format.printf "%-36s %16.2f@." name v) rows;
  rows

(* Online recalibration under an induced cost-model perturbation: the
   server starts with every canned coefficient multiplied by 12 — the
   same model shape, wildly wrong magnitudes, exactly what a hardware
   change or a stale release calibration looks like.  A first burst of
   join-bearing templates feeds the drift detector (no manual refit
   call); once the windowed mean prediction error crosses the threshold,
   Recalibrate refits from the server's own (counts, elapsed) window and
   swaps the coefficients.  A second burst is then measured against the
   refitted model:

     recalib/error-before — windowed mean relative prediction error (%)
                            at the moment the drift detector fired
     recalib/error-after  — same statistic over the post-refit burst
     recalib/refits       — drift-triggered refits (expect exactly 1) *)
let recalib_queries =
  [|
    "SELECT ss.ss_quantity FROM store_sales ss, date_dim d WHERE \
     ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = %d";
    "SELECT ss.ss_quantity FROM store_sales ss, item i, store s WHERE \
     ss.ss_item_sk = i.i_item_sk AND ss.ss_store_sk = s.s_store_sk AND \
     i.i_category_id = %d";
    "SELECT ss.ss_quantity FROM store_sales ss, date_dim d, customer c, \
     promotion p WHERE ss.ss_sold_date_sk = d.d_date_sk AND \
     ss.ss_customer_sk = c.c_customer_sk AND ss.ss_promo_sk = p.p_promo_sk \
     AND c.c_birth_year = %d";
    "SELECT ss.ss_quantity FROM store_sales ss, date_dim d, time_dim t, \
     item i, household_demographics hd WHERE ss.ss_sold_date_sk = \
     d.d_date_sk AND ss.ss_sold_time_sk = t.t_time_sk AND ss.ss_item_sk = \
     i.i_item_sk AND ss.ss_hdemo_sk = hd.hd_demo_sk AND d.d_year = %d";
  |]

let recalib_rows () =
  let module Srv = Qopt_server in
  (* Round-robin over structurally distinct join templates (2 to 5 tables)
     so the refit window spans independent plan-count mixes — a single
     template would be rank-deficient and correctly refuse to refit. *)
  let burst ~base n =
    List.init n (fun i ->
        let tpl = recalib_queries.(i mod Array.length recalib_queries) in
        Printf.sprintf (Scanf.format_from_string tpl "%d") (base + i))
  in
  let skewed =
    Cote.Time_model.make ~c_nljn:2.4e-5 ~c_mgjn:6e-5 ~c_hsjn:4.8e-5 ()
  in
  let counter name = Obs.Registry.counter_value Obs.Registry.default name in
  let gauge name = Obs.Registry.gauge_value Obs.Registry.default name in
  let before, after, refits =
    with_server
      (fun cfg ->
        {
          cfg with
          Srv.Server.model = skewed;
          recalibrate =
            Some
              {
                Cote.Recalibrate.default_config with
                Cote.Recalibrate.min_observations = 8;
                drift_window = 16;
                (* One refit per run: the second attempt would need more
                   observations than both bursts provide. *)
                min_refit_interval = 64;
                ridge = 1e-6;
              };
        })
      (fun addr ->
        let r0 = counter "recalib.refits" in
        let (_ : Srv.Loadgen.summary) =
          Srv.Loadgen.run_burst ~addr ~sql:(burst ~base:1990 16) ()
        in
        let before = gauge "recalib.error_before_pct" in
        let (_ : Srv.Loadgen.summary) =
          Srv.Loadgen.run_burst ~addr ~sql:(burst ~base:2100 16) ()
        in
        (before, gauge "recalib.model_error_pct", counter "recalib.refits" - r0))
  in
  let rows =
    [
      ("recalib/error-before", before);
      ("recalib/error-after", after);
      ("recalib/refits", float_of_int refits);
    ]
  in
  Format.printf
    "=== Online recalibration (12x-skewed model, %d+%d-request bursts) ===@." 16
    16;
  List.iter (fun (name, v) -> Format.printf "%-36s %16.2f@." name v) rows;
  rows

(* Fleet vs one multi-worker server at equal total domains: three
   spawned single-worker backends behind the estimate-aware router
   against one server with three worker domains, both driven by the same
   mixed-tenant bursty scenario (4 tenants x 3 bursts of ~24 smalls +
   ~2 bigs).  Process isolation is the fleet's edge — a backend's
   stop-the-world minor GC stalls only its own queue — and rendezvous
   affinity keeps repeat templates on warm statement caches:

     fleet/qps                — compiled replies per second through the
                                router; the headline against
                                fleet/qps-single-backend
     fleet/p95                — p95 send-to-reply milliseconds through
                                the router
     fleet/affinity-hit-rate  — percent of routed compiles landing on
                                their first-choice rendezvous backend
     fleet/qps-single-backend — same scenario against the one 3-worker
                                server *)
let fleet_rows () =
  let module Srv = Qopt_server in
  let module F = Qopt_fleet in
  let qopt_exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/qopt.exe"
  in
  if not (Sys.file_exists qopt_exe) then begin
    Format.printf "=== Fleet serving: skipped (%s not built) ===@." qopt_exe;
    []
  end
  else begin
    let base =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "qopt-bench-fleet-%d" (Unix.getpid ()))
    in
    let spec i =
      let sock = Printf.sprintf "%s.b%d" base i in
      (try Sys.remove sock with Sys_error _ -> ());
      {
        F.Backend.sp_addr = `Unix sock;
        sp_launch =
          F.Backend.Spawn
            {
              exe = qopt_exe;
              argv =
                [|
                  "qopt"; "serve"; "--workers"; "1"; "--trust-hints"; "-s"; sock;
                |];
            };
      }
    in
    let router_addr = `Unix (base ^ ".sock") in
    let cfg =
      F.Router.default_config ~listen:router_addr ~backends:(List.init 3 spec)
        ~model:bench_model ~schemas:bench_schemas ()
    in
    let counter name = Obs.Registry.counter_value Obs.Registry.default name in
    let lock = Mutex.create () and cond = Condition.create () in
    let ready = ref false in
    let th =
      Thread.create
        (fun () ->
          F.Router.run
            ~on_ready:(fun () ->
              Mutex.protect lock (fun () ->
                  ready := true;
                  Condition.signal cond))
            cfg)
        ()
    in
    Mutex.lock lock;
    while not !ready do
      Condition.wait cond lock
    done;
    Mutex.unlock lock;
    let scenario = F.Scenario.default_config in
    let h0 = counter "fleet.affinity_hits"
    and t0 = counter "fleet.affinity_total" in
    let fleet =
      Fun.protect
        ~finally:(fun () ->
          (try
             let c = Srv.Client.connect router_addr in
             ignore (Srv.Client.request c (Srv.Proto.Shutdown { id = 0 }));
             Srv.Client.close c
           with Unix.Unix_error _ | Sys_error _ -> ());
          Thread.join th)
        (fun () -> F.Scenario.run scenario ~addr:router_addr)
    in
    let hits = counter "fleet.affinity_hits" - h0
    and total = counter "fleet.affinity_total" - t0 in
    let single =
      with_server
        (fun cfg -> { cfg with Srv.Server.workers = 3 })
        (fun addr -> F.Scenario.run scenario ~addr)
    in
    let rows =
      [
        ("fleet/qps", fleet.Srv.Loadgen.qps);
        ( "fleet/p95",
          1e3 *. Srv.Loadgen.percentile fleet.Srv.Loadgen.latencies_s 0.95 );
        ( "fleet/affinity-hit-rate",
          if total = 0 then 0.0
          else 100.0 *. float_of_int hits /. float_of_int total );
        ("fleet/qps-single-backend", single.Srv.Loadgen.qps);
      ]
    in
    Format.printf
      "=== Fleet serving (3 spawned 1-worker backends vs one 3-worker server) \
       ===@.";
    List.iter (fun (name, v) -> Format.printf "%-36s %16.2f@." name v) rows;
    rows
  end

(* The giant-join-graph regime: the sizes where the DP MEMO explodes and
   the spanning-tree fallback takes over.  The corpus is the 14-query
   giant workload (chains/cycles/stars/snowflakes/cliques at 20-50
   tables); budget and deadline mirror the server smoke settings:

     giant/compile-dp-n20           — median full-DP ms on the 20-table
                                      chain (the regime's DP-friendly end)
     giant/compile-greedy-n50       — median spanning-tree fallback ms on
                                      the 50-table clique (1225 edges)
     giant/dp-n50-budget-exceeded   — 1.0 when budgeted DP on that clique
                                      aborts with the structured
                                      Budget_exceeded (it must: the
                                      unbudgeted MEMO would need ~2^50
                                      entries)
     giant/regime-decision-accuracy — % of the corpus where Regime.decide
                                      (budgeted COTE + greedy time model
                                      against a 100 ms deadline) picks the
                                      same regime as an oracle that
                                      actually ran both and compared
                                      measured times *)
let giant_rows () =
  let env = serial in
  let budget = O.Budget.make ~max_memo_entries:5_000 ~max_kept_plans:20_000 () in
  let deadline_s = 0.1 in
  let chain20 = W.Giant.block W.Giant.Chain 20 in
  let clique50 = W.Giant.block W.Giant.Clique 50 in
  let _, dp_n20_s =
    Qopt_util.Timer.time_median ~repeats:5 (fun () ->
        ignore (O.Optimizer.optimize env chain20))
  in
  let _, greedy_n50_s =
    Qopt_util.Timer.time_median ~repeats:5 (fun () ->
        ignore (O.Optimizer.optimize_fallback env clique50))
  in
  let blown =
    match O.Optimizer.optimize env ~budget clique50 with
    | exception O.Budget.Exceeded _ -> 1.0
    | _ -> 0.0
  in
  (* The DP time model is fitted here, on small giant shapes, because the
     canned coefficients track a different machine; the greedy model's
     fitted defaults suffice (its features are machine-independent counts
     and its magnitude only matters far below the deadline). *)
  let model =
    Cote.Calibrate.fit
      (List.map
         (fun (shape, n) -> Cote.Calibrate.measure env (W.Giant.block shape n))
         [
           (W.Giant.Chain, 12); (W.Giant.Chain, 16); (W.Giant.Chain, 20);
           (W.Giant.Cycle, 12); (W.Giant.Star, 12);
         ])
  in
  let gm = Cote.Greedy_model.default in
  let oracle_regime b =
    match O.Optimizer.optimize env ~budget b with
    | exception O.Budget.Exceeded _ -> Cote.Regime.Greedy
    | r ->
      if r.O.Optimizer.elapsed <= deadline_s then Cote.Regime.Dp
      else Cote.Regime.Greedy
  in
  let predicted_regime b =
    let dp_s =
      match Cote.Predict.compile_time ~budget ~model env b with
      | p -> Some p.Cote.Predict.seconds
      | exception O.Budget.Exceeded _ -> None
    in
    let greedy_s =
      Cote.Greedy_model.predict gm
        ~quantifiers:(O.Query_block.n_quantifiers b)
        ~edges:(O.Spanning_tree.edge_count b) ~restarts:0
    in
    (Cote.Regime.decide ~deadline_s ~dp_s ~greedy_s ()).Cote.Regime.d_regime
  in
  let corpus = (E.Common.workload env "giant").W.Workload.queries in
  let correct =
    List.fold_left
      (fun acc (q : W.Workload.query) ->
        let b = q.W.Workload.block in
        if predicted_regime b = oracle_regime b then acc + 1 else acc)
      0 corpus
  in
  let accuracy = 100.0 *. float_of_int correct /. float_of_int (List.length corpus) in
  let rows =
    [
      ("giant/compile-dp-n20", dp_n20_s *. 1e3);
      ("giant/compile-greedy-n50", greedy_n50_s *. 1e3);
      ("giant/dp-n50-budget-exceeded", blown);
      ("giant/regime-decision-accuracy", accuracy);
    ]
  in
  Format.printf
    "=== Giant join graphs (14-query corpus, budget 5k entries / 20k plans, \
     %.0f ms deadline) ===@."
    (deadline_s *. 1e3);
  List.iter (fun (name, v) -> Format.printf "%-36s %16.2f@." name v) rows;
  rows

(* Machine-readable results for CI trend tracking: a flat benchmark-name ->
   ns/run object, one line per benchmark so diffs stay readable. *)
let write_bench_json path rows =
  let oc = open_out path in
  (* One decimal suffices for ns/qps magnitudes; sub-unit readings (lock
     wait shares, reject rates) keep four so they don't flatten to 0.0. *)
  let fmt v =
    if Float.abs v >= 1.0 then Printf.sprintf "%.1f" v
    else Printf.sprintf "%.4f" v
  in
  output_string oc "{\n";
  List.iteri
    (fun i (name, est) ->
      if i > 0 then output_string oc ",\n";
      output_string oc (Printf.sprintf "  %S: %s" name (fmt est)))
    rows;
  output_string oc "\n}\n";
  close_out oc

let scale_row_only (name, _) =
  String.starts_with ~prefix:"scale/" name
  || String.starts_with ~prefix:"lock/" name

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let scale_only = List.mem "scale" args in
  let metrics =
    if List.mem "--metrics=json" args then Some "json"
    else if List.mem "--metrics" args || List.mem "--metrics=text" args then
      Some "text"
    else None
  in
  if metrics <> None then Obs.Control.set_enabled true;
  if scale_only then begin
    (* `bench scale`: just the scaling curve + contention audit, written
       to SCALING.json (the CI artifact) without the full bench run. *)
    let rows = scale_rows () in
    write_bench_json "SCALING.json" rows;
    Format.printf "wrote SCALING.json (%d rows)@." (List.length rows);
    exit 0
  end;
  Format.printf "=== Bechamel micro-benchmarks (one per table/figure) ===@.";
  let raw = run_benchmarks () in
  let rows = report raw in
  Format.printf "@.";
  let rows = rows @ hotpath_alloc_rows () in
  Format.printf "@.";
  let rows = rows @ batch_rows () in
  Format.printf "@.";
  let rows = rows @ server_rows () in
  Format.printf "@.";
  let rows = rows @ plan_cache_rows () in
  let rows = rows @ recalib_rows () in
  Format.printf "@.";
  let rows = rows @ fleet_rows () in
  Format.printf "@.";
  let rows = rows @ giant_rows () in
  Format.printf "@.";
  let rows = if quick then rows @ scale_rows () else rows in
  if quick then begin
    write_bench_json "BENCH.json" rows;
    write_bench_json "SCALING.json" (List.filter scale_row_only rows);
    Format.printf "wrote BENCH.json (%d benchmarks) and SCALING.json@."
      (List.length rows)
  end;
  if not quick then begin
    Format.printf "=== Paper tables and figures ===@.";
    List.iter
      (fun (e : E.Registry.t) ->
        Format.printf "== %s: %s@." e.E.Registry.id e.E.Registry.title;
        e.E.Registry.run ())
      E.Registry.all
  end;
  match metrics with
  | None -> ()
  | Some "json" ->
    Obs.Control.set_enabled false;
    print_endline (Obs.Registry.to_json Obs.Registry.default)
  | Some _ ->
    Obs.Control.set_enabled false;
    Obs.Registry.pp_text Format.std_formatter Obs.Registry.default
