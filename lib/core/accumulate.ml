module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

type options = {
  first_join_only : bool;
  separate_lists : bool;
}

let default_options = { first_join_only = true; separate_lists = true }

type compound = (O.Order_prop.t option * O.Partition_prop.t option) list

type t = {
  env : O.Env.t;
  memo : O.Memo.t;
  block : O.Query_block.t;
  options : options;
  counts : O.Memo.counts;
  mutable scans : int;
  (* Compound-vector mode only: per-entry (order, partition) pairs. *)
  pairs : (int, compound) Hashtbl.t;
}

let create ?(options = default_options) env memo =
  {
    env;
    memo;
    block = O.Memo.block memo;
    options;
    counts = O.Memo.counts_zero ();
    scans = 0;
    pairs = Hashtbl.create 64;
  }

let counts t = t.counts

let scan_plans t = t.scans

let card_of t entry = O.Memo.card_of t.memo O.Cardinality.Simple entry

let pairs_of t (e : O.Memo.entry) =
  Option.value ~default:[] (Hashtbl.find_opt t.pairs (Bitset.to_int e.O.Memo.tables))

let set_pairs t (e : O.Memo.entry) pairs =
  Hashtbl.replace t.pairs (Bitset.to_int e.O.Memo.tables) pairs

(* ------------------------------------------------------------------ *)
(* initialize() — Table 3                                              *)
(* ------------------------------------------------------------------ *)

let on_entry t (entry : O.Memo.entry) =
  if Bitset.cardinal entry.O.Memo.tables = 1 then begin
    let q = Bitset.min_elt entry.O.Memo.tables in
    (* Eager order policy: reuse the precomputed interesting orders for base
       tables (Section 4 point 1). *)
    let orders = O.Interesting.orders_for_table t.block q in
    entry.O.Memo.i_orders <- orders;
    (* Lazy partition policy: seed from the physical partitioning only,
       keeping interesting values. *)
    let parts =
      match O.Plan_gen.default_partition t.env t.block q with
      | None -> []
      | Some p ->
        if
          O.Interesting.partition_interesting t.block O.Equiv.empty
            ~tables:entry.O.Memo.tables p
        then [ p ]
        else []
    in
    entry.O.Memo.i_parts <- parts;
    (* Scans pipeline, so a pipelinable variant always exists at the leaves
       (relevant only for top-N queries). *)
    entry.O.Memo.i_pipe <- true;
    t.scans <-
      t.scans + 1 + List.length orders
      + List.length (O.Interesting.filter_indexes t.block q);
    if not t.options.separate_lists then begin
      let phys = O.Plan_gen.default_partition t.env t.block q in
      let pairs =
        (None, phys)
        :: List.map (fun o -> (Some o, phys)) orders
      in
      set_pairs t entry pairs
    end
  end

(* ------------------------------------------------------------------ *)
(* Property propagation                                                *)
(* ------------------------------------------------------------------ *)

let join_cols preds =
  List.concat_map
    (fun p -> match O.Pred.join_cols p with Some (l, r) -> [ l; r ] | None -> [])
    preds

(* Section 4's repartitioning-heuristic test, on the interesting partition
   lists: triggered when no input partition value is keyed on a join
   column. *)
let repart_triggers t equiv ~(left : O.Memo.entry) ~(right : O.Memo.entry) ~preds
    =
  O.Env.is_parallel t.env && preds <> []
  &&
  let jcs = join_cols preds in
  let keyed p = List.exists (O.Partition_prop.keyed_on equiv p) jcs in
  not
    (List.exists keyed left.O.Memo.i_parts
    || List.exists keyed right.O.Memo.i_parts)

let propagate_separate t equiv (event : O.Enumerator.join_event) ~orders =
  let j = event.O.Enumerator.result in
  let tables = j.O.Memo.tables in
  let from_side (e : O.Memo.entry) outer_ok =
    if outer_ok then begin
      (* Orders travel with the outer role (Section 4 point 3); a property
         must be propagatable by at least one method, unretired, and not
         equivalent to a value already in the list. *)
      if orders then
        List.iter
          (fun o ->
            if not (O.Interesting.order_retired t.block equiv ~tables o) then
              j.O.Memo.i_orders <-
                O.Order_prop.insert_dedup equiv o j.O.Memo.i_orders)
          e.O.Memo.i_orders;
      List.iter
        (fun p ->
          if O.Interesting.partition_interesting t.block equiv ~tables p then
            j.O.Memo.i_parts <-
              O.Partition_prop.insert_dedup equiv p j.O.Memo.i_parts)
        e.O.Memo.i_parts
    end
  in
  from_side event.O.Enumerator.left event.O.Enumerator.left_outer_ok;
  from_side event.O.Enumerator.right event.O.Enumerator.right_outer_ok;
  (* Pipelinability propagates through NLJN/MGJN when both inputs have a
     pipelinable variant; HSJN never propagates it (Table 1). *)
  if
    event.O.Enumerator.left.O.Memo.i_pipe
    && event.O.Enumerator.right.O.Memo.i_pipe
  then j.O.Memo.i_pipe <- true;
  (* Propagate the extra join-column partition created by the repartitioning
     heuristic. *)
  if repart_triggers t equiv ~left:event.O.Enumerator.left
       ~right:event.O.Enumerator.right ~preds:event.O.Enumerator.preds
  then begin
    match join_cols event.O.Enumerator.preds with
    | [] -> ()
    | jc :: _ ->
      (* "We propagate additional partitions on join columns if the test
         fails" — unconditionally: the repartitioned plans exist whether or
         not the new partition stays interesting upstream. *)
      let p = O.Partition_prop.hash [ O.Equiv.repr equiv jc ] in
      j.O.Memo.i_parts <- O.Partition_prop.insert_dedup equiv p j.O.Memo.i_parts
  end

let propagate_compound t equiv (event : O.Enumerator.join_event) =
  let j = event.O.Enumerator.result in
  let tables = j.O.Memo.tables in
  let existing = pairs_of t j in
  (* Fresh values accumulate prepended and are appended to the list once at
     the end — the previous [existing @ [x]] per addition rebuilt the whole
     list each time, turning propagation quadratic in the list length. *)
  let added = ref [] in
  let add (o, p) =
    let same (o', p') =
      (match (o, o') with
      | None, None -> true
      | Some a, Some b -> O.Order_prop.equal_under equiv a b
      | None, Some _ | Some _, None -> false)
      &&
      match (p, p') with
      | None, None -> true
      | Some a, Some b -> O.Partition_prop.equal_under equiv a b
      | None, Some _ | Some _, None -> false
    in
    if not (List.exists same existing || List.exists same !added) then
      added := (o, p) :: !added
  in
  let from_side (e : O.Memo.entry) outer_ok =
    if outer_ok then
      List.iter
        (fun (o, p) ->
          (* A compound value retires only when every component is retired
             (Section 3.4) — this keeps retired orders alive alongside
             interesting partitions. *)
          let o_dead =
            match o with
            | None -> true
            | Some o -> O.Interesting.order_retired t.block equiv ~tables o
          in
          let p_dead =
            match p with
            | None -> true
            | Some p ->
              not (O.Interesting.partition_interesting t.block equiv ~tables p)
          in
          if not (o_dead && p_dead) then add (o, p))
        (pairs_of t e)
  in
  from_side event.O.Enumerator.left event.O.Enumerator.left_outer_ok;
  from_side event.O.Enumerator.right event.O.Enumerator.right_outer_ok;
  if !added <> [] then set_pairs t j (existing @ List.rev !added)

(* ------------------------------------------------------------------ *)
(* accumulate_plans() — Table 3 with the Section 4 refinements          *)
(* ------------------------------------------------------------------ *)

let mgjn_candidates equiv ~(mo : O.Order_prop.t) orders =
  let covering =
    List.filter (fun o -> O.Order_prop.covers equiv ~base:mo ~candidate:o) orders
  in
  let mo_present =
    List.exists (fun o -> O.Order_prop.equal_under equiv o mo) covering
  in
  List.length covering + if mo_present then 0 else 1

let count_direction_separate t equiv (event : O.Enumerator.join_event)
    ~(x : O.Memo.entry) ~into =
  let preds = event.O.Enumerator.preds in
  let h =
    if
      repart_triggers t equiv ~left:event.O.Enumerator.left
        ~right:event.O.Enumerator.right ~preds
    then 1
    else 0
  in
  let pfac =
    if O.Env.is_parallel t.env then max 1 (List.length x.O.Memo.i_parts) else 1
  in
  (* Top-N queries keep one pipelinable variant alongside the regular plans
     when both inputs can pipeline (the third property of Table 1) — an
     extra slot like the DC convention, not a full combinatorial factor,
     because the unordered scan variants already pipeline. *)
  let pipe_extra =
    if
      t.block.O.Query_block.first_n <> None
      && event.O.Enumerator.left.O.Memo.i_pipe
      && event.O.Enumerator.right.O.Memo.i_pipe
    then 1
    else 0
  in
  let norders = List.length x.O.Memo.i_orders in
  O.Memo.counts_add into O.Join_method.NLJN
    (((norders + 1) * pfac) + pipe_extra + h);
  (match O.Interesting.merge_order equiv preds with
  | None -> ()
  | Some mo ->
    let cands = mgjn_candidates equiv ~mo x.O.Memo.i_orders in
    O.Memo.counts_add into O.Join_method.MGJN ((cands * pfac) + h));
  O.Memo.counts_add into O.Join_method.HSJN (pfac + h)

let count_direction_compound t equiv (event : O.Enumerator.join_event)
    ~(x : O.Memo.entry) ~into =
  let preds = event.O.Enumerator.preds in
  let pairs = pairs_of t x in
  let h =
    if
      repart_triggers t equiv ~left:event.O.Enumerator.left
        ~right:event.O.Enumerator.right ~preds
    then 1
    else 0
  in
  let distinct_parts =
    List.fold_left
      (fun acc (_, p) ->
        let mem =
          List.exists
            (fun p' ->
              match (p, p') with
              | None, None -> true
              | Some a, Some b -> O.Partition_prop.equal_under equiv a b
              | None, Some _ | Some _, None -> false)
            acc
        in
        if mem then acc else p :: acc)
      [] pairs
  in
  let nparts = max 1 (List.length distinct_parts) in
  O.Memo.counts_add into O.Join_method.NLJN (List.length pairs + h);
  (match O.Interesting.merge_order equiv preds with
  | None -> ()
  | Some mo ->
    let covering =
      List.filter
        (fun (o, _) ->
          match o with
          | None -> false
          | Some o -> O.Order_prop.covers equiv ~base:mo ~candidate:o)
        pairs
    in
    (* Enforced merge joins fill partitions lacking a covering pair. *)
    let covered_parts =
      List.length
        (List.filter
           (fun p ->
             List.exists
               (fun (_, p') ->
                 match (p, p') with
                 | None, None -> true
                 | Some a, Some b -> O.Partition_prop.equal_under equiv a b
                 | None, Some _ | Some _, None -> false)
               covering)
           distinct_parts)
    in
    let enforced = max 0 (nparts - covered_parts) in
    O.Memo.counts_add into O.Join_method.MGJN
      (List.length covering + enforced + h));
  O.Memo.counts_add into O.Join_method.HSJN (nparts + h)

let count_into t (event : O.Enumerator.join_event) ~left_ok ~right_ok into =
  let equiv = O.Memo.equiv_of t.memo event.O.Enumerator.result in
  let count_dir =
    if t.options.separate_lists then count_direction_separate
    else count_direction_compound
  in
  if left_ok then count_dir t equiv event ~x:event.O.Enumerator.left ~into;
  if right_ok then count_dir t equiv event ~x:event.O.Enumerator.right ~into

let on_join t (event : O.Enumerator.join_event) =
  let j = event.O.Enumerator.result in
  let equiv = O.Memo.equiv_of t.memo j in
  (* Count this join's plans from the *input* lists first... *)
  count_into t event ~left_ok:event.O.Enumerator.left_outer_ok
    ~right_ok:event.O.Enumerator.right_outer_ok t.counts;
  (* ... then propagate lists to the result entry.  The first-join-only
     shortcut (Section 4 point 4) applies to *orders* — "order properties
     propagated to the same MEMO entry are hardly changed from join to
     join" — so partitions (few, and direction-sensitive) propagate on
     every join. *)
  let first = not j.O.Memo.propagated_once in
  if t.options.separate_lists then
    propagate_separate t equiv event
      ~orders:(first || not t.options.first_join_only)
  else propagate_compound t equiv event;
  j.O.Memo.propagated_once <- true

let consumer t =
  { O.Enumerator.on_entry = on_entry t; O.Enumerator.on_join = on_join t }

let est_memo_plans t =
  let total = ref 0.0 in
  O.Memo.iter_entries
    (fun e ->
      if t.options.separate_lists then begin
        let orders = float_of_int (List.length e.O.Memo.i_orders) in
        let parts = float_of_int (max 1 (List.length e.O.Memo.i_parts)) in
        total := !total +. ((orders +. 1.0) *. parts)
      end
      else total := !total +. float_of_int (List.length (pairs_of t e)))
    t.memo;
  !total
