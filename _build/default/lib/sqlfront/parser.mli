(** Recursive-descent parser for the SQL subset of {!Ast}. *)

exception Error of string
(** Parse error with a human-readable message. *)

val parse : string -> Ast.select
(** Parses one SELECT statement.  Raises {!Error} or {!Lexer.Error}. *)
