(** Linear least-squares fitting.

    The paper's time model is [T = T_inst * sum_t (C_t * P_t)] (Section 3.5):
    a linear model through the origin whose coefficients are obtained "by
    running regression" over a training workload.  This module provides the
    ordinary least-squares solver plus a non-negative variant, since
    instruction counts per plan cannot be negative. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves the square linear system [a x = b] by Gaussian
    elimination with partial pivoting.  Raises [Failure] if the matrix is
    singular to working precision. *)

val solve_result :
  ?ridge:float -> float array array -> float array -> (float array, string) result
(** Non-raising {!solve}.  On a singular matrix with [ridge > 0] (a small
    relative Tikhonov term, e.g. [1e-9]), the diagonal is damped by
    [ridge * max |diag|] and the solve retried — rank-deficient training
    workloads then yield a usable (minimally perturbed) solution instead of
    an exception.  [Error] only if the system is singular even after
    damping (or [ridge] is 0, the default). *)

val fit : ?intercept:bool -> float array array -> float array -> float array
(** [fit xs ys] returns the least-squares coefficients [c] minimizing
    [|Xc - y|^2], where [xs.(i)] is the feature row of observation [i].
    With [~intercept:true] a constant column is prepended and the intercept
    is returned as coefficient 0.  Default: no intercept (model through the
    origin, as in the paper).  Raises [Invalid_argument] on shape mismatch
    and [Failure] if the normal equations are singular. *)

val fit_result :
  ?intercept:bool ->
  ?ridge:float ->
  float array array ->
  float array ->
  (float array, string) result
(** Non-raising {!fit} through {!solve_result}: [Error] instead of an
    exception when the normal equations are rank-deficient — the signal
    {!Cote.Calibrate.refit} uses to keep the previous coefficients. *)

val fit_nonneg :
  ?iters:int -> float array array -> float array -> float array
(** Non-negative least squares by cyclic coordinate descent on the normal
    equations, clamping at zero.  [iters] defaults to 500 sweeps, ample for
    the tiny (3-4 coefficient) systems used here. *)

val predict : ?intercept:bool -> float array -> float array -> float
(** [predict coeffs row] evaluates the fitted model on a feature row. *)
