(** Named optimization levels.

    "Most commercial database systems often have multiple levels of
    optimization" (Section 1.1): a cheap greedy level plus dynamic
    programming levels whose knobs carve intermediate search spaces. *)

type t =
  | L0_greedy  (** polynomial-time greedy join ordering *)
  | L1_left_deep  (** DP over left-deep trees *)
  | L2_default  (** DP, bushy, composite inner limited (the paper's setup) *)
  | L3_full_bushy  (** DP, unrestricted bushy *)

val all : t list

val name : t -> string

val knobs : t -> Qopt_optimizer.Knobs.t
(** Raises [Invalid_argument] for [L0_greedy], which does not use the DP
    enumerator. *)

val subsumed_by : t -> t -> bool
(** [subsumed_by a b]: level [b]'s search space contains level [a]'s —
    the precondition for piggyback estimation (Section 6.2). *)

val pp : Format.formatter -> t -> unit
