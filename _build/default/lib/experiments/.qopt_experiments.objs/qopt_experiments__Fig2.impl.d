lib/experiments/fig2.ml: Common Format List Qopt_optimizer Qopt_util Qopt_workloads
