lib/core/calibrate.ml: Array List Qopt_optimizer Qopt_util Time_model
