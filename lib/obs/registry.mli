(** A named collection of metrics with find-or-create access and text /
    JSON export.

    Lookups hash on the metric name, so hot paths fetch their handles once
    (typically at module initialization) and then touch the metric
    directly.  [default] is the process-wide registry every built-in
    optimizer metric registers in; the [--metrics] flag of [qopt] and
    [bench] dumps it after a run.

    Metrics are sharded per domain slot ({!Shard}): recording from pool
    workers lands in per-domain cells, and every read accessor here — and
    both export sinks — returns the merged (shard-summed) reading, so a
    batch run's export equals a serial run's over the same work.  Create
    metrics from the main domain (module initialization); the find-or-create
    table itself is not synchronized. *)

type t

val create : ?name:string -> unit -> t

val default : t

val name : t -> string

val counter : t -> string -> Counter.t
(** Find-or-create.  Raises [Invalid_argument] if the name is already
    registered as a different metric kind. *)

val gauge : t -> string -> Gauge.t

val histogram : t -> string -> Histo.t

val span : t -> string -> Span.t
(** Registered spans respect the {!Control.on} switch. *)

val counter_value : t -> string -> int
(** 0 when the counter does not exist — convenient for tests and sinks. *)

val gauge_value : t -> string -> float

val histogram_count : t -> string -> int
(** 0 when the histogram does not exist. *)

val histogram_sum : t -> string -> float
(** 0.0 when the histogram does not exist. *)

val histogram_quantile : t -> string -> float -> float
(** [nan] when the histogram does not exist or is empty. *)

val reset : t -> unit
(** Zero every registered metric (registration is kept). *)

val pp_text : Format.formatter -> t -> unit
(** One {!Qopt_util.Tablefmt} table per metric kind, names sorted. *)

val json_value : t -> Qopt_util.Json.t
(** The registry as a structured JSON document — embeddable in a larger
    reply (the compile server's [stats] response nests it verbatim):
    [{"registry":..., "counters":{...}, "gauges":{...},
      "histograms":{...}, "spans":{...}}].  NaN readings (e.g. quantiles
    of an empty histogram) render as [null]. *)

val to_json : t -> string
(** [Qopt_util.Json.to_string] of {!json_value}. *)
