lib/catalog/fkey.ml: Format List String
