(** Materialized views and view matching (Section 6.2).

    A materialized view is a precomputed join result over base tables.
    During optimization every MEMO entry is tested against the registered
    views; a match contributes a substitute plan that scans the materialized
    result instead of recomputing the join.  The *matching tests themselves*
    cost compilation time — the paper's Section 6.2 extension is that a COTE
    must account for it, which it can: the enumerator knows exactly how many
    entries (and therefore tests) there are.

    Matching here is structural join-view matching: the view covers exactly
    the entry's base tables (matched by table name — views over self-joins
    are not supported) and every join predicate of the view appears among
    the entry's internal predicates.  Views carry no local predicates, so a
    match never returns fewer rows than the entry needs. *)

type t = {
  mv_name : string;
  mv_block : Query_block.t;  (** the defining query (join-only) *)
  mv_rows : float;  (** materialized result cardinality *)
  mv_width : float;  (** materialized row width in bytes *)
}

val define : name:string -> Query_block.t -> t
(** Registers a view over the defining block; the materialized size is the
    full-model cardinality estimate of the block.  Raises [Invalid_argument]
    if the block has local predicates, children, grouping or ordering, or
    duplicate table names. *)

val matches : t -> Query_block.t -> Qopt_util.Bitset.t -> bool
(** [matches view block tables] — does the view compute exactly the join of
    [tables] (a MEMO entry of [block]) under the entry's predicates? *)

val substitute_cost : Cost_model.params -> t -> float
(** Cost of scanning the materialized result. *)

val pp : Format.formatter -> t -> unit
