(** Cardinality estimation for MEMO entries.

    Cardinality is a logical property: it has the same value for every plan
    of an entry and is computed once per entry (Section 3.2).  Two models are
    provided:

    - [Full]: the real optimizer's model — histogram-based selectivities,
      correlation back-off across multiple predicates between the same pair
      of quantifiers, and unique-key clamping.
    - [Simple]: the cheap model used in plan-estimate mode — closed-form
      System-R-style selectivities with no histogram access and no key/FD
      adjustment.

    Because DB2's enumerator applies cardinality-sensitive heuristics (the
    card-1 Cartesian rule), the two models can disagree about which joins are
    enumerated; the paper cites this as the main source of HSJN plan-count
    error in the parallel workloads (Section 5.2).  [Simple] exists to
    reproduce exactly that behaviour. *)

module Bitset = Qopt_util.Bitset

type mode =
  | Full
  | Simple

val local_selectivity : mode -> Query_block.t -> Pred.t -> float
(** Selectivity of a non-join predicate. *)

val join_selectivity : mode -> Query_block.t -> Pred.t -> float
(** Selectivity of an equality join predicate. *)

val combined_join_selectivity : mode -> Query_block.t -> Pred.t list -> float
(** Combined selectivity of a set of join predicates with the per-pair
    correlation back-off applied (the i-th most selective predicate between
    the same quantifier pair contributes [sel^(1/2^i)]). *)

val of_set : mode -> Query_block.t -> Bitset.t -> float
(** Estimated output cardinality of the table set with all internal
    predicates applied.  Always positive. *)
