(** Abstract syntax for the supported SQL subset.

    Enough SQL to express every workload shape the paper evaluates:
    select-project-join blocks with inner and left outer joins, conjunctive
    WHERE clauses (column-column equality, column-literal comparisons, IN
    lists), GROUP BY, ORDER BY, and EXISTS / IN subqueries. *)

type literal =
  | Num of float
  | Str of string

type col = {
  c_table : string option;  (** qualifier: table name or alias *)
  c_name : string;
}

type cmp =
  | Eq
  | Lt
  | Le
  | Gt
  | Ge

type condition =
  | Cmp_cols of col * cmp * col
      (** column-op-column; equality forms a join predicate *)
  | Cmp_lit of col * cmp * literal
  | In_list of col * literal list
  | Exists of select
  | In_subquery of col * select

and table_ref = {
  t_name : string;
  t_alias : string option;
}

and join_kind =
  | Inner
  | Left_outer

and join_clause = {
  j_kind : join_kind;
  j_table : table_ref;
  j_on : condition list;
}

and select = {
  sel_items : sel_item list;
  sel_from : table_ref list;  (** comma-separated FROM items *)
  sel_joins : join_clause list;  (** explicit JOIN ... ON clauses *)
  sel_where : condition list;  (** conjuncts *)
  sel_group_by : col list;
  sel_order_by : col list;
  sel_limit : int option;  (** LIMIT n — a top-N query *)
}

and sel_item =
  | Star
  | Col_item of col
  | Agg of string * col  (** aggregate function applied to a column *)

val col : ?table:string -> string -> col

val pp_select : Format.formatter -> select -> unit
(** Prints valid SQL that re-parses to an equal AST. *)

val to_string : select -> string
