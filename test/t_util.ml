(* Rng, Stats, Regression, Timer, Tablefmt, Json. *)

module Rng = Qopt_util.Rng
module Stats = Qopt_util.Stats
module Regression = Qopt_util.Regression
module Timer = Qopt_util.Timer
module Tablefmt = Qopt_util.Tablefmt
module Json = Qopt_util.Json

let t name f = Alcotest.test_case name `Quick f

let feq = Alcotest.(check (float 1e-9))

let feq_loose = Alcotest.(check (float 1e-6))

let rng_tests =
  [
    t "rng deterministic for equal seeds" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 50 do
          Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
        done);
    t "rng differs across seeds" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        Alcotest.(check bool) "different" true (Rng.int64 a <> Rng.int64 b));
    t "int respects bound" (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
        done);
    t "int rejects non-positive bound" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int (Rng.create 1) 0)));
    t "int_range inclusive" (fun () ->
        let r = Rng.create 4 in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Rng.int_range r 2 4 in
          if v = 2 then seen_lo := true;
          if v = 4 then seen_hi := true;
          Alcotest.(check bool) "in range" true (v >= 2 && v <= 4)
        done;
        Alcotest.(check bool) "hits lo" true !seen_lo;
        Alcotest.(check bool) "hits hi" true !seen_hi);
    t "float in [0,bound)" (fun () ->
        let r = Rng.create 5 in
        for _ = 1 to 1000 do
          let v = Rng.float r 2.5 in
          Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
        done);
    t "shuffle preserves multiset" (fun () ->
        let r = Rng.create 6 in
        let arr = Array.init 30 Fun.id in
        Rng.shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same elements" (Array.init 30 Fun.id) sorted);
    t "sample distinct" (fun () ->
        let r = Rng.create 8 in
        let s = Rng.sample r 5 [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        Alcotest.(check int) "size" 5 (List.length s);
        Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s)));
    t "copy forks the stream" (fun () ->
        let a = Rng.create 9 in
        ignore (Rng.int64 a);
        let b = Rng.copy a in
        Alcotest.(check int64) "same next" (Rng.int64 a) (Rng.int64 b));
  ]

let stats_tests =
  [
    t "mean" (fun () -> feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]));
    t "mean empty" (fun () -> feq "mean []" 0.0 (Stats.mean []));
    t "median odd" (fun () -> feq "median" 3.0 (Stats.median [ 5.0; 3.0; 1.0 ]));
    t "median even" (fun () -> feq "median" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]));
    t "stddev of constants is 0" (fun () -> feq "sd" 0.0 (Stats.stddev [ 2.0; 2.0; 2.0 ]));
    t "stddev known" (fun () -> feq_loose "sd" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]));
    t "min/max" (fun () ->
        feq "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
        feq "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]));
    t "pct_error signed" (fun () ->
        feq "over" 50.0 (Stats.pct_error ~actual:2.0 ~estimate:3.0);
        feq "under" (-50.0) (Stats.pct_error ~actual:2.0 ~estimate:1.0));
    t "pct_error zero actual" (fun () ->
        feq "both zero" 0.0 (Stats.pct_error ~actual:0.0 ~estimate:0.0);
        Alcotest.(check bool) "inf" true
          (Float.is_integer (Stats.pct_error ~actual:0.0 ~estimate:1.0) = false
          || Stats.pct_error ~actual:0.0 ~estimate:1.0 = Float.infinity));
    t "mean/max abs pct error" (fun () ->
        let pairs = [ (2.0, 3.0); (2.0, 1.0) ] in
        feq "mean" 50.0 (Stats.mean_abs_pct_error pairs);
        feq "max" 50.0 (Stats.max_abs_pct_error pairs));
    t "r_squared perfect fit" (fun () ->
        feq "r2" 1.0 (Stats.r_squared ~actual:[ 1.0; 2.0; 3.0 ] ~fitted:[ 1.0; 2.0; 3.0 ]));
    t "r_squared mean-only fit" (fun () ->
        feq "r2" 0.0 (Stats.r_squared ~actual:[ 1.0; 2.0; 3.0 ] ~fitted:[ 2.0; 2.0; 2.0 ]));
  ]

let regression_tests =
  [
    t "solve 2x2" (fun () ->
        let x = Regression.solve [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] [| 5.0; 10.0 |] in
        feq_loose "x0" 1.0 x.(0);
        feq_loose "x1" 3.0 x.(1));
    t "solve singular raises" (fun () ->
        Alcotest.check_raises "singular" (Failure "Regression.solve: singular matrix")
          (fun () ->
            ignore (Regression.solve [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 2.0 |])));
    t "fit recovers planted coefficients" (fun () ->
        let coeffs = [| 2.5; -1.0; 0.5 |] in
        let xs =
          Array.init 20 (fun i ->
              [| float_of_int (i + 1); float_of_int ((i * 3) mod 7); float_of_int ((i * 5) mod 11) |])
        in
        let ys = Array.map (fun row -> Regression.predict coeffs row) xs in
        let fitted = Regression.fit xs ys in
        Array.iteri (fun i c -> feq_loose (Printf.sprintf "c%d" i) c fitted.(i)) coeffs);
    t "fit with intercept" (fun () ->
        let xs = Array.init 10 (fun i -> [| float_of_int i |]) in
        let ys = Array.map (fun row -> 3.0 +. (2.0 *. row.(0))) xs in
        let fitted = Regression.fit ~intercept:true xs ys in
        feq_loose "intercept" 3.0 fitted.(0);
        feq_loose "slope" 2.0 fitted.(1));
    t "fit_nonneg clamps negatives" (fun () ->
        (* True model has a negative coefficient; NNLS must return >= 0. *)
        let xs = Array.init 15 (fun i -> [| float_of_int (i + 1); float_of_int (15 - i) |]) in
        let ys = Array.map (fun row -> (2.0 *. row.(0)) -. (0.5 *. row.(1))) xs in
        let fitted = Regression.fit_nonneg xs ys in
        Alcotest.(check bool) "nonneg" true (fitted.(0) >= 0.0 && fitted.(1) >= 0.0));
    t "fit_nonneg recovers nonneg model" (fun () ->
        let xs = Array.init 15 (fun i -> [| float_of_int (i + 1); float_of_int ((i * 2) mod 5) |]) in
        let ys = Array.map (fun row -> (1.5 *. row.(0)) +. (0.25 *. row.(1))) xs in
        let fitted = Regression.fit_nonneg xs ys in
        feq_loose "c0" 1.5 fitted.(0);
        Alcotest.(check (float 1e-3)) "c1" 0.25 fitted.(1));
    t "predict shape mismatch" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Regression.predict: shape mismatch")
          (fun () -> ignore (Regression.predict [| 1.0 |] [| 1.0; 2.0 |])));
  ]

let timer_tests =
  [
    t "time returns result" (fun () ->
        let r, dt = Timer.time (fun () -> 41 + 1) in
        Alcotest.(check int) "result" 42 r;
        Alcotest.(check bool) "nonneg" true (dt >= 0.0));
    t "bucket accumulates" (fun () ->
        let b = Timer.bucket () in
        let x = Timer.add_to b (fun () -> 7) in
        ignore (Timer.add_to b (fun () -> 8));
        Alcotest.(check int) "result" 7 x;
        Alcotest.(check bool) "elapsed >= 0" true (Timer.elapsed b >= 0.0);
        Timer.reset b;
        Alcotest.(check (float 0.0)) "reset" 0.0 (Timer.elapsed b));
    t "time_median result" (fun () ->
        let r, dt = Timer.time_median ~repeats:3 (fun () -> "x") in
        Alcotest.(check string) "result" "x" r;
        Alcotest.(check bool) "nonneg" true (dt >= 0.0));
  ]

let tablefmt_tests =
  [
    t "renders aligned table" (fun () ->
        let tbl = Tablefmt.create [ ("name", Tablefmt.Left); ("n", Tablefmt.Right) ] in
        Tablefmt.add_row tbl [ "a"; "1" ];
        Tablefmt.add_row tbl [ "long"; "22" ];
        let buf = Buffer.create 64 in
        let ppf = Format.formatter_of_buffer buf in
        Tablefmt.output ppf tbl;
        Format.pp_print_flush ppf ();
        let s = Buffer.contents buf in
        Alcotest.(check bool) "has padded cell" true
          (Helpers.contains s "| a    |  1 |"));
    t "arity mismatch raises" (fun () ->
        let tbl = Tablefmt.create [ ("a", Tablefmt.Left) ] in
        Alcotest.check_raises "raises" (Invalid_argument "Tablefmt.add_row: arity mismatch")
          (fun () -> Tablefmt.add_row tbl [ "x"; "y" ]));
    t "formatters" (fun () ->
        Alcotest.(check string) "seconds" "0.1235" (Tablefmt.fseconds 0.12345);
        Alcotest.(check string) "pct" "12.3%" (Tablefmt.fpct 12.34);
        Alcotest.(check string) "count" "42" (Tablefmt.fcount 42.4));
  ]

let monotonic_tests =
  [
    t "monotonic_now never decreases" (fun () ->
        let prev = ref (Timer.monotonic_now ()) in
        for _ = 1 to 1000 do
          let now = Timer.monotonic_now () in
          Alcotest.(check bool) "non-decreasing" true (now >= !prev);
          prev := now
        done);
    t "monotonic_now tracks real sleep" (fun () ->
        let t0 = Timer.monotonic_now () in
        Unix.sleepf 0.02;
        let dt = Timer.monotonic_now () -. t0 in
        (* generous upper bound: scheduling jitter, not clock error *)
        Alcotest.(check bool) "at least the sleep" true (dt >= 0.019);
        Alcotest.(check bool) "not wildly more" true (dt < 2.0));
  ]

let solve_result_tests =
  [
    t "solve_result agrees with solve when well-conditioned" (fun () ->
        let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
        let b = [| 5.0; 10.0 |] in
        match Regression.solve_result a b with
        | Error e -> Alcotest.failf "unexpected Error %s" e
        | Ok x ->
          let y = Regression.solve [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] [| 5.0; 10.0 |] in
          feq "x0" y.(0) x.(0);
          feq "x1" y.(1) x.(1));
    t "solve_result singular without ridge is Error" (fun () ->
        let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
        match Regression.solve_result a [| 1.0; 2.0 |] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error on singular system");
    t "solve_result ridge recovers a solution" (fun () ->
        let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
        match Regression.solve_result ~ridge:1e-6 a [| 1.0; 2.0 |] with
        | Error e -> Alcotest.failf "ridge should solve, got Error %s" e
        | Ok x ->
          (* damped solution still approximately satisfies the (consistent)
             system *)
          let r0 = x.(0) +. (2.0 *. x.(1)) in
          Alcotest.(check (float 1e-3)) "row0" 1.0 r0);
    t "fit_result rank-deficient is Error" (fun () ->
        (* second column is 3x the first: normal equations are singular *)
        let xs = Array.init 10 (fun i -> [| float_of_int (i + 1); 3.0 *. float_of_int (i + 1) |]) in
        let ys = Array.map (fun row -> 2.0 *. row.(0)) xs in
        match Regression.fit_result xs ys with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error on collinear features");
    t "fit_result well-conditioned recovers model" (fun () ->
        let xs = Array.init 10 (fun i -> [| float_of_int (i + 1); float_of_int ((i * i) mod 7) |]) in
        let ys = Array.map (fun row -> (2.0 *. row.(0)) +. (0.5 *. row.(1))) xs in
        match Regression.fit_result xs ys with
        | Error e -> Alcotest.failf "unexpected Error %s" e
        | Ok c ->
          feq_loose "c0" 2.0 c.(0);
          feq_loose "c1" 0.5 c.(1));
  ]

let json_tests =
  let roundtrip s =
    match Json.parse s with
    | Error e -> Alcotest.failf "parse %S: %s" s e
    | Ok v -> Json.to_string v
  in
  [
    t "print and reparse an object" (fun () ->
        let v =
          Json.Obj
            [
              ("a", Json.int 3);
              ("b", Json.Str "x\"y\n");
              ("c", Json.Arr [ Json.Bool true; Json.Null; Json.Num 1.5 ]);
            ]
        in
        match Json.parse (Json.to_string v) with
        | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
        | Error e -> Alcotest.failf "reparse: %s" e);
    t "integers print without a fraction" (fun () ->
        Alcotest.(check string) "int" "42" (Json.to_string (Json.int 42));
        Alcotest.(check string) "neg" "-7" (Json.to_string (Json.Num (-7.0))));
    t "floats survive a roundtrip exactly" (fun () ->
        let v = 1.3796000530419406e-05 in
        match Json.parse (Json.to_string (Json.Num v)) with
        | Ok (Json.Num v') -> Alcotest.(check (float 0.0)) "exact" v v'
        | _ -> Alcotest.fail "expected Num");
    t "escapes and unicode parse" (fun () ->
        Alcotest.(check string) "tab" "\"a\\tb\"" (roundtrip "\"a\\tb\"");
        (match Json.parse "\"A\\u00e9\"" with
        | Ok (Json.Str s) -> Alcotest.(check string) "unicode" "A\xc3\xa9" s
        | _ -> Alcotest.fail "expected Str"));
    t "rejects trailing garbage" (fun () ->
        match Json.parse "{} x" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected Error on trailing input");
    t "rejects malformed documents" (fun () ->
        List.iter
          (fun s ->
            match Json.parse s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected parse error on %S" s)
          [ "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "nul"; "" ]);
    t "member and accessors" (fun () ->
        match Json.parse {|{"s":"x","n":2.5,"i":7,"b":false,"z":null}|} with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok v ->
          let field name get = Option.bind (Json.member name v) get in
          Alcotest.(check (option string)) "s" (Some "x") (field "s" Json.get_string);
          Alcotest.(check (option (float 0.0))) "n" (Some 2.5) (field "n" Json.get_float);
          Alcotest.(check (option int)) "i" (Some 7) (field "i" Json.get_int);
          Alcotest.(check (option bool)) "b" (Some false) (field "b" Json.get_bool);
          Alcotest.(check bool) "missing is None" true (Json.member "nope" v = None));
  ]

let suite =
  rng_tests @ stats_tests @ regression_tests @ solve_result_tests @ timer_tests
  @ monotonic_tests @ tablefmt_tests @ json_tests
