(* Per-domain shard slots for the metrics layer.

   Every metric keeps one cell per slot; recording touches only the cell of
   the current domain's slot, so concurrent workers never contend (or race)
   on the same mutable state.  Merged readings sum (or last-write-win over)
   the slots.  Slot 0 belongs to the main domain; `Qopt_par.Pool` assigns
   slots 1..n-1 to its workers via {!set_slot}. *)

let max_slots = 16

let key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let slot () = Domain.DLS.get key

let set_slot i =
  if i < 0 || i >= max_slots then
    invalid_arg
      (Printf.sprintf "Qopt_obs.Shard.set_slot: slot %d outside [0, %d)" i
         max_slots);
  Domain.DLS.set key i

(* A process-wide write sequence used to merge last-write-wins metrics
   (gauges): the shard with the highest sequence holds the newest value. *)
let seq = Atomic.make 1

let next_seq () = Atomic.fetch_and_add seq 1
