module Bitset = Qopt_util.Bitset
module Table = Qopt_catalog.Table

type outer_join = {
  oj_preserved : Bitset.t;
  oj_null : Bitset.t;
}

(* The precomputed join-graph index.  [adj_neighbors.(q)] is the set of
   quantifiers sharing a join predicate with [q]; [adj_pair_preds] maps a
   packed quantifier pair (min shifted by 6 bits, which fits because
   Bitset.max_elt = 61) to that edge's predicates tagged with their index in
   the original [preds] list, ascending.  Derived solely from [quantifiers]
   and [preds] in [make]; functional updates that leave those two fields
   untouched remain valid. *)
type adjacency = {
  adj_neighbors : Bitset.t array;
  adj_pair_preds : (int, (int * Pred.t) list) Hashtbl.t;
}

type t = {
  name : string;
  quantifiers : Quantifier.t array;
  preds : Pred.t list;
  group_by : Colref.t list;
  order_by : Colref.t list;
  outer_joins : outer_join list;
  children : t list;
  first_n : int option;
  adj : adjacency;
}

let pair_key a b = if a < b then (a lsl 6) lor b else (b lsl 6) lor a

let build_adjacency quantifiers preds =
  let n = Array.length quantifiers in
  let adj_neighbors = Array.make n Bitset.empty in
  let adj_pair_preds = Hashtbl.create (max 16 (List.length preds)) in
  List.iteri
    (fun i p ->
      match Pred.qpair p with
      | None -> ()
      | Some (a, b) ->
        adj_neighbors.(a) <- Bitset.add b adj_neighbors.(a);
        adj_neighbors.(b) <- Bitset.add a adj_neighbors.(b);
        let key = pair_key a b in
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt adj_pair_preds key)
        in
        Hashtbl.replace adj_pair_preds key ((i, p) :: prev))
    preds;
  (* Per-edge lists were built by prepending: restore ascending pred-list
     order once, so lookups return predicates exactly as a scan of [preds]
     would. *)
  Hashtbl.filter_map_inplace
    (fun _ l -> Some (List.rev l))
    adj_pair_preds;
  { adj_neighbors; adj_pair_preds }

let n_quantifiers t = Array.length t.quantifiers

let quantifier t i = t.quantifiers.(i)

let all_tables t = Bitset.full (n_quantifiers t)

let check_colref t what (c : Colref.t) =
  if c.q < 0 || c.q >= n_quantifiers t then
    invalid_arg
      (Printf.sprintf "Query_block(%s): %s references unknown quantifier Q%d"
         t.name what c.q);
  let table = (quantifier t c.q).Quantifier.table in
  if not (Table.mem_column table c.col) then
    invalid_arg
      (Printf.sprintf "Query_block(%s): %s references unknown column %s.%s"
         t.name what table.Table.name c.col)

let validate t =
  List.iter
    (fun p ->
      match p with
      | Pred.Eq_join (l, r) ->
        check_colref t "join predicate" l;
        check_colref t "join predicate" r
      | Pred.Local_cmp (c, _, _) | Pred.Local_in (c, _) ->
        check_colref t "local predicate" c
      | Pred.Expensive (ts, sel, _) ->
        if sel <= 0.0 || sel > 1.0 then
          invalid_arg "Query_block: expensive predicate selectivity out of (0,1]";
        if not (Bitset.subset ts (all_tables t)) then
          invalid_arg "Query_block: expensive predicate references unknown quantifier")
    t.preds;
  List.iter (check_colref t "GROUP BY") t.group_by;
  List.iter (check_colref t "ORDER BY") t.order_by;
  List.iter
    (fun oj ->
      if not (Bitset.subset oj.oj_preserved (all_tables t))
         || not (Bitset.subset oj.oj_null (all_tables t))
         || not (Bitset.disjoint oj.oj_preserved oj.oj_null)
      then invalid_arg "Query_block: malformed outer join sides")
    t.outer_joins;
  Array.iteri
    (fun i (q : Quantifier.t) ->
      if q.Quantifier.id <> i then
        invalid_arg "Query_block: quantifier ids must match their positions";
      if not (Bitset.subset q.Quantifier.deps (all_tables t))
         || Bitset.mem i q.Quantifier.deps
      then invalid_arg "Query_block: malformed dependency set")
    t.quantifiers

let make ?(name = "q") ?(group_by = []) ?(order_by = []) ?(outer_joins = [])
    ?(children = []) ?first_n ~quantifiers ~preds () =
  (match first_n with
  | Some n when n <= 0 -> invalid_arg "Query_block: first_n must be positive"
  | Some _ | None -> ());
  let quantifiers = Array.of_list quantifiers in
  (* Validate against a placeholder index first: adjacency construction
     indexes arrays by quantifier id, so malformed blocks must be rejected
     with [validate]'s diagnostics before the index is built. *)
  let t =
    {
      name;
      quantifiers;
      preds;
      group_by;
      order_by;
      outer_joins;
      children;
      first_n;
      adj = { adj_neighbors = [||]; adj_pair_preds = Hashtbl.create 1 };
    }
  in
  validate t;
  { t with adj = build_adjacency quantifiers preds }

let neighbors t q = t.adj.adj_neighbors.(q)

let crossing_preds t s l =
  (* Indexed lookup: walk the edges from members of [s] into [l] instead of
     scanning the block's full predicate list.  Multi-edge results are
     re-sorted by original predicate index so the list is identical to what
     [List.filter (fun p -> Pred.crosses p s l) t.preds] returns. *)
  let tagged =
    Bitset.fold
      (fun q acc ->
        Bitset.fold
          (fun nb acc ->
            match Hashtbl.find_opt t.adj.adj_pair_preds (pair_key q nb) with
            | None -> acc
            | Some ps -> ps :: acc)
          (Bitset.inter (neighbors t q) l)
          acc)
      s []
  in
  match tagged with
  | [] -> []
  | [ ps ] -> List.map snd ps
  | several ->
    List.map snd
      (List.sort
         (fun (i, _) (j, _) -> Stdlib.compare (i : int) j)
         (List.concat several))

let join_preds t = List.filter Pred.is_join t.preds

let local_preds t = List.filter (fun p -> not (Pred.is_join p)) t.preds

let column t (c : Colref.t) =
  Table.find_column (quantifier t c.q).Quantifier.table c.col

let is_connected t =
  let n = n_quantifiers t in
  if n <= 1 then true
  else begin
    let reached = ref (Bitset.singleton 0) in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun p ->
          match Pred.join_cols p with
          | None -> ()
          | Some (l, r) ->
            let has_l = Bitset.mem l.Colref.q !reached in
            let has_r = Bitset.mem r.Colref.q !reached in
            if has_l && not has_r then begin
              reached := Bitset.add r.Colref.q !reached;
              changed := true
            end
            else if has_r && not has_l then begin
              reached := Bitset.add l.Colref.q !reached;
              changed := true
            end)
        t.preds
    done;
    Bitset.cardinal !reached = n
  end

let rec iter_blocks f t =
  List.iter (iter_blocks f) t.children;
  f t

let total_quantifiers t =
  let n = ref 0 in
  iter_blocks (fun b -> n := !n + n_quantifiers b) t;
  !n

let pp ppf t =
  Format.fprintf ppf "block %s: %d tables, %d preds, %d gb, %d ob, %d oj, %d sub"
    t.name (n_quantifiers t) (List.length t.preds) (List.length t.group_by)
    (List.length t.order_by)
    (List.length t.outer_joins)
    (List.length t.children)
