/* Monotonic clock for Qopt_util.Timer.

   clock_gettime(CLOCK_MONOTONIC) never steps backward when NTP adjusts
   the wall clock, so spans, deadlines and queue-wait measurements stay
   correct.  Returned as double seconds from an arbitrary epoch (boot):
   only differences are meaningful. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value qopt_monotonic_now(value unit)
{
  LARGE_INTEGER freq, count;
  (void)unit;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return caml_copy_double((double)count.QuadPart / (double)freq.QuadPart);
}

#else
#include <time.h>

CAMLprim value qopt_monotonic_now(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
#endif
