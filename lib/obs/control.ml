let on = ref false

let enabled () = !on

let set_enabled b = on := b

let with_enabled b f =
  let saved = !on in
  on := b;
  Fun.protect ~finally:(fun () -> on := saved) f
