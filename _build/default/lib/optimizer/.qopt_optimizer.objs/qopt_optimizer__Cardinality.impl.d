lib/optimizer/cardinality.ml: Colref Float List Map Pred Qopt_catalog Qopt_util Quantifier Query_block
