lib/optimizer/plan.ml: Format Hashtbl Join_method List Option Order_prop Partition_prop Pred Qopt_catalog Qopt_util String
