test/t_util.ml: Alcotest Array Buffer Float Format Fun Helpers List Printf Qopt_util
