let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let median = function
  | [] -> 0.0
  | l ->
    let arr = Array.of_list l in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean l in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) l) in
    sqrt var

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: rest -> List.fold_left Float.min x rest

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: rest -> List.fold_left Float.max x rest

let pct_error ~actual ~estimate =
  if actual = 0.0 then if estimate = 0.0 then 0.0 else Float.infinity
  else (estimate -. actual) /. actual *. 100.0

let abs_pct_error ~actual ~estimate = Float.abs (pct_error ~actual ~estimate)

let mean_abs_pct_error pairs =
  mean (List.map (fun (actual, estimate) -> abs_pct_error ~actual ~estimate) pairs)

let max_abs_pct_error = function
  | [] -> 0.0
  | pairs ->
    maximum
      (List.map (fun (actual, estimate) -> abs_pct_error ~actual ~estimate) pairs)

let r_squared ~actual ~fitted =
  let m = mean actual in
  let ss_tot =
    List.fold_left (fun acc y -> acc +. ((y -. m) *. (y -. m))) 0.0 actual
  in
  let ss_res =
    List.fold_left2
      (fun acc y f -> acc +. ((y -. f) *. (y -. f)))
      0.0 actual fitted
  in
  if ss_tot = 0.0 then if ss_res = 0.0 then 1.0 else 0.0
  else 1.0 -. (ss_res /. ss_tot)
