examples/meta_optimizer.mli:
