lib/workloads/warehouse.mli: Qopt_catalog Workload
