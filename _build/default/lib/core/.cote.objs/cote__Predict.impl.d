lib/core/predict.ml: Estimator Qopt_optimizer Time_model
