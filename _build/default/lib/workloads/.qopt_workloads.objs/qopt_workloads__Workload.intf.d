lib/workloads/workload.mli: Qopt_catalog Qopt_optimizer
