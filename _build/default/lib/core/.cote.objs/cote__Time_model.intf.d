lib/core/time_model.mli: Estimator Format Qopt_optimizer
