(** The fleet front door: one process that estimates every compile once
    and routes it to a fleet of independent [qopt serve] backends.

    Process isolation is the point — each backend runs its own OCaml
    runtime, so one backend's stop-the-world minor GC (or its death)
    never stalls the others, which is what keeps tail latency flat at
    equal total domains compared to one big multi-worker server.

    Routing pipeline per compile request:

    + {b Estimate once}: parse + bind at the router, run one COTE pass
      over the configured level chain, refine with the router's shared
      statement cache (fed back from measured [c_elapsed_s] in compile
      replies).  The refined estimate rides along as [estimate_hint_s],
      so backends started with [--trust-hints] skip their own pass.
    + {b Tier}: predicted seconds at or under [threshold_s] go to the
      latency tier (backends [0, latency_tier)), the rest to the
      throughput tier (the remaining backends, with a higher timeout).
    + {b Affinity}: within the tier, candidates are ordered by
      rendezvous hash over the schema-qualified template key, so repeat
      templates land on the same backend (warm statement + plan
      caches); with [affinity = false], least-inflight wins.
    + {b Retry / failover}: a rejection carrying [retry_after_us] earns
      one same-backend retry after the advised backoff (capped at
      [backoff_cap_s]); a dead channel marks the backend down and fails
      over along the candidate order — a SIGKILLed backend costs an
      in-flight request one retry, never a wedge.  Down backends are
      re-admitted by a single-flight probe after [probe_after_s]
      (respawning a dead spawned process when [respawn]).

    The router also answers [estimate] (locally, no backend hop),
    [stats] (per-backend health + live backend stats + the router's
    [fleet.*] metrics), and [shutdown] (drains backends first). *)

module O = Qopt_optimizer
module Srv = Qopt_server

type config = {
  listen : Srv.Server.addr;
  backends : Backend.spec list;
  latency_tier : int;  (** backends reserved for small queries *)
  threshold_s : float;  (** tier split on predicted seconds *)
  affinity : bool;  (** rendezvous template affinity vs least-inflight *)
  env : O.Env.t;
  model : Cote.Time_model.t;
  schemas : (string * Qopt_catalog.Schema.t) list;
  levels : Cote.Multi_level.level list;
  latency_timeout_s : float;
  throughput_timeout_s : float;
  backoff_cap_s : float;  (** cap on server-advised retry backoff *)
  probe_after_s : float;  (** down-time before a readmission probe *)
  respawn : bool;  (** probes may respawn dead spawned backends *)
}

val default_config :
  listen:Srv.Server.addr ->
  backends:Backend.spec list ->
  model:Cote.Time_model.t ->
  schemas:(string * Qopt_catalog.Schema.t) list ->
  unit ->
  config
(** [latency_tier = n-1] (one throughput backend), [threshold_s =
    0.5ms], affinity on, serial env, default level chain, 10s/60s tier
    timeouts, 50ms backoff cap, 250ms probe cool-down, respawn on. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Spawn/connect every backend (fails if any never comes up), listen,
    and serve until a [shutdown] request.  [on_ready] fires after the
    listener is bound and all backends are in rotation — tests hook it
    to start clients.  On shutdown, backends drain before client
    connections are torn down. *)
