type policy = {
  per_request_s : float;
  aggregate_s : float;
  max_queue : int;
}

type reason = Per_request | Aggregate | Queue_full | Shutting_down

let unlimited =
  { per_request_s = infinity; aggregate_s = infinity; max_queue = max_int }

let reason_string = function
  | Per_request -> "per_request_budget"
  | Aggregate -> "aggregate_budget"
  | Queue_full -> "queue_full"
  | Shutting_down -> "shutting_down"

(* How long a rejected client should wait before retrying.  Load-shaped
   rejections (aggregate budget, full queue) clear as the in-flight work
   drains, so the estimated in-flight seconds are the natural horizon; a
   per-request or shutdown rejection is not cured by waiting at this
   server at all, so no hint is offered. *)
let retry_after_s reason ~in_flight_s =
  match reason with
  | Aggregate | Queue_full -> Some (Float.max in_flight_s 0.001)
  | Per_request | Shutting_down -> None

let decide policy ~in_flight_s ~queued ~estimate_s =
  if estimate_s > policy.per_request_s then Error Per_request
  else if
    (* The aggregate ceiling only bites when other work is in flight: an
       empty server always accepts a per-request-legal query, so a budget
       below one query's estimate cannot wedge the service. *)
    in_flight_s +. estimate_s > policy.aggregate_s
    && (in_flight_s > 0.0 || queued > 0)
  then Error Aggregate
  else if queued >= policy.max_queue then Error Queue_full
  else Ok ()
