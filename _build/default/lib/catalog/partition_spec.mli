(** Physical data partitioning for the shared-nothing parallel mode.

    A table in the parallel environment is hash- or range-partitioned across
    the nodes on a set of key columns (cf. DB2 Parallel Edition, the paper's
    Section 4).  The partition property of plans derives from these physical
    specs (lazy generation policy) plus the repartitioning heuristic. *)

type kind =
  | Hash
  | Range

type t = {
  kind : kind;
  keys : string list;  (** partitioning key columns *)
}

val hash : string list -> t

val range : string list -> t

val equal : t -> t -> bool
(** Hash partitions compare keys as sets; range partitions compare the key
    list in order. *)

val pp : Format.formatter -> t -> unit
