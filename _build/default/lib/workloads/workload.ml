type query = {
  q_name : string;
  block : Qopt_optimizer.Query_block.t;
  sql : string option;
}

type t = {
  w_name : string;
  schema : Qopt_catalog.Schema.t;
  queries : query list;
}

let query ?sql q_name block = { q_name; block; sql }

let make ~name ~schema queries = { w_name = name; schema; queries }

let find t name = List.find (fun q -> String.equal q.q_name name) t.queries

let size t = List.length t.queries
