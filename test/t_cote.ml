(* The COTE: accumulate/estimator counting, the time model, calibration,
   memory model, multi-level piggyback, predict. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

let knobs = Helpers.stable_knobs

let optimize ?(env = O.Env.serial) block = O.Optimizer.optimize env ~knobs block

let estimate ?(env = O.Env.serial) ?options block =
  Cote.Estimator.estimate ?options ~knobs env block

let estimator_tests =
  [
    t "estimator enumerates exactly the optimizer's joins (stable knobs)" (fun () ->
        List.iter
          (fun block ->
            let r = optimize block in
            let e = estimate block in
            Alcotest.(check int) "joins equal" r.O.Optimizer.joins e.Cote.Estimator.joins)
          [ Helpers.chain 5; Helpers.chain ~extra:2 4; Helpers.star_block 5 ]);
    t "serial HSJN estimate is exact" (fun () ->
        List.iter
          (fun block ->
            let r = optimize block in
            let e = estimate block in
            Alcotest.(check int) "hsjn exact" r.O.Optimizer.generated.O.Memo.hsjn
              e.Cote.Estimator.hsjn)
          [ Helpers.chain 5; Helpers.star_block 6; Helpers.chain ~extra:1 ~order_by:true 4 ]);
    t "estimates within 30% on synthetic shapes" (fun () ->
        List.iter
          (fun block ->
            let r = optimize block in
            let e = estimate block in
            let actual = float_of_int (O.Memo.counts_total r.O.Optimizer.generated) in
            let est = float_of_int (Cote.Estimator.total e) in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %g vs %g" block.O.Query_block.name actual est)
              true
              (Float.abs (est -. actual) /. actual <= 0.30))
          [
            Helpers.chain 5;
            Helpers.chain ~extra:2 ~order_by:true 5;
            Helpers.star_block 6;
            Helpers.chain ~extra:1 ~group_by:true 6;
          ]);
    t "scan plan estimate matches real scan plans" (fun () ->
        let block = Helpers.chain ~order_by:true 3 in
        let r = optimize block in
        let e = estimate block in
        Alcotest.(check int) "scan plans" r.O.Optimizer.scan_plans e.Cote.Estimator.scan_plans);
    t "ORDER BY raises the estimate (Figure 3)" (fun () ->
        let without = estimate (Helpers.chain 3) in
        let with_ob = estimate (Helpers.chain ~order_by:true 3) in
        Alcotest.(check int) "same joins" without.Cote.Estimator.joins with_ob.Cote.Estimator.joins;
        Alcotest.(check bool) "more plans" true
          (Cote.Estimator.total with_ob > Cote.Estimator.total without));
    t "children blocks included" (fun () ->
        let child = Helpers.chain 3 in
        let parent =
          O.Query_block.make ~name:"p" ~children:[ child ]
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:10.0 "pp") ]
            ~preds:[] ()
        in
        let alone = estimate child in
        let whole = estimate parent in
        Alcotest.(check int) "joins from child" alone.Cote.Estimator.joins
          whole.Cote.Estimator.joins);
    t "estimator mirrors the permissive fallback" (fun () ->
        let quantifiers =
          [
            O.Quantifier.make 0 (Helpers.table ~rows:10.0 "fa");
            O.Quantifier.make 1 (Helpers.table ~rows:10.0 "fb");
          ]
        in
        let block = O.Query_block.make ~name:"fall" ~quantifiers ~preds:[] () in
        let r = optimize block in
        let e = estimate block in
        Alcotest.(check int) "joins match" r.O.Optimizer.joins e.Cote.Estimator.joins);
    t "compound vectors at least as accurate as separate lists (parallel)" (fun () ->
        let tables =
          List.init 5 (fun i ->
              Helpers.table ~rows:(1000.0 *. float_of_int (i + 1))
                ~partition:
                  (Qopt_catalog.Partition_spec.hash [ (if i mod 2 = 0 then "j1" else "v") ])
                (Printf.sprintf "cmp%d" i))
        in
        let block =
          O.Query_block.make ~name:"cmp"
            ~quantifiers:(List.mapi (fun i tb -> O.Quantifier.make i tb) tables)
            ~preds:
              (List.init 4 (fun i -> O.Pred.Eq_join (cr i "j1", cr (i + 1) "j1")))
            ~order_by:[ cr 0 "v" ] ()
        in
        let env = O.Env.parallel ~nodes:4 in
        let actual =
          float_of_int
            (O.Memo.counts_total (O.Optimizer.optimize env ~knobs block).O.Optimizer.generated)
        in
        let err options =
          let e = Cote.Estimator.estimate ~options ~knobs env block in
          Float.abs (float_of_int (Cote.Estimator.total e) -. actual)
        in
        let sep = err { Cote.Accumulate.first_join_only = true; separate_lists = true } in
        let cmp = err { Cote.Accumulate.first_join_only = true; separate_lists = false } in
        Alcotest.(check bool)
          (Printf.sprintf "compound (%.0f) <= separate (%.0f) * 1.2" cmp sep)
          true (cmp <= (sep *. 1.2) +. 2.0));
    t "estimation is much faster than optimization" (fun () ->
        let block = Helpers.chain ~extra:2 ~order_by:true 8 in
        let r = optimize block in
        let e = estimate block in
        Alcotest.(check bool)
          (Printf.sprintf "est %.4fs vs opt %.4fs" e.Cote.Estimator.elapsed
             r.O.Optimizer.elapsed)
          true
          (e.Cote.Estimator.elapsed < r.O.Optimizer.elapsed /. 4.0));
  ]

let model =
  Cote.Time_model.make ~c_nljn:2e-6 ~c_mgjn:5e-6 ~c_hsjn:4e-6 ()

let time_model_tests =
  [
    t "predict_counts arithmetic" (fun () ->
        Alcotest.(check (float 1e-12)) "dot product"
          ((2e-6 *. 10.0) +. (5e-6 *. 20.0) +. (4e-6 *. 30.0))
          (Cote.Time_model.predict_counts model ~nljn:10.0 ~mgjn:20.0 ~hsjn:30.0 ~joins:5.0));
    t "ratios normalized to smallest" (fun () ->
        let m, n, h = Cote.Time_model.ratios model in
        Alcotest.(check (float 1e-9)) "m" 2.5 m;
        Alcotest.(check (float 1e-9)) "n" 1.0 n;
        Alcotest.(check (float 1e-9)) "h" 2.0 h);
    t "joins_only model ignores plan counts" (fun () ->
        let jm = Cote.Time_model.joins_only 1e-3 in
        Alcotest.(check (float 1e-12)) "joins only" 5e-3
          (Cote.Time_model.predict_counts jm ~nljn:100.0 ~mgjn:100.0 ~hsjn:100.0 ~joins:5.0));
  ]

let obs ~n ~m ~h ~j ~s =
  {
    Cote.Calibrate.obs_nljn = n;
    obs_mgjn = m;
    obs_hsjn = h;
    obs_joins = j;
    obs_seconds = s;
    obs_t_nljn = s *. 0.4;
    obs_t_mgjn = s *. 0.3;
    obs_t_hsjn = s *. 0.2;
  }

let calibrate_tests =
  [
    t "fit recovers a planted 3-term model" (fun () ->
        let cn = 3e-6 and cm = 7e-6 and ch = 1e-6 in
        let observations =
          List.init 12 (fun i ->
              let n = float_of_int (100 + (i * 37 mod 113)) in
              let m = float_of_int (50 + (i * 17 mod 59)) in
              let h = float_of_int (20 + (i * 11 mod 31)) in
              obs ~n ~m ~h ~j:10.0 ~s:((cn *. n) +. (cm *. m) +. (ch *. h)))
        in
        let fitted = Cote.Calibrate.fit observations in
        Alcotest.(check (float 1e-9)) "cn" cn fitted.Cote.Time_model.c_nljn;
        Alcotest.(check (float 1e-9)) "cm" cm fitted.Cote.Time_model.c_mgjn;
        Alcotest.(check (float 1e-9)) "ch" ch fitted.Cote.Time_model.c_hsjn);
    t "fit_instrumented reproduces total time in aggregate" (fun () ->
        let observations =
          [ obs ~n:100.0 ~m:40.0 ~h:40.0 ~j:20.0 ~s:0.01;
            obs ~n:300.0 ~m:120.0 ~h:120.0 ~j:60.0 ~s:0.03 ]
        in
        let fitted = Cote.Calibrate.fit_instrumented observations in
        let total_pred =
          List.fold_left
            (fun acc o ->
              acc
              +. Cote.Time_model.predict_counts fitted ~nljn:o.Cote.Calibrate.obs_nljn
                   ~mgjn:o.Cote.Calibrate.obs_mgjn ~hsjn:o.Cote.Calibrate.obs_hsjn
                   ~joins:o.Cote.Calibrate.obs_joins)
            0.0 observations
        in
        Alcotest.(check (float 1e-6)) "aggregate" 0.04 total_pred);
    t "fit_instrumented coefficients follow bucket ratios" (fun () ->
        let observations = [ obs ~n:100.0 ~m:10.0 ~h:10.0 ~j:5.0 ~s:0.01 ] in
        let fitted = Cote.Calibrate.fit_instrumented observations in
        (* per-plan: n -> 0.004/100, m -> 0.003/10, h -> 0.002/10: MGJN must
           be the most expensive per plan. *)
        Alcotest.(check bool) "cm largest" true
          (fitted.Cote.Time_model.c_mgjn > fitted.Cote.Time_model.c_nljn
          && fitted.Cote.Time_model.c_mgjn > fitted.Cote.Time_model.c_hsjn));
    t "empty observations rejected" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Calibrate.fit: no observations")
          (fun () -> ignore (Cote.Calibrate.fit [])));
    t "refit keeps the previous model on a rank-deficient set" (fun () ->
        let previous = Cote.Time_model.make ~c_nljn:1e-6 ~c_mgjn:2e-6 ~c_hsjn:3e-6 () in
        (* every observation has proportional plan counts: the normal
           equations are singular, so online recalibration must fall back *)
        let degenerate =
          List.init 8 (fun i ->
              let k = float_of_int (i + 1) in
              obs ~n:(100.0 *. k) ~m:(50.0 *. k) ~h:(20.0 *. k) ~j:(10.0 *. k)
                ~s:(0.001 *. k))
        in
        let m = Cote.Calibrate.refit ~previous degenerate in
        Alcotest.(check bool) "previous returned" true (m = previous));
    t "refit keeps the previous model on an empty set" (fun () ->
        let previous = Cote.Time_model.make ~c_nljn:1e-6 ~c_mgjn:2e-6 ~c_hsjn:3e-6 () in
        Alcotest.(check bool) "previous returned" true
          (Cote.Calibrate.refit ~previous [] = previous));
    t "refit adopts a well-conditioned set" (fun () ->
        let previous = Cote.Time_model.make ~c_nljn:1.0 ~c_mgjn:1.0 ~c_hsjn:1.0 () in
        let cn = 3e-6 and cm = 7e-6 and ch = 1e-6 in
        let observations =
          List.init 12 (fun i ->
              let n = float_of_int (100 + (i * 37 mod 113)) in
              let m = float_of_int (50 + (i * 17 mod 59)) in
              let h = float_of_int (20 + (i * 11 mod 31)) in
              obs ~n ~m ~h ~j:10.0 ~s:((cn *. n) +. (cm *. m) +. (ch *. h)))
        in
        let m = Cote.Calibrate.refit ~previous observations in
        Alcotest.(check bool) "replaced" true (m <> previous);
        Alcotest.(check (float 1e-9)) "cn" cn m.Cote.Time_model.c_nljn);
    t "measure returns consistent observation" (fun () ->
        let o = Cote.Calibrate.measure ~repeats:1 O.Env.serial (Helpers.chain 4) in
        Alcotest.(check bool) "positive time" true (o.Cote.Calibrate.obs_seconds > 0.0);
        Alcotest.(check bool) "counts positive" true
          (o.Cote.Calibrate.obs_nljn > 0.0 && o.Cote.Calibrate.obs_joins > 0.0));
    t "end-to-end: calibrate then predict within 50% on a held-out query" (fun () ->
        let training = [ Helpers.chain 4; Helpers.chain ~extra:1 5; Helpers.star_block 5 ] in
        let observations =
          List.map (fun b -> Cote.Calibrate.measure ~knobs ~repeats:3 O.Env.serial b) training
        in
        let fitted = Cote.Calibrate.fit_instrumented observations in
        let held_out = Helpers.chain ~extra:1 ~order_by:true 6 in
        let p = Cote.Predict.compile_time ~knobs ~model:fitted O.Env.serial held_out in
        let actual = (optimize held_out).O.Optimizer.elapsed in
        Alcotest.(check bool)
          (Printf.sprintf "pred %.4f vs actual %.4f" p.Cote.Predict.seconds actual)
          true
          (Float.abs (p.Cote.Predict.seconds -. actual) /. actual <= 0.5));
  ]

let memory_tests =
  [
    t "memory estimate tracks the real MEMO population" (fun () ->
        let report = Cote.Memory_model.analyze ~knobs O.Env.serial (Helpers.chain ~extra:1 5) in
        Alcotest.(check bool) "positive" true (report.Cote.Memory_model.est_plans > 0.0);
        (* The estimate approximates kept plans; allow the designed slack. *)
        let ratio =
          report.Cote.Memory_model.est_plans /. float_of_int report.Cote.Memory_model.actual_plans
        in
        Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [0.5, 1.6]" ratio) true
          (ratio >= 0.5 && ratio <= 1.6));
    t "would_exceed gate" (fun () ->
        let report = Cote.Memory_model.analyze ~knobs O.Env.serial (Helpers.chain 4) in
        Alcotest.(check bool) "tiny budget exceeded" true
          (Cote.Memory_model.would_exceed report ~budget_bytes:1.0);
        Alcotest.(check bool) "huge budget fine" false
          (Cote.Memory_model.would_exceed report ~budget_bytes:1e12));
  ]

let multilevel_tests =
  [
    t "piggyback base equals a dedicated base estimate" (fun () ->
        let block = Helpers.chain ~extra:1 5 in
        let results, _ =
          Cote.Multi_level.piggyback ~base:Helpers.full_bushy_stable
            ~levels:
              [ { Cote.Multi_level.level_name = "ld"; level_knobs = O.Knobs.left_deep } ]
            O.Env.serial block
        in
        let dedicated = Cote.Estimator.estimate ~knobs:Helpers.full_bushy_stable O.Env.serial block in
        let base = List.find (fun lc -> lc.Cote.Multi_level.lc_name = "base") results in
        Alcotest.(check int) "joins" dedicated.Cote.Estimator.joins base.Cote.Multi_level.lc_joins;
        Alcotest.(check int) "plans" (Cote.Estimator.total dedicated)
          (Cote.Multi_level.lc_total base));
    t "lower levels are subsets of the base" (fun () ->
        let block = Helpers.chain ~extra:1 6 in
        let results, _ =
          Cote.Multi_level.piggyback ~base:Helpers.full_bushy_stable
            ~levels:
              [
                { Cote.Multi_level.level_name = "l2"; level_knobs = Helpers.stable_knobs };
                { Cote.Multi_level.level_name = "ld"; level_knobs = O.Knobs.left_deep };
              ]
            O.Env.serial block
        in
        let find name = List.find (fun lc -> lc.Cote.Multi_level.lc_name = name) results in
        let base = find "base" and l2 = find "l2" and ld = find "ld" in
        Alcotest.(check bool) "l2 <= base" true
          (l2.Cote.Multi_level.lc_joins <= base.Cote.Multi_level.lc_joins);
        Alcotest.(check bool) "ld <= l2" true
          (ld.Cote.Multi_level.lc_joins <= l2.Cote.Multi_level.lc_joins);
        Alcotest.(check bool) "ld counts <= base counts" true
          (Cote.Multi_level.lc_total ld <= Cote.Multi_level.lc_total base));
  ]

let suite =
  estimator_tests @ time_model_tests @ calibrate_tests @ memory_tests
  @ multilevel_tests
