(* Reference join enumerator: the pre-adjacency-index naive DPsize loop,
   kept verbatim (minus metrics) as the differential-testing oracle for
   Enumerator.run.  Every (size, split) visit tests all lefts x rights
   pairs and rescans the block's full predicate list per pair — exactly
   the behaviour the indexed enumerator must reproduce join-for-join,
   because the COTE contract is that estimator and optimizer share the
   exact join set. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let crossing_preds (block : O.Query_block.t) s l =
  List.filter (fun p -> O.Pred.crosses p s l) block.O.Query_block.preds

(* The old list-returning accessor, rebuilt on top of the iteration API the
   MEMO now exposes (creation order, materialized before the pair loop). *)
let entries_of_size memo size =
  let acc = ref [] in
  O.Memo.iter_entries_of_size memo size (fun e -> acc := e :: !acc);
  List.rev !acc

(* [on_pair] fires once per considered pair — the old loop's
   [enumerator.pairs_considered] — so tests can quantify how much work the
   adjacency gate skips. *)
let run ?(on_pair = fun () -> ()) ~(knobs : O.Knobs.t) ~card_of memo consumer =
  let block = O.Memo.block memo in
  let stats = O.Memo.stats memo in
  let n = O.Query_block.n_quantifiers block in
  for q = 0 to n - 1 do
    let entry, created = O.Memo.find_or_create memo (Bitset.singleton q) in
    if created then consumer.O.Enumerator.on_entry entry
  done;
  for size = 2 to n do
    for lsize = 1 to size / 2 do
      let rsize = size - lsize in
      let lefts = entries_of_size memo lsize in
      let rights = entries_of_size memo rsize in
      List.iter
        (fun (s : O.Memo.entry) ->
          List.iter
            (fun (l : O.Memo.entry) ->
              on_pair ();
              let dedup_ok =
                lsize <> rsize
                || Bitset.compare s.O.Memo.tables l.O.Memo.tables < 0
              in
              if dedup_ok && Bitset.disjoint s.O.Memo.tables l.O.Memo.tables
              then begin
                let union = Bitset.union s.O.Memo.tables l.O.Memo.tables in
                let union_valid =
                  Bitset.for_all
                    (fun q ->
                      Bitset.subset
                        (O.Query_block.quantifier block q).O.Quantifier.deps
                        union)
                    union
                in
                if union_valid then begin
                  let preds =
                    crossing_preds block s.O.Memo.tables l.O.Memo.tables
                  in
                  let cartesian = preds = [] in
                  let cartesian_ok =
                    (not cartesian)
                    || knobs.O.Knobs.allow_cartesian
                    || (knobs.O.Knobs.card1_cartesian
                       && ((Bitset.cardinal s.O.Memo.tables
                            <= knobs.O.Knobs.card1_max_size
                           && card_of s <= knobs.O.Knobs.card1_threshold)
                          || (Bitset.cardinal l.O.Memo.tables
                              <= knobs.O.Knobs.card1_max_size
                             && card_of l <= knobs.O.Knobs.card1_threshold)))
                  in
                  if cartesian_ok then begin
                    let left_outer_ok =
                      O.Enumerator.direction_feasible ~knobs ~block
                        ~outer:s.O.Memo.tables ~inner:l.O.Memo.tables
                    in
                    let right_outer_ok =
                      O.Enumerator.direction_feasible ~knobs ~block
                        ~outer:l.O.Memo.tables ~inner:s.O.Memo.tables
                    in
                    if left_outer_ok || right_outer_ok then begin
                      let result, created = O.Memo.find_or_create memo union in
                      if created then consumer.O.Enumerator.on_entry result;
                      stats.O.Memo.joins_enumerated <-
                        stats.O.Memo.joins_enumerated + 1;
                      consumer.O.Enumerator.on_join
                        {
                          O.Enumerator.left = s;
                          right = l;
                          result;
                          preds;
                          cartesian;
                          left_outer_ok;
                          right_outer_ok;
                        }
                    end
                  end
                end
              end)
            rights)
        lefts
    done
  done
