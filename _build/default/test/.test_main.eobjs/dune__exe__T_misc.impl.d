test/t_misc.ml: Alcotest Cote Format Helpers List Printf QCheck2 QCheck_alcotest Qopt_optimizer Qopt_sql String
