test/t_topn.ml: Alcotest Cote Float Helpers List Printf Qopt_optimizer Qopt_sql Qopt_util
