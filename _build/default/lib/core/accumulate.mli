(** Plan-estimate mode: the paper's [initialize()] / [accumulate_plans()]
    (Table 3), as an enumerator consumer.

    Instead of generating plans, the consumer maintains per-MEMO-entry
    interesting property value lists and, for every enumerated join and
    feasible outer direction, adds to per-join-method plan counters:

    - full order propagation (NLJN): the outer's interesting-order count
      plus one for the DC plan;
    - partial propagation (MGJN): the size of the propagatable list united
      with its coverage list (property subsumption — prefix subsumption for
      ORDER BY coverage, set subsumption for GROUP BY, Section 4 point 2);
    - no propagation (HSJN): one;
    - parallel mode: each contribution is multiplied by the entry's
      interesting-partition count (independent lists, Section 3.4), and the
      repartitioning heuristic contributes one extra plan per method when no
      input partition is keyed on a join column (Section 4).

    Orders are only counted from inputs marked outer-enabled (Section 4
    point 3), and property propagation runs only for the first join that
    populates an entry (Section 4 point 4) unless disabled. *)

type options = {
  first_join_only : bool;
      (** propagate property lists only on the first join per entry *)
  separate_lists : bool;
      (** independent order/partition lists (Section 3.4); [false] keeps
          compound (order, partition) vectors — the ablation baseline *)
}

val default_options : options

type t

val create : ?options:options -> Qopt_optimizer.Env.t -> Qopt_optimizer.Memo.t -> t

val consumer : t -> Qopt_optimizer.Enumerator.consumer

val card_of : t -> Qopt_optimizer.Memo.entry -> float
(** Simple-model cardinality (Section 4 point 5: cardinality is cached in
    the MEMO so the enumerator's card-1 Cartesian heuristic stays
    consistent; the model is cheaper than the real optimizer's, which is an
    accepted error source). *)

val counts : t -> Qopt_optimizer.Memo.counts
(** Estimated generated join plans per method. *)

val scan_plans : t -> int
(** Estimated non-join (scan) plans: 1 + interesting orders per base
    table. *)

val count_into :
  t ->
  Qopt_optimizer.Enumerator.join_event ->
  left_ok:bool ->
  right_ok:bool ->
  Qopt_optimizer.Memo.counts ->
  unit
(** Count one enumerated join's plans into an external counter using the
    current property lists, with the given per-direction feasibility — the
    hook for {!Multi_level} piggyback estimation, where a lower level's
    counts are accumulated from the subset of joins it would enumerate. *)

val est_memo_plans : t -> float
(** Estimated number of plans *kept* in the MEMO: per entry,
    [(|orders| + 1) * max(1, |partitions|)] — the Section 6.2 memory
    model's plan count (a lower bound on the real optimizer's kept plans). *)
