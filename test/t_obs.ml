(* The Qopt_obs metrics layer: counters, gauges, histograms, spans,
   registry export — plus the COTE-vs-actual differential property test
   run over the instrumented optimizer. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Obs = Qopt_obs

let t name f = Alcotest.test_case name `Quick f

let with_on f = Obs.Control.with_enabled true f

let with_off f = Obs.Control.with_enabled false f

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

let counter_tests =
  [
    t "incr and add accumulate when enabled" (fun () ->
        let c = Obs.Counter.make "c" in
        with_on (fun () ->
            Obs.Counter.incr c;
            Obs.Counter.add c 41);
        Alcotest.(check int) "value" 42 (Obs.Counter.value c));
    t "disabled counter is a no-op" (fun () ->
        let c = Obs.Counter.make "c" in
        with_off (fun () ->
            Obs.Counter.incr c;
            Obs.Counter.add c 10);
        Alcotest.(check int) "untouched" 0 (Obs.Counter.value c));
    t "reset zeroes" (fun () ->
        let c = Obs.Counter.make "c" in
        with_on (fun () -> Obs.Counter.add c 7);
        Obs.Counter.reset c;
        Alcotest.(check int) "zero" 0 (Obs.Counter.value c));
  ]

let gauge_tests =
  [
    t "set records last value" (fun () ->
        let g = Obs.Gauge.make "g" in
        Alcotest.(check bool) "unset" false (Obs.Gauge.is_set g);
        with_on (fun () ->
            Obs.Gauge.set g 1.5;
            Obs.Gauge.set g 2.5);
        Alcotest.(check (float 0.0)) "last" 2.5 (Obs.Gauge.value g);
        Alcotest.(check bool) "set" true (Obs.Gauge.is_set g));
    t "disabled gauge is a no-op" (fun () ->
        let g = Obs.Gauge.make "g" in
        with_off (fun () -> Obs.Gauge.set g 9.0);
        Alcotest.(check bool) "unset" false (Obs.Gauge.is_set g));
  ]

let histo_tests =
  [
    t "count, sum, min, max and mean are exact" (fun () ->
        let h = Obs.Histo.make "h" in
        with_on (fun () -> List.iter (Obs.Histo.observe h) [ 1.0; 4.0; 10.0 ]);
        Alcotest.(check int) "count" 3 (Obs.Histo.count h);
        Alcotest.(check (float 1e-9)) "sum" 15.0 (Obs.Histo.sum h);
        Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Histo.min_value h);
        Alcotest.(check (float 1e-9)) "max" 10.0 (Obs.Histo.max_value h);
        Alcotest.(check (float 1e-9)) "mean" 5.0 (Obs.Histo.mean h));
    t "quantiles are log-bucket accurate" (fun () ->
        let h = Obs.Histo.make "h" in
        with_on (fun () ->
            for i = 1 to 1000 do
              Obs.Histo.observe h (float_of_int i)
            done);
        let within lo hi v = v >= lo && v <= hi in
        Alcotest.(check bool) "p50 near 500" true
          (within 400.0 620.0 (Obs.Histo.quantile h 0.50));
        Alcotest.(check bool) "p95 near 950" true
          (within 760.0 1000.0 (Obs.Histo.quantile h 0.95));
        Alcotest.(check bool) "p99 near 990" true
          (within 790.0 1000.0 (Obs.Histo.quantile h 0.99));
        Alcotest.(check bool) "p0 is min-ish" true
          (within 1.0 1.3 (Obs.Histo.quantile h 0.0)));
    t "non-positive values land in the underflow bucket" (fun () ->
        let h = Obs.Histo.make "h" in
        with_on (fun () ->
            Obs.Histo.observe h 0.0;
            Obs.Histo.observe h (-3.0));
        Alcotest.(check int) "count" 2 (Obs.Histo.count h);
        Alcotest.(check (float 1e-9)) "min" (-3.0) (Obs.Histo.min_value h);
        (* The underflow bucket's representative is clamped into the
           observed range, so the quantile stays non-positive. *)
        let p50 = Obs.Histo.quantile h 0.5 in
        Alcotest.(check bool) "p50 within range" true (p50 >= -3.0 && p50 <= 0.0));
    t "empty histogram reports nan quantile" (fun () ->
        let h = Obs.Histo.make "h" in
        Alcotest.(check bool) "nan" true (Float.is_nan (Obs.Histo.quantile h 0.5)));
    t "disabled histogram is a no-op" (fun () ->
        let h = Obs.Histo.make "h" in
        with_off (fun () -> Obs.Histo.observe h 5.0);
        Alcotest.(check int) "count" 0 (Obs.Histo.count h));
  ]

let busy () =
  (* Something the compiler will not optimize away, long enough to beat
     clock granularity. *)
  let acc = ref 0.0 in
  for i = 1 to 200_000 do
    acc := !acc +. Float.sin (float_of_int i)
  done;
  !acc

let span_tests =
  [
    t "time accumulates elapsed and count" (fun () ->
        let s = Obs.Span.make "s" in
        with_on (fun () ->
            ignore (Obs.Span.time s busy);
            ignore (Obs.Span.time s busy));
        Alcotest.(check int) "count" 2 (Obs.Span.count s);
        Alcotest.(check bool) "elapsed > 0" true (Obs.Span.total s > 0.0));
    t "nested spans attribute child time to the parent" (fun () ->
        let outer = Obs.Span.make "outer" in
        let inner = Obs.Span.make "inner" in
        with_on (fun () ->
            ignore
              (Obs.Span.time outer (fun () ->
                   let x = busy () in
                   let y = Obs.Span.time inner busy in
                   x +. y)));
        let self = Obs.Span.self outer in
        Alcotest.(check bool) "inner inside outer" true
          (Obs.Span.total inner <= Obs.Span.total outer);
        Alcotest.(check bool) "self excludes child" true
          (self < Obs.Span.total outer && self > 0.0);
        Alcotest.(check bool) "self + child ~ total" true
          (Float.abs (self +. Obs.Span.total inner -. Obs.Span.total outer)
          < 0.005));
    t "always spans record while disabled" (fun () ->
        let s = Obs.Span.make ~always:true "s" in
        with_off (fun () -> ignore (Obs.Span.time s busy));
        Alcotest.(check int) "count" 1 (Obs.Span.count s);
        Alcotest.(check bool) "elapsed > 0" true (Obs.Span.total s > 0.0));
    t "gated spans skip timing while disabled" (fun () ->
        let s = Obs.Span.make "s" in
        with_off (fun () -> ignore (Obs.Span.time s busy));
        Alcotest.(check int) "count" 0 (Obs.Span.count s));
    t "raising thunk still records and unwinds the stack" (fun () ->
        let outer = Obs.Span.make "outer" in
        let inner = Obs.Span.make "inner" in
        with_on (fun () ->
            (try
               Obs.Span.time outer (fun () ->
                   Obs.Span.time inner (fun () -> failwith "boom"))
             with Failure _ -> ());
            (* The stack must be clean: a fresh span gets no parent credit. *)
            let fresh = Obs.Span.make "fresh" in
            ignore (Obs.Span.time fresh busy);
            Alcotest.(check int) "outer count" 1 (Obs.Span.count outer);
            Alcotest.(check int) "inner count" 1 (Obs.Span.count inner);
            Alcotest.(check int) "fresh count" 1 (Obs.Span.count fresh)));
  ]

(* ------------------------------------------------------------------ *)
(* Registry and export                                                 *)
(* ------------------------------------------------------------------ *)

(* A minimal JSON validator: accepts exactly the RFC 8259 grammar the
   exporter can emit, returning the set of top-level object keys. *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "invalid JSON at %d: %s" !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let parse_string () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        loop ()
      | Some _ ->
        advance ();
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "malformed number"
  in
  let parse_literal lit =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then pos := !pos + String.length lit
    else fail ("expected " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> ignore (parse_object ())
    | Some '"' -> parse_string ()
    | Some 'n' -> parse_literal "null"
    | Some 't' -> parse_literal "true"
    | Some 'f' -> parse_literal "false"
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  and parse_object () =
    skip_ws ();
    expect '{';
    skip_ws ();
    let keys = ref [] in
    (match peek () with
    | Some '}' -> advance ()
    | _ ->
      let rec members () =
        skip_ws ();
        let kstart = !pos + 1 in
        parse_string ();
        keys := String.sub s kstart (!pos - kstart - 1) :: !keys;
        skip_ws ();
        expect ':';
        parse_value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | _ -> fail "expected , or }"
      in
      members ());
    List.rev !keys
  in
  let keys = parse_object () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  keys

let fresh_registry () =
  let r = Obs.Registry.create ~name:"test" () in
  with_on (fun () ->
      Obs.Counter.add (Obs.Registry.counter r "a.count") 3;
      Obs.Gauge.set (Obs.Registry.gauge r "b.gauge") 1.25;
      List.iter (Obs.Histo.observe (Obs.Registry.histogram r "c.histo")) [ 1.0; 2.0 ];
      ignore (Obs.Span.time (Obs.Registry.span r "d.span") busy));
  r

let registry_tests =
  [
    t "find-or-create returns the same metric" (fun () ->
        let r = Obs.Registry.create () in
        let c1 = Obs.Registry.counter r "x" in
        let c2 = Obs.Registry.counter r "x" in
        Alcotest.(check bool) "same" true (c1 == c2));
    t "kind clash raises" (fun () ->
        let r = Obs.Registry.create () in
        ignore (Obs.Registry.counter r "x");
        (try
           ignore (Obs.Registry.gauge r "x");
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    t "counter_value defaults to zero" (fun () ->
        let r = Obs.Registry.create () in
        Alcotest.(check int) "absent" 0 (Obs.Registry.counter_value r "nope"));
    t "reset zeroes every metric" (fun () ->
        let r = fresh_registry () in
        Obs.Registry.reset r;
        Alcotest.(check int) "counter" 0 (Obs.Registry.counter_value r "a.count");
        Alcotest.(check int) "histo" 0
          (Obs.Histo.count (Obs.Registry.histogram r "c.histo")));
    t "text export lists every metric" (fun () ->
        let r = fresh_registry () in
        let out = Format.asprintf "%a" Obs.Registry.pp_text r in
        List.iter
          (fun name ->
            Alcotest.(check bool) name true (Helpers.contains out name))
          [ "a.count"; "b.gauge"; "c.histo"; "d.span"; "p95" ]);
    t "json export is valid and complete" (fun () ->
        let r = fresh_registry () in
        let json = Obs.Registry.to_json r in
        let keys = validate_json json in
        Alcotest.(check (list string)) "sections"
          [ "registry"; "counters"; "gauges"; "histograms"; "spans" ]
          keys;
        List.iter
          (fun name ->
            Alcotest.(check bool) name true (Helpers.contains json name))
          [ "a.count"; "b.gauge"; "c.histo"; "d.span" ]);
    t "json export survives empty and nan-valued metrics" (fun () ->
        let r = Obs.Registry.create () in
        ignore (Obs.Registry.histogram r "empty.histo");
        ignore (Obs.Registry.gauge r "unset.gauge");
        ignore (validate_json (Obs.Registry.to_json r)));
  ]

(* ------------------------------------------------------------------ *)
(* The COTE-vs-actual differential property test                       *)
(* ------------------------------------------------------------------ *)

(* A deterministic pool of > 100 randomized queries spanning the paper's
   query classes: FK-driven random queries (two seeds), plus the synthetic
   linear / star / cycle shapes. *)
let query_pool =
  lazy
    (let schema = W.Warehouse.schema ~partitioned:false in
     List.concat_map
       (fun (wl : W.Workload.t) -> wl.W.Workload.queries)
       [
         W.Random_gen.generate ~seed:20250807 ~count:60 ~complexity:9 ~schema ();
         W.Random_gen.generate ~seed:1337 ~count:30 ~complexity:6 ~schema ();
         W.Synthetic.linear ~partitioned:false;
         W.Synthetic.star ~partitioned:false;
         W.Synthetic.cycle ~partitioned:false;
       ])

let run_both block =
  let r = O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs block in
  let e = Cote.Estimator.estimate ~knobs:Helpers.stable_knobs O.Env.serial block in
  (r, e)

(* NLJN/MGJN counts depend on dominance pruning the estimator models with
   property lists — the paper's accepted ~30% error source.  Small queries
   can exceed the relative bound with a tiny absolute gap. *)
let close_enough ~actual ~est =
  let diff = abs (est - actual) in
  diff <= 20
  || float_of_int diff /. float_of_int (max 1 actual) <= 0.40

let differential_tests =
  [
    t "COTE vs actual: exact joins/scans/HSJN, bounded NLJN/MGJN (126 queries)"
      (fun () ->
        let pool = Lazy.force query_pool in
        Alcotest.(check bool) "pool has > 100 queries" true (List.length pool > 100);
        List.iter
          (fun (q : W.Workload.query) ->
            let r, e = run_both q.W.Workload.block in
            let g = r.O.Optimizer.generated in
            let ck what a b =
              if a <> b then
                Alcotest.failf "%s: %s actual %d <> estimated %d"
                  q.W.Workload.q_name what a b
            in
            (* Enumerator reuse makes the join set — and everything counted
               directly off it — exact (the paper's core claim). *)
            ck "joins" r.O.Optimizer.joins e.Cote.Estimator.joins;
            ck "scan plans" r.O.Optimizer.scan_plans e.Cote.Estimator.scan_plans;
            ck "hsjn" g.O.Memo.hsjn e.Cote.Estimator.hsjn;
            if not (close_enough ~actual:g.O.Memo.nljn ~est:e.Cote.Estimator.nljn)
            then
              Alcotest.failf "%s: nljn actual %d vs estimated %d"
                q.W.Workload.q_name g.O.Memo.nljn e.Cote.Estimator.nljn;
            if not (close_enough ~actual:g.O.Memo.mgjn ~est:e.Cote.Estimator.mgjn)
            then
              Alcotest.failf "%s: mgjn actual %d vs estimated %d"
                q.W.Workload.q_name g.O.Memo.mgjn e.Cote.Estimator.mgjn)
          pool);
    t "aggregate plan-count error within the paper's 30% target" (fun () ->
        let pool = Lazy.force query_pool in
        let actual, est =
          List.fold_left
            (fun (a, b) (q : W.Workload.query) ->
              let r, e = run_both q.W.Workload.block in
              ( a + O.Memo.counts_total r.O.Optimizer.generated,
                b + Cote.Estimator.total e ))
            (0, 0) pool
        in
        let err =
          Float.abs (float_of_int (est - actual)) /. float_of_int actual
        in
        if err > 0.30 then
          Alcotest.failf "aggregate error %.1f%% (actual %d, estimated %d)"
            (err *. 100.0) actual est);
  ]

(* The registry counters must agree with the optimizer's own result — the
   wiring itself is under test, as a QCheck property over the pool. *)
let wiring_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"registry counters match optimizer result" ~count:40
       (QCheck2.Gen.int_range 0 125)
       (fun i ->
         let pool = Lazy.force query_pool in
         let q = List.nth pool (i mod List.length pool) in
         with_on (fun () ->
             let reg = Obs.Registry.default in
             let snap name = Obs.Registry.counter_value reg name in
             let j0 = snap "enumerator.joins_feasible" in
             let n0 = snap "plan_gen.plans.nljn" in
             let m0 = snap "plan_gen.plans.mgjn" in
             let h0 = snap "plan_gen.plans.hsjn" in
             let s0 = snap "plan_gen.plans.scan" in
             let e0 = snap "memo.entries" in
             let retries0 = snap "optimizer.retries" in
             let r =
               O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs
                 q.W.Workload.block
             in
             let g = r.O.Optimizer.generated in
             if snap "optimizer.retries" > retries0 then
               (* A permissive-knobs retry re-enumerated the block: the
                  counters correctly record both passes, while the result
                  reports only the retry — exact equality cannot hold. *)
               snap "enumerator.joins_feasible" - j0 >= r.O.Optimizer.joins
             else
               snap "enumerator.joins_feasible" - j0 = r.O.Optimizer.joins
               && snap "plan_gen.plans.nljn" - n0 = g.O.Memo.nljn
               && snap "plan_gen.plans.mgjn" - m0 = g.O.Memo.mgjn
               && snap "plan_gen.plans.hsjn" - h0 = g.O.Memo.hsjn
               && snap "plan_gen.plans.scan" - s0 = r.O.Optimizer.scan_plans
               && snap "memo.entries" - e0 = r.O.Optimizer.entries)))

let suite =
  counter_tests @ gauge_tests @ histo_tests @ span_tests @ registry_tests
  @ differential_tests
  @ [ wiring_property ]
