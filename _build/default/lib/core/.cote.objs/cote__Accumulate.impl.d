lib/core/accumulate.ml: Hashtbl List Option Qopt_optimizer Qopt_util
