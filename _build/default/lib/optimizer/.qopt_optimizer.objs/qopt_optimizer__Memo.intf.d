lib/optimizer/memo.mli: Cardinality Colref Equiv Join_method Order_prop Partition_prop Plan Qopt_util Query_block
