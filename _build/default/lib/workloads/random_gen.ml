module C = Qopt_catalog
module O = Qopt_optimizer
module Rng = Qopt_util.Rng
module Bitset = Qopt_util.Bitset

type proto = {
  tabs : string list;  (** table names in quantifier order *)
  preds : O.Pred.t list;
  children : O.Query_block.t list;
  blocked : int list;  (** quantifiers denied the outer role (subqueries) *)
}

let n_tabs p = List.length p.tabs

let shift_colref off (c : O.Colref.t) = O.Colref.make (c.O.Colref.q + off) c.O.Colref.col

let shift_pred off p =
  match p with
  | O.Pred.Eq_join (l, r) -> O.Pred.Eq_join (shift_colref off l, shift_colref off r)
  | O.Pred.Local_cmp (c, op, v) -> O.Pred.Local_cmp (shift_colref off c, op, v)
  | O.Pred.Local_in (c, n) -> O.Pred.Local_in (shift_colref off c, n)
  | O.Pred.Expensive (ts, sel, cost) ->
    O.Pred.Expensive
      (Bitset.fold (fun q acc -> Bitset.add (q + off) acc) ts Bitset.empty, sel, cost)

(* Foreign keys incident to a table, in either direction. *)
let fkeys_of schema tname =
  List.filter
    (fun (fk : C.Fkey.t) ->
      String.equal fk.C.Fkey.from_table tname || String.equal fk.C.Fkey.to_table tname)
    (C.Schema.fkeys schema)

let random_local_pred rng schema tname q =
  let table = C.Schema.find_table schema tname in
  (* Attribute-like columns only: realistic generated queries filter on
     low-cardinality attributes, not on keys or skewed measures. *)
  let cols =
    List.filter
      (fun (c : C.Column.t) ->
        c.C.Column.distinct > 1.0 && c.C.Column.distinct <= 1000.0)
      (Array.to_list table.C.Table.columns)
  in
  match cols with
  | [] -> None
  | _ ->
    let col = Rng.pick_list rng cols in
    let colref = O.Colref.make q col.C.Column.name in
    let d = int_of_float col.C.Column.distinct in
    if Rng.bool rng then
      Some (O.Pred.Local_cmp (colref, O.Pred.Eq, float_of_int (Rng.int rng d)))
    else
      (* Range bound in the upper half of the domain: weakly selective. *)
      let v = float_of_int ((d / 2) + Rng.int rng (max 1 (d / 2))) in
      Some (O.Pred.Local_cmp (colref, O.Pred.Le, v))

(* Grow a seed query: start at a random table and follow foreign keys. *)
let seed_query rng schema ~tables =
  let all_names = Array.of_list (C.Schema.table_names schema) in
  let start = Rng.pick rng all_names in
  let proto = ref { tabs = [ start ]; preds = []; children = []; blocked = [] } in
  let attempts = ref 0 in
  while n_tabs !proto < tables && !attempts < 50 do
    incr attempts;
    let p = !proto in
    let q = Rng.int rng (n_tabs p) in
    let tname = List.nth p.tabs q in
    match fkeys_of schema tname with
    | [] -> ()
    | fks ->
      let fk = Rng.pick_list rng fks in
      let other, my_col, other_col =
        if String.equal fk.C.Fkey.from_table tname then
          (fk.C.Fkey.to_table, List.hd fk.C.Fkey.from_cols, List.hd fk.C.Fkey.to_cols)
        else
          (fk.C.Fkey.from_table, List.hd fk.C.Fkey.to_cols, List.hd fk.C.Fkey.from_cols)
      in
      let new_q = n_tabs p in
      proto :=
        {
          p with
          tabs = p.tabs @ [ other ];
          preds =
            O.Pred.Eq_join (O.Colref.make q my_col, O.Colref.make new_q other_col)
            :: p.preds;
        }
  done;
  (* A couple of local predicates. *)
  let p = !proto in
  let locals =
    List.filteri (fun i _ -> i < 2)
      (List.filter_map
         (fun q -> random_local_pred rng schema (List.nth p.tabs q) q)
         (List.init (n_tabs p) Fun.id))
  in
  { p with preds = locals @ p.preds }

(* Merge by join: splice [b] into [a], connecting through a foreign key or a
   shared table (same-name columns), as the DB2 generator does. *)
let merge_join rng schema a b =
  let off = n_tabs a in
  let connection =
    let pairs =
      List.concat_map
        (fun (qa, ta) ->
          List.filter_map
            (fun (qb, tb) ->
              let fks =
                List.filter
                  (fun (fk : C.Fkey.t) ->
                    (String.equal fk.C.Fkey.from_table ta
                    && String.equal fk.C.Fkey.to_table tb)
                    || (String.equal fk.C.Fkey.from_table tb
                       && String.equal fk.C.Fkey.to_table ta))
                  (C.Schema.fkeys schema)
              in
              match fks with
              | fk :: _ ->
                let ca, cb =
                  if String.equal fk.C.Fkey.from_table ta then
                    (List.hd fk.C.Fkey.from_cols, List.hd fk.C.Fkey.to_cols)
                  else (List.hd fk.C.Fkey.to_cols, List.hd fk.C.Fkey.from_cols)
                in
                Some (qa, ca, qb, cb)
              | [] ->
                if String.equal ta tb then
                  (* Same table on both sides: join on its primary key
                     (the "columns with the same name" rule). *)
                  match (C.Schema.find_table schema ta).C.Table.primary_key with
                  | pk :: _ -> Some (qa, pk, qb, pk)
                  | [] -> None
                else None)
            (List.mapi (fun i t -> (i, t)) b.tabs))
        (List.mapi (fun i t -> (i, t)) a.tabs)
    in
    match pairs with [] -> None | _ -> Some (Rng.pick_list rng pairs)
  in
  Option.map
    (fun (qa, ca, qb, cb) ->
      {
        tabs = a.tabs @ b.tabs;
        preds =
          O.Pred.Eq_join (O.Colref.make qa ca, O.Colref.make (qb + off) cb)
          :: (a.preds @ List.map (shift_pred off) b.preds);
        children = a.children @ b.children;
        blocked = a.blocked @ List.map (fun q -> q + off) b.blocked;
      })
    connection

let to_block ?(name = "rand") rng schema proto =
  let quantifiers =
    List.mapi
      (fun i tname ->
        O.Quantifier.make
          ~outer_allowed:(not (List.mem i proto.blocked))
          i
          (C.Schema.find_table schema tname))
      proto.tabs
  in
  (* Group by 1-3 columns, order by a prefix of them. *)
  let random_cols k =
    List.filter_map
      (fun _ ->
        let q = Rng.int rng (n_tabs proto) in
        let table = C.Schema.find_table schema (List.nth proto.tabs q) in
        let cols = Array.to_list table.C.Table.columns in
        match cols with
        | [] -> None
        | _ -> Some (O.Colref.make q (Rng.pick_list rng cols).C.Column.name))
      (List.init k Fun.id)
  in
  let dedup cols =
    List.fold_left
      (fun acc c -> if O.Colref.list_mem c acc then acc else acc @ [ c ])
      [] cols
  in
  let group_by = dedup (random_cols (1 + Rng.int rng 3)) in
  let order_by =
    match group_by with [] -> [] | c :: _ -> if Rng.bool rng then [ c ] else []
  in
  O.Query_block.make ~name ~group_by ~order_by ~children:proto.children
    ~quantifiers ~preds:proto.preds ()

(* Merge as a subquery: [b] becomes a child block and the constrained
   quantifier of [a] loses its outer role, like an IN-subquery filter. *)
let merge_subquery rng schema a b =
  let child = to_block ~name:"rand$sub" rng schema b in
  let blocked_q = Rng.int rng (n_tabs a) in
  { a with children = child :: a.children; blocked = blocked_q :: a.blocked }

let generate ?(seed = 42) ?(count = 12) ?(complexity = 12) ~schema () =
  let rng = Rng.create seed in
  let queries =
    List.init count (fun i ->
        let target =
          3 + (i * (complexity - 3) / max 1 (count - 1))
        in
        let base = seed_query rng schema ~tables:(min target 5) in
        let rec grow fuel proto =
          if n_tabs proto >= target || fuel <= 0 then proto
          else begin
            let extra =
              seed_query rng schema ~tables:(min 4 (target - n_tabs proto))
            in
            let merged =
              if Rng.int rng 4 = 0 then merge_subquery rng schema proto extra
              else
                match merge_join rng schema proto extra with
                | Some m -> m
                | None -> merge_subquery rng schema proto extra
            in
            grow (fuel - 1) merged
          end
        in
        let proto = grow 6 base in
        let name = Printf.sprintf "rand_q%d" (i + 1) in
        Workload.query name (to_block ~name rng schema proto))
  in
  Workload.make ~name:"random" ~schema queries
