(* Rendezvous (highest-random-weight) hashing: every (key, node) pair
   gets a deterministic 64-bit score, and a key's owner is the node with
   the highest score.  Removing a node only remaps the keys that node
   owned — every other key keeps its owner — which is exactly the
   stability a failover router needs: when a backend dies, only its
   templates move, and they come home when it returns. *)

let fnv_prime = 0x100000001b3L

let fnv_basis = 0xcbf29ce484222325L

let fnv1a64 s =
  let h = ref fnv_basis in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* splitmix64 finalizer: FNV alone is too regular for adjacent node
   indices — without a strong final mix, node i and node i+1 would get
   correlated scores and the ownership distribution skews. *)
let mix h =
  let open Int64 in
  let h = add h 0x9e3779b97f4a7c15L in
  let h = mul (logxor h (shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = mul (logxor h (shift_right_logical h 27)) 0x94d049bb133111ebL in
  logxor h (shift_right_logical h 31)

let score key node =
  mix (Int64.logxor (fnv1a64 key) (mix (Int64.of_int (node + 1))))

let ranked ~nodes key =
  if nodes <= 0 then []
  else
    List.init nodes (fun i -> (score key i, i))
    |> List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare b a)
    |> List.map snd

let choose ~nodes key =
  match ranked ~nodes key with
  | best :: _ -> best
  | [] -> invalid_arg "Qopt_fleet.Rendezvous.choose: no nodes"
