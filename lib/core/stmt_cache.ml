module O = Qopt_optimizer
module Obs = Qopt_obs

(* Process-wide cache metrics, shared by every cache instance (no-ops
   unless Qopt_obs is enabled). *)
let m_hits = Obs.Registry.counter Obs.Registry.default "stmt_cache.hits"

let m_misses = Obs.Registry.counter Obs.Registry.default "stmt_cache.misses"

let m_size = Obs.Registry.gauge Obs.Registry.default "stmt_cache.size"

let m_hit_rate = Obs.Registry.gauge Obs.Registry.default "stmt_cache.hit_rate_pct"

let update_hit_rate () =
  if !Obs.Control.on then begin
    let h = Obs.Counter.value m_hits and m = Obs.Counter.value m_misses in
    if h + m > 0 then
      Obs.Gauge.set m_hit_rate (float_of_int h /. float_of_int (h + m) *. 100.0)
  end

type t = {
  tbl : (string, float) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  lock : Mutex.t option;
}

let create ?(shared = false) () =
  {
    tbl = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    lock = (if shared then Some (Mutex.create ()) else None);
  }

let with_lock t f =
  match t.lock with
  | None -> f ()
  | Some m -> Mutex.protect m f

let pred_sig block p =
  let col (c : O.Colref.t) =
    Printf.sprintf "%s.%s"
      (O.Query_block.quantifier block c.O.Colref.q).O.Quantifier.table
        .Qopt_catalog.Table.name
      c.O.Colref.col
  in
  match p with
  | O.Pred.Eq_join (l, r) ->
    let a = col l and b = col r in
    if a <= b then Printf.sprintf "J:%s=%s" a b else Printf.sprintf "J:%s=%s" b a
  | O.Pred.Local_cmp (c, op, _) ->
    (* Literal values are abstracted away: "similar" queries differ only in
       constants.  The operator is not — folding Lt with Le (or Gt with
       Ge) let [a < 5] serve a recorded actual for [a <= 5] and paired
       their plan-cache envelope labels positionally. *)
    Printf.sprintf "L:%s%s" (col c)
      (match op with
      | O.Pred.Eq -> "="
      | O.Pred.Lt -> "<"
      | O.Pred.Le -> "<="
      | O.Pred.Gt -> ">"
      | O.Pred.Ge -> ">=")
  | O.Pred.Local_in (c, n) -> Printf.sprintf "I:%s:%d" (col c) n
  | O.Pred.Expensive (ts, sel, cost) ->
    (* Selectivity and per-tuple cost are part of the predicate's
       identity, not literals of a template: two expensive predicates
       over the same tables but with different parameters price (and
       place) differently.  %h renders floats exactly, so distinct
       parameters can never collapse through decimal rounding. *)
    Printf.sprintf "X:%s:s%h:c%h"
      (Format.asprintf "%a" Qopt_util.Bitset.pp ts)
      sel cost

let rec block_sig (b : O.Query_block.t) =
  let tables =
    List.sort String.compare
      (List.init (O.Query_block.n_quantifiers b) (fun q ->
           (O.Query_block.quantifier b q).O.Quantifier.table
             .Qopt_catalog.Table.name))
  in
  let preds = List.sort String.compare (List.map (pred_sig b) b.O.Query_block.preds) in
  let children = List.map block_sig b.O.Query_block.children in
  Printf.sprintf "[%s|%s|g%d|o%d|n%s|oj%d|{%s}]"
    (String.concat "," tables) (String.concat ";" preds)
    (List.length b.O.Query_block.group_by)
    (List.length b.O.Query_block.order_by)
    (match b.O.Query_block.first_n with None -> "-" | Some n -> string_of_int n)
    (List.length b.O.Query_block.outer_joins)
    (String.concat "" children)

let signature = block_sig

let pred_signature = pred_sig

(* A recorded actual only transfers to a structurally identical query
   compiled under the same conditions: the optional tag (the server passes
   the chosen optimization level) partitions the key space so an elapsed
   measured at a downgraded level never refines a full-level estimate. *)
let key_of ?tag block =
  match tag with
  | None -> signature block
  | Some tag -> tag ^ "#" ^ signature block

let lookup t ?tag block =
  (* The signature is pure over the block; compute it outside the lock so a
     shared cache serializes only the table probe and the bookkeeping. *)
  let key = key_of ?tag block in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some seconds ->
        t.hits <- t.hits + 1;
        Obs.Counter.incr m_hits;
        update_hit_rate ();
        Some seconds
      | None ->
        t.misses <- t.misses + 1;
        Obs.Counter.incr m_misses;
        update_hit_rate ();
        None)

let record t ?tag block seconds =
  let key = key_of ?tag block in
  with_lock t (fun () ->
      Hashtbl.replace t.tbl key seconds;
      Obs.Gauge.set m_size (float_of_int (Hashtbl.length t.tbl)))

let size t = with_lock t (fun () -> Hashtbl.length t.tbl)

let hits t = with_lock t (fun () -> t.hits)

let misses t = with_lock t (fun () -> t.misses)
