(* Plan generation, the optimizer driver, greedy, pilot-pass, instrument. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

let optimize ?(env = O.Env.serial) ?(knobs = Helpers.stable_knobs) block =
  O.Optimizer.optimize env ~knobs block

let plan_gen_tests =
  [
    t "scan plans: base + one per interesting order" (fun () ->
        let block = Helpers.chain ~order_by:true 2 in
        let r = optimize block in
        (* Each table: seq scan + Join_key sort; t0 additionally the ORDER BY
           sort.  (No indexes in the helper tables' defaults here.) *)
        Alcotest.(check int) "scan plans" 5 r.O.Optimizer.scan_plans);
    t "serial HSJN count equals feasible directions" (fun () ->
        let block = Helpers.chain 4 in
        let memo = O.Memo.create block in
        let dirs = ref 0 in
        let consumer =
          {
            O.Enumerator.on_entry = (fun _ -> ());
            O.Enumerator.on_join =
              (fun ev ->
                if ev.O.Enumerator.left_outer_ok then incr dirs;
                if ev.O.Enumerator.right_outer_ok then incr dirs);
          }
        in
        O.Enumerator.run ~knobs:Helpers.stable_knobs
          ~card_of:(O.Memo.card_of memo O.Cardinality.Full)
          memo consumer;
        let r = optimize block in
        Alcotest.(check int) "hsjn = directions" !dirs r.O.Optimizer.generated.O.Memo.hsjn);
    t "plan found covers all tables" (fun () ->
        let block = Helpers.chain 5 in
        match (optimize block).O.Optimizer.best with
        | Some p ->
          Alcotest.(check bool) "covers" true
            (Bitset.equal p.O.Plan.tables (O.Query_block.all_tables block))
        | None -> Alcotest.fail "expected plan");
    t "generated >= kept" (fun () ->
        let r = optimize (Helpers.chain ~extra:2 5) in
        Alcotest.(check bool) "generated >= kept" true
          (O.Memo.counts_total r.O.Optimizer.generated + r.O.Optimizer.scan_plans
          >= r.O.Optimizer.kept));
    t "order by forces a final sort when needed" (fun () ->
        let block = Helpers.chain ~order_by:true 2 in
        match (optimize block).O.Optimizer.best with
        | Some p ->
          let ordering = O.Order_prop.make O.Order_prop.Ordering [ cr 0 "v" ] in
          Alcotest.(check bool) "order satisfied" true
            (O.Order_prop.satisfied_by O.Equiv.empty ordering p.O.Plan.order)
        | None -> Alcotest.fail "expected plan");
    t "more interesting orders means more generated plans" (fun () ->
        let plain = optimize (Helpers.chain 4) in
        let rich = optimize (Helpers.chain ~extra:2 ~order_by:true ~group_by:true 4) in
        Alcotest.(check bool) "richer query, more plans" true
          (O.Memo.counts_total rich.O.Optimizer.generated
          > O.Memo.counts_total plain.O.Optimizer.generated));
    t "same joins, different plan counts (Figure 3's point)" (fun () ->
        let a = optimize (Helpers.chain 4) in
        let b = optimize (Helpers.chain ~order_by:true 4) in
        Alcotest.(check int) "same joins" a.O.Optimizer.joins b.O.Optimizer.joins;
        Alcotest.(check bool) "more plans with ORDER BY" true
          (O.Memo.counts_total b.O.Optimizer.generated
          > O.Memo.counts_total a.O.Optimizer.generated));
    t "parallel generates at least as many plans" (fun () ->
        let block_s = Helpers.chain 4 in
        let serial = optimize block_s in
        let parallel = optimize ~env:(O.Env.parallel ~nodes:4) block_s in
        Alcotest.(check bool) "parallel >= serial" true
          (O.Memo.counts_total parallel.O.Optimizer.generated
          >= O.Memo.counts_total serial.O.Optimizer.generated));
    t "repartition variants appear when partitions miss join columns" (fun () ->
        let mk part =
          let tables =
            List.init 2 (fun i ->
                Helpers.table ~rows:1000.0
                  ~partition:(Qopt_catalog.Partition_spec.hash [ part ])
                  (Printf.sprintf "rp%d" i))
          in
          O.Query_block.make ~name:"rp"
            ~quantifiers:(List.mapi (fun i tb -> O.Quantifier.make i tb) tables)
            ~preds:[ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ]
            ()
        in
        let env = O.Env.parallel ~nodes:4 in
        let collocated = optimize ~env (mk "j1") in
        let mispartitioned = optimize ~env (mk "v") in
        Alcotest.(check bool) "extra plans" true
          (O.Memo.counts_total mispartitioned.O.Optimizer.generated
          > O.Memo.counts_total collocated.O.Optimizer.generated));
  ]

let optimizer_tests =
  [
    t "multi-block queries sum counters" (fun () ->
        let child = Helpers.chain 3 in
        let parent_quants = [ O.Quantifier.make 0 (Helpers.table ~rows:10.0 "pq") ] in
        let parent =
          O.Query_block.make ~name:"parent" ~children:[ child ] ~quantifiers:parent_quants
            ~preds:[] ()
        in
        let whole = optimize parent in
        let alone = optimize child in
        Alcotest.(check int) "joins summed" alone.O.Optimizer.joins whole.O.Optimizer.joins;
        Alcotest.(check bool) "entries include parent's" true
          (whole.O.Optimizer.entries > alone.O.Optimizer.entries));
    t "disconnected query falls back to permissive knobs" (fun () ->
        let quantifiers =
          [
            O.Quantifier.make 0 (Helpers.table ~rows:10.0 "d0");
            O.Quantifier.make 1 (Helpers.table ~rows:10.0 "d1");
          ]
        in
        let block = O.Query_block.make ~name:"disc" ~quantifiers ~preds:[] () in
        let r = optimize block in
        Alcotest.(check bool) "planned anyway" true (r.O.Optimizer.best <> None);
        Alcotest.(check int) "one cartesian join" 1 r.O.Optimizer.joins);
    t "retry folds the failed pass's work into the result" (fun () ->
        (* t0-t1 joined, t2 isolated: strict knobs cannot reach the top set,
           so the optimizer retries permissively.  The first pass's joins and
           entries are real compile work (Estimator.estimate_block times and
           counts both passes) and must survive into the folded result. *)
        let quantifiers =
          List.init 3 (fun i ->
              O.Quantifier.make i (Helpers.table ~rows:1000.0 (Printf.sprintf "d%d" i)))
        in
        let preds = [ O.Pred.Eq_join (cr 0 "j1", cr 1 "j1") ] in
        let block = O.Query_block.make ~name:"disc3" ~quantifiers ~preds () in
        let pass knobs =
          let memo = O.Memo.create block in
          let consumer =
            { O.Enumerator.on_entry = (fun _ -> ()); on_join = (fun _ -> ()) }
          in
          O.Enumerator.run ~knobs
            ~card_of:(O.Memo.card_of memo O.Cardinality.Full)
            memo consumer;
          ((O.Memo.stats memo).O.Memo.joins_enumerated, O.Memo.n_entries memo)
        in
        let j1, e1 = pass Helpers.stable_knobs in
        let j2, e2 = pass (O.Knobs.permissive Helpers.stable_knobs) in
        Alcotest.(check bool) "first pass does real work" true (j1 > 0 && e1 > 0);
        let r = optimize block in
        Alcotest.(check bool) "planned on retry" true (r.O.Optimizer.best <> None);
        Alcotest.(check int) "joins folded across passes" (j1 + j2) r.O.Optimizer.joins;
        Alcotest.(check int) "entries folded across passes" (e1 + e2) r.O.Optimizer.entries;
        Alcotest.(check bool) "elapsed covers both passes" true (r.O.Optimizer.elapsed > 0.0));
    t "DP at least as good as greedy under the same search space" (fun () ->
        let block = Helpers.chain 5 in
        let dp = optimize ~knobs:Helpers.full_bushy_stable block in
        match (dp.O.Optimizer.best, O.Greedy.optimize O.Env.serial block) with
        | Some best, Some greedy ->
          (* The DP plan additionally carries final operators; compare join
             trees by stripping the final sort cost conservatively: DP cost
             must not exceed the greedy cost by more than the finishing
             overhead. *)
          Alcotest.(check bool) "dp <= greedy * 1.5" true
            (best.O.Plan.cost <= greedy.O.Plan.cost *. 1.5)
        | _ -> Alcotest.fail "expected both plans");
    t "breakdown buckets sum to at most total" (fun () ->
        let r = optimize (Helpers.chain ~extra:1 6) in
        let b = r.O.Optimizer.breakdown in
        let parts =
          b.O.Instrument.s_nljn +. b.O.Instrument.s_mgjn +. b.O.Instrument.s_hsjn
          +. b.O.Instrument.s_save +. b.O.Instrument.s_card +. b.O.Instrument.s_scan
        in
        Alcotest.(check bool) "parts <= total" true (parts <= b.O.Instrument.s_total +. 1e-6);
        Alcotest.(check bool) "other = total - parts" true
          (Float.abs (b.O.Instrument.s_other -. (b.O.Instrument.s_total -. parts)) < 1e-6));
    t "instrument merge adds" (fun () ->
        let a = (optimize (Helpers.chain 3)).O.Optimizer.breakdown in
        let m = O.Instrument.merge a a in
        Alcotest.(check (float 1e-12)) "doubled" (a.O.Instrument.s_total *. 2.0)
          m.O.Instrument.s_total);
  ]

let greedy_tests =
  [
    t "greedy covers all tables with n-1 joins" (fun () ->
        match O.Greedy.optimize O.Env.serial (Helpers.chain 6) with
        | Some p ->
          Alcotest.(check int) "joins" 5 (O.Plan.join_count p);
          Alcotest.(check int) "leaves" 6 (List.length (O.Plan.leaves p))
        | None -> Alcotest.fail "expected plan");
    t "greedy handles single table" (fun () ->
        match O.Greedy.optimize O.Env.serial (Helpers.chain 1) with
        | Some p -> Alcotest.(check int) "no joins" 0 (O.Plan.join_count p)
        | None -> Alcotest.fail "expected plan");
    t "greedy uses a filtered index access path" (fun () ->
        let table =
          Helpers.table ~rows:100_000.0
            ~indexes:[ Qopt_catalog.Index.make ~name:"ipk" [ "pk" ] ]
            "gidx"
        in
        let block =
          O.Query_block.make ~name:"gidx"
            ~quantifiers:[ O.Quantifier.make 0 table ]
            ~preds:[ O.Pred.Local_cmp (cr 0 "pk", O.Pred.Eq, 7.0) ]
            ()
        in
        match O.Greedy.optimize O.Env.serial block with
        | Some { O.Plan.op = O.Plan.Index_scan _; _ } -> ()
        | Some _ -> Alcotest.fail "expected index scan"
        | None -> Alcotest.fail "expected plan");
  ]

let pilot_tests =
  [
    t "pilot report is consistent" (fun () ->
        let report = O.Pilot_pass.analyze O.Env.serial (Helpers.chain ~extra:1 5) in
        Alcotest.(check bool) "bound positive" true (report.O.Pilot_pass.bound > 0.0);
        Alcotest.(check bool) "prunable <= generated" true
          (report.O.Pilot_pass.prunable <= report.O.Pilot_pass.generated);
        Alcotest.(check bool) "fraction in [0,1]" true
          (report.O.Pilot_pass.fraction >= 0.0 && report.O.Pilot_pass.fraction <= 1.0));
  ]

(* Regression: parallel-mode default_partition used to take [List.hd] of the
   column list, so a zero-column table (a degenerate but constructible
   catalog entry) crashed the whole compile. *)
let zero_column_tests =
  [
    t "zero-column table optimizes in a parallel env" (fun () ->
        let table = Qopt_catalog.Table.make ~rows:50.0 ~name:"colless" [] in
        let block =
          O.Query_block.make ~name:"colless"
            ~quantifiers:[ O.Quantifier.make 0 table ]
            ~preds:[] ()
        in
        let env = O.Env.parallel ~nodes:4 in
        Alcotest.(check (option unit))
          "no partition to fall back to" None
          (Option.map ignore (O.Plan_gen.default_partition env block 0));
        let r = optimize ~env block in
        Alcotest.(check bool) "found a plan" true (r.O.Optimizer.best <> None));
  ]

let suite =
  plan_gen_tests @ optimizer_tests @ greedy_tests @ pilot_tests
  @ zero_column_tests
