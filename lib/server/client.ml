module J = Qopt_util.Json
module Timer = Qopt_util.Timer

type link = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type t = {
  addr : Server.addr;
  attempts : int;
  backoff_s : float;
  mutable link : link option;  (* None between a drop and the next redial *)
  mutable pending : Proto.reply list;  (* buffered out-of-order, oldest first *)
  mutable next_id : int;
}

type outcome = Reply of Proto.reply | Timeout | Closed

let dial addr =
  match addr with
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  | `Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (inet, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

let link_of fd =
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* Connect failures worth sleeping on: the server may still be binding
   (fleet slow-start), restarting, or draining a backlog.  ENOENT covers
   a Unix socket whose file has not been created yet. *)
let retryable = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.EPIPE
  | Unix.EAGAIN ->
    true
  | _ -> false

let dial_backoff ~attempts ~backoff_s addr =
  let rec go n delay =
    match dial addr with
    | fd -> link_of fd
    | exception Unix.Unix_error (e, _, _) when n + 1 < attempts && retryable e
      ->
      Thread.delay delay;
      go (n + 1) (Float.min (delay *. 2.0) 1.0)
  in
  go 0 backoff_s

let connect ?(attempts = 1) ?(backoff_s = 0.02) addr =
  let attempts = max 1 attempts in
  let link = dial_backoff ~attempts ~backoff_s addr in
  { addr; attempts; backoff_s; link = Some link; pending = []; next_id = 1 }

let drop t =
  match t.link with
  | None -> ()
  | Some l ->
    t.link <- None;
    (try Unix.close l.fd with Unix.Unix_error _ -> ())

(* Redial lazily: the link lost to an EPIPE (or an explicit drop) comes
   back on the next send, with the same backoff schedule as connect.
   Replies already buffered in [pending] were fully received and stay
   valid; replies still in flight on the dead connection are gone — the
   caller's request/request_timeout observes that as [Closed]. *)
let ensure t =
  match t.link with
  | Some l -> l
  | None ->
    let l = dial_backoff ~attempts:t.attempts ~backoff_s:t.backoff_s t.addr in
    t.link <- Some l;
    l

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let write_req l req = Wire.write l.oc (J.to_string (Proto.request_to_json req))

let send t req =
  let l = ensure t in
  try write_req l req
  with Sys_error _ | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    (* The server went away under us (a fleet backend being killed, a
       restart): reconnect with backoff and resend once.  A second
       failure propagates — the address is genuinely dead. *)
    drop t;
    write_req (ensure t) req

let read_one_link l =
  match Wire.read l.ic with
  | None -> None
  | Some payload -> (
    match J.parse payload with
    | Error msg -> raise (Wire.Framing_error ("bad reply JSON: " ^ msg))
    | Ok doc -> (
      match Proto.reply_of_json doc with
      | Error msg -> raise (Wire.Framing_error ("bad reply: " ^ msg))
      | Ok reply -> Some reply))

let recv t =
  match t.pending with
  | reply :: rest ->
    t.pending <- rest;
    Some reply
  | [] -> (
    match t.link with
    | None -> None
    | Some l -> (
      match read_one_link l with
      | Some _ as r -> r
      | None ->
        drop t;
        None
      | exception (Sys_error _ | End_of_file | Wire.Framing_error _) ->
        (* A torn frame (the peer died mid-reply) is as dead as an EOF:
           nothing after the tear can be re-synchronized. *)
        drop t;
        None))

let request t req =
  send t req;
  let want = Proto.request_id req in
  let matches r = Proto.reply_id r = want in
  match List.partition matches t.pending with
  | hit :: _, rest ->
    t.pending <- rest;
    Some hit
  | [], _ ->
    let rec wait () =
      match recv t with
      | None -> None
      | Some r when matches r -> Some r
      | Some r ->
        t.pending <- t.pending @ [ r ];
        wait ()
    in
    wait ()

(* A timed wait on a buffered channel.  A blocked channel read cannot be
   interrupted from the inside (the runtime retries reads until data
   arrives), so the deadline is enforced from the outside: a watcher
   thread half-closes the socket's read side when the budget runs out,
   which surfaces in the reader as an EOF.  The clock then classifies
   what the reader saw — an end-of-stream at or past the deadline is the
   watcher's doing ([Timeout]); earlier, it is the peer dying
   ([Closed]).  Either way the connection is dropped: a timeout may have
   torn a frame in the channel buffer, and a late reply on a kept socket
   would desync every later id. *)
let request_timeout ?(timeout_s = 5.0) t req =
  let want = Proto.request_id req in
  let matches r = Proto.reply_id r = want in
  match send t req with
  | exception (Sys_error _ | Unix.Unix_error _) -> Closed
  | () -> (
    match List.partition matches t.pending with
    | hit :: _, rest ->
      t.pending <- rest;
      Reply hit
    | [], _ -> (
      match t.link with
      | None -> Closed
      | Some l ->
        let deadline = Timer.monotonic_now () +. timeout_s in
        let lock = Mutex.create () in
        let settled = ref false in
        (* [settled] is flipped under [lock] before the fd can be closed,
           so the watcher never shuts down a recycled descriptor. *)
        let (_ : Thread.t) =
          Thread.create
            (fun () ->
              Thread.delay timeout_s;
              Mutex.protect lock (fun () ->
                  if not !settled then
                    try Unix.shutdown l.fd Unix.SHUTDOWN_RECEIVE
                    with Unix.Unix_error _ -> ()))
            ()
        in
        let settle () = Mutex.protect lock (fun () -> settled := true) in
        let dead () =
          let timed_out = Timer.monotonic_now () >= deadline -. 0.01 in
          settle ();
          drop t;
          if timed_out then Timeout else Closed
        in
        let rec wait () =
          match read_one_link l with
          | Some r when matches r ->
            settle ();
            Reply r
          | Some r ->
            t.pending <- t.pending @ [ r ];
            wait ()
          | None -> dead ()
          | exception (Sys_error _ | End_of_file | Wire.Framing_error _) ->
            dead ()
        in
        wait ()))

let close t = drop t
