lib/experiments/mop_exp.ml: Common Format List Qopt_mop Qopt_optimizer Qopt_sql Qopt_util Qopt_workloads
