(* Quickstart: define a schema, write SQL, optimize it, and ask the COTE how
   long optimization will take — the library's three core moves.

     dune exec examples/quickstart.exe *)

module C = Qopt_catalog
module O = Qopt_optimizer
module Sql = Qopt_sql

let () =
  (* 1. A small schema: two tables with statistics, an index, a foreign
     key. *)
  let users =
    C.Table.make ~rows:1_000_000.0 ~name:"users" ~primary_key:[ "id" ]
      ~indexes:[ C.Index.make ~unique:true ~name:"users_pk" [ "id" ] ]
      [
        C.Column.make ~rows:1_000_000.0 ~distinct:1_000_000.0 "id";
        C.Column.make ~rows:1_000_000.0 ~distinct:50.0 "country";
        C.Column.make ~rows:1_000_000.0 ~distinct:100.0 ~lo:1920.0 ~hi:2020.0
          "birth_year";
      ]
  in
  let orders =
    C.Table.make ~rows:10_000_000.0 ~name:"orders" ~primary_key:[ "order_id" ]
      ~indexes:[ C.Index.make ~name:"orders_user" [ "user_id" ] ]
      [
        C.Column.make ~rows:10_000_000.0 ~distinct:10_000_000.0 "order_id";
        C.Column.make ~rows:10_000_000.0 ~distinct:1_000_000.0 "user_id";
        C.Column.make ~rows:10_000_000.0 ~distinct:3_000.0 "total";
        C.Column.make ~rows:10_000_000.0 ~distinct:365.0 "day";
      ]
  in
  let items =
    C.Table.make ~rows:30_000_000.0 ~name:"items" ~primary_key:[ "item_id" ]
      [
        C.Column.make ~rows:30_000_000.0 ~distinct:30_000_000.0 "item_id";
        C.Column.make ~rows:30_000_000.0 ~distinct:10_000_000.0 "order_id";
        C.Column.make ~rows:30_000_000.0 ~distinct:100_000.0 "product_id";
        C.Column.make ~rows:30_000_000.0 ~distinct:100.0 "quantity";
      ]
  in
  let schema =
    C.Schema.of_tables
      ~fkeys:
        [
          C.Fkey.make ~from_table:"orders" ~from_cols:[ "user_id" ]
            ~to_table:"users" ~to_cols:[ "id" ];
          C.Fkey.make ~from_table:"items" ~from_cols:[ "order_id" ]
            ~to_table:"orders" ~to_cols:[ "order_id" ];
        ]
      [ users; orders; items ]
  in
  (* 2. Parse and bind a query. *)
  let sql =
    "SELECT u.country, COUNT(*) FROM users u, orders o, items i WHERE \
     u.id = o.user_id AND o.order_id = i.order_id AND u.country = 'NZ' AND \
     o.day >= 180 GROUP BY u.country ORDER BY u.country"
  in
  let block = Sql.Binder.parse_and_bind ~name:"quickstart" schema sql in
  Format.printf "SQL: %s@.@.bound: %a@.@." sql O.Query_block.pp block;
  (* 3. Optimize for real. *)
  let result = O.Optimizer.optimize O.Env.serial block in
  (match result.O.Optimizer.best with
  | None -> Format.printf "no plan!@."
  | Some plan ->
    Format.printf "best plan:@.%a@." O.Plan.pp plan);
  Format.printf
    "compilation took %.4fs: %d joins enumerated, %d join plans generated \
     (NLJN %d, MGJN %d, HSJN %d), %d kept@.@."
    result.O.Optimizer.elapsed result.O.Optimizer.joins
    (O.Memo.counts_total result.O.Optimizer.generated)
    result.O.Optimizer.generated.O.Memo.nljn
    result.O.Optimizer.generated.O.Memo.mgjn
    result.O.Optimizer.generated.O.Memo.hsjn result.O.Optimizer.kept;
  (* 4. The COTE: calibrate a time model once (here on this same tiny
     query family — real deployments train on a workload), then predict. *)
  let model =
    Cote.Calibrate.calibrate O.Env.serial
      [ block;
        Sql.Binder.parse_and_bind ~name:"train2" schema
          "SELECT o.day, COUNT(*) FROM orders o, items i WHERE o.order_id = \
           i.order_id GROUP BY o.day";
        Sql.Binder.parse_and_bind ~name:"train3" schema
          "SELECT u.birth_year, COUNT(*) FROM users u, orders o WHERE u.id = \
           o.user_id AND u.birth_year >= 1990 GROUP BY u.birth_year ORDER BY \
           u.birth_year"
      ]
  in
  Format.printf "fitted time model: %a@." Cote.Time_model.pp model;
  let prediction = Cote.Predict.compile_time ~model O.Env.serial block in
  Format.printf
    "COTE predicts %.4fs to compile (actual was %.4fs); estimation itself \
     took %.4fs (%.1f%% of compilation)@."
    prediction.Cote.Predict.seconds result.O.Optimizer.elapsed
    prediction.Cote.Predict.estimate.Cote.Estimator.elapsed
    (100.0
    *. prediction.Cote.Predict.estimate.Cote.Estimator.elapsed
    /. result.O.Optimizer.elapsed)
