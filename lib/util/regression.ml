exception Singular

let gauss a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Regression.solve: shape mismatch";
  (* Work on copies: callers keep their matrices. *)
  let m = Array.map Array.copy a in
  let v = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-12 then raise Singular;
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tv = v.(col) in
      v.(col) <- v.(!pivot);
      v.(!pivot) <- tv
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0.0 then begin
        for k = col to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done;
        v.(row) <- v.(row) -. (factor *. v.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let s = ref v.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. m.(row).(row)
  done;
  x

let solve a b =
  try gauss a b
  with Singular -> failwith "Regression.solve: singular matrix"

let solve_result ?(ridge = 0.0) a b =
  match gauss a b with
  | x -> Ok x
  | exception Singular when ridge > 0.0 ->
    (* Ridge damping: add [ridge * max |diag|] (or [ridge] for an all-zero
       diagonal) to the diagonal and retry — a tiny Tikhonov term that makes
       rank-deficient normal equations well-posed while barely perturbing a
       well-conditioned system. *)
    let n = Array.length b in
    let scale =
      let m = ref 0.0 in
      for i = 0 to min (n - 1) (Array.length a - 1) do
        m := Float.max !m (Float.abs a.(i).(i))
      done;
      if !m > 0.0 then !m else 1.0
    in
    let damped =
      Array.mapi
        (fun i row ->
          let row = Array.copy row in
          if i < Array.length row then row.(i) <- row.(i) +. (ridge *. scale);
          row)
        a
    in
    (match gauss damped b with
    | x -> Ok x
    | exception Singular -> Error "singular matrix (even after ridge damping)")
  | exception Singular -> Error "singular matrix"

let with_intercept xs =
  Array.map (fun row -> Array.append [| 1.0 |] row) xs

let normal_equations xs ys =
  let n_obs = Array.length xs in
  if n_obs = 0 then invalid_arg "Regression.fit: no observations";
  if Array.length ys <> n_obs then invalid_arg "Regression.fit: shape mismatch";
  let n_feat = Array.length xs.(0) in
  let xtx = Array.make_matrix n_feat n_feat 0.0 in
  let xty = Array.make n_feat 0.0 in
  Array.iteri
    (fun i row ->
      if Array.length row <> n_feat then
        invalid_arg "Regression.fit: ragged feature rows";
      for j = 0 to n_feat - 1 do
        xty.(j) <- xty.(j) +. (row.(j) *. ys.(i));
        for k = 0 to n_feat - 1 do
          xtx.(j).(k) <- xtx.(j).(k) +. (row.(j) *. row.(k))
        done
      done)
    xs;
  (xtx, xty)

let fit ?(intercept = false) xs ys =
  let xs = if intercept then with_intercept xs else xs in
  let xtx, xty = normal_equations xs ys in
  solve xtx xty

let fit_result ?(intercept = false) ?ridge xs ys =
  let xs = if intercept then with_intercept xs else xs in
  let xtx, xty = normal_equations xs ys in
  solve_result ?ridge xtx xty

let fit_nonneg ?(iters = 500) xs ys =
  let xtx, xty = normal_equations xs ys in
  let n = Array.length xty in
  let c = Array.make n 0.0 in
  (* Coordinate descent on 1/2 c'XtX c - c'Xty subject to c >= 0: each sweep
     minimizes one coordinate exactly and clamps at zero. *)
  for _ = 1 to iters do
    for j = 0 to n - 1 do
      if xtx.(j).(j) > 1e-12 then begin
        let s = ref xty.(j) in
        for k = 0 to n - 1 do
          if k <> j then s := !s -. (xtx.(j).(k) *. c.(k))
        done;
        c.(j) <- Float.max 0.0 (!s /. xtx.(j).(j))
      end
    done
  done;
  c

let predict ?(intercept = false) coeffs row =
  let row = if intercept then Array.append [| 1.0 |] row else row in
  if Array.length coeffs <> Array.length row then
    invalid_arg "Regression.predict: shape mismatch";
  let s = ref 0.0 in
  Array.iteri (fun i c -> s := !s +. (c *. row.(i))) coeffs;
  !s
