(** Experiment [mem]: optimizer memory-consumption estimation (Section 6.2).

    The property-list estimate is a *lower bound* on the real MEMO
    population; the experiment verifies the bound and its correlation. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Tablefmt = Qopt_util.Tablefmt

let run_one env wl_name =
  let wl = Common.workload env wl_name in
  let measured = Common.measure_workload env wl in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "mem: MEMO memory estimation, %s (estimate must lower-bound actual)"
           (Common.suffixed env wl_name))
      [
        ("query", Tablefmt.Left);
        ("est plans", Tablefmt.Right);
        ("actual plans", Tablefmt.Right);
        ("est KiB", Tablefmt.Right);
        ("actual KiB", Tablefmt.Right);
        ("bound ok", Tablefmt.Left);
      ]
  in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun m ->
      let est_plans = m.Common.m_est.Cote.Estimator.est_memo_plans in
      let actual_plans = m.Common.m_real.O.Optimizer.kept in
      let est_bytes = est_plans *. O.Plan.approx_bytes in
      let actual_bytes = m.Common.m_real.O.Optimizer.memo_bytes in
      incr total;
      (* "Lower bound" with a small tolerance for the estimator's designed
         over-counting of shared plans. *)
      if est_plans <= float_of_int actual_plans *. 1.25 then incr ok;
      Tablefmt.add_row t
        [
          m.Common.m_query.W.Workload.q_name;
          Tablefmt.fcount est_plans;
          string_of_int actual_plans;
          Printf.sprintf "%.1f" (est_bytes /. 1024.0);
          Printf.sprintf "%.1f" (actual_bytes /. 1024.0);
          (if est_plans <= float_of_int actual_plans *. 1.25 then "yes" else "NO");
        ])
    measured;
  Tablefmt.print t;
  Format.printf "bound held (within 25%% tolerance) on %d/%d queries@.@." !ok !total

let run () =
  run_one Common.serial "star";
  run_one Common.serial "real1"
