(* Shared-nothing parallel optimization: how the partition property changes
   the plan space, and how the COTE's independent order/partition lists
   track it (Sections 3.4 and 4).

     dune exec examples/parallel_warehouse.exe *)

module O = Qopt_optimizer
module W = Qopt_workloads

let show env label block =
  let r = O.Optimizer.optimize env block in
  let e = Cote.Estimator.estimate env block in
  Format.printf
    "  %-10s compile %.4fs | joins %5d | generated NLJN %6d MGJN %5d HSJN \
     %5d | estimated %6d %5d %5d | memo est %.0f plans@."
    label r.O.Optimizer.elapsed r.O.Optimizer.joins
    r.O.Optimizer.generated.O.Memo.nljn r.O.Optimizer.generated.O.Memo.mgjn
    r.O.Optimizer.generated.O.Memo.hsjn e.Cote.Estimator.nljn
    e.Cote.Estimator.mgjn e.Cote.Estimator.hsjn
    e.Cote.Estimator.est_memo_plans;
  r

let () =
  let serial_wl = W.Warehouse.real1_w ~partitioned:false in
  let parallel_wl = W.Warehouse.real1_w ~partitioned:true in
  let penv = O.Env.parallel ~nodes:4 in
  Format.printf
    "same queries, serial vs 4-node shared-nothing parallel: the partition \
     property multiplies the plan space and makes each plan costlier to \
     generate.@.@.";
  List.iter2
    (fun (qs : W.Workload.query) (qp : W.Workload.query) ->
      Format.printf "%s:@." qs.W.Workload.q_name;
      let rs = show O.Env.serial "serial" qs.W.Workload.block in
      let rp = show penv "parallel" qp.W.Workload.block in
      Format.printf "  parallel/serial compile-time ratio: %.2fx@.@."
        (rp.O.Optimizer.elapsed /. Float.max 1e-9 rs.O.Optimizer.elapsed))
    serial_wl.W.Workload.queries parallel_wl.W.Workload.queries;
  (* The repartitioning heuristic in action: a join between two facts
     partitioned on unrelated keys. *)
  let schema = W.Warehouse.schema ~partitioned:true in
  let block =
    Qopt_sql.Binder.parse_and_bind ~name:"repart" schema
      "SELECT d.d_year, COUNT(*) FROM web_sales ws, store_sales ss, date_dim \
       d WHERE ws.ws_bill_customer_sk = ss.ss_customer_sk AND \
       ws.ws_sold_date_sk = d.d_date_sk AND d.d_year = 2000 GROUP BY \
       d.d_year"
  in
  Format.printf
    "repartitioning heuristic: web_sales (partitioned on sold_date) joined \
     to store_sales (partitioned on item) on customer keys — neither input \
     is keyed on the join column, so repartitioned plan variants appear:@.";
  ignore (show penv "parallel" block)
