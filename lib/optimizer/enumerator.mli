(** The bottom-up dynamic-programming join enumerator.

    The enumerator is deliberately decoupled from plan generation through a
    thin consumer interface (the design of extensible optimizers the paper's
    Section 3.1 relies on): the same enumeration drives both the real plan
    generator and the COTE's plan-estimate mode, guaranteeing that the
    estimator sees exactly the joins the optimizer would consider — up to
    cardinality-model differences in the card-1 Cartesian heuristic, which
    is precisely the error source the paper reports.

    Joins are enumerated per unordered set pair \{S, L\}; the event reports
    which directions (S outer / L outer) are feasible given outer-join
    sides, correlation dependencies, composite-inner limits and left-deep
    restrictions. *)

module Bitset = Qopt_util.Bitset

type join_event = {
  left : Memo.entry;  (** S *)
  right : Memo.entry;  (** L *)
  result : Memo.entry;  (** entry for S ∪ L *)
  preds : Pred.t list;  (** equality join predicates crossing S and L *)
  cartesian : bool;  (** no crossing predicate: a Cartesian product *)
  left_outer_ok : bool;  (** direction "S outer, L inner" is feasible *)
  right_outer_ok : bool;  (** direction "L outer, S inner" is feasible *)
}

type consumer = {
  on_entry : Memo.entry -> unit;
      (** called once per MEMO entry creation — the paper's [initialize()] *)
  on_join : join_event -> unit;
      (** called once per enumerated join — the paper's
          [accumulate_plans()], or real plan generation *)
}

val run :
  knobs:Knobs.t ->
  card_of:(Memo.entry -> float) ->
  Memo.t ->
  consumer ->
  unit
(** Enumerates bottom-up: singleton entries first (sizes 1), then joins of
    increasing result size.  [card_of] supplies the cardinality estimates
    consulted by the card-1 Cartesian heuristic; real optimization passes the
    full model, plan-estimate mode the simple one.

    Candidate pairs are pre-filtered through the block's join-graph
    adjacency index ({!Query_block.neighbors}, {!Memo.neighborhood}): a
    pair that is structurally unable to join — symmetric duplicate,
    overlapping sides, or no crossing predicate and no Cartesian knob that
    could admit it — is skipped before any per-pair work or metrics.  The
    gate is exact, so the enumerated join set (and every consumer
    callback) is identical to the naive all-pairs loop's; see
    [test/ref_enumerator.ml] for the oracle and the differential suite. *)

val direction_feasible :
  knobs:Knobs.t ->
  block:Query_block.t ->
  outer:Bitset.t ->
  inner:Bitset.t ->
  bool
(** Whether [outer] may serve as the outer of a join against [inner]:
    every quantifier of [outer] allows the outer role, no quantifier of
    [outer] depends on correlation values from [inner], no outer-join
    null-producing side in [outer] faces its preserved side in [inner], and
    [inner] respects the composite-inner / left-deep knobs.  Exposed for
    tests. *)
