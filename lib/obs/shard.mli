(** Per-domain shard slots.

    Metrics are sharded: each metric holds [max_slots] independent cells and
    a recording operation writes only the cell of the calling domain's slot.
    A domain's slot is stored in domain-local storage and defaults to 0 (the
    main domain).  Worker domains that record metrics concurrently must
    claim distinct slots with {!set_slot} before recording —
    [Qopt_par.Pool] does this for its workers.

    Merged readings ({!Counter.value}, {!Histo.count}, [Registry] export …)
    sum the slots, so a merged batch reading equals the serial reading over
    the same work.  Reads that overlap concurrent recording are eventually
    consistent; resetting while workers record is not supported. *)

val max_slots : int
(** 16.  [Qopt_par] clamps its domain count to this. *)

val slot : unit -> int
(** The calling domain's slot (domain-local, default 0). *)

val set_slot : int -> unit
(** Claim a slot for the calling domain.  Raises [Invalid_argument] outside
    [0, max_slots). *)

val next_seq : unit -> int
(** Next value of the process-wide write sequence (gauge merging). *)
