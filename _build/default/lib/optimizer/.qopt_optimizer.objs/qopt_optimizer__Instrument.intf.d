lib/optimizer/instrument.mli: Format
