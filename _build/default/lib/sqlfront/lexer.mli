(** Hand-written SQL lexer. *)

type token =
  | Ident of string  (** lower-cased identifier *)
  | Number of float
  | String of string
  | Kw of string  (** upper-cased keyword *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star_tok
  | Op of string  (** comparison operator: [=], [<], [<=], [>], [>=] *)
  | Eof

exception Error of string * int
(** Message and character offset. *)

val tokenize : string -> token list
(** Tokenizes a full statement; keywords are recognized case-insensitively.
    Raises {!Error} on malformed input. *)

val pp_token : Format.formatter -> token -> unit
