(* Remaining public surface: Env, Knobs, pretty-printers, Predict, and a
   generative SQL round-trip property. *)

module O = Qopt_optimizer

let t name f = Alcotest.test_case name `Quick f

let env_tests =
  [
    t "env basics" (fun () ->
        Alcotest.(check int) "serial nodes" 1 (O.Env.nodes O.Env.serial);
        Alcotest.(check int) "parallel nodes" 4 (O.Env.nodes (O.Env.parallel ~nodes:4));
        Alcotest.(check bool) "is_parallel" true (O.Env.is_parallel (O.Env.parallel ~nodes:2));
        Alcotest.(check string) "suffix s" "_s" (O.Env.suffix O.Env.serial);
        Alcotest.(check string) "suffix p" "_p" (O.Env.suffix (O.Env.parallel ~nodes:4)));
    t "parallel needs 2+ nodes" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Env.parallel: need at least 2 nodes")
          (fun () -> ignore (O.Env.parallel ~nodes:1)));
    t "knob presets" (fun () ->
        Alcotest.(check bool) "default has inner limit" true
          (O.Knobs.default.O.Knobs.max_inner = Some 3);
        Alcotest.(check bool) "full bushy unbounded" true
          (O.Knobs.full_bushy.O.Knobs.max_inner = None);
        Alcotest.(check bool) "left deep" true O.Knobs.left_deep.O.Knobs.left_deep_only);
    t "permissive fallback opens the space" (fun () ->
        let p = O.Knobs.permissive O.Knobs.default in
        Alcotest.(check bool) "cartesian on" true p.O.Knobs.allow_cartesian;
        Alcotest.(check bool) "no inner limit" true (p.O.Knobs.max_inner = None));
  ]

let pp_tests =
  [
    t "printers produce non-empty output" (fun () ->
        let check_nonempty name s =
          Alcotest.(check bool) (name ^ " non-empty") true (String.length s > 0)
        in
        check_nonempty "env" (Format.asprintf "%a" O.Env.pp O.Env.serial);
        check_nonempty "knobs" (Format.asprintf "%a" O.Knobs.pp O.Knobs.default);
        check_nonempty "quantifier"
          (Format.asprintf "%a" O.Quantifier.pp
             (O.Quantifier.make 0 (Helpers.table ~rows:1.0 "pp")));
        check_nonempty "block"
          (Format.asprintf "%a" O.Query_block.pp (Helpers.chain 3));
        check_nonempty "pred"
          (Format.asprintf "%a" O.Pred.pp
             (O.Pred.Eq_join (Helpers.cr 0 "a", Helpers.cr 1 "b")));
        check_nonempty "order"
          (Format.asprintf "%a" O.Order_prop.pp
             (O.Order_prop.make O.Order_prop.Grouping [ Helpers.cr 0 "a" ]));
        check_nonempty "partition"
          (Format.asprintf "%a" O.Partition_prop.pp
             (O.Partition_prop.hash [ Helpers.cr 0 "a" ])));
    t "plan pp renders the full tree" (fun () ->
        let r = O.Optimizer.optimize O.Env.serial ~knobs:Helpers.stable_knobs (Helpers.chain 3) in
        match r.O.Optimizer.best with
        | Some p ->
          let s = Format.asprintf "%a" O.Plan.pp p in
          Alcotest.(check bool) "mentions scans" true (Helpers.contains s "SCAN")
        | None -> Alcotest.fail "expected plan");
    t "instrument breakdown pp" (fun () ->
        let r = O.Optimizer.optimize O.Env.serial (Helpers.chain 3) in
        let s = Format.asprintf "%a" O.Instrument.pp_breakdown r.O.Optimizer.breakdown in
        Alcotest.(check bool) "has NLJN" true (Helpers.contains s "NLJN"));
  ]

let predict_tests =
  [
    t "predict composes estimator and model" (fun () ->
        let model = Cote.Time_model.make ~c_nljn:1e-6 ~c_mgjn:1e-6 ~c_hsjn:1e-6 () in
        let block = Helpers.chain 4 in
        let p = Cote.Predict.compile_time ~knobs:Helpers.stable_knobs ~model O.Env.serial block in
        let e = p.Cote.Predict.estimate in
        Alcotest.(check (float 1e-12)) "seconds = 1e-6 * total"
          (1e-6 *. float_of_int (Cote.Estimator.total e))
          p.Cote.Predict.seconds);
  ]

(* Generative SQL round-trip: random simple selects must pretty-print to
   text that reparses to the same pretty-printed text. *)
let gen_select =
  QCheck2.Gen.(
    let ident = oneofl [ "a"; "b"; "c"; "x1"; "col" ] in
    let tbl = oneofl [ "t"; "u"; "v" ] in
    let* n_from = int_range 1 3 in
    let* items = list_size (int_range 1 3) ident in
    let* wheres = list_size (int_range 0 3) (pair ident (int_range 0 100)) in
    let* group = list_size (int_range 0 2) ident in
    let* limit = opt (int_range 1 50) in
    let from =
      String.concat ", "
        (List.init n_from (fun i ->
             Printf.sprintf "%s f%d" (List.nth [ "t"; "u"; "v" ] (i mod 3)) i))
    in
    ignore tbl;
    let where =
      match wheres with
      | [] -> ""
      | ws ->
        " WHERE "
        ^ String.concat " AND "
            (List.map (fun (c, v) -> Printf.sprintf "f0.%s = %d" c v) ws)
    in
    let gb =
      match group with
      | [] -> ""
      | g -> " GROUP BY " ^ String.concat ", " (List.map (fun c -> "f0." ^ c) g)
    in
    let lim = match limit with None -> "" | Some n -> Printf.sprintf " LIMIT %d" n in
    return
      (Printf.sprintf "SELECT %s FROM %s%s%s%s"
         (String.concat ", " (List.map (fun c -> "f0." ^ c) items))
         from where gb lim))

let roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random SQL pretty-print round-trips" ~count:200
       gen_select (fun sql ->
         let printed = Qopt_sql.Ast.to_string (Qopt_sql.Parser.parse sql) in
         let reprinted = Qopt_sql.Ast.to_string (Qopt_sql.Parser.parse printed) in
         String.equal printed reprinted))

let suite = env_tests @ pp_tests @ predict_tests @ [ roundtrip_prop ]
