module String_map = Map.Make (String)

type t = {
  by_name : Table.t String_map.t;
  order : string list; (* reversed insertion order *)
  fks : Fkey.t list;
}

let empty = { by_name = String_map.empty; order = []; fks = [] }

let add_table t (table : Table.t) =
  if String_map.mem table.name t.by_name then
    invalid_arg (Printf.sprintf "Schema.add_table: duplicate table %s" table.name);
  {
    t with
    by_name = String_map.add table.name table t.by_name;
    order = table.name :: t.order;
  }

let find_table t name = String_map.find name t.by_name

let find_table_opt t name = String_map.find_opt name t.by_name

let mem_table t name = String_map.mem name t.by_name

let add_fkey t (fk : Fkey.t) =
  let check tbl cols =
    match find_table_opt t tbl with
    | None -> invalid_arg (Printf.sprintf "Schema.add_fkey: unknown table %s" tbl)
    | Some table ->
      List.iter
        (fun col ->
          if not (Table.mem_column table col) then
            invalid_arg
              (Printf.sprintf "Schema.add_fkey: unknown column %s.%s" tbl col))
        cols
  in
  check fk.from_table fk.from_cols;
  check fk.to_table fk.to_cols;
  { t with fks = fk :: t.fks }

let of_tables ?(fkeys = []) tables =
  let t = List.fold_left add_table empty tables in
  List.fold_left add_fkey t fkeys

let tables t = List.rev_map (fun name -> String_map.find name t.by_name) t.order

let table_names t = List.rev t.order

let fkeys t = List.rev t.fks

let fkeys_between t a b =
  List.filter
    (fun (fk : Fkey.t) ->
      (String.equal fk.from_table a && String.equal fk.to_table b)
      || (String.equal fk.from_table b && String.equal fk.to_table a))
    (fkeys t)

let pp ppf t =
  Format.fprintf ppf "schema: %s" (String.concat ", " (table_names t))
