examples/quickstart.ml: Cote Format Qopt_catalog Qopt_optimizer Qopt_sql
