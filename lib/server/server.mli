(** The compile-service daemon.

    Serves {!Proto} requests over a Unix-domain or TCP socket.  Every
    incoming query is first run through the COTE ({!Cote.Predict}); the
    predicted compilation time then drives the three serving decisions:

    - {b admission} ({!Admission}): requests whose estimate exceeds the
      per-request or aggregate in-flight budget get a structured
      [rejected] reply instead of queueing-forever;
    - {b scheduling} ({!Sched}): admitted compiles are ordered
      shortest-estimated-job-first (or FIFO for comparison) and executed
      by a pool of worker domains, with per-request deadlines enforced at
      dequeue and between optimizer passes ({!Qopt_optimizer.Optimizer}
      [~interrupt]);
    - {b level selection} ({!Level}): estimates above a threshold
      downgrade the optimization level before compiling.

    Concurrency model: one connection-handler thread per client (parses,
    estimates, admits, replies to [estimate]/[stats] inline) and
    [workers] spawned domains executing compiles.  Worker domains claim
    distinct {!Qopt_obs.Shard} slots — the PR 3 contract — so [server.*]
    and optimizer metrics shard cleanly.  A statement cache
    ({!Cote.Stmt_cache} [~shared:true]) is shared across all connections:
    recorded actual compile times refine the admission estimate for
    structurally identical queries. *)

module O = Qopt_optimizer

type addr = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : addr;
  env : O.Env.t;
  model : Cote.Time_model.t;  (** fitted time model for [env] *)
  workers : int;  (** worker domains (clamped to obs shard slots - 1) *)
  mode : Sched.mode;
  admission : Admission.policy;
  levels : Cote.Multi_level.level list;  (** most- to least-expensive *)
  downgrade_s : float option;
      (** predictions above this walk down [levels] before compiling *)
  default_deadline_s : float option;
      (** applied to compile requests that carry no [deadline_ms] *)
  schemas : (string * Qopt_catalog.Schema.t) list;
      (** named schemas for binding ad-hoc SQL; the first is the default *)
  plan_cache : Cote.Plan_cache.config option;
      (** [Some cfg] enables the parameterized plan cache: compile
          requests are keyed by their resolved schema name plus their
          {!Qopt_sql.Template} (identical SQL against same-named tables
          in different schemas never shares an entry), and a hit
          whose selectivity envelope still holds is answered inline from
          the cached plan — no COTE pass, no worker, an admission
          estimate of 0.  [None] (the default) preserves the
          always-compile behaviour. *)
  recalibrate : Cote.Recalibrate.config option;
      (** [Some cfg] enables online recalibration ({!Cote.Recalibrate}):
          every completed compile feeds its generated plan counts and
          measured elapsed seconds into a sliding window, and when the
          windowed mean relative error of the model's predictions crosses
          the drift threshold the coefficients are refitted and swapped
          atomically — admission, SJF priorities and level selection all
          use the corrected model from the next request on.  [None] (the
          default) serves [model] unchanged forever. *)
  trust_hints : bool;
      (** admit compile requests on their [estimate_hint_s] (when
          present) instead of running a local COTE pass — for fleet
          backends behind a {!Qopt_fleet.Router} that estimates once at
          the front door.  Only honored when [downgrade_s] is [None]:
          a downgrade decision needs the local per-level predictions.
          Hint-less requests estimate locally as always.  Default
          [false]. *)
  budget : O.Budget.t;
      (** resource caps applied to every DP pass — the budgeted estimate
          at admission and the real compile in the worker alike.  A giant
          join graph aborts with {!O.Budget.Exceeded} instead of growing
          the MEMO without bound; the compile is then served by the
          spanning-tree regime ({!Cote.Regime}).  Default
          {!O.Budget.unlimited}. *)
  greedy_model : Cote.Greedy_model.t;
      (** fitted time model for the spanning-tree fallback; its prediction
          competes with the DP prediction against the deadline in regime
          selection.  Default {!Cote.Greedy_model.default}. *)
  greedy_restarts : int;
      (** randomized restarts per fallback compile (seed-deterministic).
          Default 0. *)
}

val default_config :
  listen:addr ->
  model:Cote.Time_model.t ->
  schemas:(string * Qopt_catalog.Schema.t) list ->
  unit ->
  config
(** Serial env, 1 worker, SJF, unlimited admission, {!Level.default_levels},
    no downgrade threshold, no default deadline, unlimited budget, default
    greedy model, 0 restarts. *)

type stats = {
  st_requests : int;
  st_admitted : int;
  st_rejected : int;
  st_cancelled : int;
  st_compiles : int;
  st_estimates : int;
  st_errors : int;
  st_downgrades : int;
  st_plan_hits : int;  (** compile replies served from the plan cache *)
  st_refits : int;  (** recalibration refits that swapped the model *)
  st_regime_dp : int;  (** admissions that chose the DP regime *)
  st_regime_greedy : int;  (** admissions that chose the greedy regime *)
  st_regime_fallbacks : int;
      (** DP compiles that blew the budget mid-flight and were rescued by
          the spanning-tree fallback *)
  st_queue_depth : int;
  st_in_flight_s : float;  (** summed predicted seconds of admitted work *)
}

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Binds, listens, serves until a [shutdown] request arrives, then
    drains: queued jobs are cancelled (reason ["shutdown"]), the running
    compile finishes, workers and connection threads are joined, and the
    socket is closed (a Unix socket file is unlinked).  [on_ready] fires
    once the socket is listening — tests and in-process harnesses connect
    from it.  Metrics collection ({!Qopt_obs.Control}) is forced on for
    the server's lifetime and restored on exit.  Raises [Unix.Unix_error]
    if the address cannot be bound. *)
