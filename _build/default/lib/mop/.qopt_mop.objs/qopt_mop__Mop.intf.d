lib/mop/mop.mli: Cote Levels Qopt_optimizer
