module C = Qopt_catalog

let t name f = Alcotest.test_case name `Quick f

let feq = Alcotest.(check (float 1e-9))

let near msg expected tolerance actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6f within %.3f of %.6f" msg actual tolerance expected)
    true
    (Float.abs (actual -. expected) <= tolerance)

let histogram_tests =
  let h = C.Histogram.uniform ~lo:0.0 ~hi:100.0 ~rows:10_000.0 ~distinct:100.0 () in
  [
    t "uniform sel_eq ~ 1/distinct" (fun () ->
        near "sel_eq" 0.01 0.001 (C.Histogram.sel_eq h 42.0));
    t "sel_eq out of domain falls back to 1/distinct" (fun () ->
        feq "fallback" 0.01 (C.Histogram.sel_eq h 1234.0));
    t "sel_lt midpoint ~ 0.5" (fun () -> near "sel_lt" 0.5 0.02 (C.Histogram.sel_lt h 50.0));
    t "sel_lt monotone" (fun () ->
        let prev = ref 0.0 in
        List.iter
          (fun v ->
            let s = C.Histogram.sel_lt h v in
            Alcotest.(check bool) "monotone" true (s >= !prev);
            prev := s)
          [ 5.0; 20.0; 40.0; 60.0; 80.0; 95.0 ]);
    t "sel_lt hedges out of domain" (fun () ->
        feq "below" 0.02 (C.Histogram.sel_lt h (-5.0));
        feq "above" 0.98 (C.Histogram.sel_lt h 200.0));
    t "le = lt + eq (clamped)" (fun () ->
        near "le" (C.Histogram.sel_lt h 30.0 +. C.Histogram.sel_eq h 30.0) 1e-9
          (C.Histogram.sel_le h 30.0));
    t "ge complements lt" (fun () ->
        near "ge" (1.0 -. C.Histogram.sel_lt h 30.0) 1e-9 (C.Histogram.sel_ge h 30.0));
    t "between of full domain ~ 1" (fun () ->
        near "between" 1.0 0.05 (C.Histogram.sel_between h 0.0 100.0));
    t "between empty range is 0" (fun () -> feq "empty" 0.0 (C.Histogram.sel_between h 60.0 40.0));
    t "zipfian head heavier than tail" (fun () ->
        let z = C.Histogram.zipfian ~lo:0.0 ~hi:100.0 ~rows:10_000.0 ~distinct:100.0 () in
        Alcotest.(check bool) "head > tail" true
          (C.Histogram.sel_between z 0.0 10.0 > C.Histogram.sel_between z 90.0 100.0));
    t "sel_join of key-key join ~ 1/distinct" (fun () ->
        let a = C.Histogram.uniform ~lo:0.0 ~hi:1000.0 ~rows:1000.0 ~distinct:1000.0 () in
        let b = C.Histogram.uniform ~lo:0.0 ~hi:1000.0 ~rows:5000.0 ~distinct:1000.0 () in
        near "sel_join" 0.001 0.0005 (C.Histogram.sel_join a b));
    t "sel_join disjoint domains is 0" (fun () ->
        let a = C.Histogram.uniform ~lo:0.0 ~hi:10.0 ~rows:100.0 ~distinct:10.0 () in
        let b = C.Histogram.uniform ~lo:20.0 ~hi:30.0 ~rows:100.0 ~distinct:10.0 () in
        feq "disjoint" 0.0 (C.Histogram.sel_join a b));
    t "bucket count capped by distinct" (fun () ->
        let small = C.Histogram.uniform ~lo:0.0 ~hi:10.0 ~rows:1000.0 ~distinct:5.0 () in
        Alcotest.(check int) "buckets" 5 (C.Histogram.bucket_count small);
        near "sel_eq" 0.2 0.01 (C.Histogram.sel_eq small 3.0));
  ]

let column_tests =
  [
    t "defaults" (fun () ->
        let c = C.Column.make ~rows:100.0 "x" in
        feq "distinct defaults to rows" 100.0 c.C.Column.distinct;
        Alcotest.(check bool) "int type" true (C.Col_type.equal c.C.Column.ctype C.Col_type.Int));
    t "distinct clamped to rows" (fun () ->
        let c = C.Column.make ~rows:10.0 ~distinct:100.0 "x" in
        feq "clamped" 10.0 c.C.Column.distinct);
    t "col_type widths" (fun () ->
        Alcotest.(check int) "int" 4 (C.Col_type.byte_width C.Col_type.Int);
        Alcotest.(check int) "float" 8 (C.Col_type.byte_width C.Col_type.Float);
        Alcotest.(check int) "char" 10 (C.Col_type.byte_width (C.Col_type.Char 10));
        Alcotest.(check string) "to_string" "VARCHAR(20)"
          (C.Col_type.to_string (C.Col_type.Varchar 20)));
  ]

let index_tests =
  [
    t "provides_prefix" (fun () ->
        let idx = C.Index.make ~name:"i" [ "a"; "b"; "c" ] in
        Alcotest.(check bool) "full" true (C.Index.provides_prefix idx [ "a"; "b"; "c" ]);
        Alcotest.(check bool) "prefix" true (C.Index.provides_prefix idx [ "a" ]);
        Alcotest.(check bool) "not prefix" false (C.Index.provides_prefix idx [ "b" ]);
        Alcotest.(check bool) "too long" false (C.Index.provides_prefix idx [ "a"; "b"; "c"; "d" ]);
        Alcotest.(check bool) "empty" true (C.Index.provides_prefix idx []));
    t "empty key rejected" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Index.make: empty key")
          (fun () -> ignore (C.Index.make ~name:"i" [])));
  ]

let partition_tests =
  [
    t "hash compares keys as sets" (fun () ->
        Alcotest.(check bool) "set equal" true
          (C.Partition_spec.equal (C.Partition_spec.hash [ "a"; "b" ])
             (C.Partition_spec.hash [ "b"; "a" ])));
    t "range compares keys in order" (fun () ->
        Alcotest.(check bool) "order matters" false
          (C.Partition_spec.equal (C.Partition_spec.range [ "a"; "b" ])
             (C.Partition_spec.range [ "b"; "a" ])));
    t "hash <> range" (fun () ->
        Alcotest.(check bool) "kinds differ" false
          (C.Partition_spec.equal (C.Partition_spec.hash [ "a" ]) (C.Partition_spec.range [ "a" ])));
  ]

let table_tests =
  [
    t "page count derived from width" (fun () ->
        let t1 = Helpers.table ~rows:10_000.0 "w" in
        Alcotest.(check bool) "pages > 1" true (t1.C.Table.page_count > 1.0));
    t "unknown pk column rejected" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Table.make(bad): unknown primary key column nope")
          (fun () ->
            ignore
              (C.Table.make ~rows:1.0 ~name:"bad" ~primary_key:[ "nope" ]
                 [ C.Column.make ~rows:1.0 "a" ])));
    t "unknown index column rejected" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Table.make(bad): index i uses unknown column z")
          (fun () ->
            ignore
              (C.Table.make ~rows:1.0 ~name:"bad"
                 ~indexes:[ C.Index.make ~name:"i" [ "z" ] ]
                 [ C.Column.make ~rows:1.0 "a" ])));
    t "find/mem column" (fun () ->
        let t1 = Helpers.table ~rows:10.0 "f" in
        Alcotest.(check bool) "mem" true (C.Table.mem_column t1 "j1");
        Alcotest.(check string) "find" "j1" (C.Table.find_column t1 "j1").C.Column.name;
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (C.Table.find_column t1 "zz")));
    t "index_providing" (fun () ->
        let t1 =
          Helpers.table ~rows:10.0 ~indexes:[ C.Index.make ~name:"ix" [ "j1"; "j2" ] ] "ip"
        in
        Alcotest.(check bool) "found" true (C.Table.index_providing t1 [ "j1" ] <> None);
        Alcotest.(check bool) "not found" true (C.Table.index_providing t1 [ "j2" ] = None));
  ]

let schema_tests =
  [
    t "duplicate table rejected" (fun () ->
        let a = Helpers.table ~rows:1.0 "dup" in
        Alcotest.check_raises "raises" (Invalid_argument "Schema.add_table: duplicate table dup")
          (fun () -> ignore (C.Schema.of_tables [ a; a ])));
    t "find and order" (fun () ->
        let s = C.Schema.of_tables [ Helpers.table ~rows:1.0 "b"; Helpers.table ~rows:1.0 "a" ] in
        Alcotest.(check (list string)) "insertion order" [ "b"; "a" ] (C.Schema.table_names s);
        Alcotest.(check bool) "mem" true (C.Schema.mem_table s "a");
        Alcotest.(check bool) "not mem" false (C.Schema.mem_table s "zz"));
    t "fkey validation" (fun () ->
        let s = C.Schema.of_tables [ Helpers.table ~rows:1.0 "x" ] in
        Alcotest.check_raises "unknown table" (Invalid_argument "Schema.add_fkey: unknown table y")
          (fun () ->
            ignore
              (C.Schema.add_fkey s
                 (C.Fkey.make ~from_table:"x" ~from_cols:[ "j1" ] ~to_table:"y" ~to_cols:[ "pk" ]))));
    t "fkeys_between both directions" (fun () ->
        let s =
          C.Schema.of_tables
            ~fkeys:[ C.Fkey.make ~from_table:"x" ~from_cols:[ "j1" ] ~to_table:"y" ~to_cols:[ "pk" ] ]
            [ Helpers.table ~rows:1.0 "x"; Helpers.table ~rows:1.0 "y" ]
        in
        Alcotest.(check int) "x-y" 1 (List.length (C.Schema.fkeys_between s "x" "y"));
        Alcotest.(check int) "y-x" 1 (List.length (C.Schema.fkeys_between s "y" "x"));
        Alcotest.(check int) "x-x" 0 (List.length (C.Schema.fkeys_between s "x" "x")));
    t "fkey arity mismatch" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Fkey.make: mismatched column lists")
          (fun () ->
            ignore (C.Fkey.make ~from_table:"a" ~from_cols:[ "x"; "y" ] ~to_table:"b" ~to_cols:[ "z" ])));
  ]

let suite =
  histogram_tests @ column_tests @ index_tests @ partition_tests @ table_tests
  @ schema_tests
