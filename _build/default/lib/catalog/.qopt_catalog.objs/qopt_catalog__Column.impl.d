lib/catalog/column.ml: Col_type Float Format Histogram
