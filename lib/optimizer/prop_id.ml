module H = Hashtbl.Make (struct
  type t = Colref.t list

  let equal = Colref.list_equal

  let hash = Colref.list_hash
end)

type t = {
  tbl : int H.t;
  mutable rev : Colref.t list array;
  mutable n : int;
}

let none = -1

let create () =
  let t = { tbl = H.create 64; rev = Array.make 64 []; n = 0 } in
  (* Pre-intern the empty list: the unordered/DC physical order is by far
     the most common, and pinning it at id 0 makes that case branch-free. *)
  H.add t.tbl [] 0;
  t.n <- 1;
  t

let id_of_cols t cols =
  match H.find_opt t.tbl cols with
  | Some id -> id
  | None ->
    let id = t.n in
    if id = Array.length t.rev then begin
      let grown = Array.make (2 * Array.length t.rev) [] in
      Array.blit t.rev 0 grown 0 id;
      t.rev <- grown
    end;
    t.rev.(id) <- cols;
    H.add t.tbl cols id;
    t.n <- id + 1;
    id

let cols_of_id t id = t.rev.(id)

let size t = t.n
