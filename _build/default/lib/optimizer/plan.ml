module Bitset = Qopt_util.Bitset
module Index = Qopt_catalog.Index

type t = {
  op : op;
  tables : Bitset.t;
  order : Order_prop.physical;
  partition : Partition_prop.t option;
  card : float;
  cost : float;
}

and op =
  | Seq_scan of int
  | Index_scan of int * Index.t
  | Mv_scan of string
  | Sort of t
  | Repartition of t
  | Join of Join_method.t * t * t * Pred.t list

let rec n_nodes t =
  match t.op with
  | Seq_scan _ | Index_scan _ | Mv_scan _ -> 1
  | Sort input | Repartition input -> 1 + n_nodes input
  | Join (_, outer, inner, _) -> 1 + n_nodes outer + n_nodes inner

let rec depth t =
  match t.op with
  | Seq_scan _ | Index_scan _ | Mv_scan _ -> 1
  | Sort input | Repartition input -> 1 + depth input
  | Join (_, outer, inner, _) -> 1 + max (depth outer) (depth inner)

let rec join_count t =
  match t.op with
  | Seq_scan _ | Index_scan _ | Mv_scan _ -> 0
  | Sort input | Repartition input -> join_count input
  | Join (_, outer, inner, _) -> 1 + join_count outer + join_count inner

let method_counts t =
  let counts = Hashtbl.create 4 in
  let bump m =
    Hashtbl.replace counts m (1 + Option.value ~default:0 (Hashtbl.find_opt counts m))
  in
  let rec walk t =
    match t.op with
    | Seq_scan _ | Index_scan _ | Mv_scan _ -> ()
    | Sort input | Repartition input -> walk input
    | Join (m, outer, inner, _) ->
      bump m;
      walk outer;
      walk inner
  in
  walk t;
  List.filter_map
    (fun m ->
      match Hashtbl.find_opt counts m with None -> None | Some n -> Some (m, n))
    Join_method.all

let leaves t =
  let rec walk acc t =
    match t.op with
    | Mv_scan _ -> acc
    | Seq_scan q | Index_scan (q, _) -> q :: acc
    | Sort input | Repartition input -> walk acc input
    | Join (_, outer, inner, _) -> walk (walk acc outer) inner
  in
  List.rev (walk [] t)

let rec pipelinable t =
  match t.op with
  | Seq_scan _ | Index_scan _ | Mv_scan _ -> true
  | Sort _ -> false
  | Repartition input -> pipelinable input
  | Join (m, outer, inner, _) -> begin
    match m with
    | Join_method.HSJN -> false
    | Join_method.NLJN | Join_method.MGJN -> pipelinable outer && pipelinable inner
  end

let approx_bytes = 256.0

let rec pp_compact ppf t =
  match t.op with
  | Mv_scan name -> Format.fprintf ppf "MV[%s]" name
  | Seq_scan q -> Format.fprintf ppf "Q%d" q
  | Index_scan (q, idx) -> Format.fprintf ppf "Q%d[%s]" q idx.Index.name
  | Sort input -> Format.fprintf ppf "SORT(%a)" pp_compact input
  | Repartition input -> Format.fprintf ppf "REPART(%a)" pp_compact input
  | Join (m, outer, inner, _) ->
    Format.fprintf ppf "%a(%a,%a)" Join_method.pp m pp_compact outer pp_compact
      inner

let pp ppf t =
  let rec walk indent node =
    let pad = String.make indent ' ' in
    (match node.op with
    | Mv_scan name -> Format.fprintf ppf "%sMVSCAN %s" pad name
    | Seq_scan q -> Format.fprintf ppf "%sSCAN Q%d" pad q
    | Index_scan (q, idx) -> Format.fprintf ppf "%sISCAN Q%d %s" pad q idx.Index.name
    | Sort _ -> Format.fprintf ppf "%sSORT %a" pad Order_prop.pp_physical node.order
    | Repartition _ ->
      Format.fprintf ppf "%sREPART %s" pad
        (match node.partition with
        | None -> "?"
        | Some p -> Format.asprintf "%a" Partition_prop.pp p)
    | Join (m, _, _, preds) ->
      Format.fprintf ppf "%s%a on [%s]" pad Join_method.pp m
        (String.concat "; " (List.map (Format.asprintf "%a" Pred.pp) preds)));
    Format.fprintf ppf "  (card=%.1f cost=%.1f)@." node.card node.cost;
    match node.op with
    | Seq_scan _ | Index_scan _ | Mv_scan _ -> ()
    | Sort input | Repartition input -> walk (indent + 2) input
    | Join (_, outer, inner, _) ->
      walk (indent + 2) outer;
      walk (indent + 2) inner
  in
  walk 0 t
