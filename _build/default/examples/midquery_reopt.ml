(* Mid-query reoptimization (Section 1.1): "Since reoptimization itself
   takes time, the decision on whether to reoptimize or not is better made
   by comparing the execution cost of the remaining work with the estimated
   time to recompile."

   This example simulates execution checkpoints of warehouse queries: at
   each checkpoint a cardinality discrepancy is discovered, the remaining
   work is re-estimated, and the COTE's recompile estimate decides whether
   a mid-query reoptimization pays off.

     dune exec examples/midquery_reopt.exe *)

module O = Qopt_optimizer
module W = Qopt_workloads

let cost_to_seconds = 1e-3

let () =
  let env = O.Env.serial in
  let model =
    Cote.Calibrate.calibrate env
      (List.map
         (fun (q : W.Workload.query) -> q.W.Workload.block)
         (W.Synthetic.calibration ~partitioned:false).W.Workload.queries)
  in
  let wl = W.Warehouse.real1_w ~partitioned:false in
  Format.printf
    "%-8s %10s %12s %14s %12s  %s@." "query" "progress" "remaining(s)"
    "recompile(s)" "blowup" "decision";
  List.iter
    (fun (q : W.Workload.query) ->
      let r = O.Optimizer.optimize env q.W.Workload.block in
      let exec_estimate =
        match r.O.Optimizer.best with
        | Some p -> p.O.Plan.cost *. cost_to_seconds
        | None -> infinity
      in
      (* COTE: what would a recompile cost right now? *)
      let recompile =
        (Cote.Predict.compile_time ~model env q.W.Workload.block).Cote.Predict.seconds
      in
      (* Checkpoints through execution; at the first one the runtime
         discovers the true cardinalities are [blowup]x the estimates,
         inflating the remaining work proportionally. *)
      List.iter
        (fun (progress, blowup) ->
          let remaining = exec_estimate *. (1.0 -. progress) *. blowup in
          let decision =
            if recompile < remaining then "REOPTIMIZE mid-query"
            else "finish the current plan"
          in
          Format.printf "%-8s %9.0f%% %12.3f %14.4f %11.0fx  %s@."
            q.W.Workload.q_name (progress *. 100.0) remaining recompile blowup
            decision)
        [ (0.25, 8.0); (0.9, 1.0); (0.995, 1.0) ])
    wl.W.Workload.queries;
  Format.printf
    "@.The recompile estimate comes from the COTE at a few percent of the \
     cost of actually recompiling — cheap enough to consult at every \
     checkpoint.@."
