(** Deterministic pseudo-random numbers (splitmix64).

    Workload generators must be reproducible across runs and machines, so we
    carry our own generator instead of depending on [Random]'s global state.
    The generator is the splitmix64 sequence of Steele, Lea and Flood. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a seed. *)

val copy : t -> t
(** Independent copy of the current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].  Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [[lo, hi]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k l] draws [min k (length l)] distinct elements of [l],
    preserving no particular order. *)
