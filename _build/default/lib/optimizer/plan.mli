(** Physical execution plans.

    A plan node carries the table set it covers, its physical order (the
    empty list is the paper's "don't care" DC value), its partition (in
    parallel mode), the estimated output cardinality (a logical property,
    shared by all plans of a MEMO entry) and the estimated execution cost. *)

module Bitset = Qopt_util.Bitset
module Index = Qopt_catalog.Index

type t = {
  op : op;
  tables : Bitset.t;
  order : Order_prop.physical;  (** [[]] = unordered / DC *)
  partition : Partition_prop.t option;  (** [None] in serial mode *)
  card : float;
  cost : float;
}

and op =
  | Seq_scan of int  (** quantifier id *)
  | Index_scan of int * Index.t
  | Mv_scan of string  (** scan of a materialized view, by name (§6.2) *)
  | Sort of t
  | Repartition of t
  | Join of Join_method.t * t * t * Pred.t list
      (** method, outer, inner, join predicates applied *)

val n_nodes : t -> int
(** Number of operator nodes in the tree. *)

val depth : t -> int

val join_count : t -> int

val method_counts : t -> (Join_method.t * int) list
(** How many joins of each method the tree contains. *)

val leaves : t -> int list
(** Quantifier ids scanned, left to right. *)

val pipelinable : t -> bool
(** Whether the plan can deliver its first rows without a blocking operator:
    "no SORTs, builds for hash joins or TEMPs that require full
    materialization" (Table 1).  Scans pipeline; SORT blocks; hash joins
    block on their build; nested-loops and (pre-sorted) merge joins pipeline
    when their inputs do; repartitioning streams. *)

val approx_bytes : float
(** Approximate memory footprint of one saved plan node, used by the
    Section 6.2 memory-consumption model ("typically in the order of
    hundreds of bytes"). *)

val pp : Format.formatter -> t -> unit
(** Multi-line operator-tree rendering. *)

val pp_compact : Format.formatter -> t -> unit
(** Single-line rendering, e.g. [MGJN(HSJN(A,B),C)]. *)
