lib/catalog/histogram.mli: Format
