(** Experiment [ct]: the regression coefficients of the time model
    (Sections 3.5 and 4).

    The paper reports Cm:Cn:Ch = 5:2:4 on the serial version and 6:1:2 on
    the parallel version — one set per environment, refitted per release.
    Our absolute ratios differ (different cost model internals) but the
    shape must hold: coefficients are positive, the fit is tight, and the
    parallel coefficients differ from the serial ones (plan generation is
    costlier in parallel). *)

module O = Qopt_optimizer
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

let fit_quality env model =
  let wl = Common.workload env "calibration" in
  let measured = Common.measure_workload env wl in
  let actual = List.map (fun m -> m.Common.m_real.O.Optimizer.elapsed) measured in
  let fitted =
    List.map
      (fun m ->
        Cote.Time_model.predict_counts model
          ~nljn:(float_of_int m.Common.m_real.O.Optimizer.generated.O.Memo.nljn)
          ~mgjn:(float_of_int m.Common.m_real.O.Optimizer.generated.O.Memo.mgjn)
          ~hsjn:(float_of_int m.Common.m_real.O.Optimizer.generated.O.Memo.hsjn)
          ~joins:(float_of_int m.Common.m_real.O.Optimizer.joins))
      measured
  in
  Stats.r_squared ~actual ~fitted

let run () =
  let t =
    Tablefmt.create
      ~title:
        "ct: fitted time-model coefficients (paper: Cm:Cn:Ch = 5:2:4 serial, \
         6:1:2 parallel)"
      [
        ("environment", Tablefmt.Left);
        ("Cn (us/plan)", Tablefmt.Right);
        ("Cm (us/plan)", Tablefmt.Right);
        ("Ch (us/plan)", Tablefmt.Right);
        ("Cm:Cn:Ch", Tablefmt.Right);
        ("R^2", Tablefmt.Right);
      ]
  in
  List.iter
    (fun env ->
      let model = Common.model_for env in
      let m, n, h = Cote.Time_model.ratios model in
      Tablefmt.add_row t
        [
          Format.asprintf "%a" O.Env.pp env;
          Printf.sprintf "%.3f" (model.Cote.Time_model.c_nljn *. 1e6);
          Printf.sprintf "%.3f" (model.Cote.Time_model.c_mgjn *. 1e6);
          Printf.sprintf "%.3f" (model.Cote.Time_model.c_hsjn *. 1e6);
          Printf.sprintf "%.1f:%.1f:%.1f" m n h;
          Printf.sprintf "%.4f" (fit_quality env model);
        ])
    [ Common.serial; Common.parallel ];
  Tablefmt.print t;
  Format.printf "@."
