module Bitset = Qopt_util.Bitset
module Table = Qopt_catalog.Table

type t = {
  id : int;
  table : Table.t;
  alias : string;
  deps : Bitset.t;
  outer_allowed : bool;
}

let make ?(deps = Bitset.empty) ?(outer_allowed = true) ?alias id table =
  let alias =
    match alias with Some a -> a | None -> Printf.sprintf "%s_%d" table.Table.name id
  in
  { id; table; alias; deps; outer_allowed }

let pp ppf t =
  Format.fprintf ppf "Q%d=%s(%s)%s" t.id t.alias t.table.Table.name
    (if Bitset.is_empty t.deps then ""
     else Format.asprintf " deps%a" Bitset.pp t.deps)
