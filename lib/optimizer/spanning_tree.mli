(** The polynomial-time fallback enumeration regime for giant join graphs.

    Follows the spanning-tree family of plan enumerators: instead of the
    exponential DP MEMO, build a minimum spanning tree over the join graph
    weighted by estimated intermediate-result cardinality, then construct
    one plan by merging components along tree edges in weight order,
    costing both join directions and all three join methods at each merge
    (reusing {!Greedy}'s scan and cheapest-join machinery).  Optional
    randomized restarts perturb the edge weights multiplicatively and keep
    the cheapest plan found — a cheap hedge against the MST's greedy
    blind spot, still seed-deterministic.

    No MEMO is ever materialized: work is O(E log E + V·E) per attempt
    (E = join-graph edges, V = quantifiers), so 100-table cliques compile
    in milliseconds where the DP path exceeds any practical budget. *)

type result = {
  st_plan : Plan.t option;  (** [None] only for empty blocks *)
  st_elapsed : float;  (** wall-clock seconds, all attempts *)
  st_edges : int;  (** distinct join-graph edges (a time-model feature) *)
  st_restarts : int;  (** randomized restarts performed (attempts - 1) *)
  st_joins : int;  (** join operators costed across all attempts *)
}

val edge_count : Query_block.t -> int
(** Number of distinct quantifier pairs connected by at least one join
    predicate — computable without any enumeration, so the regime policy
    can predict fallback compile time before choosing a regime. *)

val optimize : ?seed:int -> ?restarts:int -> Env.t -> Query_block.t -> result
(** Optimizes a single block (children are ignored — drive them through
    {!Optimizer.optimize_fallback}).  [seed] (default 0) drives the
    restart perturbations; [restarts] (default 0) adds that many perturbed
    attempts after the unperturbed MST attempt.  Deterministic for a given
    [(seed, restarts)] pair.  Disconnected graphs are completed with
    Cartesian merges by smallest estimated result, as {!Greedy} does. *)
