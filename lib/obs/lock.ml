module Timer = Qopt_util.Timer

(* A named mutex whose acquisitions are measured: every lock of the same
   name shares one metric family (lock.<name>.acquisitions / .contended /
   .wait_s), so N stripes of a striped cache aggregate into a single
   per-structure reading.  The table below dedups the metric handles by
   name; creation is rare (module init, cache construction) but may happen
   off the main domain in tests, hence its own little mutex. *)

type metrics = {
  m_acq : Counter.t;
  m_contended : Counter.t;
  m_wait : Histo.t;
}

let families : (string, metrics) Hashtbl.t = Hashtbl.create 16

let families_lock = Mutex.create ()

let metrics_of name =
  Mutex.protect families_lock (fun () ->
      match Hashtbl.find_opt families name with
      | Some m -> m
      | None ->
        let reg = Registry.default in
        let m =
          {
            m_acq = Registry.counter reg (Printf.sprintf "lock.%s.acquisitions" name);
            m_contended =
              Registry.counter reg (Printf.sprintf "lock.%s.contended" name);
            m_wait = Registry.histogram reg (Printf.sprintf "lock.%s.wait_s" name);
          }
        in
        Hashtbl.add families name m;
        m)

type t = {
  name : string;
  mutex : Mutex.t;
  m : metrics;
}

let create name = { name; mutex = Mutex.create (); m = metrics_of name }

let name t = t.name

let mutex t = t.mutex

(* The instrumented acquire: an uncontended try_lock records a zero wait
   (count still advances, so wait_s.count = acquisitions and wait_s.sum is
   the total seconds spent blocked); a contended one pays two clock reads
   around the blocking lock.  The [Control.on] branch keeps the disabled
   path a bare [Mutex.lock]. *)
let lock t =
  if !Control.on then begin
    Counter.incr t.m.m_acq;
    if Mutex.try_lock t.mutex then Histo.observe t.m.m_wait 0.0
    else begin
      let t0 = Timer.monotonic_now () in
      Mutex.lock t.mutex;
      Counter.incr t.m.m_contended;
      Histo.observe t.m.m_wait (Timer.monotonic_now () -. t0)
    end
  end
  else Mutex.lock t.mutex

let unlock t = Mutex.unlock t.mutex

let with_lock t f =
  if !Control.on then begin
    lock t;
    match f () with
    | v ->
      Mutex.unlock t.mutex;
      v
    | exception e ->
      Mutex.unlock t.mutex;
      raise e
  end
  else Mutex.protect t.mutex f

(* Aggregate readings over every lock family created so far — the
   numerator of a lock-wait-share measurement. *)
let fold_families f init =
  Mutex.protect families_lock (fun () ->
      Hashtbl.fold (fun name m acc -> f acc name m) families init)

let total_wait_s () =
  fold_families (fun acc _ m -> acc +. Histo.sum m.m_wait) 0.0

let total_acquisitions () =
  fold_families (fun acc _ m -> acc + Counter.value m.m_acq) 0

let total_contended () =
  fold_families (fun acc _ m -> acc + Counter.value m.m_contended) 0

let wait_s name =
  match
    Mutex.protect families_lock (fun () -> Hashtbl.find_opt families name)
  with
  | Some m -> Histo.sum m.m_wait
  | None -> 0.0
