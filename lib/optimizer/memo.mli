(** The MEMO structure: one entry per enumerated table set.

    Each entry holds the non-pruned plans (real optimization), cached
    logical properties (cardinality, column equivalence, applicable
    interesting orders) and — in plan-estimate mode — the interesting
    property value lists that the COTE accumulates instead of plans
    (Section 3.3: "a classical technique of trading space for time").

    Pruning follows the generalized interesting-property rule: a plan is
    pruned when a cheaper plan satisfies a superset of the applicable
    interesting orders (and a compatible partition).  This implements the
    "plan sharing" behaviour the paper identifies as an over-estimation
    source: a cheap plan ordered on (a,b) also serves requests for (a) and
    silently absorbs that plan slot.

    Hot-path layout: physical properties are hash-consed into dense integer
    ids by a per-MEMO {!Prop_id} table, kept plans live in a growable array
    compacted in place on pruning, and the per-entry bests ([best_plan],
    [best_pipelinable_plan], the per-order cheapest-satisfying plan) are
    maintained incrementally on insertion — so the generator's repeated
    queries are O(1) and dominance tests compare integers.  All observable
    behaviour (kept-plan sets, iteration order of {!plans}, every
    tie-break) is bit-for-bit that of the legacy list-based MEMO, enforced
    by the differential suite in [test/t_hotpath.ml] against the verbatim
    reference copy in [test/ref_memo.ml]. *)

module Bitset = Qopt_util.Bitset

type counts = {
  mutable nljn : int;
  mutable mgjn : int;
  mutable hsjn : int;
}

val counts_zero : unit -> counts

val counts_total : counts -> int

val counts_get : counts -> Join_method.t -> int

val counts_add : counts -> Join_method.t -> int -> unit

type saved_plan = {
  sp_plan : Plan.t;
  sp_norm : int;
      (** interned id of the plan's normalized physical order *)
  sp_osig : int;
      (** bitmask: which applicable interesting orders the plan satisfies —
          dominance tests reduce to integer subset checks *)
  sp_pkey : int;
      (** interned canonical partition key (kind-tagged); {!Prop_id.none}
          when unpartitioned *)
  sp_pint : bool;  (** whether that partition is interesting here *)
  sp_pipe : bool;
      (** pipelinable — only meaningful (and only protected from pruning)
          when the block is a top-N query *)
}

type sat_slot = {
  ss_kind : Order_prop.kind;
  ss_cols : Colref.t list;
  mutable ss_best : saved_plan option;
}
(** One memoized [best_plan_satisfying] answer, kept current on insert. *)

type entry = {
  tables : Bitset.t;
  mutable saved : saved_plan array;
      (** kept (non-pruned) plans, oldest-first; only the first [n_saved]
          slots are live *)
  mutable n_saved : int;
  mutable best : saved_plan option;  (** cheapest kept plan, incremental *)
  mutable best_pipe : saved_plan option;
      (** cheapest kept pipelinable plan (top-N blocks only) *)
  sat_cache : (int, sat_slot) Hashtbl.t;
      (** interned order id -> cheapest satisfying plan *)
  osig_cache : (int, int) Hashtbl.t;
      (** interned normalized order -> interesting-order bitmask *)
  pprop_cache : (int, int * bool) Hashtbl.t;
      (** interned raw partition -> (canonical partition id, interesting) *)
  mutable width_cache : float;
      (** memoized [Cost_model.row_width] of the table set; negative =
          unset *)
  mutable card_cache : float option;  (** logical, computed once *)
  mutable equiv_cache : Equiv.t option;  (** logical, computed once *)
  mutable app_orders_cache : Order_prop.t list option;
      (** interesting orders applicable and unretired at this entry *)
  mutable app_canon_cache : (Order_prop.kind * Colref.t list) list option;
      (** their canonical column lists, for cheap per-plan signatures *)
  mutable neigh_cache : Bitset.t option;
      (** join-graph neighborhood of the entry's table set, computed once *)
  mutable i_orders : Order_prop.t list;  (** estimate mode: order list *)
  mutable i_parts : Partition_prop.t list;  (** estimate mode: partitions *)
  mutable i_pipe : bool;
      (** estimate mode: a pipelinable plan variant reaches this entry *)
  mutable propagated_once : bool;
      (** estimate mode: set after the first join populates the entry, for
          the first-join-only propagation shortcut (Section 4, point 4) *)
}

type stats = {
  mutable entries_created : int;
  mutable joins_enumerated : int;
  generated : counts;  (** join plans generated, before pruning *)
  mutable scan_plans : int;
  mutable pruned : int;
}

type t

val create : Query_block.t -> t

val block : t -> Query_block.t

val stats : t -> stats

val intern_cols : t -> Colref.t list -> int
(** Intern a canonical column list in the MEMO's property table — the
    generator uses this to compute each join plan's normalized-order id
    once at construction and pass it to {!insert_plan}. *)

val find_opt : t -> Bitset.t -> entry option

val find_or_create : t -> Bitset.t -> entry * bool
(** The boolean is [true] when the entry was just created. *)

val iter_entries_of_size : t -> int -> (entry -> unit) -> unit
(** Allocation-free iteration over the entries of one size, in creation
    order — the enumerator's inner loops.  Entries created during the
    iteration (necessarily of a larger size) are not visited. *)

val neighborhood : t -> entry -> Bitset.t
(** The join-graph neighborhood of the entry: quantifiers outside the
    entry's table set that share a join predicate with a member.  Cached on
    the entry; a right-hand candidate disjoint from this set can only join
    as a Cartesian product. *)

val iter_entries : (entry -> unit) -> t -> unit

val n_entries : t -> int

val equiv_of : t -> entry -> Equiv.t
(** Column equivalences induced by predicates internal to the entry
    (cached). *)

val card_of : t -> Cardinality.mode -> entry -> float
(** Cached cardinality of the entry under the given model.  A MEMO instance
    is used with a single mode throughout its lifetime. *)

val width_of : t -> entry -> float
(** Memoized [Cost_model.row_width] of the entry's table set — every plan
    of an entry shares it, so the cost model is handed the cached value
    instead of re-folding the quantifier widths per generated plan. *)

val applicable_orders : t -> entry -> Order_prop.t list
(** Interesting orders applicable to (and not retired at) the entry, derived
    from the query block and cached. *)

val plans : entry -> Plan.t list
(** The kept plans, without their cached signatures, newest-first — the
    exact iteration order of the legacy list-based MEMO, which downstream
    tie-breaks depend on. *)

val best_plan : entry -> Plan.t option
(** Cheapest kept plan regardless of properties.  O(1): maintained
    incrementally on insertion. *)

val best_pipelinable_plan : t -> entry -> Plan.t option
(** Cheapest kept plan that can pipeline (top-N planning).  O(1) on top-N
    blocks (cached incrementally); a scan otherwise. *)

val best_plan_satisfying : t -> entry -> Order_prop.t -> Plan.t option
(** Cheapest kept plan whose physical order satisfies the interesting
    order.  Memoized per interned order id and kept current on insertion:
    amortized O(1) for the generator's repeated merge-order queries. *)

val insert_plan : ?norm:int -> t -> entry -> Plan.t -> unit
(** Insert with dominance pruning (does not touch the [generated]
    counters — generation sites count).  [norm], when given, must be
    [intern_cols t (Equiv.normalize_cols (equiv_of t e) plan.order)] — the
    generator computes it once per plan at construction; otherwise it is
    derived here. *)

val kept_plans : t -> int
(** Total kept plans across all entries.  O(1): a running counter updated
    on insertion and dominance drops. *)

val memo_bytes : t -> float
(** Approximate bytes held in kept plans (for the Section 6.2 memory
    experiment). *)
