lib/mop/mop.ml: Cote Levels Qopt_optimizer Qopt_util
