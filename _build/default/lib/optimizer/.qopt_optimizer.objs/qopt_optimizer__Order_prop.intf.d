lib/optimizer/order_prop.mli: Colref Equiv Format Qopt_util
