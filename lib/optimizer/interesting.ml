module Bitset = Qopt_util.Bitset

let orders_for_table block q =
  (* Only predicates incident on [q] can contribute a join key, so walk the
     quantifier's adjacency edges instead of the whole predicate list.
     [crossing_preds] preserves predicate-list order, so the resulting
     orders come out exactly as the full scan produced them. *)
  let join_keys =
    List.filter_map
      (fun p ->
        match Pred.join_cols p with
        | Some (l, r) ->
          if l.Colref.q = q then Some (Order_prop.make Join_key [ l ])
          else if r.Colref.q = q then Some (Order_prop.make Join_key [ r ])
          else None
        | None -> None)
      (Query_block.crossing_preds block (Bitset.singleton q)
         (Query_block.neighbors block q))
  in
  let grouping =
    match
      List.filter (fun (c : Colref.t) -> c.Colref.q = q) block.Query_block.group_by
    with
    | [] -> []
    | cols -> [ Order_prop.make Grouping cols ]
  in
  let ordering =
    let rec prefix = function
      | (c : Colref.t) :: rest when c.Colref.q = q -> c :: prefix rest
      | _ :: _ | [] -> []
    in
    match prefix block.Query_block.order_by with
    | [] -> []
    | cols -> [ Order_prop.make Ordering cols ]
  in
  List.fold_left
    (fun acc o -> Order_prop.insert_dedup Equiv.empty o acc)
    [] (join_keys @ grouping @ ordering)

(* A column still has a "future use" for entry [tables] when some equality
   join predicate links (the equivalence class of) the column to a
   quantifier outside the entry. *)
let future_join_use block equiv ~tables c =
  List.exists
    (fun p ->
      match Pred.join_cols p with
      | None -> false
      | Some (l, r) ->
        (Bitset.mem l.Colref.q tables
        && (not (Bitset.mem r.Colref.q tables))
        && Equiv.same equiv l c)
        || (Bitset.mem r.Colref.q tables
           && (not (Bitset.mem l.Colref.q tables))
           && Equiv.same equiv r c))
    block.Query_block.preds

let order_retired block equiv ~tables (t : Order_prop.t) =
  match t.Order_prop.kind with
  | Grouping | Ordering -> false
  | Join_key ->
    not
      (List.exists (fun c -> future_join_use block equiv ~tables c) t.Order_prop.cols)

let partition_interesting block equiv ~tables (p : Partition_prop.t) =
  let subset_of cols universe =
    cols <> []
    && List.for_all
         (fun c -> List.exists (fun u -> Equiv.same equiv c u) universe)
         cols
  in
  let joins_pending =
    List.exists (fun c -> future_join_use block equiv ~tables c) p.Partition_prop.keys
  in
  match p.Partition_prop.kind with
  | Hash ->
    joins_pending || subset_of p.Partition_prop.keys block.Query_block.group_by
  | Range ->
    joins_pending
    ||
    (* Range partitions help ORDER BY when the keys form a prefix. *)
    let rec is_prefix keys obs =
      match (keys, obs) with
      | [], _ -> true
      | _ :: _, [] -> false
      | k :: keys', o :: obs' -> Equiv.same equiv k o && is_prefix keys' obs'
    in
    p.Partition_prop.keys <> [] && is_prefix p.Partition_prop.keys block.Query_block.order_by

let physical_partition block q =
  let table = (Query_block.quantifier block q).Quantifier.table in
  Option.map
    (fun spec -> Partition_prop.of_spec ~q spec)
    table.Qopt_catalog.Table.partition

let filter_indexes block q =
  let table = (Query_block.quantifier block q).Quantifier.table in
  let has_eq_pred col =
    List.exists
      (fun p ->
        match p with
        | Pred.Local_cmp (c, Pred.Eq, _) | Pred.Local_in (c, _) ->
          c.Colref.q = q && String.equal c.Colref.col col
        | Pred.Local_cmp _ | Pred.Eq_join _ | Pred.Expensive _ -> false)
      block.Query_block.preds
  in
  List.filter
    (fun (idx : Qopt_catalog.Index.t) ->
      match idx.Qopt_catalog.Index.columns with
      | leading :: _ -> has_eq_pred leading
      | [] -> false)
    table.Qopt_catalog.Table.indexes

let merge_order equiv preds =
  let cols =
    List.filter_map
      (fun p ->
        match Pred.join_cols p with Some (l, _) -> Some l | None -> None)
      preds
  in
  match Equiv.normalize_cols equiv cols with
  | [] -> None
  | cols -> Some (Order_prop.make Join_key cols)
