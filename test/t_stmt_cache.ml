(* The statement-cache baseline (Section 1.2): structural signatures,
   hit/miss accounting, and the abstraction boundary — which queries are
   "similar" enough to share a cached compile time, and which must not
   collide. *)

module O = Qopt_optimizer
module Obs = Qopt_obs
module SC = Cote.Stmt_cache

let t name f = Alcotest.test_case name `Quick f

let sig_eq = Alcotest.(check string) "signatures equal"

let sig_ne msg a b =
  if String.equal a b then
    Alcotest.failf "%s: signatures unexpectedly collide: %s" msg a

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

let accounting_tests =
  [
    t "miss then record then hit" (fun () ->
        let cache = SC.create () in
        let q = Helpers.chain 3 in
        Alcotest.(check (option (float 0.0))) "cold miss" None (SC.lookup cache q);
        SC.record cache q 0.125;
        Alcotest.(check (option (float 0.0)))
          "hit returns the recorded time" (Some 0.125) (SC.lookup cache q);
        Alcotest.(check int) "hits" 1 (SC.hits cache);
        Alcotest.(check int) "misses" 1 (SC.misses cache);
        Alcotest.(check int) "size" 1 (SC.size cache));
    t "re-recording replaces, not duplicates" (fun () ->
        let cache = SC.create () in
        let q = Helpers.chain 3 in
        SC.record cache q 0.1;
        SC.record cache q 0.2;
        Alcotest.(check int) "size" 1 (SC.size cache);
        Alcotest.(check (option (float 0.0)))
          "latest time wins" (Some 0.2) (SC.lookup cache q));
    t "distinct queries occupy distinct slots" (fun () ->
        let cache = SC.create () in
        SC.record cache (Helpers.chain 3) 0.1;
        SC.record cache (Helpers.chain 4) 0.2;
        SC.record cache (Helpers.star_block 4) 0.3;
        Alcotest.(check int) "size" 3 (SC.size cache));
    t "obs counters track hits, misses and size" (fun () ->
        Obs.Control.with_enabled true (fun () ->
            let reg = Obs.Registry.default in
            let h0 = Obs.Registry.counter_value reg "stmt_cache.hits" in
            let m0 = Obs.Registry.counter_value reg "stmt_cache.misses" in
            let cache = SC.create () in
            let q = Helpers.chain 3 in
            ignore (SC.lookup cache q);
            SC.record cache q 0.1;
            ignore (SC.lookup cache q);
            ignore (SC.lookup cache q);
            Alcotest.(check int) "hits delta" 2
              (Obs.Registry.counter_value reg "stmt_cache.hits" - h0);
            Alcotest.(check int) "misses delta" 1
              (Obs.Registry.counter_value reg "stmt_cache.misses" - m0);
            Alcotest.(check (float 0.0)) "size gauge" 1.0
              (Obs.Registry.gauge_value reg "stmt_cache.size")));
  ]

(* ------------------------------------------------------------------ *)
(* Signature invariance: what counts as "the same query"               *)
(* ------------------------------------------------------------------ *)

(* Rebuild a block with its quantifier list permuted and every predicate's
   quantifier indices remapped accordingly.  A structural signature must not
   depend on the arbitrary order quantifiers come in. *)
let permute_block perm (b : O.Query_block.t) =
  let n = O.Query_block.n_quantifiers b in
  assert (Array.length perm = n);
  (* perm.(new_index) = old_index; inverse maps old -> new. *)
  let inv = Array.make n 0 in
  Array.iteri (fun new_i old_i -> inv.(old_i) <- new_i) perm;
  let quantifiers =
    List.init n (fun new_i ->
        let old_q = O.Query_block.quantifier b perm.(new_i) in
        O.Quantifier.make new_i old_q.O.Quantifier.table)
  in
  let recol (c : O.Colref.t) = O.Colref.make inv.(c.O.Colref.q) c.O.Colref.col in
  let repred = function
    | O.Pred.Eq_join (l, r) -> O.Pred.Eq_join (recol l, recol r)
    | O.Pred.Local_cmp (c, op, v) -> O.Pred.Local_cmp (recol c, op, v)
    | O.Pred.Local_in (c, k) -> O.Pred.Local_in (recol c, k)
    | O.Pred.Expensive (ts, s, c) ->
      O.Pred.Expensive
        (Qopt_util.Bitset.of_list
           (List.map (fun q -> inv.(q)) (Qopt_util.Bitset.elements ts)),
         s, c)
  in
  O.Query_block.make ~name:(b.O.Query_block.name ^ "-permuted")
    ~group_by:(List.map recol b.O.Query_block.group_by)
    ~order_by:(List.map recol b.O.Query_block.order_by)
    ?first_n:b.O.Query_block.first_n ~quantifiers
    ~preds:(List.map repred b.O.Query_block.preds)
    ()

let with_local preds b =
  let open O.Query_block in
  make ~name:b.name ~group_by:b.group_by ~order_by:b.order_by
    ?first_n:b.first_n
    ~quantifiers:(List.init (n_quantifiers b) (quantifier b))
    ~preds:(b.preds @ preds) ()

let invariance_tests =
  [
    t "signature survives quantifier reordering" (fun () ->
        let b = Helpers.chain ~extra:1 ~group_by:true ~order_by:true 5 in
        List.iter
          (fun perm -> sig_eq (SC.signature b) (SC.signature (permute_block perm b)))
          [ [| 4; 3; 2; 1; 0 |]; [| 2; 0; 4; 1; 3 |]; [| 1; 0; 2; 4; 3 |] ]);
    t "a reordered query is a cache hit" (fun () ->
        let cache = SC.create () in
        let b = Helpers.star_block 5 in
        SC.record cache b 0.5;
        Alcotest.(check (option (float 0.0)))
          "permuted lookup hits" (Some 0.5)
          (SC.lookup cache (permute_block [| 3; 1; 4; 0; 2 |] b)));
    t "literal values are abstracted away" (fun () ->
        let b = Helpers.chain 3 in
        let q1 = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Le, 10.0) ] b in
        let q2 = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Le, 99.0) ] b in
        sig_eq (SC.signature q1) (SC.signature q2);
        (* Lt and Le likewise fold together: same plan space. *)
        let q3 = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Lt, 10.0) ] b in
        sig_eq (SC.signature q1) (SC.signature q3));
    t "predicate order does not matter" (fun () ->
        let b = Helpers.chain 4 in
        let p1 = O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Eq, 1.0) in
        let p2 = O.Pred.Local_cmp (Helpers.cr 2 "j2", O.Pred.Gt, 5.0) in
        sig_eq
          (SC.signature (with_local [ p1; p2 ] b))
          (SC.signature (with_local [ p2; p1 ] b)));
  ]

(* ------------------------------------------------------------------ *)
(* Non-collision: structurally different queries stay apart            *)
(* ------------------------------------------------------------------ *)

let non_collision_tests =
  [
    t "join shape distinguishes queries over the same tables" (fun () ->
        (* chain t0-t1-t2 vs star centered on t0 vs cycle, all on the same
           three tables: same table multiset, different join graphs. *)
        let quantifiers () =
          List.init 3 (fun i ->
              O.Quantifier.make i
                (Helpers.table ~rows:(1000.0 *. float_of_int (i + 1))
                   (Printf.sprintf "t%d" i)))
        in
        let mk name preds =
          O.Query_block.make ~name ~quantifiers:(quantifiers ()) ~preds ()
        in
        let j a b = O.Pred.Eq_join (Helpers.cr a "j1", Helpers.cr b "j1") in
        let chain = mk "chain" [ j 0 1; j 1 2 ] in
        let star = mk "star" [ j 0 1; j 0 2 ] in
        let cycle = mk "cycle" [ j 0 1; j 1 2; j 0 2 ] in
        sig_ne "chain vs star" (SC.signature chain) (SC.signature star);
        sig_ne "chain vs cycle" (SC.signature chain) (SC.signature cycle);
        sig_ne "star vs cycle" (SC.signature star) (SC.signature cycle));
    t "comparison class matters: Eq vs range" (fun () ->
        let b = Helpers.chain 3 in
        let eq = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Eq, 1.0) ] b in
        let le = with_local [ O.Pred.Local_cmp (Helpers.cr 0 "v", O.Pred.Le, 1.0) ] b in
        sig_ne "Eq vs Le" (SC.signature eq) (SC.signature le));
    t "IN-list arity matters" (fun () ->
        let b = Helpers.chain 3 in
        let i3 = with_local [ O.Pred.Local_in (Helpers.cr 0 "v", 3) ] b in
        let i7 = with_local [ O.Pred.Local_in (Helpers.cr 0 "v", 7) ] b in
        sig_ne "IN 3 vs IN 7" (SC.signature i3) (SC.signature i7));
    t "grouping, ordering and LIMIT all matter" (fun () ->
        let plain = Helpers.chain 3 in
        let grouped = Helpers.chain ~group_by:true 3 in
        let ordered = Helpers.chain ~order_by:true 3 in
        let limited =
          O.Query_block.make ~name:"lim" ~first_n:10
            ~quantifiers:
              (List.init 3 (fun i -> O.Query_block.quantifier plain i))
            ~preds:plain.O.Query_block.preds ()
        in
        sig_ne "plain vs grouped" (SC.signature plain) (SC.signature grouped);
        sig_ne "plain vs ordered" (SC.signature plain) (SC.signature ordered);
        sig_ne "grouped vs ordered" (SC.signature grouped) (SC.signature ordered);
        sig_ne "plain vs limited" (SC.signature plain) (SC.signature limited));
    t "chain length matters" (fun () ->
        sig_ne "3 vs 4"
          (SC.signature (Helpers.chain 3))
          (SC.signature (Helpers.chain 4)));
    t "extra join predicates matter" (fun () ->
        sig_ne "0 vs 1 extra"
          (SC.signature (Helpers.chain 4))
          (SC.signature (Helpers.chain ~extra:1 4)));
  ]

let suite = accounting_tests @ invariance_tests @ non_collision_tests
