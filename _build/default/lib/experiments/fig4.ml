(** Figure 4: overhead of compilation-time estimation vs. actual
    optimization — (a) linear_s, (b) real2_s, (c) real1_p.

    The paper reports estimation costing 1-3% of actual compilation. *)

module O = Qopt_optimizer
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

let run_one env wl_name =
  let wl = Common.workload env wl_name in
  let measured = Common.measure_workload env wl in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf "fig4: estimation overhead, %s (paper: 1-3%%)"
           (Common.suffixed env wl_name))
      [
        ("query", Tablefmt.Left);
        ("actual time", Tablefmt.Right);
        ("time to estimate", Tablefmt.Right);
        ("pctg", Tablefmt.Right);
      ]
  in
  let pcts =
    List.map
      (fun m ->
        let actual = m.Common.m_real.O.Optimizer.elapsed in
        let est = m.Common.m_est.Cote.Estimator.elapsed in
        let pct = if actual > 0.0 then est /. actual *. 100.0 else 0.0 in
        Tablefmt.add_row t
          [
            m.Common.m_query.Qopt_workloads.Workload.q_name;
            Tablefmt.fseconds actual;
            Tablefmt.fseconds est;
            Tablefmt.fpct pct;
          ];
        pct)
      measured
  in
  Tablefmt.print t;
  Format.printf "overhead: mean %.1f%%, median %.1f%%, max %.1f%%@.@."
    (Stats.mean pcts) (Stats.median pcts) (Stats.maximum pcts)

let run_a () = run_one Common.serial "linear"

let run_b () = run_one Common.serial "real2"

let run_c () = run_one Common.parallel "real1"
