module O = Qopt_optimizer
module Obs = Qopt_obs

(* Process-wide cache metrics, shared by every cache instance (no-ops
   unless Qopt_obs is enabled). *)
let m_hits = Obs.Registry.counter Obs.Registry.default "stmt_cache.hits"

let m_misses = Obs.Registry.counter Obs.Registry.default "stmt_cache.misses"

let m_size = Obs.Registry.gauge Obs.Registry.default "stmt_cache.size"

let m_hit_rate = Obs.Registry.gauge Obs.Registry.default "stmt_cache.hit_rate_pct"

let update_hit_rate () =
  if !Obs.Control.on then begin
    let h = Obs.Counter.value m_hits and m = Obs.Counter.value m_misses in
    if h + m > 0 then
      Obs.Gauge.set m_hit_rate (float_of_int h /. float_of_int (h + m) *. 100.0)
  end

(* A shared cache is striped: the signature hash picks one of [stripes]
   independently locked tables, so concurrent domains only serialize when
   they touch the same stripe.  Each stripe keeps its own hit/miss tallies
   (summed on read) — a cross-stripe total would need a second shared
   cell, which is exactly the contention the stripes exist to remove. *)
type stripe = {
  tbl : (string, float) Hashtbl.t;
  mutable s_hits : int;
  mutable s_misses : int;
  lock : Obs.Lock.t option;
}

type t = { stripes : stripe array }

let default_stripes = 8

let create ?(shared = false) ?stripes () =
  let n =
    if not shared then 1
    else
      match stripes with
      | Some n when n >= 1 -> min n 64
      | Some _ | None -> default_stripes
  in
  {
    stripes =
      Array.init n (fun _ ->
          {
            tbl = Hashtbl.create 64;
            s_hits = 0;
            s_misses = 0;
            lock = (if shared then Some (Obs.Lock.create "stmt_cache") else None);
          });
  }

let stripes t = Array.length t.stripes

let stripe_of t key =
  t.stripes.(Hashtbl.hash key mod Array.length t.stripes)

let with_stripe s f =
  match s.lock with
  | None -> f ()
  | Some l -> Obs.Lock.with_lock l f

let pred_sig block p =
  let col (c : O.Colref.t) =
    Printf.sprintf "%s.%s"
      (O.Query_block.quantifier block c.O.Colref.q).O.Quantifier.table
        .Qopt_catalog.Table.name
      c.O.Colref.col
  in
  match p with
  | O.Pred.Eq_join (l, r) ->
    let a = col l and b = col r in
    if a <= b then Printf.sprintf "J:%s=%s" a b else Printf.sprintf "J:%s=%s" b a
  | O.Pred.Local_cmp (c, op, _) ->
    (* Literal values are abstracted away: "similar" queries differ only in
       constants.  The operator is not — folding Lt with Le (or Gt with
       Ge) let [a < 5] serve a recorded actual for [a <= 5] and paired
       their plan-cache envelope labels positionally. *)
    Printf.sprintf "L:%s%s" (col c)
      (match op with
      | O.Pred.Eq -> "="
      | O.Pred.Lt -> "<"
      | O.Pred.Le -> "<="
      | O.Pred.Gt -> ">"
      | O.Pred.Ge -> ">=")
  | O.Pred.Local_in (c, n) -> Printf.sprintf "I:%s:%d" (col c) n
  | O.Pred.Expensive (ts, sel, cost) ->
    (* Selectivity and per-tuple cost are part of the predicate's
       identity, not literals of a template: two expensive predicates
       over the same tables but with different parameters price (and
       place) differently.  %h renders floats exactly, so distinct
       parameters can never collapse through decimal rounding. *)
    Printf.sprintf "X:%s:s%h:c%h"
      (Format.asprintf "%a" Qopt_util.Bitset.pp ts)
      sel cost

let rec block_sig (b : O.Query_block.t) =
  let tables =
    List.sort String.compare
      (List.init (O.Query_block.n_quantifiers b) (fun q ->
           (O.Query_block.quantifier b q).O.Quantifier.table
             .Qopt_catalog.Table.name))
  in
  let preds = List.sort String.compare (List.map (pred_sig b) b.O.Query_block.preds) in
  let children = List.map block_sig b.O.Query_block.children in
  Printf.sprintf "[%s|%s|g%d|o%d|n%s|oj%d|{%s}]"
    (String.concat "," tables) (String.concat ";" preds)
    (List.length b.O.Query_block.group_by)
    (List.length b.O.Query_block.order_by)
    (match b.O.Query_block.first_n with None -> "-" | Some n -> string_of_int n)
    (List.length b.O.Query_block.outer_joins)
    (String.concat "" children)

let signature = block_sig

let pred_signature = pred_sig

(* A recorded actual only transfers to a structurally identical query
   compiled under the same conditions: the optional tag (the server passes
   the chosen optimization level) partitions the key space so an elapsed
   measured at a downgraded level never refines a full-level estimate. *)
let key_of ?tag block =
  match tag with
  | None -> signature block
  | Some tag -> tag ^ "#" ^ signature block

let lookup t ?tag block =
  (* The signature is pure over the block; compute it (and the stripe
     choice) outside the lock so concurrent lookups serialize only on
     their stripe's table probe and bookkeeping. *)
  let key = key_of ?tag block in
  let s = stripe_of t key in
  with_stripe s (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some seconds ->
        s.s_hits <- s.s_hits + 1;
        Obs.Counter.incr m_hits;
        update_hit_rate ();
        Some seconds
      | None ->
        s.s_misses <- s.s_misses + 1;
        Obs.Counter.incr m_misses;
        update_hit_rate ();
        None)

(* Refinement in one call: a recorded actual beats the model's estimate,
   the model's estimate stands when the cache has never seen the shape.
   The server's evaluation path and the fleet router's routing estimate
   share this rule, so "estimate once, refine from observed actuals"
   means the same thing at both layers. *)
let refine t ?tag block ~model_s =
  match lookup t ?tag block with
  | Some seconds -> seconds
  | None -> model_s

let size_unmerged t =
  Array.fold_left
    (fun acc s -> acc + with_stripe s (fun () -> Hashtbl.length s.tbl))
    0 t.stripes

let record t ?tag block seconds =
  let key = key_of ?tag block in
  let s = stripe_of t key in
  with_stripe s (fun () -> Hashtbl.replace s.tbl key seconds);
  (* The size gauge sweeps every stripe; set it outside any stripe lock so
     a record never holds two locks at once. *)
  if !Obs.Control.on then
    Obs.Gauge.set m_size (float_of_int (size_unmerged t))

let size = size_unmerged

let hits t =
  Array.fold_left (fun acc s -> acc + with_stripe s (fun () -> s.s_hits)) 0 t.stripes

let misses t =
  Array.fold_left
    (fun acc s -> acc + with_stripe s (fun () -> s.s_misses))
    0 t.stripes
