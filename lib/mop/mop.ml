module O = Qopt_optimizer
module Timer = Qopt_util.Timer
module Obs = Qopt_obs

(* Meta-optimizer metrics: which level each query ended on, and how often
   the COTE gate escalated to the expensive level (no-ops unless Qopt_obs
   is enabled). *)
let m_keep_low = Obs.Registry.counter Obs.Registry.default "mop.decision.keep_low"

let m_escalations = Obs.Registry.counter Obs.Registry.default "mop.decision.reoptimize"

type decision =
  | Keep_low
  | Reoptimize

type outcome = {
  decision : decision;
  exec_estimate_low : float;
  compile_estimate_high : float;
  compile_actual_high : float option;
  exec_estimate_final : float;
  elapsed : float;
}

let cost_to_seconds = 1e-3

type config = {
  high_level : Levels.t;
  model : Cote.Time_model.t;
  margin : float;
}

let config ?(high_level = Levels.L2_default) ?(margin = 1.0) model =
  { high_level; model; margin }

let plan_exec_estimate = function
  | None -> infinity
  | Some (p : O.Plan.t) -> p.O.Plan.cost *. cost_to_seconds

let run cfg env block =
  let t0 = Timer.monotonic_now () in
  (* Low-level compilation: the greedy optimizer over every block. *)
  let low_cost = ref 0.0 in
  O.Query_block.iter_blocks
    (fun b -> low_cost := !low_cost +. plan_exec_estimate (O.Greedy.optimize env b))
    block;
  let exec_estimate_low = !low_cost in
  (* COTE: compilation-time estimate for the high level. *)
  let knobs = Levels.knobs cfg.high_level in
  let prediction = Cote.Predict.compile_time ~knobs ~model:cfg.model env block in
  let c = prediction.Cote.Predict.seconds in
  if c < cfg.margin *. exec_estimate_low then begin
    Obs.Counter.incr m_escalations;
    let result = O.Optimizer.optimize env ~knobs block in
    {
      decision = Reoptimize;
      exec_estimate_low;
      compile_estimate_high = c;
      compile_actual_high = Some result.O.Optimizer.elapsed;
      exec_estimate_final = plan_exec_estimate result.O.Optimizer.best;
      elapsed = Timer.monotonic_now () -. t0;
    }
  end
  else begin
    Obs.Counter.incr m_keep_low;
    {
      decision = Keep_low;
      exec_estimate_low;
      compile_estimate_high = c;
      compile_actual_high = None;
      exec_estimate_final = exec_estimate_low;
      elapsed = Timer.monotonic_now () -. t0;
    }
  end

let always_high env ?knobs block =
  let result = O.Optimizer.optimize env ?knobs block in
  (result.O.Optimizer.elapsed, plan_exec_estimate result.O.Optimizer.best)
