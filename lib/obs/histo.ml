let n_buckets = 256

(* Bucket 0 holds non-positive values; buckets 1..255 are log-scale with
   four buckets per octave, centered so bucket of 1.0 sits mid-range. *)
let mid = 128

let sub_per_octave = 4.0

let index_of v =
  if v <= 0.0 then 0
  else
    let i = mid + int_of_float (Float.floor (Float.log2 v *. sub_per_octave)) in
    if i < 1 then 1 else if i > n_buckets - 1 then n_buckets - 1 else i

(* Geometric midpoint of bucket [i]. *)
let representative i =
  if i = 0 then 0.0
  else Float.pow 2.0 ((float_of_int (i - mid) +. 0.5) /. sub_per_octave)

type shard = {
  buckets : int array;
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
}

type t = {
  name : string;
  shards : shard option array;  (* lazily allocated, one per slot in use *)
}

let make name = { name; shards = Array.make Shard.max_slots None }

let name t = t.name

let shard_of t s =
  match t.shards.(s) with
  | Some sh -> sh
  | None ->
    let sh =
      {
        buckets = Array.make n_buckets 0;
        s_count = 0;
        s_sum = 0.0;
        s_min = infinity;
        s_max = neg_infinity;
      }
    in
    t.shards.(s) <- Some sh;
    sh

let observe t v =
  if !Control.on then begin
    let sh = shard_of t (Shard.slot ()) in
    let i = index_of v in
    sh.buckets.(i) <- sh.buckets.(i) + 1;
    sh.s_count <- sh.s_count + 1;
    sh.s_sum <- sh.s_sum +. v;
    if v < sh.s_min then sh.s_min <- v;
    if v > sh.s_max then sh.s_max <- v
  end

let fold f init t =
  Array.fold_left
    (fun acc sh -> match sh with None -> acc | Some sh -> f acc sh)
    init t.shards

let count t = fold (fun acc sh -> acc + sh.s_count) 0 t

let sum t = fold (fun acc sh -> acc +. sh.s_sum) 0.0 t

let min_value t =
  if count t = 0 then Float.nan
  else fold (fun acc sh -> Float.min acc sh.s_min) infinity t

let max_value t =
  if count t = 0 then Float.nan
  else fold (fun acc sh -> Float.max acc sh.s_max) neg_infinity t

let mean t =
  let n = count t in
  if n = 0 then Float.nan else sum t /. float_of_int n

let quantile t q =
  let total = count t in
  if total = 0 then Float.nan
  else begin
    let target =
      let r = int_of_float (Float.ceil (q *. float_of_int total)) in
      if r < 1 then 1 else if r > total then total else r
    in
    let bucket i = fold (fun acc sh -> acc + sh.buckets.(i)) 0 t in
    let rec walk i cum =
      let cum = cum + bucket i in
      if cum >= target || i = n_buckets - 1 then i else walk (i + 1) cum
    in
    let i = walk 0 0 in
    (* Clamp the bucket midpoint to the observed range so single-observation
       and extreme quantiles stay honest. *)
    Float.min (max_value t) (Float.max (min_value t) (representative i))
  end

let reset t = Array.fill t.shards 0 Shard.max_slots None
