module Obs = Qopt_obs

(* The pool never outlives a batch: workers are spawned per call, seeded
   with a round-robin split of the task indices, and steal from each other
   once their own deque drains.  Tasks never enqueue new tasks, so a worker
   can exit as soon as a full sweep over every other deque reports Empty. *)

let max_domains = Obs.Shard.max_slots

(* Re-entrancy guard: a task that itself calls into the pool runs its inner
   batch sequentially.  Nested pools would oversubscribe the machine and
   hand out overlapping obs shard slots. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let clamp_domains d = max 1 (min d max_domains)

type 'a cell =
  | Pending
  | Ok_ of 'a
  | Exn of exn * Printexc.raw_backtrace

(* Between failed steal sweeps, back off exponentially: spin [2^level]
   pause hints while the contended window is likely shorter than a
   scheduler quantum, then escalate to yielding the whole timeslice.  On
   an oversubscribed box (CI: more domains than cores) the yield is what
   lets the domain actually holding the deque run — busy relaxing would
   spin out the quantum that victim needs to finish its pop. *)
let yield_level = 6

let backoff level =
  if level < yield_level then
    for _ = 1 to 1 lsl level do
      Domain.cpu_relax ()
    done
  else Thread.yield ()

let run_worker ~deques ~domains ~w ~run =
  let own = deques.(w) in
  (* Sweep every other deque once; Retry means a race was lost while tasks
     may remain, so sweep again (after backing off) until the sweep is
     clean.  The backoff level resets on every successful steal. *)
  let rec try_steal k saw_retry level =
    if k = domains then
      if saw_retry then begin
        backoff level;
        try_steal 1 false (min (level + 1) yield_level)
      end
      else None
    else
      match Deque.steal deques.((w + k) mod domains) with
      | Deque.Stolen i -> Some i
      | Deque.Retry -> try_steal (k + 1) true level
      | Deque.Empty -> try_steal (k + 1) saw_retry level
  in
  let rec loop () =
    match Deque.pop own with
    | Some i ->
      run i;
      loop ()
    | None -> (
      match try_steal 1 false 0 with
      | Some i ->
        run i;
        loop ()
      | None -> ())
  in
  loop ()

let map_indexed ?(domains = 1) n f =
  let domains = clamp_domains (min domains (max 1 n)) in
  if n = 0 then [||]
  else if domains = 1 || Domain.DLS.get in_worker then Array.init n f
  else begin
    let deques = Array.init domains (fun _ -> Deque.create ((n / domains) + 1)) in
    (* Deterministic round-robin seeding: task i starts in deque (i mod d).
       Stealing may move it, but tasks carry their index, so placement never
       affects results — only load balance. *)
    for i = 0 to n - 1 do
      Deque.push deques.(i mod domains) i
    done;
    let results = Array.make n Pending in
    let run i =
      results.(i) <-
        (try Ok_ (f i) with e -> Exn (e, Printexc.get_raw_backtrace ()))
    in
    let worker w () =
      Domain.DLS.set in_worker true;
      (* Spawned workers claim distinct obs shard slots so metric recording
         never races; the caller (worker 0) keeps its own slot. *)
      if w > 0 then Obs.Shard.set_slot w;
      run_worker ~deques ~domains ~w ~run
    in
    let spawned =
      Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    let caller_was_worker = Domain.DLS.get in_worker in
    Fun.protect
      ~finally:(fun () ->
        Array.iter Domain.join spawned;
        Domain.DLS.set in_worker caller_was_worker)
      (fun () -> worker 0 ());
    Array.map
      (function
        | Ok_ v -> v
        | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending ->
          (* Unreachable: every index is seeded exactly once and workers
             drain until all deques are empty. *)
          assert false)
      results
  end
