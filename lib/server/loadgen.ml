module Timer = Qopt_util.Timer

type outcome = Compiled | Rejected | Cancelled | Errored

type summary = {
  sent : int;
  compiled : int;
  rejected : int;
  cancelled : int;
  errored : int;
  wall_s : float;
  latencies_s : float array;
  qps : float;
}

let percentile lats p =
  let n = Array.length lats in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy lats in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

(* The small queries vary the constant so the statement cache (which keys
   on structure, not literals) still hits while the requests are distinct;
   the alias letter varies the table to spread catalog lookups. *)
let small_queries =
  [|
    "SELECT s.s_store_name FROM store s WHERE s.s_market_id = %d";
    "SELECT i.i_item_sk FROM item i WHERE i.i_category_id = %d";
    "SELECT c.c_customer_sk FROM customer c WHERE c.c_birth_year = %d";
    "SELECT d.d_date_sk FROM date_dim d WHERE d.d_year = %d";
  |]

let big_query =
  String.concat " "
    [
      "SELECT d.d_year, i.i_category_id, SUM(ss.ss_quantity)";
      "FROM store_sales ss, date_dim d, time_dim t, item i, customer c,";
      "household_demographics hd, store s, promotion p";
      "WHERE ss.ss_sold_date_sk = d.d_date_sk";
      "AND ss.ss_sold_time_sk = t.t_time_sk";
      "AND ss.ss_item_sk = i.i_item_sk";
      "AND ss.ss_customer_sk = c.c_customer_sk";
      "AND ss.ss_hdemo_sk = hd.hd_demo_sk";
      "AND ss.ss_store_sk = s.s_store_sk";
      "AND ss.ss_promo_sk = p.p_promo_sk";
      "AND d.d_year = %d";
      "GROUP BY d.d_year, i.i_category_id";
    ]

let warehouse_mix ~smalls ~bigs =
  let big i = Printf.sprintf (Scanf.format_from_string big_query "%d") (1998 + i) in
  let small i =
    let tpl = small_queries.(i mod Array.length small_queries) in
    Printf.sprintf (Scanf.format_from_string tpl "%d") (1 + (i mod 9))
  in
  List.init bigs big @ List.init smalls small

let classify = function
  | Proto.R_compile _ -> Compiled
  | Proto.R_rejected _ -> Rejected
  | Proto.R_cancelled _ -> Cancelled
  | Proto.R_estimate _ | Proto.R_error _ | Proto.R_stats _ | Proto.R_ok _ ->
    Errored

let summarize ~sent ~wall_s outcomes latencies =
  let count o = List.length (List.filter (fun x -> x = o) outcomes) in
  let compiled = count Compiled in
  {
    sent;
    compiled;
    rejected = count Rejected;
    cancelled = count Cancelled;
    errored = count Errored;
    wall_s;
    latencies_s = Array.of_list latencies;
    qps = (if wall_s > 0.0 then float_of_int compiled /. wall_s else 0.0);
  }

let compile_req ?deadline_ms id sql =
  Proto.Compile { id; sql; schema = None; deadline_ms; estimate_hint_s = None }

let run_burst ?deadline_ms ~addr ~sql () =
  let c = Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let started = Timer.monotonic_now () in
      let send_times = Hashtbl.create 64 in
      List.iter
        (fun q ->
          let id = Client.fresh_id c in
          Hashtbl.replace send_times id (Timer.monotonic_now ());
          Client.send c (compile_req ?deadline_ms id q))
        sql;
      let n = List.length sql in
      let rec collect k outcomes latencies =
        if k = 0 then (outcomes, latencies)
        else
          match Client.recv c with
          | None -> (outcomes, latencies)
          | Some reply ->
            let outcome = classify reply in
            let latencies =
              match (outcome, Hashtbl.find_opt send_times (Proto.reply_id reply)) with
              | Compiled, Some t0 -> (Timer.monotonic_now () -. t0) :: latencies
              | _ -> latencies
            in
            collect (k - 1) (outcome :: outcomes) latencies
      in
      let outcomes, latencies = collect n [] [] in
      let wall_s = Timer.monotonic_now () -. started in
      summarize ~sent:n ~wall_s outcomes latencies)

let run_closed ?deadline_ms ?(clients = 4) ~addr ~sql () =
  let sql = Array.of_list sql in
  let n = Array.length sql in
  let clients = max 1 (min clients (max 1 n)) in
  let results = Array.make clients ([], []) in
  let started = Timer.monotonic_now () in
  let worker w () =
    let c = Client.connect addr in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let outcomes = ref [] and latencies = ref [] in
        let i = ref w in
        while !i < n do
          let t0 = Timer.monotonic_now () in
          (match
             Client.request c (compile_req ?deadline_ms (Client.fresh_id c) sql.(!i))
           with
          | None -> outcomes := Errored :: !outcomes
          | Some reply ->
            let o = classify reply in
            if o = Compiled then
              latencies := (Timer.monotonic_now () -. t0) :: !latencies;
            outcomes := o :: !outcomes);
          i := !i + clients
        done;
        results.(w) <- (!outcomes, !latencies))
  in
  let threads = Array.init clients (fun w -> Thread.create (worker w) ()) in
  Array.iter Thread.join threads;
  let wall_s = Timer.monotonic_now () -. started in
  let outcomes = Array.to_list results |> List.concat_map fst in
  let latencies = Array.to_list results |> List.concat_map snd in
  summarize ~sent:n ~wall_s outcomes latencies
