module O = Qopt_optimizer
module W = Qopt_workloads
module Timer = Qopt_util.Timer
module Stats = Qopt_util.Stats

let serial = O.Env.serial

let parallel = O.Env.parallel ~nodes:4

type measured = {
  m_query : W.Workload.query;
  m_real : O.Optimizer.result;
  m_est : Cote.Estimator.estimate;
}

let workload_cache : (string, W.Workload.t) Hashtbl.t = Hashtbl.create 16

let workload env name =
  let partitioned = O.Env.is_parallel env in
  let key = name ^ O.Env.suffix env in
  match Hashtbl.find_opt workload_cache key with
  | Some w -> w
  | None ->
    let w =
      match name with
      | "linear" -> W.Synthetic.linear ~partitioned
      | "star" -> W.Synthetic.star ~partitioned
      | "cycle" -> W.Synthetic.cycle ~partitioned
      | "calibration" -> W.Synthetic.calibration ~partitioned
      | "real1" -> W.Warehouse.real1_w ~partitioned
      | "real2" -> W.Warehouse.real2_w ~partitioned
      | "random" ->
        W.Random_gen.generate ~schema:(W.Warehouse.schema ~partitioned) ()
      | "tpch" -> W.Tpch.all ~partitioned
      | "giant" -> W.Giant.workload ~partitioned ()
      | "tpch7" -> W.Tpch.longest ~env ~partitioned ()
      | other -> invalid_arg (Printf.sprintf "Common.workload: unknown %s" other)
    in
    Hashtbl.add workload_cache key w;
    w

(* Median of three runs for short queries, single run for long ones: the
   long queries are timing-stable, and re-running them would dominate the
   harness's wall-clock. *)
let timed_optimize env block =
  let first = O.Optimizer.optimize env block in
  if first.O.Optimizer.elapsed >= 0.5 then first
  else begin
    let r2 = O.Optimizer.optimize env block in
    let r3 = O.Optimizer.optimize env block in
    let med =
      Stats.median
        [ first.O.Optimizer.elapsed; r2.O.Optimizer.elapsed; r3.O.Optimizer.elapsed ]
    in
    { first with O.Optimizer.elapsed = med }
  end

let timed_estimate env block =
  let first = Cote.Estimator.estimate env block in
  let e2 = Cote.Estimator.estimate env block in
  let e3 = Cote.Estimator.estimate env block in
  let med =
    Stats.median
      [ first.Cote.Estimator.elapsed; e2.Cote.Estimator.elapsed;
        e3.Cote.Estimator.elapsed ]
  in
  { first with Cote.Estimator.elapsed = med }

let measure_cache : (string, measured list) Hashtbl.t = Hashtbl.create 16

let measure_workload env (w : W.Workload.t) =
  let key = w.W.Workload.w_name ^ O.Env.suffix env in
  match Hashtbl.find_opt measure_cache key with
  | Some m -> m
  | None ->
    (* Each query's measurement is independent, so route the sweep through
       the domain pool; QOPT_DOMAINS=1 (the default) keeps it sequential.
       Note that per-query wall-clock readings taken with >1 domain include
       cross-domain contention — fine for the throughput-oriented runs that
       opt in, not for calibration-grade timings. *)
    let m =
      Qopt_par.Batch.map
        ~domains:(Qopt_par.Batch.default_domains ())
        (fun ~rng:_ (q : W.Workload.query) ->
          {
            m_query = q;
            m_real = timed_optimize env q.W.Workload.block;
            m_est = timed_estimate env q.W.Workload.block;
          })
        w.W.Workload.queries
    in
    Hashtbl.add measure_cache key m;
    m

let observations env =
  let cal = workload env "calibration" in
  List.map
    (fun m ->
      {
        Cote.Calibrate.obs_nljn =
          float_of_int m.m_real.O.Optimizer.generated.O.Memo.nljn;
        obs_mgjn = float_of_int m.m_real.O.Optimizer.generated.O.Memo.mgjn;
        obs_hsjn = float_of_int m.m_real.O.Optimizer.generated.O.Memo.hsjn;
        obs_joins = float_of_int m.m_real.O.Optimizer.joins;
        obs_seconds = m.m_real.O.Optimizer.elapsed;
        obs_t_nljn = m.m_real.O.Optimizer.breakdown.O.Instrument.s_nljn;
        obs_t_mgjn = m.m_real.O.Optimizer.breakdown.O.Instrument.s_mgjn;
        obs_t_hsjn = m.m_real.O.Optimizer.breakdown.O.Instrument.s_hsjn;
      })
    (measure_workload env cal)

let model_cache : (string, Cote.Time_model.t) Hashtbl.t = Hashtbl.create 4

let model_for env =
  let key = "plan" ^ O.Env.suffix env in
  match Hashtbl.find_opt model_cache key with
  | Some m -> m
  | None ->
    let m = Cote.Calibrate.fit_instrumented (observations env) in
    Hashtbl.add model_cache key m;
    m

let joins_model_for env =
  let key = "joins" ^ O.Env.suffix env in
  match Hashtbl.find_opt model_cache key with
  | Some m -> m
  | None ->
    let m = Cote.Calibrate.fit_joins_only (observations env) in
    Hashtbl.add model_cache key m;
    m

let predicted_seconds env m = Cote.Time_model.predict (model_for env) m.m_est

let suffixed env name = name ^ O.Env.suffix env

let err_summary pairs =
  Printf.sprintf "mean |err| %.1f%%, max %.1f%%"
    (Stats.mean_abs_pct_error pairs)
    (Stats.max_abs_pct_error pairs)
