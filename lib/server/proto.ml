module J = Qopt_util.Json

type request =
  | Estimate of { id : int; sql : string; schema : string option }
  | Compile of {
      id : int;
      sql : string;
      schema : string option;
      deadline_ms : float option;
      estimate_hint_s : float option;
    }
  | Stats of { id : int }
  | Shutdown of { id : int }

type estimate_body = {
  e_predicted_s : float;
  e_level : string;
  e_cache_hit : bool;
  e_joins : int;
  e_nljn : int;
  e_mgjn : int;
  e_hsjn : int;
  e_entries : int;
  e_estimation_s : float;
}

type compile_body = {
  c_plan : string option;
  c_cost : float;
  c_card : float;
  c_joins : int;
  c_kept : int;
  c_entries : int;
  c_elapsed_s : float;
  c_predicted_s : float;
  c_level : string;
  c_queue_s : float;
  c_cache_hit : bool;
  c_plan_cached : bool;
  c_regime : string;
}

type reply =
  | R_estimate of int * estimate_body
  | R_compile of int * compile_body
  | R_rejected of {
      id : int;
      reason : string;
      estimate_us : float;
      retry_after_us : float option;
    }
  | R_cancelled of {
      id : int;
      reason : string;
      estimate_us : float;
      queue_s : float;
    }
  | R_error of { id : int; message : string }
  | R_stats of int * J.t
  | R_ok of int

let request_id = function
  | Estimate { id; _ } | Compile { id; _ } | Stats { id } | Shutdown { id } -> id

let reply_id = function
  | R_estimate (id, _)
  | R_compile (id, _)
  | R_rejected { id; _ }
  | R_cancelled { id; _ }
  | R_error { id; _ }
  | R_stats (id, _)
  | R_ok id ->
    id

(* The fleet router multiplexes many client connections over one channel
   per backend, remapping request ids both ways; this rebuilds a reply
   under the id the originating client used. *)
let with_reply_id reply id =
  match reply with
  | R_estimate (_, e) -> R_estimate (id, e)
  | R_compile (_, c) -> R_compile (id, c)
  | R_rejected r -> R_rejected { r with id }
  | R_cancelled r -> R_cancelled { r with id }
  | R_error r -> R_error { r with id }
  | R_stats (_, body) -> R_stats (id, body)
  | R_ok _ -> R_ok id

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let request_to_json = function
  | Estimate { id; sql; schema } ->
    J.Obj
      [
        ("op", J.Str "estimate"); ("id", J.int id); ("sql", J.Str sql);
        ("schema", J.opt (fun s -> J.Str s) schema);
      ]
  | Compile { id; sql; schema; deadline_ms; estimate_hint_s } ->
    J.Obj
      ([
         ("op", J.Str "compile"); ("id", J.int id); ("sql", J.Str sql);
         ("schema", J.opt (fun s -> J.Str s) schema);
         ("deadline_ms", J.opt (fun f -> J.Num f) deadline_ms);
       ]
      (* Only emitted when present, so requests from hint-less clients
         are byte-identical to the pre-fleet wire format. *)
      @
      match estimate_hint_s with
      | None -> []
      | Some s -> [ ("estimate_hint_s", J.Num s) ])
  | Stats { id } -> J.Obj [ ("op", J.Str "stats"); ("id", J.int id) ]
  | Shutdown { id } -> J.Obj [ ("op", J.Str "shutdown"); ("id", J.int id) ]

let reply_to_json = function
  | R_estimate (id, e) ->
    J.Obj
      [
        ("op", J.Str "estimate"); ("id", J.int id);
        ("predicted_s", J.Num e.e_predicted_s); ("level", J.Str e.e_level);
        ("cache_hit", J.Bool e.e_cache_hit); ("joins", J.int e.e_joins);
        ("nljn", J.int e.e_nljn); ("mgjn", J.int e.e_mgjn);
        ("hsjn", J.int e.e_hsjn); ("entries", J.int e.e_entries);
        ("estimation_s", J.Num e.e_estimation_s);
      ]
  | R_compile (id, c) ->
    J.Obj
      [
        ("op", J.Str "compile"); ("id", J.int id);
        ("plan", J.opt (fun s -> J.Str s) c.c_plan); ("cost", J.Num c.c_cost);
        ("card", J.Num c.c_card); ("joins", J.int c.c_joins);
        ("kept", J.int c.c_kept); ("entries", J.int c.c_entries);
        ("elapsed_s", J.Num c.c_elapsed_s);
        ("predicted_s", J.Num c.c_predicted_s); ("level", J.Str c.c_level);
        ("queue_s", J.Num c.c_queue_s); ("cache_hit", J.Bool c.c_cache_hit);
        ("plan_cached", J.Bool c.c_plan_cached);
        ("regime", J.Str c.c_regime);
      ]
  | R_rejected { id; reason; estimate_us; retry_after_us } ->
    J.Obj
      ([
         ("op", J.Str "rejected"); ("id", J.int id); ("reason", J.Str reason);
         ("estimate_us", J.Num estimate_us);
       ]
      @
      match retry_after_us with
      | None -> []
      | Some us -> [ ("retry_after_us", J.Num us) ])
  | R_cancelled { id; reason; estimate_us; queue_s } ->
    J.Obj
      [
        ("op", J.Str "cancelled"); ("id", J.int id); ("reason", J.Str reason);
        ("estimate_us", J.Num estimate_us); ("queue_s", J.Num queue_s);
      ]
  | R_error { id; message } ->
    J.Obj
      [ ("op", J.Str "error"); ("id", J.int id); ("message", J.Str message) ]
  | R_stats (id, body) ->
    J.Obj [ ("op", J.Str "stats"); ("id", J.int id); ("stats", body) ]
  | R_ok id -> J.Obj [ ("op", J.Str "ok"); ("id", J.int id) ]

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let field_int j key = Option.bind (J.member key j) J.get_int

let field_string j key = Option.bind (J.member key j) J.get_string

let field_float j key = Option.bind (J.member key j) J.get_float

let field_bool j key = Option.bind (J.member key j) J.get_bool

let id_of j = Option.value ~default:0 (field_int j "id")

let request_of_json j =
  match field_string j "op" with
  | None -> Error "request has no \"op\" field"
  | Some op -> (
    let id = id_of j in
    match op with
    | "estimate" -> (
      match field_string j "sql" with
      | None -> Error "estimate request has no \"sql\" field"
      | Some sql -> Ok (Estimate { id; sql; schema = field_string j "schema" }))
    | "compile" -> (
      match field_string j "sql" with
      | None -> Error "compile request has no \"sql\" field"
      | Some sql ->
        Ok
          (Compile
             {
               id;
               sql;
               schema = field_string j "schema";
               deadline_ms = field_float j "deadline_ms";
               estimate_hint_s = field_float j "estimate_hint_s";
             }))
    | "stats" -> Ok (Stats { id })
    | "shutdown" -> Ok (Shutdown { id })
    | op -> Error (Printf.sprintf "unknown request op %S" op))

let reply_of_json j =
  let req f what = match f with Some v -> v | None -> failwith what in
  match field_string j "op" with
  | None -> Error "reply has no \"op\" field"
  | Some op -> (
    let id = id_of j in
    try
      match op with
      | "estimate" ->
        Ok
          (R_estimate
             ( id,
               {
                 e_predicted_s = req (field_float j "predicted_s") "predicted_s";
                 e_level = req (field_string j "level") "level";
                 e_cache_hit = req (field_bool j "cache_hit") "cache_hit";
                 e_joins = req (field_int j "joins") "joins";
                 e_nljn = req (field_int j "nljn") "nljn";
                 e_mgjn = req (field_int j "mgjn") "mgjn";
                 e_hsjn = req (field_int j "hsjn") "hsjn";
                 e_entries = req (field_int j "entries") "entries";
                 e_estimation_s =
                   req (field_float j "estimation_s") "estimation_s";
               } ))
      | "compile" ->
        Ok
          (R_compile
             ( id,
               {
                 c_plan = field_string j "plan";
                 c_cost = req (field_float j "cost") "cost";
                 c_card = req (field_float j "card") "card";
                 c_joins = req (field_int j "joins") "joins";
                 c_kept = req (field_int j "kept") "kept";
                 c_entries = req (field_int j "entries") "entries";
                 c_elapsed_s = req (field_float j "elapsed_s") "elapsed_s";
                 c_predicted_s = req (field_float j "predicted_s") "predicted_s";
                 c_level = req (field_string j "level") "level";
                 c_queue_s = req (field_float j "queue_s") "queue_s";
                 c_cache_hit = req (field_bool j "cache_hit") "cache_hit";
                 c_plan_cached =
                   Option.value ~default:false (field_bool j "plan_cached");
                 c_regime =
                   Option.value ~default:"dp" (field_string j "regime");
               } ))
      | "rejected" ->
        Ok
          (R_rejected
             {
               id;
               reason = req (field_string j "reason") "reason";
               estimate_us = req (field_float j "estimate_us") "estimate_us";
               (* Absent on replies from pre-hint servers. *)
               retry_after_us = field_float j "retry_after_us";
             })
      | "cancelled" ->
        Ok
          (R_cancelled
             {
               id;
               reason = req (field_string j "reason") "reason";
               estimate_us = req (field_float j "estimate_us") "estimate_us";
               queue_s = req (field_float j "queue_s") "queue_s";
             })
      | "error" ->
        Ok (R_error { id; message = req (field_string j "message") "message" })
      | "stats" ->
        Ok (R_stats (id, Option.value ~default:J.Null (J.member "stats" j)))
      | "ok" -> Ok (R_ok id)
      | op -> Error (Printf.sprintf "unknown reply op %S" op)
    with Failure missing ->
      Error (Printf.sprintf "%s reply missing field %S" op missing))
