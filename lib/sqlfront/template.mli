(** Parameter abstraction for plan caching.

    Production traffic is dominated by parameter-varying repeats of the
    same statement templates: the SQL text differs only in literal
    constants.  [normalize] rewrites a parsed SELECT into its template —
    every literal constant is replaced by a typed placeholder while the
    observed value is retained alongside, so a plan cache can key on the
    template text and still feed the concrete values to selectivity
    estimation ({!Cote.Plan_cache}).

    Placeholders are ordinals in query traversal order (join ON
    conditions, then WHERE, recursing into EXISTS / IN subqueries), so
    normalization is deterministic and idempotent: numeric literals
    become the ordinal itself, string literals become ["?<ordinal>"].
    Everything structural — tables, predicate shapes, IN-list arity,
    grouping/ordering columns and LIMIT — survives untouched, which is
    exactly the equivalence class of {!Cote.Stmt_cache.signature}. *)

type ptype =
  | P_num  (** numeric literal *)
  | P_str  (** string literal *)

type param = {
  p_index : int;  (** placeholder ordinal, 0-based, traversal order *)
  p_type : ptype;
  p_value : Ast.literal;  (** the observed literal the placeholder replaced *)
}

type t = {
  shape : Ast.select;  (** the query with literals replaced by placeholders *)
  params : param list;  (** observed values, in placeholder order *)
  key : string;  (** rendered template text — the cache key *)
}

val normalize : Ast.select -> t
(** Abstract every literal constant.  Idempotent: normalizing [t.shape]
    yields the same shape and key (with the placeholders themselves as the
    observed values). *)

val key_of : Ast.select -> string
(** [(normalize s).key] without building the parameter list. *)
