(** Length-prefixed framing for the line-of-JSON protocol.

    A frame is the payload's byte length in ASCII decimal, a newline, the
    payload, and a trailing newline:

    {v 27\n{"op":"stats","id":3}\n v}

    The explicit length makes the protocol binary-safe (payloads may
    contain newlines) while staying debuggable with [socat]/[nc]. *)

exception Framing_error of string
(** Malformed length line, over-sized frame, or mid-frame EOF. *)

val max_frame : int
(** 16 MiB — a defensive bound; a hostile length line cannot make the
    server allocate unboundedly. *)

val write : out_channel -> string -> unit
(** Writes one frame and flushes. *)

val read : in_channel -> string option
(** Reads one frame; [None] on a clean EOF at a frame boundary.  Raises
    {!Framing_error} on a malformed frame. *)
