(** The (data) partition physical property for shared-nothing parallelism.

    A partition property records how a plan's rows are distributed across the
    nodes: hash or range, on a set of key columns (Table 1 of the paper).
    All three join methods propagate partitions fully (Table 2).  Partition
    properties are generated *lazily* — from the physical partitioning of
    base tables — plus the repartitioning heuristic of Section 4. *)

type kind =
  | Hash
  | Range

type t = {
  keys : Colref.t list;
  kind : kind;
}

val hash : Colref.t list -> t

val range : Colref.t list -> t

val of_spec : q:int -> Qopt_catalog.Partition_spec.t -> t
(** Lift a base table's physical partition spec to quantifier [q]'s column
    references. *)

val canonical : Equiv.t -> t -> Colref.t list
(** Hash keys are normalized and sorted (set semantics); range keys keep
    their sequence. *)

val equal_under : Equiv.t -> t -> t -> bool

val applicable : tables:Qopt_util.Bitset.t -> t -> bool

val keyed_on : Equiv.t -> t -> Colref.t -> bool
(** Whether the given column is one of the partitioning keys (modulo
    equivalence) — the test driving the repartitioning heuristic. *)

val insert_dedup : Equiv.t -> t -> t list -> t list

val pp : Format.formatter -> t -> unit
