type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if Float.is_nan v || v = infinity || v = neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num v -> add_num buf v
    | Str s -> escape buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Fail of string * int

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      &&
      match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && input.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match input.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match input.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let hex = String.sub input (!pos + 1) 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "malformed \\u escape"
            in
            (* UTF-8 encode the code point (surrogates passed through raw). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            pos := !pos + 4
          | c -> fail (Printf.sprintf "unknown escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char input.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Fail (msg, at) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let get_string = function Str s -> Some s | _ -> None

let get_float = function Num f -> Some f | _ -> None

let get_int = function Num f -> Some (int_of_float f) | _ -> None

let get_bool = function Bool b -> Some b | _ -> None

let int i = Num (float_of_int i)

let opt f = function None -> Null | Some v -> f v
