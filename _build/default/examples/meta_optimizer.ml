(* The Figure 1 scenario: a meta-optimizer (MOP) decides per query whether
   paying for high-level optimization is worth it, by comparing the COTE's
   compile-time estimate C against the cheap plan's execution estimate E.

     dune exec examples/meta_optimizer.exe *)

module O = Qopt_optimizer
module W = Qopt_workloads
module M = Qopt_mop

let () =
  let env = O.Env.serial in
  (* Train the time model on the synthetic calibration workload, exactly as
     a deployment would re-train per release. *)
  Format.printf "calibrating the time model on %d training queries...@."
    (W.Workload.size (W.Synthetic.calibration ~partitioned:false));
  let model =
    Cote.Calibrate.calibrate env
      (List.map
         (fun (q : W.Workload.query) -> q.W.Workload.block)
         (W.Synthetic.calibration ~partitioned:false).W.Workload.queries)
  in
  Format.printf "model: %a@.@." Cote.Time_model.pp model;
  let cfg = M.Mop.config model in
  let wl = W.Warehouse.real2_w ~partitioned:false in
  Format.printf "%-12s %12s %12s  %-11s %s@." "query" "E (exec)" "C (compile)"
    "decision" "note";
  let saved = ref 0.0 in
  List.iter
    (fun (q : W.Workload.query) ->
      let o = M.Mop.run cfg env q.W.Workload.block in
      let note =
        match (o.M.Mop.decision, o.M.Mop.compile_actual_high) with
        | M.Mop.Keep_low, _ ->
          saved := !saved +. o.M.Mop.compile_estimate_high;
          "skipped high-level optimization"
        | M.Mop.Reoptimize, Some actual ->
          Printf.sprintf "reoptimized in %.3fs (COTE said %.3fs)" actual
            o.M.Mop.compile_estimate_high
        | M.Mop.Reoptimize, None -> "reoptimized"
      in
      Format.printf "%-12s %12.4f %12.4f  %-11s %s@." q.W.Workload.q_name
        o.M.Mop.exec_estimate_low o.M.Mop.compile_estimate_high
        (match o.M.Mop.decision with
        | M.Mop.Keep_low -> "keep low"
        | M.Mop.Reoptimize -> "reoptimize")
        note)
    wl.W.Workload.queries;
  Format.printf
    "@.estimated compilation time avoided on skipped queries: %.3fs@." !saved
