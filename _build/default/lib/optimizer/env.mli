(** Optimization environment: serial or shared-nothing parallel.

    Mirrors the paper's two DB2 configurations: the serial version keeps the
    order property only; the parallel version (a shared-nothing system, 4
    logical nodes in the paper's experiments) keeps order and partition
    properties as independent lists. *)

type mode =
  | Serial
  | Parallel of int  (** number of logical nodes *)

type t = { mode : mode }

val serial : t

val parallel : nodes:int -> t
(** Raises [Invalid_argument] if [nodes < 2]. *)

val is_parallel : t -> bool

val nodes : t -> int
(** 1 in serial mode. *)

val suffix : t -> string
(** ["_s"] or ["_p"], the paper's workload-name postfixes. *)

val pp : Format.formatter -> t -> unit
