test/test_main.ml: Alcotest T_bitset T_block T_cardinality_cost T_catalog T_cote T_enumerator T_extensions T_memo T_misc T_mop T_optimizer T_properties T_props T_sql T_topn T_util T_workloads
