lib/util/timer.mli:
