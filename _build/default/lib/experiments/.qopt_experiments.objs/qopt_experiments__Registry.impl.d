lib/experiments/registry.ml: Ablation Cache_exp Coeffs Fig2 Fig4 Fig5 Fig6 List Memory_exp Mop_exp Multilevel_exp Mv_exp Pilot_exp String Tables_exp Topn_exp
