lib/optimizer/equiv.mli: Colref Pred
