(** Experiment [multilevel]: piggyback estimation for multiple optimization
    levels in a single enumeration pass (Section 6.2).

    One pass at the full-bushy level also yields estimates for the default
    (inner-limited) and left-deep levels; the experiment compares the
    piggybacked counts against dedicated per-level estimator runs and
    reports the time saved. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

let levels =
  [
    { Cote.Multi_level.level_name = "L2-default"; level_knobs = O.Knobs.default };
    { Cote.Multi_level.level_name = "L1-left-deep"; level_knobs = O.Knobs.left_deep };
  ]

let run () =
  let env = Common.serial in
  let wl = Common.workload env "linear" in
  let t =
    Tablefmt.create
      ~title:
        "multilevel: piggyback vs dedicated estimates (linear_s, base = full \
         bushy)"
      [
        ("query", Tablefmt.Left);
        ("level", Tablefmt.Left);
        ("piggyback plans", Tablefmt.Right);
        ("dedicated plans", Tablefmt.Right);
        ("err", Tablefmt.Right);
      ]
  in
  let pairs = ref [] in
  let piggy_time = ref 0.0 and dedicated_time = ref 0.0 in
  List.iter
    (fun (q : W.Workload.query) ->
      let results, elapsed =
        Cote.Multi_level.piggyback ~base:O.Knobs.full_bushy ~levels env
          q.W.Workload.block
      in
      piggy_time := !piggy_time +. elapsed;
      List.iter
        (fun (lc : Cote.Multi_level.level_counts) ->
          if lc.Cote.Multi_level.lc_name <> "base" then begin
            let knobs =
              (List.find
                 (fun l -> l.Cote.Multi_level.level_name = lc.Cote.Multi_level.lc_name)
                 levels)
                .Cote.Multi_level.level_knobs
            in
            let dedicated = Cote.Estimator.estimate ~knobs env q.W.Workload.block in
            dedicated_time := !dedicated_time +. dedicated.Cote.Estimator.elapsed;
            let piggy = float_of_int (Cote.Multi_level.lc_total lc) in
            let dedi = float_of_int (Cote.Estimator.total dedicated) in
            pairs := (dedi, piggy) :: !pairs;
            Tablefmt.add_row t
              [
                q.W.Workload.q_name;
                lc.Cote.Multi_level.lc_name;
                Tablefmt.fcount piggy;
                Tablefmt.fcount dedi;
                Tablefmt.fpct (Stats.pct_error ~actual:dedi ~estimate:piggy);
              ]
          end)
        results)
    wl.W.Workload.queries;
  Tablefmt.print t;
  Format.printf
    "piggyback vs dedicated: %s; one-pass time %.3fs vs dedicated lower-level \
     runs %.3fs (base pass already includes the full-level estimate)@.@."
    (Common.err_summary !pairs) !piggy_time !dedicated_time
