module O = Qopt_optimizer
module Regression = Qopt_util.Regression
module Timer = Qopt_util.Timer

type t = {
  g_quant : float;
  g_edge : float;
  g_restart : float;
}

let make ~g_quant ~g_edge ~g_restart () = { g_quant; g_edge; g_restart }

(* Fitted on the giant workload shapes (chain/cycle/star/snowflake/clique at
   20-50 tables) on the reference container: the spanning-tree sweep is
   edge-dominated (sorting + union-find + 6 costed joins per accepted edge),
   quantifiers add the scan-plan pass, and each restart re-runs the sweep.
   Re-fit with [calibrate] for a new environment, exactly like the DP
   model. *)
let default = { g_quant = 6e-5; g_edge = 1.5e-5; g_restart = 3e-3 }

let predict t ~quantifiers ~edges ~restarts =
  (t.g_quant *. float_of_int quantifiers)
  +. (t.g_edge *. float_of_int edges)
  +. (t.g_restart *. float_of_int restarts)

let predict_fallback t (fb : O.Optimizer.fallback) =
  predict t ~quantifiers:fb.O.Optimizer.fb_quantifiers
    ~edges:fb.O.Optimizer.fb_edges ~restarts:fb.O.Optimizer.fb_restarts

type observation = {
  gob_quant : float;
  gob_edges : float;
  gob_restarts : float;
  gob_seconds : float;
}

let measure ?(seed = 0) ?(restarts = 0) ?(repeats = 3) env block =
  let fb, seconds =
    Timer.time_median ~repeats (fun () ->
        O.Optimizer.optimize_fallback env ~seed ~restarts block)
  in
  {
    gob_quant = float_of_int fb.O.Optimizer.fb_quantifiers;
    gob_edges = float_of_int fb.O.Optimizer.fb_edges;
    gob_restarts = float_of_int fb.O.Optimizer.fb_restarts;
    gob_seconds = seconds;
  }

let fit observations =
  if observations = [] then invalid_arg "Greedy_model.fit: no observations";
  let xs =
    Array.of_list
      (List.map
         (fun o -> [| o.gob_quant; o.gob_edges; o.gob_restarts |])
         observations)
  in
  let ys = Array.of_list (List.map (fun o -> o.gob_seconds) observations) in
  let c = Regression.fit_nonneg xs ys in
  { g_quant = c.(0); g_edge = c.(1); g_restart = c.(2) }

let calibrate ?seed ?repeats env specs =
  fit
    (List.map
       (fun (block, restarts) -> measure ?seed ~restarts ?repeats env block)
       specs)

let pp ppf t =
  Format.fprintf ppf "Gq=%.3gus Ge=%.3gus Gr=%.3gus" (t.g_quant *. 1e6)
    (t.g_edge *. 1e6) (t.g_restart *. 1e6)
