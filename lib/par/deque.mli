(** Fixed-capacity Chase-Lev work-stealing deque.

    One owner domain pushes and pops at the bottom (LIFO); any other domain
    steals from the top (FIFO, oldest task first).  Capacity is fixed at
    creation — the pool seeds every task before the workers start, so no
    growth is needed, which keeps the steal path free of buffer-swap
    hazards. *)

type 'a steal_result =
  | Empty  (** no task observed; the deque may be drained *)
  | Retry  (** lost a race with the owner or another thief — try again *)
  | Stolen of 'a

type 'a t

val create : int -> 'a t
(** [create capacity] rounds the capacity up to a power of two (min 4). *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Approximate under concurrency; exact when quiescent. *)

val push : 'a t -> 'a -> unit
(** Owner only.  Raises [Invalid_argument] when full. *)

val pop : 'a t -> 'a option
(** Owner only.  Takes the most recently pushed task. *)

val steal : 'a t -> 'a steal_result
(** Any domain.  Takes the oldest task, or reports [Empty]/[Retry]. *)
