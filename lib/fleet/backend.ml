module J = Qopt_util.Json
module Timer = Qopt_util.Timer
module Srv = Qopt_server

type launch = Spawn of { exe : string; argv : string array } | External

type spec = { sp_addr : Srv.Server.addr; sp_launch : launch }

type outcome = Reply of Srv.Proto.reply | Timeout | Unreachable

(* One multiplexed connection to a backend: many router-side requests in
   flight at once, matched back to their waiters by the remapped request
   id.  A single reader thread drains replies; waiters sleep on the
   channel condvar, woken by the reader (fast path) or by the router's
   watchdog tick (so deadline waits cannot sleep past their deadline by
   more than one tick). *)
type slot = { mutable sl_reply : Srv.Proto.reply option }

type chan = {
  ch_fd : Unix.file_descr;
  ch_ic : in_channel;
  ch_oc : out_channel;
  ch_wlock : Mutex.t;  (* frame writes are atomic under this *)
  ch_lock : Mutex.t;  (* pending table, next_id, closed flag *)
  ch_cond : Condition.t;
  ch_pending : (int, slot) Hashtbl.t;
  mutable ch_next_id : int;
  mutable ch_closed : bool;
}

type t = {
  index : int;
  spec : spec;
  lock : Mutex.t;  (* chan/pid/down_since/probing/counters *)
  mutable chan : chan option;
  mutable pid : int option;
  mutable down_since : float option;  (* None while in rotation *)
  mutable probing : bool;  (* one probe at a time, outside [lock] *)
  mutable inflight : int;
  mutable routed : int;  (* compile dispatches sent here, ever *)
}

let create index spec =
  {
    index;
    spec;
    lock = Mutex.create ();
    chan = None;
    pid = None;
    down_since = Some 0.0;  (* not yet started = out of rotation *)
    probing = false;
    inflight = 0;
    routed = 0;
  }

let index t = t.index

let addr t = t.spec.sp_addr

let pid t = Mutex.protect t.lock (fun () -> t.pid)

let is_up t = Mutex.protect t.lock (fun () -> t.down_since = None)

let inflight t = Mutex.protect t.lock (fun () -> t.inflight)

let routed t = Mutex.protect t.lock (fun () -> t.routed)

let note_routed t = Mutex.protect t.lock (fun () -> t.routed <- t.routed + 1)

(* ------------------------------------------------------------------ *)
(* Channel plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let close_chan ch =
  Mutex.protect ch.ch_lock (fun () ->
      ch.ch_closed <- true;
      Condition.broadcast ch.ch_cond);
  try Unix.close ch.ch_fd with Unix.Unix_error _ -> ()

let reader ch () =
  let fail () =
    Mutex.protect ch.ch_lock (fun () ->
        ch.ch_closed <- true;
        Condition.broadcast ch.ch_cond)
  in
  let rec loop () =
    match Srv.Wire.read ch.ch_ic with
    | None -> fail ()
    | exception (Sys_error _ | End_of_file | Srv.Wire.Framing_error _) ->
      fail ()
    | Some payload -> (
      match Result.bind (J.parse payload) Srv.Proto.reply_of_json with
      | Error _ -> fail ()
      | Ok reply ->
        Mutex.protect ch.ch_lock (fun () ->
            (match
               Hashtbl.find_opt ch.ch_pending (Srv.Proto.reply_id reply)
             with
            | Some slot -> slot.sl_reply <- Some reply
            | None -> (* late reply to a timed-out id: drop it *) ());
            Condition.broadcast ch.ch_cond);
        loop ())
  in
  loop ()

let dial addr =
  match addr with
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  | `Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (inet, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

let open_chan ~attempts addr =
  let rec go n delay =
    match dial addr with
    | fd ->
      let ch =
        {
          ch_fd = fd;
          ch_ic = Unix.in_channel_of_descr fd;
          ch_oc = Unix.out_channel_of_descr fd;
          ch_wlock = Mutex.create ();
          ch_lock = Mutex.create ();
          ch_cond = Condition.create ();
          ch_pending = Hashtbl.create 32;
          ch_next_id = 1;
          ch_closed = false;
        }
      in
      ignore (Thread.create (reader ch) ());
      Some ch
    | exception Unix.Unix_error _ when n + 1 < attempts ->
      Thread.delay delay;
      go (n + 1) (Float.min (delay *. 2.0) 0.25)
    | exception Unix.Unix_error _ -> None
  in
  go 0 0.02

(* The watchdog's tick: wake any deadline waiters so they can re-check
   the clock (OCaml's Condition has no timed wait). *)
let tick t =
  match Mutex.protect t.lock (fun () -> t.chan) with
  | None -> ()
  | Some ch -> Mutex.protect ch.ch_lock (fun () -> Condition.broadcast ch.ch_cond)

(* ------------------------------------------------------------------ *)
(* Process lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let spawn_process exe argv =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close null with Unix.Unix_error _ -> ())
    (fun () -> Unix.create_process exe argv null null Unix.stderr)

(* Reap an exited child so a killed backend never lingers as a zombie;
   leaves a still-running pid alone. *)
let reap_locked t =
  match t.pid with
  | None -> ()
  | Some pid -> (
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> ()
    | _ -> t.pid <- None
    | exception Unix.Unix_error _ -> t.pid <- None)

let mark_down t =
  let ch =
    Mutex.protect t.lock (fun () ->
        let ch = t.chan in
        t.chan <- None;
        if t.down_since = None then t.down_since <- Some (Timer.monotonic_now ());
        reap_locked t;
        ch)
  in
  Option.iter close_chan ch

let install t ch =
  Mutex.protect t.lock (fun () ->
      t.chan <- Some ch;
      t.down_since <- None)

let start ?(attempts = 100) t =
  (match t.spec.sp_launch with
  | External -> ()
  | Spawn { exe; argv } ->
    let pid = spawn_process exe argv in
    Mutex.protect t.lock (fun () -> t.pid <- Some pid));
  match open_chan ~attempts t.spec.sp_addr with
  | Some ch ->
    install t ch;
    true
  | None -> false

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let rpc_chan ch ~timeout_s mk =
  let alloc =
    Mutex.protect ch.ch_lock (fun () ->
        if ch.ch_closed then None
        else begin
          let id = ch.ch_next_id in
          ch.ch_next_id <- id + 1;
          let slot = { sl_reply = None } in
          Hashtbl.replace ch.ch_pending id slot;
          Some (id, slot)
        end)
  in
  match alloc with
  | None -> Unreachable
  | Some (id, slot) -> (
    let wrote =
      try
        Mutex.protect ch.ch_wlock (fun () ->
            Srv.Wire.write ch.ch_oc
              (J.to_string (Srv.Proto.request_to_json (mk id))));
        true
      with Sys_error _ | Unix.Unix_error _ -> false
    in
    if not wrote then begin
      Mutex.protect ch.ch_lock (fun () ->
          Hashtbl.remove ch.ch_pending id;
          ch.ch_closed <- true;
          Condition.broadcast ch.ch_cond);
      Unreachable
    end
    else begin
      let deadline = Timer.monotonic_now () +. timeout_s in
      Mutex.protect ch.ch_lock (fun () ->
          let rec wait () =
            match slot.sl_reply with
            | Some reply ->
              Hashtbl.remove ch.ch_pending id;
              Reply reply
            | None ->
              if ch.ch_closed then begin
                Hashtbl.remove ch.ch_pending id;
                Unreachable
              end
              else if Timer.monotonic_now () >= deadline then begin
                (* The compile may still finish on the backend; leaving
                   the id removed makes the late reply an unknown id the
                   reader drops, so the channel stays usable. *)
                Hashtbl.remove ch.ch_pending id;
                Timeout
              end
              else begin
                Condition.wait ch.ch_cond ch.ch_lock;
                wait ()
              end
          in
          wait ())
    end)

let rpc t ~timeout_s mk =
  match Mutex.protect t.lock (fun () -> t.chan) with
  | None -> Unreachable
  | Some ch ->
    Mutex.protect t.lock (fun () -> t.inflight <- t.inflight + 1);
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect t.lock (fun () -> t.inflight <- t.inflight - 1))
      (fun () -> rpc_chan ch ~timeout_s mk)

(* ------------------------------------------------------------------ *)
(* Probing / readmission                                               *)
(* ------------------------------------------------------------------ *)

(* One prober at a time, and only after [probe_after_s] down-time: every
   other dispatcher sees the backend as down and routes around it rather
   than queueing on a probe.  A probe reaps + respawns a dead Spawn
   process, reconnects, and must complete a stats round trip before the
   backend re-enters rotation. *)
let try_probe t ~probe_after_s ~respawn =
  let claimed =
    Mutex.protect t.lock (fun () ->
        match t.down_since with
        | Some since
          when (not t.probing)
               && Timer.monotonic_now () -. since >= probe_after_s ->
          t.probing <- true;
          true
        | _ -> false)
  in
  if not claimed then false
  else begin
    let finish up =
      Mutex.protect t.lock (fun () ->
          t.probing <- false;
          if not up then t.down_since <- Some (Timer.monotonic_now ()));
      up
    in
    (match t.spec.sp_launch with
    | External -> ()
    | Spawn { exe; argv } ->
      let dead =
        Mutex.protect t.lock (fun () ->
            reap_locked t;
            t.pid = None)
      in
      if dead && respawn then
        let pid = spawn_process exe argv in
        Mutex.protect t.lock (fun () -> t.pid <- Some pid));
    match open_chan ~attempts:8 t.spec.sp_addr with
    | None -> finish false
    | Some ch -> (
      match
        rpc_chan ch ~timeout_s:2.0 (fun id -> Srv.Proto.Stats { id })
      with
      | Reply (Srv.Proto.R_stats _) ->
        install t ch;
        finish true
      | Reply _ | Timeout | Unreachable ->
        close_chan ch;
        finish false)
  end

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

let shutdown ?(timeout_s = 5.0) t =
  (match rpc t ~timeout_s:1.0 (fun id -> Srv.Proto.Shutdown { id }) with
  | Reply _ | Timeout | Unreachable -> ());
  mark_down t;
  match Mutex.protect t.lock (fun () -> t.pid) with
  | None -> ()
  | Some pid ->
    let deadline = Timer.monotonic_now () +. timeout_s in
    let rec wait () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        if Timer.monotonic_now () >= deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
        end
        else begin
          Thread.delay 0.02;
          wait ()
        end
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    wait ();
    Mutex.protect t.lock (fun () -> t.pid <- None)
