module Bitset = Qopt_util.Bitset

type cmp_op =
  | Eq
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Eq_join of Colref.t * Colref.t
  | Local_cmp of Colref.t * cmp_op * float
  | Local_in of Colref.t * int
  | Expensive of Bitset.t * float * float

let tables = function
  | Eq_join (l, r) -> Bitset.add r.q (Bitset.singleton l.q)
  | Local_cmp (c, _, _) | Local_in (c, _) -> Bitset.singleton c.q
  | Expensive (ts, _, _) -> ts

let is_join = function
  | Eq_join (l, r) -> l.q <> r.q
  | Local_cmp _ | Local_in _ | Expensive _ -> false

let crosses t s l =
  match t with
  | Eq_join (a, b) when a.q <> b.q ->
    (Bitset.mem a.q s && Bitset.mem b.q l)
    || (Bitset.mem a.q l && Bitset.mem b.q s)
  | Eq_join _ | Local_cmp _ | Local_in _ | Expensive _ -> false

let applicable_within t set = Bitset.subset (tables t) set

let join_cols = function
  | Eq_join (l, r) when l.q <> r.q -> Some (l, r)
  | Eq_join _ | Local_cmp _ | Local_in _ | Expensive _ -> None

let qpair = function
  | Eq_join (l, r) when l.q <> r.q -> Some (min l.q r.q, max l.q r.q)
  | Eq_join _ | Local_cmp _ | Local_in _ | Expensive _ -> None

let pp_op ppf op =
  Format.pp_print_string ppf
    (match op with Eq -> "=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let pp ppf = function
  | Eq_join (l, r) -> Format.fprintf ppf "%a = %a" Colref.pp l Colref.pp r
  | Local_cmp (c, op, v) ->
    Format.fprintf ppf "%a %a %g" Colref.pp c pp_op op v
  | Local_in (c, n) -> Format.fprintf ppf "%a IN (...%d)" Colref.pp c n
  | Expensive (ts, sel, _) ->
    Format.fprintf ppf "udf%a sel=%.3f" Bitset.pp ts sel
