lib/optimizer/join_method.ml: Format
