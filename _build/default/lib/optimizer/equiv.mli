(** Column equivalence classes induced by applied equality predicates.

    "Joins can change property equivalence.  For example, two distinct
    orders on R.a and on S.a become equivalent after the join predicate
    R.a = S.a is applied" (Section 3.3).  An [Equiv.t] is the union-find of
    all equality join predicates internal to a table set; it is a logical
    property, cached once per MEMO entry. *)

type t

val empty : t

val add_eq : t -> Colref.t -> Colref.t -> t
(** Declare two columns equal. *)

val repr : t -> Colref.t -> Colref.t
(** Canonical representative of a column's class (the column itself when it
    appears in no equality). *)

val same : t -> Colref.t -> Colref.t -> bool

val merge : t -> t -> t
(** Union of two equivalence relations. *)

val of_preds : Pred.t list -> t
(** Build from the equality join predicates in the list. *)

val normalize_cols : t -> Colref.t list -> Colref.t list
(** Maps each column to its representative and removes columns whose class
    already occurred earlier in the list (a column tied to an earlier sort
    key adds no ordering information). *)
