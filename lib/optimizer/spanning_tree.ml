module Bitset = Qopt_util.Bitset
module Rng = Qopt_util.Rng
module Timer = Qopt_util.Timer

type result = {
  st_plan : Plan.t option;
  st_elapsed : float;
  st_edges : int;
  st_restarts : int;
  st_joins : int;
}

let edge_count block =
  let n = Query_block.n_quantifiers block in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let nb = Query_block.neighbors block i in
    for j = i + 1 to n - 1 do
      if Bitset.mem j nb then incr count
    done
  done;
  !count

(* Everything cardinality-related, computed once per block.  [Cardinality.of_set]
   rescans the block's full predicate list on every call, which is fine for
   the DP path (entry cardinalities are computed once and memoized in the
   MEMO) but quadratic poison for a sweep that needs a cardinality per edge
   and per merge on a 1200-edge clique.  Cardinality factorizes exactly
   across components — the correlation back-off groups by quantifier pair,
   and the pairs crossing a merge are disjoint from the pairs inside either
   side — so singleton cardinalities plus one combined selectivity per
   adjacent pair reproduce [of_set] incrementally. *)
type card_ctx = {
  cc_singleton : float array;  (* [of_set] of each 1-table set *)
  cc_pair_jsel : (int * int, float) Hashtbl.t;
      (* per adjacent pair: back-off-combined selectivity of its preds *)
  cc_spanning_locals : Pred.t list;
      (* non-join preds spanning several quantifiers (expensive UDFs):
         applied when a merge first makes them applicable *)
}

let card_context block =
  let n = Query_block.n_quantifiers block in
  let cc_singleton =
    Array.init n (fun q ->
        Cardinality.of_set Cardinality.Full block (Bitset.singleton q))
  in
  let by_pair = Hashtbl.create 64 in
  List.iter
    (fun p ->
      match Pred.qpair p with
      | Some key ->
        Hashtbl.replace by_pair key
          (p :: Option.value ~default:[] (Hashtbl.find_opt by_pair key))
      | None -> ())
    block.Query_block.preds;
  let cc_pair_jsel = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key preds ->
      Hashtbl.replace cc_pair_jsel key
        (Cardinality.combined_join_selectivity Cardinality.Full block preds))
    by_pair;
  let cc_spanning_locals =
    List.filter
      (fun p -> (not (Pred.is_join p)) && Bitset.cardinal (Pred.tables p) > 1)
      block.Query_block.preds
  in
  { cc_singleton; cc_pair_jsel; cc_spanning_locals }

(* Cardinality of joining two component plans: both sides' cardinalities
   already include their internal predicates, so only the crossing pairs'
   selectivities (and any multi-table local predicate that just became
   applicable) remain. *)
let merged_card cc block a_tables a_card b_tables b_card preds =
  let jsel =
    (* [preds] holds every predicate of every crossing pair, so distinct
       pairs index straight into the precomputed table. *)
    let seen = Hashtbl.create 8 in
    List.fold_left
      (fun acc p ->
        match Pred.qpair p with
        | Some key when not (Hashtbl.mem seen key) ->
          Hashtbl.replace seen key ();
          acc *. (try Hashtbl.find cc.cc_pair_jsel key with Not_found -> 1.0)
        | Some _ | None -> acc)
      1.0 preds
  in
  let union = Bitset.union a_tables b_tables in
  let locals =
    List.fold_left
      (fun acc p ->
        if
          Pred.applicable_within p union
          && (not (Pred.applicable_within p a_tables))
          && not (Pred.applicable_within p b_tables)
        then acc *. Cardinality.local_selectivity Cardinality.Full block p
        else acc)
      1.0 cc.cc_spanning_locals
  in
  Float.max 1e-6 (a_card *. b_card *. jsel *. locals)

(* The join graph as a weighted edge list: one edge per adjacent quantifier
   pair, weighted by the estimated cardinality of joining just that pair —
   the spanning-tree heuristic's stand-in for "how much data flows through
   this join". *)
let graph_edges cc block =
  let n = Query_block.n_quantifiers block in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let nb = Query_block.neighbors block i in
    for j = n - 1 downto i + 1 do
      if Bitset.mem j nb then begin
        let jsel =
          try Hashtbl.find cc.cc_pair_jsel (i, j) with Not_found -> 1.0
        in
        let w =
          Float.max 1e-6 (cc.cc_singleton.(i) *. cc.cc_singleton.(j) *. jsel)
        in
        acc := (i, j, w) :: !acc
      end
    done
  done;
  !acc

(* Weight order with a deterministic (i, j) tie-break so equal-cardinality
   edges — common in symmetric cliques — never make the result depend on
   sort stability. *)
let by_weight (i1, j1, w1) (i2, j2, w2) =
  match Float.compare w1 w2 with
  | 0 -> ( match Int.compare i1 i2 with 0 -> Int.compare j1 j2 | c -> c)
  | c -> c

let cheaper (a : Plan.t) (b : Plan.t) = if a.Plan.cost <= b.Plan.cost then a else b

(* One construction attempt over a (possibly perturbed) edge list.  The
   Kruskal sweep *is* the MST: processing edges in weight order and merging
   only when the endpoints live in different components selects exactly the
   minimum-spanning-tree edges, and each merge immediately becomes a join
   operator over the two component plans.  All predicates crossing the two
   components (not just the tree edge's) are applied at the merge, so the
   plan evaluates every join predicate exactly once. *)
let attempt env params cc block edges joins =
  let n = Query_block.n_quantifiers block in
  let comps = Array.init n (fun q -> Some (Greedy.scan_plan env params block q)) in
  let parent = Array.init n (fun q -> q) in
  let rec find q =
    if parent.(q) = q then q
    else begin
      let r = find parent.(q) in
      parent.(q) <- r;
      r
    end
  in
  let merge a b preds =
    let card =
      merged_card cc block a.Plan.tables a.Plan.card b.Plan.tables b.Plan.card
        preds
    in
    joins := !joins + 2;
    cheaper
      (Greedy.cheapest_join params block ~outer:a ~inner:b ~preds ~out_card:card)
      (Greedy.cheapest_join params block ~outer:b ~inner:a ~preds ~out_card:card)
  in
  List.iter
    (fun (i, j, _) ->
      let ri = find i and rj = find j in
      if ri <> rj then begin
        match (comps.(ri), comps.(rj)) with
        | Some a, Some b ->
          let preds = Query_block.crossing_preds block a.Plan.tables b.Plan.tables in
          comps.(ri) <- Some (merge a b preds);
          comps.(rj) <- None;
          parent.(rj) <- ri
        | _ -> assert false
      end)
    edges;
  (* A disconnected join graph leaves several components; finish with
     Cartesian merges by smallest estimated result, as Greedy does. *)
  let rec collapse = function
    | [] -> None
    | [ only ] -> Some only
    | comps ->
      let best = ref None in
      List.iteri
        (fun x (a : Plan.t) ->
          List.iteri
            (fun y (b : Plan.t) ->
              if y > x then begin
                let card = a.Plan.card *. b.Plan.card in
                match !best with
                | Some (bcard, _, _) when bcard <= card -> ()
                | Some _ | None -> best := Some (card, a, b)
              end)
            comps)
        comps;
      (match !best with
      | None -> None
      | Some (_, a, b) ->
        let preds = Query_block.crossing_preds block a.Plan.tables b.Plan.tables in
        let joined = merge a b preds in
        collapse (joined :: List.filter (fun c -> c != a && c != b) comps))
  in
  collapse (Array.to_list comps |> List.filter_map Fun.id)

let optimize ?(seed = 0) ?(restarts = 0) env block =
  let params = Cost_model.params env in
  let n = Query_block.n_quantifiers block in
  let joins = ref 0 in
  let plan, elapsed =
    Timer.time (fun () ->
        if n = 0 then None
        else begin
          let cc = card_context block in
          let edges = graph_edges cc block in
          let base = List.sort by_weight edges in
          let best = ref (attempt env params cc block base joins) in
          let rng = Rng.create seed in
          for _ = 1 to restarts do
            (* Multiplicative jitter in [0.5, 1.5): reorders near-ties
               without letting a huge join masquerade as a small one. *)
            let perturbed =
              List.map (fun (i, j, w) -> (i, j, w *. (0.5 +. Rng.float rng 1.0))) edges
            in
            let candidate =
              attempt env params cc block (List.sort by_weight perturbed) joins
            in
            match (!best, candidate) with
            | Some b, Some c -> if c.Plan.cost < b.Plan.cost then best := candidate
            | None, Some _ -> best := candidate
            | _, None -> ()
          done;
          !best
        end)
  in
  {
    st_plan = plan;
    st_elapsed = elapsed;
    st_edges = edge_count block;
    st_restarts = restarts;
    st_joins = !joins;
  }
