lib/util/tablefmt.ml: Format List Printf String
