(* Colref, Pred, Quantifier, Query_block. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let cr = Helpers.cr

let colref_tests =
  [
    t "equal / compare" (fun () ->
        Alcotest.(check bool) "equal" true (O.Colref.equal (cr 1 "a") (cr 1 "a"));
        Alcotest.(check bool) "diff col" false (O.Colref.equal (cr 1 "a") (cr 1 "b"));
        Alcotest.(check bool) "ordered by quantifier first" true
          (O.Colref.compare (cr 0 "z") (cr 1 "a") < 0));
    t "list helpers" (fun () ->
        Alcotest.(check bool) "mem" true (O.Colref.list_mem (cr 0 "a") [ cr 1 "b"; cr 0 "a" ]);
        Alcotest.(check bool) "list_equal" true
          (O.Colref.list_equal [ cr 0 "a"; cr 1 "b" ] [ cr 0 "a"; cr 1 "b" ]);
        Alcotest.(check bool) "length mismatch" false (O.Colref.list_equal [ cr 0 "a" ] []));
    t "pp" (fun () ->
        Alcotest.(check string) "format" "Q2.x" (Format.asprintf "%a" O.Colref.pp (cr 2 "x")));
  ]

let pred_tests =
  [
    t "tables of predicates" (fun () ->
        Alcotest.(check bool) "join" true
          (Bitset.equal (O.Pred.tables (O.Pred.Eq_join (cr 0 "a", cr 2 "b"))) (Helpers.set [ 0; 2 ]));
        Alcotest.(check bool) "local" true
          (Bitset.equal (O.Pred.tables (O.Pred.Local_in (cr 1 "a", 3))) (Helpers.set [ 1 ])));
    t "is_join only for cross-quantifier equality" (fun () ->
        Alcotest.(check bool) "join" true (O.Pred.is_join (O.Pred.Eq_join (cr 0 "a", cr 1 "b")));
        Alcotest.(check bool) "self-join pred is local" false
          (O.Pred.is_join (O.Pred.Eq_join (cr 0 "a", cr 0 "b")));
        Alcotest.(check bool) "cmp" false
          (O.Pred.is_join (O.Pred.Local_cmp (cr 0 "a", O.Pred.Lt, 1.0))));
    t "crosses" (fun () ->
        let p = O.Pred.Eq_join (cr 0 "a", cr 2 "b") in
        Alcotest.(check bool) "crosses" true (O.Pred.crosses p (Helpers.set [ 0 ]) (Helpers.set [ 2 ]));
        Alcotest.(check bool) "swapped" true (O.Pred.crosses p (Helpers.set [ 2 ]) (Helpers.set [ 0; 1 ]));
        Alcotest.(check bool) "same side" false
          (O.Pred.crosses p (Helpers.set [ 0; 2 ]) (Helpers.set [ 1 ])));
    t "applicable_within" (fun () ->
        let p = O.Pred.Eq_join (cr 0 "a", cr 2 "b") in
        Alcotest.(check bool) "inside" true (O.Pred.applicable_within p (Helpers.set [ 0; 1; 2 ]));
        Alcotest.(check bool) "outside" false (O.Pred.applicable_within p (Helpers.set [ 0; 1 ])));
    t "join_cols" (fun () ->
        Alcotest.(check bool) "some" true
          (O.Pred.join_cols (O.Pred.Eq_join (cr 0 "a", cr 1 "b")) <> None);
        Alcotest.(check bool) "none for local" true
          (O.Pred.join_cols (O.Pred.Local_in (cr 0 "a", 2)) = None));
  ]

let block_tests =
  [
    t "validation rejects unknown quantifier" (fun () ->
        try
          ignore
            (O.Query_block.make ~name:"bad"
               ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:1.0 "x") ]
               ~preds:[ O.Pred.Eq_join (cr 0 "j1", cr 5 "j1") ]
               ());
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "validation rejects unknown column" (fun () ->
        try
          ignore
            (O.Query_block.make ~name:"bad"
               ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:1.0 "x") ]
               ~preds:[ O.Pred.Local_cmp (cr 0 "nope", O.Pred.Eq, 1.0) ]
               ());
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "validation rejects overlapping outer join sides" (fun () ->
        try
          ignore
            (O.Query_block.make ~name:"bad"
               ~quantifiers:
                 [
                   O.Quantifier.make 0 (Helpers.table ~rows:1.0 "x");
                   O.Quantifier.make 1 (Helpers.table ~rows:1.0 "y");
                 ]
               ~preds:[]
               ~outer_joins:
                 [ { O.Query_block.oj_preserved = Helpers.set [ 0; 1 ]; oj_null = Helpers.set [ 1 ] } ]
               ());
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "validation rejects self-dependency" (fun () ->
        try
          ignore
            (O.Query_block.make ~name:"bad"
               ~quantifiers:
                 [ O.Quantifier.make ~deps:(Helpers.set [ 0 ]) 0 (Helpers.table ~rows:1.0 "x") ]
               ~preds:[] ());
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "is_connected" (fun () ->
        Alcotest.(check bool) "chain" true (O.Query_block.is_connected (Helpers.chain 4));
        let disconnected =
          O.Query_block.make ~name:"disc"
            ~quantifiers:
              [
                O.Quantifier.make 0 (Helpers.table ~rows:1.0 "x");
                O.Quantifier.make 1 (Helpers.table ~rows:1.0 "y");
              ]
            ~preds:[] ()
        in
        Alcotest.(check bool) "no edges" false (O.Query_block.is_connected disconnected));
    t "join vs local pred split" (fun () ->
        let b = Helpers.chain ~extra:1 3 in
        Alcotest.(check int) "joins" 4 (List.length (O.Query_block.join_preds b));
        Alcotest.(check int) "locals" 0 (List.length (O.Query_block.local_preds b)));
    t "column resolves stats" (fun () ->
        let b = Helpers.chain 2 in
        let c = O.Query_block.column b (cr 1 "j2") in
        Alcotest.(check (float 0.0)) "distinct" 100.0 c.Qopt_catalog.Column.distinct);
    t "iter_blocks children first" (fun () ->
        let child = Helpers.chain 2 in
        let parent =
          O.Query_block.make ~name:"p" ~children:[ child ]
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:1.0 "x") ]
            ~preds:[] ()
        in
        let order = ref [] in
        O.Query_block.iter_blocks (fun b -> order := b.O.Query_block.name :: !order) parent;
        Alcotest.(check (list string)) "child first" [ "p"; "chain2" ] !order);
    t "total_quantifiers sums children" (fun () ->
        let child = Helpers.chain 2 in
        let parent =
          O.Query_block.make ~name:"p" ~children:[ child ]
            ~quantifiers:[ O.Quantifier.make 0 (Helpers.table ~rows:1.0 "x") ]
            ~preds:[] ()
        in
        Alcotest.(check int) "3 total" 3 (O.Query_block.total_quantifiers parent));
  ]

let join_method_tests =
  [
    t "Table 2 propagation classes" (fun () ->
        Alcotest.(check bool) "NLJN order full" true
          (O.Join_method.order_propagation O.Join_method.NLJN = O.Join_method.Full);
        Alcotest.(check bool) "MGJN order partial" true
          (O.Join_method.order_propagation O.Join_method.MGJN = O.Join_method.Partial);
        Alcotest.(check bool) "HSJN order none" true
          (O.Join_method.order_propagation O.Join_method.HSJN = O.Join_method.None_);
        List.iter
          (fun m ->
            Alcotest.(check bool) "partition full" true
              (O.Join_method.partition_propagation m = O.Join_method.Full))
          O.Join_method.all);
  ]

let suite = colref_tests @ pred_tests @ block_tests @ join_method_tests
