module C = Qopt_catalog
module O = Qopt_optimizer

let max_preds = 5

let batch_sizes = [ 6; 8; 10 ]

(* Secondary join columns j2..j5 have low, decreasing cardinalities; the
   correlation back-off keeps extra predicates from collapsing intermediate
   cardinalities below the Cartesian threshold. *)
let secondary_distinct = [| 0.0; 0.0; 200.0; 100.0; 50.0; 20.0 |]

let jcol k = Printf.sprintf "j%d" k

let make_table ~prefix ~partitioned ~fk_cols ~i rows =
  let name = Printf.sprintf "%s%d" prefix i in
  let cols =
    C.Column.make ~rows ~distinct:rows "pk"
    :: C.Column.make ~rows ~distinct:rows "j1"
    :: List.init 4 (fun k ->
           C.Column.make ~rows ~distinct:secondary_distinct.(k + 2) (jcol (k + 2)))
    @ [
        C.Column.make ~rows ~distinct:1000.0 "v1";
        C.Column.make ~rows ~distinct:10.0 "v2";
      ]
    @ fk_cols
  in
  let partition =
    if not partitioned then None
    else if i mod 2 = 0 then Some (C.Partition_spec.hash [ "j1" ])
    else Some (C.Partition_spec.hash [ "v1" ])
  in
  let indexes =
    if i mod 2 = 0 then
      [ C.Index.make ~name:(name ^ "_j1") [ "j1" ];
        C.Index.make ~name:(name ^ "_j2j1") [ "j2"; "j1" ] ]
    else []
  in
  C.Table.make ~rows ~name ~primary_key:[ "pk" ] ~indexes ?partition cols

let linear_block ~tables ~n ~npred name =
  let quantifiers = List.mapi (fun i t -> O.Quantifier.make i t) tables in
  let preds =
    List.concat
      (List.init (n - 1) (fun i ->
           List.init npred (fun k ->
               let col = if k = 0 then "j1" else jcol (k + 1) in
               O.Pred.Eq_join (O.Colref.make i col, O.Colref.make (i + 1) col))))
    @ [
        (* One local filter at each end of the chain. *)
        O.Pred.Local_cmp (O.Colref.make 0 "v2", O.Pred.Eq, 3.0);
        O.Pred.Local_cmp (O.Colref.make (n - 1) "v1", O.Pred.Le, 500.0);
      ]
  in
  O.Query_block.make ~name
    ~order_by:[ O.Colref.make 0 "v1" ]
    ~group_by:[ O.Colref.make 0 "j2"; O.Colref.make 1 "v1" ]
    ~quantifiers ~preds ()

let linear ~partitioned =
  let queries =
    List.concat_map
      (fun n ->
        let tables =
          List.init n (fun i ->
              make_table ~prefix:(Printf.sprintf "l%d_t" n) ~partitioned
                ~fk_cols:[] ~i
                (10_000.0 *. float_of_int (1 + i)))
        in
        List.init max_preds (fun p ->
            let npred = p + 1 in
            let name = Printf.sprintf "lin_%d_p%d" n npred in
            Workload.query name (linear_block ~tables ~n ~npred name)))
      batch_sizes
  in
  let schema =
    C.Schema.of_tables
      (List.concat_map
         (fun n ->
           List.init n (fun i ->
               make_table ~prefix:(Printf.sprintf "l%d_t" n) ~partitioned
                 ~fk_cols:[] ~i
                 (10_000.0 *. float_of_int (1 + i))))
         batch_sizes)
  in
  Workload.make ~name:"linear" ~schema queries

let star_tables ~partitioned n =
  let sat_rows i = 5_000.0 *. float_of_int (1 + i) in
  let center_fks =
    List.init (n - 1) (fun i ->
        C.Column.make ~rows:500_000.0 ~distinct:(sat_rows i)
          (Printf.sprintf "f%d" (i + 1)))
  in
  let center =
    make_table ~prefix:(Printf.sprintf "s%d_c" n) ~partitioned ~fk_cols:center_fks
      ~i:0 500_000.0
  in
  let sats =
    List.init (n - 1) (fun i ->
        make_table ~prefix:(Printf.sprintf "s%d_d" n) ~partitioned ~fk_cols:[]
          ~i:(i + 1) (sat_rows i))
  in
  center :: sats

let star_block ~tables ~n ~npred name =
  let quantifiers = List.mapi (fun i t -> O.Quantifier.make i t) tables in
  let preds =
    List.concat
      (List.init (n - 1) (fun i ->
           let sat = i + 1 in
           O.Pred.Eq_join
             (O.Colref.make 0 (Printf.sprintf "f%d" sat), O.Colref.make sat "j1")
           :: List.init (npred - 1) (fun k ->
                  let col = jcol (k + 2) in
                  O.Pred.Eq_join (O.Colref.make 0 col, O.Colref.make sat col))))
    @ [ O.Pred.Local_cmp (O.Colref.make 0 "v2", O.Pred.Eq, 5.0) ]
  in
  O.Query_block.make ~name
    ~order_by:[ O.Colref.make 0 "v1" ]
    ~group_by:[ O.Colref.make 0 "j2"; O.Colref.make 0 "f1" ]
    ~quantifiers ~preds ()

let star ~partitioned =
  let queries =
    List.concat_map
      (fun n ->
        let tables = star_tables ~partitioned n in
        List.init max_preds (fun p ->
            let npred = p + 1 in
            let name = Printf.sprintf "star_%d_p%d" n npred in
            Workload.query name (star_block ~tables ~n ~npred name)))
      batch_sizes
  in
  let schema =
    C.Schema.of_tables (List.concat_map (star_tables ~partitioned) batch_sizes)
  in
  Workload.make ~name:"star" ~schema queries

let cycle_block ~tables ~n ~npred name =
  let quantifiers = List.mapi (fun i t -> O.Quantifier.make i t) tables in
  let chain =
    List.concat
      (List.init (n - 1) (fun i ->
           List.init npred (fun k ->
               let col = if k = 0 then "j1" else jcol (k + 1) in
               O.Pred.Eq_join (O.Colref.make i col, O.Colref.make (i + 1) col))))
  in
  let closing = O.Pred.Eq_join (O.Colref.make 0 "j3", O.Colref.make (n - 1) "j3") in
  O.Query_block.make ~name
    ~order_by:[ O.Colref.make 0 "v1" ]
    ~quantifiers
    ~preds:(closing :: chain)
    ()

let cycle ~partitioned =
  let mk n npred =
    let tables =
      List.init n (fun i ->
          make_table ~prefix:(Printf.sprintf "c%d_t" n) ~partitioned ~fk_cols:[]
            ~i
            (8_000.0 *. float_of_int (1 + i)))
    in
    let name = Printf.sprintf "cyc_%d_p%d" n npred in
    Workload.query name (cycle_block ~tables ~n ~npred name)
  in
  let queries = List.concat_map (fun n -> [ mk n 1; mk n 2 ]) batch_sizes in
  let schema =
    C.Schema.of_tables
      (List.concat_map
         (fun n ->
           List.init n (fun i ->
               make_table ~prefix:(Printf.sprintf "c%d_t" n) ~partitioned
                 ~fk_cols:[] ~i
                 (8_000.0 *. float_of_int (1 + i))))
         batch_sizes)
  in
  Workload.make ~name:"cycle" ~schema queries

let calibration ~partitioned =
  let sizes = [ 5; 7; 9 ] in
  let queries =
    List.concat_map
      (fun n ->
        let lin_tables =
          List.init n (fun i ->
              make_table ~prefix:(Printf.sprintf "kl%d_t" n) ~partitioned
                ~fk_cols:[] ~i
                (12_000.0 *. float_of_int (1 + i)))
        in
        let star_tabs = star_tables ~partitioned n in
        List.map
          (fun npred ->
            let name = Printf.sprintf "cal_lin_%d_p%d" n npred in
            Workload.query name (linear_block ~tables:lin_tables ~n ~npred name))
          [ 1; 3; 5 ]
        @ List.map
            (fun npred ->
              let name = Printf.sprintf "cal_star_%d_p%d" n npred in
              Workload.query name (star_block ~tables:star_tabs ~n ~npred name))
            [ 2; 4 ]
        @ [
            (let name = Printf.sprintf "cal_cyc_%d" n in
             let tables =
               List.init n (fun i ->
                   make_table ~prefix:(Printf.sprintf "kc%d_t" n) ~partitioned
                     ~fk_cols:[] ~i
                     (9_000.0 *. float_of_int (1 + i)))
             in
             Workload.query name (cycle_block ~tables ~n ~npred:2 name));
          ])
      sizes
  in
  let schema = C.Schema.empty in
  Workload.make ~name:"calibration" ~schema queries
