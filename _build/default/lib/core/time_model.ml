module O = Qopt_optimizer

type t = {
  c_nljn : float;
  c_mgjn : float;
  c_hsjn : float;
  c_join : float;
}

let make ?(c_join = 0.0) ~c_nljn ~c_mgjn ~c_hsjn () =
  { c_nljn; c_mgjn; c_hsjn; c_join }

let joins_only c_join = { c_nljn = 0.0; c_mgjn = 0.0; c_hsjn = 0.0; c_join }

let predict_counts t ~nljn ~mgjn ~hsjn ~joins =
  (t.c_nljn *. nljn) +. (t.c_mgjn *. mgjn) +. (t.c_hsjn *. hsjn)
  +. (t.c_join *. joins)

let predict t (e : Estimator.estimate) =
  predict_counts t
    ~nljn:(float_of_int e.Estimator.nljn)
    ~mgjn:(float_of_int e.Estimator.mgjn)
    ~hsjn:(float_of_int e.Estimator.hsjn)
    ~joins:(float_of_int e.Estimator.joins)

let ratios t =
  let nonzero = List.filter (fun c -> c > 0.0) [ t.c_mgjn; t.c_nljn; t.c_hsjn ] in
  let base = match nonzero with [] -> 1.0 | l -> List.fold_left Float.min infinity l in
  (t.c_mgjn /. base, t.c_nljn /. base, t.c_hsjn /. base)

let pp ppf t =
  let m, n, h = ratios t in
  Format.fprintf ppf
    "Cm=%.3gus Cn=%.3gus Ch=%.3gus Cj=%.3gus (Cm:Cn:Ch = %.1f:%.1f:%.1f)"
    (t.c_mgjn *. 1e6) (t.c_nljn *. 1e6) (t.c_hsjn *. 1e6) (t.c_join *. 1e6) m n h
