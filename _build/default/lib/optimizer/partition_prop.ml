module Bitset = Qopt_util.Bitset
module Spec = Qopt_catalog.Partition_spec

type kind =
  | Hash
  | Range

type t = {
  keys : Colref.t list;
  kind : kind;
}

let hash keys =
  if keys = [] then invalid_arg "Partition_prop.hash: empty keys";
  { keys; kind = Hash }

let range keys =
  if keys = [] then invalid_arg "Partition_prop.range: empty keys";
  { keys; kind = Range }

let of_spec ~q (spec : Spec.t) =
  let keys = List.map (fun col -> Colref.make q col) spec.Spec.keys in
  match spec.Spec.kind with
  | Spec.Hash -> hash keys
  | Spec.Range -> range keys

let canonical equiv t =
  let keys = Equiv.normalize_cols equiv t.keys in
  match t.kind with
  | Hash -> List.sort Colref.compare keys
  | Range -> keys

let equal_under equiv a b =
  (match (a.kind, b.kind) with
  | Hash, Hash | Range, Range -> true
  | Hash, Range | Range, Hash -> false)
  && Colref.list_equal (canonical equiv a) (canonical equiv b)

let applicable ~tables t =
  List.for_all (fun (c : Colref.t) -> Bitset.mem c.Colref.q tables) t.keys

let keyed_on equiv t col =
  List.exists (fun k -> Equiv.same equiv k col) t.keys

let insert_dedup equiv t list =
  if List.exists (fun x -> equal_under equiv x t) list then list else list @ [ t ]

let pp ppf t =
  Format.fprintf ppf "%s(%s)"
    (match t.kind with Hash -> "hash" | Range -> "range")
    (String.concat "," (List.map (Format.asprintf "%a" Colref.pp) t.keys))
