(* Reference plan generation: the pre-flattening Plan_gen kept verbatim
   (minus metrics) against [Ref_memo], as the differential-testing oracle
   for the interned hot path.  Every [gen_direction] re-materializes
   [Ref_memo.plans] per join method, recomputes [partition_groups] twice
   per direction with structural [Partition_prop.equal_under] comparisons,
   and lets the cost model recompute [row_width] per plan — the behaviour
   the flattened generator must reproduce plan-for-plan, cost-bit for
   cost-bit. *)

module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset
module Table = Qopt_catalog.Table
module Query_block = O.Query_block
module Quantifier = O.Quantifier
module Pred = O.Pred
module Equiv = O.Equiv
module Cardinality = O.Cardinality
module Interesting = O.Interesting
module Order_prop = O.Order_prop
module Partition_prop = O.Partition_prop
module Colref = O.Colref
module Plan = O.Plan
module Join_method = O.Join_method
module Env = O.Env
module Cost_model = O.Cost_model
module Instrument = O.Instrument
module Mat_view = O.Mat_view

(* The enumerator's event/consumer contract, typed against [Ref_memo]
   entries. *)
type join_event = {
  left : Ref_memo.entry;
  right : Ref_memo.entry;
  result : Ref_memo.entry;
  preds : Pred.t list;
  cartesian : bool;
  left_outer_ok : bool;
  right_outer_ok : bool;
}

type consumer = {
  on_entry : Ref_memo.entry -> unit;
  on_join : join_event -> unit;
}

type t = {
  env : Env.t;
  params : Cost_model.params;
  memo : Ref_memo.t;
  block : Query_block.t;
  instr : Instrument.t;
  views : Mat_view.t list;
  mutable mv_tests : int;
  mutable mv_matches : int;
}

let create ?(views = []) env memo instr =
  {
    env;
    params = Cost_model.params env;
    memo;
    block = Ref_memo.block memo;
    instr;
    views;
    mv_tests = 0;
    mv_matches = 0;
  }

let mv_tests t = t.mv_tests

let mv_matches t = t.mv_matches

let card_of t entry =
  Instrument.card t.instr (fun () ->
      Ref_memo.card_of t.memo Cardinality.Full entry)

(* ------------------------------------------------------------------ *)
(* Scan planning                                                       *)
(* ------------------------------------------------------------------ *)

let default_partition = O.Plan_gen.default_partition

let partition_groups equiv plans =
  let same_part a b =
    match (a, b) with
    | None, None -> true
    | Some a, Some b -> Partition_prop.equal_under equiv a b
    | None, Some _ | Some _, None -> false
  in
  List.fold_left
    (fun groups (p : Plan.t) ->
      let rec place acc = function
        | [] -> List.rev ((p.Plan.partition, p) :: acc)
        | ((part, best) as g) :: rest ->
          if same_part part p.Plan.partition then
            if p.Plan.cost < best.Plan.cost then
              List.rev_append acc ((part, p) :: rest)
            else List.rev_append acc (g :: rest)
          else place (g :: acc) rest
      in
      place [] groups)
    [] plans

let scan_plans t (entry : Ref_memo.entry) =
  let q = Bitset.min_elt entry.Ref_memo.tables in
  let table = (Query_block.quantifier t.block q).Quantifier.table in
  let card = Ref_memo.card_of t.memo Cardinality.Full entry in
  let partition = default_partition t.env t.block q in
  let base =
    {
      Plan.op = Plan.Seq_scan q;
      tables = entry.Ref_memo.tables;
      order = [];
      partition;
      card;
      cost = Cost_model.seq_scan t.params table;
    }
  in
  let sel = card /. Float.max 1.0 table.Table.row_count in
  let eager =
    List.map
      (fun (o : Order_prop.t) ->
        let cols = Order_prop.canonical Equiv.empty o in
        let col_names = List.map (fun (c : Colref.t) -> c.Colref.col) cols in
        match Table.index_providing table col_names with
        | Some idx ->
          {
            Plan.op = Plan.Index_scan (q, idx);
            tables = entry.Ref_memo.tables;
            order = List.map (fun col -> Colref.make q col) idx.Qopt_catalog.Index.columns;
            partition;
            card;
            cost = Cost_model.index_scan t.params table ~sel;
          }
        | None ->
          {
            Plan.op = Plan.Sort base;
            tables = entry.Ref_memo.tables;
            order = cols;
            partition;
            card;
            cost =
              base.Plan.cost
              +. Cost_model.sort t.params ~rows:card
                   ~width:(float_of_int (Table.row_width table));
          })
      (Interesting.orders_for_table t.block q)
  in
  let filter_scans =
    List.map
      (fun (idx : Qopt_catalog.Index.t) ->
        {
          Plan.op = Plan.Index_scan (q, idx);
          tables = entry.Ref_memo.tables;
          order = List.map (fun col -> Colref.make q col) idx.Qopt_catalog.Index.columns;
          partition;
          card;
          cost = Cost_model.index_scan t.params table ~sel;
        })
      (Interesting.filter_indexes t.block q)
  in
  let plans = (base :: eager) @ filter_scans in
  (Ref_memo.stats t.memo).Ref_memo.scan_plans <-
    (Ref_memo.stats t.memo).Ref_memo.scan_plans + List.length plans;
  Instrument.save t.instr (fun () ->
      List.iter (Ref_memo.insert_plan t.memo entry) plans)

(* ------------------------------------------------------------------ *)
(* Join planning                                                       *)
(* ------------------------------------------------------------------ *)

let parallel_adjust t equiv ~preds ~(outer : Plan.t) ~(inner : Plan.t) =
  if not (Env.is_parallel t.env) then (None, 0.0)
  else begin
    let join_col =
      List.find_map
        (fun p -> match Pred.join_cols p with Some (l, _) -> Some l | None -> None)
        preds
    in
    let keyed plan =
      match (plan.Plan.partition, join_col) with
      | Some part, Some jc -> Partition_prop.keyed_on equiv part jc
      | Some _, None | None, _ -> false
    in
    let inner_width = Cost_model.row_width t.block inner.Plan.tables in
    let transfer =
      if keyed outer && keyed inner then 0.0
      else if keyed outer then
        Cost_model.repartition t.params ~rows:inner.Plan.card ~width:inner_width
      else
        Cost_model.broadcast t.params ~rows:inner.Plan.card ~width:inner_width
    in
    (outer.Plan.partition, transfer)
  end

let join_plan t equiv ~ctx ?(probe = None) ~method_ ~(outer : Plan.t)
    ~(inner : Plan.t) ~preds ~out_card ~order ~sort_outer ~sort_inner () =
  let partition, transfer = parallel_adjust t equiv ~preds ~outer ~inner in
  let cost =
    match method_ with
    | Join_method.NLJN ->
      Cost_model.nljn t.params t.block ~ctx ~probe ~outer ~inner ~out_card ()
    | Join_method.MGJN ->
      Cost_model.mgjn t.params t.block ~ctx ~outer ~inner ~out_card ~sort_outer
        ~sort_inner ()
    | Join_method.HSJN ->
      Cost_model.hsjn t.params t.block ~ctx ~outer ~inner ~out_card ()
  in
  {
    Plan.op = Plan.Join (method_, outer, inner, preds);
    tables = Bitset.union outer.Plan.tables inner.Plan.tables;
    order;
    partition;
    card = out_card;
    cost = cost +. transfer;
  }

let repart_heuristic_triggers t equiv ~preds ~(x : Ref_memo.entry)
    ~(y : Ref_memo.entry) =
  Env.is_parallel t.env && preds <> []
  &&
  let join_cols =
    List.concat_map
      (fun p ->
        match Pred.join_cols p with Some (l, r) -> [ l; r ] | None -> [])
      preds
  in
  let keyed (plan : Plan.t) =
    match plan.Plan.partition with
    | None -> false
    | Some part -> List.exists (Partition_prop.keyed_on equiv part) join_cols
  in
  not
    (List.exists keyed (Ref_memo.plans x)
    || List.exists keyed (Ref_memo.plans y))

let repart_variant t equiv ~ctx ~method_ ~(x : Ref_memo.entry)
    ~(y : Ref_memo.entry) ~preds ~out_card ~merge_cols =
  match (Ref_memo.best_plan x, Ref_memo.best_plan y) with
  | Some bx, Some by ->
    let jc =
      List.find_map
        (fun p -> match Pred.join_cols p with Some (l, _) -> Some l | None -> None)
        preds
    in
    Option.map
      (fun jc ->
        let part = Partition_prop.hash [ Equiv.repr equiv jc ] in
        let wx = Cost_model.row_width t.block bx.Plan.tables in
        let wy = Cost_model.row_width t.block by.Plan.tables in
        let transfer =
          Cost_model.repartition t.params ~rows:bx.Plan.card ~width:wx
          +. Cost_model.repartition t.params ~rows:by.Plan.card ~width:wy
        in
        let order, sort_flags =
          match method_ with
          | Join_method.MGJN -> (merge_cols, (true, true))
          | Join_method.NLJN | Join_method.HSJN -> ([], (false, false))
        in
        let sort_outer, sort_inner = sort_flags in
        let base =
          join_plan t equiv ~ctx ~method_ ~outer:bx ~inner:by ~preds ~out_card
            ~order ~sort_outer ~sort_inner ()
        in
        { base with Plan.partition = Some part; cost = base.Plan.cost +. transfer })
      jc
  | None, _ | _, None -> None

let gen_direction t event ~(x : Ref_memo.entry) ~(y : Ref_memo.entry) =
  let j = event.result in
  let equiv = Ref_memo.equiv_of t.memo j in
  let preds = event.preds in
  let out_card = Ref_memo.card_of t.memo Cardinality.Full j in
  let stats = Ref_memo.stats t.memo in
  let repart = repart_heuristic_triggers t equiv ~preds ~x ~y in
  match Ref_memo.best_plan y with
  | None -> []
  | Some inner_best ->
    let ctx =
      Cost_model.join_context t.params t.block ~preds
        ~inner_card:inner_best.Plan.card
    in
    let probe =
      Cost_model.inner_probe_cost t.params t.block ~preds
        ~inner_tables:y.Ref_memo.tables
    in
    let pipe_inner =
      if t.block.Query_block.first_n <> None && not (Plan.pipelinable inner_best)
      then Ref_memo.best_pipelinable_plan y
      else None
    in
    let nljn_plans =
      Instrument.nljn t.instr (fun () ->
          let base =
            List.concat_map
              (fun (po : Plan.t) ->
                join_plan t equiv ~ctx ~probe ~method_:Join_method.NLJN
                  ~outer:po ~inner:inner_best ~preds ~out_card
                  ~order:po.Plan.order ~sort_outer:false ~sort_inner:false ()
                :: (match pipe_inner with
                   | Some inner when Plan.pipelinable po ->
                     [
                       join_plan t equiv ~ctx ~probe ~method_:Join_method.NLJN
                         ~outer:po ~inner ~preds ~out_card ~order:po.Plan.order
                         ~sort_outer:false ~sort_inner:false ();
                     ]
                   | Some _ | None -> []))
              (Ref_memo.plans x)
          in
          let extra =
            if repart then
              Option.to_list
                (repart_variant t equiv ~ctx ~method_:Join_method.NLJN ~x ~y
                   ~preds ~out_card ~merge_cols:[])
            else []
          in
          base @ extra)
    in
    Ref_memo.counts_add stats.Ref_memo.generated Join_method.NLJN
      (List.length nljn_plans);
    let mgjn_plans =
      if preds = [] then []
      else
        Instrument.mgjn t.instr (fun () ->
            match Interesting.merge_order equiv preds with
            | None -> []
            | Some mo ->
              let mo_cols = Order_prop.canonical equiv mo in
              let inner_sorted = Ref_memo.best_plan_satisfying t.memo y mo in
              let inner, sort_inner =
                match inner_sorted with
                | Some p -> (p, false)
                | None -> (inner_best, true)
              in
              let covering =
                List.filter
                  (fun (po : Plan.t) ->
                    po.Plan.order <> []
                    && Order_prop.satisfied_by equiv mo po.Plan.order)
                  (Ref_memo.plans x)
              in
              let natural =
                List.map
                  (fun (po : Plan.t) ->
                    join_plan t equiv ~ctx ~method_:Join_method.MGJN ~outer:po
                      ~inner ~preds ~out_card ~order:po.Plan.order
                      ~sort_outer:false ~sort_inner ())
                  covering
              in
              let enforced =
                List.filter_map
                  (fun (part, (cheapest : Plan.t)) ->
                    let covered =
                      List.exists
                        (fun (po : Plan.t) ->
                          match (part, po.Plan.partition) with
                          | None, None -> true
                          | Some a, Some b -> Partition_prop.equal_under equiv a b
                          | None, Some _ | Some _, None -> false)
                        covering
                    in
                    if covered then None
                    else
                      Some
                        (join_plan t equiv ~ctx ~method_:Join_method.MGJN
                           ~outer:cheapest ~inner ~preds ~out_card ~order:mo_cols
                           ~sort_outer:true ~sort_inner ()))
                  (partition_groups equiv (Ref_memo.plans x))
              in
              let extra =
                if repart then
                  Option.to_list
                    (repart_variant t equiv ~ctx ~method_:Join_method.MGJN ~x ~y
                       ~preds ~out_card ~merge_cols:mo_cols)
                else []
              in
              natural @ enforced @ extra)
    in
    Ref_memo.counts_add stats.Ref_memo.generated Join_method.MGJN
      (List.length mgjn_plans);
    let hsjn_plans =
      Instrument.hsjn t.instr (fun () ->
          let base =
            List.map
              (fun (_, (cheapest : Plan.t)) ->
                join_plan t equiv ~ctx ~method_:Join_method.HSJN ~outer:cheapest
                  ~inner:inner_best ~preds ~out_card ~order:[] ~sort_outer:false
                  ~sort_inner:false ())
              (partition_groups equiv (Ref_memo.plans x))
          in
          let extra =
            if repart then
              Option.to_list
                (repart_variant t equiv ~ctx ~method_:Join_method.HSJN ~x ~y
                   ~preds ~out_card ~merge_cols:[])
            else []
          in
          base @ extra)
    in
    Ref_memo.counts_add stats.Ref_memo.generated Join_method.HSJN
      (List.length hsjn_plans);
    nljn_plans @ mgjn_plans @ hsjn_plans

let on_join t (event : join_event) =
  let plans_lr =
    if event.left_outer_ok then gen_direction t event ~x:event.left ~y:event.right
    else []
  in
  let plans_rl =
    if event.right_outer_ok then
      gen_direction t event ~x:event.right ~y:event.left
    else []
  in
  Instrument.save t.instr (fun () ->
      List.iter (Ref_memo.insert_plan t.memo event.result) (plans_lr @ plans_rl))

let try_views t (entry : Ref_memo.entry) =
  if t.views <> [] then
    Instrument.mv t.instr (fun () ->
        List.iter
          (fun view ->
            t.mv_tests <- t.mv_tests + 1;
            if Mat_view.matches view t.block entry.Ref_memo.tables then begin
              t.mv_matches <- t.mv_matches + 1;
              let plan =
                {
                  Plan.op = Plan.Mv_scan view.Mat_view.mv_name;
                  tables = entry.Ref_memo.tables;
                  order = [];
                  partition =
                    (if Env.is_parallel t.env then
                       default_partition t.env t.block
                         (Bitset.min_elt entry.Ref_memo.tables)
                     else None);
                  card = Ref_memo.card_of t.memo Cardinality.Full entry;
                  cost = Mat_view.substitute_cost t.params view;
                }
              in
              Ref_memo.insert_plan t.memo entry plan
            end)
          t.views)

let on_entry t (entry : Ref_memo.entry) =
  if Bitset.cardinal entry.Ref_memo.tables = 1 then
    Instrument.scan t.instr (fun () -> scan_plans t entry);
  try_views t entry

let consumer t = { on_entry = on_entry t; on_join = on_join t }
