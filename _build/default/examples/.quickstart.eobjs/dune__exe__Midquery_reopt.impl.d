examples/midquery_reopt.ml: Cote Format List Qopt_optimizer Qopt_workloads
