module Bitset = Qopt_util.Bitset
module Table = Qopt_catalog.Table
module Column = Qopt_catalog.Column
module Histogram = Qopt_catalog.Histogram

type params = {
  io_page : float;
  cpu_tuple : float;
  cpu_cmp : float;
  cpu_hash : float;
  cpu_probe : float;
  buffer_pages : float;
  sort_mem_pages : float;
  net_tuple : float;
  nodes : int;
}

let params env =
  {
    io_page = 1.0;
    cpu_tuple = 0.01;
    cpu_cmp = 0.002;
    cpu_hash = 0.004;
    cpu_probe = 0.006;
    buffer_pages = 10_000.0;
    sort_mem_pages = 2_000.0;
    net_tuple = 0.02;
    nodes = Env.nodes env;
  }

let page_size = 4096.0

let pages_of ~rows ~width = Float.max 1.0 (rows *. width /. page_size)

let per_node p x = x /. float_of_int p.nodes

(* ------------------------------------------------------------------ *)
(* Per-join logical context (computed once per join, shared by plans)  *)
(* ------------------------------------------------------------------ *)

type join_ctx = {
  matches_per_outer : float;
  skew : float;
}

let join_context p block ~preds ~inner_card =
  let sel =
    List.fold_left
      (fun acc pr ->
        match Pred.join_cols pr with
        | None -> acc
        | Some (l, r) ->
          let cl = Query_block.column block l and cr = Query_block.column block r in
          acc *. Histogram.sel_join cl.Column.histogram cr.Column.histogram)
      1.0 preds
  in
  let skew =
    if p.nodes <= 1 then 1.0
    else
      match
        List.find_map
          (fun pr ->
            match Pred.join_cols pr with Some (l, _) -> Some l | None -> None)
          preds
      with
      | None -> 1.0
      | Some l ->
        let col = Query_block.column block l in
        let h = col.Column.histogram in
        let n = Histogram.bucket_count h in
        (* Probe the equality share at bucket boundaries as a proxy for the
           heaviest hash partition. *)
        let max_share = ref (1.0 /. float_of_int p.nodes) in
        for i = 0 to n - 1 do
          let v = float_of_int i *. (Histogram.distinct h /. float_of_int n) in
          let share = Histogram.sel_eq h v in
          if share > !max_share then max_share := share
        done;
        Float.min (float_of_int p.nodes) (!max_share *. float_of_int p.nodes)
  in
  { matches_per_outer = Float.max 1e-9 (sel *. inner_card); skew }

(* ------------------------------------------------------------------ *)
(* Detailed per-plan models                                            *)
(* ------------------------------------------------------------------ *)

(* Iterative buffer-pool model: the expected hit ratio of repeatedly probing
   [pages] hot pages through a pool of [buffer] pages, solved by fixpoint
   iteration (in the spirit of the Mackert-Lohman LRU approximations that
   commercial estimators evaluate per plan). *)
let buffer_hit_ratio p ~pages =
  let frac = p.buffer_pages /. Float.max 1.0 pages in
  let h = ref (Float.min 1.0 frac) in
  for _ = 1 to 224 do
    h := 1.0 -. exp (-.frac *. (0.5 +. (0.5 *. !h)))
  done;
  Float.min 1.0 !h

(* Device model: integrate seek + rotational delay over the access pattern —
   a per-plan evaluation standing in for the "sophisticated disk drive"
   modelling the paper credits for cost-model weight. *)
let device_io_time p ~pages ~random_frac =
  let segments = 160 in
  let total = ref 0.0 in
  for i = 1 to segments do
    let x = float_of_int i /. float_of_int segments in
    let seek = 0.3 +. (0.7 *. (1.0 -. exp (-3.0 *. x *. random_frac))) in
    total := !total +. (seek /. float_of_int segments)
  done;
  pages *. p.io_page *. !total

(* Multi-pass external-merge simulation: walk the passes explicitly, with a
   diminishing merge fan-in as runs lengthen. *)
let sort_io p ~pages =
  if pages <= p.sort_mem_pages then 0.0
  else begin
    let io = ref 0.0 in
    let remaining = ref pages in
    let fan_in = ref 16.0 in
    while !remaining > p.sort_mem_pages do
      io := !io +. (2.0 *. pages *. p.io_page);
      remaining := !remaining /. Float.max 2.0 !fan_in;
      fan_in := Float.max 2.0 (!fan_in *. 0.75)
    done;
    !io
  end

let sort p ~rows ~width =
  let rows = Float.max 1.0 rows in
  let n = per_node p rows in
  let cpu = n *. log (n +. 2.0) /. log 2.0 *. p.cpu_cmp in
  let pages = pages_of ~rows:n ~width in
  cpu +. sort_io p ~pages

let row_width block tables =
  Bitset.fold
    (fun q acc ->
      let t = (Query_block.quantifier block q).Quantifier.table in
      acc +. float_of_int (Table.row_width t))
    tables 16.0

(* Hash-partition model: size the hash table, walk the (up to 16) build
   partitions and accumulate the spill fraction of each. *)
let hash_build_model p ~rows ~width =
  let build_pages = pages_of ~rows ~width in
  let partitions = 32 in
  let per_part = build_pages /. float_of_int partitions in
  let spill = ref 0.0 in
  for i = 1 to partitions do
    (* Skewed partition sizes: geometric-ish decay around the mean. *)
    let factor = 1.0 +. (0.6 *. exp (-0.35 *. float_of_int i)) in
    let pages_i = per_part *. factor in
    if pages_i > p.sort_mem_pages /. float_of_int partitions then
      spill := !spill +. (2.0 *. pages_i *. p.io_page)
  done;
  let bucket_cpu = rows *. p.cpu_hash in
  !spill +. bucket_cpu

(* Common per-plan work: output width and projection cost — evaluated per
   plan because the output schema is plan-specific.  The width is either
   handed down by the caller (the generator memoizes it per MEMO entry) or
   derived from the table set. *)
let output_cost p ~width ~out_card =
  per_node p (out_card *. p.cpu_tuple *. (0.5 +. (width /. 256.0)))

let width_or block tables = function
  | Some w -> w
  | None -> row_width block tables

let table_pages (table : Table.t) = table.Table.page_count

let inner_probe_cost p block ~preds ~inner_tables =
  if Bitset.cardinal inner_tables <> 1 then None
  else begin
    let q = Bitset.min_elt inner_tables in
    let table = (Query_block.quantifier block q).Quantifier.table in
    let join_col =
      List.find_map
        (fun pr ->
          match Pred.join_cols pr with
          | Some (l, r) ->
            if l.Colref.q = q then Some l.Colref.col
            else if r.Colref.q = q then Some r.Colref.col
            else None
          | None -> None)
        preds
    in
    match join_col with
    | None -> None
    | Some col ->
      if Table.index_providing table [ col ] <> None then
        let hit =
          buffer_hit_ratio p ~pages:(Float.max 1.0 (table_pages table *. 0.05))
        in
        Some ((2.0 *. p.io_page *. (1.0 -. hit)) +. (3.0 *. p.cpu_probe))
      else None
  end

let nljn p block ~ctx ~probe ?width_outer ?width_inner ?width_out ~outer ~inner
    ~out_card () =
  let open Plan in
  let inner_width = width_or block inner.tables width_inner in
  let inner_pages = pages_of ~rows:inner.card ~width:inner_width in
  let hit = buffer_hit_ratio p ~pages:inner_pages in
  let reread = device_io_time p ~pages:inner_pages ~random_frac:(1.0 -. hit) in
  (* Block nested loops over a materialized inner: the inner is re-read once
     per outer *block*, not per outer row. *)
  let outer_pages =
    pages_of ~rows:(per_node p outer.card)
      ~width:(width_or block outer.tables width_outer)
  in
  let rescans =
    Float.max 0.0 (ceil (outer_pages /. (p.buffer_pages *. 0.5)) -. 1.0)
  in
  let rescan_cost = rescans *. ((inner.cost *. 0.3) +. reread) *. (1.0 -. hit) in
  (* The inner is either block-rescanned or index-probed per outer row,
     whichever the access paths make cheaper. *)
  let inner_access =
    let scan_strategy = inner.cost +. rescan_cost in
    match probe with
    | None -> scan_strategy
    | Some per_probe ->
      Float.min scan_strategy (per_node p (outer.card *. per_probe) +. (3.0 *. p.io_page))
  in
  let probe_cpu =
    per_node p (outer.card *. (p.cpu_probe +. (ctx.matches_per_outer *. p.cpu_tuple *. 0.05)))
  in
  (outer.cost +. inner_access +. probe_cpu
  +. output_cost p
       ~width:
         (width_or block (Bitset.union outer.tables inner.tables) width_out)
       ~out_card)
  *. ctx.skew

let mgjn p block ~ctx ?width_outer ?width_inner ?width_out ~outer ~inner
    ~out_card ~sort_outer ~sort_inner () =
  let open Plan in
  let width_o = width_or block outer.tables width_outer in
  let width_i = width_or block inner.tables width_inner in
  (* The sort model is evaluated for both inputs even when an input arrives
     sorted: the optimizer compares enforced vs natural access anyway. *)
  let sort_o = sort p ~rows:outer.card ~width:width_o in
  let sort_i = sort p ~rows:inner.card ~width:width_i in
  let sort_cost =
    (if sort_outer then sort_o else 0.0) +. if sort_inner then sort_i else 0.0
  in
  let pages_o = pages_of ~rows:outer.card ~width:width_o in
  let pages_i = pages_of ~rows:inner.card ~width:width_i in
  let hit_o = buffer_hit_ratio p ~pages:pages_o in
  let hit_i = buffer_hit_ratio p ~pages:pages_i in
  let stream_io =
    device_io_time p ~pages:pages_o ~random_frac:(1.0 -. hit_o)
    +. device_io_time p ~pages:pages_i ~random_frac:(1.0 -. hit_i)
  in
  let merge_cpu =
    per_node p
      ((outer.card +. inner.card) *. p.cpu_cmp *. (2.0 -. ((hit_o +. hit_i) /. 2.0))
      +. (outer.card *. ctx.matches_per_outer *. p.cpu_tuple *. 0.1))
  in
  (outer.cost +. inner.cost +. sort_cost +. merge_cpu +. (stream_io *. 0.05)
  +. output_cost p
       ~width:
         (width_or block (Bitset.union outer.tables inner.tables) width_out)
       ~out_card)
  *. ctx.skew

let hsjn p block ~ctx ?width_inner ?width_out ~outer ~inner ~out_card () =
  let open Plan in
  let width_i = width_or block inner.tables width_inner in
  let build = hash_build_model p ~rows:(per_node p inner.card) ~width:width_i in
  let pages_i = pages_of ~rows:inner.card ~width:width_i in
  let hit = buffer_hit_ratio p ~pages:pages_i in
  let probe_io = device_io_time p ~pages:pages_i ~random_frac:(1.0 -. hit) in
  let probe_cpu =
    per_node p
      (outer.card *. (p.cpu_probe *. (1.5 -. (0.5 *. hit))
                     +. (ctx.matches_per_outer *. p.cpu_tuple *. 0.05)))
  in
  (outer.cost +. inner.cost +. build +. probe_cpu +. (probe_io *. 0.02)
  +. output_cost p
       ~width:
         (width_or block (Bitset.union outer.tables inner.tables) width_out)
       ~out_card)
  *. ctx.skew

let seq_scan p (t : Table.t) =
  per_node p ((t.Table.page_count *. p.io_page) +. (t.Table.row_count *. p.cpu_tuple))

let index_scan p (t : Table.t) ~sel =
  let matched = t.Table.row_count *. sel in
  let fetch_pages = Float.min t.Table.page_count matched in
  let hit = buffer_hit_ratio p ~pages:t.Table.page_count in
  per_node p
    ((3.0 *. p.io_page)
    +. (fetch_pages *. (1.0 -. hit) *. p.io_page)
    +. (matched *. p.cpu_tuple *. 1.5))

let repartition p ~rows ~width =
  let msg_cpu = rows *. p.net_tuple in
  let bytes_cost = rows *. width *. 1e-5 in
  per_node p (msg_cpu +. bytes_cost)

let broadcast p ~rows ~width =
  float_of_int p.nodes *. repartition p ~rows ~width
