(** Workloads: named sets of queries over a schema.

    Mirrors Section 5 of the paper: synthetic [linear] and [star] workloads
    (batches of 6/8/10 tables, 1-5 join predicates each), two "real
    customer"-style warehouse workloads ([real1_w], 8 queries; [real2_w],
    17 queries), a random workload produced by merging simpler queries, and
    TPC-H.  The [_s] / [_p] postfixes of the paper map to running a workload
    under {!Qopt_optimizer.Env.serial} or a parallel environment. *)

type query = {
  q_name : string;
  block : Qopt_optimizer.Query_block.t;
  sql : string option;  (** source text when the query was built from SQL *)
}

type t = {
  w_name : string;
  schema : Qopt_catalog.Schema.t;
  queries : query list;
}

val query : ?sql:string -> string -> Qopt_optimizer.Query_block.t -> query

val make : name:string -> schema:Qopt_catalog.Schema.t -> query list -> t

val find : t -> string -> query
(** Raises [Not_found]. *)

val size : t -> int
