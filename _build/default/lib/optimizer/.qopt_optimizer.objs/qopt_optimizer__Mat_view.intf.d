lib/optimizer/mat_view.mli: Cost_model Format Qopt_util Query_block
