(* Lexer, parser, pretty-printer and binder. *)

module Sql = Qopt_sql
module O = Qopt_optimizer
module C = Qopt_catalog
module Bitset = Qopt_util.Bitset

let t name f = Alcotest.test_case name `Quick f

let lexer_tests =
  [
    t "tokenizes keywords case-insensitively" (fun () ->
        match Sql.Lexer.tokenize "select FROM Where" with
        | [ Sql.Lexer.Kw "SELECT"; Kw "FROM"; Kw "WHERE"; Eof ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    t "identifiers lowercased" (fun () ->
        match Sql.Lexer.tokenize "Foo.BAR" with
        | [ Sql.Lexer.Ident "foo"; Dot; Ident "bar"; Eof ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    t "numbers and operators" (fun () ->
        match Sql.Lexer.tokenize "x >= 1.5" with
        | [ Sql.Lexer.Ident "x"; Op ">="; Number 1.5; Eof ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    t "string literals" (fun () ->
        match Sql.Lexer.tokenize "'CA'" with
        | [ Sql.Lexer.String "CA"; Eof ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    t "unterminated string raises" (fun () ->
        try
          ignore (Sql.Lexer.tokenize "'oops");
          Alcotest.fail "expected Lexer.Error"
        with Sql.Lexer.Error _ -> ());
    t "unexpected character raises" (fun () ->
        try
          ignore (Sql.Lexer.tokenize "a # b");
          Alcotest.fail "expected Lexer.Error"
        with Sql.Lexer.Error _ -> ());
  ]

let parses sql = Sql.Parser.parse sql

let parser_tests =
  [
    t "simple select" (fun () ->
        let s = parses "SELECT a FROM t WHERE a = 1" in
        Alcotest.(check int) "items" 1 (List.length s.Sql.Ast.sel_items);
        Alcotest.(check int) "from" 1 (List.length s.Sql.Ast.sel_from);
        Alcotest.(check int) "where" 1 (List.length s.Sql.Ast.sel_where));
    t "join clauses and aliases" (fun () ->
        let s = parses "SELECT * FROM t a JOIN u b ON a.x = b.y LEFT JOIN v ON b.z = v.w" in
        Alcotest.(check int) "joins" 2 (List.length s.Sql.Ast.sel_joins);
        match s.Sql.Ast.sel_joins with
        | [ j1; j2 ] ->
          Alcotest.(check bool) "inner" true (j1.Sql.Ast.j_kind = Sql.Ast.Inner);
          Alcotest.(check bool) "left" true (j2.Sql.Ast.j_kind = Sql.Ast.Left_outer)
        | _ -> Alcotest.fail "expected two joins");
    t "group by and order by" (fun () ->
        let s = parses "SELECT a, COUNT(*) FROM t GROUP BY a, b ORDER BY a" in
        Alcotest.(check int) "group" 2 (List.length s.Sql.Ast.sel_group_by);
        Alcotest.(check int) "order" 1 (List.length s.Sql.Ast.sel_order_by));
    t "in list" (fun () ->
        let s = parses "SELECT a FROM t WHERE a IN (1, 2, 3)" in
        match s.Sql.Ast.sel_where with
        | [ Sql.Ast.In_list (_, ls) ] -> Alcotest.(check int) "3 literals" 3 (List.length ls)
        | _ -> Alcotest.fail "expected In_list");
    t "exists subquery" (fun () ->
        let s = parses "SELECT a FROM t WHERE EXISTS (SELECT b FROM u WHERE u.b = t.a)" in
        match s.Sql.Ast.sel_where with
        | [ Sql.Ast.Exists sub ] -> Alcotest.(check int) "sub from" 1 (List.length sub.Sql.Ast.sel_from)
        | _ -> Alcotest.fail "expected Exists");
    t "in subquery" (fun () ->
        let s = parses "SELECT a FROM t WHERE a IN (SELECT b FROM u)" in
        match s.Sql.Ast.sel_where with
        | [ Sql.Ast.In_subquery _ ] -> ()
        | _ -> Alcotest.fail "expected In_subquery");
    t "column inequality comparison" (fun () ->
        let s = parses "SELECT a FROM t WHERE t.a < t.b" in
        match s.Sql.Ast.sel_where with
        | [ Sql.Ast.Cmp_cols (_, Sql.Ast.Lt, _) ] -> ()
        | _ -> Alcotest.fail "expected Cmp_cols Lt");
    t "aggregates" (fun () ->
        let s = parses "SELECT SUM(x), COUNT(*), MIN(t.y) FROM t" in
        Alcotest.(check int) "3 items" 3 (List.length s.Sql.Ast.sel_items));
    t "trailing input rejected" (fun () ->
        try
          ignore (parses "SELECT a FROM t garbage extra");
          Alcotest.fail "expected Parser.Error"
        with Sql.Parser.Error _ -> ());
    t "missing FROM rejected" (fun () ->
        try
          ignore (parses "SELECT a");
          Alcotest.fail "expected Parser.Error"
        with Sql.Parser.Error _ -> ());
    t "pretty-print round-trips" (fun () ->
        List.iter
          (fun sql ->
            let ast = parses sql in
            let printed = Sql.Ast.to_string ast in
            let reparsed = parses printed in
            Alcotest.(check string) ("round trip of " ^ sql) printed
              (Sql.Ast.to_string reparsed))
          [
            "SELECT a FROM t WHERE a = 1";
            "SELECT a, b FROM t u, v WHERE u.a = v.b AND u.c >= 10 GROUP BY a ORDER BY b";
            "SELECT * FROM t JOIN u ON t.a = u.b LEFT JOIN w ON u.c = w.d WHERE t.x IN (1, 2)";
            "SELECT COUNT(*) FROM t WHERE EXISTS (SELECT b FROM u WHERE u.b = t.a)";
          ]);
  ]

(* Binder fixtures: two tables with a foreign-key-ish link plus a shared
   column name to exercise ambiguity. *)
let schema =
  C.Schema.of_tables
    [
      C.Table.make ~rows:1000.0 ~name:"emp" ~primary_key:[ "id" ]
        [
          C.Column.make ~rows:1000.0 "id";
          C.Column.make ~rows:1000.0 ~distinct:50.0 "dept_id";
          C.Column.make ~rows:1000.0 ~distinct:100.0 "salary";
          C.Column.make ~rows:1000.0 ~distinct:900.0 "name";
        ];
      C.Table.make ~rows:50.0 ~name:"dept" ~primary_key:[ "id" ]
        [
          C.Column.make ~rows:50.0 "id";
          C.Column.make ~rows:50.0 ~distinct:50.0 "name";
          C.Column.make ~rows:50.0 ~distinct:5.0 "region";
        ];
    ]

let bind sql = Sql.Binder.parse_and_bind schema sql

let binder_tests =
  [
    t "binds qualified columns" (fun () ->
        let b = bind "SELECT e.salary FROM emp e, dept d WHERE e.dept_id = d.id" in
        Alcotest.(check int) "2 quantifiers" 2 (O.Query_block.n_quantifiers b);
        Alcotest.(check int) "1 pred" 1 (List.length b.O.Query_block.preds));
    t "binds unqualified unique column" (fun () ->
        let b = bind "SELECT salary FROM emp WHERE salary >= 100" in
        Alcotest.(check int) "1 pred" 1 (List.length b.O.Query_block.preds));
    t "ambiguous unqualified column rejected" (fun () ->
        try
          ignore (bind "SELECT name FROM emp, dept");
          Alcotest.fail "expected Binder.Error"
        with Sql.Binder.Error _ -> ());
    t "unknown table rejected" (fun () ->
        try
          ignore (bind "SELECT x FROM nosuch");
          Alcotest.fail "expected Binder.Error"
        with Sql.Binder.Error _ -> ());
    t "unknown column rejected" (fun () ->
        try
          ignore (bind "SELECT emp.bogus FROM emp");
          Alcotest.fail "expected Binder.Error"
        with Sql.Binder.Error _ -> ());
    t "left join becomes outer-join constraint" (fun () ->
        let b = bind "SELECT e.salary FROM emp e LEFT JOIN dept d ON e.dept_id = d.id" in
        match b.O.Query_block.outer_joins with
        | [ oj ] ->
          Alcotest.(check bool) "preserved = {0}" true
            (Bitset.equal oj.O.Query_block.oj_preserved (Bitset.singleton 0));
          Alcotest.(check bool) "null = {1}" true
            (Bitset.equal oj.O.Query_block.oj_null (Bitset.singleton 1))
        | _ -> Alcotest.fail "expected one outer join");
    t "exists becomes child block" (fun () ->
        let b =
          bind
            "SELECT e.salary FROM emp e WHERE EXISTS (SELECT d.id FROM dept d \
             WHERE d.id = e.dept_id)"
        in
        Alcotest.(check int) "1 child" 1 (List.length b.O.Query_block.children);
        (* The correlated predicate stays out of the child. *)
        let child = List.hd b.O.Query_block.children in
        Alcotest.(check int) "no preds in child" 0 (List.length child.O.Query_block.preds));
    t "IN-subquery blocks the outer role" (fun () ->
        let b =
          bind "SELECT e.salary FROM emp e WHERE e.dept_id IN (SELECT d.id FROM dept d)"
        in
        Alcotest.(check bool) "outer blocked" false
          (O.Query_block.quantifier b 0).O.Quantifier.outer_allowed);
    t "string literal mapped into domain" (fun () ->
        let b = bind "SELECT e.salary FROM emp e WHERE e.name = 'alice'" in
        match b.O.Query_block.preds with
        | [ O.Pred.Local_cmp (_, O.Pred.Eq, v) ] ->
          Alcotest.(check bool) "in domain" true (v >= 0.0 && v < 900.0)
        | _ -> Alcotest.fail "expected Local_cmp");
    t "non-equality column pair becomes filter" (fun () ->
        let b = bind "SELECT e.salary FROM emp e WHERE e.salary < e.id" in
        match b.O.Query_block.preds with
        | [ O.Pred.Expensive (ts, sel, _) ] ->
          Alcotest.(check bool) "tables = {0}" true (Bitset.equal ts (Bitset.singleton 0));
          Alcotest.(check bool) "sel" true (sel > 0.0 && sel < 1.0)
        | _ -> Alcotest.fail "expected Expensive filter");
    t "select list validated" (fun () ->
        try
          ignore (bind "SELECT emp.nothere FROM emp, dept WHERE emp.dept_id = dept.id");
          Alcotest.fail "expected Binder.Error"
        with Sql.Binder.Error _ -> ());
  ]

let suite = lexer_tests @ parser_tests @ binder_tests
