module Bitset = Qopt_util.Bitset
module Column = Qopt_catalog.Column
module Table = Qopt_catalog.Table
module Histogram = Qopt_catalog.Histogram

type mode =
  | Full
  | Simple

let column block c = Query_block.column block c

let local_selectivity mode block p =
  match p with
  | Pred.Eq_join _ -> 1.0
  | Pred.Expensive (_, sel, _) -> sel
  | Pred.Local_cmp (c, op, v) -> begin
    let col = column block c in
    match mode with
    | Full -> begin
      let h = col.Column.histogram in
      match op with
      | Pred.Eq -> Histogram.sel_eq h v
      | Pred.Lt -> Histogram.sel_lt h v
      | Pred.Le -> Histogram.sel_le h v
      | Pred.Gt -> Histogram.sel_gt h v
      | Pred.Ge -> Histogram.sel_ge h v
    end
    | Simple -> begin
      match op with
      | Pred.Eq -> 1.0 /. Float.max 1.0 col.Column.distinct
      | Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge ->
        (* A hedged default: many range predicates in practice are weakly
           selective, and a low default compounds badly over queries with
           dozens of local predicates. *)
        0.45
    end
  end
  | Pred.Local_in (c, n) ->
    let col = column block c in
    let frac = float_of_int n /. Float.max 1.0 col.Column.distinct in
    Float.min (match mode with Full -> 1.0 | Simple -> 0.5) frac

let join_selectivity mode block p =
  match Pred.join_cols p with
  | None -> 1.0
  | Some (l, r) -> begin
    let cl = column block l and cr = column block r in
    match mode with
    | Full ->
      let sel = Histogram.sel_join cl.Column.histogram cr.Column.histogram in
      (* Unique-key clamp: a join into a key column returns at most one match
         per probing row. *)
      let key_side_rows =
        let tl = (Query_block.quantifier block l.Colref.q).Quantifier.table in
        let tr = (Query_block.quantifier block r.Colref.q).Quantifier.table in
        let is_key (col : Column.t) (t : Table.t) =
          col.Column.distinct >= 0.95 *. t.Table.row_count
        in
        if is_key cr tr then Some tr.Table.row_count
        else if is_key cl tl then Some tl.Table.row_count
        else None
      in
      let sel =
        match key_side_rows with
        | Some rows -> Float.min sel (1.0 /. Float.max 1.0 rows)
        | None -> sel
      in
      Float.max 1e-12 sel
    | Simple ->
      1.0 /. Float.max 1.0 (Float.max cl.Column.distinct cr.Column.distinct)
  end

(* Correlation back-off: multiple join predicates between the same pair of
   quantifiers are rarely independent, so the i-th most selective predicate
   contributes sel^(1/2^i), as in several commercial estimators.  Both modes
   apply it — it is a predicate-level rule, not a key/FD adjustment — so the
   two models stay close enough that the card-1 Cartesian heuristic only
   occasionally disagrees between them (the paper's -2%..24% HSJN error). *)
let combined_join_selectivity mode block preds =
  match mode with
  | Simple | Full ->
    let module Pair_map = Map.Make (struct
      type t = int * int

      let compare = compare
    end) in
    let by_pair =
      List.fold_left
        (fun acc p ->
          match Pred.join_cols p with
          | None -> acc
          | Some (l, r) ->
            let key =
              if l.Colref.q <= r.Colref.q then (l.Colref.q, r.Colref.q)
              else (r.Colref.q, l.Colref.q)
            in
            let sel = join_selectivity mode block p in
            Pair_map.update key
              (function None -> Some [ sel ] | Some sels -> Some (sel :: sels))
              acc)
        Pair_map.empty preds
    in
    Pair_map.fold
      (fun _ sels acc ->
        let sorted = List.sort Float.compare sels in
        let _, product =
          List.fold_left
            (fun (i, acc) sel ->
              (i + 1, acc *. (sel ** (1.0 /. (2.0 ** float_of_int i)))))
            (0, 1.0) sorted
        in
        acc *. product)
      by_pair 1.0

let of_set mode block tables =
  let base =
    Bitset.fold
      (fun q acc ->
        acc *. (Query_block.quantifier block q).Quantifier.table.Table.row_count)
      tables 1.0
  in
  let locals =
    List.fold_left
      (fun acc p ->
        if (not (Pred.is_join p)) && Pred.applicable_within p tables then
          acc *. local_selectivity mode block p
        else acc)
      1.0 block.Query_block.preds
  in
  let joins =
    List.filter
      (fun p -> Pred.is_join p && Pred.applicable_within p tables)
      block.Query_block.preds
  in
  let jsel = combined_join_selectivity mode block joins in
  Float.max 1e-6 (base *. locals *. jsel)
