module Timer = Qopt_util.Timer

type t = {
  name : string;
  always : bool;
  mutable total : float;
  mutable child : float;
  mutable count : int;
}

(* The dynamic nesting stack; the optimizer is single-threaded. *)
let stack : t list ref = ref []

let make ?(always = false) name = { name; always; total = 0.0; child = 0.0; count = 0 }

let name t = t.name

let record t dt =
  t.total <- t.total +. dt;
  t.count <- t.count + 1;
  match !stack with
  | parent :: _ when parent != t -> parent.child <- parent.child +. dt
  | _ -> ()

let time t f =
  if not (t.always || !Control.on) then f ()
  else begin
    let saved = !stack in
    stack := t :: saved;
    let t0 = Timer.now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Timer.now () -. t0 in
        stack := saved;
        record t dt)
      f
  end

let add t dt = if t.always || !Control.on then record t dt

let total t = t.total

let self t = Float.max 0.0 (t.total -. t.child)

let count t = t.count

let reset t =
  t.total <- 0.0;
  t.child <- 0.0;
  t.count <- 0
