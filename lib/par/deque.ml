(* A fixed-capacity Chase-Lev work-stealing deque.

   The owner pushes and pops at the bottom (LIFO); thieves steal from the
   top (FIFO) with a CAS.  There is no buffer growth: the pool sizes each
   deque for the whole batch up front, so slots are never overwritten while
   a thief might still read them (a push reuses slot [i land mask] only
   after the top index has passed it, which [push] checks).

   Memory ordering: [push] writes the slot before the (seq-cst) bottom
   store, and a thief reads bottom before the slot, so a thief that sees
   the new bottom also sees the slot's value. *)

type 'a steal_result =
  | Empty
  | Retry  (** lost a race; the deque may still hold tasks *)
  | Stolen of 'a

type 'a t = {
  mask : int;
  buf : 'a option array;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let create capacity =
  let cap =
    let rec up n = if n >= max 4 capacity then n else up (n * 2) in
    up 4
  in
  {
    mask = cap - 1;
    buf = Array.make cap None;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let capacity t = t.mask + 1

let length t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner only. *)
let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp > t.mask then invalid_arg "Qopt_par.Deque.push: deque is full";
  t.buf.(b land t.mask) <- Some v;
  Atomic.set t.bottom (b + 1)

(* Owner only. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Already empty: restore bottom. *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then t.buf.(b land t.mask)
  else begin
    (* Last element: race a concurrent thief for it. *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then t.buf.(b land t.mask) else None
  end

(* Any domain. *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then Empty
  else
    match t.buf.(tp land t.mask) with
    | None -> Retry
    | Some v -> if Atomic.compare_and_set t.top tp (tp + 1) then Stolen v else Retry
