test/t_optimizer.ml: Alcotest Float Helpers List Printf Qopt_catalog Qopt_optimizer Qopt_util
