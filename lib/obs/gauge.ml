type t = {
  name : string;
  values : float array;  (* one cell per shard slot *)
  seqs : int array;  (* write sequence per slot; 0 = never set *)
}

let make name =
  {
    name;
    values = Array.make Shard.max_slots 0.0;
    seqs = Array.make Shard.max_slots 0;
  }

let name t = t.name

let set t v =
  if !Control.on then begin
    let s = Shard.slot () in
    t.values.(s) <- v;
    t.seqs.(s) <- Shard.next_seq ()
  end

(* Last write wins across shards: the slot with the highest write sequence
   holds the newest value. *)
let newest t =
  let best = ref (-1) in
  for s = 0 to Shard.max_slots - 1 do
    if t.seqs.(s) > 0 && (!best < 0 || t.seqs.(s) > t.seqs.(!best)) then best := s
  done;
  !best

let value t = match newest t with -1 -> 0.0 | s -> t.values.(s)

let is_set t = newest t >= 0

let reset t =
  Array.fill t.values 0 Shard.max_slots 0.0;
  Array.fill t.seqs 0 Shard.max_slots 0
