examples/quickstart.mli:
