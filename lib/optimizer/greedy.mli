(** A polynomial-time greedy join optimizer — the "low" optimization level.

    Commercial systems pair the expensive dynamic-programming level with a
    cheap greedy/randomized level (Section 1.1); the meta-optimizer compiles
    at this level first to obtain an execution-cost estimate E before asking
    the COTE for the high level's compilation cost C.

    The algorithm is greedy operator ordering: repeatedly merge the pair of
    connected components whose join yields the smallest intermediate result,
    picking the cheapest join method for each merge. *)

val optimize : Env.t -> Query_block.t -> Plan.t option
(** Best-effort greedy plan for the block (children blocks are ignored —
    drive them through {!Optimizer}).  [None] only for empty blocks. *)

val scan_plan : Env.t -> Cost_model.params -> Query_block.t -> int -> Plan.t
(** Cheapest access path for one quantifier: a sequential scan or a
    filtered index probe, with the parallel environment's partition
    property attached.  Shared with {!Spanning_tree}. *)

val cheapest_join :
  Cost_model.params ->
  Query_block.t ->
  outer:Plan.t ->
  inner:Plan.t ->
  preds:Pred.t list ->
  out_card:float ->
  Plan.t
(** The cheapest of NLJN/MGJN/HSJN for one (outer, inner) direction.
    Shared with {!Spanning_tree}. *)
