lib/util/rng.mli:
