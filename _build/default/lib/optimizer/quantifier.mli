(** Quantifiers: the table references of a query block.

    Besides the base table, a quantifier records the structural constraints
    that Section 4 of the paper attributes to "outer joins, correlations and
    subqueries": a dependency set (correlation providers that must sit on the
    other side before this quantifier can be joined) and whether the
    quantifier may ever appear on the outer side of a join. *)

module Bitset = Qopt_util.Bitset
module Table = Qopt_catalog.Table

type t = {
  id : int;  (** index within the query block *)
  table : Table.t;
  alias : string;
  deps : Bitset.t;
      (** correlation providers: a composite containing this quantifier is
          only valid once all of [deps] are in the same composite, and a set
          needing values from the other side cannot serve as the outer *)
  outer_allowed : bool;
      (** [false] for quantifiers (e.g. from scalar subqueries) that can
          never be on the outer side *)
}

val make : ?deps:Bitset.t -> ?outer_allowed:bool -> ?alias:string -> int -> Table.t -> t

val pp : Format.formatter -> t -> unit
