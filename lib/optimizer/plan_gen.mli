(** Real plan generation: the optimizer-side consumer of the enumerator.

    For every enumerated join and feasible direction it generates join plans
    exactly in the shape the COTE's counting model predicts:

    - NLJN (full order propagation): one plan per kept outer plan, each
      propagating its outer's physical order;
    - MGJN (partial propagation): one plan per achievable merge order — the
      canonical join-column order (enforced by SORTs when not natural, the
      eager policy) plus every kept outer order that *covers* it (property
      subsumption, Section 3.3);
    - HSJN (no order propagation): one unordered plan;
    - parallel mode: result plans carry their outer's partition, inner
      transfers are costed, and the Section 4 repartitioning heuristic
      generates an extra plan per method partitioned on the join columns
      when no input is already keyed on them.

    Deviations between these generated counts and the COTE's estimates come
    only from pruning ("plan sharing"), cardinality-model divergence, and
    the separate order/partition lists — the error sources of Section 5.4. *)

type t

val default_partition :
  Env.t -> Query_block.t -> int -> Partition_prop.t option
(** The partition a scan of the quantifier naturally delivers (lazy partition
    generation): the table's physical partition, a first-column hash fallback
    for unpartitioned tables in parallel mode, [None] in serial mode.  The
    COTE's [initialize()] uses the same function so both modes seed the same
    values.  A zero-column table yields [None] even in parallel mode. *)

val partition_groups :
  Equiv.t -> Plan.t list -> (Partition_prop.t option * Plan.t) list
(** Distinct partition values among the plans (first-seen order), each paired
    with the cheapest plan carrying it; serial-mode plans collapse to the
    single [None] group.  Linear in groups per plan. *)

val create :
  ?cost_bound:float -> ?views:Mat_view.t list -> Env.t -> Memo.t -> Instrument.t -> t
(** [cost_bound] enables the pilot-pass analysis (Section 6.1): generated
    join plans costlier than the bound are counted as prunable (but kept, so
    counts stay comparable). *)

val consumer : t -> Enumerator.consumer

val card_of : t -> Memo.entry -> float
(** Full-model cardinality, cached in the entry, timed in the cardinality
    bucket — pass to {!Enumerator.run}. *)

val bound_prunable : t -> int
(** Number of generated join plans whose cost exceeded [cost_bound]. *)

val mv_tests : t -> int
(** Materialized-view matching tests performed (entries x views). *)

val mv_matches : t -> int
(** How many tests produced a substitute plan. *)
