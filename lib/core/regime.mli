(** Compile-regime selection: DP enumeration vs the spanning-tree fallback.

    On giant join graphs the DP MEMO explodes; a compile service has to
    decide — {e before} compiling — whether to run full DP or the
    polynomial fallback.  COTE makes that decision cheap: the DP prediction
    comes from the estimate pass ({!Predict.compile_time}, run under the
    resource budget so it cannot itself explode), the greedy prediction
    from the join graph alone ({!Greedy_model}), and {!decide} compares
    both against the deadline. *)

type t =
  | Dp  (** full dynamic-programming enumeration *)
  | Greedy  (** spanning-tree fallback, chosen up front *)
  | Dp_budget_fallback
      (** DP was chosen but blew its resource budget mid-compile and was
          rescued by the fallback *)

val to_string : t -> string
(** ["dp"] / ["greedy"] / ["dp_budget_fallback"] — the wire encoding used
    in compile replies and stats. *)

val of_string : string -> t option

type decision = {
  d_regime : t;
  d_dp_s : float option;
      (** DP's predicted seconds; [None] when the budgeted estimate pass
          itself raised {!Qopt_optimizer.Budget.Exceeded} (DP infeasible) *)
  d_greedy_s : float;  (** fallback's predicted seconds *)
  d_margin_s : float;
      (** the headroom that drove the choice: chosen-regime slack against
          the deadline when one is set, else DP's slowdown over greedy *)
}

val decide :
  ?deadline_s:float -> dp_s:float option -> greedy_s:float -> unit -> decision
(** Quality first: [Dp] whenever its prediction fits the deadline (or no
    deadline is set and DP is feasible at all); [Greedy] when DP's estimate
    blew the budget ([dp_s = None]) or its prediction misses the
    deadline. *)

val predicted_s : decision -> float
(** The chosen regime's predicted seconds — what admission control compares
    against the deadline. *)

val record : decision -> unit
(** Bump [regime.dp] / [regime.greedy] / [regime.fallbacks] and set the
    [regime.decision_margin_s] gauge (no-ops unless {!Qopt_obs} is on). *)

val record_fallback : unit -> unit
(** A DP compile blew its budget mid-flight and was rescued: bump
    [regime.fallbacks]. *)

val pp : Format.formatter -> t -> unit
