(** A parameterized plan cache with envelope invalidation.

    Where {!Stmt_cache} memoizes compile {e times}, this caches the chosen
    {!Qopt_optimizer.Plan.t} itself, so a repeated statement template can
    skip optimization entirely.  Serving a stale plan silently would be
    worse than recompiling, so every entry carries the evidence needed to
    revalidate it at lookup:

    - a {b selectivity envelope}: for every local predicate of the stored
      query (all blocks), the estimated selectivity observed at store time
      widened by a multiplicative [slack].  A lookup whose estimated
      selectivities all fall inside the envelope is served from cache; one
      that drifts outside — different parameter values, or drifted
      histograms — invalidates the entry and falls back to a fresh
      compile.  The envelope is a conservative under-approximation of the
      true validity range of the join order: it never serves a plan the
      optimizer might no longer choose because the inputs moved more than
      [slack], at the cost of some recompiles that would have returned the
      same plan.
    - a {b statistics generation} per dependent base table
      ({!bump_stats}): an explicit signal that a table's catalog
      statistics changed.  Bumping a table's generation eagerly flushes
      exactly the entries that depend on it.

    Keys default to {!Stmt_cache.signature}; callers with SQL text supply
    the {!Qopt_sql.Template} key instead, which additionally separates
    string- from numeric-literal templates.

    Capacity is bounded; insertion over [capacity] evicts the
    least-recently-used entry.  Metrics: [plan_cache.{hits,misses,
    invalidations,evictions}] counters plus [plan_cache.size] and
    [plan_cache.hit_rate_pct] gauges in {!Qopt_obs.Registry.default}.

    The payload type ['a] is the caller's: the server stores the reply
    fields a hit must echo, tests store fingerprint material. *)

module O = Qopt_optimizer

type config = {
  slack : float;
      (** multiplicative envelope half-width: store-time selectivity [s]
          admits lookups in [[s*(1-slack), s*(1+slack)]] *)
  capacity : int;  (** max entries before LRU eviction *)
}

val default_config : config
(** slack 0.5, capacity 512. *)

type invalidation =
  | Envelope  (** a lookup selectivity left the stored envelope *)
  | Stats_generation
      (** a dependent table's statistics generation moved under the entry *)

val invalidation_string : invalidation -> string
(** ["envelope"] / ["stats_generation"]. *)

type 'a outcome =
  | Hit of { plan : O.Plan.t; payload : 'a }
  | Miss
  | Invalidated of invalidation
      (** the entry existed but failed revalidation; it has been removed,
          so the caller's fresh compile can {!store} a replacement *)

type 'a t

val create : ?shared:bool -> ?stripes:int -> ?config:config -> unit -> 'a t
(** [~shared:true] makes the cache safe for multi-domain servers.  A
    shared cache is striped: the key hash picks one of [stripes] (default
    8, clamped to [[1, min 64 capacity]]) independently locked
    sub-caches, each owning its share of [capacity], its own LRU clock,
    and its own copy of the per-table statistics generations (so lookups
    stay single-lock; {!bump_stats} walks every stripe).  [~stripes:1]
    recovers the old single-shared-mutex design for before/after
    contention measurements.  Stripe locks are contention-audited
    {!Qopt_obs.Lock}s under [lock.plan_cache.*].  LRU eviction is
    per-stripe: the evicted entry is the least recently used {e within
    the full stripe}, which under a uniform key hash approximates global
    LRU while never letting total size exceed [capacity].  Defaults to
    [false]: one stripe, no locking. *)

val stripes : 'a t -> int
(** Number of stripes (1 for an unshared cache). *)

val lookup : 'a t -> ?key:string -> O.Query_block.t -> 'a outcome
(** Revalidate and serve.  [key] defaults to
    [Stmt_cache.signature block].  The block's current estimated
    selectivities (histograms as they are {e now}, literals as bound) are
    checked against the stored envelope, and the dependent tables' stats
    generations against the store-time snapshot. *)

val store : 'a t -> ?key:string -> O.Query_block.t -> plan:O.Plan.t -> 'a -> unit
(** Cache a freshly chosen plan, recording the envelope and generation
    snapshot from [block] as currently estimated.  Replaces any entry
    under the same key; evicts the LRU entry when full. *)

val bump_stats : 'a t -> string -> int
(** [bump_stats t table] advances [table]'s statistics generation and
    eagerly flushes every entry depending on it, returning how many were
    flushed.  Each flush counts into [plan_cache.invalidations] (and
    {!invalidations}) but not into the [plan_cache.hit_rate_pct]
    denominator, which is a ratio over lookups only. *)

val generation : 'a t -> string -> int
(** Current statistics generation of a table (0 until first bumped). *)

val envelope : 'a t -> string -> (string * float * float) list option
(** The stored envelope of the entry under [key] — [(predicate signature,
    lo, hi)] rows — for tests and introspection. *)

val size : 'a t -> int

val hits : 'a t -> int

val misses : 'a t -> int

val invalidations : 'a t -> int

val evictions : 'a t -> int
