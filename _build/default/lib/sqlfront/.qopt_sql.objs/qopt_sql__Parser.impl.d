lib/sqlfront/parser.ml: Ast Float Format Lexer List Printf
