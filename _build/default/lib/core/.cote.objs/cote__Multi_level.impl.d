lib/core/multi_level.ml: Accumulate List Qopt_optimizer Qopt_util
