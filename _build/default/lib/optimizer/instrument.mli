(** Per-category compilation-time accounting (Figure 2).

    The optimizer driver buckets wall-clock time into the categories of the
    paper's Figure 2: plan generation per join method, plan saving (MEMO
    insertion and pruning), and everything else (join enumeration,
    cardinality, scan planning). *)

type t

val create : unit -> t

val nljn : t -> (unit -> 'a) -> 'a

val mgjn : t -> (unit -> 'a) -> 'a

val hsjn : t -> (unit -> 'a) -> 'a

val save : t -> (unit -> 'a) -> 'a

val card : t -> (unit -> 'a) -> 'a

val scan : t -> (unit -> 'a) -> 'a

val mv : t -> (unit -> 'a) -> 'a
(** Materialized-view matching time (Section 6.2 extension). *)

val set_total : t -> float -> unit
(** Record the query's total wall-clock compile time; "other" is derived. *)

type snapshot = {
  s_nljn : float;
  s_mgjn : float;
  s_hsjn : float;
  s_save : float;
  s_card : float;
  s_scan : float;
  s_mv : float;  (** materialized-view matching *)
  s_other : float;  (** total minus all buckets: enumeration & bookkeeping *)
  s_total : float;
}

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot

val zero : snapshot

val pp_breakdown : Format.formatter -> snapshot -> unit
(** Percent breakdown in the style of Figure 2. *)
