lib/optimizer/partition_prop.mli: Colref Equiv Format Qopt_catalog Qopt_util
