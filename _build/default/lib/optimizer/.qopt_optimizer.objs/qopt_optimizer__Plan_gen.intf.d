lib/optimizer/plan_gen.mli: Enumerator Env Instrument Mat_view Memo Partition_prop Query_block
