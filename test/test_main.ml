let () =
  Alcotest.run "qopt"
    [
      ("bitset", T_bitset.suite);
      ("util", T_util.suite);
      ("catalog", T_catalog.suite);
      ("sql", T_sql.suite);
      ("props", T_props.suite);
      ("block", T_block.suite);
      ("cardinality-cost", T_cardinality_cost.suite);
      ("memo", T_memo.suite);
      ("enumerator", T_enumerator.suite);
      ("optimizer", T_optimizer.suite);
      ("cote", T_cote.suite);
      ("workloads", T_workloads.suite);
      ("mop", T_mop.suite);
      ("topn", T_topn.suite);
      ("extensions", T_extensions.suite);
      ("misc", T_misc.suite);
      ("properties", T_properties.suite);
      ("obs", T_obs.suite);
      ("hotpath", T_hotpath.suite);
      ("par", T_par.suite);
      ("contention", T_contention.suite);
      ("stmt-cache", T_stmt_cache.suite);
      ("recalibrate", T_recalibrate.suite);
      ("plan-cache", T_plan_cache.suite);
      ("sql-roundtrip", T_roundtrip.suite);
      ("sql-errors", T_sqlfront_errors.suite);
      ("server", T_server.suite);
      ("fleet", T_fleet.suite);
      ("giant", T_giant.suite);
    ]
