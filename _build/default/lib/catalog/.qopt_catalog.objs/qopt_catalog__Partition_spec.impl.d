lib/catalog/partition_spec.ml: Format List String
