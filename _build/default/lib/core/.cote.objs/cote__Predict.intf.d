lib/core/predict.mli: Accumulate Estimator Qopt_optimizer Time_model
