(* Rng, Stats, Regression, Timer, Tablefmt. *)

module Rng = Qopt_util.Rng
module Stats = Qopt_util.Stats
module Regression = Qopt_util.Regression
module Timer = Qopt_util.Timer
module Tablefmt = Qopt_util.Tablefmt

let t name f = Alcotest.test_case name `Quick f

let feq = Alcotest.(check (float 1e-9))

let feq_loose = Alcotest.(check (float 1e-6))

let rng_tests =
  [
    t "rng deterministic for equal seeds" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 50 do
          Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
        done);
    t "rng differs across seeds" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        Alcotest.(check bool) "different" true (Rng.int64 a <> Rng.int64 b));
    t "int respects bound" (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
        done);
    t "int rejects non-positive bound" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int (Rng.create 1) 0)));
    t "int_range inclusive" (fun () ->
        let r = Rng.create 4 in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Rng.int_range r 2 4 in
          if v = 2 then seen_lo := true;
          if v = 4 then seen_hi := true;
          Alcotest.(check bool) "in range" true (v >= 2 && v <= 4)
        done;
        Alcotest.(check bool) "hits lo" true !seen_lo;
        Alcotest.(check bool) "hits hi" true !seen_hi);
    t "float in [0,bound)" (fun () ->
        let r = Rng.create 5 in
        for _ = 1 to 1000 do
          let v = Rng.float r 2.5 in
          Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
        done);
    t "shuffle preserves multiset" (fun () ->
        let r = Rng.create 6 in
        let arr = Array.init 30 Fun.id in
        Rng.shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same elements" (Array.init 30 Fun.id) sorted);
    t "sample distinct" (fun () ->
        let r = Rng.create 8 in
        let s = Rng.sample r 5 [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        Alcotest.(check int) "size" 5 (List.length s);
        Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s)));
    t "copy forks the stream" (fun () ->
        let a = Rng.create 9 in
        ignore (Rng.int64 a);
        let b = Rng.copy a in
        Alcotest.(check int64) "same next" (Rng.int64 a) (Rng.int64 b));
  ]

let stats_tests =
  [
    t "mean" (fun () -> feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]));
    t "mean empty" (fun () -> feq "mean []" 0.0 (Stats.mean []));
    t "median odd" (fun () -> feq "median" 3.0 (Stats.median [ 5.0; 3.0; 1.0 ]));
    t "median even" (fun () -> feq "median" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]));
    t "stddev of constants is 0" (fun () -> feq "sd" 0.0 (Stats.stddev [ 2.0; 2.0; 2.0 ]));
    t "stddev known" (fun () -> feq_loose "sd" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]));
    t "min/max" (fun () ->
        feq "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
        feq "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]));
    t "pct_error signed" (fun () ->
        feq "over" 50.0 (Stats.pct_error ~actual:2.0 ~estimate:3.0);
        feq "under" (-50.0) (Stats.pct_error ~actual:2.0 ~estimate:1.0));
    t "pct_error zero actual" (fun () ->
        feq "both zero" 0.0 (Stats.pct_error ~actual:0.0 ~estimate:0.0);
        Alcotest.(check bool) "inf" true
          (Float.is_integer (Stats.pct_error ~actual:0.0 ~estimate:1.0) = false
          || Stats.pct_error ~actual:0.0 ~estimate:1.0 = Float.infinity));
    t "mean/max abs pct error" (fun () ->
        let pairs = [ (2.0, 3.0); (2.0, 1.0) ] in
        feq "mean" 50.0 (Stats.mean_abs_pct_error pairs);
        feq "max" 50.0 (Stats.max_abs_pct_error pairs));
    t "r_squared perfect fit" (fun () ->
        feq "r2" 1.0 (Stats.r_squared ~actual:[ 1.0; 2.0; 3.0 ] ~fitted:[ 1.0; 2.0; 3.0 ]));
    t "r_squared mean-only fit" (fun () ->
        feq "r2" 0.0 (Stats.r_squared ~actual:[ 1.0; 2.0; 3.0 ] ~fitted:[ 2.0; 2.0; 2.0 ]));
  ]

let regression_tests =
  [
    t "solve 2x2" (fun () ->
        let x = Regression.solve [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] [| 5.0; 10.0 |] in
        feq_loose "x0" 1.0 x.(0);
        feq_loose "x1" 3.0 x.(1));
    t "solve singular raises" (fun () ->
        Alcotest.check_raises "singular" (Failure "Regression.solve: singular matrix")
          (fun () ->
            ignore (Regression.solve [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 2.0 |])));
    t "fit recovers planted coefficients" (fun () ->
        let coeffs = [| 2.5; -1.0; 0.5 |] in
        let xs =
          Array.init 20 (fun i ->
              [| float_of_int (i + 1); float_of_int ((i * 3) mod 7); float_of_int ((i * 5) mod 11) |])
        in
        let ys = Array.map (fun row -> Regression.predict coeffs row) xs in
        let fitted = Regression.fit xs ys in
        Array.iteri (fun i c -> feq_loose (Printf.sprintf "c%d" i) c fitted.(i)) coeffs);
    t "fit with intercept" (fun () ->
        let xs = Array.init 10 (fun i -> [| float_of_int i |]) in
        let ys = Array.map (fun row -> 3.0 +. (2.0 *. row.(0))) xs in
        let fitted = Regression.fit ~intercept:true xs ys in
        feq_loose "intercept" 3.0 fitted.(0);
        feq_loose "slope" 2.0 fitted.(1));
    t "fit_nonneg clamps negatives" (fun () ->
        (* True model has a negative coefficient; NNLS must return >= 0. *)
        let xs = Array.init 15 (fun i -> [| float_of_int (i + 1); float_of_int (15 - i) |]) in
        let ys = Array.map (fun row -> (2.0 *. row.(0)) -. (0.5 *. row.(1))) xs in
        let fitted = Regression.fit_nonneg xs ys in
        Alcotest.(check bool) "nonneg" true (fitted.(0) >= 0.0 && fitted.(1) >= 0.0));
    t "fit_nonneg recovers nonneg model" (fun () ->
        let xs = Array.init 15 (fun i -> [| float_of_int (i + 1); float_of_int ((i * 2) mod 5) |]) in
        let ys = Array.map (fun row -> (1.5 *. row.(0)) +. (0.25 *. row.(1))) xs in
        let fitted = Regression.fit_nonneg xs ys in
        feq_loose "c0" 1.5 fitted.(0);
        Alcotest.(check (float 1e-3)) "c1" 0.25 fitted.(1));
    t "predict shape mismatch" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Regression.predict: shape mismatch")
          (fun () -> ignore (Regression.predict [| 1.0 |] [| 1.0; 2.0 |])));
  ]

let timer_tests =
  [
    t "time returns result" (fun () ->
        let r, dt = Timer.time (fun () -> 41 + 1) in
        Alcotest.(check int) "result" 42 r;
        Alcotest.(check bool) "nonneg" true (dt >= 0.0));
    t "bucket accumulates" (fun () ->
        let b = Timer.bucket () in
        let x = Timer.add_to b (fun () -> 7) in
        ignore (Timer.add_to b (fun () -> 8));
        Alcotest.(check int) "result" 7 x;
        Alcotest.(check bool) "elapsed >= 0" true (Timer.elapsed b >= 0.0);
        Timer.reset b;
        Alcotest.(check (float 0.0)) "reset" 0.0 (Timer.elapsed b));
    t "time_median result" (fun () ->
        let r, dt = Timer.time_median ~repeats:3 (fun () -> "x") in
        Alcotest.(check string) "result" "x" r;
        Alcotest.(check bool) "nonneg" true (dt >= 0.0));
  ]

let tablefmt_tests =
  [
    t "renders aligned table" (fun () ->
        let tbl = Tablefmt.create [ ("name", Tablefmt.Left); ("n", Tablefmt.Right) ] in
        Tablefmt.add_row tbl [ "a"; "1" ];
        Tablefmt.add_row tbl [ "long"; "22" ];
        let buf = Buffer.create 64 in
        let ppf = Format.formatter_of_buffer buf in
        Tablefmt.output ppf tbl;
        Format.pp_print_flush ppf ();
        let s = Buffer.contents buf in
        Alcotest.(check bool) "has padded cell" true
          (Helpers.contains s "| a    |  1 |"));
    t "arity mismatch raises" (fun () ->
        let tbl = Tablefmt.create [ ("a", Tablefmt.Left) ] in
        Alcotest.check_raises "raises" (Invalid_argument "Tablefmt.add_row: arity mismatch")
          (fun () -> Tablefmt.add_row tbl [ "x"; "y" ]));
    t "formatters" (fun () ->
        Alcotest.(check string) "seconds" "0.1235" (Tablefmt.fseconds 0.12345);
        Alcotest.(check string) "pct" "12.3%" (Tablefmt.fpct 12.34);
        Alcotest.(check string) "count" "42" (Tablefmt.fcount 42.4));
  ]

let suite = rng_tests @ stats_tests @ regression_tests @ timer_tests @ tablefmt_tests
