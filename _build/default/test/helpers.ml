(* Shared fixtures for the test suites: small schemas and query blocks with
   hand-checkable structure. *)

module C = Qopt_catalog
module O = Qopt_optimizer
module Bitset = Qopt_util.Bitset

let table ?indexes ?partition ?(cols = []) ~rows name =
  let base =
    [
      C.Column.make ~rows ~distinct:rows "pk";
      C.Column.make ~rows ~distinct:rows "j1";
      C.Column.make ~rows ~distinct:100.0 "j2";
      C.Column.make ~rows ~distinct:10.0 "v";
    ]
  in
  C.Table.make ~rows ~name ~primary_key:[ "pk" ] ?indexes ?partition (base @ cols)

(* A linear chain: t0 - t1 - ... - t(n-1), joined on j1, with [extra] extra
   predicates per edge on j2. *)
let chain ?(extra = 0) ?(order_by = false) ?(group_by = false) n =
  let tables =
    List.init n (fun i -> table ~rows:(1000.0 *. float_of_int (i + 1)) (Printf.sprintf "t%d" i))
  in
  let quantifiers = List.mapi (fun i t -> O.Quantifier.make i t) tables in
  let preds =
    List.concat
      (List.init (n - 1) (fun i ->
           O.Pred.Eq_join (O.Colref.make i "j1", O.Colref.make (i + 1) "j1")
           :: List.init extra (fun _ ->
                  O.Pred.Eq_join (O.Colref.make i "j2", O.Colref.make (i + 1) "j2"))))
  in
  O.Query_block.make ~name:(Printf.sprintf "chain%d" n)
    ~order_by:(if order_by then [ O.Colref.make 0 "v" ] else [])
    ~group_by:(if group_by then [ O.Colref.make 0 "j2" ] else [])
    ~quantifiers ~preds ()

(* A star: t0 is the center; satellites join t0.j1. *)
let star_block n =
  let tables =
    List.init n (fun i -> table ~rows:(1000.0 *. float_of_int (i + 1)) (Printf.sprintf "s%d" i))
  in
  let quantifiers = List.mapi (fun i t -> O.Quantifier.make i t) tables in
  let preds =
    List.init (n - 1) (fun i ->
        O.Pred.Eq_join (O.Colref.make 0 "j1", O.Colref.make (i + 1) "j1"))
  in
  O.Query_block.make ~name:(Printf.sprintf "star%d" n) ~quantifiers ~preds ()

let cr = O.Colref.make

let set = Bitset.of_list

(* Standard knobs without the cardinality-sensitive Cartesian heuristic, so
   real optimization and plan-estimate mode see identical join streams. *)
let stable_knobs = { O.Knobs.default with O.Knobs.card1_cartesian = false }

let full_bushy_stable =
  { O.Knobs.full_bushy with O.Knobs.card1_cartesian = false }

(* Substring check for output-format assertions. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0
