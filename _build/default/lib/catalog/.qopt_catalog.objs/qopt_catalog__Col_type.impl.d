lib/catalog/col_type.ml: Format Printf
