(** Derivation and retirement of interesting properties.

    Implements the "what's interesting" column of Table 1 of the paper for
    the order and partition properties: an order is interesting when its
    columns match the join column of a future join, the grouping attributes,
    or the ordering attributes; a partition is interesting under the same
    conditions (range partitions for ordering, hash for joins/grouping).

    Interesting properties "retire" when no remaining operation can use them
    (Section 3.2): a join-key order retires in a table set once every join
    predicate over (the equivalence class of) its column is internal to the
    set; grouping and ordering properties never retire, since they serve the
    operators above all joins. *)

module Bitset = Qopt_util.Bitset

val orders_for_table : Query_block.t -> int -> Order_prop.t list
(** Interesting orders pushed down to a single quantifier (DB2's eager
    policy precomputes exactly this list for base tables, Section 4):
    one [Join_key] order per join-predicate column of the quantifier, a
    [Grouping] order on the quantifier's subset of the GROUP BY columns, and
    an [Ordering] order on the maximal ORDER BY prefix owned by the
    quantifier. *)

val order_retired :
  Query_block.t -> Equiv.t -> tables:Bitset.t -> Order_prop.t -> bool
(** Whether the interesting order is retired for a MEMO entry covering
    [tables] (see above). *)

val partition_interesting :
  Query_block.t -> Equiv.t -> tables:Bitset.t -> Partition_prop.t -> bool
(** Whether a partition property is (still) interesting for the entry: some
    key column matches a pending join column, a grouping column, or (range
    only) an ordering column. *)

val physical_partition : Query_block.t -> int -> Partition_prop.t option
(** The partition property delivered naturally by scanning the quantifier's
    base table (lazy generation policy). *)

val filter_indexes : Query_block.t -> int -> Qopt_catalog.Index.t list
(** Indexes of the quantifier's table whose leading column carries an
    equality or IN local predicate — the access paths the optimizer tries
    for predicate evaluation (and that the estimator counts as non-join
    plans). *)

val merge_order : Equiv.t -> Pred.t list -> Order_prop.t option
(** The canonical sort order a merge join over the given (crossing)
    equality predicates requires: a [Join_key] order over the predicate
    columns, normalized under the join's equivalence classes. *)
