lib/optimizer/greedy.mli: Env Plan Query_block
