type token =
  | Ident of string
  | Number of float
  | String of string
  | Kw of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star_tok
  | Op of string
  | Eof

exception Error of string * int

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "ORDER"; "BY"; "JOIN"; "LEFT"; "INNER";
    "OUTER"; "ON"; "AND"; "IN"; "EXISTS"; "AS"; "COUNT"; "SUM"; "MIN"; "MAX";
    "AVG"; "LIMIT";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec loop i acc =
    if i >= n then List.rev (Eof :: acc)
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (i + 1) acc
      else if c = '(' then loop (i + 1) (Lparen :: acc)
      else if c = ')' then loop (i + 1) (Rparen :: acc)
      else if c = ',' then loop (i + 1) (Comma :: acc)
      else if c = '.' then loop (i + 1) (Dot :: acc)
      else if c = '*' then loop (i + 1) (Star_tok :: acc)
      else if c = '=' then loop (i + 1) (Op "=" :: acc)
      else if c = '<' then
        if i + 1 < n && input.[i + 1] = '=' then loop (i + 2) (Op "<=" :: acc)
        else loop (i + 1) (Op "<" :: acc)
      else if c = '>' then
        if i + 1 < n && input.[i + 1] = '=' then loop (i + 2) (Op ">=" :: acc)
        else loop (i + 1) (Op ">" :: acc)
      else if c = '\'' then begin
        let rec scan k =
          if k >= n then raise (Error ("unterminated string literal", i))
          else if input.[k] = '\'' then k
          else scan (k + 1)
        in
        let stop = scan (i + 1) in
        loop (stop + 1) (String (String.sub input (i + 1) (stop - i - 1)) :: acc)
      end
      else if is_digit c then begin
        let rec scan k =
          if k < n && (is_digit input.[k] || input.[k] = '.') then scan (k + 1)
          else k
        in
        let stop = scan i in
        let text = String.sub input i (stop - i) in
        match float_of_string_opt text with
        | Some f -> loop stop (Number f :: acc)
        | None -> raise (Error (Printf.sprintf "malformed number %S" text, i))
      end
      else if is_ident_start c then begin
        let rec scan k = if k < n && is_ident_char input.[k] then scan (k + 1) else k in
        let stop = scan i in
        let text = String.sub input i (stop - i) in
        let upper = String.uppercase_ascii text in
        if List.mem upper keywords then loop stop (Kw upper :: acc)
        else loop stop (Ident (String.lowercase_ascii text) :: acc)
      end
      else raise (Error (Printf.sprintf "unexpected character %C" c, i))
  in
  loop 0 []

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "ident(%s)" s
  | Number f -> Format.fprintf ppf "num(%g)" f
  | String s -> Format.fprintf ppf "str(%s)" s
  | Kw k -> Format.fprintf ppf "kw(%s)" k
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Comma -> Format.pp_print_string ppf ","
  | Dot -> Format.pp_print_string ppf "."
  | Star_tok -> Format.pp_print_string ppf "*"
  | Op s -> Format.pp_print_string ppf s
  | Eof -> Format.pp_print_string ppf "<eof>"
