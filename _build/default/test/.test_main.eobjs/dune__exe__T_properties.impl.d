test/t_properties.ml: Cote Float Helpers List Printf QCheck2 QCheck_alcotest Qopt_optimizer Qopt_util
