(** Experiment [pilot]: pilot-pass pruning analysis (Section 6.1).

    "Our preliminary analysis on DB2 shows that no more than 10% of plans
    are pruned by the initial plan in real workloads" — the justification
    for the COTE ignoring cost-bound pruning.  We measure the fraction of
    generated join plans whose cost exceeds a greedy initial plan's. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

let run () =
  let env = Common.serial in
  let wl = Common.workload env "real1" in
  let t =
    Tablefmt.create
      ~title:"pilot: plans prunable by an initial full plan (paper: <=~10%)"
      [
        ("query", Tablefmt.Left);
        ("generated", Tablefmt.Right);
        ("prunable", Tablefmt.Right);
        ("fraction", Tablefmt.Right);
        ("kept", Tablefmt.Right);
        ("kept prunable", Tablefmt.Right);
        ("kept fraction", Tablefmt.Right);
      ]
  in
  let fracs, kept_fracs =
    List.split
      (List.map
         (fun (q : W.Workload.query) ->
           let report = O.Pilot_pass.analyze env q.W.Workload.block in
           Tablefmt.add_row t
             [
               q.W.Workload.q_name;
               string_of_int report.O.Pilot_pass.generated;
               string_of_int report.O.Pilot_pass.prunable;
               Tablefmt.fpct (report.O.Pilot_pass.fraction *. 100.0);
               string_of_int report.O.Pilot_pass.kept;
               string_of_int report.O.Pilot_pass.kept_prunable;
               Tablefmt.fpct (report.O.Pilot_pass.kept_fraction *. 100.0);
             ];
           (report.O.Pilot_pass.fraction *. 100.0, report.O.Pilot_pass.kept_fraction *. 100.0))
         wl.W.Workload.queries)
  in
  Tablefmt.print t;
  Format.printf "prunable fraction: mean %.1f%%, max %.1f%%@." (Stats.mean fracs)
    (Stats.maximum fracs);
  Format.printf
    "kept (MEMO) plans prunable: mean %.1f%%, max %.1f%% — the population the      COTE's property lists model@.@."
    (Stats.mean kept_fracs) (Stats.maximum kept_fracs)
