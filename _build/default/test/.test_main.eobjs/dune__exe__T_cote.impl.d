test/t_cote.ml: Alcotest Cote Float Helpers List Printf Qopt_catalog Qopt_optimizer Qopt_util
