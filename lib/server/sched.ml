type mode = Sjf | Fifo

let mode_string = function Sjf -> "sjf" | Fifo -> "fifo"

type 'a entry = { key : float; seq : int; item : 'a }

type 'a t = {
  q_mode : mode;
  mutable heap : 'a entry array;  (* binary min-heap in [0, size) *)
  mutable size : int;
  mutable seq : int;
  mutable closed : bool;
  lock : Mutex.t;
  nonempty : Condition.t;
}

let create q_mode =
  {
    q_mode;
    heap = [||];
    size = 0;
    seq = 0;
    closed = false;
    lock = Mutex.create ();
    nonempty = Condition.create ();
  }

let mode t = t.q_mode

(* Strict weak order: smaller key first, FIFO within equal keys. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push_locked t entry =
  if t.size = Array.length t.heap then
    t.heap <-
      (let grown = Array.make (max 16 (2 * t.size)) entry in
       Array.blit t.heap 0 grown 0 t.size;
       grown);
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_locked t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  top.item

let push t ~priority item =
  Mutex.protect t.lock (fun () ->
      if t.closed then false
      else begin
        let key = match t.q_mode with Sjf -> priority | Fifo -> 0.0 in
        push_locked t { key; seq = t.seq; item };
        t.seq <- t.seq + 1;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Mutex.protect t.lock (fun () ->
      while t.size = 0 && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      if t.size = 0 then None else Some (pop_locked t))

let drain t =
  Mutex.protect t.lock (fun () ->
      let rec go acc = if t.size = 0 then List.rev acc else go (pop_locked t :: acc) in
      go [])

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = Mutex.protect t.lock (fun () -> t.size)
