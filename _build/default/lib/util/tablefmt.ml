type align =
  | Left
  | Right

type row =
  | Cells of string list
  | Sep

type t = {
  title : string option;
  cols : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols = { title; cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.cols then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let output ppf t =
  let headers = List.map fst t.cols in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i (h, _) ->
        List.fold_left
          (fun w row ->
            match row with
            | Sep -> w
            | Cells cells -> max w (String.length (List.nth cells i)))
          (String.length h) rows)
      t.cols
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let print_cells cells aligns =
    let padded = List.map2 (fun (s, a) w -> pad a w s) (List.combine cells aligns) widths in
    Format.fprintf ppf "| %s |@." (String.concat " | " padded)
  in
  let sep_line () =
    let dashes = List.map (fun w -> String.make w '-') widths in
    Format.fprintf ppf "+-%s-+@." (String.concat "-+-" dashes)
  in
  (match t.title with
  | None -> ()
  | Some title -> Format.fprintf ppf "%s@." title);
  let aligns = List.map snd t.cols in
  sep_line ();
  print_cells headers (List.map (fun _ -> Left) t.cols);
  sep_line ();
  List.iter
    (fun row ->
      match row with
      | Sep -> sep_line ()
      | Cells cells -> print_cells cells aligns)
    rows;
  sep_line ()

let print t =
  output Format.std_formatter t;
  Format.pp_print_newline Format.std_formatter ()

let fseconds s = Printf.sprintf "%.4f" s

let fpct p = Printf.sprintf "%.1f%%" p

let fcount c = Printf.sprintf "%.0f" c
