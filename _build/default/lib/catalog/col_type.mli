(** SQL column types.

    Only what the optimizer needs: a width for costing and a domain class
    for selectivity defaults. *)

type t =
  | Int
  | Float
  | Decimal of int * int  (** precision, scale *)
  | Varchar of int  (** maximum length *)
  | Char of int
  | Date

val byte_width : t -> int
(** Storage width used by the cost model (average for varchars). *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
