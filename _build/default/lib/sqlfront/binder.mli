(** Name resolution: turns a parsed SELECT into an optimizer query block.

    Quantifiers are numbered in FROM-clause order (comma items first, then
    JOIN clauses).  LEFT JOIN clauses become outer-join constraints whose
    preserved side is everything introduced before the clause.  EXISTS / IN
    subqueries become child blocks, compiled separately like DB2's query
    blocks; correlated references from a subquery to the parent are dropped
    from the child (they are parameters there) and recorded as correlation
    dependencies of the parent quantifiers the subquery constrains. *)

exception Error of string

val bind :
  ?name:string -> Qopt_catalog.Schema.t -> Ast.select -> Qopt_optimizer.Query_block.t
(** Raises {!Error} on unknown tables/columns or ambiguous references. *)

val parse_and_bind :
  ?name:string -> Qopt_catalog.Schema.t -> string -> Qopt_optimizer.Query_block.t
(** [Parser.parse] followed by [bind]. *)
