lib/mop/levels.mli: Format Qopt_optimizer
