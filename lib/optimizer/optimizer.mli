(** The optimization driver.

    Runs full dynamic-programming optimization of a query (all blocks,
    bottom-up), returning the best plan together with everything the
    experiments need: wall-clock time, the Figure 2 breakdown, enumeration
    and plan-generation counters, and MEMO size. *)

type result = {
  best : Plan.t option;  (** best plan of the top block *)
  elapsed : float;  (** wall-clock seconds, all blocks *)
  joins : int;  (** joins enumerated *)
  generated : Memo.counts;  (** join plans generated, before pruning *)
  scan_plans : int;
  kept : int;  (** plans held in the MEMO after pruning *)
  entries : int;
  pruned : int;
  breakdown : Instrument.snapshot;
  memo_bytes : float;
  mv_tests : int;  (** materialized-view matching tests (§6.2) *)
  mv_matches : int;
}

exception Interrupted
(** Raised by {!optimize} / {!optimize_block} when the [interrupt] callback
    returns [true]: the caller (e.g. a compile-service deadline) asked for
    cancellation.  The MEMO built so far is discarded. *)

val optimize_block :
  ?interrupt:(unit -> bool) ->
  ?budget:Budget.t ->
  ?views:Mat_view.t list ->
  Env.t ->
  Knobs.t ->
  Query_block.t ->
  result
(** Optimizes a single block, ignoring children.  If the knobs leave the top
    table set unreachable (e.g. a disconnected join graph without Cartesian
    products), the block is retried with Cartesian products enabled, as a
    real system would.  [interrupt] is polled between optimizer passes
    (before the first pass and before the permissive retry); when it
    returns [true], {!Interrupted} is raised.  [budget] (default
    unlimited) caps the MEMO mid-pass: crossing a cap raises
    {!Budget.Exceeded} from inside the enumeration, before the MEMO can
    grow past the limit — the giant-join-graph guardrail. *)

val optimize :
  Env.t ->
  ?interrupt:(unit -> bool) ->
  ?budget:Budget.t ->
  ?knobs:Knobs.t ->
  ?views:Mat_view.t list ->
  Query_block.t ->
  result
(** Optimizes the block and all child blocks bottom-up; counters and times
    are summed, [best] is the top block's plan (with final SORT / GROUP BY
    operators applied).  [knobs] defaults to {!Knobs.default}.  [interrupt]
    (default: never) is polled between optimizer passes — before each
    block's enumeration and before any permissive retry — and raises
    {!Interrupted} when it returns [true]; a request past its deadline is
    cancelled at the next pass boundary rather than hanging to completion.
    [budget] (default unlimited) additionally caps MEMO entries / kept
    plans {e inside} each pass, raising {!Budget.Exceeded} the moment a
    cap is crossed; callers fall back to {!optimize_fallback}. *)

type fallback = {
  fb_best : Plan.t option;
      (** top block's spanning-tree plan, with final SORT / GROUP BY *)
  fb_elapsed : float;  (** wall-clock seconds, all blocks *)
  fb_quantifiers : int;  (** summed over blocks (a time-model feature) *)
  fb_edges : int;  (** join-graph edges, summed (a time-model feature) *)
  fb_restarts : int;  (** randomized restarts per block *)
  fb_joins : int;  (** join operators costed *)
}

val optimize_fallback :
  Env.t ->
  ?interrupt:(unit -> bool) ->
  ?seed:int ->
  ?restarts:int ->
  Query_block.t ->
  fallback
(** The polynomial fallback regime: every block is planned by
    {!Spanning_tree.optimize} (MST over the join graph by estimated
    intermediate cardinality, cheapest-method joins, [restarts] seeded
    perturbed retries) instead of DP enumeration — no MEMO, no budget to
    exceed.  Deterministic for a given [(seed, restarts)].  [interrupt] is
    polled before each block. *)
