lib/optimizer/quantifier.ml: Format Printf Qopt_catalog Qopt_util
