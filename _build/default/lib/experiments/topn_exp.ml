(** Experiment [topn]: the pipelinable property (Table 1, and the paper's
    closing "we plan to account for more physical properties in our COTE").

    A LIMIT clause makes pipelinability interesting: plans that can deliver
    rows without a blocking SORT / hash build survive pruning next to cheaper
    blocking plans, enlarging the plan space — and the COTE must track the
    enlargement.  The experiment compares each query against its LIMIT 10
    variant: generated plans grow, the estimator follows, and the chosen
    plan becomes pipelinable. *)

module O = Qopt_optimizer
module W = Qopt_workloads
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

(* LIMIT pipelines only when no blocking final operator sits on top, so the
   comparison strips GROUP BY / ORDER BY from both variants. *)
let streaming (block : O.Query_block.t) =
  { block with O.Query_block.group_by = []; order_by = [] }

let with_limit n (block : O.Query_block.t) =
  {
    (streaming block) with
    O.Query_block.first_n = Some n;
    name = block.O.Query_block.name ^ "_top" ^ string_of_int n;
  }

let run () =
  let env = Common.serial in
  let base_queries =
    List.filteri (fun i _ -> i mod 3 = 0)
      (Common.workload env "star").W.Workload.queries
    @ [ W.Workload.find (Common.workload env "real1") "r1_q3" ]
  in
  let t =
    Tablefmt.create
      ~title:
        "topn: the pipelinable property under LIMIT 10 (plan space grows, \
         estimator tracks, winning plan pipelines)"
      [
        ("query", Tablefmt.Left);
        ("gen plans", Tablefmt.Right);
        ("gen w/ LIMIT", Tablefmt.Right);
        ("est w/ LIMIT", Tablefmt.Right);
        ("err", Tablefmt.Right);
        ("best pipelines", Tablefmt.Left);
      ]
  in
  let pairs = ref [] in
  let grew = ref 0 and pipelined = ref 0 and total = ref 0 in
  List.iter
    (fun (q : W.Workload.query) ->
      let base = O.Optimizer.optimize env (streaming q.W.Workload.block) in
      let limited_block = with_limit 10 q.W.Workload.block in
      let limited = O.Optimizer.optimize env limited_block in
      let est = Cote.Estimator.estimate env limited_block in
      let gen0 = O.Memo.counts_total base.O.Optimizer.generated in
      let gen1 = O.Memo.counts_total limited.O.Optimizer.generated in
      let est1 = Cote.Estimator.total est in
      let pipe =
        match limited.O.Optimizer.best with
        | Some p -> O.Plan.pipelinable p
        | None -> false
      in
      incr total;
      if gen1 > gen0 then incr grew;
      if pipe then incr pipelined;
      pairs := (float_of_int gen1, float_of_int est1) :: !pairs;
      Tablefmt.add_row t
        [
          q.W.Workload.q_name;
          string_of_int gen0;
          string_of_int gen1;
          string_of_int est1;
          Tablefmt.fpct
            (Stats.pct_error ~actual:(float_of_int gen1) ~estimate:(float_of_int est1));
          (if pipe then "yes" else "no");
        ])
    base_queries;
  Tablefmt.print t;
  Format.printf
    "plan space grew on %d/%d queries; winning plan pipelinable on %d/%d; \
     estimate vs actual with LIMIT: %s@.@."
    !grew !total !pipelined !total (Common.err_summary !pairs)
