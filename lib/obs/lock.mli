(** Contention-audited mutexes.

    A [Lock.t] is a plain [Mutex.t] plus a named metric family in
    {!Registry.default}:

    - [lock.<name>.acquisitions] — counter, one per instrumented acquire
    - [lock.<name>.contended]    — counter, acquires that actually blocked
    - [lock.<name>.wait_s]       — histogram of seconds spent blocked per
      acquire (zero observations for uncontended acquires, so [sum] is the
      total blocked time and [count] equals [acquisitions])

    Locks sharing a name share the family: the N stripes of a striped
    cache all fold into one [lock.stmt_cache.*] reading.  Lock {e wait
    share} — the fraction of a run's core-seconds spent blocked on locks —
    is [total_wait_s () /. (elapsed *. domains)].

    When {!Control.on} is false every operation is a bare
    [Mutex.lock]/[Mutex.protect] behind one load-and-branch, the same
    disabled-path contract as every other metric in this library.
    Instrumented acquires cost a counter bump and a histogram observation;
    contended ones add two monotonic clock reads around the blocking
    [Mutex.lock].

    Waits recorded from concurrent domains shard per {!Shard} slot like
    every other metric; readings merge by summing. *)

type t

val create : string -> t
(** A fresh mutex under the given family name.  Called once per guarded
    structure (or stripe) at construction time. *)

val name : t -> string

val mutex : t -> Mutex.t
(** The underlying mutex — for [Condition.wait], which must re-acquire the
    raw mutex itself (that re-acquire is not instrumented). *)

val lock : t -> unit
(** Instrumented acquire.  Pair with {!unlock}; prefer {!with_lock} unless
    a condition variable forces explicit control. *)

val unlock : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** Instrumented [Mutex.protect]: unlocks on normal return and on
    exceptions. *)

val total_wait_s : unit -> float
(** Summed blocked seconds across every lock family created so far. *)

val total_acquisitions : unit -> int

val total_contended : unit -> int

val wait_s : string -> float
(** Blocked seconds of one family (0.0 if the family does not exist). *)
