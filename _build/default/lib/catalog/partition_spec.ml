type kind =
  | Hash
  | Range

type t = {
  kind : kind;
  keys : string list;
}

let hash keys =
  if keys = [] then invalid_arg "Partition_spec.hash: empty keys";
  { kind = Hash; keys }

let range keys =
  if keys = [] then invalid_arg "Partition_spec.range: empty keys";
  { kind = Range; keys }

let equal a b =
  match (a.kind, b.kind) with
  | Hash, Hash ->
    List.sort String.compare a.keys = List.sort String.compare b.keys
  | Range, Range -> a.keys = b.keys
  | Hash, Range | Range, Hash -> false

let pp ppf t =
  Format.fprintf ppf "%s(%s)"
    (match t.kind with Hash -> "hash" | Range -> "range")
    (String.concat "," t.keys)
