lib/optimizer/optimizer.mli: Env Instrument Knobs Mat_view Memo Plan Query_block
