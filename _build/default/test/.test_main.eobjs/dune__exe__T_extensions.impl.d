test/t_extensions.ml: Alcotest Cote Format Helpers Qopt_catalog Qopt_optimizer Qopt_util
