type t = int

let max_elt = 61

let empty = 0

let is_empty s = s = 0

let check i =
  if i < 0 || i > max_elt then
    invalid_arg (Printf.sprintf "Bitset: element %d out of [0,%d]" i max_elt)

let singleton i =
  check i;
  1 lsl i

let add i s =
  check i;
  s lor (1 lsl i)

let remove i s =
  check i;
  s land lnot (1 lsl i)

let mem i s = i >= 0 && i <= max_elt && s land (1 lsl i) <> 0

let union a b = a lor b

let inter a b = a land b

let diff a b = a land lnot b

let subset a b = a land lnot b = 0

let disjoint a b = a land b = 0

let equal a b = a = b

let compare (a : int) (b : int) = Stdlib.compare a b

let hash (s : int) = Hashtbl.hash s

let cardinal s =
  (* Kernighan's bit-count; sets are small so this beats table lookups. *)
  let rec loop s n = if s = 0 then n else loop (s land (s - 1)) (n + 1) in
  loop s 0

let min_elt s =
  if s = 0 then raise Not_found;
  let rec loop i = if s land (1 lsl i) <> 0 then i else loop (i + 1) in
  loop 0

let fold f s init =
  let rec loop i acc =
    if i > max_elt || s lsr i = 0 then acc
    else if s land (1 lsl i) <> 0 then loop (i + 1) (f i acc)
    else loop (i + 1) acc
  in
  loop 0 init

let iter f s = fold (fun i () -> f i) s ()

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list l = List.fold_left (fun s i -> add i s) empty l

let for_all p s = fold (fun i acc -> acc && p i) s true

let exists p s = fold (fun i acc -> acc || p i) s false

let full n =
  if n < 0 || n > max_elt + 1 then invalid_arg "Bitset.full";
  if n = 0 then 0 else (1 lsl n) - 1

let iter_subsets s f =
  (* Enumerates submasks of [s] with the classical [(sub - 1) land s]
     recurrence, skipping [s] itself and the empty set. *)
  let rec loop sub =
    if sub <> 0 then begin
      if sub <> s then f sub;
      loop ((sub - 1) land s)
    end
  in
  if s <> 0 then loop ((s - 1) land s)

let to_int s = s

let of_int i =
  if i < 0 then invalid_arg "Bitset.of_int";
  i

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements s)))
