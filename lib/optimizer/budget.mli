(** Hard resource budgets for the DP enumeration path.

    A 30+-table clique can blow the MEMO past any admission estimate: the
    number of connected subgraphs — and with it entries, kept plans and
    wall-clock — grows exponentially, and a deadline polled only at pass
    boundaries never fires inside the single exploding pass.  A budget
    caps the structures themselves: the optimizer (and the estimator's
    plan-estimate pass) checks the running MEMO-entry and kept-plan counts
    against the caps as enumeration proceeds and aborts with the
    structured {!Exceeded} instead of OOMing, so the caller can fall back
    to the polynomial spanning-tree regime mid-compile.

    [max_predicted_s] is the third cap of the family: it is not enforced
    during enumeration (a prediction exists before the pass starts) but by
    the regime-selection policy, which treats a DP prediction above it as
    infeasible up front. *)

type t = {
  max_memo_entries : int option;  (** cap on distinct MEMO entries *)
  max_kept_plans : int option;
      (** cap on plans held in the MEMO after pruning (estimate mode:
          the Section 6.2 memory-model plan count) *)
  max_predicted_s : float option;
      (** predicted DP seconds above this are infeasible at admission *)
}

type blown = {
  b_what : string;  (** ["memo_entries"] or ["kept_plans"] *)
  b_limit : int;
  b_reached : int;
}

exception Exceeded of blown

val unlimited : t

val make :
  ?max_memo_entries:int ->
  ?max_kept_plans:int ->
  ?max_predicted_s:float ->
  unit ->
  t

val is_unlimited : t -> bool
(** No enumeration-time cap set ([max_predicted_s] alone does not bound a
    pass) — the optimizer skips consumer wrapping entirely, keeping the
    unbudgeted hot path bit-for-bit identical to the pre-budget code. *)

val check : t -> entries:int -> kept:int -> unit
(** Raises {!Exceeded} when a cap is crossed. *)

val pp_blown : Format.formatter -> blown -> unit
