lib/optimizer/pred.ml: Colref Format Qopt_util
