module O = Qopt_optimizer
module J = Qopt_util.Json
module Timer = Qopt_util.Timer
module Obs = Qopt_obs
module Srv = Qopt_server

type config = {
  listen : Srv.Server.addr;
  backends : Backend.spec list;
  latency_tier : int;
  threshold_s : float;
  affinity : bool;
  env : O.Env.t;
  model : Cote.Time_model.t;
  schemas : (string * Qopt_catalog.Schema.t) list;
  levels : Cote.Multi_level.level list;
  latency_timeout_s : float;
  throughput_timeout_s : float;
  backoff_cap_s : float;
  probe_after_s : float;
  respawn : bool;
}

let default_config ~listen ~backends ~model ~schemas () =
  {
    listen;
    backends;
    latency_tier = max 1 (List.length backends - 1);
    threshold_s = 5e-4;
    affinity = true;
    env = O.Env.serial;
    model;
    schemas;
    levels = Srv.Level.default_levels;
    latency_timeout_s = 10.0;
    throughput_timeout_s = 60.0;
    backoff_cap_s = 0.05;
    probe_after_s = 0.25;
    respawn = true;
  }

(* ------------------------------------------------------------------ *)
(* fleet.* metrics                                                     *)
(* ------------------------------------------------------------------ *)

let m_requests = Obs.Registry.counter Obs.Registry.default "fleet.requests"

let m_compiles = Obs.Registry.counter Obs.Registry.default "fleet.compiles"

let m_rejected = Obs.Registry.counter Obs.Registry.default "fleet.rejected"

let m_cancelled = Obs.Registry.counter Obs.Registry.default "fleet.cancelled"

let m_errors = Obs.Registry.counter Obs.Registry.default "fleet.errors"

let m_retries = Obs.Registry.counter Obs.Registry.default "fleet.retries"

let m_failovers = Obs.Registry.counter Obs.Registry.default "fleet.failovers"

let m_timeouts = Obs.Registry.counter Obs.Registry.default "fleet.timeouts"

let m_affinity_hits =
  Obs.Registry.counter Obs.Registry.default "fleet.affinity_hits"

let m_affinity_total =
  Obs.Registry.counter Obs.Registry.default "fleet.affinity_total"

let m_readmissions =
  Obs.Registry.counter Obs.Registry.default "fleet.readmissions"

let m_routed_latency =
  Obs.Registry.counter Obs.Registry.default "fleet.routed_latency_tier"

let m_routed_throughput =
  Obs.Registry.counter Obs.Registry.default "fleet.routed_throughput_tier"

let m_latency = Obs.Registry.histogram Obs.Registry.default "fleet.latency_s"

let m_backends_up = Obs.Registry.gauge Obs.Registry.default "fleet.backends_up"

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_oc : out_channel;
  c_wlock : Mutex.t;
}

type t = {
  cfg : config;
  backends : Backend.t array;
  cache : Cote.Stmt_cache.t;  (* router-side refinement, shared by conns *)
  lock : Mutex.t;
  mutable shutting : bool;
  mutable conns : (conn * Thread.t) list;
}

let shutting t = Mutex.protect t.lock (fun () -> t.shutting)

let send_reply conn reply =
  try
    Mutex.protect conn.c_wlock (fun () ->
        Srv.Wire.write conn.c_oc
          (J.to_string (Srv.Proto.reply_to_json reply)))
  with Sys_error _ | Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Estimation (once, at the front door)                                *)
(* ------------------------------------------------------------------ *)

let resolve_schema t name =
  match name with
  | None -> (
    match t.cfg.schemas with
    | (n, s) :: _ -> (n, s)
    | [] -> failwith "router has no schemas configured")
  | Some n -> (
    match List.assoc_opt n t.cfg.schemas with
    | Some s -> (n, s)
    | None ->
      failwith
        (Printf.sprintf "unknown schema %S (known: %s)" n
           (String.concat ", " (List.map fst t.cfg.schemas))))

type routed = {
  rt_block : O.Query_block.t;
  rt_key : string;  (* schema-qualified template key — the affinity key *)
  rt_choice : Srv.Level.chosen;
  rt_predicted_s : float;  (* stmt-cache refined *)
  rt_cache_hit : bool;
}

(* The fleet's "estimate once" point: one COTE pass here, refined by the
   router's own statement cache (fed by elapsed times out of compile
   replies), and the result rides to the backend as estimate_hint_s so a
   trust-hints backend never re-estimates. *)
let evaluate t ~id ~sql ~schema =
  let schema_name, schema = resolve_schema t schema in
  let ast = Qopt_sql.Parser.parse sql in
  let block =
    Qopt_sql.Binder.bind ~name:(Printf.sprintf "r%d" id) schema ast
  in
  let choice =
    Srv.Level.select ~levels:t.cfg.levels ~downgrade_s:None
      ~predict:(fun knobs ->
        Cote.Predict.compile_time ~knobs ~model:t.cfg.model t.cfg.env block)
  in
  let level = choice.Srv.Level.level.Cote.Multi_level.level_name in
  let cached = Cote.Stmt_cache.lookup t.cache ~tag:level block in
  ( schema_name,
    {
      rt_block = block;
      rt_key = schema_name ^ "|" ^ Qopt_sql.Template.key_of ast;
      rt_choice = choice;
      rt_predicted_s =
        Option.value ~default:choice.Srv.Level.predicted_s cached;
      rt_cache_hit = cached <> None;
    } )

let estimate_reply id rt =
  let e = rt.rt_choice.Srv.Level.prediction.Cote.Predict.estimate in
  Srv.Proto.R_estimate
    ( id,
      {
        Srv.Proto.e_predicted_s = rt.rt_predicted_s;
        e_level = rt.rt_choice.Srv.Level.level.Cote.Multi_level.level_name;
        e_cache_hit = rt.rt_cache_hit;
        e_joins = e.Cote.Estimator.joins;
        e_nljn = e.Cote.Estimator.nljn;
        e_mgjn = e.Cote.Estimator.mgjn;
        e_hsjn = e.Cote.Estimator.hsjn;
        e_entries = e.Cote.Estimator.entries;
        e_estimation_s = e.Cote.Estimator.elapsed;
      } )

(* ------------------------------------------------------------------ *)
(* Tiering and candidate order                                         *)
(* ------------------------------------------------------------------ *)

type tier = Latency | Throughput

let tier_of t predicted_s =
  if predicted_s <= t.cfg.threshold_s then Latency else Throughput

let tier_size t =
  min (max 1 t.cfg.latency_tier) (Array.length t.backends)

(* Backends [0, k) serve the latency tier (small queries spread wide);
   [k, n) serve the throughput tier (big queries, fewer backends, higher
   per-request ceilings).  When k = n the split is degenerate and both
   tiers share everyone. *)
let tier_members t tier =
  let n = Array.length t.backends in
  let k = tier_size t in
  match tier with
  | Latency -> Array.to_list (Array.sub t.backends 0 k)
  | Throughput ->
    if k >= n then Array.to_list t.backends
    else Array.to_list (Array.sub t.backends k (n - k))

let order t ~key members =
  match members with
  | [] | [ _ ] -> members
  | _ ->
    if t.cfg.affinity then begin
      (* Rendezvous over positions within the member list: stable under
         a member dropping out (the rest keep their relative order). *)
      let arr = Array.of_list members in
      List.map (fun i -> arr.(i)) (Rendezvous.ranked ~nodes:(Array.length arr) key)
    end
    else
      List.stable_sort
        (fun a b -> compare (Backend.inflight a) (Backend.inflight b))
        members

(* A down backend is only dispatched to after a successful probe; the
   probe itself is rate-limited and single-flight inside Backend. *)
let available t b =
  Backend.is_up b
  || (not (shutting t))
     && Backend.try_probe b ~probe_after_s:t.cfg.probe_after_s
          ~respawn:t.cfg.respawn
     && begin
          Obs.Counter.incr m_readmissions;
          true
        end

(* ------------------------------------------------------------------ *)
(* Dispatch with retry / failover                                      *)
(* ------------------------------------------------------------------ *)

let dispatch t ~orig_id ~sql ~schema_name ~deadline_ms rt =
  let tier = tier_of t rt.rt_predicted_s in
  let timeout_s =
    match tier with
    | Latency ->
      Obs.Counter.incr m_routed_latency;
      t.cfg.latency_timeout_s
    | Throughput ->
      Obs.Counter.incr m_routed_throughput;
      t.cfg.throughput_timeout_s
  in
  let primary = order t ~key:rt.rt_key (tier_members t tier) in
  let home = List.map Backend.index primary in
  let backup =
    order t ~key:rt.rt_key
      (List.filter
         (fun b -> not (List.mem (Backend.index b) home))
         (Array.to_list t.backends))
  in
  let first_choice =
    match primary with b :: _ -> Backend.index b | [] -> -1
  in
  let mk id =
    Srv.Proto.Compile
      {
        id;
        sql;
        schema = Some schema_name;
        deadline_ms;
        estimate_hint_s = Some rt.rt_predicted_s;
      }
  in
  let finalize b reply =
    (match reply with
    | Srv.Proto.R_compile (_, body) ->
      Obs.Counter.incr m_compiles;
      (* Feed the router's statement cache from the measured elapsed so
         the next estimate for this shape is an observed actual.  Plan
         hits report 0 elapsed — recording those would poison estimates. *)
      if (not body.Srv.Proto.c_plan_cached) && body.Srv.Proto.c_elapsed_s > 0.0
      then
        Cote.Stmt_cache.record t.cache ~tag:body.Srv.Proto.c_level rt.rt_block
          body.Srv.Proto.c_elapsed_s;
      if t.cfg.affinity then begin
        Obs.Counter.incr m_affinity_total;
        if Backend.index b = first_choice then
          Obs.Counter.incr m_affinity_hits
      end
    | Srv.Proto.R_rejected _ -> Obs.Counter.incr m_rejected
    | Srv.Proto.R_cancelled _ -> Obs.Counter.incr m_cancelled
    | Srv.Proto.R_error _ -> Obs.Counter.incr m_errors
    | Srv.Proto.R_estimate _ | Srv.Proto.R_stats _ | Srv.Proto.R_ok _ -> ());
    Srv.Proto.with_reply_id reply orig_id
  in
  (* One rejection-retry on the same backend (after the server-advised
     backoff), then the next candidate.  Channel loss fails over
     immediately: a SIGKILLed backend costs an in-flight request exactly
     one retry, never a wedge. *)
  let rec attempt b ~may_retry =
    match Backend.rpc b ~timeout_s mk with
    | Backend.Reply (Srv.Proto.R_rejected { retry_after_us; _ } as reply) -> (
      match retry_after_us with
      | Some us when may_retry && not (shutting t) ->
        Obs.Counter.incr m_retries;
        Thread.delay (Float.min (us *. 1e-6) t.cfg.backoff_cap_s);
        attempt b ~may_retry:false
      | _ -> `Rejected reply)
    | Backend.Reply reply -> `Served reply
    | Backend.Timeout ->
      Obs.Counter.incr m_timeouts;
      `Move_on
    | Backend.Unreachable ->
      Backend.mark_down b;
      Obs.Counter.incr m_failovers;
      `Move_on
  in
  let rec go cands last_reject =
    if shutting t then begin
      Obs.Counter.incr m_cancelled;
      Srv.Proto.R_cancelled
        {
          id = orig_id;
          reason = "shutdown";
          estimate_us = rt.rt_predicted_s *. 1e6;
          queue_s = 0.0;
        }
    end
    else
      match cands with
      | [] -> (
        Obs.Counter.incr m_rejected;
        match last_reject with
        | Some reply -> Srv.Proto.with_reply_id reply orig_id
        | None ->
          Srv.Proto.R_rejected
            {
              id = orig_id;
              reason = "fleet_unavailable";
              estimate_us = rt.rt_predicted_s *. 1e6;
              retry_after_us = None;
            })
      | b :: rest ->
        if not (available t b) then go rest last_reject
        else begin
          Backend.note_routed b;
          match attempt b ~may_retry:true with
          | `Served reply -> finalize b reply
          | `Rejected reply -> go rest (Some reply)
          | `Move_on -> go rest last_reject
        end
  in
  go (primary @ backup) None

(* ------------------------------------------------------------------ *)
(* Stats aggregation                                                   *)
(* ------------------------------------------------------------------ *)

let stats_json t =
  let backend_doc b =
    let live =
      if Backend.is_up b then
        match
          Backend.rpc b ~timeout_s:2.0 (fun id -> Srv.Proto.Stats { id })
        with
        | Backend.Reply (Srv.Proto.R_stats (_, doc)) -> doc
        | Backend.Reply _ | Backend.Timeout | Backend.Unreachable -> J.Null
      else J.Null
    in
    J.Obj
      [
        ("index", J.int (Backend.index b));
        ("up", J.Bool (Backend.is_up b));
        ("pid", J.opt J.int (Backend.pid b));
        ("routed", J.int (Backend.routed b));
        ("inflight", J.int (Backend.inflight b));
        ("stats", live);
      ]
  in
  J.Obj
    [
      ("fleet", J.Bool true);
      ("backends", J.Arr (Array.to_list (Array.map backend_doc t.backends)));
      ("latency_tier", J.int (tier_size t));
      ("metrics", Obs.Registry.json_value Obs.Registry.default);
    ]

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let initiate_shutdown t =
  Mutex.protect t.lock (fun () -> t.shutting <- true)

let handle_compile t conn ~id ~sql ~schema ~deadline_ms =
  let t0 = Timer.monotonic_now () in
  match
    let schema_name, rt = evaluate t ~id ~sql ~schema in
    dispatch t ~orig_id:id ~sql ~schema_name ~deadline_ms rt
  with
  | reply ->
    Obs.Histo.observe m_latency (Timer.monotonic_now () -. t0);
    send_reply conn reply
  | exception
      ( Failure msg
      | Qopt_sql.Parser.Error msg
      | Qopt_sql.Binder.Error msg
      | Invalid_argument msg ) ->
    Obs.Counter.incr m_errors;
    send_reply conn (Srv.Proto.R_error { id; message = msg })
  | exception Qopt_sql.Lexer.Error (msg, at) ->
    Obs.Counter.incr m_errors;
    send_reply conn
      (Srv.Proto.R_error
         { id; message = Printf.sprintf "%s (at byte %d)" msg at })

let handle_inline t conn req =
  match req with
  | Srv.Proto.Estimate { id; sql; schema } -> (
    match evaluate t ~id ~sql ~schema with
    | _, rt -> send_reply conn (estimate_reply id rt)
    | exception
        ( Failure msg
        | Qopt_sql.Parser.Error msg
        | Qopt_sql.Binder.Error msg
        | Invalid_argument msg ) ->
      Obs.Counter.incr m_errors;
      send_reply conn (Srv.Proto.R_error { id; message = msg })
    | exception Qopt_sql.Lexer.Error (msg, at) ->
      Obs.Counter.incr m_errors;
      send_reply conn
        (Srv.Proto.R_error
           { id; message = Printf.sprintf "%s (at byte %d)" msg at }))
  | Srv.Proto.Stats { id } ->
    send_reply conn (Srv.Proto.R_stats (id, stats_json t))
  | Srv.Proto.Shutdown { id } ->
    send_reply conn (Srv.Proto.R_ok id);
    initiate_shutdown t
  | Srv.Proto.Compile _ -> assert false (* routed through handle_compile *)

let conn_main t conn ic () =
  (* Each compile gets its own dispatcher thread: a pipelined client
     burst fans out across backends concurrently instead of serializing
     on this connection's read loop. *)
  let workers = ref [] in
  let rec loop () =
    match Srv.Wire.read ic with
    | None -> ()
    | Some payload ->
      (match Result.bind (J.parse payload) Srv.Proto.request_of_json with
      | Error msg ->
        send_reply conn (Srv.Proto.R_error { id = 0; message = msg })
      | Ok req -> (
        Obs.Counter.incr m_requests;
        match req with
        | Srv.Proto.Compile { id; sql; schema; deadline_ms; _ } ->
          let th =
            Thread.create
              (fun () -> handle_compile t conn ~id ~sql ~schema ~deadline_ms)
              ()
          in
          workers := th :: !workers
        | req -> handle_inline t conn req));
      loop ()
  in
  (try loop () with
  | Srv.Wire.Framing_error msg ->
    send_reply conn (Srv.Proto.R_error { id = 0; message = msg })
  | Sys_error _ | Unix.Unix_error _ | End_of_file -> ());
  List.iter Thread.join !workers;
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

(* Readmission must not depend on traffic: with only dispatch-path
   probes an idle fleet never heals.  This loop probes every down
   backend on a slow cadence; the single-flight claim and cool-down
   inside [Backend.try_probe] keep it from colliding with dispatchers
   probing the same backend. *)
let prober t () =
  let rec loop () =
    if shutting t then ()
    else begin
      Array.iter
        (fun b ->
          if (not (Backend.is_up b)) && not (shutting t) then
            if
              Backend.try_probe b ~probe_after_s:t.cfg.probe_after_s
                ~respawn:t.cfg.respawn
            then Obs.Counter.incr m_readmissions)
        t.backends;
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

let watchdog t () =
  let rec loop () =
    if shutting t then ()
    else begin
      Array.iter Backend.tick t.backends;
      Obs.Gauge.set m_backends_up
        (float_of_int
           (Array.fold_left
              (fun acc b -> if Backend.is_up b then acc + 1 else acc)
              0 t.backends));
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)
(* ------------------------------------------------------------------ *)

let bind_listen addr =
  match addr with
  | `Unix path ->
    if Sys.file_exists path then (
      try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let run ?(on_ready = fun () -> ()) (cfg : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if cfg.backends = [] then
    invalid_arg "Qopt_fleet.Router.run: no backends configured";
  let t =
    {
      cfg;
      backends = Array.of_list (List.mapi Backend.create cfg.backends);
      cache = Cote.Stmt_cache.create ~shared:true ();
      lock = Mutex.create ();
      shutting = false;
      conns = [];
    }
  in
  let obs_was = !Obs.Control.on in
  Obs.Control.set_enabled true;
  let started_all =
    Array.for_all (fun b -> Backend.start b) t.backends
  in
  if not started_all then begin
    Array.iter (fun b -> Backend.shutdown ~timeout_s:1.0 b) t.backends;
    Obs.Control.set_enabled obs_was;
    failwith "qopt fleet: a backend never became reachable"
  end;
  let listen_fd = bind_listen cfg.listen in
  let dog = Thread.create (watchdog t) () in
  let heal = Thread.create (prober t) () in
  on_ready ();
  let rec accept_loop () =
    if shutting t then ()
    else begin
      (match Unix.select [ listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | fd, _ ->
          let conn =
            { c_fd = fd; c_oc = Unix.out_channel_of_descr fd; c_wlock = Mutex.create () }
          in
          let ic = Unix.in_channel_of_descr fd in
          let thread = Thread.create (conn_main t conn ic) () in
          Mutex.protect t.lock (fun () -> t.conns <- (conn, thread) :: t.conns)
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match cfg.listen with
      | `Unix path -> (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | `Tcp _ -> ());
      initiate_shutdown t;
      (* The prober must be gone before backends are torn down — a probe
         racing shutdown could respawn a process nobody would reap. *)
      Thread.join heal;
      (* Backends drain first: their running compiles finish and reply,
         pending router rpcs resolve, then client connections unwind. *)
      Array.iter Backend.shutdown t.backends;
      let conns = Mutex.protect t.lock (fun () -> t.conns) in
      List.iter
        (fun (conn, _) ->
          try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        conns;
      List.iter (fun (_, thread) -> Thread.join thread) conns;
      Thread.join dog;
      Obs.Control.set_enabled obs_was)
    accept_loop
