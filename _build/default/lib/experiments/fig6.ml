(** Figure 6: accuracy of compilation-time estimation — (a) star_s,
    (b) real1_s, (c) real2_s, (d) tpch_p, (e) random_p, (f) real1_p.

    Paper shape: estimates within ~30% of actual compilation time (larger
    errors tolerated on real1_p, up to 66%), correctly tracking the trend
    *within* a star batch — where a joins-only model cannot distinguish the
    queries at all and is ~20x worse. *)

module O = Qopt_optimizer
module Tablefmt = Qopt_util.Tablefmt
module Stats = Qopt_util.Stats

let run_one ?(joins_baseline = false) env wl_name =
  let wl = Common.workload env wl_name in
  let measured = Common.measure_workload env wl in
  let model = Common.model_for env in
  let joins_model = Common.joins_model_for env in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf "fig6: compilation time estimation, %s (paper: <~30%% err)"
           (Common.suffixed env wl_name))
      ([
         ("query", Tablefmt.Left);
         ("actual", Tablefmt.Right);
         ("estimated", Tablefmt.Right);
         ("err", Tablefmt.Right);
       ]
      @ if joins_baseline then [ ("joins-only est", Tablefmt.Right) ] else [])
  in
  let pairs = ref [] and joins_pairs = ref [] in
  List.iter
    (fun m ->
      let actual = m.Common.m_real.O.Optimizer.elapsed in
      let est = Cote.Time_model.predict model m.Common.m_est in
      let joins_est = Cote.Time_model.predict joins_model m.Common.m_est in
      pairs := (actual, est) :: !pairs;
      joins_pairs := (actual, joins_est) :: !joins_pairs;
      Tablefmt.add_row t
        ([
           m.Common.m_query.Qopt_workloads.Workload.q_name;
           Tablefmt.fseconds actual;
           Tablefmt.fseconds est;
           Tablefmt.fpct (Stats.pct_error ~actual ~estimate:est);
         ]
        @ if joins_baseline then [ Tablefmt.fseconds joins_est ] else []))
    measured;
  Tablefmt.print t;
  Format.printf "time estimation: %s@." (Common.err_summary !pairs);
  if joins_baseline then
    Format.printf
      "joins-only baseline: %s (paper: ~20x worse than the plan-level model)@."
      (Common.err_summary !joins_pairs);
  Format.printf "@."

let run_a () = run_one ~joins_baseline:true Common.serial "star"

let run_b () = run_one Common.serial "real1"

let run_c () = run_one Common.serial "real2"

let run_d () = run_one Common.parallel "tpch7"

let run_e () = run_one Common.parallel "random"

let run_f () = run_one Common.parallel "real1"
