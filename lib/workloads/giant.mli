(** Giant join-graph generators: the 20–62-table regime.

    BI tools and ORMs routinely emit queries far past the paper's ~14-table
    scale; these generators produce the canonical giant shapes — chains,
    cliques, cycles, stars and many-branch snowflakes — at sizes where the
    DP MEMO explodes and the spanning-tree fallback regime
    ({!Qopt_optimizer.Spanning_tree}) becomes the only way to compile at
    all.  Every generator is seed-deterministic (table selection, join
    columns and filter constants come from {!Qopt_util.Rng}) and
    connectivity-checked at construction.

    Sizes are capped at {!max_tables} (= 62): the optimizer's table sets
    are single-word bitsets ({!Qopt_util.Bitset}), so wider graphs need the
    wide-bitset follow-up tracked in ROADMAP.md.  All regime-crossover
    behaviour of interest — DP feasible near 20, budget-exceeded by 50 —
    fits comfortably below the cap. *)

type shape =
  | Chain  (** t0–t1–…–t(n-1): n-1 edges, DP-friendly (O(n²) entries) *)
  | Clique  (** every pair joined: n(n-1)/2 edges, 2ⁿ MEMO entries *)
  | Cycle  (** chain plus a closing edge: n edges; needs n ≥ 3 *)
  | Star  (** center 0 joined to every satellite: n-1 edges *)
  | Snowflake of int
      (** [Snowflake b]: center 0 with [b] chain branches filled
          round-robin — n-1 edges, center degree min(b, n-1); needs b ≥ 1 *)

val max_tables : int
(** 62 — [Qopt_util.Bitset.max_elt + 1], the widest representable graph. *)

val shape_name : shape -> string

val edge_count : shape -> int -> int
(** Closed-form join-graph edge count of [shape] at [n] tables: chain and
    star and snowflake n-1, cycle n, clique n(n-1)/2. *)

val block : ?seed:int -> ?partitioned:bool -> shape -> int -> Qopt_optimizer.Query_block.t
(** [block shape n] builds one connected [n]-table query block of the given
    shape over the {!schema} tables: [seed] (default 0) picks which tables,
    which join column each edge uses, and the local-filter constant.
    Deterministic for a given [(seed, shape, n)].  Raises
    [Invalid_argument] when [n < 2] (or [< 3] for [Cycle]), when
    [n > max_tables], or when a [Snowflake] arity is [< 1]. *)

val schema : ?partitioned:bool -> unit -> Qopt_catalog.Schema.t
(** The shared giant catalog: {!max_tables} tables [g0]…[g61], each with a
    primary key, join columns [j1]…[j5] of decreasing distinct counts, and
    value columns [v1]/[v2] — the pool every generated block (and ad-hoc
    SQL against the ["giant"] server schema) draws from. *)

val workload : ?partitioned:bool -> ?seed:int -> unit -> Workload.t
(** The ["giant"] workload: chains at 20/30/40/50, cycles at 20/30, stars
    at 20/30, 4-branch snowflakes at 24/36 and cliques at 20/30/40/50,
    named [giant_<shape>_<n>]. *)
