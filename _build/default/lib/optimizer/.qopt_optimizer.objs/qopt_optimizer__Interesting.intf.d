lib/optimizer/interesting.mli: Equiv Order_prop Partition_prop Pred Qopt_catalog Qopt_util Query_block
