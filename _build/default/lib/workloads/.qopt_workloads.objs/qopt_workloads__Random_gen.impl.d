lib/workloads/random_gen.ml: Array Fun List Option Printf Qopt_catalog Qopt_optimizer Qopt_util String Workload
