(* Online recalibration (ROADMAP item 3): the drift detector only fires
   on real drift, a fired detector actually repairs the model, degenerate
   windows can never lose the serving coefficients, and the knobs
   (interval, window bound, decay) do what they say. *)

module R = Cote.Recalibrate
module TM = Cote.Time_model

let t name f = Alcotest.test_case name `Quick f

let model0 = TM.make ~c_nljn:1e-6 ~c_mgjn:2.5e-6 ~c_hsjn:1.5e-6 ()

let scale k (m : TM.t) =
  TM.make ~c_nljn:(k *. m.TM.c_nljn) ~c_mgjn:(k *. m.TM.c_mgjn)
    ~c_hsjn:(k *. m.TM.c_hsjn) ()

(* Structurally diverse plan-count mixes (a full-rank pool); real compiles
   never produce proportional counts across different join shapes. *)
let feature_pool =
  [|
    (120.0, 40.0, 60.0);
    (30.0, 90.0, 15.0);
    (10.0, 20.0, 140.0);
    (75.0, 75.0, 75.0);
    (200.0, 10.0, 35.0);
    (55.0, 130.0, 90.0);
  |]

let feed ?(pool = feature_pool) ?(n = 1) ~truth recal i0 =
  (* Observations where the *serving* model makes the prediction and
     [truth] generates the measurement — drift is exactly their gap. *)
  let fired = ref 0 in
  for i = i0 to i0 + n - 1 do
    let nljn, mgjn, hsjn = pool.(i mod Array.length pool) in
    let joins = (nljn +. mgjn +. hsjn) /. 10.0 in
    let predict m = TM.predict_counts m ~nljn ~mgjn ~hsjn ~joins in
    if
      R.observe recal ~level:"full" ~nljn ~mgjn ~hsjn ~joins
        ~predicted_s:(predict (R.model recal))
        ~elapsed_s:(predict truth) ()
    then incr fired
  done;
  !fired

let mean_error_against ~truth m =
  let errs =
    Array.map
      (fun (nljn, mgjn, hsjn) ->
        let joins = (nljn +. mgjn +. hsjn) /. 10.0 in
        let p = TM.predict_counts m ~nljn ~mgjn ~hsjn ~joins in
        let a = TM.predict_counts truth ~nljn ~mgjn ~hsjn ~joins in
        Float.abs (p -. a) /. a *. 100.0)
      feature_pool
  in
  Array.fold_left ( +. ) 0.0 errs /. float_of_int (Array.length errs)

let config =
  {
    R.default_config with
    R.window = 64;
    drift_window = 16;
    drift_threshold_pct = 50.0;
    min_observations = 8;
    min_refit_interval = 8;
  }

let suite =
  [
    t "no drift: an accurate model is never refitted" (fun () ->
        let recal = R.create ~config ~model:model0 () in
        (* The serving model *is* the truth: every error is 0%. *)
        let fired = feed ~truth:model0 recal 0 ~n:50 in
        Alcotest.(check int) "no detector firings" 0 fired;
        let s = R.snapshot recal in
        Alcotest.(check int) "no refits" 0 s.R.sn_refits;
        Alcotest.(check int) "no kept attempts" 0 s.R.sn_kept;
        Alcotest.(check bool) "model untouched" true (R.model recal == model0);
        Alcotest.(check (float 1e-9)) "error gauge at zero" 0.0
          s.R.sn_model_error_pct);
    t "induced perturbation: the detector fires and the refit repairs"
      (fun () ->
        let truth = scale 5.0 model0 in
        let recal = R.create ~config ~model:model0 () in
        let fired = feed ~truth recal 0 ~n:config.R.min_observations in
        Alcotest.(check int) "fired exactly once" 1 fired;
        let s = R.snapshot recal in
        Alcotest.(check int) "one refit" 1 s.R.sn_refits;
        Alcotest.(check bool) "model swapped" true (R.model recal != model0);
        (* A 5x-under model is 80% wrong everywhere (|p - 5p| / 5p); the
           refit saw exact (counts, elapsed) pairs so it should recover
           truth almost exactly. *)
        Alcotest.(check bool) "error-before at least the trip threshold" true
          (s.R.sn_error_before_pct >= config.R.drift_threshold_pct);
        Alcotest.(check bool) "repaired model tracks the truth" true
          (mean_error_against ~truth (R.model recal) < 5.0));
    t "rank-deficient window: previous model kept, attempt counted"
      (fun () ->
        let truth = scale 3.0 model0 in
        let recal = R.create ~config ~model:model0 () in
        (* Every observation carries the same plan-count mix: rank 1, and
           Calibrate.refit's health check must refuse it. *)
        let pool = [| (50.0, 20.0, 30.0) |] in
        let fired = feed ~pool ~truth recal 0 ~n:config.R.min_observations in
        Alcotest.(check int) "no swap" 0 fired;
        let s = R.snapshot recal in
        Alcotest.(check int) "no refits" 0 s.R.sn_refits;
        Alcotest.(check bool) "kept attempts counted" true (s.R.sn_kept >= 1);
        Alcotest.(check bool) "previous model survives" true
          (R.model recal == model0));
    t "min_refit_interval throttles repeated attempts" (fun () ->
        let truth = scale 3.0 model0 in
        let cfg =
          { config with R.min_observations = 2; min_refit_interval = 10 }
        in
        let recal = R.create ~config:cfg ~model:model0 () in
        let pool = [| (50.0, 20.0, 30.0) |] in
        (* Rank-deficient, so every attempt is kept and the error window
           never resets: attempts land at observations 2, 12 and 22. *)
        ignore (feed ~pool ~truth recal 0 ~n:22);
        let s = R.snapshot recal in
        Alcotest.(check int) "three spaced attempts" 3 s.R.sn_kept);
    t "window is bounded; observation count is not" (fun () ->
        let cfg = { config with R.window = 16 } in
        let recal = R.create ~config:cfg ~model:model0 () in
        ignore (feed ~truth:model0 recal 0 ~n:100);
        let s = R.snapshot recal in
        Alcotest.(check int) "fill capped at the window" 16 s.R.sn_window_fill;
        Alcotest.(check int) "all observations counted" 100 s.R.sn_observations);
    t "join-free and zero-elapsed observations carry no signal" (fun () ->
        let recal = R.create ~config ~model:model0 () in
        let fired =
          R.observe recal ~nljn:0.0 ~mgjn:0.0 ~hsjn:0.0 ~joins:0.0
            ~predicted_s:0.0 ~elapsed_s:0.01 ()
        in
        Alcotest.(check bool) "zero-feature skipped" false fired;
        let fired =
          R.observe recal ~nljn:10.0 ~mgjn:5.0 ~hsjn:5.0 ~joins:2.0
            ~predicted_s:1e-4 ~elapsed_s:0.0 ()
        in
        Alcotest.(check bool) "zero-elapsed skipped" false fired;
        Alcotest.(check int) "nothing recorded" 0
          (R.snapshot recal).R.sn_observations);
    t "exponential decay favours the recent regime" (fun () ->
        let truth = scale 8.0 model0 in
        (* Threshold high enough that the detector never fires on its own:
           the window deliberately mixes 12 old-regime with 12 new-regime
           observations, then refit_now must side with the recent ones
           because decay 0.5 leaves the old rows ~2^-12 of their weight. *)
        let cfg =
          {
            config with
            R.window = 24;
            drift_threshold_pct = 1e9;
            decay = 0.5;
          }
        in
        let recal = R.create ~config:cfg ~model:model0 () in
        ignore (feed ~truth:model0 recal 0 ~n:12);
        ignore (feed ~truth recal 12 ~n:12);
        Alcotest.(check bool) "manual refit swaps" true (R.refit_now recal);
        Alcotest.(check bool) "fit tracks the new regime" true
          (mean_error_against ~truth (R.model recal) < 10.0));
    t "refit clears the drift statistic for the new model" (fun () ->
        let truth = scale 5.0 model0 in
        let recal = R.create ~config ~model:model0 () in
        ignore (feed ~truth recal 0 ~n:config.R.min_observations);
        Alcotest.(check int) "swapped" 1 (R.snapshot recal).R.sn_refits;
        (* Post-swap observations are judged against the repaired model:
           the drift statistic restarts near zero instead of averaging in
           the pre-swap 400% errors. *)
        ignore (feed ~truth recal 0 ~n:4);
        let s = R.snapshot recal in
        Alcotest.(check bool) "post-swap error small" true
          (s.R.sn_model_error_pct < 5.0);
        Alcotest.(check bool) "error-before preserved" true
          (s.R.sn_error_before_pct >= config.R.drift_threshold_pct));
    t "invalid configurations are rejected" (fun () ->
        let bad f = Alcotest.check_raises "rejected" (Invalid_argument f) in
        bad "Recalibrate.create: window < 1" (fun () ->
            ignore (R.create ~config:{ config with R.window = 0 } ~model:model0 ()));
        bad "Recalibrate.create: decay outside (0, 1]" (fun () ->
            ignore (R.create ~config:{ config with R.decay = 0.0 } ~model:model0 ()));
        bad "Recalibrate.create: drift_threshold_pct <= 0" (fun () ->
            ignore
              (R.create
                 ~config:{ config with R.drift_threshold_pct = 0.0 }
                 ~model:model0 ())));
  ]
