(** The meta-optimizer of Figure 1.

    For each query: compile at the low level (greedy), convert the best
    plan's cost into an execution-time estimate E, ask the COTE for the
    high level's compilation-time estimate C, and reoptimize at the high
    level only when C < E — "if C is larger than E, there is no point in
    further optimization since the query can complete execution by the time
    high-level optimization finishes". *)

module O = Qopt_optimizer

type decision =
  | Keep_low  (** C >= E: run the greedy plan as-is *)
  | Reoptimize  (** C < E: pay for high-level optimization *)

type outcome = {
  decision : decision;
  exec_estimate_low : float;  (** E: estimated execution seconds, low plan *)
  compile_estimate_high : float;  (** C: COTE's estimate for the high level *)
  compile_actual_high : float option;
      (** measured high-level compile time (when reoptimized) *)
  exec_estimate_final : float;  (** estimated execution seconds, final plan *)
  elapsed : float;  (** total wall-clock spent by the MOP on this query *)
}

val cost_to_seconds : float
(** Conversion factor from the cost model's abstract units to estimated
    execution seconds (1 unit = 1 ms). *)

type config = {
  high_level : Levels.t;  (** default [L2_default] *)
  model : Cote.Time_model.t;  (** fitted for the target environment *)
  margin : float;  (** reoptimize when [C < margin * E]; default 1.0 *)
}

val config : ?high_level:Levels.t -> ?margin:float -> Cote.Time_model.t -> config

val run : config -> O.Env.t -> O.Query_block.t -> outcome
(** Drive one query through the Figure 1 flow. *)

val always_high : O.Env.t -> ?knobs:O.Knobs.t -> O.Query_block.t -> float * float
(** Baseline strategy: compile at the high level unconditionally.  Returns
    (compile seconds, estimated execution seconds) — used to show the MOP's
    total-elapsed advantage. *)
